package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

func TestParseConfigDefaults(t *testing.T) {
	sc, err := parseConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.addr != ":8433" {
		t.Errorf("addr = %q, want :8433", sc.addr)
	}
	if sc.grace != 10*time.Second {
		t.Errorf("grace = %v, want 10s", sc.grace)
	}
	cfg := sc.service
	if cfg.MaxSessions != 64 || cfg.CacheEntries != 128 || cfg.CacheBytes != 64<<20 {
		t.Errorf("service defaults = %+v", cfg)
	}
	if cfg.Parallelism <= 0 {
		t.Errorf("parallelism = %d, want all cores", cfg.Parallelism)
	}
	if cfg.SessionTTL != 2*time.Hour {
		t.Errorf("session TTL = %v, want 2h", cfg.SessionTTL)
	}
	if cfg.Shards != service.DefaultShards() {
		t.Errorf("shards = %d, want the GOMAXPROCS-derived default %d", cfg.Shards, service.DefaultShards())
	}
	if s := cfg.Shards; s&(s-1) != 0 || s < 1 {
		t.Errorf("default shards = %d, want a power of two", s)
	}
	if sc.storeName != "" || sc.storeDSN != "" {
		t.Errorf("store = %q dsn = %q, want in-memory by default", sc.storeName, sc.storeDSN)
	}
	if cfg.CompactEvery != 10*time.Minute {
		t.Errorf("compact interval = %v, want 10m", cfg.CompactEvery)
	}
	if sc.metricsAddr != "" || sc.pprof {
		t.Errorf("metrics listener on by default: addr=%q pprof=%v", sc.metricsAddr, sc.pprof)
	}
	if sc.slowRequest != time.Second {
		t.Errorf("slow-request threshold = %v, want 1s", sc.slowRequest)
	}
}

// TestParseConfigObservabilityFlags pins the metrics/pprof/slow-request
// wiring: pprof rides the metrics listener (so it cannot be requested
// without one), and a non-positive slow-request threshold disables the
// tracing instead of warning on every request.
func TestParseConfigObservabilityFlags(t *testing.T) {
	sc, err := parseConfig([]string{"-metrics-addr", "127.0.0.1:9100", "-pprof", "-slow-request", "250ms"})
	if err != nil {
		t.Fatal(err)
	}
	if sc.metricsAddr != "127.0.0.1:9100" || !sc.pprof {
		t.Errorf("parsed metrics addr=%q pprof=%v", sc.metricsAddr, sc.pprof)
	}
	if sc.slowRequest != 250*time.Millisecond {
		t.Errorf("slow-request = %v, want 250ms", sc.slowRequest)
	}
	if _, err := parseConfig([]string{"-pprof"}); err == nil || !strings.Contains(err.Error(), "-metrics-addr") {
		t.Errorf("-pprof without -metrics-addr = %v, want an error naming -metrics-addr", err)
	}
	sc, err = parseConfig([]string{"-slow-request", "-1s"})
	if err != nil {
		t.Fatal(err)
	}
	if sc.slowRequest != 0 {
		t.Errorf("-slow-request -1s mapped to %v, want the 0 disable sentinel", sc.slowRequest)
	}
}

// TestParseConfigPersistenceFlags pins the -data-dir / -compact-interval
// wiring: -data-dir is shorthand for -store segments -store-dsn DIR, and
// a non-positive interval disables periodic compaction (the registry's
// negative sentinel) instead of silently meaning "use the default".
func TestParseConfigPersistenceFlags(t *testing.T) {
	sc, err := parseConfig([]string{"-data-dir", "/tmp/dpe-data", "-compact-interval", "30s"})
	if err != nil {
		t.Fatal(err)
	}
	if sc.storeName != "segments" || sc.storeDSN != "/tmp/dpe-data" {
		t.Errorf("store = %q dsn = %q, want segments at /tmp/dpe-data", sc.storeName, sc.storeDSN)
	}
	if sc.service.CompactEvery != 30*time.Second {
		t.Errorf("compact interval = %v, want 30s", sc.service.CompactEvery)
	}
	for _, v := range []string{"0s", "-5m"} {
		sc, err := parseConfig([]string{"-compact-interval", v})
		if err != nil {
			t.Fatal(err)
		}
		if sc.service.CompactEvery >= 0 {
			t.Errorf("-compact-interval %s mapped to %v, want a negative disable sentinel", v, sc.service.CompactEvery)
		}
	}
}

// TestParseConfigStoreFlags pins the -store / -store-dsn selection and
// its interaction with the -data-dir shorthand.
func TestParseConfigStoreFlags(t *testing.T) {
	sc, err := parseConfig([]string{"-store", "sql", "-store-dsn", "dpemem:ci"})
	if err != nil {
		t.Fatal(err)
	}
	if sc.storeName != "sql" || sc.storeDSN != "dpemem:ci" {
		t.Errorf("store = %q dsn = %q, want sql / dpemem:ci", sc.storeName, sc.storeDSN)
	}
	// -data-dir plus an agreeing -store segments is accepted.
	sc, err = parseConfig([]string{"-store", "segments", "-data-dir", "/tmp/d"})
	if err != nil {
		t.Fatal(err)
	}
	if sc.storeName != "segments" || sc.storeDSN != "/tmp/d" {
		t.Errorf("store = %q dsn = %q, want segments / /tmp/d", sc.storeName, sc.storeDSN)
	}
	// The null backend needs no DSN.
	sc, err = parseConfig([]string{"-store", "null"})
	if err != nil {
		t.Fatal(err)
	}
	if sc.storeName != "null" || sc.storeDSN != "" {
		t.Errorf("store = %q dsn = %q, want null with no DSN", sc.storeName, sc.storeDSN)
	}
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-store", "no-such-backend"}, "unknown"},
		{[]string{"-store", "sql"}, "-store-dsn"},
		{[]string{"-store", "segments"}, "-store-dsn"},
		{[]string{"-store-dsn", "dpemem:x"}, "-store"},
		{[]string{"-store", "sql", "-store-dsn", "dpemem:x", "-data-dir", "/tmp/d"}, "-data-dir"},
		{[]string{"-store", "segments", "-store-dsn", "/a", "-data-dir", "/b"}, "-data-dir"},
	}
	for _, c := range cases {
		_, err := parseConfig(c.args)
		if err == nil {
			t.Errorf("parseConfig(%v) succeeded, want error mentioning %q", c.args, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("parseConfig(%v) = %v, want error mentioning %q", c.args, err, c.want)
		}
	}
}

func TestParseConfigOverrides(t *testing.T) {
	sc, err := parseConfig([]string{
		"-addr", "127.0.0.1:9000", "-par", "3", "-max-sessions", "5",
		"-cache-entries", "7", "-cache-bytes", "1024", "-max-logs", "2",
		"-max-log-bytes", "2048", "-session-ttl", "5m", "-shutdown-grace", "1s",
		"-shards", "16",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.service
	if sc.addr != "127.0.0.1:9000" || cfg.Parallelism != 3 || cfg.MaxSessions != 5 ||
		cfg.CacheEntries != 7 || cfg.CacheBytes != 1024 || cfg.MaxLogsPerSession != 2 ||
		cfg.MaxLogBytesPerSession != 2048 || cfg.SessionTTL != 5*time.Minute || sc.grace != time.Second ||
		cfg.Shards != 16 {
		t.Errorf("parsed = %+v / %+v", sc, cfg)
	}
}

func TestParseConfigRejectsBadValues(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-addr", ""}, "-addr"},
		{[]string{"-max-sessions", "0"}, "-max-sessions"},
		{[]string{"-max-sessions", "-4"}, "-max-sessions"},
		{[]string{"-cache-entries", "0"}, "-cache-entries"},
		{[]string{"-cache-bytes", "-1"}, "-cache-bytes"},
		{[]string{"-max-logs", "0"}, "-max-logs"},
		{[]string{"-max-log-bytes", "0"}, "-max-log-bytes"},
		{[]string{"-session-ttl", "0s"}, "-session-ttl"},
		{[]string{"-shards", "-1"}, "-shards"},
		{[]string{"-shutdown-grace", "-1s"}, "-shutdown-grace"},
		{[]string{"-par", "x"}, "invalid value"},
		{[]string{"-no-such-flag"}, "flag provided but not defined"},
		{[]string{"stray"}, "unexpected arguments"},
	}
	for _, c := range cases {
		_, err := parseConfig(c.args)
		if err == nil {
			t.Errorf("parseConfig(%v) succeeded, want error mentioning %q", c.args, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("parseConfig(%v) = %v, want error mentioning %q", c.args, err, c.want)
		}
	}
}

// TestParseConfigZeroParMeansAllCores pins the 0-sentinel behavior.
func TestParseConfigZeroParMeansAllCores(t *testing.T) {
	sc, err := parseConfig([]string{"-par", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if sc.service.Parallelism < 1 {
		t.Errorf("parallelism = %d", sc.service.Parallelism)
	}
}
