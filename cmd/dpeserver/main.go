// Command dpeserver runs the untrusted service provider of the paper as
// an actual network service. A data owner ships the encrypted Table I
// artifacts to it over HTTP, uploads encrypted query logs into a
// session, and mines on ciphertext remotely:
//
//	dpeserver -addr :8433 -par 8 -max-sessions 256
//
// The API lives under /v1 (see internal/service):
//
//	POST   /v1/sessions                   create a session (measure + artifacts)
//	GET    /v1/sessions/{id}              session stats (logs, cache hits)
//	DELETE /v1/sessions/{id}              drop the session
//	POST   /v1/sessions/{id}/logs         upload a query log (content-addressed)
//	POST   /v1/sessions/{id}/matrix       full distance matrix (streamed)
//	POST   /v1/sessions/{id}/distances    one matrix row (kNN access pattern)
//	POST   /v1/sessions/{id}/mine         matrix + mining algorithm
//	POST   /v1/sessions/{id}/verify       Definition 1 check on two matrices
//	GET    /v1/stats                      server-wide stats
//	GET    /v1/healthz                    liveness
//
// The server never holds key material: sessions carry only ciphertext
// artifacts and the public aggregate-evaluation key. SIGINT/SIGTERM
// drain in-flight requests before exit (-shutdown-grace bounds the
// drain).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8433", "listen address")
	par := flag.Int("par", 0, "distance-engine parallelism per session (0 = all cores)")
	maxSessions := flag.Int("max-sessions", 64, "maximum live sessions")
	cacheEntries := flag.Int("cache-entries", 128, "prepared-state cache: max entries")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "prepared-state cache: max estimated bytes")
	maxLogs := flag.Int("max-logs", 64, "max distinct uploaded logs per session")
	maxLogBytes := flag.Int64("max-log-bytes", 64<<20, "max total raw log bytes per session")
	sessionTTL := flag.Duration("session-ttl", 2*time.Hour, "idle time after which a session may be reaped at capacity")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown drain window")
	flag.Parse()

	if *par <= 0 {
		*par = runtime.NumCPU()
	}
	cfg := service.Config{
		MaxSessions:           *maxSessions,
		Parallelism:           *par,
		CacheEntries:          *cacheEntries,
		CacheBytes:            *cacheBytes,
		MaxLogsPerSession:     *maxLogs,
		MaxLogBytesPerSession: *maxLogBytes,
		SessionTTL:            *sessionTTL,
	}
	if err := run(*addr, cfg, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "dpeserver:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg service.Config, grace time.Duration) error {
	reg := service.NewRegistry(cfg)
	srv := &http.Server{
		Addr:              addr,
		Handler:           service.NewHandler(reg),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("dpeserver: listening on %s (parallelism %d, max %d sessions, cache %d entries / %d bytes)",
			addr, cfg.Parallelism, cfg.MaxSessions, cfg.CacheEntries, cfg.CacheBytes)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("dpeserver: shutting down (draining up to %s)", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("dpeserver: bye")
	return nil
}
