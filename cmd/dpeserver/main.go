// Command dpeserver runs the untrusted service provider of the paper as
// an actual network service. A data owner ships the encrypted Table I
// artifacts to it over HTTP, uploads encrypted query logs into a
// session, and mines on ciphertext remotely:
//
//	dpeserver -addr :8433 -par 8 -max-sessions 256 -shards 16 -data-dir /var/lib/dpe
//
// Multi-tenant state is sharded by session id over a consistent-hash
// ring (-shards, default GOMAXPROCS rounded to a power of two): each
// shard owns its own lock, singleflight group, and slice of the
// prepared-state cache, so tenants on different shards never contend.
//
// With -data-dir, every shard journals its sessions, uploaded logs,
// and prepared-state snapshots to an append-only segment file there; a
// restarted dpeserver replays the journals, so tenants resume without
// re-uploading artifacts and the first request after a restart hits
// the warm prepared cache. Each shard's janitor compacts its journal
// every -compact-interval, dropping deleted sessions' records. The
// data directory is exclusively locked — a second dpeserver pointed at
// the same directory fails at startup instead of corrupting journals.
//
// -store selects the persistence backend by name: "segments" (the
// per-shard segment files -data-dir implies), "sql" (one records table
// on any database/sql driver compiled into the binary, -store-dsn
// "driver:datasource"), or "null" (explicitly in-memory). -data-dir X
// is shorthand for -store segments -store-dsn X.
//
// The API lives under /v1 (see internal/service):
//
//	POST   /v1/sessions                   create a session (measure + artifacts)
//	GET    /v1/sessions/{id}              session stats (logs, cache hits)
//	DELETE /v1/sessions/{id}              drop the session
//	POST   /v1/sessions/{id}/logs         upload a query log (content-addressed)
//	POST   /v1/sessions/{id}/matrix       full distance matrix (streamed)
//	POST   /v1/sessions/{id}/distances    one matrix row (kNN access pattern)
//	POST   /v1/sessions/{id}/mine         matrix + mining algorithm
//	POST   /v1/sessions/{id}/verify       Definition 1 check on two matrices
//	GET    /v1/stats                      server-wide stats
//	GET    /v1/healthz                    liveness
//
// With -metrics-addr, a second listener (kept off the tenant port so an
// operator can firewall it separately) serves GET /metrics in Prometheus
// text format — request-latency histograms per route, per-shard cache
// gauges, journal counters, and provider stage timings — and, with
// -pprof, the net/http/pprof profiling endpoints under /debug/pprof/.
// Every request carries an X-Request-Id (honored when the client sends
// one, minted otherwise) that appears in the access log, in error
// bodies, and in client error strings; requests slower than
// -slow-request are logged at warning level with their per-stage span
// breakdown.
//
// The server never holds key material: sessions carry only ciphertext
// artifacts and the public aggregate-evaluation key. SIGINT/SIGTERM
// drain in-flight requests before exit (-shutdown-grace bounds the
// drain).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"slices"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"

	// Register the in-memory sql driver so -store sql works out of the
	// box for demos and restart tests (DSN "dpemem:<name>"); production
	// deployments compile their real driver into the binary the same way.
	_ "repro/internal/store/memdriver"
)

// serverConfig is the fully-validated outcome of flag parsing — what
// run needs to start serving.
type serverConfig struct {
	addr        string
	grace       time.Duration
	storeName   string // backend registered in internal/store; "" = in-memory
	storeDSN    string
	metricsAddr string
	pprof       bool
	slowRequest time.Duration
	service     service.Config
}

// parseConfig parses and validates the command line without touching
// the process (no flag.ExitOnError, no os.Exit), so tests can drive it.
func parseConfig(args []string) (*serverConfig, error) {
	fs := flag.NewFlagSet("dpeserver", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	addr := fs.String("addr", ":8433", "listen address")
	par := fs.Int("par", 0, "distance-engine parallelism per session (0 = all cores)")
	maxSessions := fs.Int("max-sessions", 64, "maximum live sessions")
	shards := fs.Int("shards", 0, "session/cache shards (0 = GOMAXPROCS rounded up to a power of two)")
	cacheEntries := fs.Int("cache-entries", 128, "prepared-state cache: max entries")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "prepared-state cache: max estimated bytes")
	maxLogs := fs.Int("max-logs", 64, "max distinct uploaded logs per session")
	maxLogBytes := fs.Int64("max-log-bytes", 64<<20, "max total raw log bytes per session")
	sessionTTL := fs.Duration("session-ttl", 2*time.Hour, "idle time after which a session may be reaped at capacity")
	grace := fs.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown drain window")
	dataDir := fs.String("data-dir", "", "persist sessions, logs, and prepared state to per-shard journals in this directory ('' = in-memory only); shorthand for -store segments -store-dsn DIR")
	storeName := fs.String("store", "", "persistence backend: "+strings.Join(store.Backends(), "|")+" ('' = in-memory, or segments when -data-dir is set)")
	storeDSN := fs.String("store-dsn", "", "backend location: a directory for segments, driver:datasource for sql")
	compactInterval := fs.Duration("compact-interval", 10*time.Minute, "how often each shard's janitor compacts its journal (requires a persistent -store; <= 0 disables)")
	metricsAddr := fs.String("metrics-addr", "", "serve GET /metrics (Prometheus text) on this address ('' = no metrics listener)")
	pprofOn := fs.Bool("pprof", false, "also serve /debug/pprof/ on the metrics listener (requires -metrics-addr)")
	slowRequest := fs.Duration("slow-request", 1*time.Second, "log requests slower than this at warning level with stage spans (<= 0 disables)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *addr == "" {
		return nil, fmt.Errorf("-addr must not be empty")
	}
	if *par <= 0 {
		*par = runtime.NumCPU()
	}
	if *shards < 0 {
		return nil, fmt.Errorf("-shards must not be negative, got %d", *shards)
	}
	if *shards == 0 {
		*shards = service.DefaultShards()
	}
	for name, v := range map[string]int64{
		"-max-sessions":  int64(*maxSessions),
		"-cache-entries": int64(*cacheEntries),
		"-cache-bytes":   *cacheBytes,
		"-max-logs":      int64(*maxLogs),
		"-max-log-bytes": *maxLogBytes,
	} {
		if v <= 0 {
			return nil, fmt.Errorf("%s must be positive, got %d", name, v)
		}
	}
	if *sessionTTL <= 0 {
		return nil, fmt.Errorf("-session-ttl must be positive, got %v", *sessionTTL)
	}
	if *grace < 0 {
		return nil, fmt.Errorf("-shutdown-grace must not be negative, got %v", *grace)
	}
	if *compactInterval <= 0 {
		*compactInterval = -1 // Config semantics: negative disables, 0 means the default
	}
	if *pprofOn && *metricsAddr == "" {
		return nil, fmt.Errorf("-pprof requires -metrics-addr (profiling is served on the metrics listener)")
	}
	if *slowRequest < 0 {
		*slowRequest = 0 // Handler semantics: 0 disables slow-request tracing
	}
	name, dsn, err := resolveStore(*storeName, *storeDSN, *dataDir)
	if err != nil {
		return nil, err
	}
	return &serverConfig{
		addr:        *addr,
		grace:       *grace,
		storeName:   name,
		storeDSN:    dsn,
		metricsAddr: *metricsAddr,
		pprof:       *pprofOn,
		slowRequest: *slowRequest,
		service: service.Config{
			MaxSessions:           *maxSessions,
			Parallelism:           *par,
			CacheEntries:          *cacheEntries,
			CacheBytes:            *cacheBytes,
			MaxLogsPerSession:     *maxLogs,
			MaxLogBytesPerSession: *maxLogBytes,
			SessionTTL:            *sessionTTL,
			Shards:                *shards,
			CompactEvery:          *compactInterval,
		},
	}, nil
}

// resolveStore reconciles the three persistence flags into one
// (backend, dsn) pair. -data-dir stays the ergonomic spelling for the
// segment backend; -store/-store-dsn name any registered backend.
func resolveStore(name, dsn, dataDir string) (string, string, error) {
	if name == "" {
		if dsn != "" {
			return "", "", fmt.Errorf("-store-dsn requires -store (one of %s)", strings.Join(store.Backends(), "|"))
		}
		if dataDir != "" {
			return "segments", dataDir, nil
		}
		return "", "", nil // in-memory
	}
	if !slices.Contains(store.Backends(), name) {
		return "", "", fmt.Errorf("unknown -store %q (have %s)", name, strings.Join(store.Backends(), "|"))
	}
	if dataDir != "" {
		if name != "segments" {
			return "", "", fmt.Errorf("-data-dir only applies to the segments backend, not -store %s (use -store-dsn)", name)
		}
		if dsn != "" && dsn != dataDir {
			return "", "", fmt.Errorf("-data-dir %q conflicts with -store-dsn %q; set one", dataDir, dsn)
		}
		dsn = dataDir
	}
	if name != "null" && dsn == "" {
		return "", "", fmt.Errorf("-store %s needs -store-dsn (a directory for segments, driver:datasource for sql)", name)
	}
	return name, dsn, nil
}

func main() {
	sc, err := parseConfig(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpeserver:", err)
		os.Exit(2)
	}
	if err := run(sc); err != nil {
		fmt.Fprintln(os.Stderr, "dpeserver:", err)
		os.Exit(1)
	}
}

func run(sc *serverConfig) error {
	addr, cfg, grace := sc.addr, sc.service, sc.grace
	// The obs registry exists whether or not a metrics listener does:
	// instrumentation is wired once, and -metrics-addr only decides
	// whether anything scrapes it.
	metrics := obs.NewRegistry()
	if sc.storeName != "" {
		st, err := store.OpenBackend(sc.storeName, sc.storeDSN)
		if err != nil {
			return err
		}
		// Every persistent backend exports the same dpe_store_* metric
		// names; the null backend has nothing to instrument.
		if in, ok := st.(store.Instrumenter); ok {
			in.Instrument(metrics)
		}
		cfg.Store = st
	}
	cfg.Obs = metrics
	reg, err := service.OpenRegistry(cfg)
	if err != nil {
		return err
	}
	defer reg.Close() // stop the janitors and sync the journals on the way out
	if sc.storeName != "" {
		rec := reg.Recovery()
		log.Printf("dpeserver: recovered from %s store %s: %d sessions, %d logs, %d prepared snapshots (%d tombstones, %d skipped records)",
			sc.storeName, sc.storeDSN, rec.Sessions, rec.Logs, rec.Snapshots, rec.Tombstones, rec.Skipped)
	}
	srv := &http.Server{
		Addr: addr,
		Handler: service.NewHandlerWithOptions(reg, service.HandlerOptions{
			Obs:         metrics,
			Logger:      slog.Default(),
			SlowRequest: sc.slowRequest,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 2)
	var metricsSrv *http.Server
	if sc.metricsAddr != "" {
		mmux := http.NewServeMux()
		mmux.Handle("/metrics", metrics.Handler())
		if sc.pprof {
			// The default-mux registrations in net/http/pprof are side
			// effects we skip (blank import pollutes DefaultServeMux);
			// mount the handlers explicitly instead.
			mmux.HandleFunc("/debug/pprof/", pprof.Index)
			mmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		metricsSrv = &http.Server{
			Addr:              sc.metricsAddr,
			Handler:           mmux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("dpeserver: metrics on %s (pprof %v)", sc.metricsAddr, sc.pprof)
			if err := metricsSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("metrics listener: %w", err)
			}
		}()
	}

	go func() {
		log.Printf("dpeserver: listening on %s (parallelism %d, %d shards, max %d sessions, cache %d entries / %d bytes)",
			addr, cfg.Parallelism, cfg.Shards, cfg.MaxSessions, cfg.CacheEntries, cfg.CacheBytes)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("dpeserver: shutting down (draining up to %s)", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if metricsSrv != nil {
		metricsSrv.Shutdown(shutdownCtx)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("dpeserver: bye")
	return nil
}
