package main

import (
	"strings"
	"testing"

	dpe "repro"
)

func TestParseConfigDefaults(t *testing.T) {
	c, err := parseConfig([]string{"gen"})
	if err != nil {
		t.Fatal(err)
	}
	if c.cmd != "gen" || c.seed != "dpectl" || c.master != "dpectl-demo-master" {
		t.Errorf("parsed = %+v", c)
	}
	if c.queries != 20 || c.rows != 80 || c.k != 4 || c.remote != "" {
		t.Errorf("parsed sizes = %+v", c)
	}
	if c.measure != dpe.MeasureToken {
		t.Errorf("measure = %v, want token", c.measure)
	}
	if c.par < 1 {
		t.Errorf("par = %d, want all cores", c.par)
	}
}

func TestParseConfigAllCommands(t *testing.T) {
	for _, cmd := range []string{"gen", "encrypt", "distance", "mine", "neighbors", "verify"} {
		if _, err := parseConfig([]string{cmd}); err != nil {
			t.Errorf("command %q: %v", cmd, err)
		}
	}
}

func TestParseConfigOverrides(t *testing.T) {
	c, err := parseConfig([]string{
		"mine", "-seed", "s1", "-master", "m1", "-queries", "30",
		"-rows", "10", "-measure", "access-area", "-k", "2",
		"-par", "2", "-remote", "http://localhost:8433",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.seed != "s1" || c.master != "m1" || c.queries != 30 || c.rows != 10 ||
		c.measure != dpe.MeasureAccessArea || c.k != 2 || c.par != 2 ||
		c.remote != "http://localhost:8433" {
		t.Errorf("parsed = %+v", c)
	}
}

// TestParseConfigNeighbors pins the neighbors subcommand's flag
// surface: -query and -k select the search, and -remote points it at a
// dpeserver exactly like the other subcommands.
func TestParseConfigNeighbors(t *testing.T) {
	c, err := parseConfig([]string{
		"neighbors", "-query", "7", "-k", "5", "-measure", "structure",
		"-remote", "http://localhost:8433",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.cmd != "neighbors" || c.query != 7 || c.k != 5 ||
		c.measure != dpe.MeasureStructure || c.remote != "http://localhost:8433" {
		t.Errorf("parsed = %+v", c)
	}
	// The default query index is the first log entry.
	c, err = parseConfig([]string{"neighbors"})
	if err != nil {
		t.Fatal(err)
	}
	if c.query != 0 {
		t.Errorf("default query = %d, want 0", c.query)
	}
}

// TestParseConfigExportImport pins the bundle subcommands' flag
// surface: both require -remote, export requires -session (with the
// output defaulting to <session>.dpe), and import takes the bundle file
// as its one positional argument.
func TestParseConfigExportImport(t *testing.T) {
	c, err := parseConfig([]string{"export", "-remote", "http://localhost:8433", "-session", "s-abc"})
	if err != nil {
		t.Fatal(err)
	}
	if c.cmd != "export" || c.session != "s-abc" || c.out != "s-abc.dpe" || c.remote != "http://localhost:8433" {
		t.Errorf("parsed = %+v", c)
	}
	c, err = parseConfig([]string{"export", "-remote", "http://h", "-session", "s-abc", "-o", "backup.dpe"})
	if err != nil {
		t.Fatal(err)
	}
	if c.out != "backup.dpe" {
		t.Errorf("out = %q, want backup.dpe", c.out)
	}
	c, err = parseConfig([]string{"import", "-remote", "http://h", "backup.dpe"})
	if err != nil {
		t.Fatal(err)
	}
	if c.cmd != "import" || c.in != "backup.dpe" || c.remote != "http://h" {
		t.Errorf("parsed = %+v", c)
	}
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"export", "-session", "s-abc"}, "-remote"},
		{[]string{"export", "-remote", "http://h"}, "-session"},
		{[]string{"import", "backup.dpe"}, "-remote"},
		{[]string{"import", "-remote", "http://h"}, "bundle"},
		{[]string{"import", "-remote", "http://h", "a.dpe", "b.dpe"}, "bundle"},
	}
	for _, tc := range cases {
		_, err := parseConfig(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseConfig(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
		}
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{nil, "missing command"},
		{[]string{"frobnicate"}, "unknown command"},
		{[]string{"gen", "-measure", "bogus"}, "unknown measure"},
		{[]string{"gen", "-queries", "1"}, "-queries"},
		{[]string{"gen", "-rows", "0"}, "-rows"},
		{[]string{"mine", "-k", "0"}, "-k"},
		{[]string{"neighbors", "-k", "0"}, "-k"},
		{[]string{"neighbors", "-query", "-1"}, "-query"},
		{[]string{"neighbors", "-query", "20", "-queries", "20"}, "-query"},
		{[]string{"gen", "-master", ""}, "-master"},
		{[]string{"gen", "-no-such"}, "not defined"},
		{[]string{"gen", "stray"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		_, err := parseConfig(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseConfig(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
		}
	}
}
