// Command dpectl drives the DPE pipeline interactively:
//
//	dpectl gen      -queries 20                 # generate a synthetic log
//	dpectl encrypt  -measure token -queries 20  # encrypt the log, print it
//	dpectl distance -measure token -queries 20  # pairwise distance matrix
//	dpectl mine     -measure token -k 4         # cluster the encrypted log
//	dpectl verify   -measure token              # check Definition 1
//
// Everything is deterministic in -seed; the master key comes from
// -master (do not reuse the default outside demos). -par sizes the
// provider's worker pool (0 means all cores).
//
// With -remote URL, the provider side runs against a dpeserver at that
// URL instead of in-process: the encrypted artifacts travel over the
// wire, and distance/mine/verify become HTTP calls. The output is
// identical either way — that is the wire format's preservation
// property.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	dpe "repro"
	"repro/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.String("seed", "dpectl", "workload seed")
	master := fs.String("master", "dpectl-demo-master", "master secret")
	queries := fs.Int("queries", 20, "queries in the log")
	rowsN := fs.Int("rows", 80, "rows per table")
	measureName := fs.String("measure", "token", "measure: token|structure|result|access-area")
	k := fs.Int("k", 4, "clusters for mine")
	par := fs.Int("par", 0, "distance-engine parallelism (0 = all cores)")
	remote := fs.String("remote", "", "dpeserver base URL; empty runs the provider in-process")
	fs.Parse(os.Args[2:])

	if *par <= 0 {
		*par = runtime.NumCPU()
	}
	if err := run(cmd, *seed, *master, *queries, *rowsN, *measureName, *k, *par, *remote); err != nil {
		fmt.Fprintln(os.Stderr, "dpectl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dpectl <gen|encrypt|distance|mine|verify> [flags]")
}

func setup(seed, master string, queries, rows int) (*dpe.Workload, *dpe.Owner, error) {
	w, err := dpe.GenerateWorkload(dpe.WorkloadConfig{
		Seed: seed, Queries: queries, Rows: rows,
		IncludeAggregates: true, IncludeJoins: true,
	})
	if err != nil {
		return nil, nil, err
	}
	owner, err := dpe.NewOwner([]byte(master), w.Schema, dpe.Config{PaillierBits: 512})
	if err != nil {
		return nil, nil, err
	}
	if err := owner.DeclareJoins(w.Queries); err != nil {
		return nil, nil, err
	}
	return w, owner, nil
}

// providers builds the owner-side (plaintext artifacts) and
// provider-side (encrypted artifacts) sessions for a measure, sharing
// exactly the inputs Table I prescribes. With remote set, the encrypted
// side is a session on that dpeserver — the artifacts go over the wire
// — while the plaintext check stays with the owner in-process.
func providers(ctx context.Context, w *dpe.Workload, owner *dpe.Owner, m dpe.Measure, par int, remote string) (plain, enc dpe.ProviderAPI, err error) {
	plainOpts := []dpe.ProviderOption{dpe.WithParallelism(par)}
	switch m {
	case dpe.MeasureResult:
		plainOpts = append(plainOpts, dpe.WithCatalog(w.Catalog, nil))
	case dpe.MeasureAccessArea:
		plainOpts = append(plainOpts, dpe.WithDomains(w.Domains))
	}
	encOpts, remoteOpts, err := service.EncryptedArtifactOptions(owner, w, m)
	if err != nil {
		return nil, nil, err
	}
	plain, err = dpe.NewProvider(m, plainOpts...)
	if err != nil {
		return nil, nil, err
	}
	if remote != "" {
		enc, err = service.NewClient(remote).NewSession(ctx, m, remoteOpts...)
	} else {
		enc, err = dpe.NewProvider(m, append([]dpe.ProviderOption{dpe.WithParallelism(par)}, encOpts...)...)
	}
	if err != nil {
		return nil, nil, err
	}
	return plain, enc, nil
}

func run(cmd, seed, master string, queries, rows int, measureName string, k, par int, remote string) error {
	ctx := context.Background()
	m, err := dpe.ParseMeasure(measureName)
	if err != nil {
		return err
	}
	w, owner, err := setup(seed, master, queries, rows)
	if err != nil {
		return err
	}

	switch cmd {
	case "gen":
		for i, q := range w.Queries {
			fmt.Printf("%3d  %s\n", i, q)
		}
		return nil

	case "encrypt":
		encLog, err := owner.EncryptLog(w.Queries, m)
		if err != nil {
			return err
		}
		for i, q := range encLog {
			fmt.Printf("%3d  %s\n", i, q)
		}
		return nil

	case "distance":
		encLog, err := owner.EncryptLog(w.Queries, m)
		if err != nil {
			return err
		}
		_, provider, err := providers(ctx, w, owner, m, par, remote)
		if err != nil {
			return err
		}
		enc, err := provider.DistanceMatrix(ctx, encLog)
		if err != nil {
			return err
		}
		fmt.Printf("pairwise %s distances over the ENCRYPTED log (%d queries):\n", m, len(enc))
		for i := range enc {
			for j := range enc[i] {
				fmt.Printf("%5.2f ", enc[i][j])
			}
			fmt.Println()
		}
		return nil

	case "mine":
		encLog, err := owner.EncryptLog(w.Queries, m)
		if err != nil {
			return err
		}
		_, provider, err := providers(ctx, w, owner, m, par, remote)
		if err != nil {
			return err
		}
		res, err := provider.Mine(ctx, encLog, dpe.MineSpec{Algorithm: dpe.MineKMedoids, K: k})
		if err != nil {
			return err
		}
		fmt.Printf("k-medoids over the ENCRYPTED log (measure %s, k=%d, cost %.3f):\n", m, k, res.Clusters.Cost)
		for c := range res.Clusters.Medoids {
			fmt.Printf("cluster %d (medoid query %d):\n", c, res.Clusters.Medoids[c])
			for i, a := range res.Clusters.Assign {
				if a == c {
					fmt.Printf("   %3d  %s\n", i, w.Queries[i])
				}
			}
		}
		return nil

	case "verify":
		encLog, err := owner.EncryptLog(w.Queries, m)
		if err != nil {
			return err
		}
		plainP, encP, err := providers(ctx, w, owner, m, par, remote)
		if err != nil {
			return err
		}
		plain, err := plainP.DistanceMatrix(ctx, w.Queries)
		if err != nil {
			return err
		}
		enc, err := encP.DistanceMatrix(ctx, encLog)
		if err != nil {
			return err
		}
		rep, err := encP.VerifyPreservation(plain, enc)
		if err != nil {
			return err
		}
		fmt.Printf("measure %s: %d pairs, max |Δd| = %.2e, distance-preserving: %v\n",
			m, rep.Pairs, rep.MaxAbsError, rep.Preserved)
		if !rep.Preserved {
			return fmt.Errorf("Definition 1 violated")
		}
		return nil

	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}
