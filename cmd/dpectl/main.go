// Command dpectl drives the DPE pipeline interactively:
//
//	dpectl gen      -queries 20                 # generate a synthetic log
//	dpectl encrypt  -measure token -queries 20  # encrypt the log, print it
//	dpectl distance -measure token -queries 20  # pairwise distance matrix
//	dpectl mine     -measure token -k 4         # cluster the encrypted log
//	dpectl verify   -measure token              # check Definition 1
//
// Everything is deterministic in -seed; the master key comes from
// -master (do not reuse the default outside demos).
package main

import (
	"flag"
	"fmt"
	"os"

	dpe "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.String("seed", "dpectl", "workload seed")
	master := fs.String("master", "dpectl-demo-master", "master secret")
	queries := fs.Int("queries", 20, "queries in the log")
	rowsN := fs.Int("rows", 80, "rows per table")
	measureName := fs.String("measure", "token", "measure: token|structure|result|accessarea")
	k := fs.Int("k", 4, "clusters for mine")
	fs.Parse(os.Args[2:])

	if err := run(cmd, *seed, *master, *queries, *rowsN, *measureName, *k); err != nil {
		fmt.Fprintln(os.Stderr, "dpectl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dpectl <gen|encrypt|distance|mine|verify> [flags]")
}

func measureOf(name string) (dpe.Measure, error) {
	switch name {
	case "token":
		return dpe.MeasureToken, nil
	case "structure":
		return dpe.MeasureStructure, nil
	case "result":
		return dpe.MeasureResult, nil
	case "accessarea", "access-area":
		return dpe.MeasureAccessArea, nil
	default:
		return 0, fmt.Errorf("unknown measure %q", name)
	}
}

func setup(seed, master string, queries, rows int) (*dpe.Workload, *dpe.Owner, error) {
	w, err := dpe.GenerateWorkload(dpe.WorkloadConfig{
		Seed: seed, Queries: queries, Rows: rows,
		IncludeAggregates: true, IncludeJoins: true,
	})
	if err != nil {
		return nil, nil, err
	}
	owner, err := dpe.NewOwner([]byte(master), w.Schema, dpe.Config{PaillierBits: 512})
	if err != nil {
		return nil, nil, err
	}
	if err := owner.DeclareJoins(w.Queries); err != nil {
		return nil, nil, err
	}
	return w, owner, nil
}

// matrices builds the plaintext and ciphertext distance matrices for a
// measure, sharing exactly the inputs Table I prescribes.
func matrices(w *dpe.Workload, owner *dpe.Owner, m dpe.Measure) (dpe.Matrix, dpe.Matrix, []string, error) {
	encLog, err := owner.EncryptLog(w.Queries, m)
	if err != nil {
		return nil, nil, nil, err
	}
	var plain, enc dpe.Matrix
	switch m {
	case dpe.MeasureToken:
		plain, err = dpe.TokenDistanceMatrix(w.Queries)
		if err == nil {
			enc, err = dpe.TokenDistanceMatrix(encLog)
		}
	case dpe.MeasureStructure:
		plain, err = dpe.StructureDistanceMatrix(w.Queries)
		if err == nil {
			enc, err = dpe.StructureDistanceMatrix(encLog)
		}
	case dpe.MeasureResult:
		plain, err = dpe.ResultDistanceMatrix(w.Queries, w.Catalog, nil)
		if err == nil {
			var encCat *dpe.Catalog
			encCat, err = owner.EncryptCatalog(w.Catalog)
			if err == nil {
				enc, err = dpe.ResultDistanceMatrix(encLog, encCat, owner.ResultAggregator())
			}
		}
	case dpe.MeasureAccessArea:
		plain, err = dpe.AccessAreaDistanceMatrix(w.Queries, w.Domains, 0)
		if err == nil {
			var encDomains map[string]dpe.Domain
			encDomains, err = owner.EncryptDomains(w.Domains)
			if err == nil {
				enc, err = dpe.AccessAreaDistanceMatrix(encLog, encDomains, 0)
			}
		}
	}
	if err != nil {
		return nil, nil, nil, err
	}
	return plain, enc, encLog, nil
}

func run(cmd, seed, master string, queries, rows int, measureName string, k int) error {
	m, err := measureOf(measureName)
	if err != nil {
		return err
	}
	w, owner, err := setup(seed, master, queries, rows)
	if err != nil {
		return err
	}

	switch cmd {
	case "gen":
		for i, q := range w.Queries {
			fmt.Printf("%3d  %s\n", i, q)
		}
		return nil

	case "encrypt":
		encLog, err := owner.EncryptLog(w.Queries, m)
		if err != nil {
			return err
		}
		for i, q := range encLog {
			fmt.Printf("%3d  %s\n", i, q)
		}
		return nil

	case "distance":
		_, enc, _, err := matrices(w, owner, m)
		if err != nil {
			return err
		}
		fmt.Printf("pairwise %s distances over the ENCRYPTED log (%d queries):\n", m, len(enc))
		for i := range enc {
			for j := range enc[i] {
				fmt.Printf("%5.2f ", enc[i][j])
			}
			fmt.Println()
		}
		return nil

	case "mine":
		_, enc, _, err := matrices(w, owner, m)
		if err != nil {
			return err
		}
		res, err := dpe.KMedoids(enc, k)
		if err != nil {
			return err
		}
		fmt.Printf("k-medoids over the ENCRYPTED log (measure %s, k=%d, cost %.3f):\n", m, k, res.Cost)
		for c := range res.Medoids {
			fmt.Printf("cluster %d (medoid query %d):\n", c, res.Medoids[c])
			for i, a := range res.Assign {
				if a == c {
					fmt.Printf("   %3d  %s\n", i, w.Queries[i])
				}
			}
		}
		return nil

	case "verify":
		plain, enc, _, err := matrices(w, owner, m)
		if err != nil {
			return err
		}
		rep, err := dpe.VerifyPreservation(plain, enc, 0)
		if err != nil {
			return err
		}
		fmt.Printf("measure %s: %d pairs, max |Δd| = %.2e, distance-preserving: %v\n",
			m, rep.Pairs, rep.MaxAbsError, rep.Preserved)
		if !rep.Preserved {
			return fmt.Errorf("Definition 1 violated")
		}
		return nil

	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}
