// Command dpectl drives the DPE pipeline interactively:
//
//	dpectl gen      -queries 20                 # generate a synthetic log
//	dpectl encrypt  -measure token -queries 20  # encrypt the log, print it
//	dpectl distance -measure token -queries 20  # pairwise distance matrix
//	dpectl mine     -measure token -k 4         # cluster the encrypted log
//	dpectl mine     -algorithm apriori -min-support 4   # frequent itemsets; also
//	                dbscan|complete-link|outliers|knn via -eps/-minpts/-p/-d/-query
//	dpectl neighbors -query 3 -k 5              # sublinear top-K neighbors
//	dpectl verify   -measure token              # check Definition 1
//	dpectl export   -remote URL -session ID -o bundle.dpe   # portable tenant bundle
//	dpectl import   -remote URL bundle.dpe      # restore a bundle (warm caches)
//
// Everything is deterministic in -seed; the master key comes from
// -master (do not reuse the default outside demos). -par sizes the
// provider's worker pool (0 means all cores).
//
// With -remote URL, the provider side runs against a dpeserver at that
// URL instead of in-process: the encrypted artifacts travel over the
// wire, and distance/mine/verify become HTTP calls. The output is
// identical either way — that is the wire format's preservation
// property.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	dpe "repro"
	"repro/internal/service"
)

// cliConfig is the fully-validated outcome of parsing the dpectl
// command line: the subcommand plus its parameters.
type cliConfig struct {
	cmd        string
	seed       string
	master     string
	queries    int
	rows       int
	measure    dpe.Measure
	k          int
	query      int
	par        int
	remote     string
	session    string // export: which session to bundle
	out        string // export: bundle file to write
	in         string // import: bundle file to read
	algorithm  dpe.MiningAlgorithm
	eps        float64
	minPts     int
	p, d       float64
	minSupport int
	maxLen     int
}

// mineSpec assembles the MineSpec the mine subcommand runs. Validate
// only reads the fields the chosen algorithm uses, so setting all of
// them is harmless.
func (c *cliConfig) mineSpec() dpe.MineSpec {
	return dpe.MineSpec{
		Algorithm: c.algorithm, K: c.k, Eps: c.eps, MinPts: c.minPts,
		P: c.p, D: c.d, Query: c.query,
		MinSupport: c.minSupport, MaxLen: c.maxLen,
	}
}

// commands are the valid subcommands.
var commands = map[string]bool{
	"gen": true, "encrypt": true, "distance": true, "mine": true,
	"neighbors": true, "verify": true, "export": true, "import": true,
}

// parseConfig parses and validates `dpectl <cmd> [flags]` without
// exiting the process, so tests can drive it.
func parseConfig(args []string) (*cliConfig, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("missing command: %s", usageLine)
	}
	c := &cliConfig{cmd: args[0]}
	if !commands[c.cmd] {
		return nil, fmt.Errorf("unknown command %q: %s", c.cmd, usageLine)
	}
	fs := flag.NewFlagSet(c.cmd, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	seed := fs.String("seed", "dpectl", "workload seed")
	master := fs.String("master", "dpectl-demo-master", "master secret")
	queries := fs.Int("queries", 20, "queries in the log")
	rowsN := fs.Int("rows", 80, "rows per table")
	measureName := fs.String("measure", "token", "measure: token|structure|result|access-area")
	k := fs.Int("k", 4, "clusters for mine / neighbors for neighbors")
	query := fs.Int("query", 0, "query index neighbors (and mine -algorithm knn) search around")
	algorithmName := fs.String("algorithm", "k-medoids", "mine algorithm: k-medoids|dbscan|complete-link|outliers|knn|apriori")
	eps := fs.Float64("eps", 0.35, "DBSCAN neighborhood radius")
	minPts := fs.Int("minpts", 3, "DBSCAN core-point threshold")
	pFrac := fs.Float64("p", 0.95, "outliers: fraction p of DB(p, D)")
	dDist := fs.Float64("d", 0.8, "outliers: distance D of DB(p, D)")
	minSupport := fs.Int("min-support", 3, "apriori: absolute support threshold")
	maxLen := fs.Int("max-len", 3, "apriori: largest itemset size mined")
	par := fs.Int("par", 0, "distance-engine parallelism (0 = all cores)")
	remote := fs.String("remote", "", "dpeserver base URL; empty runs the provider in-process")
	session := fs.String("session", "", "export: id of the session to bundle")
	out := fs.String("o", "", "export: bundle file to write (default <session>.dpe)")
	if err := fs.Parse(args[1:]); err != nil {
		return nil, err
	}
	// import takes its bundle file as the one positional argument; every
	// other command is flags-only.
	if c.cmd == "import" {
		if fs.NArg() != 1 {
			return nil, fmt.Errorf("usage: dpectl import -remote URL bundle.dpe")
		}
		c.in = fs.Arg(0)
	} else if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if c.cmd == "export" || c.cmd == "import" {
		// Bundles move server-side state, so both commands talk to a
		// server; nothing else on the command line applies to them.
		if *remote == "" {
			return nil, fmt.Errorf("dpectl %s requires -remote", c.cmd)
		}
		if c.cmd == "export" {
			if *session == "" {
				return nil, fmt.Errorf("dpectl export requires -session")
			}
			c.session = *session
			c.out = *out
			if c.out == "" {
				c.out = c.session + ".dpe"
			}
		}
		c.remote = *remote
		return c, nil
	}
	m, err := dpe.ParseMeasure(*measureName)
	if err != nil {
		return nil, err
	}
	alg, err := dpe.ParseMiningAlgorithm(*algorithmName)
	if err != nil {
		return nil, err
	}
	if *queries < 2 {
		return nil, fmt.Errorf("-queries must be at least 2, got %d", *queries)
	}
	if *rowsN <= 0 {
		return nil, fmt.Errorf("-rows must be positive, got %d", *rowsN)
	}
	if *k <= 0 {
		return nil, fmt.Errorf("-k must be positive, got %d", *k)
	}
	if *query < 0 || *query >= *queries {
		return nil, fmt.Errorf("-query must index the log: got %d with %d queries", *query, *queries)
	}
	if *master == "" {
		return nil, fmt.Errorf("-master must not be empty")
	}
	if *par <= 0 {
		*par = runtime.NumCPU()
	}
	c.seed, c.master, c.queries, c.rows = *seed, *master, *queries, *rowsN
	c.measure, c.k, c.query, c.par, c.remote = m, *k, *query, *par, *remote
	c.algorithm, c.eps, c.minPts, c.p, c.d = alg, *eps, *minPts, *pFrac, *dDist
	c.minSupport, c.maxLen = *minSupport, *maxLen
	if c.cmd == "mine" {
		if err := c.mineSpec().Validate(c.queries); err != nil {
			return nil, err
		}
	}
	return c, nil
}

const usageLine = "usage: dpectl <gen|encrypt|distance|mine|neighbors|verify|export|import> [flags]"

func main() {
	c, err := parseConfig(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpectl:", err)
		os.Exit(2)
	}
	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "dpectl:", err)
		os.Exit(1)
	}
}

func setup(seed, master string, queries, rows int) (*dpe.Workload, *dpe.Owner, error) {
	w, err := dpe.GenerateWorkload(dpe.WorkloadConfig{
		Seed: seed, Queries: queries, Rows: rows,
		IncludeAggregates: true, IncludeJoins: true,
	})
	if err != nil {
		return nil, nil, err
	}
	owner, err := dpe.NewOwner([]byte(master), w.Schema, dpe.Config{PaillierBits: 512})
	if err != nil {
		return nil, nil, err
	}
	if err := owner.DeclareJoins(w.Queries); err != nil {
		return nil, nil, err
	}
	return w, owner, nil
}

// providers builds the owner-side (plaintext artifacts) and
// provider-side (encrypted artifacts) sessions for a measure, sharing
// exactly the inputs Table I prescribes. With remote set, the encrypted
// side is a session on that dpeserver — the artifacts go over the wire
// — while the plaintext check stays with the owner in-process.
func providers(ctx context.Context, w *dpe.Workload, owner *dpe.Owner, m dpe.Measure, par int, remote string) (plain, enc dpe.ProviderAPI, err error) {
	plainOpts := []dpe.ProviderOption{dpe.WithParallelism(par)}
	switch m {
	case dpe.MeasureResult:
		plainOpts = append(plainOpts, dpe.WithCatalog(w.Catalog, nil))
	case dpe.MeasureAccessArea:
		plainOpts = append(plainOpts, dpe.WithDomains(w.Domains))
	}
	encOpts, remoteOpts, err := service.EncryptedArtifactOptions(owner, w, m)
	if err != nil {
		return nil, nil, err
	}
	plain, err = dpe.NewProvider(m, plainOpts...)
	if err != nil {
		return nil, nil, err
	}
	if remote != "" {
		enc, err = service.NewClient(remote).NewSession(ctx, m, remoteOpts...)
	} else {
		enc, err = dpe.NewProvider(m, append([]dpe.ProviderOption{dpe.WithParallelism(par)}, encOpts...)...)
	}
	if err != nil {
		return nil, nil, err
	}
	return plain, enc, nil
}

func run(c *cliConfig) error {
	ctx := context.Background()
	// export/import move an opaque bundle between a server and a file;
	// they need no workload or keys.
	switch c.cmd {
	case "export":
		f, err := os.Create(c.out)
		if err != nil {
			return err
		}
		if err := service.NewClient(c.remote).ExportSession(ctx, c.session, f); err != nil {
			f.Close()
			os.Remove(c.out)
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("exported session %s to %s\n", c.session, c.out)
		return nil
	case "import":
		f, err := os.Open(c.in)
		if err != nil {
			return err
		}
		defer f.Close()
		res, err := service.NewClient(c.remote).ImportSession(ctx, f)
		if err != nil {
			return err
		}
		fmt.Printf("imported session %s: %d logs, %d snapshots, %d approx indexes, %d mine states (%d skipped)\n",
			res.Session, res.Logs, res.Snapshots, res.ApproxIndexes, res.MineStates, res.Skipped)
		return nil
	}

	m, k, par, remote := c.measure, c.k, c.par, c.remote
	w, owner, err := setup(c.seed, c.master, c.queries, c.rows)
	if err != nil {
		return err
	}

	switch c.cmd {
	case "gen":
		for i, q := range w.Queries {
			fmt.Printf("%3d  %s\n", i, q)
		}
		return nil

	case "encrypt":
		encLog, err := owner.EncryptLog(w.Queries, m)
		if err != nil {
			return err
		}
		for i, q := range encLog {
			fmt.Printf("%3d  %s\n", i, q)
		}
		return nil

	case "distance":
		encLog, err := owner.EncryptLog(w.Queries, m)
		if err != nil {
			return err
		}
		_, provider, err := providers(ctx, w, owner, m, par, remote)
		if err != nil {
			return err
		}
		enc, err := provider.DistanceMatrix(ctx, encLog)
		if err != nil {
			return err
		}
		fmt.Printf("pairwise %s distances over the ENCRYPTED log (%d queries):\n", m, len(enc))
		for i := range enc {
			for j := range enc[i] {
				fmt.Printf("%5.2f ", enc[i][j])
			}
			fmt.Println()
		}
		return nil

	case "mine":
		encLog, err := owner.EncryptLog(w.Queries, m)
		if err != nil {
			return err
		}
		_, provider, err := providers(ctx, w, owner, m, par, remote)
		if err != nil {
			return err
		}
		spec := c.mineSpec()
		res, err := provider.Mine(ctx, encLog, spec)
		if err != nil {
			return err
		}
		return printMine(os.Stdout, w.Queries, spec, res)

	case "neighbors":
		encLog, err := owner.EncryptLog(w.Queries, m)
		if err != nil {
			return err
		}
		_, provider, err := providers(ctx, w, owner, m, par, remote)
		if err != nil {
			return err
		}
		res, err := provider.Neighbors(ctx, encLog, c.query, k)
		if err != nil {
			return err
		}
		fmt.Printf("top-%d neighbors of query %d over the ENCRYPTED log (measure %s):\n", k, c.query, m)
		fmt.Printf("   q    %s\n", w.Queries[c.query])
		for _, nb := range res.Neighbors {
			fmt.Printf("%4d  d=%.3f  %s\n", nb.Index, nb.Distance, w.Queries[nb.Index])
		}
		fmt.Printf("scored %d of %d possible candidates (LSH pair budget)\n", res.Candidates, res.N-1)
		return nil

	case "verify":
		encLog, err := owner.EncryptLog(w.Queries, m)
		if err != nil {
			return err
		}
		plainP, encP, err := providers(ctx, w, owner, m, par, remote)
		if err != nil {
			return err
		}
		plain, err := plainP.DistanceMatrix(ctx, w.Queries)
		if err != nil {
			return err
		}
		enc, err := encP.DistanceMatrix(ctx, encLog)
		if err != nil {
			return err
		}
		rep, err := encP.VerifyPreservation(plain, enc)
		if err != nil {
			return err
		}
		fmt.Printf("measure %s: %d pairs, max |Δd| = %.2e, distance-preserving: %v\n",
			m, rep.Pairs, rep.MaxAbsError, rep.Preserved)
		if !rep.Preserved {
			return fmt.Errorf("Definition 1 violated")
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q: %s", c.cmd, usageLine)
	}
}

// printMine renders one MineResult against the plaintext log the owner
// keeps: clusters, per-query labels, outlier flags, a neighbor list,
// or frequent itemsets, depending on the algorithm mined.
func printMine(out io.Writer, queries []string, spec dpe.MineSpec, res *dpe.MineResult) error {
	switch spec.Algorithm {
	case dpe.MineKMedoids:
		fmt.Fprintf(out, "k-medoids over the ENCRYPTED log (k=%d, cost %.3f):\n", spec.K, res.Clusters.Cost)
		for c := range res.Clusters.Medoids {
			fmt.Fprintf(out, "cluster %d (medoid query %d):\n", c, res.Clusters.Medoids[c])
			for i, a := range res.Clusters.Assign {
				if a == c {
					fmt.Fprintf(out, "   %3d  %s\n", i, queries[i])
				}
			}
		}
	case dpe.MineDBSCAN, dpe.MineCompleteLink:
		if spec.Algorithm == dpe.MineDBSCAN {
			fmt.Fprintf(out, "dbscan over the ENCRYPTED log (eps=%g, minPts=%d):\n", spec.Eps, spec.MinPts)
		} else {
			fmt.Fprintf(out, "complete-link over the ENCRYPTED log (k=%d):\n", spec.K)
		}
		printLabels(out, queries, res.Labels)
	case dpe.MineOutliers:
		fmt.Fprintf(out, "DB(p=%g, D=%g) outliers over the ENCRYPTED log:\n", spec.P, spec.D)
		n := 0
		for i, o := range res.Outliers {
			if o {
				fmt.Fprintf(out, "   %3d  %s\n", i, queries[i])
				n++
			}
		}
		fmt.Fprintf(out, "%d of %d queries flagged\n", n, len(queries))
	case dpe.MineKNN:
		fmt.Fprintf(out, "top-%d neighbors of query %d over the ENCRYPTED log:\n", spec.K, spec.Query)
		fmt.Fprintf(out, "   q    %s\n", queries[spec.Query])
		for _, nb := range res.Neighbors {
			fmt.Fprintf(out, "%4d  %s\n", nb, queries[nb])
		}
	case dpe.MineApriori:
		fmt.Fprintf(out, "apriori over the ENCRYPTED log (min support %d, max len %d): %d frequent itemsets\n",
			spec.MinSupport, spec.MaxLen, len(res.Itemsets))
		for _, s := range res.Itemsets {
			fmt.Fprintf(out, "%4d  %s\n", s.Support, strings.Join(s.Items, " "))
		}
	default:
		return fmt.Errorf("no renderer for algorithm %s", spec.Algorithm)
	}
	return nil
}

// printLabels groups a labeling by cluster id, noise last.
func printLabels(out io.Writer, queries []string, labels []int) {
	max := -1
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	for c := 0; c <= max; c++ {
		fmt.Fprintf(out, "cluster %d:\n", c)
		for i, l := range labels {
			if l == c {
				fmt.Fprintf(out, "   %3d  %s\n", i, queries[i])
			}
		}
	}
	noise := false
	for i, l := range labels {
		if l == dpe.Noise {
			if !noise {
				fmt.Fprintln(out, "noise:")
				noise = true
			}
			fmt.Fprintf(out, "   %3d  %s\n", i, queries[i])
		}
	}
}
