package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	dpe "repro"
	"repro/internal/bench"
)

func TestParseOptionsSelection(t *testing.T) {
	cases := []struct {
		args    []string
		paper   int
		harness int
	}{
		{[]string{"-exp", "all"}, 6, 0},          // text mode: E1–E6
		{[]string{"-exp", "all", "-json"}, 0, 1}, // harness "all"
		{[]string{"-exp", "table1"}, 1, 0},
		{[]string{"-exp", "engine"}, 0, 1},
		{[]string{"-exp", "append", "-json"}, 0, 1},
		{[]string{"-exp", "service"}, 0, 1},
		{[]string{"-exp", "hotpath"}, 0, 1},
	}
	for _, tc := range cases {
		o, err := parseOptions(tc.args)
		if err != nil {
			t.Errorf("parseOptions(%v): %v", tc.args, err)
			continue
		}
		paper, harness, err := o.selection()
		if err != nil {
			t.Errorf("selection(%v): %v", tc.args, err)
			continue
		}
		if len(paper) != tc.paper || len(harness) != tc.harness {
			t.Errorf("selection(%v) = %d paper, %d harness, want %d/%d",
				tc.args, len(paper), len(harness), tc.paper, tc.harness)
		}
	}
}

func TestParseOptionsBenchConfig(t *testing.T) {
	o, err := parseOptions([]string{"-exp", "append", "-short", "-queries", "12", "-measure", "token"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := o.benchConfig()
	if err != nil {
		t.Fatal(err)
	}
	// -short sets the smoke shape; explicit -queries wins over it.
	if cfg.Queries != 12 || cfg.Append != 4 || cfg.Rows != 24 {
		t.Errorf("config = %+v", cfg)
	}
	if len(cfg.Measures) != 1 || cfg.Measures[0] != dpe.MeasureToken {
		t.Errorf("measures = %v, want [token]", cfg.Measures)
	}
}

func TestParseOptionsErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-exp", "bogus"}, "unknown experiment"},
		{[]string{"-exp", "table1", "-json"}, "-json applies"},
		{[]string{"-exp", "table1", "-baseline", "b.json"}, "-baseline gates"},
		{[]string{"-measure", "bogus"}, "unknown measure"},
		{[]string{"-max-regress", "-0.1"}, "-max-regress"},
		{[]string{"stray"}, "unexpected arguments"},
		{[]string{"-compare", "a.json"}, "-compare needs -baseline"},
	}
	for _, tc := range cases {
		_, err := parseOptions(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseOptions(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
		}
	}
}

// TestCompareMode runs the -compare path end to end over two synthetic
// report files and checks the delta render reaches stdout.
func TestCompareMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, value float64) string {
		r := &bench.Report{Schema: bench.SchemaVersion, GoVersion: "go-test", NumCPU: 1}
		r.Metrics = []bench.Metric{{Name: "engine/token/pairs", Unit: "pairs/op", Value: value, Tracked: true}}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := r.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cur, base := write("cur.json", 110), write("base.json", 100)
	var out bytes.Buffer
	if err := run([]string{"-compare", cur, "-baseline", base}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"BENCH DELTA", "engine/token/pairs", "+10.0%"} {
		if !strings.Contains(text, want) {
			t.Errorf("compare output missing %q:\n%s", want, text)
		}
	}
	if err := run([]string{"-compare", filepath.Join(dir, "missing.json"), "-baseline", base}, &out); err == nil {
		t.Error("compare with a missing report file should error")
	}
}
