// Command dpebench regenerates the paper's evaluation artifacts
// (DESIGN.md §4) and prints them in the paper's format.
//
// Usage:
//
//	dpebench -exp table1      # E1: Table I via empirical class selection
//	dpebench -exp fig1        # E2: Fig. 1 as measured attack advantages
//	dpebench -exp mining      # E3: mining-result equality
//	dpebench -exp accessarea  # E4: Section IV-C refinement
//	dpebench -exp shared      # E5: shared-information columns
//	dpebench -exp rules       # E6: association rules over encrypted logs
//	dpebench -exp all         # everything above (default)
//
//	dpebench -exp engine -measure result -queries 64
//	                          # P: sequential vs parallel matrix build
//	dpebench -exp service -measure token -queries 48
//	                          # S: request latency against an in-process
//	                          # dpeserver, cold vs prepared-cache-warm
//
// Scaling flags: -queries, -rows, -seed, -paillier; -measure and -par
// scope the engine and service experiments.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	dpe "repro"
	"repro/internal/experiments"
	"repro/internal/service"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig1|mining|accessarea|shared|rules|engine|service|all")
	queries := flag.Int("queries", 60, "queries in the generated log")
	rows := flag.Int("rows", 120, "rows per generated table")
	seed := flag.String("seed", "seed-42", "workload seed")
	paillier := flag.Int("paillier", 512, "Paillier modulus bits")
	measureName := flag.String("measure", "result", "measure for -exp engine: token|structure|result|access-area")
	par := flag.Int("par", 0, "parallelism for -exp engine (0 = all cores)")
	flag.Parse()

	p := experiments.Params{Seed: *seed, Queries: *queries, Rows: *rows, PaillierBits: *paillier}
	if err := run(*exp, p, *measureName, *par); err != nil {
		fmt.Fprintln(os.Stderr, "dpebench:", err)
		os.Exit(1)
	}
}

func run(exp string, p experiments.Params, measureName string, par int) error {
	all := exp == "all"
	ran := false

	if all || exp == "table1" {
		ran = true
		rows, err := experiments.Table1(p)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable1(rows))
	}
	if all || exp == "fig1" {
		ran = true
		rows, err := experiments.Fig1(p)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig1(rows))
		if !experiments.OrderingHolds(rows) {
			return fmt.Errorf("fig1: measured ordering violates the taxonomy")
		}
		fmt.Println("Measured ordering matches Fig. 1: OK")
		fmt.Println()
	}
	if all || exp == "mining" {
		ran = true
		rows, ctrl, err := experiments.MiningEquality(p, experiments.DefaultMiningParams())
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderMining(rows, ctrl))
	}
	if all || exp == "accessarea" {
		ran = true
		rep, err := experiments.AccessAreaSecurity(p)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderAccessAreaSecurity(rep))
	}
	if all || exp == "rules" {
		ran = true
		rep, err := experiments.AssociationRules(p, 0, 0)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderRules(rep))
		if !rep.ShapesEqual {
			return fmt.Errorf("rules: shapes differ between plaintext and ciphertext")
		}
	}
	if all || exp == "shared" {
		ran = true
		rows, err := experiments.SharedInfo(p)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSharedInfo(rows))
	}
	if exp == "engine" {
		ran = true
		if err := engine(p, measureName, par); err != nil {
			return err
		}
	}
	if exp == "service" {
		ran = true
		if err := serviceProbe(p, measureName, par); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want table1|fig1|mining|accessarea|shared|rules|engine|service|all)", exp)
	}
	return nil
}

// engine measures the parallel distance engine: one encrypted log, one
// Provider session per parallelism level, wall-clock per full matrix
// build. The matrices are checked entry-wise identical across levels.
func engine(p experiments.Params, measureName string, par int) error {
	ctx := context.Background()
	m, err := dpe.ParseMeasure(measureName)
	if err != nil {
		return err
	}
	if par <= 0 {
		par = runtime.NumCPU()
	}
	w, err := dpe.GenerateWorkload(dpe.WorkloadConfig{
		Seed: p.Seed, Queries: p.Queries, Rows: p.Rows,
		IncludeAggregates: true, IncludeJoins: true,
	})
	if err != nil {
		return err
	}
	owner, err := dpe.NewOwner([]byte("engine:"+p.Seed), w.Schema, dpe.Config{PaillierBits: p.PaillierBits})
	if err != nil {
		return err
	}
	if err := owner.DeclareJoins(w.Queries); err != nil {
		return err
	}
	encLog, err := owner.EncryptLog(w.Queries, m)
	if err != nil {
		return err
	}
	// The encrypted artifacts do not depend on parallelism: encrypt once,
	// vary only the worker-pool size per level.
	var shared []dpe.ProviderOption
	switch m {
	case dpe.MeasureResult:
		encCat, err := owner.EncryptCatalog(w.Catalog)
		if err != nil {
			return err
		}
		shared = append(shared, dpe.WithCatalog(encCat, owner.ResultAggregator()))
	case dpe.MeasureAccessArea:
		encDomains, err := owner.EncryptDomains(w.Domains)
		if err != nil {
			return err
		}
		shared = append(shared, dpe.WithDomains(encDomains))
	}

	fmt.Printf("P — PARALLEL DISTANCE ENGINE (measure %s, %d encrypted queries, %d pairs)\n\n",
		m, len(encLog), len(encLog)*(len(encLog)-1)/2)
	fmt.Printf("%-12s | %-12s | %s\n", "parallelism", "build time", "speedup vs seq")
	fmt.Println("--------------------------------------------")
	levels := []int{1}
	if par > 1 {
		levels = append(levels, par)
	}
	var seq time.Duration
	var baseline dpe.Matrix
	for _, level := range levels {
		provider, err := dpe.NewProvider(m, append([]dpe.ProviderOption{dpe.WithParallelism(level)}, shared...)...)
		if err != nil {
			return err
		}
		start := time.Now()
		matrix, err := provider.DistanceMatrix(ctx, encLog)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		if level == 1 {
			seq, baseline = elapsed, matrix
			fmt.Printf("%-12d | %-12s | 1.00x\n", level, elapsed.Round(time.Microsecond))
			continue
		}
		rep, err := provider.VerifyPreservation(baseline, matrix)
		if err != nil {
			return err
		}
		if !rep.Preserved {
			return fmt.Errorf("engine: parallel matrix differs from sequential (max |Δd| %.2e)", rep.MaxAbsError)
		}
		fmt.Printf("%-12d | %-12s | %.2fx\n", level, elapsed.Round(time.Microsecond), float64(seq)/float64(elapsed))
	}
	if len(levels) == 1 {
		fmt.Println("\nonly one CPU available: sequential build only, nothing to compare (use -par N to force a pool)")
		return nil
	}
	fmt.Println("\nparallel matrix verified entry-wise identical to the sequential build")
	return nil
}

// serviceProbe measures the networked provider: request latency and
// throughput against an in-process dpeserver handler (httptest), cold
// (first matrix call prepares the log) vs warm (prepared-state cache
// hit). The remote matrix is checked entry-wise identical to the
// in-process provider's.
func serviceProbe(p experiments.Params, measureName string, par int) error {
	ctx := context.Background()
	m, err := dpe.ParseMeasure(measureName)
	if err != nil {
		return err
	}
	if par <= 0 {
		par = runtime.NumCPU()
	}
	w, err := dpe.GenerateWorkload(dpe.WorkloadConfig{
		Seed: p.Seed, Queries: p.Queries, Rows: p.Rows,
		IncludeAggregates: true, IncludeJoins: true,
	})
	if err != nil {
		return err
	}
	owner, err := dpe.NewOwner([]byte("service:"+p.Seed), w.Schema, dpe.Config{PaillierBits: p.PaillierBits})
	if err != nil {
		return err
	}
	if err := owner.DeclareJoins(w.Queries); err != nil {
		return err
	}
	encLog, err := owner.EncryptLog(w.Queries, m)
	if err != nil {
		return err
	}
	localOpts, remoteOpts, err := service.EncryptedArtifactOptions(owner, w, m)
	if err != nil {
		return err
	}

	srv := httptest.NewServer(service.NewHandler(service.NewRegistry(service.Config{Parallelism: par})))
	defer srv.Close()

	start := time.Now()
	sess, err := service.NewClient(srv.URL).NewSession(ctx, m, remoteOpts...)
	if err != nil {
		return err
	}
	setup := time.Since(start)

	fmt.Printf("S — PROVIDER SERVICE (measure %s, %d encrypted queries, parallelism %d, in-process HTTP)\n\n",
		m, len(encLog), par)
	fmt.Printf("session create (artifacts over the wire): %s\n", setup.Round(time.Microsecond))

	// Cold: first matrix call uploads the log and prepares it.
	start = time.Now()
	remoteMatrix, err := sess.DistanceMatrix(ctx, encLog)
	if err != nil {
		return err
	}
	cold := time.Since(start)

	// Warm: same log, prepared state served from the LRU cache.
	const warmCalls = 5
	start = time.Now()
	for i := 0; i < warmCalls; i++ {
		if _, err := sess.DistanceMatrix(ctx, encLog); err != nil {
			return err
		}
	}
	warm := time.Since(start) / warmCalls

	// Warm rows: the kNN access pattern, one row per request.
	start = time.Now()
	for q := 0; q < len(encLog); q++ {
		if _, err := sess.Distances(ctx, encLog, q); err != nil {
			return err
		}
	}
	rowTotal := time.Since(start)

	fmt.Printf("matrix cold (upload + prepare + build + stream): %s\n", cold.Round(time.Microsecond))
	fmt.Printf("matrix warm (prepared-cache hit), avg of %d:    %s (%.2fx faster)\n",
		warmCalls, warm.Round(time.Microsecond), float64(cold)/float64(warm))
	fmt.Printf("row requests warm: %d requests in %s (%.0f req/s)\n",
		len(encLog), rowTotal.Round(time.Microsecond),
		float64(len(encLog))/rowTotal.Seconds())

	stats, err := sess.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("session stats: %d log(s), prepared hits %d, misses %d\n",
		stats.Logs, stats.PreparedHits, stats.PreparedMisses)

	// The wire must not bend the numbers: compare against in-process.
	local, err := dpe.NewProvider(m, append([]dpe.ProviderOption{dpe.WithParallelism(par)}, localOpts...)...)
	if err != nil {
		return err
	}
	localMatrix, err := local.DistanceMatrix(ctx, encLog)
	if err != nil {
		return err
	}
	rep, err := local.VerifyPreservation(localMatrix, remoteMatrix)
	if err != nil {
		return err
	}
	if !rep.Preserved {
		return fmt.Errorf("service: remote matrix differs from in-process (max |Δd| %.2e)", rep.MaxAbsError)
	}
	fmt.Println("remote matrix verified entry-wise identical to the in-process provider")
	return nil
}
