// Command dpebench regenerates the paper's evaluation artifacts and
// runs the repository's reproducible benchmark harness (internal/bench).
//
// Paper experiments (text output, DESIGN.md §4):
//
//	dpebench -exp table1      # E1: Table I via empirical class selection
//	dpebench -exp fig1        # E2: Fig. 1 as measured attack advantages
//	dpebench -exp mining      # E3: mining-result equality
//	dpebench -exp accessarea  # E4: Section IV-C refinement
//	dpebench -exp shared      # E5: shared-information columns
//	dpebench -exp rules       # E6: association rules over encrypted logs
//
// Harness experiments (internal/bench; text render, or a versioned
// machine-readable report with -json):
//
//	dpebench -exp engine      # matrix build, sequential vs worker pool
//	dpebench -exp append      # incremental append vs from-scratch rebuild
//	dpebench -exp approx      # MinHash/LSH neighbors vs the exact matrix
//	dpebench -exp service     # cold/warm/append latency vs dpeserver
//	dpebench -exp contention  # P goroutines vs one sharded registry
//	dpebench -exp recovery    # kill-and-restart: journal replay vs cold start
//	dpebench -exp obs         # instrumented server: /metrics vs ground truth
//	dpebench -exp hotpath     # bitset vs map kernels, CRT vs textbook Paillier
//	dpebench -exp incmine     # warm incremental mining vs a cold re-mine
//
//	dpebench -exp all -json   # run the whole harness, write BENCH_PR7.json
//	dpebench -exp all -json -short -baseline bench_baseline.json
//	                          # CI shape: smoke sizes, fail if any tracked
//	                          # metric regresses >30% vs the baseline
//	dpebench -compare BENCH_PR7.json -baseline bench_baseline.json
//	                          # no experiments: render the per-metric %
//	                          # delta between two existing reports
//
// In text mode, -exp all runs the paper experiments (E1–E6); the
// harness experiments run when named explicitly or whenever -json is
// set. Sizing flags: -queries, -append, -rows, -seed, -paillier, -par,
// -measure, -warm; -short starts from the CI smoke sizes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	dpe "repro"
	"repro/internal/bench"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dpebench:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	exp        string
	json       bool
	short      bool
	out        string
	baseline   string
	compare    string
	maxRegress float64

	// Workload sizing; zero means "the mode's default".
	seed     string
	queries  int
	appendK  int
	rows     int
	paillier int
	par      int
	warm     int
	measure  string
}

// parseOptions parses the flags without exiting the process, so tests
// can drive it.
func parseOptions(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("dpebench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.StringVar(&o.exp, "exp", "all", "experiment: table1|fig1|mining|accessarea|shared|rules|engine|append|approx|service|contention|recovery|obs|hotpath|incmine|all")
	fs.BoolVar(&o.json, "json", false, "run the bench harness and write a machine-readable report")
	fs.BoolVar(&o.short, "short", false, "CI smoke sizes (small workloads, fewer iterations)")
	fs.StringVar(&o.out, "out", "BENCH_PR7.json", "report path for -json")
	fs.StringVar(&o.baseline, "baseline", "", "committed baseline report; with -json, fail on tracked-metric regressions")
	fs.StringVar(&o.compare, "compare", "", "render the per-metric delta of this report vs -baseline; runs no experiments")
	fs.Float64Var(&o.maxRegress, "max-regress", 0.30, "allowed tracked-metric regression vs the baseline (0.30 = +30%)")
	fs.StringVar(&o.seed, "seed", "", "workload seed")
	fs.IntVar(&o.queries, "queries", 0, "queries in the generated log (harness: base log size n)")
	fs.IntVar(&o.appendK, "append", 0, "appended queries k (harness append/service experiments)")
	fs.IntVar(&o.rows, "rows", 0, "rows per generated table")
	fs.IntVar(&o.paillier, "paillier", 0, "Paillier modulus bits")
	fs.IntVar(&o.par, "par", 0, "worker-pool parallelism (0 = all cores)")
	fs.IntVar(&o.warm, "warm", 0, "warm repetitions in the service experiment")
	fs.StringVar(&o.measure, "measure", "", "restrict the harness to one measure: token|structure|result|access-area")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.maxRegress < 0 {
		return nil, fmt.Errorf("-max-regress must be >= 0, got %v", o.maxRegress)
	}
	if o.compare != "" {
		if o.baseline == "" {
			return nil, fmt.Errorf("-compare needs -baseline to name the report to diff against")
		}
		return o, nil
	}
	_, harness, err := o.selection()
	if err != nil {
		return nil, err
	}
	if o.baseline != "" && len(harness) == 0 {
		return nil, fmt.Errorf("-baseline gates the harness experiments (engine|append|approx|service|contention|recovery|obs|hotpath|incmine|all), but -exp %s runs none", o.exp)
	}
	if _, err := o.benchConfig(); err != nil {
		return nil, err
	}
	return o, nil
}

var paperExps = []string{"table1", "fig1", "mining", "accessarea", "shared", "rules"}

// selection splits -exp into the paper experiments and the harness
// experiments it names.
func (o *options) selection() (paper, harness []string, err error) {
	switch o.exp {
	case "all":
		if o.json {
			return nil, []string{"all"}, nil
		}
		return paperExps, nil, nil
	case "engine", "append", "approx", "service", "contention", "recovery", "obs", "hotpath", "incmine":
		return nil, []string{o.exp}, nil
	default:
		for _, p := range paperExps {
			if o.exp == p {
				if o.json {
					return nil, nil, fmt.Errorf("-json applies to the harness experiments (engine|append|approx|service|contention|recovery|obs|hotpath|incmine|all), not %q", o.exp)
				}
				return []string{o.exp}, nil, nil
			}
		}
		return nil, nil, fmt.Errorf("unknown experiment %q (want table1|fig1|mining|accessarea|shared|rules|engine|append|approx|service|contention|recovery|obs|hotpath|incmine|all)", o.exp)
	}
}

// paperParams are the text experiments' sizes, preserving the historic
// defaults.
func (o *options) paperParams() experiments.Params {
	p := experiments.Params{Seed: "seed-42", Queries: 60, Rows: 120, PaillierBits: 512}
	if o.seed != "" {
		p.Seed = o.seed
	}
	if o.queries > 0 {
		p.Queries = o.queries
	}
	if o.rows > 0 {
		p.Rows = o.rows
	}
	if o.paillier > 0 {
		p.PaillierBits = o.paillier
	}
	return p
}

// benchConfig maps the flags onto the harness config: -short starts
// from the smoke shape, explicit flags win either way.
func (o *options) benchConfig() (bench.Config, error) {
	var cfg bench.Config
	if o.short {
		cfg = bench.ShortConfig()
	}
	if o.seed != "" {
		cfg.Seed = o.seed
	}
	if o.queries > 0 {
		cfg.Queries = o.queries
	}
	if o.appendK > 0 {
		cfg.Append = o.appendK
	}
	if o.rows > 0 {
		cfg.Rows = o.rows
	}
	if o.paillier > 0 {
		cfg.PaillierBits = o.paillier
	}
	if o.par > 0 {
		cfg.Parallelism = o.par
	}
	if o.warm > 0 {
		cfg.WarmCalls = o.warm
	}
	if o.measure != "" {
		m, err := dpe.ParseMeasure(o.measure)
		if err != nil {
			return cfg, err
		}
		cfg.Measures = []dpe.Measure{m}
	}
	return cfg, nil
}

func run(args []string, stdout io.Writer) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	if o.compare != "" {
		return runCompare(o, stdout)
	}
	paper, harness, err := o.selection()
	if err != nil {
		return err
	}
	for _, exp := range paper {
		if err := runPaper(exp, o.paperParams(), stdout); err != nil {
			return err
		}
	}
	if len(harness) == 0 {
		return nil
	}
	cfg, err := o.benchConfig()
	if err != nil {
		return err
	}
	report, err := bench.Run(context.Background(), harness, cfg)
	if err != nil {
		return err
	}
	report.GitSHA = gitSHA()
	if o.json {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d metrics)\n", o.out, len(report.Metrics))
	} else {
		fmt.Fprintln(stdout, bench.Render(report))
	}
	// The regression gate runs whenever a baseline is named — with or
	// without -json, so a mistyped invocation cannot silently skip it.
	if o.baseline == "" {
		return nil
	}
	bf, err := os.Open(o.baseline)
	if err != nil {
		return fmt.Errorf("opening baseline: %w", err)
	}
	defer bf.Close()
	base, err := bench.ReadReport(bf)
	if err != nil {
		return err
	}
	regs, err := bench.Compare(report, base, o.maxRegress)
	if err != nil {
		return err
	}
	if len(regs) > 0 {
		for _, reg := range regs {
			fmt.Fprintln(stdout, "REGRESSION:", reg)
		}
		return fmt.Errorf("%d tracked metric(s) regressed beyond +%.0f%% of %s", len(regs), o.maxRegress*100, o.baseline)
	}
	fmt.Fprintf(stdout, "all tracked metrics within +%.0f%% of %s\n", o.maxRegress*100, o.baseline)
	return nil
}

// runCompare is the -compare mode: read two existing reports and print
// the per-metric percentage delta. Purely a reading aid — no
// experiments run, no gate applies.
func runCompare(o *options, w io.Writer) error {
	cur, err := readReportFile(o.compare)
	if err != nil {
		return err
	}
	base, err := readReportFile(o.baseline)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, bench.RenderDelta(cur, base))
	return nil
}

func readReportFile(path string) (*bench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := bench.ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// gitSHA stamps the report with the commit it measured, best effort:
// CI exposes GITHUB_SHA; local runs ask git.
func gitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// runPaper executes one of the paper's evaluation experiments and
// prints its table.
func runPaper(exp string, p experiments.Params, w io.Writer) error {
	switch exp {
	case "table1":
		rows, err := experiments.Table1(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.RenderTable1(rows))
	case "fig1":
		rows, err := experiments.Fig1(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.RenderFig1(rows))
		if !experiments.OrderingHolds(rows) {
			return fmt.Errorf("fig1: measured ordering violates the taxonomy")
		}
		fmt.Fprintln(w, "Measured ordering matches Fig. 1: OK")
		fmt.Fprintln(w)
	case "mining":
		rows, ctrl, err := experiments.MiningEquality(p, experiments.DefaultMiningParams())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.RenderMining(rows, ctrl))
	case "accessarea":
		rep, err := experiments.AccessAreaSecurity(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.RenderAccessAreaSecurity(rep))
	case "rules":
		rep, err := experiments.AssociationRules(p, 0, 0)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.RenderRules(rep))
		if !rep.ShapesEqual {
			return fmt.Errorf("rules: shapes differ between plaintext and ciphertext")
		}
	case "shared":
		rows, err := experiments.SharedInfo(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.RenderSharedInfo(rows))
	default:
		return fmt.Errorf("unknown paper experiment %q", exp)
	}
	return nil
}
