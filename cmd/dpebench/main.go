// Command dpebench regenerates the paper's evaluation artifacts
// (DESIGN.md §4) and prints them in the paper's format.
//
// Usage:
//
//	dpebench -exp table1      # E1: Table I via empirical class selection
//	dpebench -exp fig1        # E2: Fig. 1 as measured attack advantages
//	dpebench -exp mining      # E3: mining-result equality
//	dpebench -exp accessarea  # E4: Section IV-C refinement
//	dpebench -exp shared      # E5: shared-information columns
//	dpebench -exp rules       # E6: association rules over encrypted logs
//	dpebench -exp all         # everything (default)
//
// Scaling flags: -queries, -rows, -seed, -paillier.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig1|mining|accessarea|shared|rules|all")
	queries := flag.Int("queries", 60, "queries in the generated log")
	rows := flag.Int("rows", 120, "rows per generated table")
	seed := flag.String("seed", "seed-42", "workload seed")
	paillier := flag.Int("paillier", 512, "Paillier modulus bits")
	flag.Parse()

	p := experiments.Params{Seed: *seed, Queries: *queries, Rows: *rows, PaillierBits: *paillier}
	if err := run(*exp, p); err != nil {
		fmt.Fprintln(os.Stderr, "dpebench:", err)
		os.Exit(1)
	}
}

func run(exp string, p experiments.Params) error {
	all := exp == "all"
	ran := false

	if all || exp == "table1" {
		ran = true
		rows, err := experiments.Table1(p)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable1(rows))
	}
	if all || exp == "fig1" {
		ran = true
		rows, err := experiments.Fig1(p)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig1(rows))
		if !experiments.OrderingHolds(rows) {
			return fmt.Errorf("fig1: measured ordering violates the taxonomy")
		}
		fmt.Println("Measured ordering matches Fig. 1: OK")
		fmt.Println()
	}
	if all || exp == "mining" {
		ran = true
		rows, ctrl, err := experiments.MiningEquality(p, experiments.DefaultMiningParams())
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderMining(rows, ctrl))
	}
	if all || exp == "accessarea" {
		ran = true
		rep, err := experiments.AccessAreaSecurity(p)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderAccessAreaSecurity(rep))
	}
	if all || exp == "rules" {
		ran = true
		rep, err := experiments.AssociationRules(p, 0, 0)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderRules(rep))
		if !rep.ShapesEqual {
			return fmt.Errorf("rules: shapes differ between plaintext and ciphertext")
		}
	}
	if all || exp == "shared" {
		ran = true
		rows, err := experiments.SharedInfo(p)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSharedInfo(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want table1|fig1|mining|accessarea|shared|rules|all)", exp)
	}
	return nil
}
