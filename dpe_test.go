package dpe

import (
	"strings"
	"testing"
)

// workloadFixture builds a small deterministic workload through the
// public API only.
func workloadFixture(t *testing.T) (*Workload, *Owner) {
	t.Helper()
	w, err := GenerateWorkload(WorkloadConfig{Seed: "api-test", Queries: 18, Rows: 40, IncludeAggregates: true, IncludeJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewOwner([]byte("api-master"), w.Schema, Config{PaillierBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.DeclareJoins(w.Queries); err != nil {
		t.Fatal(err)
	}
	return w, owner
}

func TestMeasureStrings(t *testing.T) {
	for m, want := range map[Measure]string{
		MeasureToken: "token", MeasureStructure: "structure",
		MeasureResult: "result", MeasureAccessArea: "access-area",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
	if _, err := Measure(99).mode(); err == nil {
		t.Error("unknown measure must error")
	}
}

func TestEndToEndTokenPreservation(t *testing.T) {
	w, owner := workloadFixture(t)
	encLog, err := owner.EncryptLog(w.Queries, MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := TokenDistanceMatrix(w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := TokenDistanceMatrix(encLog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyPreservation(plain, enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Preserved {
		t.Fatalf("token distance not preserved: %+v", rep)
	}
	// Mining equality on top.
	pk, err := KMedoids(plain, 3)
	if err != nil {
		t.Fatal(err)
	}
	ek, err := KMedoids(enc, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pk.Assign {
		if pk.Assign[i] != ek.Assign[i] {
			t.Fatalf("clusterings differ at %d", i)
		}
	}
}

func TestEndToEndStructurePreservation(t *testing.T) {
	w, owner := workloadFixture(t)
	encLog, err := owner.EncryptLog(w.Queries, MeasureStructure)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := StructureDistanceMatrix(w.Queries)
	enc, err := StructureDistanceMatrix(encLog)
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := VerifyPreservation(plain, enc, 0)
	if !rep.Preserved {
		t.Fatalf("structure distance not preserved: %+v", rep)
	}
}

func TestEndToEndResultPreservation(t *testing.T) {
	w, owner := workloadFixture(t)
	encLog, err := owner.EncryptLog(w.Queries, MeasureResult)
	if err != nil {
		t.Fatal(err)
	}
	encCat, err := owner.EncryptCatalog(w.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ResultDistanceMatrix(w.Queries, w.Catalog, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := ResultDistanceMatrix(encLog, encCat, owner.ResultAggregator())
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := VerifyPreservation(plain, enc, 0)
	if !rep.Preserved {
		t.Fatalf("result distance not preserved: %+v", rep)
	}
}

func TestEndToEndAccessAreaPreservation(t *testing.T) {
	w, owner := workloadFixture(t)
	encLog, err := owner.EncryptLog(w.Queries, MeasureAccessArea)
	if err != nil {
		t.Fatal(err)
	}
	encDomains, err := owner.EncryptDomains(w.Domains)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := AccessAreaDistanceMatrix(w.Queries, w.Domains, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := AccessAreaDistanceMatrix(encLog, encDomains, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := VerifyPreservation(plain, enc, 0)
	if !rep.Preserved {
		t.Fatalf("access-area distance not preserved: %+v", rep)
	}
}

func TestEncryptedLogLeaksNoPlaintext(t *testing.T) {
	w, owner := workloadFixture(t)
	for _, m := range []Measure{MeasureToken, MeasureStructure, MeasureResult, MeasureAccessArea} {
		encLog, err := owner.EncryptLog(w.Queries, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for i, q := range encLog {
			for _, ident := range []string{"photoobj", "specobj", "objid", "mag_r", "STAR", "GALAXY"} {
				if strings.Contains(q, ident) {
					t.Fatalf("%v: query %d leaks %q:\n%s", m, i, ident, q)
				}
			}
		}
	}
}

func TestRunEncryptedRoundTrip(t *testing.T) {
	w, owner := workloadFixture(t)
	encCat, err := owner.EncryptCatalog(w.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := owner.RunEncrypted("SELECT COUNT(*) FROM photoobj WHERE mag_r < 20", encCat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() == 0 {
		t.Fatalf("unexpected result: %+v", res.Rows)
	}
}

func TestVerifyPreservationSizeMismatch(t *testing.T) {
	if _, err := VerifyPreservation(Matrix{{0}}, Matrix{{0, 1}, {1, 0}}, 0); err == nil {
		t.Fatal("size mismatch must error")
	}
}

func TestParseExported(t *testing.T) {
	s, err := Parse("SELECT a FROM r WHERE b > 1")
	if err != nil || s == nil {
		t.Fatal(err)
	}
	if _, err := Parse("not sql"); err == nil {
		t.Fatal("bad query must error")
	}
}

func TestSchemaConstruction(t *testing.T) {
	schema := NewSchema()
	schema.MustAddTable("t", []ColumnInfo{{Name: "a", Kind: KindInt}, {Name: "b", Kind: KindString}})
	owner, err := NewOwner([]byte("m"), schema, Config{PaillierBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := owner.EncryptLog([]string{"SELECT a FROM t WHERE b = 'x'"}, MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 1 || strings.Contains(enc[0], "'x'") {
		t.Fatalf("encryption failed: %v", enc)
	}
}
