package dpe

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// workloadFixture builds a small deterministic workload through the
// public API only.
func workloadFixture(t *testing.T) (*Workload, *Owner) {
	t.Helper()
	w, err := GenerateWorkload(WorkloadConfig{Seed: "api-test", Queries: 18, Rows: 40, IncludeAggregates: true, IncludeJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewOwner([]byte("api-master"), w.Schema, Config{PaillierBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.DeclareJoins(w.Queries); err != nil {
		t.Fatal(err)
	}
	return w, owner
}

func TestMeasureStrings(t *testing.T) {
	for m, want := range map[Measure]string{
		MeasureToken: "token", MeasureStructure: "structure",
		MeasureResult: "result", MeasureAccessArea: "access-area",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
	if _, err := Measure(99).mode(); err == nil {
		t.Error("unknown measure must error")
	}
}

func TestEndToEndTokenPreservation(t *testing.T) {
	w, owner := workloadFixture(t)
	encLog, err := owner.EncryptLog(w.Queries, MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := TokenDistanceMatrix(w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := TokenDistanceMatrix(encLog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyPreservation(plain, enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Preserved {
		t.Fatalf("token distance not preserved: %+v", rep)
	}
	// Mining equality on top.
	pk, err := KMedoids(plain, 3)
	if err != nil {
		t.Fatal(err)
	}
	ek, err := KMedoids(enc, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pk.Assign {
		if pk.Assign[i] != ek.Assign[i] {
			t.Fatalf("clusterings differ at %d", i)
		}
	}
}

func TestEndToEndStructurePreservation(t *testing.T) {
	w, owner := workloadFixture(t)
	encLog, err := owner.EncryptLog(w.Queries, MeasureStructure)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := StructureDistanceMatrix(w.Queries)
	enc, err := StructureDistanceMatrix(encLog)
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := VerifyPreservation(plain, enc, 0)
	if !rep.Preserved {
		t.Fatalf("structure distance not preserved: %+v", rep)
	}
}

func TestEndToEndResultPreservation(t *testing.T) {
	w, owner := workloadFixture(t)
	encLog, err := owner.EncryptLog(w.Queries, MeasureResult)
	if err != nil {
		t.Fatal(err)
	}
	encCat, err := owner.EncryptCatalog(w.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ResultDistanceMatrix(w.Queries, w.Catalog, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := ResultDistanceMatrix(encLog, encCat, owner.ResultAggregator())
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := VerifyPreservation(plain, enc, 0)
	if !rep.Preserved {
		t.Fatalf("result distance not preserved: %+v", rep)
	}
}

func TestEndToEndAccessAreaPreservation(t *testing.T) {
	w, owner := workloadFixture(t)
	encLog, err := owner.EncryptLog(w.Queries, MeasureAccessArea)
	if err != nil {
		t.Fatal(err)
	}
	encDomains, err := owner.EncryptDomains(w.Domains)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := AccessAreaDistanceMatrix(w.Queries, w.Domains, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := AccessAreaDistanceMatrix(encLog, encDomains, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := VerifyPreservation(plain, enc, 0)
	if !rep.Preserved {
		t.Fatalf("access-area distance not preserved: %+v", rep)
	}
}

// measureProviders builds the owner-side (plaintext-artifact) and
// provider-side (encrypted-artifact) sessions for a measure.
func measureProviders(t *testing.T, w *Workload, owner *Owner, m Measure, extra ...ProviderOption) (plain, enc *Provider) {
	t.Helper()
	plainOpts := append([]ProviderOption(nil), extra...)
	encOpts := append([]ProviderOption(nil), extra...)
	switch m {
	case MeasureResult:
		encCat, err := owner.EncryptCatalog(w.Catalog)
		if err != nil {
			t.Fatal(err)
		}
		plainOpts = append(plainOpts, WithCatalog(w.Catalog, nil))
		encOpts = append(encOpts, WithCatalog(encCat, owner.ResultAggregator()))
	case MeasureAccessArea:
		encDomains, err := owner.EncryptDomains(w.Domains)
		if err != nil {
			t.Fatal(err)
		}
		plainOpts = append(plainOpts, WithDomains(w.Domains))
		encOpts = append(encOpts, WithDomains(encDomains))
	}
	plain, err := NewProvider(m, plainOpts...)
	if err != nil {
		t.Fatal(err)
	}
	enc, err = NewProvider(m, encOpts...)
	if err != nil {
		t.Fatal(err)
	}
	return plain, enc
}

// TestProviderDistanceMatrixAllMeasures is the facade's core contract:
// for every measure, the session API built from the shared encrypted
// artifacts computes on ciphertext the same matrix it computes on
// plaintext (Definition 1), and the parallel build equals the
// sequential one entry-wise within 1e-12.
func TestProviderDistanceMatrixAllMeasures(t *testing.T) {
	w, owner := workloadFixture(t)
	ctx := context.Background()
	for _, m := range []Measure{MeasureToken, MeasureStructure, MeasureResult, MeasureAccessArea} {
		t.Run(m.String(), func(t *testing.T) {
			encLog, err := owner.EncryptLog(w.Queries, m)
			if err != nil {
				t.Fatal(err)
			}
			plainP, encP := measureProviders(t, w, owner, m, WithParallelism(runtime.NumCPU()))
			plain, err := plainP.DistanceMatrix(ctx, w.Queries)
			if err != nil {
				t.Fatal(err)
			}
			enc, err := encP.DistanceMatrix(ctx, encLog)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := encP.VerifyPreservation(plain, enc)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Preserved {
				t.Fatalf("%v distance not preserved: %+v", m, rep)
			}

			// Parallel == sequential, per the acceptance bar.
			plainSeq, encSeq := measureProviders(t, w, owner, m, WithParallelism(1))
			seq, err := plainSeq.DistanceMatrix(ctx, w.Queries)
			if err != nil {
				t.Fatal(err)
			}
			seqRep, err := encSeq.VerifyPreservation(seq, plain)
			if err != nil {
				t.Fatal(err)
			}
			if !seqRep.Preserved || seqRep.MaxAbsError > 1e-12 {
				t.Fatalf("parallel build differs from sequential: %+v", seqRep)
			}
		})
	}
}

func TestProviderRequiresArtifacts(t *testing.T) {
	if _, err := NewProvider(MeasureResult); err == nil {
		t.Fatal("result provider without catalog must error")
	}
	if _, err := NewProvider(MeasureAccessArea); err == nil {
		t.Fatal("access-area provider without domains must error")
	}
	if _, err := NewProvider(Measure(99)); err == nil {
		t.Fatal("unknown measure must error")
	}
	if _, err := NewProvider(MeasureAccessArea, WithDomains(map[string]Domain{}), WithAccessAreaX(1.5)); err == nil {
		t.Fatal("x outside (0,1) must error")
	}
}

// cancelLog is a log big enough (~1.1M pairs) that a matrix build takes
// many milliseconds even on the bitset kernel, so a cancellation
// landing mid-build is observable.
func cancelLog() []string {
	queries := make([]string, 1500)
	for i := range queries {
		queries[i] = fmt.Sprintf(
			"SELECT a, b, c FROM t WHERE a > %d AND b < %d AND c IN (%d, %d, %d, %d, %d, %d) OR a = %d",
			i, i*2, i, i+1, i+2, i+3, i+4, i+5, i*3)
	}
	return queries
}

func TestProviderCancellationMidBuild(t *testing.T) {
	p, err := NewProvider(MeasureToken, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = p.DistanceMatrix(ctx, cancelLog())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestProviderCancellationBeforeBuild(t *testing.T) {
	p, err := NewProvider(MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.DistanceMatrix(ctx, []string{"SELECT a FROM t", "SELECT b FROM t"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProviderDistances(t *testing.T) {
	w, owner := workloadFixture(t)
	ctx := context.Background()
	encLog, err := owner.EncryptLog(w.Queries, MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProvider(MeasureToken, WithParallelism(runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	const q = 3
	row, err := p.Distances(ctx, encLog, q)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.DistanceMatrix(ctx, encLog)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != len(encLog) || row[q] != 0 {
		t.Fatalf("row = %v", row)
	}
	for j := range row {
		if row[j] != m[q][j] {
			t.Fatalf("Distances[%d] = %v, matrix says %v", j, row[j], m[q][j])
		}
	}
	if _, err := p.Distances(ctx, encLog, len(encLog)); err == nil {
		t.Fatal("out-of-range query index must error")
	}
}

func TestProviderMine(t *testing.T) {
	w, owner := workloadFixture(t)
	ctx := context.Background()
	encLog, err := owner.EncryptLog(w.Queries, MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProvider(MeasureToken, WithParallelism(runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	plainP := p // token distance needs no artifacts; same session serves both sides
	for _, spec := range []MineSpec{
		{Algorithm: MineKMedoids, K: 3},
		{Algorithm: MineDBSCAN, Eps: 0.4, MinPts: 3},
		{Algorithm: MineCompleteLink, K: 3},
		{Algorithm: MineOutliers, P: 0.9, D: 0.8},
		{Algorithm: MineKNN, K: 4, Query: 1},
	} {
		t.Run(spec.Algorithm.String(), func(t *testing.T) {
			encRes, err := p.Mine(ctx, encLog, spec)
			if err != nil {
				t.Fatal(err)
			}
			plainRes, err := plainP.Mine(ctx, w.Queries, spec)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := fmt.Sprint(encRes.Clusters, encRes.Labels, encRes.Outliers, encRes.Neighbors),
				fmt.Sprint(plainRes.Clusters, plainRes.Labels, plainRes.Outliers, plainRes.Neighbors); got != want {
				t.Fatalf("mining on ciphertext differs:\n got %s\nwant %s", got, want)
			}
		})
	}
	if _, err := p.Mine(ctx, encLog, MineSpec{Algorithm: MiningAlgorithm(99)}); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func TestParseMeasure(t *testing.T) {
	for _, m := range []Measure{MeasureToken, MeasureStructure, MeasureResult, MeasureAccessArea} {
		got, err := ParseMeasure(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMeasure(%q) = %v, %v", m.String(), got, err)
		}
	}
	if got, err := ParseMeasure("AccessArea"); err != nil || got != MeasureAccessArea {
		t.Errorf("legacy spelling: %v, %v", got, err)
	}
	if _, err := ParseMeasure("nosuch"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestEncryptedLogLeaksNoPlaintext(t *testing.T) {
	w, owner := workloadFixture(t)
	for _, m := range []Measure{MeasureToken, MeasureStructure, MeasureResult, MeasureAccessArea} {
		encLog, err := owner.EncryptLog(w.Queries, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for i, q := range encLog {
			for _, ident := range []string{"photoobj", "specobj", "objid", "mag_r", "STAR", "GALAXY"} {
				if strings.Contains(q, ident) {
					t.Fatalf("%v: query %d leaks %q:\n%s", m, i, ident, q)
				}
			}
		}
	}
}

func TestRunEncryptedRoundTrip(t *testing.T) {
	w, owner := workloadFixture(t)
	encCat, err := owner.EncryptCatalog(w.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := owner.RunEncrypted("SELECT COUNT(*) FROM photoobj WHERE mag_r < 20", encCat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() == 0 {
		t.Fatalf("unexpected result: %+v", res.Rows)
	}
}

func TestVerifyPreservationSizeMismatch(t *testing.T) {
	if _, err := VerifyPreservation(Matrix{{0}}, Matrix{{0, 1}, {1, 0}}, 0); err == nil {
		t.Fatal("size mismatch must error")
	}
}

func TestParseExported(t *testing.T) {
	s, err := Parse("SELECT a FROM r WHERE b > 1")
	if err != nil || s == nil {
		t.Fatal(err)
	}
	if _, err := Parse("not sql"); err == nil {
		t.Fatal("bad query must error")
	}
}

func TestSchemaConstruction(t *testing.T) {
	schema := NewSchema()
	schema.MustAddTable("t", []ColumnInfo{{Name: "a", Kind: KindInt}, {Name: "b", Kind: KindString}})
	owner, err := NewOwner([]byte("m"), schema, Config{PaillierBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := owner.EncryptLog([]string{"SELECT a FROM t WHERE b = 'x'"}, MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 1 || strings.Contains(enc[0], "'x'") {
		t.Fatalf("encryption failed: %v", enc)
	}
}
