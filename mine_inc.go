package dpe

// Incremental mining maintenance: under a live service the log grows,
// and PR 3's append path already extends the distance matrix in
// O(n·k) — but Mine still recomputed every clustering from scratch.
// MineIncremental closes that gap: it carries a MineState from run to
// run, extends the cached matrix with only the genuinely new pairs,
// and warm-starts the algorithm from the previous result (k-medoids
// from the prior medoids, DBSCAN by eps-graph repair, Apriori by
// support-count deltas). A nil or mismatched state runs the same cold
// bootstrap Mine would and captures fresh state, so the call is always
// safe; the deterministic counters in IncrementalStats are what the
// bench harness gates the savings on.

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/distance"
	"repro/internal/mining"
)

// MineState is the carried state of incremental mining over one
// (log, spec) pair: the distance matrix over the rows mined so far
// plus the algorithm's warm-start structure. It is immutable once
// returned — MineIncremental extends copies, never the state itself —
// so a service can cache it and serve concurrent readers. A MineState
// is only meaningful with the Provider and log prefix it was mined
// from.
type MineState struct {
	spec   MineSpec
	n      int
	matrix Matrix                 // distance-based algorithms; nil for apriori
	kmed   *mining.KMedoidsResult // k-medoids warm start
	adj    [][]int                // dbscan eps-neighborhood graph
	labels []int                  // prior labels (dbscan, complete-link) or 0/1 outlier flags
	counts map[string]int         // apriori carried candidate supports
}

// Spec returns the mining spec the state was built under. A state only
// warm-starts a call with the identical spec.
func (s *MineState) Spec() MineSpec { return s.spec }

// Len is the number of log rows the state covers.
func (s *MineState) Len() int { return s.n }

// SizeBytes estimates the memory the state retains, for cache byte
// budgets.
func (s *MineState) SizeBytes() int64 {
	total := int64(128)
	if s.matrix != nil {
		total += int64(s.n)*int64(s.n)*8 + int64(s.n)*24
	}
	if s.kmed != nil {
		total += int64(len(s.kmed.Medoids)+len(s.kmed.Assign))*8 + 48
	}
	for _, row := range s.adj {
		total += int64(len(row))*8 + 24
	}
	total += int64(len(s.labels)) * 8
	for k := range s.counts {
		total += int64(len(k)) + 32
	}
	return total
}

// IncrementalStats reports how a MineIncremental call arrived at its
// result. PairsComputed and Examined are deterministic work counters —
// the numbers the incmine bench experiment gates.
type IncrementalStats struct {
	// Warm reports whether the previous state was reused (matrix
	// extended, algorithm warm-started). False means the cold
	// bootstrap ran: no state, a different spec, or a shrunk log.
	Warm bool `json:"warm"`
	// ColdFallback reports that the warm path was attempted but the
	// algorithm fell back to a cold run over the (incrementally
	// extended) matrix — a rejected warm state or a cost regression.
	ColdFallback bool `json:"cold_fallback,omitempty"`
	// OldN is the row count the previous state covered (0 when cold).
	OldN int `json:"old_n"`
	// PairsComputed counts the distance pairs evaluated for the
	// matrix: oldN·k + k·(k−1)/2 warm, the full n·(n−1)/2 triangle
	// cold, 0 for apriori (which never builds a matrix).
	PairsComputed int64 `json:"pairs_computed"`
	// Examined counts the algorithm's own work: matrix entries read
	// (k-medoids, DBSCAN) or transaction membership scans (apriori).
	Examined int64 `json:"examined"`
	// ChangedLabels lists the old rows whose cluster membership
	// changed relative to the previous state, after canonical
	// relabeling (nil for apriori and kNN). New rows are never listed
	// — the caller knows they are new.
	ChangedLabels []int `json:"changed_labels,omitempty"`
}

// warmCostTolerance is the relative cost-regression guard of the warm
// k-medoids path: the alternation is non-increasing, so a warm cost
// above the warm-start cost (extending the prior assignment to the new
// rows) beyond this slack means the carried state was inconsistent
// with the matrix, and the call falls back to a cold run.
const warmCostTolerance = 1e-9

// MineIncremental mines a prepared log reusing the previous call's
// MineState. When prev covers a prefix of pl under the identical spec,
// only the appended rows' distance pairs are computed (the matrix is
// spliced, stage "mine_delta") and the algorithm warm-starts from the
// prior result; otherwise the cold bootstrap runs (stage "mine",
// identical output to MinePrepared) and captures state. Either way the
// returned result matches a cold Mine over the full log — exactly for
// DBSCAN, Apriori, and the non-warm algorithms, and up to local-optimum
// equivalence (cost within tolerance) for warm k-medoids — and the
// returned state serves the next append. Approximate specs are
// rejected: the approximate path maintains its own index.
func (p *Provider) MineIncremental(ctx context.Context, pl *PreparedLog, prev *MineState, spec MineSpec) (*MineResult, *MineState, error) {
	n := pl.Len()
	if err := spec.Validate(n); err != nil {
		return nil, nil, err
	}
	if spec.Approximate {
		return nil, nil, fmt.Errorf("dpe: incremental mining is exact; approximate specs run via MinePreparedIndexed")
	}
	if prev != nil && prev.spec == spec && prev.n <= n {
		return p.mineWarm(ctx, pl, prev, spec)
	}
	return p.mineBootstrap(ctx, pl, spec)
}

// mineBootstrap is the cold path: the same work MinePrepared does,
// plus capturing the warm-start state for the next call.
func (p *Provider) mineBootstrap(ctx context.Context, pl *PreparedLog, spec MineSpec) (*MineResult, *MineState, error) {
	defer p.stage(ctx, "mine")()
	n := pl.Len()
	res := &MineResult{Incremental: &IncrementalStats{}}
	state := &MineState{spec: spec, n: n}

	if spec.Algorithm == MineApriori {
		txs, err := p.transactions(pl)
		if err != nil {
			return nil, nil, err
		}
		sets, counts, stats, err := mining.AprioriAppend(txs, 0, nil, spec.MinSupport, spec.MaxLen)
		if err != nil {
			return nil, nil, err
		}
		res.Itemsets = sets
		res.Incremental.Examined = stats.TxScans
		state.counts = counts
		return res, state, nil
	}

	m, err := p.DistanceMatrixPrepared(ctx, pl)
	if err != nil {
		return nil, nil, err
	}
	res.Matrix = m
	res.Incremental.PairsComputed = int64(n) * int64(n-1) / 2
	state.matrix = m
	if err := p.mineCold(m, spec, res, state, res.Incremental); err != nil {
		return nil, nil, err
	}
	return res, state, nil
}

// mineCold runs the algorithm from scratch over a (possibly
// incrementally extended) matrix, filling result and state.
func (p *Provider) mineCold(m Matrix, spec MineSpec, res *MineResult, state *MineState, stats *IncrementalStats) error {
	switch spec.Algorithm {
	case MineKMedoids:
		clusters, reads, err := mining.KMedoidsCounted(m, spec.K)
		if err != nil {
			return err
		}
		res.Clusters, state.kmed = clusters, clusters
		stats.Examined += reads
	case MineDBSCAN:
		adj, reads, err := mining.EpsGraph(m, spec.Eps)
		if err != nil {
			return err
		}
		labels, err := mining.DBSCANGraph(len(m), adj, spec.MinPts)
		if err != nil {
			return err
		}
		res.Labels, state.adj, state.labels = labels, adj, labels
		stats.Examined += reads
	case MineCompleteLink:
		labels, err := mining.CompleteLink(m, spec.K)
		if err != nil {
			return err
		}
		res.Labels, state.labels = labels, labels
	case MineOutliers:
		out, err := mining.Outliers(m, spec.P, spec.D)
		if err != nil {
			return err
		}
		res.Outliers = out
		state.labels = make([]int, len(out))
		for i, o := range out {
			if o {
				state.labels[i] = 1
			}
		}
	case MineKNN:
		nb, err := mining.KNN(m, spec.Query, spec.K)
		if err != nil {
			return err
		}
		res.Neighbors = nb
	default:
		return fmt.Errorf("dpe: unknown mining algorithm %d", int(spec.Algorithm))
	}
	return nil
}

// mineWarm is the incremental path: extend the carried matrix with the
// appended rows' pairs only, then warm-start the algorithm.
func (p *Provider) mineWarm(ctx context.Context, pl *PreparedLog, prev *MineState, spec MineSpec) (*MineResult, *MineState, error) {
	defer p.stage(ctx, "mine_delta")()
	n, oldN := pl.Len(), prev.n
	res := &MineResult{Incremental: &IncrementalStats{Warm: true, OldN: oldN}}
	state := &MineState{spec: spec, n: n}
	stats := res.Incremental

	if spec.Algorithm == MineApriori {
		txs, err := p.transactions(pl)
		if err != nil {
			return nil, nil, err
		}
		sets, counts, aps, err := mining.AprioriAppend(txs, oldN, prev.counts, spec.MinSupport, spec.MaxLen)
		if err != nil {
			return nil, nil, err
		}
		res.Itemsets = sets
		stats.Examined = aps.TxScans
		state.counts = counts
		return res, state, nil
	}

	if len(prev.matrix) != oldN {
		return nil, nil, fmt.Errorf("dpe: mining state carries a %d-row matrix for %d rows", len(prev.matrix), oldN)
	}
	rows, err := p.AppendRowsPrepared(ctx, oldN, pl)
	if err != nil {
		return nil, nil, err
	}
	m, err := SpliceMatrixRows(prev.matrix, rows)
	if err != nil {
		return nil, nil, err
	}
	k := n - oldN
	stats.PairsComputed = int64(oldN)*int64(k) + int64(k)*int64(k-1)/2
	res.Matrix = m
	state.matrix = m

	switch spec.Algorithm {
	case MineKMedoids:
		clusters, ws, werr := mining.KMedoidsWarm(m, spec.K, prev.kmed, oldN)
		if werr == nil && prev.kmed != nil {
			// Cost-regression guard: extending the prior assignment to
			// the new rows bounds what the warm optimum may cost.
			var probe int64
			assign := make([]int, n)
			copy(assign, prev.kmed.Assign)
			start := prev.kmed.Cost + kmedoidsAssignCost(m, prev.kmed.Medoids, assign, oldN, n, &probe)
			stats.Examined += probe
			if clusters.Cost > start*(1+warmCostTolerance)+warmCostTolerance {
				werr = fmt.Errorf("dpe: warm k-medoids cost %v regressed past warm-start cost %v", clusters.Cost, start)
			}
		}
		if werr != nil {
			stats.ColdFallback = true
			if err := p.mineCold(m, spec, res, state, stats); err != nil {
				return nil, nil, err
			}
		} else {
			res.Clusters, state.kmed = clusters, clusters
			stats.Examined += ws.Reads
		}
		if prev.kmed != nil && res.Clusters != nil {
			stats.ChangedLabels = changedLabels(prev.kmed.Assign, res.Clusters.Assign, oldN)
		}
	case MineDBSCAN:
		labels, adj, ds, derr := mining.DBSCANAppendGraph(m, spec.Eps, spec.MinPts, prev.adj)
		if derr != nil {
			stats.ColdFallback = true
			if err := p.mineCold(m, spec, res, state, stats); err != nil {
				return nil, nil, err
			}
		} else {
			res.Labels, state.adj, state.labels = labels, adj, labels
			stats.Examined += ds.PairsRead
		}
		stats.ChangedLabels = changedLabels(prev.labels, res.Labels, oldN)
	default:
		// Complete-link, outliers, and kNN have no warm-start
		// structure; the incrementally extended matrix is the whole
		// saving, the algorithm reruns cold.
		if err := p.mineCold(m, spec, res, state, stats); err != nil {
			return nil, nil, err
		}
		switch spec.Algorithm {
		case MineCompleteLink:
			stats.ChangedLabels = changedLabels(prev.labels, res.Labels, oldN)
		case MineOutliers:
			stats.ChangedLabels = changedLabels(prev.labels, state.labels, oldN)
		}
	}
	return res, state, nil
}

// kmedoidsAssignCost mirrors the mining package's warm-start
// assignment (nearest medoid, lowest index wins ties) to price the
// warm-start cost bound without exporting internals.
func kmedoidsAssignCost(m Matrix, medoids, assign []int, lo, hi int, reads *int64) float64 {
	cost := 0.0
	for i := lo; i < hi; i++ {
		best, bestD := 0, -1.0
		for c, med := range medoids {
			if d := m[i][med]; bestD < 0 || d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		cost += bestD
	}
	*reads += int64(hi-lo) * int64(len(medoids))
	return cost
}

// changedLabels lists the rows < oldN whose cluster changed between
// two labelings, compared after canonical (first-occurrence)
// relabeling so renumbered-but-identical partitions report no change.
func changedLabels(prev, next []int, oldN int) []int {
	if prev == nil || next == nil {
		return nil
	}
	cp, cn := mining.CanonicalLabels(prev), mining.CanonicalLabels(next)
	var out []int
	for i := 0; i < oldN && i < len(cp) && i < len(cn); i++ {
		if cp[i] != cn[i] {
			out = append(out, i)
		}
	}
	return out
}

// transactions renders each prepared query's element set as one
// Apriori transaction — experiment E6's idiom, served straight from
// the interned dictionary (and therefore from restored snapshots too).
func (p *Provider) transactions(pl *PreparedLog) ([]mining.Transaction, error) {
	src, ok := pl.prep.(distance.ItemSource)
	if !ok {
		return nil, fmt.Errorf("dpe: measure %s does not support itemset mining (its prepared state has no element sets)", p.measure)
	}
	n := src.Len()
	txs := make([]mining.Transaction, n)
	var buf []string
	for i := 0; i < n; i++ {
		buf = src.AppendItems(buf[:0], i)
		tx := make(mining.Transaction, len(buf))
		for _, it := range buf {
			tx[it] = true
		}
		txs[i] = tx
	}
	return txs, nil
}

// --- MineState persistence (the service's KindMining journal records) ---

// mineStateWire is the serialized form of a MineState. Version 1.
// Counts are sorted by key so equal states marshal to identical bytes;
// float64 values survive the JSON round trip exactly.
type mineStateWire struct {
	V      int                    `json:"v"`
	Spec   MineSpec               `json:"spec"`
	N      int                    `json:"n"`
	Matrix Matrix                 `json:"matrix,omitempty"`
	Kmed   *mining.KMedoidsResult `json:"kmed,omitempty"`
	Adj    [][]int                `json:"adj,omitempty"`
	Labels []int                  `json:"labels,omitempty"`
	Counts []countEntry           `json:"counts,omitempty"`
}

type countEntry struct {
	K string `json:"k"`
	C int    `json:"c"`
}

// MarshalMineState serializes a mining state for persistence. The
// encoding is deterministic and exact: UnmarshalMineState returns a
// state that warm-starts identically.
func MarshalMineState(s *MineState) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("dpe: nil mining state")
	}
	w := mineStateWire{
		V:      1,
		Spec:   s.spec,
		N:      s.n,
		Matrix: s.matrix,
		Kmed:   s.kmed,
		Adj:    s.adj,
		Labels: s.labels,
	}
	if s.counts != nil {
		w.Counts = make([]countEntry, 0, len(s.counts))
		for k, c := range s.counts {
			w.Counts = append(w.Counts, countEntry{K: k, C: c})
		}
		sort.Slice(w.Counts, func(i, j int) bool { return w.Counts[i].K < w.Counts[j].K })
	}
	return json.Marshal(&w)
}

// UnmarshalMineState is the inverse of MarshalMineState.
func UnmarshalMineState(data []byte) (*MineState, error) {
	var w mineStateWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("dpe: decoding mining state: %w", err)
	}
	if w.V != 1 {
		return nil, fmt.Errorf("dpe: unknown mining-state version %d", w.V)
	}
	if w.N < 0 {
		return nil, fmt.Errorf("dpe: mining state has negative row count %d", w.N)
	}
	s := &MineState{
		spec:   w.Spec,
		n:      w.N,
		matrix: w.Matrix,
		kmed:   w.Kmed,
		adj:    w.Adj,
		labels: w.Labels,
	}
	if w.Counts != nil {
		s.counts = make(map[string]int, len(w.Counts))
		for _, e := range w.Counts {
			s.counts[e.K] = e.C
		}
	}
	return s, nil
}
