package dpe

// Incremental distance-matrix maintenance: under a live service, query
// logs grow — recomputing the full O(n²) ciphertext matrix on every
// append is wasteful when the existing entries cannot change (every
// measure's pairwise distance depends only on the two queries and the
// immutable shared artifacts). The append path prepares only the new
// queries and computes only the n·k + k·(k−1)/2 genuinely new pairs;
// the result is entry-wise identical to a from-scratch build over the
// concatenated log.

import (
	"context"
	"fmt"

	"repro/internal/distance"
)

// ExtendPrepared grows a prepared log with new queries: the metric's
// per-query work (tokenizing, parsing, executing) runs for the new
// queries only, and the result is a prepared log over old ∘ new —
// identical to Prepare over the concatenated log. The input prepared
// log is not modified and stays valid.
func (p *Provider) ExtendPrepared(ctx context.Context, pl *PreparedLog, newQueries []string) (*PreparedLog, error) {
	defer p.stage(ctx, "append_extend")()
	ext, ok := p.metric.(distance.Extender)
	if !ok {
		return nil, fmt.Errorf("dpe: measure %s does not support incremental extension", p.measure)
	}
	prep, err := ext.Extend(ctx, pl.prep, newQueries)
	if err != nil {
		return nil, err
	}
	return &PreparedLog{prep: prep}, nil
}

// AppendRowsPrepared computes the rows a distance matrix gains when a
// prepared log of old entries grows to pl: rows old..pl.Len()-1, each
// of full width pl.Len(). Only the new pairs are computed (old·k +
// k·(k−1)/2 for k = pl.Len()−old); pairs among the first old queries
// never run. This is the service access pattern — the new rows are what
// travels over the wire, the receiver splices them onto its old matrix.
func (p *Provider) AppendRowsPrepared(ctx context.Context, old int, pl *PreparedLog) ([][]float64, error) {
	if old > pl.Len() {
		return nil, fmt.Errorf("dpe: append from %d queries onto a prepared log of %d", old, pl.Len())
	}
	defer p.stage(ctx, "append_rows")()
	return distance.AppendRows(ctx, old, pl.Len(), p.parallelism, pl.prep.Distance)
}

// AppendPrepared extends an old×old matrix to pl.Len()×pl.Len() by
// computing only the new entries; the old block is copied, never
// recomputed. old must be the matrix this provider built over the first
// len(old) queries of pl. The result is entry-wise identical to
// DistanceMatrixPrepared over pl.
func (p *Provider) AppendPrepared(ctx context.Context, old Matrix, pl *PreparedLog) (Matrix, error) {
	if len(old) > pl.Len() {
		return nil, fmt.Errorf("dpe: append from a %d×%d matrix onto a prepared log of %d", len(old), len(old), pl.Len())
	}
	return distance.ExtendMatrix(ctx, old, pl.Len(), p.parallelism, pl.prep.Distance)
}

// Append is the incremental counterpart of DistanceMatrix: given the
// matrix already built for log and k new queries, it returns the
// extended matrix over log ∘ newQueries, computing only the
// len(log)·k + k·(k−1)/2 new entries — entry-wise identical to
// DistanceMatrix over the concatenated log. len(old) must equal
// len(log). The per-query preparation of log runs again here (an
// in-process Provider holds no cache); services that cache prepared
// state use ExtendPrepared + AppendRowsPrepared to skip even that.
func (p *Provider) Append(ctx context.Context, old Matrix, log []string, newQueries []string) (Matrix, error) {
	if len(old) != len(log) {
		return nil, fmt.Errorf("dpe: old matrix has %d rows for a log of %d queries", len(old), len(log))
	}
	pl, err := p.Prepare(ctx, log)
	if err != nil {
		return nil, err
	}
	ext, err := p.ExtendPrepared(ctx, pl, newQueries)
	if err != nil {
		return nil, err
	}
	return p.AppendPrepared(ctx, old, ext)
}

// SpliceMatrixRows assembles the extended matrix from an old n×n matrix
// and the k new full-width rows of AppendRows/the logs:append wire
// response. It is how a client of the service turns "only the new rows"
// back into the full extended matrix.
func SpliceMatrixRows(old Matrix, rows [][]float64) (Matrix, error) {
	return distance.SpliceRows(old, rows)
}
