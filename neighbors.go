package dpe

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/approx"
	"repro/internal/distance"
	"repro/internal/mining"
)

// ApproxIndex is a MinHash/LSH index over a prepared log — the
// sublinear candidate-generation structure of internal/approx. It is
// built once per (measure, log) from the same precomputed sets the
// exact metric uses, cached and journaled by the service like prepared
// state, and consulted by Neighbors and approximate mining instead of
// the full matrix triangle. Treat an index as immutable once built;
// ExtendApproxIndex clones.
type ApproxIndex = approx.Index

// UnmarshalApproxIndex restores an index serialized with
// ApproxIndex.MarshalBinary (the service's journal replay path).
func UnmarshalApproxIndex(data []byte) (*ApproxIndex, error) {
	return approx.Unmarshal(data)
}

// setSource exposes the prepared log's element sets, or explains why
// the measure has none.
func (p *Provider) setSource(pl *PreparedLog) (distance.SetSource, error) {
	src, ok := pl.prep.(distance.SetSource)
	if !ok {
		return nil, fmt.Errorf("dpe: measure %s does not support approximate neighbors (its distance is not a set resemblance)", p.measure)
	}
	return src, nil
}

// BuildApproxIndex signs every query of a prepared log into a fresh
// LSH index. Only the set-based measures (token, structure, result)
// support it; access-area does not. The index is deterministic in the
// log — two providers with the same measure build identical indexes.
func (p *Provider) BuildApproxIndex(pl *PreparedLog) (*ApproxIndex, error) {
	src, err := p.setSource(pl)
	if err != nil {
		return nil, err
	}
	x, err := approx.New(approx.Params{})
	if err != nil {
		return nil, err
	}
	var buf []uint64
	for i := 0; i < src.Len(); i++ {
		buf = src.AppendElementHashes(buf[:0], i)
		x.AddSet(buf)
	}
	return x, nil
}

// ExtendApproxIndex rides the incremental append path: given the index
// of a log prefix and the prepared state of the extended log, it signs
// only the new queries and returns a new index equal to building from
// scratch. idx is not modified.
func (p *Provider) ExtendApproxIndex(idx *ApproxIndex, pl *PreparedLog) (*ApproxIndex, error) {
	src, err := p.setSource(pl)
	if err != nil {
		return nil, err
	}
	if idx.Len() > src.Len() {
		return nil, fmt.Errorf("dpe: index of %d queries cannot extend to a log of %d", idx.Len(), src.Len())
	}
	out := idx.Clone()
	var buf []uint64
	for i := idx.Len(); i < src.Len(); i++ {
		buf = src.AppendElementHashes(buf[:0], i)
		out.AddSet(buf)
	}
	return out, nil
}

// Neighbor is one entry of a top-K neighbor list: a query index and
// its exact distance to the probe query.
type Neighbor struct {
	Index    int     `json:"index"`
	Distance float64 `json:"distance"`
}

// NeighborsResult is the outcome of a sublinear top-K search. The
// neighbor list is entry-wise exact over the candidate set — only
// candidates the LSH buckets missed can be absent, which is what the
// bench suite's recall gate measures.
type NeighborsResult struct {
	// Neighbors holds up to K entries ordered by exact distance with
	// index tie-breaking. Fewer than K entries means the buckets
	// yielded fewer candidates.
	Neighbors []Neighbor
	// Candidates is how many exact distance computations the search
	// performed — the sublinear budget, versus n−1 for a full row.
	Candidates int
	// N is the log size the search ran against.
	N int
}

// NeighborsPrepared is the sparse top-K path: LSH candidates of query
// q from the index, re-ranked by the exact metric, never materializing
// a matrix row. idx must have been built (or extended) from pl.
func (p *Provider) NeighborsPrepared(ctx context.Context, pl *PreparedLog, idx *ApproxIndex, q, k int) (*NeighborsResult, error) {
	n := pl.Len()
	if q < 0 || q >= n {
		return nil, fmt.Errorf("dpe: query index %d outside log of %d queries", q, n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("dpe: neighbors needs K > 0, got %d", k)
	}
	if idx.Len() != n {
		return nil, fmt.Errorf("dpe: index covers %d queries, log has %d", idx.Len(), n)
	}
	defer p.stage(ctx, "rerank")()
	cands := idx.Candidates(q)
	out := make([]Neighbor, 0, len(cands))
	for _, c := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d, err := pl.prep.Distance(q, c)
		if err != nil {
			return nil, err
		}
		out = append(out, Neighbor{Index: c, Distance: d})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Distance != out[b].Distance {
			return out[a].Distance < out[b].Distance
		}
		return out[a].Index < out[b].Index
	})
	if len(out) > k {
		out = out[:k]
	}
	return &NeighborsResult{Neighbors: out, Candidates: len(cands), N: n}, nil
}

// Neighbors prepares the log, builds the index, and runs the sparse
// top-K search — the one-shot form of the two-phase service path.
func (p *Provider) Neighbors(ctx context.Context, log []string, q, k int) (*NeighborsResult, error) {
	pl, err := p.Prepare(ctx, log)
	if err != nil {
		return nil, err
	}
	idx, err := p.BuildApproxIndex(pl)
	if err != nil {
		return nil, err
	}
	return p.NeighborsPrepared(ctx, pl, idx, q, k)
}

// MinePreparedIndexed is MinePrepared with a caller-supplied approx
// index (the service passes its cached one). Exact specs ignore the
// index; approximate specs run over candidate pairs only and leave
// MineResult.Matrix nil.
func (p *Provider) MinePreparedIndexed(ctx context.Context, pl *PreparedLog, idx *ApproxIndex, spec MineSpec) (*MineResult, error) {
	if !spec.Approximate {
		return p.MinePrepared(ctx, pl, spec)
	}
	if err := spec.Validate(pl.Len()); err != nil {
		return nil, err
	}
	if idx.Len() != pl.Len() {
		return nil, fmt.Errorf("dpe: index covers %d queries, log has %d", idx.Len(), pl.Len())
	}
	defer p.stage(ctx, "mine")()
	n := pl.Len()
	res := &MineResult{}
	switch spec.Algorithm {
	case MineDBSCAN:
		pairs := idx.CandidatePairs()
		adj := make([][]int, n)
		for _, pr := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			d, err := pl.prep.Distance(pr[0], pr[1])
			if err != nil {
				return nil, err
			}
			if d <= spec.Eps {
				adj[pr[0]] = append(adj[pr[0]], pr[1])
				adj[pr[1]] = append(adj[pr[1]], pr[0])
			}
		}
		labels, err := mining.DBSCANGraph(n, adj, spec.MinPts)
		if err != nil {
			return nil, err
		}
		res.Labels, res.CandidatePairs = labels, len(pairs)
	case MineKNN:
		nr, err := p.NeighborsPrepared(ctx, pl, idx, spec.Query, spec.K)
		if err != nil {
			return nil, err
		}
		res.Neighbors = make([]int, len(nr.Neighbors))
		for i, nb := range nr.Neighbors {
			res.Neighbors[i] = nb.Index
		}
		res.CandidatePairs = nr.Candidates
	default:
		// Validate already rejected everything else.
		return nil, fmt.Errorf("dpe: %s cannot run approximately", spec.Algorithm)
	}
	return res, nil
}
