package dpe_test

// The append path's defining property, checked end to end from outside
// the facade: for random workloads and random split points, building a
// matrix over n queries and appending k more yields exactly the matrix
// a from-scratch build over all n+k queries produces — for all four
// measures, on plaintext and ciphertext logs, in-process and over the
// wire. (This file is an external test package so it can drive both the
// facade and internal/service against each other.)

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"

	dpe "repro"
	"repro/internal/service"
)

func TestAppendMatchesFullBuildProperty(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7)) // deterministic "random" workloads
	iters := 3
	measures := []dpe.Measure{dpe.MeasureToken, dpe.MeasureStructure, dpe.MeasureResult, dpe.MeasureAccessArea}
	if testing.Short() {
		iters = 1
		measures = measures[:2] // skip the Paillier-heavy artifact encryptions
	}

	// Two servers bracketing the shard spectrum: the registry's shard
	// count must be invisible in every wire result, so the identical
	// property check runs against both.
	clients := map[string]*service.Client{}
	for _, shards := range []int{1, 16} {
		reg := service.NewRegistry(service.Config{Parallelism: 2, Shards: shards})
		defer reg.Close()
		srv := httptest.NewServer(service.NewHandler(reg))
		defer srv.Close()
		clients[fmt.Sprintf("shards=%d", shards)] = service.NewClient(srv.URL)
	}

	for it := 0; it < iters; it++ {
		total := 8 + rng.Intn(8)   // 8..15 queries
		k := 1 + rng.Intn(total-3) // 1..total-3 appended
		n := total - k             // >= 3 base queries
		rows := 16 + rng.Intn(16)  // 16..31 rows per table
		seed := fmt.Sprintf("prop-%d-%d", it, rng.Int63())

		w, err := dpe.GenerateWorkload(dpe.WorkloadConfig{
			Seed: seed, Queries: total, Rows: rows,
			IncludeAggregates: true, IncludeJoins: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		owner, err := dpe.NewOwner([]byte("prop:"+seed), w.Schema, dpe.Config{PaillierBits: 512})
		if err != nil {
			t.Fatal(err)
		}
		if err := owner.DeclareJoins(w.Queries); err != nil {
			t.Fatal(err)
		}

		for _, m := range measures {
			t.Run(fmt.Sprintf("it%d_n%d_k%d_%s", it, n, k, m), func(t *testing.T) {
				encLog, err := owner.EncryptLog(w.Queries, m)
				if err != nil {
					t.Fatal(err)
				}
				localOpts, remoteOpts, err := service.EncryptedArtifactOptions(owner, w, m)
				if err != nil {
					t.Fatal(err)
				}

				// Plaintext, in-process: the property must hold before any
				// encryption is involved.
				var plainOpts []dpe.ProviderOption
				switch m {
				case dpe.MeasureResult:
					plainOpts = append(plainOpts, dpe.WithCatalog(w.Catalog, nil))
				case dpe.MeasureAccessArea:
					plainOpts = append(plainOpts, dpe.WithDomains(w.Domains))
				}
				plain, err := dpe.NewProvider(m, append([]dpe.ProviderOption{dpe.WithParallelism(2)}, plainOpts...)...)
				if err != nil {
					t.Fatal(err)
				}
				checkAppendProperty(t, ctx, "plaintext local", plain, w.Queries, n)

				// Ciphertext, in-process.
				local, err := dpe.NewProvider(m, append([]dpe.ProviderOption{dpe.WithParallelism(2)}, localOpts...)...)
				if err != nil {
					t.Fatal(err)
				}
				checkAppendProperty(t, ctx, "encrypted local", local, encLog, n)

				// Ciphertext, over the wire: the remote session implements
				// the same dpe.ProviderAPI, so the identical check runs
				// against dpeserver — once per shard count.
				want, err := local.DistanceMatrix(ctx, encLog)
				if err != nil {
					t.Fatal(err)
				}
				for name, client := range clients {
					sess, err := client.NewSession(ctx, m, remoteOpts...)
					if err != nil {
						t.Fatal(err)
					}
					defer sess.Close(ctx)
					checkAppendProperty(t, ctx, "encrypted remote "+name, sess, encLog, n)

					// Cross-check: the remote full build equals the local one.
					got, err := sess.DistanceMatrix(ctx, encLog)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("remote matrix (%s) differs from local matrix", name)
					}
				}
			})
		}
	}
}

// checkAppendProperty asserts DistanceMatrix(log[:n]) + Append(log[n:])
// == DistanceMatrix(log) entry-wise, through the dpe.ProviderAPI
// surface, so in-process providers and remote sessions run the
// identical check.
func checkAppendProperty(t *testing.T, ctx context.Context, label string, p dpe.ProviderAPI, log []string, n int) {
	t.Helper()
	full, err := p.DistanceMatrix(ctx, log)
	if err != nil {
		t.Fatalf("%s: full build: %v", label, err)
	}
	old, err := p.DistanceMatrix(ctx, log[:n])
	if err != nil {
		t.Fatalf("%s: base build: %v", label, err)
	}
	got, err := p.Append(ctx, old, log[:n], log[n:])
	if err != nil {
		t.Fatalf("%s: append: %v", label, err)
	}
	if !reflect.DeepEqual(got, full) {
		t.Errorf("%s: Append(n=%d, k=%d) differs from the full %d×%d build",
			label, n, len(log)-n, len(log), len(log))
	}
	// The k=0 edge: an empty append is a no-op on every implementation.
	noop, err := p.Append(ctx, full, log, nil)
	if err != nil {
		t.Fatalf("%s: empty append: %v", label, err)
	}
	if !reflect.DeepEqual(noop, full) {
		t.Errorf("%s: empty append changed the matrix", label)
	}
}
