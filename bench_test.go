package dpe

// The benchmark harness regenerates every evaluation artifact of the
// paper (DESIGN.md §4) and measures the system's performance:
//
//	BenchmarkTable1_*            — E1: Table I rows (one per measure)
//	BenchmarkFig1_Taxonomy       — E2: Fig. 1 attack advantages
//	BenchmarkMiningEquality      — E3: mining-result equality, 5 algorithms
//	BenchmarkAccessAreaSecurity  — E4: Section IV-C refinement
//	BenchmarkSharedInfo          — E5: shared-information columns
//	Benchmark<class>_*           — P1: encryption throughput per PPE class
//	BenchmarkOPE_DomainBits      — P2: OPE cost vs domain width
//	BenchmarkPaillier_*          — P3: HOM operation costs
//	BenchmarkDistance_*          — P4: distance-matrix construction
//	BenchmarkBuildMatrix/*       — P4b: sequential vs parallel engine
//	BenchmarkEndToEnd_*          — P5: encrypt-log + mine pipelines
//
// Run: go test -bench . -benchmem
// The experiment benches print their paper-style table once per run
// (b.N iterations recompute the result to time it).

import (
	"context"
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"testing"

	"repro/internal/crypto/det"
	"repro/internal/crypto/hom"
	"repro/internal/crypto/ope"
	"repro/internal/crypto/prf"
	"repro/internal/crypto/prob"
	"repro/internal/crypto/swp"
	"repro/internal/experiments"
)

// benchParams scale the experiment benches (DESIGN.md §4 parameters).
var benchParams = experiments.Params{Seed: "seed-42", Queries: 40, Rows: 100, PaillierBits: 512}

// skipShort guards the heavyweight benchmarks (full experiment
// pipelines, matrix builds over executed logs) so `go test -short
// -bench .` — the CI shape — stays fast. The deterministic smoke
// coverage of the same paths lives in internal/bench.
func skipShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("heavyweight benchmark; run without -short")
	}
}

var printOnce sync.Once

// --- E1: Table I ---

func benchTable1(b *testing.B, row int) {
	b.Helper()
	skipShort(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		if rows[row].Procedure.Selection.Chosen == nil {
			b.Fatalf("row %d: no appropriate class found", row)
		}
		if i == 0 {
			out = experiments.RenderTable1(rows)
		}
	}
	printOnce.Do(func() { fmt.Println(out) })
}

func BenchmarkTable1_TokenDistance(b *testing.B)      { benchTable1(b, 0) }
func BenchmarkTable1_StructureDistance(b *testing.B)  { benchTable1(b, 1) }
func BenchmarkTable1_ResultDistance(b *testing.B)     { benchTable1(b, 2) }
func BenchmarkTable1_AccessAreaDistance(b *testing.B) { benchTable1(b, 3) }

// --- E2: Fig. 1 ---

func BenchmarkFig1_Taxonomy(b *testing.B) {
	skipShort(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		if !experiments.OrderingHolds(rows) {
			b.Fatalf("Fig. 1 ordering violated: %+v", rows)
		}
		if i == 0 {
			out = experiments.RenderFig1(rows)
		}
	}
	fmt.Println(out)
}

// --- E3: mining equality ---

func BenchmarkMiningEquality(b *testing.B) {
	skipShort(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, ctrl, err := experiments.MiningEquality(benchParams, experiments.DefaultMiningParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Equal {
				b.Fatalf("%s/%s differs", r.Measure, r.Algorithm)
			}
		}
		if !ctrl.MatrixDiffers {
			b.Fatal("negative control did not differ")
		}
		if i == 0 {
			out = experiments.RenderMining(rows, ctrl)
		}
	}
	fmt.Println(out)
}

// --- E4: access-area security ---

func BenchmarkAccessAreaSecurity(b *testing.B) {
	skipShort(b)
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AccessAreaSecurity(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Preserved.Preserved || rep.Improved == 0 {
			b.Fatalf("E4 failed: %+v", rep)
		}
		if i == 0 {
			out = experiments.RenderAccessAreaSecurity(rep)
		}
	}
	fmt.Println(out)
}

// --- E5: shared information ---

func BenchmarkSharedInfo(b *testing.B) {
	skipShort(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SharedInfo(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			out = experiments.RenderSharedInfo(rows)
		}
	}
	fmt.Println(out)
}

// --- E6: association rules over encrypted logs ---

func BenchmarkAssociationRules(b *testing.B) {
	skipShort(b)
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AssociationRules(benchParams, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.ShapesEqual {
			b.Fatal("rule shapes differ")
		}
		if i == 0 {
			out = experiments.RenderRules(rep)
		}
	}
	fmt.Println(out)
}

// --- P1: encryption throughput per class ---

func BenchmarkPROB_Encrypt(b *testing.B) {
	s := prob.NewFromSeed([]byte("bench"))
	pt := []byte("SELECT-constant-0123456789")
	b.SetBytes(int64(len(pt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encrypt(pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDET_Encrypt(b *testing.B) {
	s := det.NewFromSeed([]byte("bench"))
	pt := []byte("SELECT-constant-0123456789")
	b.SetBytes(int64(len(pt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Encrypt(pt)
	}
}

func BenchmarkDET_Decrypt(b *testing.B) {
	s := det.NewFromSeed([]byte("bench"))
	ct := s.Encrypt([]byte("SELECT-constant-0123456789"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

// --- P2: OPE cost vs domain width ---

func BenchmarkOPE_DomainBits(b *testing.B) {
	for _, bits := range []uint{16, 32, 48, 64} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			s, err := ope.New([]byte("bench"), ope.Params{DomainBits: bits, ExpansionBits: 16})
			if err != nil {
				b.Fatal(err)
			}
			max := uint64(1)<<(bits-1) - 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Encrypt(uint64(i) & max); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOPE_Hypergeometric(b *testing.B) {
	s, err := ope.New([]byte("bench"), ope.Params{DomainBits: 12, ExpansionBits: 8, Hypergeometric: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encrypt(uint64(i) & 0xFFF); err != nil {
			b.Fatal(err)
		}
	}
}

// --- P3: Paillier operation costs ---

var benchKeyOnce sync.Once
var benchKey *hom.PrivateKey

func paillierKey(b *testing.B) *hom.PrivateKey {
	b.Helper()
	benchKeyOnce.Do(func() {
		k, err := hom.GenerateKey(prf.NewDRBG([]byte("bench"), []byte("pk")), 1024)
		if err != nil {
			panic(err)
		}
		benchKey = k
	})
	return benchKey
}

func BenchmarkPaillier_Encrypt(b *testing.B) {
	k := paillierKey(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.EncryptInt64(nil, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaillier_Decrypt(b *testing.B) {
	k := paillierKey(b)
	c, _ := k.EncryptInt64(nil, 123456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Decrypt(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaillier_Add(b *testing.B) {
	k := paillierKey(b)
	c1, _ := k.EncryptInt64(nil, 1)
	c2, _ := k.EncryptInt64(nil, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Add(c1, c2)
	}
}

func BenchmarkPaillier_MulConst(b *testing.B) {
	k := paillierKey(b)
	c, _ := k.EncryptInt64(nil, 7)
	factor := big.NewInt(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.MulConst(c, factor)
	}
}

// --- P3b: SWP searchable encryption (the LIKE extension) ---

func BenchmarkSWP_Encrypt(b *testing.B) {
	s := swp.NewFromSeed([]byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Encrypt("galaxy", uint64(i))
	}
}

func BenchmarkSWP_Search(b *testing.B) {
	s := swp.NewFromSeed([]byte("bench"))
	words := []string{"bright", "galaxy", "north", "faint", "star", "cluster", "quasar", "deep"}
	var cts [][]byte
	for i := 0; i < 1024; i++ {
		cts = append(cts, s.Encrypt(words[i%len(words)], uint64(i)))
	}
	td := s.Trapdoor("galaxy")
	b.SetBytes(int64(len(cts)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := td.Search(cts); len(hits) != 128 {
			b.Fatalf("hits = %d", len(hits))
		}
	}
}

// --- P4: distance-matrix construction per measure ---

func benchWorkload(b *testing.B, n int) (*Workload, *Owner) {
	b.Helper()
	w, err := GenerateWorkload(WorkloadConfig{Seed: "bench", Queries: n, Rows: 80, IncludeAggregates: true, IncludeJoins: true})
	if err != nil {
		b.Fatal(err)
	}
	owner, err := NewOwner([]byte("bench-master"), w.Schema, Config{PaillierBits: 512})
	if err != nil {
		b.Fatal(err)
	}
	if err := owner.DeclareJoins(w.Queries); err != nil {
		b.Fatal(err)
	}
	return w, owner
}

func BenchmarkDistance_TokenMatrix(b *testing.B) {
	skipShort(b)
	w, _ := benchWorkload(b, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TokenDistanceMatrix(w.Queries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistance_StructureMatrix(b *testing.B) {
	skipShort(b)
	w, _ := benchWorkload(b, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := StructureDistanceMatrix(w.Queries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistance_ResultMatrix(b *testing.B) {
	skipShort(b)
	w, _ := benchWorkload(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ResultDistanceMatrix(w.Queries, w.Catalog, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistance_AccessAreaMatrix(b *testing.B) {
	skipShort(b)
	w, _ := benchWorkload(b, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AccessAreaDistanceMatrix(w.Queries, w.Domains, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- P4b: the parallel distance engine, sequential vs worker pool ---

// BenchmarkBuildMatrix measures a full Provider.DistanceMatrix over a
// 64-query result-distance workload — the heaviest pair function, since
// preparation executes every query over the catalog. "seq" is the
// sequential engine; "par-N" fans both the per-query execution and the
// upper-triangle fan-out over N workers. All variants produce entry-wise
// identical matrices (TestProviderDistanceMatrixAllMeasures pins that).
func BenchmarkBuildMatrix(b *testing.B) {
	skipShort(b)
	w, _ := benchWorkload(b, 64)
	run := func(b *testing.B, parallelism int) {
		b.Helper()
		p, err := NewProvider(MeasureResult, WithCatalog(w.Catalog, nil), WithParallelism(parallelism))
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.DistanceMatrix(ctx, w.Queries); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seq", func(b *testing.B) { run(b, 1) }) // parallelism 1
	seen := map[int]bool{1: true}                  // par-1 would duplicate seq
	for _, par := range []int{4, runtime.NumCPU()} {
		if seen[par] {
			continue
		}
		seen[par] = true
		b.Run(fmt.Sprintf("par-%d", par), func(b *testing.B) { run(b, par) })
	}
}

// --- P5: end-to-end pipelines ---

func BenchmarkEndToEnd_EncryptLogToken(b *testing.B) {
	skipShort(b)
	w, owner := benchWorkload(b, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := owner.EncryptLog(w.Queries, MeasureToken); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEnd_EncryptCatalog(b *testing.B) {
	skipShort(b)
	w, owner := benchWorkload(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := owner.EncryptCatalog(w.Catalog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEnd_EncryptAndCluster(b *testing.B) {
	skipShort(b)
	w, owner := benchWorkload(b, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encLog, err := owner.EncryptLog(w.Queries, MeasureToken)
		if err != nil {
			b.Fatal(err)
		}
		m, err := TokenDistanceMatrix(encLog)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := KMedoids(m, 4); err != nil {
			b.Fatal(err)
		}
	}
}
