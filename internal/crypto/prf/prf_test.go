package prf

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

func TestPRFDeterministic(t *testing.T) {
	p1 := New([]byte("key-a"))
	p2 := New([]byte("key-a"))
	in := []byte("hello world")
	if !bytes.Equal(p1.Eval(in), p2.Eval(in)) {
		t.Fatal("same key, same input must give same output")
	}
}

func TestPRFKeySeparation(t *testing.T) {
	p1 := New([]byte("key-a"))
	p2 := New([]byte("key-b"))
	in := []byte("hello world")
	if bytes.Equal(p1.Eval(in), p2.Eval(in)) {
		t.Fatal("different keys must give different outputs")
	}
}

func TestPRFOutputSize(t *testing.T) {
	p := New([]byte("k"))
	if got := len(p.Eval([]byte("x"))); got != Size {
		t.Fatalf("output size = %d, want %d", got, Size)
	}
}

func TestPRFKeyCopied(t *testing.T) {
	key := []byte("mutable-key")
	p := New(key)
	before := p.Eval([]byte("in"))
	key[0] = 'X'
	after := p.Eval([]byte("in"))
	if !bytes.Equal(before, after) {
		t.Fatal("PRF must copy its key; caller mutation changed output")
	}
}

func TestEvalPartsBoundaries(t *testing.T) {
	p := New([]byte("k"))
	a := p.EvalParts([]byte("ab"), []byte("c"))
	b := p.EvalParts([]byte("a"), []byte("bc"))
	if bytes.Equal(a, b) {
		t.Fatal(`EvalParts("ab","c") must differ from EvalParts("a","bc")`)
	}
	c := p.EvalParts([]byte("abc"))
	if bytes.Equal(a, c) || bytes.Equal(b, c) {
		t.Fatal("part count must be bound into the PRF input")
	}
}

func TestDeriveIndependence(t *testing.T) {
	p := New([]byte("master"))
	d1 := p.Derive("col1")
	d2 := p.Derive("col2")
	in := []byte("v")
	if bytes.Equal(d1.Eval(in), d2.Eval(in)) {
		t.Fatal("derived keys for distinct labels must differ")
	}
	d1b := p.Derive("col1")
	if !bytes.Equal(d1.Eval(in), d1b.Eval(in)) {
		t.Fatal("derivation must be deterministic")
	}
}

func TestDRBGDeterministicStream(t *testing.T) {
	a := NewDRBG([]byte("seed"), []byte("label"))
	b := NewDRBG([]byte("seed"), []byte("label"))
	ba := make([]byte, 1000)
	bb := make([]byte, 1000)
	a.Read(ba)
	b.Read(bb)
	if !bytes.Equal(ba, bb) {
		t.Fatal("two DRBGs with same seed/label must emit identical streams")
	}
}

func TestDRBGLabelSeparation(t *testing.T) {
	a := NewDRBG([]byte("seed"), []byte("l1"))
	b := NewDRBG([]byte("seed"), []byte("l2"))
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("different labels should give different streams")
	}
}

func TestDRBGReadChunking(t *testing.T) {
	// Reading 100 bytes at once equals reading 100 bytes in odd chunks.
	a := NewDRBG([]byte("s"), []byte("l"))
	b := NewDRBG([]byte("s"), []byte("l"))
	whole := make([]byte, 100)
	a.Read(whole)
	var pieces []byte
	for _, n := range []int{1, 7, 13, 31, 48} {
		chunk := make([]byte, n)
		b.Read(chunk)
		pieces = append(pieces, chunk...)
	}
	if !bytes.Equal(whole, pieces) {
		t.Fatal("stream must be independent of read chunking")
	}
}

func TestUint64nBounds(t *testing.T) {
	d := NewDRBG([]byte("s"), []byte("bounds"))
	for _, n := range []uint64{1, 2, 3, 7, 8, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := d.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) must panic")
		}
	}()
	NewDRBG([]byte("s"), []byte("l")).Uint64n(0)
}

func TestUint64nCoversRange(t *testing.T) {
	d := NewDRBG([]byte("s"), []byte("cover"))
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		seen[d.Uint64n(5)] = true
	}
	for v := uint64(0); v < 5; v++ {
		if !seen[v] {
			t.Fatalf("value %d never sampled in 1000 draws from [0,5)", v)
		}
	}
}

func TestInt64Range(t *testing.T) {
	d := NewDRBG([]byte("s"), []byte("range"))
	for i := 0; i < 500; i++ {
		v := d.Int64Range(-10, 10)
		if v < -10 || v > 10 {
			t.Fatalf("Int64Range(-10,10) = %d out of range", v)
		}
	}
	// Degenerate single-point range.
	if v := d.Int64Range(42, 42); v != 42 {
		t.Fatalf("Int64Range(42,42) = %d, want 42", v)
	}
}

func TestBigIntnBounds(t *testing.T) {
	d := NewDRBG([]byte("s"), []byte("big"))
	n := new(big.Int).Lsh(big.NewInt(1), 130) // 2^130
	for i := 0; i < 100; i++ {
		v := d.BigIntn(n)
		if v.Sign() < 0 || v.Cmp(n) >= 0 {
			t.Fatalf("BigIntn out of range: %v", v)
		}
	}
}

func TestBigIntnSmall(t *testing.T) {
	d := NewDRBG([]byte("s"), []byte("small"))
	one := big.NewInt(1)
	for i := 0; i < 20; i++ {
		if v := d.BigIntn(one); v.Sign() != 0 {
			t.Fatalf("BigIntn(1) = %v, want 0", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	d := NewDRBG([]byte("s"), []byte("f"))
	for i := 0; i < 1000; i++ {
		f := d.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	d := NewDRBG([]byte("s"), []byte("perm"))
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := d.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestQuickPRFDeterminism(t *testing.T) {
	p := New([]byte("quick-key"))
	f := func(in []byte) bool {
		return bytes.Equal(p.Eval(in), p.Eval(in))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	d := NewDRBG([]byte("quick"), []byte("u64n"))
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return d.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
