// Package prf provides the deterministic randomness substrate used by the
// property-preserving encryption classes in this repository.
//
// All schemes that must be deterministic (DET, OPE) derive their coins from
// a keyed pseudo-random function (HMAC-SHA256) rather than from the system
// randomness source. The package offers three layers:
//
//   - PRF: a fixed-output-length keyed function,
//   - DRBG: an unbounded deterministic byte stream seeded by (key, label),
//   - samplers: uniform integers in arbitrary ranges, drawn from a DRBG
//     using rejection sampling so the distribution is exactly uniform.
package prf

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"math/big"
)

// Size is the output size in bytes of the PRF.
const Size = sha256.Size

// PRF is a keyed pseudo-random function based on HMAC-SHA256.
// The zero value is unusable; construct with New.
type PRF struct {
	key []byte
}

// New returns a PRF keyed with key. The key is copied.
func New(key []byte) *PRF {
	k := make([]byte, len(key))
	copy(k, key)
	return &PRF{key: k}
}

// Eval returns HMAC-SHA256(key, input). The result is a fresh slice of
// length Size.
func (p *PRF) Eval(input []byte) []byte {
	mac := hmac.New(sha256.New, p.key)
	mac.Write(input)
	return mac.Sum(nil)
}

// EvalParts evaluates the PRF over the concatenation of the given parts,
// with each part length-prefixed so that distinct part boundaries can never
// collide ("ab","c" never equals "a","bc").
func (p *PRF) EvalParts(parts ...[]byte) []byte {
	mac := hmac.New(sha256.New, p.key)
	var lenBuf [8]byte
	for _, part := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(part)))
		mac.Write(lenBuf[:])
		mac.Write(part)
	}
	return mac.Sum(nil)
}

// Derive returns a subkey bound to the given label. It implements a
// simple HKDF-expand-like derivation: HMAC(key, "derive" || label).
func (p *PRF) Derive(label string) *PRF {
	return New(p.EvalParts([]byte("derive"), []byte(label)))
}

// DRBG is a deterministic random byte generator: counter-mode expansion of
// a PRF. Two DRBGs constructed from the same key and label produce the
// same stream. DRBG is not safe for concurrent use.
type DRBG struct {
	prf     *PRF
	label   []byte
	counter uint64
	buf     []byte
	off     int
}

// NewDRBG returns a DRBG seeded by key and label.
func NewDRBG(key []byte, label []byte) *DRBG {
	l := make([]byte, len(label))
	copy(l, label)
	return &DRBG{prf: New(key), label: l}
}

// NewDRBGFromPRF returns a DRBG drawing from an existing PRF under label.
func NewDRBGFromPRF(p *PRF, label []byte) *DRBG {
	l := make([]byte, len(label))
	copy(l, label)
	return &DRBG{prf: p, label: l}
}

func (d *DRBG) refill() {
	var ctr [8]byte
	binary.BigEndian.PutUint64(ctr[:], d.counter)
	d.counter++
	d.buf = d.prf.EvalParts([]byte("drbg"), d.label, ctr[:])
	d.off = 0
}

// Read fills p with deterministic pseudo-random bytes. It never fails.
func (d *DRBG) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if d.off >= len(d.buf) {
			d.refill()
		}
		c := copy(p, d.buf[d.off:])
		d.off += c
		p = p[c:]
	}
	return n, nil
}

// Uint64 returns the next 8 stream bytes as a big-endian uint64.
func (d *DRBG) Uint64() uint64 {
	var b [8]byte
	d.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Rejection sampling makes the distribution exactly uniform.
func (d *DRBG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prf: Uint64n with n == 0")
	}
	if n&(n-1) == 0 { // power of two
		return d.Uint64() & (n - 1)
	}
	// Largest multiple of n that fits in a uint64.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := d.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Int64Range returns a uniform value in [lo, hi]. It panics if lo > hi.
func (d *DRBG) Int64Range(lo, hi int64) int64 {
	if lo > hi {
		panic("prf: Int64Range with lo > hi")
	}
	span := uint64(hi-lo) + 1
	if span == 0 { // full range
		return int64(d.Uint64())
	}
	return lo + int64(d.Uint64n(span))
}

// BigIntn returns a uniform big.Int in [0, n). It panics if n <= 0.
func (d *DRBG) BigIntn(n *big.Int) *big.Int {
	if n.Sign() <= 0 {
		panic("prf: BigIntn with n <= 0")
	}
	bits := n.BitLen()
	bytes := (bits + 7) / 8
	mask := byte(0xff >> (uint(bytes*8 - bits)))
	buf := make([]byte, bytes)
	v := new(big.Int)
	for {
		d.Read(buf)
		buf[0] &= mask
		v.SetBytes(buf)
		if v.Cmp(n) < 0 {
			return new(big.Int).Set(v)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (d *DRBG) Float64() float64 {
	return float64(d.Uint64()>>11) / float64(1<<53)
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (d *DRBG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(d.Uint64n(uint64(i + 1)))
		p[i], p[j] = p[j], p[i]
	}
	return p
}
