package swp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSearchFindsAllOccurrences(t *testing.T) {
	s := NewFromSeed([]byte("seed"))
	words := []string{"galaxy", "star", "galaxy", "qso", "galaxy", "star"}
	cts := s.EncryptTokens(words, 0)
	got := s.Trapdoor("galaxy").Search(cts)
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("positions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("positions = %v, want %v", got, want)
		}
	}
}

func TestNoFalsePositives(t *testing.T) {
	s := NewFromSeed([]byte("seed"))
	words := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	cts := s.EncryptTokens(words, 0)
	if hits := s.Trapdoor("zz").Search(cts); len(hits) != 0 {
		t.Fatalf("phantom matches: %v", hits)
	}
}

func TestCiphertextsPositionRandomized(t *testing.T) {
	// Same word at two positions must yield different ciphertexts —
	// otherwise the stored column would be deterministic and leak
	// frequencies without any search.
	s := NewFromSeed([]byte("seed"))
	c0 := s.Encrypt("star", 0)
	c1 := s.Encrypt("star", 1)
	if bytes.Equal(c0, c1) {
		t.Fatal("SWP ciphertexts must differ across positions")
	}
	// But deterministic per (word, position): re-encryption reproducible.
	if !bytes.Equal(c0, s.Encrypt("star", 0)) {
		t.Fatal("SWP must be deterministic per position")
	}
}

func TestTrapdoorIsolation(t *testing.T) {
	// The trapdoor for one word must not match other words' ciphertexts.
	s := NewFromSeed([]byte("seed"))
	td := s.Trapdoor("star")
	for _, w := range []string{"stars", "sta", "STAR", "qso", ""} {
		if td.Matches(s.Encrypt(w, 7)) {
			t.Fatalf("trapdoor for star matched %q", w)
		}
	}
	if !td.Matches(s.Encrypt("star", 7)) {
		t.Fatal("trapdoor must match its own word")
	}
}

func TestKeySeparation(t *testing.T) {
	s1 := NewFromSeed([]byte("k1"))
	s2 := NewFromSeed([]byte("k2"))
	ct := s1.Encrypt("star", 0)
	if s2.Trapdoor("star").Matches(ct) {
		t.Fatal("trapdoor under another key must not match")
	}
}

func TestMalformedCiphertext(t *testing.T) {
	s := NewFromSeed([]byte("seed"))
	td := s.Trapdoor("x")
	for _, ct := range [][]byte{nil, {}, make([]byte, blockSize-1), make([]byte, blockSize+1)} {
		if td.Matches(ct) {
			t.Fatalf("malformed ciphertext of len %d matched", len(ct))
		}
	}
}

func TestMasterKeyValidation(t *testing.T) {
	if _, err := New(make([]byte, 16)); err == nil {
		t.Fatal("short master key must be rejected")
	}
	if _, err := New(make([]byte, 32)); err != nil {
		t.Fatalf("valid key rejected: %v", err)
	}
}

func TestQuickMatchIffSameWord(t *testing.T) {
	s := NewFromSeed([]byte("quick"))
	f := func(a, b string, pos uint16) bool {
		ct := s.Encrypt(a, uint64(pos))
		return s.Trapdoor(b).Matches(ct) == (a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptTokensBaseOffset(t *testing.T) {
	s := NewFromSeed([]byte("seed"))
	a := s.EncryptTokens([]string{"x", "y"}, 0)
	b := s.EncryptTokens([]string{"x", "y"}, 100)
	if bytes.Equal(a[0], b[0]) {
		t.Fatal("different base offsets must change ciphertexts")
	}
	td := s.Trapdoor("x")
	if !td.Matches(a[0]) || !td.Matches(b[0]) {
		t.Fatal("trapdoor must match across offsets")
	}
}

// TestLikeStyleSearchOverColumn demonstrates the intended integration:
// a string column is stored as SWP token streams; "class LIKE
// '%galaxy%'" becomes a trapdoor scan, without decrypting the column.
func TestLikeStyleSearchOverColumn(t *testing.T) {
	s := NewFromSeed([]byte("column"))
	rows := [][]string{
		{"bright", "galaxy", "north"},
		{"faint", "star"},
		{"galaxy", "cluster"},
		{"quasar"},
	}
	var stored [][][]byte
	base := uint64(0)
	for _, tokens := range rows {
		stored = append(stored, s.EncryptTokens(tokens, base))
		base += uint64(len(tokens))
	}
	td := s.Trapdoor("galaxy")
	var hits []int
	for i, row := range stored {
		for _, ct := range row {
			if td.Matches(ct) {
				hits = append(hits, i)
				break
			}
		}
	}
	if len(hits) != 2 || hits[0] != 0 || hits[1] != 2 {
		t.Fatalf("rows matching 'galaxy' = %v, want [0 2]", hits)
	}
}
