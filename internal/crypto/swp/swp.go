// Package swp implements Song–Wagner–Perrig searchable symmetric
// encryption (practical techniques for searches on encrypted data,
// IEEE S&P 2000) — the extension the paper's case study points at for
// LIKE predicates: CryptDB's SEARCH onion uses exactly this scheme.
//
// The data owner encrypts each word of a document (here: each token of
// a string column) into a sequence of searchable ciphertexts. To search,
// the owner hands the provider a trapdoor for one word; the provider can
// test every stored ciphertext for a match without learning the word or
// any non-matching plaintext. Matching reveals only *which* positions
// match (access pattern), the standard SSE leakage.
//
// Construction (per word w at stream position i):
//
//	X  = E_det(w)              deterministic pre-encryption, split X = L || R
//	S_i = PRF_seed(i)          pseudo-random stream block
//	k_w = PRF_key(L)           word-derived key
//	C_i = X XOR ( S_i || F_{k_w}(S_i) )
//
// A trapdoor for w is (X, k_w). The provider XORs C_i with X, obtaining
// (S || T), and accepts iff T == F_{k_w}(S). Without the trapdoor the
// ciphertext is pseudo-random.
package swp

import (
	"crypto/hmac"
	"encoding/binary"
	"fmt"

	"repro/internal/crypto/det"
	"repro/internal/crypto/prf"
)

// blockSize is the searchable ciphertext width: sHalf stream bytes plus
// tHalf check bytes.
const (
	sHalf     = 16
	tHalf     = 16
	blockSize = sHalf + tHalf
)

// Scheme is an SWP searchable encryption scheme. Safe for concurrent
// use. Construct with New or NewFromSeed.
type Scheme struct {
	pre    *det.Scheme // deterministic pre-encryption of words
	seed   *prf.PRF    // stream generator
	wordKD *prf.PRF    // word-key derivation
}

// New returns a scheme keyed by a 32-byte master key.
func New(master []byte) (*Scheme, error) {
	if len(master) != 32 {
		return nil, fmt.Errorf("swp: master key must be 32 bytes, got %d", len(master))
	}
	root := prf.New(master)
	pre, err := det.New(root.Eval([]byte("swp-pre"))[:32])
	if err != nil {
		return nil, err
	}
	return &Scheme{
		pre:    pre,
		seed:   root.Derive("swp-seed"),
		wordKD: root.Derive("swp-wordkey"),
	}, nil
}

// NewFromSeed derives the master key from an arbitrary seed.
func NewFromSeed(seed []byte) *Scheme {
	s, err := New(prf.New(seed).Eval([]byte("swp-master")))
	if err != nil {
		panic(err) // unreachable: key size correct by construction
	}
	return s
}

// preimage computes the fixed-width deterministic pre-encryption X of a
// word by hashing the DET ciphertext to blockSize bytes.
func (s *Scheme) preimage(word string) []byte {
	ct := s.pre.EncryptString(word)
	// Compress to the fixed block width with a PRF (still deterministic
	// and collision-resistant for our purposes).
	return s.wordKD.EvalParts([]byte("X"), ct)[:blockSize]
}

// wordKey derives k_w from the left half of X.
func (s *Scheme) wordKey(x []byte) *prf.PRF {
	return prf.New(s.wordKD.EvalParts([]byte("kw"), x[:sHalf]))
}

// streamBlock returns S_i for position i.
func (s *Scheme) streamBlock(i uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], i)
	return s.seed.EvalParts([]byte("S"), buf[:])[:sHalf]
}

// Encrypt produces the searchable ciphertext of word at stream position
// i. Equal words at different positions yield different ciphertexts
// (position-randomized), yet remain findable via one trapdoor.
func (s *Scheme) Encrypt(word string, i uint64) []byte {
	x := s.preimage(word)
	si := s.streamBlock(i)
	kw := s.wordKey(x)
	ti := kw.Eval(si)[:tHalf]
	out := make([]byte, blockSize)
	copy(out, si)
	copy(out[sHalf:], ti)
	for j := range out {
		out[j] ^= x[j]
	}
	return out
}

// Trapdoor authorizes searching for one word. It reveals nothing about
// other words.
type Trapdoor struct {
	x  []byte
	kw *prf.PRF
}

// Trapdoor issues the search token for word.
func (s *Scheme) Trapdoor(word string) Trapdoor {
	x := s.preimage(word)
	return Trapdoor{x: x, kw: s.wordKey(x)}
}

// Matches tests whether ciphertext ct was produced from the trapdoor's
// word (at any position). It uses no secret state beyond the trapdoor.
func (t Trapdoor) Matches(ct []byte) bool {
	if len(ct) != blockSize {
		return false
	}
	buf := make([]byte, blockSize)
	for j := range buf {
		buf[j] = ct[j] ^ t.x[j]
	}
	want := t.kw.Eval(buf[:sHalf])[:tHalf]
	return hmac.Equal(buf[sHalf:], want)
}

// Search scans a ciphertext stream and returns the matching positions.
func (t Trapdoor) Search(cts [][]byte) []int {
	var out []int
	for i, ct := range cts {
		if t.Matches(ct) {
			out = append(out, i)
		}
	}
	return out
}

// EncryptTokens encrypts a tokenized string cell (e.g. the words of a
// text column) with per-position ciphertexts, as CryptDB's SEARCH onion
// stores them.
func (s *Scheme) EncryptTokens(tokens []string, base uint64) [][]byte {
	out := make([][]byte, len(tokens))
	for i, w := range tokens {
		out[i] = s.Encrypt(w, base+uint64(i))
	}
	return out
}
