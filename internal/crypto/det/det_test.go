package det

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	s := NewFromSeed([]byte("seed"))
	for _, pt := range [][]byte{nil, {}, []byte("x"), []byte("SELECT a FROM r"), bytes.Repeat([]byte{7}, 500)} {
		got, err := s.Decrypt(s.Encrypt(pt))
		if err != nil {
			t.Fatalf("Decrypt(%q): %v", pt, err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("round trip: got %q, want %q", got, pt)
		}
	}
}

func TestDeterministic(t *testing.T) {
	// The defining property of the DET class: equal plaintexts map to
	// equal ciphertexts under the same key.
	s := NewFromSeed([]byte("seed"))
	pt := []byte("constant")
	if !bytes.Equal(s.Encrypt(pt), s.Encrypt(pt)) {
		t.Fatal("DET scheme produced different ciphertexts for equal plaintexts")
	}
}

func TestDistinctPlaintextsDistinctCiphertexts(t *testing.T) {
	s := NewFromSeed([]byte("seed"))
	if bytes.Equal(s.Encrypt([]byte("a")), s.Encrypt([]byte("b"))) {
		t.Fatal("distinct plaintexts collided")
	}
}

func TestKeySeparation(t *testing.T) {
	s1 := NewFromSeed([]byte("seed-1"))
	s2 := NewFromSeed([]byte("seed-2"))
	pt := []byte("constant")
	if bytes.Equal(s1.Encrypt(pt), s2.Encrypt(pt)) {
		t.Fatal("different keys produced the same ciphertext")
	}
	if _, err := s2.Decrypt(s1.Encrypt(pt)); err == nil {
		t.Fatal("ciphertext must not authenticate under a different key")
	}
}

func TestKeySizeValidation(t *testing.T) {
	if _, err := New(make([]byte, 5)); err == nil {
		t.Fatal("New must reject short keys")
	}
	if _, err := New(make([]byte, KeySize)); err != nil {
		t.Fatalf("New rejected a valid key: %v", err)
	}
}

func TestTamperDetection(t *testing.T) {
	s := NewFromSeed([]byte("seed"))
	ct := s.Encrypt([]byte("payload"))
	for i := range ct {
		mut := append([]byte(nil), ct...)
		mut[i] ^= 0x80
		if _, err := s.Decrypt(mut); err == nil {
			t.Fatalf("flip at byte %d not detected", i)
		}
	}
}

func TestShortCiphertext(t *testing.T) {
	s := NewFromSeed([]byte("seed"))
	for _, ct := range [][]byte{nil, {}, {1, 2, 3}} {
		if _, err := s.Decrypt(ct); err == nil {
			t.Fatalf("short ciphertext %v must fail", ct)
		}
	}
}

func TestEncryptString(t *testing.T) {
	s := NewFromSeed([]byte("seed"))
	if !bytes.Equal(s.EncryptString("abc"), s.Encrypt([]byte("abc"))) {
		t.Fatal("EncryptString must agree with Encrypt")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s := NewFromSeed([]byte("quick"))
	f := func(pt []byte) bool {
		got, err := s.Decrypt(s.Encrypt(pt))
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterminismAndInjectivity(t *testing.T) {
	s := NewFromSeed([]byte("quick"))
	f := func(a, b []byte) bool {
		ca1, ca2 := s.Encrypt(a), s.Encrypt(a)
		cb := s.Encrypt(b)
		if !bytes.Equal(ca1, ca2) {
			return false
		}
		// Equal ciphertexts iff equal plaintexts.
		return bytes.Equal(ca1, cb) == bytes.Equal(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
