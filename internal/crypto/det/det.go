// Package det implements the DET (deterministic) encryption class of the
// paper's taxonomy (Fig. 1): two equal plaintexts map to the same
// ciphertext, enabling equality checks — and hence token/feature-set
// comparisons and equi-joins — over ciphertext.
//
// The instance is an SIV (synthetic IV) construction:
//
//	IV = HMAC-SHA256(K_mac, plaintext)[:16]
//	CT = AES-256-CTR(K_enc, IV, plaintext)
//	output = IV || CT
//
// The IV doubles as an authenticator: Decrypt recomputes it and rejects
// mismatches. The construction is a deterministic authenticated encryption
// scheme in the style of Rogaway–Shrimpton SIV.
package det

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/crypto/prf"
)

// KeySize is the byte size of the scheme's master key.
const KeySize = 32

// ivSize is the synthetic IV length (one AES block).
const ivSize = aes.BlockSize

// ErrDecrypt is returned when a ciphertext is malformed or fails the
// synthetic-IV integrity check.
var ErrDecrypt = errors.New("det: decryption failed")

// Scheme is a deterministic authenticated encryption scheme. It is safe
// for concurrent use. Construct with New or NewFromSeed.
type Scheme struct {
	mac   *prf.PRF
	block cipher.Block
}

// New returns a Scheme keyed with key, which must be KeySize bytes.
// Independent MAC and encryption subkeys are derived internally.
func New(key []byte) (*Scheme, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("det: key must be %d bytes, got %d", KeySize, len(key))
	}
	root := prf.New(key)
	encKey := root.Eval([]byte("det-enc-subkey"))
	block, err := aes.NewCipher(encKey[:32])
	if err != nil {
		return nil, fmt.Errorf("det: %w", err)
	}
	return &Scheme{mac: root.Derive("det-mac-subkey"), block: block}, nil
}

// NewFromSeed derives a KeySize key from an arbitrary seed and returns the
// corresponding Scheme.
func NewFromSeed(seed []byte) *Scheme {
	sum := sha256.Sum256(append([]byte("det-seed:"), seed...))
	s, err := New(sum[:])
	if err != nil {
		panic(err) // unreachable: key size correct by construction
	}
	return s
}

// Encrypt deterministically encrypts plaintext. Equal inputs yield equal
// outputs under the same key.
func (s *Scheme) Encrypt(plaintext []byte) []byte {
	iv := s.mac.Eval(plaintext)[:ivSize]
	out := make([]byte, ivSize+len(plaintext))
	copy(out, iv)
	cipher.NewCTR(s.block, iv).XORKeyStream(out[ivSize:], plaintext)
	return out
}

// Decrypt inverts Encrypt and verifies the synthetic IV, returning
// ErrDecrypt on malformed or tampered input.
func (s *Scheme) Decrypt(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < ivSize {
		return nil, ErrDecrypt
	}
	iv := ciphertext[:ivSize]
	pt := make([]byte, len(ciphertext)-ivSize)
	cipher.NewCTR(s.block, iv).XORKeyStream(pt, ciphertext[ivSize:])
	want := s.mac.Eval(pt)[:ivSize]
	if !hmac.Equal(iv, want) {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// EncryptString is a convenience wrapper returning the deterministic
// ciphertext of a string plaintext.
func (s *Scheme) EncryptString(plaintext string) []byte {
	return s.Encrypt([]byte(plaintext))
}
