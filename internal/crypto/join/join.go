// Package join implements the JOIN and JOIN-OPE usage modes of the
// paper's taxonomy (Fig. 1). JOIN is not a cipher of its own: it is DET
// (or OPE) applied with a key shared across a *join group* of columns, so
// that equality (or order) comparisons work across columns — exactly what
// an equi-join over ciphertext needs.
//
// CryptDB realises this with JOIN-ADJ, an elliptic-curve ciphertext
// adjustment that moves a column's ciphertexts onto a shared key on
// demand. We model the same observable semantics by maintaining the join
// groups explicitly (a union-find over column identifiers) and deriving
// the per-group encryption key from the group's canonical representative.
// See DESIGN.md §2 for why this substitution preserves behaviour.
package join

import (
	"fmt"
	"sort"
	"sync"
)

// Groups tracks which columns must share an encryption key because they
// are joined against each other. It is safe for concurrent use.
type Groups struct {
	mu     sync.Mutex
	parent map[string]string
	rank   map[string]int
}

// NewGroups returns an empty join-group structure.
func NewGroups() *Groups {
	return &Groups{parent: make(map[string]string), rank: make(map[string]int)}
}

// ColumnID renders the canonical column identifier used as a union-find
// element.
func ColumnID(table, column string) string {
	return table + "." + column
}

// find locates the set representative with path compression.
// Callers must hold g.mu.
func (g *Groups) find(id string) string {
	p, ok := g.parent[id]
	if !ok {
		g.parent[id] = id
		g.rank[id] = 0
		return id
	}
	if p == id {
		return id
	}
	root := g.find(p)
	g.parent[id] = root
	return root
}

// Union merges the join groups of columns a and b.
func (g *Groups) Union(aTable, aColumn, bTable, bColumn string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ra := g.find(ColumnID(aTable, aColumn))
	rb := g.find(ColumnID(bTable, bColumn))
	if ra == rb {
		return
	}
	if g.rank[ra] < g.rank[rb] {
		ra, rb = rb, ra
	}
	g.parent[rb] = ra
	if g.rank[ra] == g.rank[rb] {
		g.rank[ra]++
	}
}

// KeyLabel returns the label from which the column's constant-encryption
// key must be derived. Columns in the same join group get the same label;
// the label is the lexicographically smallest member of the group so it
// does not depend on union order.
func (g *Groups) KeyLabel(table, column string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	root := g.find(ColumnID(table, column))
	// Collect the members of root's group and pick the smallest for a
	// stable, order-independent label.
	min := root
	for id := range g.parent {
		if g.find(id) == root && id < min {
			min = id
		}
	}
	return "joingroup:" + min
}

// SameGroup reports whether two columns share a join group.
func (g *Groups) SameGroup(aTable, aColumn, bTable, bColumn string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.find(ColumnID(aTable, aColumn)) == g.find(ColumnID(bTable, bColumn))
}

// Members returns the sorted member list of the group containing the
// given column, including the column itself.
func (g *Groups) Members(table, column string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	root := g.find(ColumnID(table, column))
	var out []string
	for id := range g.parent {
		if g.find(id) == root {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// String renders all groups for debugging.
func (g *Groups) String() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	byRoot := make(map[string][]string)
	for id := range g.parent {
		r := g.find(id)
		byRoot[r] = append(byRoot[r], id)
	}
	var roots []string
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	s := ""
	for _, r := range roots {
		sort.Strings(byRoot[r])
		s += fmt.Sprintf("%v\n", byRoot[r])
	}
	return s
}
