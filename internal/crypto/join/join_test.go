package join

import (
	"reflect"
	"testing"
)

func TestColumnID(t *testing.T) {
	if got := ColumnID("t", "c"); got != "t.c" {
		t.Fatalf("ColumnID = %q", got)
	}
}

func TestFreshColumnsAreSeparate(t *testing.T) {
	g := NewGroups()
	if g.SameGroup("t1", "a", "t2", "b") {
		t.Fatal("fresh columns must not share a group")
	}
	if g.KeyLabel("t1", "a") == g.KeyLabel("t2", "b") {
		t.Fatal("fresh columns must have distinct key labels")
	}
}

func TestUnionMergesLabels(t *testing.T) {
	g := NewGroups()
	g.Union("orders", "cust_id", "customers", "id")
	if !g.SameGroup("orders", "cust_id", "customers", "id") {
		t.Fatal("union did not merge groups")
	}
	if g.KeyLabel("orders", "cust_id") != g.KeyLabel("customers", "id") {
		t.Fatal("joined columns must share a key label")
	}
}

func TestTransitivity(t *testing.T) {
	g := NewGroups()
	g.Union("a", "x", "b", "y")
	g.Union("b", "y", "c", "z")
	if !g.SameGroup("a", "x", "c", "z") {
		t.Fatal("join groups must be transitive")
	}
	la, lc := g.KeyLabel("a", "x"), g.KeyLabel("c", "z")
	if la != lc {
		t.Fatalf("labels differ across transitive group: %q vs %q", la, lc)
	}
}

func TestLabelIndependentOfUnionOrder(t *testing.T) {
	g1 := NewGroups()
	g1.Union("a", "x", "b", "y")
	g1.Union("b", "y", "c", "z")

	g2 := NewGroups()
	g2.Union("c", "z", "b", "y")
	g2.Union("b", "y", "a", "x")

	if g1.KeyLabel("b", "y") != g2.KeyLabel("b", "y") {
		t.Fatal("key label must not depend on union order")
	}
}

func TestMembers(t *testing.T) {
	g := NewGroups()
	g.Union("a", "x", "b", "y")
	g.Union("a", "x", "c", "z")
	got := g.Members("b", "y")
	want := []string{"a.x", "b.y", "c.z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	// Singleton group.
	solo := g.Members("d", "w")
	if !reflect.DeepEqual(solo, []string{"d.w"}) {
		t.Fatalf("singleton Members = %v", solo)
	}
}

func TestSelfUnionIsNoop(t *testing.T) {
	g := NewGroups()
	g.Union("a", "x", "a", "x")
	if got := g.Members("a", "x"); !reflect.DeepEqual(got, []string{"a.x"}) {
		t.Fatalf("self-union group = %v", got)
	}
}

func TestStringListsGroups(t *testing.T) {
	g := NewGroups()
	g.Union("a", "x", "b", "y")
	if g.String() == "" {
		t.Fatal("String() should render groups")
	}
}
