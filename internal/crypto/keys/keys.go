// Package keys implements the key hierarchy for encrypting SQL query
// logs and database contents. A single master key deterministically
// derives every subordinate key (HKDF-style, via the prf package):
//
//   - one DET key for relation names (EncRel in the paper),
//   - one DET key for attribute names (EncAttr),
//   - per-column keys for constants ({EncA.Const : Attribute A}), one per
//     (column, class) pair, where JOIN groups unify the labels of joined
//     columns so cross-column equality survives encryption.
//
// Centralising derivation means the entire encrypted deployment is
// reproducible from one secret plus the public schema, which is also how
// the data owner re-derives keys to decrypt mining results.
package keys

import (
	"repro/internal/crypto/join"
	"repro/internal/crypto/prf"
)

// Class labels a property-preserving encryption class for key-derivation
// purposes.
type Class string

// The encryption classes with per-column keys.
const (
	ClassPROB Class = "PROB"
	ClassDET  Class = "DET"
	ClassOPE  Class = "OPE"
	ClassHOM  Class = "HOM"
)

// Manager derives all keys from a master secret. It is safe for
// concurrent use.
type Manager struct {
	root   *prf.PRF
	groups *join.Groups
}

// NewManager returns a Manager for the given master secret.
func NewManager(master []byte) *Manager {
	return &Manager{root: prf.New(master).Derive("kit-dpe-v1"), groups: join.NewGroups()}
}

// JoinGroups exposes the join-group structure so schema setup can declare
// joinable column pairs before any constant is encrypted.
func (m *Manager) JoinGroups() *join.Groups { return m.groups }

// RelationKey returns the DET key bytes for relation names.
func (m *Manager) RelationKey() []byte {
	return m.root.Eval([]byte("relnames"))
}

// AttributeKey returns the DET key bytes for attribute names.
func (m *Manager) AttributeKey() []byte {
	return m.root.Eval([]byte("attrnames"))
}

// ColumnKey returns the key bytes for the given column and class.
// Columns in the same join group receive identical keys for the DET and
// OPE classes (the JOIN / JOIN-OPE usage modes); PROB and HOM keys are
// always column-private since they never support cross-column matching.
func (m *Manager) ColumnKey(table, column string, class Class) []byte {
	var label string
	switch class {
	case ClassDET, ClassOPE:
		label = m.groups.KeyLabel(table, column)
	default:
		label = "column:" + join.ColumnID(table, column)
	}
	return m.root.EvalParts([]byte("colkey"), []byte(label), []byte(class))
}

// HomSeed returns the deterministic seed for the deployment's Paillier
// key pair. One HOM key pair serves the whole database, as in CryptDB.
func (m *Manager) HomSeed() []byte {
	return m.root.Eval([]byte("paillier-keygen-seed"))
}
