package keys

import (
	"bytes"
	"testing"
)

func TestDeterministicDerivation(t *testing.T) {
	m1 := NewManager([]byte("master"))
	m2 := NewManager([]byte("master"))
	if !bytes.Equal(m1.RelationKey(), m2.RelationKey()) {
		t.Fatal("relation keys must be reproducible from the master key")
	}
	if !bytes.Equal(m1.ColumnKey("t", "c", ClassDET), m2.ColumnKey("t", "c", ClassDET)) {
		t.Fatal("column keys must be reproducible")
	}
	if !bytes.Equal(m1.HomSeed(), m2.HomSeed()) {
		t.Fatal("HOM seed must be reproducible")
	}
}

func TestMasterKeySeparation(t *testing.T) {
	m1 := NewManager([]byte("master-1"))
	m2 := NewManager([]byte("master-2"))
	if bytes.Equal(m1.RelationKey(), m2.RelationKey()) {
		t.Fatal("different masters must yield different keys")
	}
}

func TestKeyRolesAreSeparated(t *testing.T) {
	m := NewManager([]byte("master"))
	seen := [][]byte{m.RelationKey(), m.AttributeKey(), m.HomSeed(),
		m.ColumnKey("t", "c", ClassDET), m.ColumnKey("t", "c", ClassOPE),
		m.ColumnKey("t", "c", ClassPROB), m.ColumnKey("t", "c", ClassHOM)}
	for i := range seen {
		for j := i + 1; j < len(seen); j++ {
			if bytes.Equal(seen[i], seen[j]) {
				t.Fatalf("key roles %d and %d collide", i, j)
			}
		}
	}
}

func TestColumnSeparation(t *testing.T) {
	m := NewManager([]byte("master"))
	if bytes.Equal(m.ColumnKey("t", "a", ClassDET), m.ColumnKey("t", "b", ClassDET)) {
		t.Fatal("distinct columns must have distinct DET keys")
	}
	if bytes.Equal(m.ColumnKey("t1", "a", ClassDET), m.ColumnKey("t2", "a", ClassDET)) {
		t.Fatal("same column name in distinct tables must have distinct keys")
	}
}

func TestJoinGroupUnifiesDETAndOPEOnly(t *testing.T) {
	m := NewManager([]byte("master"))
	m.JoinGroups().Union("orders", "cust_id", "customers", "id")

	if !bytes.Equal(m.ColumnKey("orders", "cust_id", ClassDET), m.ColumnKey("customers", "id", ClassDET)) {
		t.Fatal("JOIN mode: DET keys of joined columns must match")
	}
	if !bytes.Equal(m.ColumnKey("orders", "cust_id", ClassOPE), m.ColumnKey("customers", "id", ClassOPE)) {
		t.Fatal("JOIN-OPE mode: OPE keys of joined columns must match")
	}
	if bytes.Equal(m.ColumnKey("orders", "cust_id", ClassPROB), m.ColumnKey("customers", "id", ClassPROB)) {
		t.Fatal("PROB keys must stay column-private even within a join group")
	}
	if bytes.Equal(m.ColumnKey("orders", "cust_id", ClassHOM), m.ColumnKey("customers", "id", ClassHOM)) {
		t.Fatal("HOM keys must stay column-private even within a join group")
	}
}

func TestJoinDeclarationBeforeUseChangesKeys(t *testing.T) {
	m := NewManager([]byte("master"))
	before := m.ColumnKey("a", "x", ClassDET)
	m.JoinGroups().Union("a", "x", "b", "y")
	after := m.ColumnKey("a", "x", ClassDET)
	// After joining with b.y (smaller label "a.x" still smallest) the key
	// may or may not change; what must hold is consistency with b.y.
	if !bytes.Equal(after, m.ColumnKey("b", "y", ClassDET)) {
		t.Fatal("post-union keys inconsistent across the group")
	}
	_ = before
}
