// Package ope implements the OPE (order-preserving encryption) class of
// the paper's taxonomy (Fig. 1): a deterministic encryption of integers
// such that m1 < m2 implies Enc(m1) < Enc(m2). Order comparisons — and
// hence range predicates and access-area overlap tests (Definition 5) —
// can be evaluated directly on ciphertexts.
//
// Two constructions are provided, selected via Params:
//
//   - Binary-splitting mode (default): a keyed random order-preserving
//     function from [0, 2^DomainBits) into [0, 2^(DomainBits+ExpansionBits)),
//     built by recursively splitting the domain at its midpoint and
//     choosing the corresponding range split point uniformly (with PRF
//     coins) among all positions that leave both halves feasible. This is
//     stateless, deterministic, strictly order-preserving, and runs in
//     O(DomainBits) PRF calls per operation for any 64-bit domain.
//
//   - Hypergeometric mode: the Boldyreva et al. construction [2], [13] —
//     a uniformly random order-preserving function sampled lazily by
//     recursing over the range and drawing the number of plaintexts
//     mapped below the range midpoint from the exact hypergeometric
//     distribution. Exact sequential sampling keeps it practical for
//     small domains (DomainBits+ExpansionBits <= 30); it exists to be
//     faithful to the paper's citation, not for throughput.
//
// Both constructions leak exactly what the OPE class is defined to leak:
// equality and order. Ciphertexts are fixed-width big-endian byte strings,
// so bytes.Compare on ciphertexts equals the numeric (and hence
// plaintext) order.
package ope

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/crypto/prf"
)

// Params configures an OPE scheme.
type Params struct {
	// DomainBits is the plaintext width: plaintexts lie in [0, 2^DomainBits).
	// Must be in [1, 64].
	DomainBits uint
	// ExpansionBits is the extra ciphertext width beyond DomainBits.
	// Must be >= 1. The ciphertext range is [0, 2^(DomainBits+ExpansionBits)).
	ExpansionBits uint
	// Hypergeometric selects the faithful Boldyreva construction. It
	// requires DomainBits+ExpansionBits <= 30.
	Hypergeometric bool
}

// DefaultParams returns the parameters used throughout this repository:
// full 64-bit domain, 16 bits of expansion, binary-splitting mode.
func DefaultParams() Params {
	return Params{DomainBits: 64, ExpansionBits: 16}
}

// ErrDecrypt is returned when a ciphertext is not in the image of the
// order-preserving function (malformed or wrong key).
var ErrDecrypt = errors.New("ope: invalid ciphertext")

// maxHGBits bounds range width in hypergeometric mode; beyond this the
// exact sequential sampler becomes impractically slow.
const maxHGBits = 30

// Scheme is an order-preserving encryption scheme. It is safe for
// concurrent use. Construct with New or NewFromSeed.
type Scheme struct {
	prf       *prf.PRF
	params    Params
	domainMax *big.Int // 2^DomainBits - 1
	rangeMax  *big.Int // 2^(DomainBits+ExpansionBits) - 1
	ctLen     int      // ciphertext width in bytes
}

// New returns an OPE scheme keyed with key under the given parameters.
func New(key []byte, p Params) (*Scheme, error) {
	if p.DomainBits < 1 || p.DomainBits > 64 {
		return nil, fmt.Errorf("ope: DomainBits must be in [1,64], got %d", p.DomainBits)
	}
	if p.ExpansionBits < 1 {
		return nil, fmt.Errorf("ope: ExpansionBits must be >= 1, got %d", p.ExpansionBits)
	}
	rangeBits := p.DomainBits + p.ExpansionBits
	if p.Hypergeometric && rangeBits > maxHGBits {
		return nil, fmt.Errorf("ope: hypergeometric mode requires DomainBits+ExpansionBits <= %d, got %d", maxHGBits, rangeBits)
	}
	one := big.NewInt(1)
	domainMax := new(big.Int).Lsh(one, p.DomainBits)
	domainMax.Sub(domainMax, one)
	rangeMax := new(big.Int).Lsh(one, rangeBits)
	rangeMax.Sub(rangeMax, one)
	return &Scheme{
		prf:       prf.New(key).Derive("ope"),
		params:    p,
		domainMax: domainMax,
		rangeMax:  rangeMax,
		ctLen:     int((rangeBits + 7) / 8),
	}, nil
}

// NewFromSeed derives a key from seed and returns a scheme with
// DefaultParams. It panics only on internal invariant violation.
func NewFromSeed(seed []byte) *Scheme {
	s, err := New(prf.New(seed).Eval([]byte("ope-seed")), DefaultParams())
	if err != nil {
		panic(err) // unreachable: DefaultParams is always valid
	}
	return s
}

// Params returns the scheme's parameters.
func (s *Scheme) Params() Params { return s.params }

// CiphertextLen returns the fixed byte width of ciphertexts.
func (s *Scheme) CiphertextLen() int { return s.ctLen }

// Compare compares two ciphertexts; because ciphertexts are fixed-width
// big-endian, this equals the plaintext order.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// Encrypt maps plaintext m to its fixed-width ciphertext. It returns an
// error if m is outside the configured domain.
func (s *Scheme) Encrypt(m uint64) ([]byte, error) {
	mb := new(big.Int).SetUint64(m)
	if mb.Cmp(s.domainMax) > 0 {
		return nil, fmt.Errorf("ope: plaintext %d exceeds %d-bit domain", m, s.params.DomainBits)
	}
	var c *big.Int
	if s.params.Hypergeometric {
		c = s.encryptHG(m)
	} else {
		c = s.encryptSplit(m)
	}
	out := make([]byte, s.ctLen)
	c.FillBytes(out)
	return out, nil
}

// Decrypt inverts Encrypt. It returns ErrDecrypt when c is not a valid
// ciphertext under this key.
func (s *Scheme) Decrypt(c []byte) (uint64, error) {
	if len(c) != s.ctLen {
		return 0, ErrDecrypt
	}
	cb := new(big.Int).SetBytes(c)
	if cb.Cmp(s.rangeMax) > 0 {
		return 0, ErrDecrypt
	}
	if s.params.Hypergeometric {
		return s.decryptHG(cb)
	}
	return s.decryptSplit(cb)
}

// nodeCoins returns the deterministic coin source for the recursion node
// identified by the domain interval [dlo, dhi] and range low bound rlo.
// Binding all three makes coins unique per node even across modes.
func (s *Scheme) nodeCoins(kind byte, dlo, dhi uint64, rlo, rhi *big.Int) *prf.DRBG {
	var buf [17]byte
	buf[0] = kind
	binary.BigEndian.PutUint64(buf[1:9], dlo)
	binary.BigEndian.PutUint64(buf[9:17], dhi)
	label := append(buf[:], rlo.Bytes()...)
	label = append(label, 0xFE)
	label = append(label, rhi.Bytes()...)
	return prf.NewDRBGFromPRF(s.prf, label)
}

// sampleLeaf deterministically places the single domain value dlo at a
// uniform position within [rlo, rhi].
func (s *Scheme) sampleLeaf(dlo uint64, rlo, rhi *big.Int) *big.Int {
	span := new(big.Int).Sub(rhi, rlo)
	span.Add(span, big.NewInt(1))
	coins := s.nodeCoins('L', dlo, dlo, rlo, rhi)
	return new(big.Int).Add(rlo, coins.BigIntn(span))
}

// --- binary-splitting mode ---

// encryptSplit walks the implicit balanced domain tree. At each node the
// domain [dlo,dhi] is split at its midpoint; the range split point is
// drawn uniformly among all positions leaving both halves with at least
// as many range values as domain values, which preserves the recursion
// invariant |range| >= |domain|.
func (s *Scheme) encryptSplit(m uint64) *big.Int {
	dlo, dhi := uint64(0), s.domainMax.Uint64()
	rlo, rhi := new(big.Int), new(big.Int).Set(s.rangeMax)
	for dlo < dhi {
		dmid, rmid := s.splitPoint(dlo, dhi, rlo, rhi)
		if m <= dmid {
			dhi = dmid
			rhi = rmid
		} else {
			dlo = dmid + 1
			rlo = new(big.Int).Add(rmid, big.NewInt(1))
		}
	}
	return s.sampleLeaf(dlo, rlo, rhi)
}

func (s *Scheme) decryptSplit(c *big.Int) (uint64, error) {
	dlo, dhi := uint64(0), s.domainMax.Uint64()
	rlo, rhi := new(big.Int), new(big.Int).Set(s.rangeMax)
	if c.Cmp(rlo) < 0 || c.Cmp(rhi) > 0 {
		return 0, ErrDecrypt
	}
	for dlo < dhi {
		_, rmid := s.splitPoint(dlo, dhi, rlo, rhi)
		dmid := dlo + (dhi-dlo)/2
		if c.Cmp(rmid) <= 0 {
			dhi = dmid
			rhi = rmid
		} else {
			dlo = dmid + 1
			rlo = new(big.Int).Add(rmid, big.NewInt(1))
		}
	}
	if s.sampleLeaf(dlo, rlo, rhi).Cmp(c) != 0 {
		return 0, ErrDecrypt
	}
	return dlo, nil
}

// splitPoint computes the domain midpoint dmid and the corresponding
// deterministic range split rmid for a node. The left subtree receives
// domain [dlo,dmid] and range [rlo,rmid]; feasibility requires
// rmid in [rlo+L-1, rhi-R] where L and R are the halves' domain sizes.
func (s *Scheme) splitPoint(dlo, dhi uint64, rlo, rhi *big.Int) (uint64, *big.Int) {
	dmid := dlo + (dhi-dlo)/2
	l := new(big.Int).SetUint64(dmid - dlo + 1) // left domain size
	r := new(big.Int).SetUint64(dhi - dmid)     // right domain size
	lo := new(big.Int).Add(rlo, l)
	lo.Sub(lo, big.NewInt(1)) // rlo + L - 1
	hi := new(big.Int).Sub(rhi, r)
	span := new(big.Int).Sub(hi, lo)
	span.Add(span, big.NewInt(1))
	coins := s.nodeCoins('S', dlo, dhi, rlo, rhi)
	rmid := coins.BigIntn(span)
	rmid.Add(rmid, lo)
	return dmid, rmid
}

// --- hypergeometric (Boldyreva) mode ---

// encryptHG implements the lazy-sampling recursion of Boldyreva et al.:
// recurse on the range, drawing x ~ HG(N, M, d) — the number of the M
// plaintexts mapped to the d lowest range positions — with exact
// sequential sampling.
func (s *Scheme) encryptHG(m uint64) *big.Int {
	dlo, dhi := uint64(0), s.domainMax.Uint64()
	rlo, rhi := uint64(0), s.rangeMax.Uint64()
	for {
		M := dhi - dlo + 1
		N := rhi - rlo + 1
		if M == 1 {
			return s.sampleLeaf(dlo, new(big.Int).SetUint64(rlo), new(big.Int).SetUint64(rhi))
		}
		if M == N {
			// Every range position hosts exactly one plaintext.
			return new(big.Int).SetUint64(rlo + (m - dlo))
		}
		y := rlo + (N / 2) - 1 // range gap: last position of the lower half
		d := y - rlo + 1
		x := s.sampleHG(dlo, dhi, rlo, rhi, N, M, d)
		switch {
		case x == 0:
			// No plaintext maps at or below y: everything goes right.
			rlo = y + 1
		case x == M:
			// Every plaintext maps at or below y: everything goes left.
			rhi = y
		case m <= dlo+x-1:
			// m is among the x lowest plaintexts, which occupy [rlo, y].
			dhi = dlo + x - 1
			rhi = y
		default:
			dlo = dlo + x
			rlo = y + 1
		}
	}
}

func (s *Scheme) decryptHG(c *big.Int) (uint64, error) {
	cv := c.Uint64()
	dlo, dhi := uint64(0), s.domainMax.Uint64()
	rlo, rhi := uint64(0), s.rangeMax.Uint64()
	for {
		M := dhi - dlo + 1
		N := rhi - rlo + 1
		if M == 1 {
			leaf := s.sampleLeaf(dlo, new(big.Int).SetUint64(rlo), new(big.Int).SetUint64(rhi))
			if leaf.Uint64() != cv {
				return 0, ErrDecrypt
			}
			return dlo, nil
		}
		if M == N {
			return dlo + (cv - rlo), nil
		}
		y := rlo + (N / 2) - 1
		d := y - rlo + 1
		x := s.sampleHG(dlo, dhi, rlo, rhi, N, M, d)
		if cv <= y {
			if x == 0 {
				return 0, ErrDecrypt // no plaintext maps below y
			}
			dhi = dlo + x - 1
			rhi = y
		} else {
			if x == M {
				return 0, ErrDecrypt // all plaintexts map below y
			}
			dlo = dlo + x
			rlo = y + 1
		}
	}
}

// sampleHG draws x ~ Hypergeometric(population N, successes M, draws d)
// exactly, using node-bound deterministic coins. By the symmetry
// HG(N, M, d) == HG(N, d, M) it iterates over min(M, d) sequential draws,
// each an exact integer Bernoulli trial without replacement.
func (s *Scheme) sampleHG(dlo, dhi, rlo, rhi, N, M, d uint64) uint64 {
	coins := s.nodeCoins('H', dlo, dhi, new(big.Int).SetUint64(rlo), new(big.Int).SetUint64(rhi))
	draws, successes := d, M
	if successes < draws {
		draws, successes = successes, draws
	}
	// draws is now min(M, d); successes is the marked-ball count.
	var x uint64
	for i := uint64(0); i < draws; i++ {
		if coins.Uint64n(N-i) < successes-x {
			x++
		}
	}
	return x
}
