package ope

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newSmall(t *testing.T, hg bool) *Scheme {
	t.Helper()
	s, err := New([]byte("test-key-ope"), Params{DomainBits: 8, ExpansionBits: 6, Hypergeometric: hg})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParamsValidation(t *testing.T) {
	cases := []Params{
		{DomainBits: 0, ExpansionBits: 4},
		{DomainBits: 65, ExpansionBits: 4},
		{DomainBits: 8, ExpansionBits: 0},
		{DomainBits: 30, ExpansionBits: 10, Hypergeometric: true}, // 40 > 30
	}
	for _, p := range cases {
		if _, err := New([]byte("k"), p); err == nil {
			t.Errorf("New accepted invalid params %+v", p)
		}
	}
	if _, err := New([]byte("k"), DefaultParams()); err != nil {
		t.Fatalf("DefaultParams rejected: %v", err)
	}
}

// exhaustive order test over the full 8-bit domain, both modes.
func TestOrderPreservationExhaustive(t *testing.T) {
	for _, hg := range []bool{false, true} {
		s := newSmall(t, hg)
		var prev []byte
		for m := uint64(0); m < 256; m++ {
			c, err := s.Encrypt(m)
			if err != nil {
				t.Fatalf("hg=%v Encrypt(%d): %v", hg, m, err)
			}
			if len(c) != s.CiphertextLen() {
				t.Fatalf("hg=%v ciphertext width %d, want %d", hg, len(c), s.CiphertextLen())
			}
			if prev != nil && Compare(prev, c) >= 0 {
				t.Fatalf("hg=%v order violated at m=%d: Enc(%d) >= Enc(%d)", hg, m, m-1, m)
			}
			prev = c
		}
	}
}

func TestRoundTripExhaustive(t *testing.T) {
	for _, hg := range []bool{false, true} {
		s := newSmall(t, hg)
		for m := uint64(0); m < 256; m++ {
			c, err := s.Encrypt(m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Decrypt(c)
			if err != nil {
				t.Fatalf("hg=%v Decrypt(Enc(%d)): %v", hg, m, err)
			}
			if got != m {
				t.Fatalf("hg=%v round trip: got %d, want %d", hg, got, m)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	for _, hg := range []bool{false, true} {
		s := newSmall(t, hg)
		a, _ := s.Encrypt(42)
		b, _ := s.Encrypt(42)
		if !bytes.Equal(a, b) {
			t.Fatalf("hg=%v OPE must be deterministic", hg)
		}
	}
}

func TestKeySeparation(t *testing.T) {
	p := Params{DomainBits: 16, ExpansionBits: 8}
	s1, _ := New([]byte("key-1"), p)
	s2, _ := New([]byte("key-2"), p)
	diff := 0
	for m := uint64(0); m < 64; m++ {
		c1, _ := s1.Encrypt(m)
		c2, _ := s2.Encrypt(m)
		if !bytes.Equal(c1, c2) {
			diff++
		}
	}
	if diff < 32 {
		t.Fatalf("keys barely separate: only %d/64 ciphertexts differ", diff)
	}
}

func TestDomainBoundsRejected(t *testing.T) {
	s, _ := New([]byte("k"), Params{DomainBits: 8, ExpansionBits: 4})
	if _, err := s.Encrypt(256); err == nil {
		t.Fatal("Encrypt must reject plaintext outside the domain")
	}
	if _, err := s.Encrypt(255); err != nil {
		t.Fatalf("Encrypt rejected in-domain plaintext: %v", err)
	}
}

func TestDecryptRejectsInvalid(t *testing.T) {
	s := newSmall(t, false)
	// Wrong width.
	if _, err := s.Decrypt([]byte{1, 2, 3, 4, 5, 6, 7}); err == nil {
		t.Fatal("Decrypt must reject wrong-width ciphertexts")
	}
	// Scan a window of range values; those not in the image must fail,
	// those in the image must round-trip. With 64x expansion, most of the
	// window is not in the image.
	invalid := 0
	for v := uint64(0); v < 512; v++ {
		c := make([]byte, s.CiphertextLen())
		c[len(c)-2] = byte(v >> 8)
		c[len(c)-1] = byte(v)
		if m, err := s.Decrypt(c); err != nil {
			invalid++
		} else if rc, _ := s.Encrypt(m); !bytes.Equal(rc, c) {
			t.Fatalf("Decrypt(%d) = %d but Encrypt(%d) != input", v, m, m)
		}
	}
	if invalid == 0 {
		t.Fatal("expected some range values outside the OPF image")
	}
}

func TestFullDomainDefaultParams(t *testing.T) {
	s := NewFromSeed([]byte("full-domain"))
	values := []uint64{0, 1, 2, 1000, 1 << 20, 1 << 40, 1<<63 - 1, 1 << 63, ^uint64(0) - 1, ^uint64(0)}
	var cts [][]byte
	for _, m := range values {
		c, err := s.Encrypt(m)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := s.Decrypt(c)
		if err != nil || got != m {
			t.Fatalf("round trip %d: got %d, err %v", m, got, err)
		}
		cts = append(cts, c)
	}
	for i := 1; i < len(cts); i++ {
		if Compare(cts[i-1], cts[i]) >= 0 {
			t.Fatalf("order violated between %d and %d", values[i-1], values[i])
		}
	}
}

func TestQuickOrderAndRoundTrip(t *testing.T) {
	s := NewFromSeed([]byte("quick-ope"))
	f := func(a, b uint64) bool {
		ca, err1 := s.Encrypt(a)
		cb, err2 := s.Encrypt(b)
		if err1 != nil || err2 != nil {
			return false
		}
		cmp := Compare(ca, cb)
		switch {
		case a < b && cmp >= 0:
			return false
		case a == b && cmp != 0:
			return false
		case a > b && cmp <= 0:
			return false
		}
		da, err := s.Decrypt(ca)
		return err == nil && da == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeInt64OrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := EncodeInt64(a), EncodeInt64(b)
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default:
			return ea == eb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if DecodeInt64(EncodeInt64(-5)) != -5 || DecodeInt64(EncodeInt64(7)) != 7 {
		t.Fatal("DecodeInt64 must invert EncodeInt64")
	}
}

func TestEncodeFloat64OrderPreserving(t *testing.T) {
	vals := []float64{-1e300, -42.5, -1, -0.001, 0, 0.001, 1, 42.5, 1e300}
	for i := 1; i < len(vals); i++ {
		if EncodeFloat64(vals[i-1]) >= EncodeFloat64(vals[i]) {
			t.Fatalf("float encoding order violated between %v and %v", vals[i-1], vals[i])
		}
	}
	for _, v := range vals {
		if DecodeFloat64(EncodeFloat64(v)) != v {
			t.Fatalf("DecodeFloat64 round trip failed for %v", v)
		}
	}
}

func TestHypergeometricMatchesSupport(t *testing.T) {
	// In hypergeometric mode with a tiny domain, every plaintext must
	// decrypt correctly and strict order must hold — this exercises the
	// x==0 / x==M branches in the recursion.
	s, err := New([]byte("hg"), Params{DomainBits: 4, ExpansionBits: 8, Hypergeometric: true})
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	for m := uint64(0); m < 16; m++ {
		c, err := s.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && Compare(prev, c) >= 0 {
			t.Fatalf("order violated at %d", m)
		}
		got, err := s.Decrypt(c)
		if err != nil || got != m {
			t.Fatalf("round trip %d: got %d err %v", m, got, err)
		}
		prev = c
	}
}
