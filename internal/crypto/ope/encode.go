package ope

import "math"

// EncodeInt64 maps a signed integer to an unsigned integer such that the
// signed order of inputs equals the unsigned order of outputs. It is the
// standard sign-bit flip.
func EncodeInt64(v int64) uint64 {
	return uint64(v) ^ (1 << 63)
}

// DecodeInt64 inverts EncodeInt64.
func DecodeInt64(u uint64) int64 {
	return int64(u ^ (1 << 63))
}

// EncodeFloat64 maps a float64 to a uint64 such that the numeric order of
// (non-NaN) inputs equals the unsigned order of outputs: positive floats
// get their sign bit set; negative floats are bitwise complemented.
// -0.0 and +0.0 encode differently (adjacent), which is harmless for
// range semantics.
func EncodeFloat64(f float64) uint64 {
	bits := math.Float64bits(f)
	if bits>>63 == 1 {
		return ^bits
	}
	return bits | (1 << 63)
}

// DecodeFloat64 inverts EncodeFloat64.
func DecodeFloat64(u uint64) float64 {
	if u>>63 == 1 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}
