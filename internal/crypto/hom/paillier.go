// Package hom implements the HOM (additively homomorphic) encryption
// class of the paper's taxonomy (Fig. 1) as the Paillier cryptosystem
// [11]: a probabilistic public-key scheme where the product of two
// ciphertexts decrypts to the sum of their plaintexts, so SUM and AVG
// aggregates can be computed server-side over encrypted columns.
//
// The implementation is the textbook scheme with the standard g = n+1
// simplification, over math/big:
//
//	KeyGen: n = p·q, λ = lcm(p−1, q−1), μ = L(g^λ mod n²)^(−1) mod n
//	Enc(m): c = (1+n)^m · r^n mod n²  (r uniform in Z_n^*)
//	Dec(c): m = L(c^λ mod n²) · μ mod n, where L(u) = (u−1)/n
//	Add:    c1 ⊕ c2 = c1·c2 mod n²
//	MulConst: c ⊗ k = c^k mod n²
//
// Signed plaintexts are supported by centering: values in (−n/2, n/2]
// are encoded mod n and decoded back to the symmetric interval, so sums
// of negative numbers round-trip.
package hom

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// DefaultBits is the default modulus size. 1024 is small by modern
// deployment standards but ample for a reproduction study; use 2048+ in
// production.
const DefaultBits = 1024

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// ErrDecrypt is returned for ciphertexts outside Z_{n²} or not invertible.
var ErrDecrypt = errors.New("hom: invalid ciphertext")

// ErrMessageRange is returned when a plaintext exceeds the signed message
// space (−n/2, n/2].
var ErrMessageRange = errors.New("hom: plaintext outside message space")

// PublicKey supports encryption and the homomorphic operations.
type PublicKey struct {
	N  *big.Int // modulus n = p·q
	N2 *big.Int // n²
}

// PrivateKey additionally supports decryption.
type PrivateKey struct {
	PublicKey
	lambda *big.Int // lcm(p−1, q−1)
	mu     *big.Int // L(g^λ mod n²)^(−1) mod n
	crt    *crtKey  // CRT-split decryption state; nil on NoCRT copies
}

// GenerateKey creates a Paillier key pair with an n of the given bit
// size, drawing primes from random (use crypto/rand.Reader in
// production; a deterministic reader yields reproducible keys for tests).
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 64 {
		return nil, fmt.Errorf("hom: modulus size %d too small (min 64)", bits)
	}
	if random == nil {
		random = rand.Reader
	}
	for {
		p, err := genPrime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("hom: prime generation: %w", err)
		}
		q, err := genPrime(random, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("hom: prime generation: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), gcd)
		n2 := new(big.Int).Mul(n, n)
		// With g = n+1: g^λ mod n² = 1 + λ·n mod n², so
		// L(g^λ) = λ mod n and μ = λ^(−1) mod n.
		mu := new(big.Int).ModInverse(new(big.Int).Mod(lambda, n), n)
		if mu == nil {
			continue // λ not invertible mod n (requires gcd(λ, n) ≠ 1; retry)
		}
		sk := &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2},
			lambda:    lambda,
			mu:        mu,
		}
		sk.crt = newCRTKey(p, q, n)
		if sk.crt == nil {
			continue // a CRT inverse did not exist; retry with fresh primes
		}
		return sk, nil
	}
}

// genPrime draws uniform odd candidates of exactly the given bit length
// from random and returns the first probable prime. Unlike
// crypto/rand.Prime it is strictly deterministic in the bytes consumed
// from random, which lets tests and key hierarchies reproduce keys from a
// DRBG stream.
func genPrime(random io.Reader, bits int) (*big.Int, error) {
	bytes := (bits + 7) / 8
	buf := make([]byte, bytes)
	topMask := byte(0xff >> (uint(bytes*8 - bits)))
	topBit := byte(1 << (uint(bits-1) % 8))
	p := new(big.Int)
	for {
		if _, err := io.ReadFull(random, buf); err != nil {
			return nil, err
		}
		buf[0] &= topMask
		buf[0] |= topBit     // exact bit length
		buf[len(buf)-1] |= 1 // odd
		p.SetBytes(buf)
		if p.ProbablyPrime(20) {
			return new(big.Int).Set(p), nil
		}
	}
}

// MustGenerateKey is GenerateKey with crypto/rand and panic-on-error,
// for examples and tests.
func MustGenerateKey(bits int) *PrivateKey {
	k, err := GenerateKey(rand.Reader, bits)
	if err != nil {
		panic(err)
	}
	return k
}

// MessageSpaceHalf returns n/2, the magnitude bound for signed plaintexts.
func (pk *PublicKey) MessageSpaceHalf() *big.Int {
	return new(big.Int).Div(pk.N, two)
}

// encode maps a signed plaintext into Z_n; it returns ErrMessageRange if
// |m| > n/2.
func (pk *PublicKey) encode(m *big.Int) (*big.Int, error) {
	half := pk.MessageSpaceHalf()
	if new(big.Int).Abs(m).Cmp(half) > 0 {
		return nil, ErrMessageRange
	}
	return new(big.Int).Mod(m, pk.N), nil
}

// Encrypt encrypts the signed plaintext m with fresh randomness from
// random (nil means crypto/rand.Reader).
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (*big.Int, error) {
	if random == nil {
		random = rand.Reader
	}
	enc, err := pk.encode(m)
	if err != nil {
		return nil, err
	}
	r, err := pk.sampleUnit(random)
	if err != nil {
		return nil, err
	}
	// c = (1+n)^m · r^n = (1 + m·n) · r^n mod n².
	c := new(big.Int).Mul(enc, pk.N)
	c.Add(c, one)
	c.Mod(c, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c.Mul(c, rn)
	c.Mod(c, pk.N2)
	return c, nil
}

// EncryptInt64 is a convenience wrapper for int64 plaintexts.
func (pk *PublicKey) EncryptInt64(random io.Reader, m int64) (*big.Int, error) {
	return pk.Encrypt(random, big.NewInt(m))
}

// sampleUnit draws r uniform in Z_n^*.
func (pk *PublicKey) sampleUnit(random io.Reader) (*big.Int, error) {
	for {
		r, err := rand.Int(random, pk.N)
		if err != nil {
			return nil, fmt.Errorf("hom: randomness: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Add returns the ciphertext of m1+m2 given ciphertexts of m1 and m2.
func (pk *PublicKey) Add(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, pk.N2)
}

// Sum folds Add over the given ciphertexts; it returns an encryption of 0
// (deterministically, with r=1) when the list is empty.
func (pk *PublicKey) Sum(cs ...*big.Int) *big.Int {
	acc := big.NewInt(1) // (1+n)^0 · 1^n = 1: a valid encryption of 0
	for _, c := range cs {
		acc.Mul(acc, c)
		acc.Mod(acc, pk.N2)
	}
	return acc
}

// MulConst returns the ciphertext of k·m given a ciphertext of m.
// Negative k is supported via modular inversion.
func (pk *PublicKey) MulConst(c *big.Int, k *big.Int) *big.Int {
	if k.Sign() < 0 {
		inv := new(big.Int).ModInverse(c, pk.N2)
		return new(big.Int).Exp(inv, new(big.Int).Neg(k), pk.N2)
	}
	return new(big.Int).Exp(c, k, pk.N2)
}

// Rerandomize multiplies in a fresh encryption of zero, changing the
// ciphertext without changing the plaintext.
func (pk *PublicKey) Rerandomize(random io.Reader, c *big.Int) (*big.Int, error) {
	zero, err := pk.Encrypt(random, new(big.Int))
	if err != nil {
		return nil, err
	}
	return pk.Add(c, zero), nil
}

// Decrypt returns the signed plaintext of c, decoded into (−n/2, n/2].
// Keys from GenerateKey decrypt via the CRT split (see batch.go), about
// 4x faster than the textbook single exponentiation; NoCRT copies fall
// back to the textbook path. Both return identical plaintexts.
func (sk *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if c == nil || c.Sign() <= 0 || c.Cmp(sk.N2) >= 0 {
		return nil, ErrDecrypt
	}
	if new(big.Int).GCD(nil, nil, c, sk.N2).Cmp(one) != 0 {
		return nil, ErrDecrypt
	}
	if sk.crt != nil {
		return sk.decode(sk.crt.decrypt(c)), nil
	}
	u := new(big.Int).Exp(c, sk.lambda, sk.N2)
	// L(u) = (u−1)/n
	u.Sub(u, one)
	u.Div(u, sk.N)
	m := u.Mul(u, sk.mu)
	m.Mod(m, sk.N)
	return sk.decode(m), nil
}

// decode maps a residue in Z_n to its signed representative in
// (−n/2, n/2].
func (sk *PrivateKey) decode(m *big.Int) *big.Int {
	if m.Cmp(sk.MessageSpaceHalf()) > 0 {
		m.Sub(m, sk.N)
	}
	return m
}

// DecryptInt64 decrypts and narrows to int64, failing if out of range.
func (sk *PrivateKey) DecryptInt64(c *big.Int) (int64, error) {
	m, err := sk.Decrypt(c)
	if err != nil {
		return 0, err
	}
	if !m.IsInt64() {
		return 0, fmt.Errorf("hom: plaintext %v overflows int64", m)
	}
	return m.Int64(), nil
}
