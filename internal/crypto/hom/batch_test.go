package hom

import (
	"math/big"
	"testing"

	"repro/internal/crypto/prf"
)

// TestCRTDecryptMatchesTextbook pins the CRT split against the
// reference path: every ciphertext must decrypt to the identical
// plaintext through both.
func TestCRTDecryptMatchesTextbook(t *testing.T) {
	sk := key(t)
	if sk.crt == nil {
		t.Fatal("GenerateKey did not populate the CRT state")
	}
	ref := sk.NoCRT()
	if ref.crt != nil {
		t.Fatal("NoCRT copy still has CRT state")
	}
	drbg := prf.NewDRBG([]byte("paillier-test"), []byte("crt"))
	for _, m := range []int64{0, 1, -1, 42, -9999, 1 << 40, -(1 << 40)} {
		c, err := sk.EncryptInt64(drbg, m)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := sk.Decrypt(c)
		if err != nil {
			t.Fatalf("CRT decrypt of %d: %v", m, err)
		}
		slow, err := ref.Decrypt(c)
		if err != nil {
			t.Fatalf("textbook decrypt of %d: %v", m, err)
		}
		if fast.Cmp(slow) != 0 || fast.Int64() != m {
			t.Fatalf("m=%d: CRT %v, textbook %v", m, fast, slow)
		}
	}
	// Invalid ciphertexts fail identically on both paths.
	for _, c := range []*big.Int{nil, big.NewInt(0), new(big.Int).Set(sk.N2)} {
		if _, err := sk.Decrypt(c); err == nil {
			t.Error("CRT path accepted an invalid ciphertext")
		}
		if _, err := ref.Decrypt(c); err == nil {
			t.Error("textbook path accepted an invalid ciphertext")
		}
	}
}

// TestDecryptBatch exercises the batch helper, including its indexed
// error.
func TestDecryptBatch(t *testing.T) {
	sk := key(t)
	drbg := prf.NewDRBG([]byte("paillier-test"), []byte("batch"))
	want := []int64{3, -7, 0, 123456}
	cs := make([]*big.Int, len(want))
	for i, m := range want {
		c, err := sk.EncryptInt64(drbg, m)
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}
	ms, err := sk.DecryptBatch(cs)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if m.Int64() != want[i] {
			t.Errorf("batch[%d] = %v, want %d", i, m, want[i])
		}
	}
	cs[2] = big.NewInt(0)
	if _, err := sk.DecryptBatch(cs); err == nil {
		t.Error("batch with an invalid ciphertext succeeded")
	}
}

// TestEncryptorParity verifies fixed-base encryption produces
// ciphertexts indistinguishable in behavior from the textbook
// encryptor: correct decryption, additive homomorphism with textbook
// ciphertexts, and fresh randomness per call.
func TestEncryptorParity(t *testing.T) {
	sk := key(t)
	drbg := prf.NewDRBG([]byte("paillier-test"), []byte("encryptor"))
	enc, err := sk.NewEncryptor(drbg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int64{0, 1, -1, 77, -31337} {
		c, err := enc.EncryptInt64(drbg, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.DecryptInt64(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Fatalf("fixed-base ciphertext of %d decrypted to %d", m, got)
		}
	}
	c1, err := enc.EncryptInt64(drbg, 40)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sk.EncryptInt64(drbg, 2) // textbook ciphertext
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sk.DecryptInt64(sk.Add(c1, c2)); err != nil || got != 42 {
		t.Fatalf("mixed-encryptor sum = %d (%v), want 42", got, err)
	}
	a, err := enc.EncryptInt64(drbg, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := enc.EncryptInt64(drbg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) == 0 {
		t.Error("two fixed-base encryptions of the same plaintext are identical")
	}
	r, err := enc.Rerandomize(drbg, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cmp(a) == 0 {
		t.Error("Rerandomize returned the input ciphertext")
	}
	if got, err := sk.DecryptInt64(r); err != nil || got != 5 {
		t.Fatalf("rerandomized ciphertext = %d (%v), want 5", got, err)
	}
	if _, err := enc.Encrypt(drbg, new(big.Int).Add(sk.N, one)); err == nil {
		t.Error("fixed-base Encrypt accepted an out-of-range plaintext")
	}
}

func BenchmarkDecryptCRT(b *testing.B) {
	sk := benchKey(b)
	c, err := sk.EncryptInt64(nil, 1234567)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptTextbook(b *testing.B) {
	sk := benchKey(b).NoCRT()
	c, err := sk.EncryptInt64(nil, 1234567)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncryptFixedBase(b *testing.B) {
	sk := benchKey(b)
	enc, err := sk.NewEncryptor(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncryptInt64(nil, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncryptTextbook(b *testing.B) {
	sk := benchKey(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.EncryptInt64(nil, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func benchKey(b *testing.B) *PrivateKey {
	b.Helper()
	drbg := prf.NewDRBG([]byte("paillier-bench"), []byte("keygen"))
	sk, err := GenerateKey(drbg, DefaultBits)
	if err != nil {
		b.Fatal(err)
	}
	return sk
}
