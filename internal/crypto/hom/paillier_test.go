package hom

import (
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/crypto/prf"
)

// testKeyBits keeps unit tests fast; correctness is size-independent.
const testKeyBits = 512

var (
	testKeyOnce sync.Once
	testKey     *PrivateKey
)

// key returns a process-wide test key: keygen is the expensive part and
// the scheme's correctness properties do not depend on the specific key.
func key(t *testing.T) *PrivateKey {
	t.Helper()
	testKeyOnce.Do(func() {
		// Deterministic primes for reproducible tests.
		drbg := prf.NewDRBG([]byte("paillier-test"), []byte("keygen"))
		k, err := GenerateKey(drbg, testKeyBits)
		if err != nil {
			panic(err)
		}
		testKey = k
	})
	return testKey
}

func TestKeyGenValidation(t *testing.T) {
	if _, err := GenerateKey(nil, 32); err == nil {
		t.Fatal("GenerateKey must reject tiny moduli")
	}
}

func TestRoundTrip(t *testing.T) {
	sk := key(t)
	for _, m := range []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40)} {
		c, err := sk.EncryptInt64(nil, m)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := sk.DecryptInt64(c)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip: got %d, want %d", got, m)
		}
	}
}

func TestProbabilistic(t *testing.T) {
	// HOM is a subclass of PROB (Fig. 1): equal plaintexts must yield
	// different ciphertexts.
	sk := key(t)
	c1, _ := sk.EncryptInt64(nil, 7)
	c2, _ := sk.EncryptInt64(nil, 7)
	if c1.Cmp(c2) == 0 {
		t.Fatal("Paillier produced identical ciphertexts for equal plaintexts")
	}
	m1, _ := sk.Decrypt(c1)
	m2, _ := sk.Decrypt(c2)
	if m1.Cmp(m2) != 0 {
		t.Fatal("distinct ciphertexts of 7 decrypted differently")
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	sk := key(t)
	cases := [][2]int64{{1, 2}, {0, 0}, {-5, 3}, {100000, 234567}, {-7, -9}}
	for _, c := range cases {
		ca, _ := sk.EncryptInt64(nil, c[0])
		cb, _ := sk.EncryptInt64(nil, c[1])
		sum, err := sk.DecryptInt64(sk.Add(ca, cb))
		if err != nil {
			t.Fatal(err)
		}
		if sum != c[0]+c[1] {
			t.Fatalf("Dec(Enc(%d)⊕Enc(%d)) = %d, want %d", c[0], c[1], sum, c[0]+c[1])
		}
	}
}

func TestSum(t *testing.T) {
	sk := key(t)
	vals := []int64{5, -3, 12, 0, 99, -50}
	var want int64
	var cts []*big.Int
	for _, v := range vals {
		c, _ := sk.EncryptInt64(nil, v)
		cts = append(cts, c)
		want += v
	}
	got, err := sk.DecryptInt64(sk.Sum(cts...))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
	// Empty sum is an encryption of zero.
	zero, err := sk.DecryptInt64(sk.Sum())
	if err != nil || zero != 0 {
		t.Fatalf("empty Sum decrypted to %d (err %v), want 0", zero, err)
	}
}

func TestMulConst(t *testing.T) {
	sk := key(t)
	for _, tc := range []struct{ m, k int64 }{{7, 3}, {7, 0}, {-4, 5}, {9, -2}, {-6, -3}} {
		c, _ := sk.EncryptInt64(nil, tc.m)
		got, err := sk.DecryptInt64(sk.MulConst(c, big.NewInt(tc.k)))
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.m*tc.k {
			t.Fatalf("Dec(Enc(%d)⊗%d) = %d, want %d", tc.m, tc.k, got, tc.m*tc.k)
		}
	}
}

func TestRerandomize(t *testing.T) {
	sk := key(t)
	c, _ := sk.EncryptInt64(nil, 123)
	c2, err := sk.Rerandomize(nil, c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cmp(c2) == 0 {
		t.Fatal("Rerandomize did not change the ciphertext")
	}
	m, _ := sk.DecryptInt64(c2)
	if m != 123 {
		t.Fatalf("Rerandomize changed plaintext to %d", m)
	}
}

func TestMessageRange(t *testing.T) {
	sk := key(t)
	tooBig := new(big.Int).Add(sk.MessageSpaceHalf(), big.NewInt(1))
	if _, err := sk.Encrypt(nil, tooBig); err != ErrMessageRange {
		t.Fatalf("Encrypt(n/2+1) err = %v, want ErrMessageRange", err)
	}
	neg := new(big.Int).Neg(tooBig)
	if _, err := sk.Encrypt(nil, neg); err != ErrMessageRange {
		t.Fatalf("Encrypt(-(n/2+1)) err = %v, want ErrMessageRange", err)
	}
}

func TestDecryptRejectsInvalid(t *testing.T) {
	sk := key(t)
	for _, c := range []*big.Int{nil, big.NewInt(0), big.NewInt(-5), new(big.Int).Set(sk.N2)} {
		if _, err := sk.Decrypt(c); err == nil {
			t.Fatalf("Decrypt(%v) must fail", c)
		}
	}
}

func TestQuickHomomorphism(t *testing.T) {
	sk := key(t)
	f := func(a, b int32) bool {
		ca, err1 := sk.EncryptInt64(nil, int64(a))
		cb, err2 := sk.EncryptInt64(nil, int64(b))
		if err1 != nil || err2 != nil {
			return false
		}
		sum, err := sk.DecryptInt64(sk.Add(ca, cb))
		return err == nil && sum == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicKeygenFromDRBG(t *testing.T) {
	k1, err := GenerateKey(prf.NewDRBG([]byte("s"), []byte("l")), 256)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := GenerateKey(prf.NewDRBG([]byte("s"), []byte("l")), 256)
	if err != nil {
		t.Fatal(err)
	}
	if k1.N.Cmp(k2.N) != 0 {
		t.Fatal("keygen from identical DRBG streams must be reproducible")
	}
}
