// Package prob implements the PROB (probabilistic) encryption class of the
// paper's taxonomy (Fig. 1): two encryptions of equal plaintexts are, with
// overwhelming probability, different ciphertexts.
//
// The instance is AES-256-GCM with a random nonce, i.e. an IND-CPA-secure
// authenticated scheme, standing in for the "randomized AES" instance the
// paper cites [12]. Ciphertext layout: nonce || GCM(plaintext).
package prob

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// KeySize is the AES-256 key size in bytes.
const KeySize = 32

// ErrDecrypt is returned when a ciphertext fails authentication or is
// structurally invalid.
var ErrDecrypt = errors.New("prob: decryption failed")

// Scheme is a probabilistic authenticated encryption scheme.
// It is safe for concurrent use. The zero value is unusable; construct
// with New or NewFromSeed.
type Scheme struct {
	aead cipher.AEAD
	rand io.Reader
}

// New returns a Scheme keyed with key, which must be KeySize bytes.
// Nonces are drawn from crypto/rand.
func New(key []byte) (*Scheme, error) {
	return newWithRand(key, rand.Reader)
}

// NewFromSeed derives a KeySize key from an arbitrary seed by hashing and
// returns the corresponding Scheme. Intended for tests and deterministic
// key hierarchies; the nonce source remains crypto/rand, so encryption is
// still probabilistic.
func NewFromSeed(seed []byte) *Scheme {
	sum := sha256.Sum256(append([]byte("prob-seed:"), seed...))
	s, err := New(sum[:])
	if err != nil {
		// Unreachable: the key size is correct by construction.
		panic(err)
	}
	return s
}

// NewWithRand returns a Scheme using r as nonce source. Only for tests
// that need reproducible ciphertexts; using a deterministic r forfeits
// the PROB property.
func NewWithRand(key []byte, r io.Reader) (*Scheme, error) {
	return newWithRand(key, r)
}

func newWithRand(key []byte, r io.Reader) (*Scheme, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("prob: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("prob: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("prob: %w", err)
	}
	return &Scheme{aead: aead, rand: r}, nil
}

// Encrypt returns nonce || GCM ciphertext for plaintext.
func (s *Scheme) Encrypt(plaintext []byte) ([]byte, error) {
	nonce := make([]byte, s.aead.NonceSize())
	if _, err := io.ReadFull(s.rand, nonce); err != nil {
		return nil, fmt.Errorf("prob: nonce: %w", err)
	}
	return s.aead.Seal(nonce, nonce, plaintext, nil), nil
}

// Decrypt inverts Encrypt, returning ErrDecrypt on any malformed or
// tampered ciphertext.
func (s *Scheme) Decrypt(ciphertext []byte) ([]byte, error) {
	ns := s.aead.NonceSize()
	if len(ciphertext) < ns {
		return nil, ErrDecrypt
	}
	pt, err := s.aead.Open(nil, ciphertext[:ns], ciphertext[ns:], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}
