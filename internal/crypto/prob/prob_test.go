package prob

import (
	"bytes"
	"testing"
	"testing/quick"
)

func mustScheme(t *testing.T) *Scheme {
	t.Helper()
	return NewFromSeed([]byte("test-seed"))
}

func TestRoundTrip(t *testing.T) {
	s := mustScheme(t)
	for _, pt := range [][]byte{nil, {}, []byte("a"), []byte("hello world"), bytes.Repeat([]byte{0xAB}, 1000)} {
		ct, err := s.Encrypt(pt)
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		got, err := s.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("round trip: got %q, want %q", got, pt)
		}
	}
}

func TestProbabilistic(t *testing.T) {
	// The defining property of the PROB class: equal plaintexts yield
	// different ciphertexts (with overwhelming probability).
	s := mustScheme(t)
	pt := []byte("SELECT * FROM r")
	c1, _ := s.Encrypt(pt)
	c2, _ := s.Encrypt(pt)
	if bytes.Equal(c1, c2) {
		t.Fatal("PROB scheme produced identical ciphertexts for equal plaintexts")
	}
}

func TestKeySizeValidation(t *testing.T) {
	if _, err := New(make([]byte, 16)); err == nil {
		t.Fatal("New must reject short keys")
	}
	if _, err := New(make([]byte, KeySize)); err != nil {
		t.Fatalf("New rejected a valid key: %v", err)
	}
}

func TestTamperDetection(t *testing.T) {
	s := mustScheme(t)
	ct, _ := s.Encrypt([]byte("payload"))
	ct[len(ct)-1] ^= 0x01
	if _, err := s.Decrypt(ct); err == nil {
		t.Fatal("tampered ciphertext must fail decryption")
	}
}

func TestShortCiphertext(t *testing.T) {
	s := mustScheme(t)
	for _, ct := range [][]byte{nil, {}, {1, 2, 3}} {
		if _, err := s.Decrypt(ct); err == nil {
			t.Fatalf("short ciphertext %v must fail", ct)
		}
	}
}

func TestCrossKeyRejection(t *testing.T) {
	s1 := NewFromSeed([]byte("seed-1"))
	s2 := NewFromSeed([]byte("seed-2"))
	ct, _ := s1.Encrypt([]byte("secret"))
	if _, err := s2.Decrypt(ct); err == nil {
		t.Fatal("ciphertext must not decrypt under a different key")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s := mustScheme(t)
	f := func(pt []byte) bool {
		ct, err := s.Encrypt(pt)
		if err != nil {
			return false
		}
		got, err := s.Decrypt(ct)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProbabilistic(t *testing.T) {
	s := mustScheme(t)
	f := func(pt []byte) bool {
		c1, err1 := s.Encrypt(pt)
		c2, err2 := s.Encrypt(pt)
		return err1 == nil && err2 == nil && !bytes.Equal(c1, c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
