package sqlparse

// Property test: randomly generated ASTs survive print → parse → print
// as a fixed point. This is the invariant the encrypted log depends on —
// the shared artifact is the printed string, and the provider re-parses
// it.

import (
	"reflect"
	"testing"

	"repro/internal/crypto/prf"
	"repro/internal/value"
)

// astGen builds random statements from a deterministic stream.
type astGen struct {
	d *prf.DRBG
}

func (g *astGen) ident() string {
	names := []string{"a", "b", "c", "ra", "mag_r", "objid", "t1"}
	return names[g.d.Uint64n(uint64(len(names)))]
}

func (g *astGen) literal() Expr {
	switch g.d.Uint64n(4) {
	case 0:
		return &Literal{Value: value.Int(g.d.Int64Range(-1000, 1000))}
	case 1:
		return &Literal{Value: value.Float(float64(g.d.Int64Range(-100, 100)) + 0.5)}
	case 2:
		return &Literal{Value: value.Str("s" + g.ident())}
	default:
		return &Literal{Value: value.Bytes([]byte{byte(g.d.Uint64()), byte(g.d.Uint64())})}
	}
}

func (g *astGen) column() *ColumnRef {
	c := &ColumnRef{Name: g.ident()}
	if g.d.Uint64n(4) == 0 {
		c.Table = "q" + g.ident()
	}
	return c
}

// predicate generates a boolean expression of bounded depth.
func (g *astGen) predicate(depth int) Expr {
	if depth <= 0 {
		return g.atom()
	}
	switch g.d.Uint64n(5) {
	case 0:
		return &BinaryExpr{Op: "AND", Left: g.predicate(depth - 1), Right: g.predicate(depth - 1)}
	case 1:
		return &BinaryExpr{Op: "OR", Left: g.predicate(depth - 1), Right: g.predicate(depth - 1)}
	case 2:
		return &UnaryExpr{Op: "NOT", Expr: g.predicate(depth - 1)}
	default:
		return g.atom()
	}
}

func (g *astGen) atom() Expr {
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	switch g.d.Uint64n(6) {
	case 0:
		in := &InExpr{Expr: g.column(), Not: g.d.Uint64n(2) == 0}
		for i := uint64(0); i <= g.d.Uint64n(3); i++ {
			in.List = append(in.List, g.literal())
		}
		return in
	case 1:
		return &BetweenExpr{Expr: g.column(), Not: g.d.Uint64n(2) == 0, Lo: g.literal(), Hi: g.literal()}
	case 2:
		return &LikeExpr{Expr: g.column(), Not: g.d.Uint64n(2) == 0, Pattern: &Literal{Value: value.Str("p%_x")}}
	case 3:
		return &IsNullExpr{Expr: g.column(), Not: g.d.Uint64n(2) == 0}
	default:
		return &BinaryExpr{Op: ops[g.d.Uint64n(uint64(len(ops)))], Left: g.column(), Right: g.literal()}
	}
}

func (g *astGen) stmt() *SelectStmt {
	s := &SelectStmt{Distinct: g.d.Uint64n(4) == 0}
	if g.d.Uint64n(6) == 0 {
		s.Select = append(s.Select, SelectItem{Star: true})
	} else {
		for i := uint64(0); i <= g.d.Uint64n(3); i++ {
			item := SelectItem{Expr: g.column()}
			if g.d.Uint64n(3) == 0 {
				aggs := []string{"COUNT", "SUM", "AVG", "MIN", "MAX"}
				item.Expr = &FuncCall{Name: aggs[g.d.Uint64n(5)], Arg: g.column()}
			}
			if g.d.Uint64n(4) == 0 {
				item.Alias = "al" + g.ident()
			}
			s.Select = append(s.Select, item)
		}
	}
	s.From = append(s.From, TableRef{Name: "tbl" + g.ident()})
	if g.d.Uint64n(3) == 0 {
		s.From[0].Alias = "x" + g.ident()
	}
	if g.d.Uint64n(3) == 0 {
		kind := JoinInner
		if g.d.Uint64n(2) == 0 {
			kind = JoinLeft
		}
		s.Joins = append(s.Joins, JoinClause{
			Kind:  kind,
			Table: TableRef{Name: "jt" + g.ident()},
			On:    &BinaryExpr{Op: "=", Left: g.column(), Right: g.column()},
		})
	}
	if g.d.Uint64n(2) == 0 {
		s.Where = g.predicate(2)
	}
	if g.d.Uint64n(3) == 0 {
		s.GroupBy = append(s.GroupBy, g.column())
		if g.d.Uint64n(2) == 0 {
			s.Having = &BinaryExpr{Op: ">", Left: &FuncCall{Name: "COUNT", Star: true}, Right: &Literal{Value: value.Int(2)}}
		}
	}
	if g.d.Uint64n(3) == 0 {
		s.OrderBy = append(s.OrderBy, OrderItem{Column: g.column(), Desc: g.d.Uint64n(2) == 0})
	}
	if g.d.Uint64n(4) == 0 {
		n := g.d.Int64Range(0, 100)
		s.Limit = &n
	}
	return s
}

func TestRandomASTPrintParseFixedPoint(t *testing.T) {
	g := &astGen{d: prf.NewDRBG([]byte("ast-roundtrip"), []byte("gen"))}
	for i := 0; i < 500; i++ {
		s1 := g.stmt()
		sql1 := s1.SQL()
		s2, err := Parse(sql1)
		if err != nil {
			t.Fatalf("iteration %d: generated SQL does not parse: %v\n%s", i, err, sql1)
		}
		sql2 := s2.SQL()
		if sql1 != sql2 {
			t.Fatalf("iteration %d: print not a fixed point:\n%s\n%s", i, sql1, sql2)
		}
		s3, err := Parse(sql2)
		if err != nil {
			t.Fatalf("iteration %d: second parse failed: %v", i, err)
		}
		if !reflect.DeepEqual(s2, s3) {
			t.Fatalf("iteration %d: ASTs differ between parses of the same string", i)
		}
	}
}

func TestRandomASTCloneEquality(t *testing.T) {
	g := &astGen{d: prf.NewDRBG([]byte("ast-clone"), []byte("gen"))}
	for i := 0; i < 300; i++ {
		s := g.stmt()
		c := s.Clone()
		if !reflect.DeepEqual(s, c) {
			t.Fatalf("iteration %d: clone differs from original", i)
		}
		if s.SQL() != c.SQL() {
			t.Fatalf("iteration %d: clone renders differently", i)
		}
	}
}
