package sqlparse

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// Lexer turns a query string into tokens. It supports the SQL subset
// documented in the package comment: case-insensitive keywords,
// identifiers ([A-Za-z_][A-Za-z0-9_]*), integer and decimal literals,
// single-quoted strings with ” escaping, and the operator set used by
// the parser.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Tokenize lexes the whole input, excluding the trailing EOF token.
// It returns an error on the first invalid token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		tok := lx.Next()
		switch tok.Kind {
		case TokEOF:
			return out, nil
		case TokInvalid:
			return nil, fmt.Errorf("sqlparse: invalid token %q at offset %d", tok.Text, tok.Pos)
		}
		out = append(out, tok)
	}
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) }

// Next returns the next token, or an EOF/invalid token.
func (l *Lexer) Next() Token {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}
	}
	start := l.pos
	c := l.src[l.pos]

	switch {
	case (c == 'X' || c == 'x') && l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'':
		return l.lexBlob(start)

	case isLetter(c):
		for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if IsKeyword(upper) {
			return Token{Kind: TokKeyword, Text: upper, Pos: start}
		}
		return Token{Kind: TokIdent, Text: word, Pos: start}

	case isDigit(c):
		return l.lexNumber(start)

	case c == '\'':
		return l.lexString(start)

	case c == '.':
		// Either a lone dot (qualified name) or the start of a decimal
		// like ".5".
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.lexNumber(start)
		}
		l.pos++
		return Token{Kind: TokOp, Text: ".", Pos: start}

	default:
		return l.lexOperator(start)
	}
}

func (l *Lexer) lexNumber(start int) Token {
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !isFloat:
			isFloat = true
			l.pos++
		case (c == 'e' || c == 'E') && l.pos+1 < len(l.src) &&
			(isDigit(l.src[l.pos+1]) || ((l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') && l.pos+2 < len(l.src) && isDigit(l.src[l.pos+2]))):
			isFloat = true
			l.pos++ // consume e/E
			if l.src[l.pos] == '+' || l.src[l.pos] == '-' {
				l.pos++
			}
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			return Token{Kind: TokFloat, Text: l.src[start:l.pos], Pos: start}
		default:
			goto done
		}
	}
done:
	kind := TokInt
	if isFloat {
		kind = TokFloat
	}
	return Token{Kind: kind, Text: l.src[start:l.pos], Pos: start}
}

func (l *Lexer) lexString(start int) Token {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start}
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{Kind: TokInvalid, Text: l.src[start:], Pos: start}
}

// lexBlob scans X'<hex>' and stores the decoded bytes in Text.
func (l *Lexer) lexBlob(start int) Token {
	l.pos += 2 // X'
	hexStart := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != '\'' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokInvalid, Text: l.src[start:], Pos: start}
	}
	hexStr := l.src[hexStart:l.pos]
	l.pos++ // closing quote
	raw, err := hex.DecodeString(hexStr)
	if err != nil {
		return Token{Kind: TokInvalid, Text: l.src[start:l.pos], Pos: start}
	}
	return Token{Kind: TokBlob, Text: string(raw), Pos: start}
}

func (l *Lexer) lexOperator(start int) Token {
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		if two == "!=" {
			two = "<>" // normalize
		}
		return Token{Kind: TokOp, Text: two, Pos: start}
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', ';', '%':
		l.pos++
		return Token{Kind: TokOp, Text: string(c), Pos: start}
	}
	l.pos++
	return Token{Kind: TokInvalid, Text: string(c), Pos: start}
}
