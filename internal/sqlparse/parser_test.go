package sqlparse

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/value"
)

func TestParsePaperExample(t *testing.T) {
	// The query from Example 4 of the paper.
	s, err := Parse("SELECT A1 FROM R WHERE A2 > 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Select) != 1 || s.Select[0].Star {
		t.Fatalf("select list: %+v", s.Select)
	}
	col, ok := s.Select[0].Expr.(*ColumnRef)
	if !ok || col.Name != "A1" {
		t.Fatalf("select expr: %#v", s.Select[0].Expr)
	}
	if len(s.From) != 1 || s.From[0].Name != "R" {
		t.Fatalf("from: %+v", s.From)
	}
	cmp, ok := s.Where.(*BinaryExpr)
	if !ok || cmp.Op != ">" {
		t.Fatalf("where: %#v", s.Where)
	}
	lit, ok := cmp.Right.(*Literal)
	if !ok || lit.Value.AsInt() != 5 {
		t.Fatalf("where rhs: %#v", cmp.Right)
	}
}

func TestParseStar(t *testing.T) {
	s := MustParse("SELECT * FROM r")
	if !s.Select[0].Star {
		t.Fatal("star not recognized")
	}
}

func TestParseDistinct(t *testing.T) {
	if !MustParse("SELECT DISTINCT a FROM r").Distinct {
		t.Fatal("DISTINCT not recognized")
	}
}

func TestParseAggregates(t *testing.T) {
	s := MustParse("SELECT COUNT(*), SUM(x), AVG(y), MIN(z), MAX(w) FROM r")
	if len(s.Select) != 5 {
		t.Fatalf("select count = %d", len(s.Select))
	}
	c := s.Select[0].Expr.(*FuncCall)
	if c.Name != "COUNT" || !c.Star {
		t.Fatalf("COUNT(*): %#v", c)
	}
	sum := s.Select[1].Expr.(*FuncCall)
	if sum.Name != "SUM" || sum.Star || sum.Arg.(*ColumnRef).Name != "x" {
		t.Fatalf("SUM(x): %#v", sum)
	}
}

func TestStarOnlyForCount(t *testing.T) {
	if _, err := Parse("SELECT SUM(*) FROM r"); err == nil {
		t.Fatal("SUM(*) must be rejected")
	}
}

func TestParsePrecedence(t *testing.T) {
	s := MustParse("SELECT a FROM r WHERE x = 1 OR y = 2 AND z = 3")
	or, ok := s.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top op should be OR: %#v", s.Where)
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("AND must bind tighter: %#v", or.Right)
	}
}

func TestParseParens(t *testing.T) {
	s := MustParse("SELECT a FROM r WHERE (x = 1 OR y = 2) AND z = 3")
	and := s.Where.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("top op should be AND: %#v", s.Where)
	}
	if or := and.Left.(*BinaryExpr); or.Op != "OR" {
		t.Fatalf("parenthesized OR lost: %#v", and.Left)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	s := MustParse("SELECT a FROM r WHERE x + 2 * 3 = 7")
	eq := s.Where.(*BinaryExpr)
	add := eq.Left.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("left of = should be +: %#v", eq.Left)
	}
	if mul := add.Right.(*BinaryExpr); mul.Op != "*" {
		t.Fatalf("* must bind tighter than +: %#v", add.Right)
	}
}

func TestParseIn(t *testing.T) {
	s := MustParse("SELECT a FROM r WHERE x IN (1, 2, 3)")
	in := s.Where.(*InExpr)
	if in.Not || len(in.List) != 3 {
		t.Fatalf("in: %#v", in)
	}
	s = MustParse("SELECT a FROM r WHERE x NOT IN ('u', 'v')")
	in = s.Where.(*InExpr)
	if !in.Not || len(in.List) != 2 {
		t.Fatalf("not in: %#v", in)
	}
}

func TestParseBetween(t *testing.T) {
	s := MustParse("SELECT a FROM r WHERE x BETWEEN 1 AND 10 AND y = 2")
	and := s.Where.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("top: %#v", s.Where)
	}
	bt := and.Left.(*BetweenExpr)
	if bt.Lo.(*Literal).Value.AsInt() != 1 || bt.Hi.(*Literal).Value.AsInt() != 10 {
		t.Fatalf("between bounds: %#v", bt)
	}
}

func TestParseLikeIsNull(t *testing.T) {
	s := MustParse("SELECT a FROM r WHERE name LIKE 'ab%' AND x IS NOT NULL")
	and := s.Where.(*BinaryExpr)
	like := and.Left.(*LikeExpr)
	if like.Pattern.(*Literal).Value.AsString() != "ab%" {
		t.Fatalf("like: %#v", like)
	}
	isn := and.Right.(*IsNullExpr)
	if !isn.Not {
		t.Fatalf("is not null: %#v", isn)
	}
}

func TestParseJoins(t *testing.T) {
	s := MustParse("SELECT a FROM r JOIN s ON r.id = s.rid LEFT JOIN q ON s.id = q.sid WHERE a > 0")
	if len(s.Joins) != 2 {
		t.Fatalf("joins: %d", len(s.Joins))
	}
	if s.Joins[0].Kind != JoinInner || s.Joins[1].Kind != JoinLeft {
		t.Fatalf("join kinds: %v %v", s.Joins[0].Kind, s.Joins[1].Kind)
	}
	on := s.Joins[0].On.(*BinaryExpr)
	l := on.Left.(*ColumnRef)
	if l.Table != "r" || l.Name != "id" {
		t.Fatalf("qualified ref: %#v", l)
	}
}

func TestParseCommaJoin(t *testing.T) {
	s := MustParse("SELECT a FROM r, s WHERE r.id = s.rid")
	if len(s.From) != 2 {
		t.Fatalf("from: %+v", s.From)
	}
}

func TestParseAliases(t *testing.T) {
	s := MustParse("SELECT t.a AS col FROM r AS t")
	if s.From[0].Alias != "t" || s.From[0].EffectiveName() != "t" {
		t.Fatalf("table alias: %+v", s.From[0])
	}
	if s.Select[0].Alias != "col" {
		t.Fatalf("select alias: %+v", s.Select[0])
	}
	// Implicit alias without AS.
	s = MustParse("SELECT x FROM r t")
	if s.From[0].Alias != "t" {
		t.Fatalf("implicit alias: %+v", s.From[0])
	}
}

func TestParseGroupHavingOrderLimit(t *testing.T) {
	s := MustParse("SELECT a, COUNT(*) FROM r GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC, b LIMIT 10")
	if len(s.GroupBy) != 1 || s.GroupBy[0].Name != "a" {
		t.Fatalf("group by: %+v", s.GroupBy)
	}
	if s.Having == nil {
		t.Fatal("having missing")
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("order by: %+v", s.OrderBy)
	}
	if s.Limit == nil || *s.Limit != 10 {
		t.Fatalf("limit: %v", s.Limit)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	s := MustParse("SELECT a FROM r WHERE x > -5 AND y < -2.5")
	and := s.Where.(*BinaryExpr)
	gt := and.Left.(*BinaryExpr)
	if gt.Right.(*Literal).Value.AsInt() != -5 {
		t.Fatalf("negative int folding: %#v", gt.Right)
	}
	lt := and.Right.(*BinaryExpr)
	if lt.Right.(*Literal).Value.AsFloat() != -2.5 {
		t.Fatalf("negative float folding: %#v", lt.Right)
	}
}

func TestParseNullLiteral(t *testing.T) {
	s := MustParse("SELECT a FROM r WHERE x = NULL")
	eq := s.Where.(*BinaryExpr)
	if !eq.Right.(*Literal).Value.IsNull() {
		t.Fatal("NULL literal not parsed")
	}
}

func TestParseNot(t *testing.T) {
	s := MustParse("SELECT a FROM r WHERE NOT x = 1")
	not := s.Where.(*UnaryExpr)
	if not.Op != "NOT" {
		t.Fatalf("not: %#v", s.Where)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE r SET a = 1",
		"SELECT FROM r",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM r WHERE",
		"SELECT a FROM r WHERE x >",
		"SELECT a FROM r GROUP a",
		"SELECT a FROM r LIMIT x",
		"SELECT a FROM r LIMIT -1",
		"SELECT a FROM r extra garbage",
		"SELECT a FROM r WHERE x IN ()",
		"SELECT a FROM r WHERE x BETWEEN 1",
		"SELECT a FROM r WHERE x NOT 5",
		"SELECT a FROM r JOIN s",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT a FROM r;"); err != nil {
		t.Fatalf("trailing semicolon: %v", err)
	}
}

func TestTablesHelper(t *testing.T) {
	s := MustParse("SELECT a FROM r, s JOIN q ON s.x = q.y")
	var names []string
	for _, tr := range s.Tables() {
		names = append(names, tr.Name)
	}
	if !reflect.DeepEqual(names, []string{"r", "s", "q"}) {
		t.Fatalf("tables = %v", names)
	}
}

func TestWalkStmtVisitsEverything(t *testing.T) {
	s := MustParse("SELECT SUM(a) FROM r JOIN s ON r.i = s.j WHERE b IN (1,2) AND c BETWEEN 3 AND 4 GROUP BY d HAVING COUNT(*) > 1 ORDER BY e")
	var lits, cols int
	WalkStmt(s, func(e Expr) bool {
		switch e.(type) {
		case *Literal:
			lits++
		case *ColumnRef:
			cols++
		}
		return true
	})
	if lits != 5 { // 1,2,3,4 and HAVING's 1
		t.Fatalf("literals visited = %d, want 5", lits)
	}
	// a, r.i, s.j, b, c, d, e
	if cols != 7 {
		t.Fatalf("columns visited = %d, want 7", cols)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := MustParse("SELECT a FROM r WHERE x = 1 AND y IN (2, 3) ORDER BY a LIMIT 5")
	c := s.Clone()
	if s.SQL() != c.SQL() {
		t.Fatal("clone must render identically")
	}
	// Mutate the clone; the original must not change.
	c.Where.(*BinaryExpr).Left.(*BinaryExpr).Right = &Literal{Value: value.Int(99)}
	*c.Limit = 7
	c.Select[0].Alias = "zz"
	if strings.Contains(s.SQL(), "99") || *s.Limit != 5 || s.Select[0].Alias != "" {
		t.Fatal("mutating clone affected original")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on bad input")
		}
	}()
	MustParse("not sql")
}
