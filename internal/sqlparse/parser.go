package sqlparse

import (
	"fmt"
	"strconv"

	"repro/internal/value"
)

// Parse parses one SELECT statement, optionally terminated by ';'.
func Parse(src string) (*SelectStmt, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";") // optional trailing semicolon
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlparse: trailing input at %v", p.peek())
	}
	return stmt, nil
}

// MustParse is Parse panicking on error, for tests and generators whose
// inputs are known-valid.
func MustParse(src string) *SelectStmt {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return Token{Kind: TokEOF}
}

func (p *parser) next() Token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().Kind == TokEOF }

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqlparse: expected %s, got %v", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.Kind == TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("sqlparse: expected %q, got %v", op, p.peek())
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	stmt.Distinct = p.acceptKeyword("DISTINCT")

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Select = append(stmt.Select, item)
		if !p.acceptOp(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = append(stmt.From, tr)
	for {
		switch {
		case p.acceptOp(","):
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, tr)
			continue
		case p.peekJoin():
			j, err := p.parseJoin()
			if err != nil {
				return nil, err
			}
			stmt.Joins = append(stmt.Joins, j)
			continue
		}
		break
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Column: col}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.Kind != TokInt {
			return nil, fmt.Errorf("sqlparse: LIMIT expects an integer, got %v", t)
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlparse: invalid LIMIT %q", t.Text)
		}
		stmt.Limit = &n
	}
	return stmt, nil
}

func (p *parser) peekJoin() bool {
	t := p.peek()
	return t.Kind == TokKeyword && (t.Text == "JOIN" || t.Text == "INNER" || t.Text == "LEFT")
}

func (p *parser) parseJoin() (JoinClause, error) {
	kind := JoinInner
	if p.acceptKeyword("LEFT") {
		kind = JoinLeft
	} else {
		p.acceptKeyword("INNER")
	}
	if err := p.expectKeyword("JOIN"); err != nil {
		return JoinClause{}, err
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return JoinClause{}, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return JoinClause{}, err
	}
	on, err := p.parseExpr()
	if err != nil {
		return JoinClause{}, err
	}
	return JoinClause{Kind: kind, Table: tr, On: on}, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.next()
		if t.Kind != TokIdent {
			return SelectItem{}, fmt.Errorf("sqlparse: AS expects an identifier, got %v", t)
		}
		item.Alias = t.Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return TableRef{}, fmt.Errorf("sqlparse: expected table name, got %v", t)
	}
	tr := TableRef{Name: t.Text}
	if p.acceptKeyword("AS") {
		a := p.next()
		if a.Kind != TokIdent {
			return TableRef{}, fmt.Errorf("sqlparse: AS expects an identifier, got %v", a)
		}
		tr.Alias = a.Text
	} else if p.peek().Kind == TokIdent {
		tr.Alias = p.next().Text
	}
	return tr, nil
}

func (p *parser) parseColumnRef() (*ColumnRef, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return nil, fmt.Errorf("sqlparse: expected column name, got %v", t)
	}
	col := &ColumnRef{Name: t.Text}
	if p.acceptOp(".") {
		n := p.next()
		if n.Kind != TokIdent {
			return nil, fmt.Errorf("sqlparse: expected column after %q., got %v", t.Text, n)
		}
		col.Table = t.Text
		col.Name = n.Text
	}
	return col, nil
}

// Expression grammar, loosest to tightest:
//
//	expr    := orExpr
//	orExpr  := andExpr { OR andExpr }
//	andExpr := notExpr { AND notExpr }
//	notExpr := NOT notExpr | predicate
//	predicate := addExpr [ compOp addExpr
//	           | [NOT] IN (expr, ...)
//	           | [NOT] BETWEEN addExpr AND addExpr
//	           | [NOT] LIKE addExpr
//	           | IS [NOT] NULL ]
//	addExpr := mulExpr { (+|-) mulExpr }
//	mulExpr := unary { (*|/|%) unary }
//	unary   := - unary | primary
//	primary := literal | funcCall | columnRef | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: inner}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// Optional negation of IN/BETWEEN/LIKE.
	not := false
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "NOT" {
		// Look ahead for IN/BETWEEN/LIKE; otherwise NOT belongs elsewhere.
		if p.pos+1 < len(p.toks) {
			n := p.toks[p.pos+1]
			if n.Kind == TokKeyword && (n.Text == "IN" || n.Text == "BETWEEN" || n.Text == "LIKE") {
				p.pos++
				not = true
			}
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		in := &InExpr{Expr: left, Not: not}
		for {
			item, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, item)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return in, nil

	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, Not: not, Lo: lo, Hi: hi}, nil

	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{Expr: left, Not: not, Pattern: pat}, nil

	case p.acceptKeyword("IS"):
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Expr: left, Not: isNot}, nil
	}
	if not {
		return nil, fmt.Errorf("sqlparse: dangling NOT before %v", p.peek())
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.acceptOp(op) {
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "+", Left: left, Right: right}
		case p.acceptOp("-"):
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "-", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("*"):
			op = "*"
		case p.acceptOp("/"):
			op = "/"
		case p.acceptOp("%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation into numeric literals for canonical output.
		if lit, ok := inner.(*Literal); ok {
			switch lit.Value.Kind() {
			case value.KindInt:
				return &Literal{Value: value.Int(-lit.Value.AsInt())}, nil
			case value.KindFloat:
				return &Literal{Value: value.Float(-lit.Value.AsFloat())}, nil
			}
		}
		return &UnaryExpr{Op: "-", Expr: inner}, nil
	}
	return p.parsePrimary()
}

var aggregates = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: bad integer %q: %v", t.Text, err)
		}
		return &Literal{Value: value.Int(n)}, nil

	case TokFloat:
		p.pos++
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: bad float %q: %v", t.Text, err)
		}
		return &Literal{Value: value.Float(f)}, nil

	case TokString:
		p.pos++
		return &Literal{Value: value.Str(t.Text)}, nil

	case TokBlob:
		p.pos++
		return &Literal{Value: value.Bytes([]byte(t.Text))}, nil

	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return &Literal{Value: value.Null()}, nil
		case "TRUE":
			p.pos++
			return &Literal{Value: value.Int(1)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Value: value.Int(0)}, nil
		}
		if aggregates[t.Text] {
			p.pos++
			return p.parseFuncCall(t.Text)
		}
		return nil, fmt.Errorf("sqlparse: unexpected keyword %v in expression", t)

	case TokIdent:
		return p.parseColumnRef()

	case TokOp:
		if t.Text == "(" {
			p.pos++
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, fmt.Errorf("sqlparse: unexpected token %v", t)
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if p.acceptOp("*") {
		if name != "COUNT" {
			return nil, fmt.Errorf("sqlparse: %s(*) is not valid", name)
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &FuncCall{Name: name, Star: true}, nil
	}
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &FuncCall{Name: name, Arg: arg}, nil
}
