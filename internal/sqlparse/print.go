package sqlparse

import (
	"strconv"
	"strings"
)

// SQL renders the statement in canonical form: upper-case keywords,
// single spaces, parenthesized nested boolean expressions, normalized
// literals. The output re-parses to an equal AST.
func (s *SelectStmt) SQL() string {
	var sb strings.Builder
	s.writeSQL(&sb)
	return sb.String()
}

func (s *SelectStmt) writeSQL(sb *strings.Builder) {
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, item := range s.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		if item.Star {
			sb.WriteString("*")
			continue
		}
		item.Expr.writeSQL(sb)
		if item.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(item.Alias)
		}
	}
	sb.WriteString(" FROM ")
	for i, tr := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		writeTableRef(sb, tr)
	}
	for _, j := range s.Joins {
		sb.WriteString(" ")
		sb.WriteString(j.Kind.String())
		sb.WriteString(" ")
		writeTableRef(sb, j.Table)
		sb.WriteString(" ON ")
		j.On.writeSQL(sb)
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		s.Where.writeSQL(sb)
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			g.writeSQL(sb)
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		s.Having.writeSQL(sb)
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			o.Column.writeSQL(sb)
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.FormatInt(*s.Limit, 10))
	}
}

func writeTableRef(sb *strings.Builder, tr TableRef) {
	sb.WriteString(tr.Name)
	if tr.Alias != "" {
		sb.WriteString(" AS ")
		sb.WriteString(tr.Alias)
	}
}

func (c *ColumnRef) writeSQL(sb *strings.Builder) {
	if c.Table != "" {
		sb.WriteString(c.Table)
		sb.WriteString(".")
	}
	sb.WriteString(c.Name)
}

func (l *Literal) writeSQL(sb *strings.Builder) {
	sb.WriteString(l.Value.String())
}

// precedence assigns binding strength for parenthesization decisions.
func precedence(op string) int {
	switch op {
	case "OR":
		return 1
	case "AND":
		return 2
	case "=", "<>", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/", "%":
		return 5
	default:
		return 6
	}
}

func (b *BinaryExpr) writeSQL(sb *strings.Builder) {
	writeOperand(sb, b.Left, precedence(b.Op), false)
	sb.WriteString(" ")
	sb.WriteString(b.Op)
	sb.WriteString(" ")
	writeOperand(sb, b.Right, precedence(b.Op), true)
}

// writeOperand parenthesizes child when its top-level operator binds
// looser than the parent, or equally on the right side (left-assoc).
func writeOperand(sb *strings.Builder, child Expr, parentPrec int, isRight bool) {
	var childPrec = 6
	switch n := child.(type) {
	case *BinaryExpr:
		childPrec = precedence(n.Op)
	case *UnaryExpr:
		if n.Op == "NOT" {
			childPrec = 2 // binds like AND operand
		}
	case *InExpr, *BetweenExpr, *LikeExpr, *IsNullExpr:
		childPrec = 3
	}
	need := childPrec < parentPrec || (childPrec == parentPrec && isRight && childPrec < 6)
	if need {
		sb.WriteString("(")
		child.writeSQL(sb)
		sb.WriteString(")")
		return
	}
	child.writeSQL(sb)
}

func (u *UnaryExpr) writeSQL(sb *strings.Builder) {
	if u.Op == "NOT" {
		sb.WriteString("NOT ")
		// NOT binds tighter than AND/OR; parenthesize any binary child
		// that is looser than a comparison.
		if b, ok := u.Expr.(*BinaryExpr); ok && precedence(b.Op) <= 2 {
			sb.WriteString("(")
			u.Expr.writeSQL(sb)
			sb.WriteString(")")
			return
		}
		u.Expr.writeSQL(sb)
		return
	}
	sb.WriteString("-")
	u.Expr.writeSQL(sb)
}

func (f *FuncCall) writeSQL(sb *strings.Builder) {
	sb.WriteString(f.Name)
	sb.WriteString("(")
	if f.Star {
		sb.WriteString("*")
	} else {
		f.Arg.writeSQL(sb)
	}
	sb.WriteString(")")
}

func (i *InExpr) writeSQL(sb *strings.Builder) {
	i.Expr.writeSQL(sb)
	if i.Not {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	for n, item := range i.List {
		if n > 0 {
			sb.WriteString(", ")
		}
		item.writeSQL(sb)
	}
	sb.WriteString(")")
}

func (b *BetweenExpr) writeSQL(sb *strings.Builder) {
	b.Expr.writeSQL(sb)
	if b.Not {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" BETWEEN ")
	b.Lo.writeSQL(sb)
	sb.WriteString(" AND ")
	b.Hi.writeSQL(sb)
}

func (l *LikeExpr) writeSQL(sb *strings.Builder) {
	l.Expr.writeSQL(sb)
	if l.Not {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" LIKE ")
	l.Pattern.writeSQL(sb)
}

func (i *IsNullExpr) writeSQL(sb *strings.Builder) {
	i.Expr.writeSQL(sb)
	sb.WriteString(" IS ")
	if i.Not {
		sb.WriteString("NOT ")
	}
	sb.WriteString("NULL")
}
