// Package sqlparse implements lexing, parsing, and printing for the SQL
// query subset that the paper's case study (Section IV) exercises:
//
//	SELECT [DISTINCT] select-list
//	FROM table [AS alias] { , table | [INNER|LEFT] JOIN table ON a = b }
//	[WHERE boolean-expression]
//	[GROUP BY columns] [HAVING boolean-expression]
//	[ORDER BY columns [ASC|DESC]] [LIMIT n]
//
// with comparison operators (=, <>, <, <=, >, >=), AND/OR/NOT, IN,
// BETWEEN, LIKE, IS [NOT] NULL, the aggregates COUNT/SUM/AVG/MIN/MAX,
// and integer, decimal, and string literals. The printer emits a
// canonical form that re-parses to an equal AST, which is what the
// encrypted query log stores.
package sqlparse

import (
	"strings"

	"repro/internal/value"
)

// Node is implemented by every AST node.
type Node interface {
	// writeSQL appends the node's canonical SQL rendering.
	writeSQL(sb *strings.Builder)
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// SelectStmt is the root of a parsed query.
type SelectStmt struct {
	Distinct bool
	Select   []SelectItem
	From     []TableRef
	Joins    []JoinClause
	Where    Expr // nil when absent
	GroupBy  []*ColumnRef
	Having   Expr // nil when absent
	OrderBy  []OrderItem
	Limit    *int64 // nil when absent
}

// SelectItem is one entry of the select list.
type SelectItem struct {
	Star  bool   // SELECT *
	Expr  Expr   // nil when Star
	Alias string // optional AS alias
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// EffectiveName returns the alias if present, else the table name.
func (t TableRef) EffectiveName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinKind distinguishes join types.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
)

func (k JoinKind) String() string {
	if k == JoinLeft {
		return "LEFT JOIN"
	}
	return "JOIN"
}

// JoinClause is an explicit JOIN ... ON ... attached after the first
// FROM table.
type JoinClause struct {
	Kind  JoinKind
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Column *ColumnRef
	Desc   bool
}

// --- expressions ---

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

// Literal wraps a constant value.
type Literal struct {
	Value value.Value
}

// BinaryExpr applies a binary operator. Op is one of
// = <> < <= > >= + - * / % AND OR.
type BinaryExpr struct {
	Op    string
	Left  Expr
	Right Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op   string // "NOT" or "-"
	Expr Expr
}

// FuncCall is an aggregate invocation. Star marks COUNT(*).
type FuncCall struct {
	Name string // upper-cased: COUNT, SUM, AVG, MIN, MAX
	Star bool
	Arg  Expr // nil when Star
}

// InExpr is `expr [NOT] IN (v1, v2, ...)`.
type InExpr struct {
	Expr Expr
	Not  bool
	List []Expr
}

// BetweenExpr is `expr [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	Expr Expr
	Not  bool
	Lo   Expr
	Hi   Expr
}

// LikeExpr is `expr [NOT] LIKE pattern`.
type LikeExpr struct {
	Expr    Expr
	Not     bool
	Pattern Expr
}

// IsNullExpr is `expr IS [NOT] NULL`.
type IsNullExpr struct {
	Expr Expr
	Not  bool
}

func (*ColumnRef) exprNode()   {}
func (*Literal) exprNode()     {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*FuncCall) exprNode()    {}
func (*InExpr) exprNode()      {}
func (*BetweenExpr) exprNode() {}
func (*LikeExpr) exprNode()    {}
func (*IsNullExpr) exprNode()  {}

// Walk performs a depth-first pre-order traversal of the expression tree,
// invoking fn on every expression node. fn returning false prunes the
// subtree.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *BinaryExpr:
		Walk(n.Left, fn)
		Walk(n.Right, fn)
	case *UnaryExpr:
		Walk(n.Expr, fn)
	case *FuncCall:
		Walk(n.Arg, fn)
	case *InExpr:
		Walk(n.Expr, fn)
		for _, item := range n.List {
			Walk(item, fn)
		}
	case *BetweenExpr:
		Walk(n.Expr, fn)
		Walk(n.Lo, fn)
		Walk(n.Hi, fn)
	case *LikeExpr:
		Walk(n.Expr, fn)
		Walk(n.Pattern, fn)
	case *IsNullExpr:
		Walk(n.Expr, fn)
	}
}

// WalkStmt traverses every expression in the statement: select list,
// join conditions, WHERE, GROUP BY, HAVING, ORDER BY.
func WalkStmt(s *SelectStmt, fn func(Expr) bool) {
	for _, item := range s.Select {
		Walk(item.Expr, fn)
	}
	for _, j := range s.Joins {
		Walk(j.On, fn)
	}
	Walk(s.Where, fn)
	for _, g := range s.GroupBy {
		Walk(g, fn)
	}
	Walk(s.Having, fn)
	for _, o := range s.OrderBy {
		Walk(o.Column, fn)
	}
}

// Tables returns all table references (FROM plus JOINs) in order.
func (s *SelectStmt) Tables() []TableRef {
	out := append([]TableRef(nil), s.From...)
	for _, j := range s.Joins {
		out = append(out, j.Table)
	}
	return out
}

// Clone returns a deep copy of the statement; rewriters mutate the copy.
func (s *SelectStmt) Clone() *SelectStmt {
	if s == nil {
		return nil
	}
	out := &SelectStmt{
		Distinct: s.Distinct,
		From:     append([]TableRef(nil), s.From...),
	}
	for _, item := range s.Select {
		out.Select = append(out.Select, SelectItem{Star: item.Star, Expr: CloneExpr(item.Expr), Alias: item.Alias})
	}
	for _, j := range s.Joins {
		out.Joins = append(out.Joins, JoinClause{Kind: j.Kind, Table: j.Table, On: CloneExpr(j.On)})
	}
	out.Where = CloneExpr(s.Where)
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, CloneExpr(g).(*ColumnRef))
	}
	out.Having = CloneExpr(s.Having)
	for _, o := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Column: CloneExpr(o.Column).(*ColumnRef), Desc: o.Desc})
	}
	if s.Limit != nil {
		l := *s.Limit
		out.Limit = &l
	}
	return out
}

// CloneExpr returns a deep copy of an expression tree (nil-safe).
func CloneExpr(e Expr) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *ColumnRef:
		c := *n
		return &c
	case *Literal:
		c := *n
		return &c
	case *BinaryExpr:
		return &BinaryExpr{Op: n.Op, Left: CloneExpr(n.Left), Right: CloneExpr(n.Right)}
	case *UnaryExpr:
		return &UnaryExpr{Op: n.Op, Expr: CloneExpr(n.Expr)}
	case *FuncCall:
		return &FuncCall{Name: n.Name, Star: n.Star, Arg: CloneExpr(n.Arg)}
	case *InExpr:
		out := &InExpr{Expr: CloneExpr(n.Expr), Not: n.Not}
		for _, item := range n.List {
			out.List = append(out.List, CloneExpr(item))
		}
		return out
	case *BetweenExpr:
		return &BetweenExpr{Expr: CloneExpr(n.Expr), Not: n.Not, Lo: CloneExpr(n.Lo), Hi: CloneExpr(n.Hi)}
	case *LikeExpr:
		return &LikeExpr{Expr: CloneExpr(n.Expr), Not: n.Not, Pattern: CloneExpr(n.Pattern)}
	case *IsNullExpr:
		return &IsNullExpr{Expr: CloneExpr(n.Expr), Not: n.Not}
	default:
		panic("sqlparse: CloneExpr: unknown node type")
	}
}
