package sqlparse

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokKeyword
	TokIdent
	TokInt
	TokFloat
	TokString
	TokBlob // X'<hex>' byte-string literal (carries decoded bytes as Text)
	TokOp   // operators and punctuation: = <> < <= > >= + - * / ( ) , . ;
	TokInvalid
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokKeyword:
		return "KEYWORD"
	case TokIdent:
		return "IDENT"
	case TokInt:
		return "INT"
	case TokFloat:
		return "FLOAT"
	case TokString:
		return "STRING"
	case TokBlob:
		return "BLOB"
	case TokOp:
		return "OP"
	case TokInvalid:
		return "INVALID"
	default:
		return fmt.Sprintf("TokenKind(%d)", uint8(k))
	}
}

// Token is one lexical unit of a query string. Keywords are normalized
// to upper case in Text; identifiers keep their original spelling;
// string tokens carry the unquoted, unescaped payload.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input
}

func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d", t.Kind, t.Text, t.Pos)
}

// keywords is the set of reserved words of the supported SQL subset.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true,
	"IN": true, "BETWEEN": true, "LIKE": true, "IS": true, "NULL": true,
	"JOIN": true, "INNER": true, "LEFT": true, "ON": true, "AS": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"TRUE": true, "FALSE": true,
}

// IsKeyword reports whether the upper-cased word is reserved.
func IsKeyword(word string) bool { return keywords[word] }
