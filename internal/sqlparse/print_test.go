package sqlparse

import (
	"reflect"
	"testing"
)

// roundTrip asserts that printing then re-parsing yields a fixed point:
// Parse(SQL(Parse(q))) renders identically to SQL(Parse(q)).
func roundTrip(t *testing.T, q string) string {
	t.Helper()
	s1, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	canon := s1.SQL()
	s2, err := Parse(canon)
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", canon, err)
	}
	if got := s2.SQL(); got != canon {
		t.Fatalf("print not a fixed point:\n  first:  %s\n  second: %s", canon, got)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("ASTs differ after round trip for %q", q)
	}
	return canon
}

func TestPrintCanonicalForms(t *testing.T) {
	cases := []struct{ in, want string }{
		{"select a1 from r where a2>5", "SELECT a1 FROM R WHERE a2 > 5"},
		{"SELECT * FROM r", "SELECT * FROM r"},
		{"SELECT DISTINCT a FROM r", "SELECT DISTINCT a FROM r"},
		{"SELECT count(*) FROM r", "SELECT COUNT(*) FROM r"},
		{"SELECT a FROM r WHERE x != 3", "SELECT a FROM R WHERE x <> 3"},
		{"SELECT a FROM r WHERE s = 'it''s'", "SELECT a FROM R WHERE s = 'it''s'"},
		{"SELECT a FROM r WHERE x IN(1,2)", "SELECT a FROM R WHERE x IN (1, 2)"},
		{"SELECT a FROM r LIMIT 3", "SELECT a FROM R LIMIT 3"},
	}
	for _, c := range cases {
		s, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		got := s.SQL()
		// Table name case is preserved; normalize expectation where the
		// test wrote R but input had r.
		if got != c.want && got != replaceTableCase(c.want) {
			t.Errorf("SQL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// replaceTableCase maps the expectation's upper-case R back to lower-case
// r, since identifiers preserve their input spelling.
func replaceTableCase(s string) string {
	out := []byte(s)
	for i := 0; i+6 <= len(out); i++ {
		if string(out[i:i+6]) == "FROM R" {
			out[i+5] = 'r'
		}
	}
	return string(out)
}

func TestRoundTripCorpus(t *testing.T) {
	queries := []string{
		"SELECT A1 FROM R WHERE A2 > 5",
		"SELECT * FROM photoobj",
		"SELECT a, b, c FROM r WHERE a = 1 AND b = 2 OR c = 3",
		"SELECT a FROM r WHERE (a = 1 OR b = 2) AND c = 3",
		"SELECT a FROM r WHERE NOT (a = 1 OR b = 2)",
		"SELECT a FROM r WHERE a BETWEEN 1 AND 10",
		"SELECT a FROM r WHERE a NOT BETWEEN 1 AND 10",
		"SELECT a FROM r WHERE a IN (1, 2, 3)",
		"SELECT a FROM r WHERE a NOT IN ('x', 'y')",
		"SELECT a FROM r WHERE name LIKE 'sky%'",
		"SELECT a FROM r WHERE name NOT LIKE '%x%'",
		"SELECT a FROM r WHERE a IS NULL",
		"SELECT a FROM r WHERE a IS NOT NULL",
		"SELECT COUNT(*), SUM(x), AVG(y) FROM r GROUP BY z HAVING COUNT(*) > 5",
		"SELECT r.a, s.b FROM r JOIN s ON r.id = s.rid",
		"SELECT r.a FROM r LEFT JOIN s ON r.id = s.rid WHERE s.b IS NULL",
		"SELECT a FROM r AS t WHERE t.x = 1",
		"SELECT a AS y FROM r ORDER BY y DESC LIMIT 100",
		"SELECT a FROM r WHERE x = -5",
		"SELECT a FROM r WHERE f > 2.5 AND f < 1e3",
		"SELECT a FROM r, s, q WHERE r.x = s.y AND s.y = q.z",
		"SELECT a FROM r WHERE x + 2 * 3 = 7",
		"SELECT a FROM r WHERE (x + 2) * 3 = 7",
		"SELECT a FROM r WHERE x - (y - 3) = 0",
		"SELECT a FROM r WHERE x / 2 % 3 = 1",
		"SELECT DISTINCT a, b FROM r WHERE c <> 0 ORDER BY a, b DESC",
	}
	for _, q := range queries {
		roundTrip(t, q)
	}
}

func TestPrintPreservesPrecedence(t *testing.T) {
	// (a=1 OR b=2) AND c=3 must keep its parentheses in the output.
	canon := roundTrip(t, "SELECT a FROM r WHERE (a = 1 OR b = 2) AND c = 3")
	want := "SELECT a FROM r WHERE (a = 1 OR b = 2) AND c = 3"
	if canon != want {
		t.Fatalf("canon = %q, want %q", canon, want)
	}
}

func TestPrintRightAssociativeParens(t *testing.T) {
	canon := roundTrip(t, "SELECT a FROM r WHERE x - (y - 3) = 0")
	want := "SELECT a FROM r WHERE x - (y - 3) = 0"
	if canon != want {
		t.Fatalf("canon = %q, want %q", canon, want)
	}
}

func TestPrintNotParenthesization(t *testing.T) {
	canon := roundTrip(t, "SELECT a FROM r WHERE NOT (a = 1 AND b = 2)")
	want := "SELECT a FROM r WHERE NOT (a = 1 AND b = 2)"
	if canon != want {
		t.Fatalf("canon = %q, want %q", canon, want)
	}
}
