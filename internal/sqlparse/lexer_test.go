package sqlparse

import (
	"reflect"
	"testing"
)

func kindsAndTexts(toks []Token) (kinds []TokenKind, texts []string) {
	for _, t := range toks {
		kinds = append(kinds, t.Kind)
		texts = append(texts, t.Text)
	}
	return
}

func TestTokenizeBasicQuery(t *testing.T) {
	toks, err := Tokenize("SELECT a1 FROM r WHERE a2 > 5")
	if err != nil {
		t.Fatal(err)
	}
	_, texts := kindsAndTexts(toks)
	want := []string{"SELECT", "a1", "FROM", "r", "WHERE", "a2", ">", "5"}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("texts = %v, want %v", texts, want)
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("select A from B")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "SELECT" {
		t.Fatalf("lower-case keyword not normalized: %v", toks[0])
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "A" {
		t.Fatalf("identifier case must be preserved: %v", toks[1])
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		in   string
		kind TokenKind
	}{
		{"42", TokInt},
		{"0", TokInt},
		{"3.14", TokFloat},
		{".5", TokFloat},
		{"1e10", TokFloat},
		{"2.5e-3", TokFloat},
		{"7E+2", TokFloat},
	}
	for _, c := range cases {
		toks, err := Tokenize(c.in)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", c.in, err)
		}
		if len(toks) != 1 || toks[0].Kind != c.kind || toks[0].Text != c.in {
			t.Fatalf("Tokenize(%q) = %v, want single %v", c.in, toks, c.kind)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	toks, err := Tokenize("'hello'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "hello" {
		t.Fatalf("got %v", toks[0])
	}
	// Quote doubling.
	toks, err = Tokenize("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "it's" {
		t.Fatalf("escaped quote: got %q", toks[0].Text)
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokenize("'oops"); err == nil {
		t.Fatal("unterminated string must error")
	}
}

func TestOperators(t *testing.T) {
	toks, err := Tokenize("= <> != < <= > >= + - * / ( ) , . ; %")
	if err != nil {
		t.Fatal(err)
	}
	_, texts := kindsAndTexts(toks)
	// != normalizes to <>.
	want := []string{"=", "<>", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "(", ")", ",", ".", ";", "%"}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("texts = %v, want %v", texts, want)
	}
	for _, tok := range toks {
		if tok.Kind != TokOp {
			t.Fatalf("%v should be TokOp", tok)
		}
	}
}

func TestQualifiedName(t *testing.T) {
	toks, err := Tokenize("t.col")
	if err != nil {
		t.Fatal(err)
	}
	_, texts := kindsAndTexts(toks)
	if !reflect.DeepEqual(texts, []string{"t", ".", "col"}) {
		t.Fatalf("texts = %v", texts)
	}
}

func TestInvalidCharacter(t *testing.T) {
	if _, err := Tokenize("SELECT @ FROM r"); err == nil {
		t.Fatal("invalid character must error")
	}
}

func TestPositions(t *testing.T) {
	toks, _ := Tokenize("a  bb")
	if toks[0].Pos != 0 || toks[1].Pos != 3 {
		t.Fatalf("positions = %d,%d want 0,3", toks[0].Pos, toks[1].Pos)
	}
}

func TestEmptyInput(t *testing.T) {
	toks, err := Tokenize("   ")
	if err != nil || len(toks) != 0 {
		t.Fatalf("blank input: toks=%v err=%v", toks, err)
	}
}
