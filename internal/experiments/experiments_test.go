package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// smallParams keep experiment tests fast; the full-size run happens in
// cmd/dpebench and the benchmarks.
func smallParams() Params {
	return Params{Seed: "exp-test", Queries: 24, Rows: 60, PaillierBits: 512}
}

func TestTable1ReproducesPaperRows(t *testing.T) {
	rows, err := Table1(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Row 1 (token): DET chosen; PROB must violate.
	if got := rows[0].Procedure.Selection.Chosen; got == nil || got.Label != "DET" {
		t.Fatalf("token row chose %+v, want DET", got)
	}
	if rows[0].Procedure.Selection.Reports["PROB constants"].Preserved {
		t.Fatal("PROB constants must violate token equivalence")
	}
	// Row 2 (structure): PROB chosen (both preserve, PROB more secure).
	if got := rows[1].Procedure.Selection.Chosen; got == nil || got.Label != "PROB" {
		t.Fatalf("structure row chose %+v, want PROB", got)
	}
	if !rows[1].Procedure.Selection.Reports["DET constants"].Preserved {
		t.Fatal("DET constants must also preserve structural equivalence")
	}
	// Row 3 (result): via CryptDB chosen; DET-only and PROB must fail.
	if got := rows[2].Procedure.Selection.Chosen; got == nil || got.Label != "via CryptDB [8]" {
		t.Fatalf("result row chose %+v, want via CryptDB", got)
	}
	if rows[2].Procedure.Selection.Reports["DET only (no onions)"].Preserved {
		t.Fatal("DET-only must violate result equivalence (ranges and aggregates break)")
	}
	if rows[2].Procedure.Selection.Reports["PROB constants"].Preserved {
		t.Fatal("PROB constants must violate result equivalence")
	}
	// Row 4 (access-area): the refined composite chosen; others fail.
	if got := rows[3].Procedure.Selection.Chosen; got == nil || got.Label != "via CryptDB, except HOM" {
		t.Fatalf("access-area row chose %+v", got)
	}
	if rows[3].Procedure.Selection.Reports["PROB constants"].Preserved {
		t.Fatal("PROB must violate access-area equivalence")
	}
	if rows[3].Procedure.Selection.Reports["DET constants"].Preserved {
		t.Fatal("DET must violate access-area equivalence (no order on ranges)")
	}

	out := RenderTable1(rows)
	for _, want := range []string{"Token-Based", "Query-Structure", "Query-Result", "Query-Access-Area", "via CryptDB", "step 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestFig1OrderingReproduced(t *testing.T) {
	rows, err := Fig1(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !OrderingHolds(rows) {
		t.Fatalf("Fig. 1 ordering violated: %+v", rows)
	}
	// PROB and HOM give (near) zero advantage.
	for _, r := range rows {
		if (r.Class == core.PROB || r.Class == core.HOM) && r.Advantage > 0.05 {
			t.Fatalf("%s advantage should be ~0: %v", r.Class, r.Advantage)
		}
	}
	out := RenderFig1(rows)
	if !strings.Contains(out, "PROB") || !strings.Contains(out, "Advantage") {
		t.Fatalf("render broken:\n%s", out)
	}
}

func TestMiningEqualityAllAlgorithmsAllMeasures(t *testing.T) {
	rows, ctrl, err := MiningEquality(smallParams(), DefaultMiningParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 { // 4 measures × 5 algorithms
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	for _, r := range rows {
		if !r.Equal {
			t.Errorf("%s/%s: mining over ciphertext differs from plaintext (matrix err %v)", r.Measure, r.Algorithm, r.MatrixMaxErr)
		}
		if r.MatrixMaxErr > 1e-9 {
			t.Errorf("%s: matrix not preserved: %v", r.Measure, r.MatrixMaxErr)
		}
	}
	if !ctrl.MatrixDiffers {
		t.Fatal("negative control must break the distance matrix")
	}
	out := RenderMining(rows, ctrl)
	if !strings.Contains(out, "k-medoids") || !strings.Contains(out, "Negative control") {
		t.Fatalf("render broken:\n%s", out)
	}
}

func TestAccessAreaSecurityRefinement(t *testing.T) {
	rep, err := AccessAreaSecurity(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Preserved.Preserved {
		t.Fatalf("refined scheme must preserve d_AE: %+v", rep.Preserved)
	}
	if rep.Improved == 0 {
		t.Fatal("expected at least one aggregate-only attribute with a strict security gain")
	}
	foundAggOnly := false
	for _, a := range rep.Assignments {
		if a.AggregateOnly {
			foundAggOnly = true
			if a.CryptDB != core.HOM || a.Refined != core.PROB {
				t.Fatalf("aggregate-only attr %s: got %s->%s, want HOM->PROB", a.Attribute, a.CryptDB, a.Refined)
			}
		}
	}
	if !foundAggOnly {
		t.Fatal("workload should contain an aggregate-only attribute")
	}
	out := RenderAccessAreaSecurity(rep)
	if !strings.Contains(out, "SecurityGain") {
		t.Fatalf("render broken:\n%s", out)
	}
}

func TestSharedInfoDemonstratesFailures(t *testing.T) {
	rows, err := SharedInfo(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Result and access-area rows must have demonstrated failures.
	if rows[2].FailureErr == "" {
		t.Fatal("result distance must fail without DB content")
	}
	if rows[3].FailureErr == "" {
		t.Fatal("access-area distance must fail without domains")
	}
	out := RenderSharedInfo(rows)
	if !strings.Contains(out, "Fails without") {
		t.Fatalf("render broken:\n%s", out)
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Seed == "" || p.Queries == 0 || p.Rows == 0 || p.PaillierBits == 0 {
		t.Fatalf("defaults not applied: %+v", p)
	}
}

func TestGuardedConvertsErrors(t *testing.T) {
	rep, err := guarded(func() (*core.PreservationReport, error) {
		return nil, strings.NewReader("").UnreadByte() // any non-nil error
	})()
	if err != nil {
		t.Fatal("guarded must not propagate errors")
	}
	if rep.Preserved || rep.Error == "" {
		t.Fatalf("guarded report wrong: %+v", rep)
	}
}

func TestAssociationRulesOverEncryptedLog(t *testing.T) {
	rep, err := AssociationRules(smallParams(), 4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FrequentPlain == 0 || rep.RulesPlain == 0 {
		t.Fatalf("expected non-trivial mining output: %+v", rep)
	}
	if rep.FrequentPlain != rep.FrequentEnc || rep.RulesPlain != rep.RulesEnc {
		t.Fatalf("counts differ plain vs enc: %+v", rep)
	}
	if !rep.ShapesEqual {
		t.Fatal("rule shapes must be identical under DET feature renaming")
	}
	out := RenderRules(rep)
	if !strings.Contains(out, "ASSOCIATION-RULE") {
		t.Fatalf("render broken:\n%s", out)
	}
}
