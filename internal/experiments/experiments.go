// Package experiments wires the whole system into the paper's evaluation
// artifacts. Each experiment of DESIGN.md §4 has one entry point that
// returns structured results plus a renderer that prints the paper-style
// table:
//
//	E1 Table1             — regenerate Table I by empirical class selection
//	E2 Fig1               — regenerate Fig. 1's ordering as attack advantages
//	E3 MiningEquality     — Definition 1's consequence on five mining algorithms
//	E4 AccessAreaSecurity — the Section IV-C refinement vs CryptDB-as-is
//	E5 SharedInfo         — the Shared Information columns of Table I
package experiments

import (
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"repro/internal/crypto/prf"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/distance"
	"repro/internal/encdb"
	"repro/internal/sqlparse"
	"repro/internal/value"
	"repro/internal/workload"
)

// Params scales the experiments.
type Params struct {
	Seed string
	// Queries in the log for log-only measures; result distance uses
	// Queries/2 (execution is the expensive part).
	Queries int
	Rows    int
	// PaillierBits for the HOM onion; experiments default to 512 so a
	// full run stays interactive. DESIGN.md documents the substitution.
	PaillierBits int
}

// DefaultParams are the parameters recorded in DESIGN.md §4.
func DefaultParams() Params {
	return Params{Seed: "seed-42", Queries: 60, Rows: 120, PaillierBits: 512}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Seed == "" {
		p.Seed = d.Seed
	}
	if p.Queries == 0 {
		p.Queries = d.Queries
	}
	if p.Rows == 0 {
		p.Rows = d.Rows
	}
	if p.PaillierBits == 0 {
		p.PaillierBits = d.PaillierBits
	}
	return p
}

// env is the shared experimental setup: one workload, one deployment.
type env struct {
	p   Params
	w   *workload.Workload
	d   *encdb.Deployment
	cfg encdb.Config
}

func newEnv(p Params, wcfg workload.Config) (*env, error) {
	p = p.withDefaults()
	wcfg.Seed = p.Seed
	wcfg.Queries = p.Queries
	wcfg.Rows = p.Rows
	w, err := workload.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	cfg := encdb.Config{PaillierBits: p.PaillierBits}
	d, err := encdb.NewDeployment([]byte("master:"+p.Seed), cfg)
	if err != nil {
		return nil, err
	}
	if err := d.DeclareJoins(w.Schema, w.Stmts); err != nil {
		return nil, err
	}
	return &env{p: p, w: w, d: d, cfg: cfg}, nil
}

// encryptLog rewrites the whole log under a mode, returning printed
// strings and parsed statements.
func (e *env) encryptLog(mode encdb.Mode) ([]string, []*sqlparse.SelectStmt, error) {
	var qs []string
	var stmts []*sqlparse.SelectStmt
	for _, stmt := range e.w.Stmts {
		enc, err := e.d.EncryptQuery(stmt, e.w.Schema, mode)
		if err != nil {
			return nil, nil, err
		}
		s := enc.SQL()
		// Round-trip through the printed form: the shared artifact is a
		// string log.
		reparsed, err := sqlparse.Parse(s)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: encrypted query does not re-parse: %w", err)
		}
		qs = append(qs, s)
		stmts = append(stmts, reparsed)
	}
	return qs, stmts, nil
}

// guarded wraps a preservation verifier so scheme-construction failures
// (e.g. "not executable under this candidate") count as non-preservation
// instead of aborting the selection — an inappropriate candidate *is*
// the finding.
func guarded(f func() (*core.PreservationReport, error)) func() (*core.PreservationReport, error) {
	return func() (*core.PreservationReport, error) {
		rep, err := f()
		if err != nil {
			return &core.PreservationReport{Preserved: false, Error: err.Error()}, nil
		}
		return rep, nil
	}
}

// --- E1: Table I ---

// Table1Row is one reproduced row of Table I.
type Table1Row struct {
	Spec      core.MeasureSpec
	Procedure *core.Procedure
}

// Table1 reproduces Table I: for each of the four measures, run KIT-DPE
// steps 2–4 with the candidate constant classes and select the
// appropriate one (Definition 6) empirically over the workload.
func Table1(p Params) ([]Table1Row, error) {
	p = p.withDefaults()
	measures := core.SQLMeasures()
	var rows []Table1Row

	// Log-only measures use the full template mix.
	logEnv, err := newEnv(p, workload.Config{IncludeAggregates: true, IncludeJoins: true, IncludeLike: true})
	if err != nil {
		return nil, err
	}
	// Executable measures use the CryptDB-supported subset.
	execP := p
	execP.Queries = p.Queries / 2
	execEnv, err := newEnv(execP, workload.Config{IncludeAggregates: true, IncludeJoins: true})
	if err != nil {
		return nil, err
	}

	// Row 1: token distance.
	tokenCands := []core.Candidate{
		{Label: "PROB constants", Class: core.PROB, Verify: guarded(func() (*core.PreservationReport, error) {
			return logEnv.verifyToken(encdb.ModeStructure)
		})},
		{Label: "DET", Class: core.DET, Verify: guarded(func() (*core.PreservationReport, error) {
			return logEnv.verifyToken(encdb.ModeToken)
		})},
	}
	proc, err := core.Run(measures[0], tokenCands)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{Spec: measures[0], Procedure: proc})

	// Row 2: structure distance.
	structCands := []core.Candidate{
		{Label: "PROB", Class: core.PROB, Verify: guarded(func() (*core.PreservationReport, error) {
			return logEnv.verifyStructure(encdb.ModeStructure)
		})},
		{Label: "DET constants", Class: core.DET, Verify: guarded(func() (*core.PreservationReport, error) {
			return logEnv.verifyStructure(encdb.ModeToken)
		})},
	}
	proc, err = core.Run(measures[1], structCands)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{Spec: measures[1], Procedure: proc})

	// Row 3: result distance.
	resultCands := []core.Candidate{
		{Label: "PROB constants", Class: core.PROB, Verify: guarded(func() (*core.PreservationReport, error) {
			return execEnv.verifyResultOpaque(encdb.ModeStructure)
		})},
		{Label: "DET only (no onions)", Class: core.DET, Verify: guarded(func() (*core.PreservationReport, error) {
			return execEnv.verifyResult(encdb.ModeResultDETOnly)
		})},
		{Label: "via CryptDB [8]", Class: core.DET, Verify: guarded(func() (*core.PreservationReport, error) {
			return execEnv.verifyResult(encdb.ModeResult)
		})},
	}
	proc, err = core.Run(measures[2], resultCands)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{Spec: measures[2], Procedure: proc})

	// Row 4: access-area distance.
	aaCands := []core.Candidate{
		{Label: "PROB constants", Class: core.PROB, Verify: guarded(func() (*core.PreservationReport, error) {
			return logEnv.verifyAccessArea(encdb.ModeStructure)
		})},
		{Label: "DET constants", Class: core.DET, Verify: guarded(func() (*core.PreservationReport, error) {
			return logEnv.verifyAccessArea(encdb.ModeToken)
		})},
		{Label: "via CryptDB, except HOM", Class: core.DET, Verify: guarded(func() (*core.PreservationReport, error) {
			return logEnv.verifyAccessArea(encdb.ModeAccessArea)
		})},
	}
	proc, err = core.Run(measures[3], aaCands)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{Spec: measures[3], Procedure: proc})
	return rows, nil
}

func (e *env) verifyToken(mode encdb.Mode) (*core.PreservationReport, error) {
	encQs, _, err := e.encryptLog(mode)
	if err != nil {
		return nil, err
	}
	n := len(e.w.Queries)
	return core.VerifyDPE(n,
		func(i, j int) (float64, error) { return distance.Token(e.w.Queries[i], e.w.Queries[j]) },
		func(i, j int) (float64, error) { return distance.Token(encQs[i], encQs[j]) },
		0)
}

func (e *env) verifyStructure(mode encdb.Mode) (*core.PreservationReport, error) {
	_, encStmts, err := e.encryptLog(mode)
	if err != nil {
		return nil, err
	}
	n := len(e.w.Stmts)
	return core.VerifyDPE(n,
		func(i, j int) (float64, error) { return distance.Structure(e.w.Stmts[i], e.w.Stmts[j]), nil },
		func(i, j int) (float64, error) { return distance.Structure(encStmts[i], encStmts[j]), nil },
		0)
}

// verifyResult runs the executable modes: encrypted catalog + rewritten
// queries, Jaccard over ciphertext tuples.
func (e *env) verifyResult(mode encdb.Mode) (*core.PreservationReport, error) {
	_, encStmts, err := e.encryptLog(mode)
	if err != nil {
		return nil, err
	}
	encCat, err := e.d.EncryptCatalog(e.w.Catalog, e.w.Schema)
	if err != nil {
		return nil, err
	}
	plainRC := &distance.ResultComputer{Catalog: e.w.Catalog}
	encRC := &distance.ResultComputer{Catalog: encCat, Options: db.Options{Aggregate: e.d.Aggregator()}}
	n := len(e.w.Stmts)
	return core.VerifyDPE(n,
		func(i, j int) (float64, error) { return plainRC.Distance(e.w.Stmts[i], e.w.Stmts[j]) },
		func(i, j int) (float64, error) { return encRC.Distance(encStmts[i], encStmts[j]) },
		0)
}

// verifyResultOpaque covers candidates whose rewritten queries are not
// even executable (no onion columns): execution errors count as
// violations via guarded().
func (e *env) verifyResultOpaque(mode encdb.Mode) (*core.PreservationReport, error) {
	_, encStmts, err := e.encryptLog(mode)
	if err != nil {
		return nil, err
	}
	encCat, err := e.d.EncryptCatalog(e.w.Catalog, e.w.Schema)
	if err != nil {
		return nil, err
	}
	plainRC := &distance.ResultComputer{Catalog: e.w.Catalog}
	encRC := &distance.ResultComputer{Catalog: encCat, Options: db.Options{Aggregate: e.d.Aggregator()}}
	n := len(e.w.Stmts)
	return core.VerifyDPE(n,
		func(i, j int) (float64, error) { return plainRC.Distance(e.w.Stmts[i], e.w.Stmts[j]) },
		func(i, j int) (float64, error) { return encRC.Distance(encStmts[i], encStmts[j]) },
		0)
}

func (e *env) verifyAccessArea(mode encdb.Mode) (*core.PreservationReport, error) {
	_, encStmts, err := e.encryptLog(mode)
	if err != nil {
		return nil, err
	}
	encDomains, err := e.d.EncryptDomains(e.w.Schema, e.w.Domains)
	if err != nil {
		return nil, err
	}
	plainParams := distance.AccessAreaParams{Domains: e.w.Domains}
	encParams := distance.AccessAreaParams{Domains: encDomains}
	n := len(e.w.Stmts)
	return core.VerifyDPE(n,
		func(i, j int) (float64, error) { return distance.AccessArea(e.w.Stmts[i], e.w.Stmts[j], plainParams) },
		func(i, j int) (float64, error) { return distance.AccessArea(encStmts[i], encStmts[j], encParams) },
		0)
}

// RenderTable1 prints the reproduced Table I with per-candidate
// verification evidence.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("TABLE I — OVERVIEW OF QUERY-DISTANCE MEASURES (reproduced; classes selected empirically per Definition 6)\n\n")
	fmt.Fprintf(&sb, "%-36s | %-22s | %-24s | %-13s | %-6s | %-7s | %s\n",
		"Distance Measure", "Shared Information", "Equivalence Notion", "c", "EncRel", "EncAttr", "EncA.Const (chosen)")
	sb.WriteString(strings.Repeat("-", 150) + "\n")
	for _, r := range rows {
		chosen := "— none preserves —"
		if r.Procedure.Selection.Chosen != nil {
			chosen = r.Procedure.Selection.Chosen.Label
		}
		fmt.Fprintf(&sb, "%-36s | %-22s | %-24s | %-13s | %-6s | %-7s | %s\n",
			r.Spec.Name, r.Spec.Shared, r.Spec.Equivalence, r.Spec.C, "DET", "DET", chosen)
	}
	sb.WriteString("\nEvidence (per candidate):\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "\n%s\n", r.Procedure.Summary())
	}
	return sb.String()
}

// --- E2: Fig. 1 ---

// Fig1Row is one class's measured attack resistance.
type Fig1Row struct {
	Class      core.Class
	Level      int
	Leakage    string
	BestAttack string
	Advantage  float64
}

// Fig1 reproduces the taxonomy ordering as measured attacker advantage
// over the workload's most frequent predicate column.
func Fig1(p Params) ([]Fig1Row, error) {
	p = p.withDefaults()
	e, err := newEnv(p, workload.Config{IncludeAggregates: true})
	if err != nil {
		return nil, err
	}
	// Attacker observes an encrypted constant column. A synthetic stream
	// (DESIGN.md E2: 3000 constants over a 32-value domain, mild skew)
	// gives statistically stable advantages: skewed enough that
	// frequency analysis beats guessing, flat enough that order
	// information adds real power.
	const (
		streamLen  = 3000
		domainSize = 32
		zipfS      = 0.4
	)
	drbg := prf.NewDRBG([]byte("fig1:"+p.Seed), []byte("constants"))
	weights := make([]float64, domainSize)
	var norm float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), zipfS)
		norm += weights[i]
	}
	var order []string
	var aux []attack.ValueFreq
	for i := 0; i < domainSize; i++ {
		v := fmt.Sprintf("v%03d", i)
		order = append(order, v)
		aux = append(aux, attack.ValueFreq{Value: v, Freq: weights[i] / norm})
	}
	stream := make([]string, streamLen)
	for i := range stream {
		u := drbg.Float64() * norm
		acc, pick := 0.0, domainSize-1
		for j, w := range weights {
			acc += w
			if u < acc {
				pick = j
				break
			}
		}
		stream[i] = order[pick]
	}

	mkSamples := func(enc func(string) (string, error)) ([]attack.Sample, error) {
		out := make([]attack.Sample, len(stream))
		for i, v := range stream {
			c, err := enc(v)
			if err != nil {
				return nil, err
			}
			out[i] = attack.Sample{Cipher: c, Truth: v}
		}
		return out, nil
	}
	strOf := func(v string) value.Value { return value.Str(strings.Trim(v, "'")) }

	detSamples, err := mkSamples(func(v string) (string, error) {
		c, err := e.d.EncryptConstantDET("photoobj", "class", strOf(v))
		if err != nil {
			return "", err
		}
		return hex.EncodeToString(c.AsBytes()), nil
	})
	if err != nil {
		return nil, err
	}
	probSamples, err := mkSamples(func(v string) (string, error) {
		c, err := e.d.EncryptConstantPROB("photoobj", "class", strOf(v))
		if err != nil {
			return "", err
		}
		return hex.EncodeToString(c.AsBytes()), nil
	})
	if err != nil {
		return nil, err
	}
	// OPE needs a numeric embedding: rank the class values.
	rank := make(map[string]int64)
	for i, v := range order {
		rank[v] = int64(i)
	}
	opeSamples, err := mkSamples(func(v string) (string, error) {
		c, err := e.d.EncryptConstantOPE("photoobj", "nvote", encdb.KindInt, value.Int(rank[v]))
		if err != nil {
			return "", err
		}
		return hex.EncodeToString(c.AsBytes()), nil
	})
	if err != nil {
		return nil, err
	}
	// HOM: Paillier encryptions of the ranks — probabilistic.
	homSamples, err := mkSamples(func(v string) (string, error) {
		c, err := e.d.Paillier().EncryptInt64(nil, rank[v])
		if err != nil {
			return "", err
		}
		return c.Text(16), nil
	})
	if err != nil {
		return nil, err
	}
	// Sorting attack needs aux in plaintext order; for the rank embedding
	// that is the order slice itself.
	base := attack.Baseline(detSamples, aux)
	best := func(samples []attack.Sample, tryOrder bool) (string, float64) {
		name, adv := "frequency", attack.Advantage(attack.Frequency(samples, aux), base)
		if tryOrder {
			if a := attack.Advantage(attack.Sorting(samples, aux), base); a > adv {
				name, adv = "sorting", a
			}
		}
		return name, adv
	}

	var rows []Fig1Row
	addRow := func(class core.Class, samples []attack.Sample, tryOrder bool) {
		name, adv := best(samples, tryOrder)
		rows = append(rows, Fig1Row{
			Class: class, Level: core.SecurityLevel(class),
			Leakage: core.Leakage(class), BestAttack: name, Advantage: adv,
		})
	}
	addRow(core.PROB, probSamples, false)
	addRow(core.HOM, homSamples, false)
	addRow(core.DET, detSamples, false)
	addRow(core.OPE, opeSamples, true)
	return rows, nil
}

// RenderFig1 prints the measured taxonomy.
func RenderFig1(rows []Fig1Row) string {
	var sb strings.Builder
	sb.WriteString("FIG. 1 — TAXONOMY OF PROPERTY-PRESERVING ENCRYPTION CLASSES (reproduced as measured attacker advantage)\n\n")
	fmt.Fprintf(&sb, "%-8s | %-5s | %-55s | %-10s | %s\n", "Class", "Level", "Leakage", "BestAttack", "Advantage")
	sb.WriteString(strings.Repeat("-", 105) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s | %-5d | %-55s | %-10s | %.4f\n", r.Class, r.Level, r.Leakage, r.BestAttack, r.Advantage)
	}
	sb.WriteString("\nExpected ordering (paper): advantage(PROB) = advantage(HOM) <= advantage(DET) <= advantage(OPE)\n")
	return sb.String()
}

// OrderingHolds checks the Fig. 1 claim on measured rows: within the
// rows, higher taxonomy level never has higher advantage, and the
// DET→OPE step strictly increases attacker power.
func OrderingHolds(rows []Fig1Row) bool {
	adv := make(map[core.Class]float64)
	for _, r := range rows {
		adv[r.Class] = r.Advantage
	}
	return adv[core.PROB] <= adv[core.DET]+1e-9 &&
		adv[core.HOM] <= adv[core.DET]+1e-9 &&
		adv[core.DET] < adv[core.OPE] &&
		adv[core.PROB] < adv[core.OPE]
}
