package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"repro/internal/db"
	"repro/internal/distance"
	"repro/internal/encdb"
	"repro/internal/mining"
	"repro/internal/workload"
)

// buildMatrix runs the parallel distance engine with all cores; the
// result is entry-wise identical to a sequential build.
func buildMatrix(n int, f distance.PairFunc) (distance.Matrix, error) {
	return distance.BuildMatrix(context.Background(), n, runtime.NumCPU(), f)
}

// MiningParams are the E3 algorithm parameters from DESIGN.md §4.
type MiningParams struct {
	K        int     // clusters for k-medoids / complete-link
	Eps      float64 // DBSCAN radius
	MinPts   int     // DBSCAN density
	OutlierP float64 // Knorr–Ng fraction
	OutlierD float64 // Knorr–Ng distance threshold
	KNNQuery int     // query item for kNN
	KNNK     int     // neighbors
}

// DefaultMiningParams mirror DESIGN.md §4 (E3).
func DefaultMiningParams() MiningParams {
	return MiningParams{K: 4, Eps: 0.4, MinPts: 3, OutlierP: 0.95, OutlierD: 0.7, KNNQuery: 0, KNNK: 5}
}

// MiningRow reports one (measure, algorithm) equality outcome.
type MiningRow struct {
	Measure   string
	Algorithm string
	// Equal is true when plaintext-side and ciphertext-side mining
	// produced identical output.
	Equal bool
	// MatrixMaxErr is the matrix-level preservation error.
	MatrixMaxErr float64
}

// NegativeControl reports the E3 control: an *inappropriate* scheme
// (PROB constants under token distance) must break the matrix.
type NegativeControl struct {
	MatrixMaxErr   float64
	MatrixDiffers  bool
	MiningDiffered bool
}

// MiningEquality runs experiment E3: for each measure with its
// appropriate scheme, mine the plaintext log and the encrypted log with
// all five algorithms and compare outputs bit-for-bit; then run the
// negative control.
func MiningEquality(p Params, mp MiningParams) ([]MiningRow, *NegativeControl, error) {
	p = p.withDefaults()
	if mp == (MiningParams{}) {
		mp = DefaultMiningParams()
	}
	logEnv, err := newEnv(p, workload.Config{IncludeAggregates: true, IncludeJoins: true, IncludeLike: true})
	if err != nil {
		return nil, nil, err
	}
	execP := p
	execP.Queries = p.Queries / 2
	execEnv, err := newEnv(execP, workload.Config{IncludeAggregates: true, IncludeJoins: true})
	if err != nil {
		return nil, nil, err
	}

	var rows []MiningRow
	addMeasure := func(name string, plain, enc distance.Matrix) error {
		maxErr, err := distance.MaxAbsDiff(plain, enc)
		if err != nil {
			return err
		}
		algos, err := runAll(plain, mp)
		if err != nil {
			return err
		}
		encAlgos, err := runAll(enc, mp)
		if err != nil {
			return err
		}
		for _, a := range []string{"k-medoids", "dbscan", "complete-link", "outliers", "knn"} {
			rows = append(rows, MiningRow{
				Measure: name, Algorithm: a,
				Equal:        algos[a] == encAlgos[a],
				MatrixMaxErr: maxErr,
			})
		}
		return nil
	}

	// Token distance, appropriate scheme (DET).
	plainTok, encTok, err := logEnv.tokenMatrices(encdb.ModeToken)
	if err != nil {
		return nil, nil, err
	}
	if err := addMeasure("token", plainTok, encTok); err != nil {
		return nil, nil, err
	}

	// Structure distance, appropriate scheme (PROB constants).
	_, encStmts, err := logEnv.encryptLog(encdb.ModeStructure)
	if err != nil {
		return nil, nil, err
	}
	n := len(logEnv.w.Stmts)
	plainStruct, err := buildMatrix(n, func(i, j int) (float64, error) {
		return distance.Structure(logEnv.w.Stmts[i], logEnv.w.Stmts[j]), nil
	})
	if err != nil {
		return nil, nil, err
	}
	encStruct, err := buildMatrix(n, func(i, j int) (float64, error) {
		return distance.Structure(encStmts[i], encStmts[j]), nil
	})
	if err != nil {
		return nil, nil, err
	}
	if err := addMeasure("structure", plainStruct, encStruct); err != nil {
		return nil, nil, err
	}

	// Access-area distance, appropriate scheme.
	_, encAAStmts, err := logEnv.encryptLog(encdb.ModeAccessArea)
	if err != nil {
		return nil, nil, err
	}
	encDomains, err := logEnv.d.EncryptDomains(logEnv.w.Schema, logEnv.w.Domains)
	if err != nil {
		return nil, nil, err
	}
	plainAA, err := buildMatrix(n, func(i, j int) (float64, error) {
		return distance.AccessArea(logEnv.w.Stmts[i], logEnv.w.Stmts[j], distance.AccessAreaParams{Domains: logEnv.w.Domains})
	})
	if err != nil {
		return nil, nil, err
	}
	encAA, err := buildMatrix(n, func(i, j int) (float64, error) {
		return distance.AccessArea(encAAStmts[i], encAAStmts[j], distance.AccessAreaParams{Domains: encDomains})
	})
	if err != nil {
		return nil, nil, err
	}
	if err := addMeasure("access-area", plainAA, encAA); err != nil {
		return nil, nil, err
	}

	// Result distance on the executable subset.
	_, encResStmts, err := execEnv.encryptLog(encdb.ModeResult)
	if err != nil {
		return nil, nil, err
	}
	encCat, err := execEnv.d.EncryptCatalog(execEnv.w.Catalog, execEnv.w.Schema)
	if err != nil {
		return nil, nil, err
	}
	plainRC := &distance.ResultComputer{Catalog: execEnv.w.Catalog}
	encRC := &distance.ResultComputer{Catalog: encCat, Options: db.Options{Aggregate: execEnv.d.Aggregator()}}
	m := len(execEnv.w.Stmts)
	if err := plainRC.Precompute(context.Background(), execEnv.w.Stmts, runtime.NumCPU()); err != nil {
		return nil, nil, err
	}
	if err := encRC.Precompute(context.Background(), encResStmts, runtime.NumCPU()); err != nil {
		return nil, nil, err
	}
	plainRes, err := buildMatrix(m, func(i, j int) (float64, error) {
		return plainRC.Distance(execEnv.w.Stmts[i], execEnv.w.Stmts[j])
	})
	if err != nil {
		return nil, nil, err
	}
	encRes, err := buildMatrix(m, func(i, j int) (float64, error) {
		return encRC.Distance(encResStmts[i], encResStmts[j])
	})
	if err != nil {
		return nil, nil, err
	}
	if err := addMeasure("result", plainRes, encRes); err != nil {
		return nil, nil, err
	}

	// Negative control: token distance under PROB constants.
	plainTok2, encTokBad, err := logEnv.tokenMatrices(encdb.ModeStructure)
	if err != nil {
		return nil, nil, err
	}
	badErr, err := distance.MaxAbsDiff(plainTok2, encTokBad)
	if err != nil {
		return nil, nil, err
	}
	plainAlgos, err := runAll(plainTok2, mp)
	if err != nil {
		return nil, nil, err
	}
	badAlgos, err := runAll(encTokBad, mp)
	if err != nil {
		return nil, nil, err
	}
	ctrl := &NegativeControl{
		MatrixMaxErr:  badErr,
		MatrixDiffers: badErr > 1e-9,
	}
	for a, v := range plainAlgos {
		if badAlgos[a] != v {
			ctrl.MiningDiffered = true
		}
	}
	return rows, ctrl, nil
}

// tokenMatrices builds the plaintext and ciphertext token-distance
// matrices under the given mode.
func (e *env) tokenMatrices(mode encdb.Mode) (distance.Matrix, distance.Matrix, error) {
	encQs, _, err := e.encryptLog(mode)
	if err != nil {
		return nil, nil, err
	}
	n := len(e.w.Queries)
	plain, err := buildMatrix(n, func(i, j int) (float64, error) {
		return distance.Token(e.w.Queries[i], e.w.Queries[j])
	})
	if err != nil {
		return nil, nil, err
	}
	enc, err := buildMatrix(n, func(i, j int) (float64, error) {
		return distance.Token(encQs[i], encQs[j])
	})
	if err != nil {
		return nil, nil, err
	}
	return plain, enc, nil
}

// runAll executes the five algorithms and renders each output to a
// canonical string for equality comparison.
func runAll(m distance.Matrix, mp MiningParams) (map[string]string, error) {
	out := make(map[string]string)
	km, err := mining.KMedoids(m, mp.K)
	if err != nil {
		return nil, err
	}
	out["k-medoids"] = fmt.Sprint(km.Medoids, km.Assign)
	dl, err := mining.DBSCAN(m, mp.Eps, mp.MinPts)
	if err != nil {
		return nil, err
	}
	out["dbscan"] = fmt.Sprint(dl)
	cl, err := mining.CompleteLink(m, mp.K)
	if err != nil {
		return nil, err
	}
	out["complete-link"] = fmt.Sprint(cl)
	ol, err := mining.Outliers(m, mp.OutlierP, mp.OutlierD)
	if err != nil {
		return nil, err
	}
	out["outliers"] = fmt.Sprint(ol)
	nn, err := mining.KNN(m, mp.KNNQuery, mp.KNNK)
	if err != nil {
		return nil, err
	}
	out["knn"] = fmt.Sprint(nn)
	return out, nil
}

// RenderMining prints the E3 outcome.
func RenderMining(rows []MiningRow, ctrl *NegativeControl) string {
	var sb strings.Builder
	sb.WriteString("E3 — MINING-RESULT EQUALITY (Definition 1's consequence)\n\n")
	fmt.Fprintf(&sb, "%-12s | %-14s | %-9s | %s\n", "Measure", "Algorithm", "Equal?", "matrix max |Δd|")
	sb.WriteString(strings.Repeat("-", 60) + "\n")
	for _, r := range rows {
		eq := "YES"
		if !r.Equal {
			eq = "NO"
		}
		fmt.Fprintf(&sb, "%-12s | %-14s | %-9s | %.2e\n", r.Measure, r.Algorithm, eq, r.MatrixMaxErr)
	}
	fmt.Fprintf(&sb, "\nNegative control (PROB constants under token distance):\n")
	fmt.Fprintf(&sb, "  matrix max |Δd| = %.3f; matrix differs: %v; mining output differs: %v\n",
		ctrl.MatrixMaxErr, ctrl.MatrixDiffers, ctrl.MiningDiffered)
	sb.WriteString("  (an inappropriate class breaks distances, and with them the mining results)\n")
	return sb.String()
}
