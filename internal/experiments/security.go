package experiments

import (
	"fmt"
	"strings"

	"repro/internal/accessarea"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/distance"
	"repro/internal/encdb"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// --- E4: the Section IV-C refinement ---

// AttrAssignment records the class an attribute's data gets under one
// scheme.
type AttrAssignment struct {
	Attribute string
	// AggregateOnly marks attributes occurring only inside SELECT
	// aggregates (never in predicates).
	AggregateOnly bool
	CryptDB       core.Class // class under CryptDB-as-is (result scheme)
	Refined       core.Class // class under the access-area scheme
}

// AccessAreaSecurityReport is the outcome of E4.
type AccessAreaSecurityReport struct {
	Assignments []AttrAssignment
	// Preserved confirms d_AE is still distance-preserving under the
	// refined scheme.
	Preserved *core.PreservationReport
	// Improved counts attributes whose class strictly gained security.
	Improved int
}

// AccessAreaSecurity runs experiment E4: identify attributes that occur
// only inside SELECT aggregates, show the refined scheme assigns them
// PROB where CryptDB-as-is uses HOM (a strict gain in Fig. 1), and
// verify the access-area distance is still preserved.
func AccessAreaSecurity(p Params) (*AccessAreaSecurityReport, error) {
	p = p.withDefaults()
	e, err := newEnv(p, workload.Config{IncludeAggregates: true, IncludeJoins: true})
	if err != nil {
		return nil, err
	}

	// Classify attributes: in predicates vs aggregate-only.
	inPredicates := make(map[string]bool)
	inAggregates := make(map[string]bool)
	for _, stmt := range e.w.Stmts {
		for a := range accessarea.AccessedAttributes(stmt) {
			inPredicates[a] = true
		}
		for _, item := range stmt.Select {
			f, ok := item.Expr.(*sqlparse.FuncCall)
			if !ok || f.Star {
				continue
			}
			if c, ok := f.Arg.(*sqlparse.ColumnRef); ok && f.Name != "COUNT" {
				inAggregates[c.Name] = true
			}
		}
	}

	rep := &AccessAreaSecurityReport{}
	for _, attr := range sortedKeys(inAggregates) {
		aggOnly := !inPredicates[attr]
		a := AttrAssignment{Attribute: attr, AggregateOnly: aggOnly}
		if aggOnly {
			// CryptDB keeps a HOM onion to answer SUM/AVG; the refined
			// scheme drops to PROB because the SELECT clause has no
			// influence on access areas (Section IV-C).
			a.CryptDB = core.HOM
			a.Refined = core.PROB
			if core.MoreSecure(a.Refined, a.CryptDB) {
				rep.Improved++
			}
		} else {
			// Predicate attributes need order for the area algebra under
			// both schemes.
			a.CryptDB = core.OPE
			a.Refined = core.OPE
		}
		rep.Assignments = append(rep.Assignments, a)
	}

	// And the refinement must not cost correctness: d_AE preserved.
	pres, err := e.verifyAccessArea(encdb.ModeAccessArea)
	if err != nil {
		return nil, err
	}
	rep.Preserved = pres
	return rep, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// insertion sort — tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RenderAccessAreaSecurity prints the E4 outcome.
func RenderAccessAreaSecurity(r *AccessAreaSecurityReport) string {
	var sb strings.Builder
	sb.WriteString("E4 — ACCESS-AREA SCHEME vs CRYPTDB-AS-IS (Section IV-C)\n\n")
	fmt.Fprintf(&sb, "%-12s | %-14s | %-16s | %-16s | %s\n", "Attribute", "AggregateOnly", "CryptDB class", "Refined class", "SecurityGain")
	sb.WriteString(strings.Repeat("-", 85) + "\n")
	for _, a := range r.Assignments {
		gain := "—"
		if core.MoreSecure(a.Refined, a.CryptDB) {
			gain = fmt.Sprintf("level %d -> %d", core.SecurityLevel(a.CryptDB), core.SecurityLevel(a.Refined))
		}
		fmt.Fprintf(&sb, "%-12s | %-14v | %-16s | %-16s | %s\n", a.Attribute, a.AggregateOnly, a.CryptDB, a.Refined, gain)
	}
	fmt.Fprintf(&sb, "\nAttributes strictly gaining security: %d\n", r.Improved)
	fmt.Fprintf(&sb, "d_AE still preserved under the refined scheme: %v (max err %.2e over %d pairs)\n",
		r.Preserved.Preserved, r.Preserved.MaxAbsError, r.Preserved.Pairs)
	return sb.String()
}

// --- E5: shared information ---

// SharedInfoRow is one measure's shared-information requirements plus a
// live demonstration that the measure fails cleanly without them.
type SharedInfoRow struct {
	Measure      string
	Shared       core.SharedInformation
	FailsWithout string // which missing input was demonstrated
	FailureErr   string // the error observed
}

// SharedInfo runs experiment E5: the Shared Information columns of
// Table I, demonstrated by withholding the input and observing failure.
func SharedInfo(p Params) ([]SharedInfoRow, error) {
	p = p.withDefaults()
	p.Queries = 10
	e, err := newEnv(p, workload.Config{IncludeAggregates: true})
	if err != nil {
		return nil, err
	}
	measures := core.SQLMeasures()
	rows := []SharedInfoRow{
		{Measure: measures[0].Name, Shared: measures[0].Shared},
		{Measure: measures[1].Name, Shared: measures[1].Shared},
	}

	// Result distance without DB content: an empty catalog.
	rc := &distance.ResultComputer{Catalog: db.NewCatalog()}
	_, err = rc.Distance(e.w.Stmts[0], e.w.Stmts[1])
	row := SharedInfoRow{Measure: measures[2].Name, Shared: measures[2].Shared, FailsWithout: "DB-Content"}
	if err != nil {
		row.FailureErr = err.Error()
	}
	rows = append(rows, row)

	// Access-area distance without domains.
	_, err = distance.AccessArea(e.w.Stmts[0], e.w.Stmts[1], distance.AccessAreaParams{Domains: nil})
	row = SharedInfoRow{Measure: measures[3].Name, Shared: measures[3].Shared, FailsWithout: "Domains"}
	if err != nil {
		row.FailureErr = err.Error()
	}
	rows = append(rows, row)
	return rows, nil
}

// RenderSharedInfo prints the E5 outcome.
func RenderSharedInfo(rows []SharedInfoRow) string {
	var sb strings.Builder
	sb.WriteString("E5 — SHARED INFORMATION PER MEASURE (Table I columns)\n\n")
	fmt.Fprintf(&sb, "%-36s | %-40s | %s\n", "Measure", "Shared Information", "Fails without")
	sb.WriteString(strings.Repeat("-", 110) + "\n")
	for _, r := range rows {
		fail := "—"
		if r.FailsWithout != "" {
			fail = fmt.Sprintf("%s (%s)", r.FailsWithout, truncate(r.FailureErr, 40))
		}
		fmt.Fprintf(&sb, "%-36s | %-40s | %s\n", r.Measure, r.Shared, fail)
	}
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
