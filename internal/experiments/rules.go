package experiments

import (
	"fmt"
	"reflect"
	"strings"

	"repro/internal/encdb"
	"repro/internal/mining"
	"repro/internal/sqlfeature"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// --- E6: association-rule mining over encrypted logs (the extension
// the paper's conclusion claims result/structural equivalence enables
// [17]) ---

// RulesReport is the outcome of E6.
type RulesReport struct {
	Transactions  int
	FrequentPlain int
	FrequentEnc   int
	RulesPlain    int
	RulesEnc      int
	// ShapesEqual: the multiset of (antecedent size, support,
	// confidence, lift) tuples is identical on both sides — rule
	// structure and quality survive encryption bit-for-bit.
	ShapesEqual bool
	// TopPlain shows the strongest plaintext rules for the report.
	TopPlain []string
}

// AssociationRules runs E6: mine association rules over the query log's
// feature sets (each query is a transaction of its structural features,
// as in OLAP-log preference mining [17]) on plaintext and on the
// structure-mode encrypted log, then compare.
func AssociationRules(p Params, minSupport int, minConfidence float64) (*RulesReport, error) {
	p = p.withDefaults()
	if minSupport == 0 {
		minSupport = 5
	}
	if minConfidence == 0 {
		minConfidence = 0.8
	}
	e, err := newEnv(p, workload.Config{IncludeAggregates: true, IncludeJoins: true, IncludeLike: true})
	if err != nil {
		return nil, err
	}
	_, encStmts, err := e.encryptLog(encdb.ModeStructure)
	if err != nil {
		return nil, err
	}
	toTxs := func(stmts []*sqlparse.SelectStmt) []mining.Transaction {
		out := make([]mining.Transaction, len(stmts))
		for i, s := range stmts {
			t := make(mining.Transaction)
			for f := range sqlfeature.Features(s) {
				t[f.String()] = true
			}
			out[i] = t
		}
		return out
	}
	plainTxs := toTxs(e.w.Stmts)
	encTxs := toTxs(encStmts)

	pf, err := mining.Apriori(plainTxs, minSupport, 3)
	if err != nil {
		return nil, err
	}
	ef, err := mining.Apriori(encTxs, minSupport, 3)
	if err != nil {
		return nil, err
	}
	pr, err := mining.Rules(pf, len(plainTxs), minConfidence)
	if err != nil {
		return nil, err
	}
	er, err := mining.Rules(ef, len(encTxs), minConfidence)
	if err != nil {
		return nil, err
	}

	rep := &RulesReport{
		Transactions:  len(plainTxs),
		FrequentPlain: len(pf),
		FrequentEnc:   len(ef),
		RulesPlain:    len(pr),
		RulesEnc:      len(er),
		ShapesEqual:   reflect.DeepEqual(mining.Shapes(pr), mining.Shapes(er)),
	}
	for i, r := range pr {
		if i >= 5 {
			break
		}
		rep.TopPlain = append(rep.TopPlain, r.String())
	}
	return rep, nil
}

// RenderRules prints the E6 outcome.
func RenderRules(r *RulesReport) string {
	var sb strings.Builder
	sb.WriteString("E6 — ASSOCIATION-RULE MINING OVER ENCRYPTED LOGS (conclusion's extension, [17])\n\n")
	fmt.Fprintf(&sb, "transactions (queries):          %d\n", r.Transactions)
	fmt.Fprintf(&sb, "frequent itemsets plain / enc:   %d / %d\n", r.FrequentPlain, r.FrequentEnc)
	fmt.Fprintf(&sb, "rules plain / enc:               %d / %d\n", r.RulesPlain, r.RulesEnc)
	fmt.Fprintf(&sb, "rule shapes (size,sup,conf,lift) identical: %v\n\n", r.ShapesEqual)
	sb.WriteString("strongest plaintext rules (owner-side view; the provider sees the same\nrules over encrypted feature names):\n")
	for _, s := range r.TopPlain {
		fmt.Fprintf(&sb, "  %s\n", s)
	}
	return sb.String()
}
