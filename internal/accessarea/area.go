// Package accessarea implements query access areas (Nguyen et al. [16])
// and the interval algebra behind the paper's query-access-area distance
// (Definition 5). The access area of a query Q regarding an attribute A,
// access_A(Q), is the part of A's domain that Q can touch, derived
// symbolically from Q's predicates.
//
// Areas are normalized unions of intervals with open/closed endpoints.
// Crucially, the algebra uses order comparisons only — never arithmetic
// like "c−1" — so applying any strictly increasing map (e.g. OPE
// encryption) to every endpoint preserves emptiness, equality, and
// overlap of areas. That property is exactly what makes the paper's
// access-area DPE-scheme work.
package accessarea

import (
	"fmt"
	"strings"

	"repro/internal/sqlparse"
	"repro/internal/value"
)

// Domain is the inclusive value range of an attribute; both bounds must
// be non-NULL and mutually comparable with the attribute's constants.
type Domain struct {
	Min value.Value
	Max value.Value
}

// Endpoint is one interval bound.
type Endpoint struct {
	V    value.Value
	Open bool // true: value excluded
}

// Interval is a contiguous part of a domain. Invariant (after
// normalization): Lo.V <= Hi.V, and if Lo.V == Hi.V both ends are closed.
type Interval struct {
	Lo Endpoint
	Hi Endpoint
}

// Area is a normalized set of disjoint intervals, sorted by lower bound.
type Area struct {
	ivs []Interval
}

// Empty returns the empty area.
func Empty() Area { return Area{} }

// Whole returns the area covering the full domain.
func Whole(d Domain) Area {
	return NewArea(Interval{Lo: Endpoint{V: d.Min}, Hi: Endpoint{V: d.Max}})
}

// Point returns the single-value area {v}.
func Point(v value.Value) Area {
	return NewArea(Interval{Lo: Endpoint{V: v}, Hi: Endpoint{V: v}})
}

// NewArea builds a normalized area from arbitrary intervals.
func NewArea(ivs ...Interval) Area {
	var a Area
	for _, iv := range ivs {
		if ivEmpty(iv) {
			continue
		}
		a.ivs = append(a.ivs, iv)
	}
	a.normalize()
	return a
}

func ivEmpty(iv Interval) bool {
	c, ok := iv.Lo.V.Compare(iv.Hi.V)
	if !ok {
		return true // incomparable endpoints: treat as empty
	}
	if c > 0 {
		return true
	}
	if c == 0 && (iv.Lo.Open || iv.Hi.Open) {
		return true
	}
	return false
}

// cmpLo orders lower endpoints: smaller value first; at equal values a
// closed bound covers more, so it sorts first.
func cmpLo(a, b Endpoint) int {
	c, _ := a.V.Compare(b.V)
	if c != 0 {
		return c
	}
	switch {
	case a.Open == b.Open:
		return 0
	case a.Open:
		return 1
	default:
		return -1
	}
}

// cmpHi orders upper endpoints: smaller value first; at equal values an
// open bound covers less, so it sorts first.
func cmpHi(a, b Endpoint) int {
	c, _ := a.V.Compare(b.V)
	if c != 0 {
		return c
	}
	switch {
	case a.Open == b.Open:
		return 0
	case a.Open:
		return -1
	default:
		return 1
	}
}

// touchesOrOverlaps reports whether interval b starts no later than "just
// after" a ends, i.e. a ∪ b is contiguous given a.Lo <= b.Lo.
func touchesOrOverlaps(a, b Interval) bool {
	c, _ := b.Lo.V.Compare(a.Hi.V)
	if c < 0 {
		return true
	}
	if c > 0 {
		return false
	}
	// Equal boundary value: contiguous unless both sides exclude it.
	return !(a.Hi.Open && b.Lo.Open)
}

func (a *Area) normalize() {
	if len(a.ivs) == 0 {
		return
	}
	// Insertion sort by lower bound (areas are tiny).
	for i := 1; i < len(a.ivs); i++ {
		for j := i; j > 0 && cmpLo(a.ivs[j].Lo, a.ivs[j-1].Lo) < 0; j-- {
			a.ivs[j], a.ivs[j-1] = a.ivs[j-1], a.ivs[j]
		}
	}
	merged := a.ivs[:1]
	for _, iv := range a.ivs[1:] {
		last := &merged[len(merged)-1]
		if touchesOrOverlaps(*last, iv) {
			if cmpHi(iv.Hi, last.Hi) > 0 {
				last.Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	a.ivs = merged
}

// IsEmpty reports whether the area contains no values.
func (a Area) IsEmpty() bool { return len(a.ivs) == 0 }

// Intervals returns a copy of the normalized interval list.
func (a Area) Intervals() []Interval { return append([]Interval(nil), a.ivs...) }

// Equal reports whether two areas cover exactly the same region.
func (a Area) Equal(b Area) bool {
	if len(a.ivs) != len(b.ivs) {
		return false
	}
	for i := range a.ivs {
		x, y := a.ivs[i], b.ivs[i]
		if cmpLo(x.Lo, y.Lo) != 0 || cmpHi(x.Hi, y.Hi) != 0 {
			return false
		}
	}
	return true
}

// Union returns a ∪ b.
func (a Area) Union(b Area) Area {
	return NewArea(append(a.Intervals(), b.ivs...)...)
}

// Intersect returns a ∩ b.
func (a Area) Intersect(b Area) Area {
	var out []Interval
	for _, x := range a.ivs {
		for _, y := range b.ivs {
			lo := x.Lo
			if cmpLo(y.Lo, lo) > 0 {
				lo = y.Lo
			}
			hi := x.Hi
			if cmpHi(y.Hi, hi) < 0 {
				hi = y.Hi
			}
			iv := Interval{Lo: lo, Hi: hi}
			if !ivEmpty(iv) {
				out = append(out, iv)
			}
		}
	}
	return NewArea(out...)
}

// Overlaps reports whether a ∩ b is non-empty.
func (a Area) Overlaps(b Area) bool { return !a.Intersect(b).IsEmpty() }

// Complement returns d \ a within the inclusive domain d.
func (a Area) Complement(d Domain) Area {
	if a.IsEmpty() {
		return Whole(d)
	}
	var out []Interval
	cursor := Endpoint{V: d.Min} // closed lower frontier
	for _, iv := range a.ivs {
		gap := Interval{Lo: cursor, Hi: Endpoint{V: iv.Lo.V, Open: !iv.Lo.Open}}
		if !ivEmpty(gap) {
			out = append(out, gap)
		}
		cursor = Endpoint{V: iv.Hi.V, Open: !iv.Hi.Open}
	}
	tail := Interval{Lo: cursor, Hi: Endpoint{V: d.Max}}
	if !ivEmpty(tail) {
		out = append(out, tail)
	}
	return NewArea(out...)
}

// String renders the area like "[1,5) ∪ {7} ∪ (9,12]".
func (a Area) String() string {
	if a.IsEmpty() {
		return "∅"
	}
	var parts []string
	for _, iv := range a.ivs {
		if c, _ := iv.Lo.V.Compare(iv.Hi.V); c == 0 {
			parts = append(parts, "{"+iv.Lo.V.String()+"}")
			continue
		}
		lb, rb := "[", "]"
		if iv.Lo.Open {
			lb = "("
		}
		if iv.Hi.Open {
			rb = ")"
		}
		parts = append(parts, fmt.Sprintf("%s%s,%s%s", lb, iv.Lo.V.String(), iv.Hi.V.String(), rb))
	}
	return strings.Join(parts, " ∪ ")
}

// --- extraction from queries ---

// Extract computes access_attr(stmt) given the attribute's domain.
// The attribute is matched by unqualified name (the case-study logs use
// unique attribute names per schema, as does [16]).
//
// The second result reports whether the query accesses the attribute at
// all, i.e. whether attr occurs in any WHERE or JOIN-ON predicate;
// Definition 5 averages δ only over accessed attributes. Per Section IV-C
// of the paper, the SELECT clause has no influence.
func Extract(stmt *sqlparse.SelectStmt, attr string, dom Domain) (Area, bool, error) {
	accessed := AccessedAttributes(stmt)[attr]
	if !accessed {
		return Empty(), false, nil
	}
	area := Whole(dom)
	var err error
	if stmt.Where != nil {
		area, err = extractExpr(stmt.Where, attr, dom)
		if err != nil {
			return Empty(), true, err
		}
	}
	// JOIN ... ON predicates conjoin with WHERE.
	for _, j := range stmt.Joins {
		jArea, jErr := extractExpr(j.On, attr, dom)
		if jErr != nil {
			return Empty(), true, jErr
		}
		area = area.Intersect(jArea)
	}
	return area, true, nil
}

// AccessedAttributes returns the set of unqualified attribute names that
// occur in WHERE or JOIN-ON predicates.
func AccessedAttributes(stmt *sqlparse.SelectStmt) map[string]bool {
	out := make(map[string]bool)
	collect := func(e sqlparse.Expr) {
		sqlparse.Walk(e, func(x sqlparse.Expr) bool {
			if c, ok := x.(*sqlparse.ColumnRef); ok {
				out[c.Name] = true
			}
			return true
		})
	}
	if stmt.Where != nil {
		collect(stmt.Where)
	}
	for _, j := range stmt.Joins {
		collect(j.On)
	}
	return out
}

// extractExpr computes the attr-region a boolean expression can reach.
// Predicates not mentioning attr leave it unconstrained (whole domain).
func extractExpr(e sqlparse.Expr, attr string, dom Domain) (Area, error) {
	switch n := e.(type) {
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND":
			l, err := extractExpr(n.Left, attr, dom)
			if err != nil {
				return Empty(), err
			}
			r, err := extractExpr(n.Right, attr, dom)
			if err != nil {
				return Empty(), err
			}
			return l.Intersect(r), nil
		case "OR":
			l, err := extractExpr(n.Left, attr, dom)
			if err != nil {
				return Empty(), err
			}
			r, err := extractExpr(n.Right, attr, dom)
			if err != nil {
				return Empty(), err
			}
			return l.Union(r), nil
		case "=", "<>", "<", "<=", ">", ">=":
			return extractComparison(n, attr, dom)
		default:
			return Whole(dom), nil
		}

	case *sqlparse.UnaryExpr:
		if n.Op == "NOT" {
			inner, err := extractExpr(n.Expr, attr, dom)
			if err != nil {
				return Empty(), err
			}
			return inner.Complement(dom), nil
		}
		return Whole(dom), nil

	case *sqlparse.InExpr:
		if !isAttr(n.Expr, attr) {
			return Whole(dom), nil
		}
		area := Empty()
		for _, item := range n.List {
			lit, ok := item.(*sqlparse.Literal)
			if !ok {
				return Whole(dom), nil
			}
			area = area.Union(Point(lit.Value))
		}
		if n.Not {
			return area.Complement(dom), nil
		}
		return area, nil

	case *sqlparse.BetweenExpr:
		if !isAttr(n.Expr, attr) {
			return Whole(dom), nil
		}
		lo, okL := n.Lo.(*sqlparse.Literal)
		hi, okH := n.Hi.(*sqlparse.Literal)
		if !okL || !okH {
			return Whole(dom), nil
		}
		area := NewArea(Interval{Lo: Endpoint{V: lo.Value}, Hi: Endpoint{V: hi.Value}})
		if n.Not {
			return area.Complement(dom), nil
		}
		return area, nil

	case *sqlparse.LikeExpr, *sqlparse.IsNullExpr:
		// Not interval-decomposable: conservatively whole domain.
		return Whole(dom), nil

	default:
		return Whole(dom), nil
	}
}

func isAttr(e sqlparse.Expr, attr string) bool {
	c, ok := e.(*sqlparse.ColumnRef)
	return ok && c.Name == attr
}

func extractComparison(n *sqlparse.BinaryExpr, attr string, dom Domain) (Area, error) {
	col, lit, op, ok := normalizeComparison(n, attr)
	if !ok {
		// attr not involved, or attr compared to a non-literal (e.g. a
		// join predicate): unconstrained.
		return Whole(dom), nil
	}
	_ = col
	v := lit.Value
	if v.IsNull() {
		// col <op> NULL is never true: empty access.
		return Empty(), nil
	}
	switch op {
	case "=":
		return Point(v), nil
	case "<>":
		return Point(v).Complement(dom), nil
	case "<":
		return NewArea(Interval{Lo: Endpoint{V: dom.Min}, Hi: Endpoint{V: v, Open: true}}), nil
	case "<=":
		return NewArea(Interval{Lo: Endpoint{V: dom.Min}, Hi: Endpoint{V: v}}), nil
	case ">":
		return NewArea(Interval{Lo: Endpoint{V: v, Open: true}, Hi: Endpoint{V: dom.Max}}), nil
	case ">=":
		return NewArea(Interval{Lo: Endpoint{V: v}, Hi: Endpoint{V: dom.Max}}), nil
	default:
		return Whole(dom), nil
	}
}

// normalizeComparison orients "attr op literal". For "literal op attr"
// the operator is mirrored.
func normalizeComparison(n *sqlparse.BinaryExpr, attr string) (*sqlparse.ColumnRef, *sqlparse.Literal, string, bool) {
	if c, ok := n.Left.(*sqlparse.ColumnRef); ok && c.Name == attr {
		if lit, ok := n.Right.(*sqlparse.Literal); ok {
			return c, lit, n.Op, true
		}
		return nil, nil, "", false
	}
	if c, ok := n.Right.(*sqlparse.ColumnRef); ok && c.Name == attr {
		if lit, ok := n.Left.(*sqlparse.Literal); ok {
			return c, lit, mirror(n.Op), true
		}
	}
	return nil, nil, "", false
}

func mirror(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}
