package accessarea

import (
	"testing"
	"testing/quick"

	"repro/internal/sqlparse"
	"repro/internal/value"
)

var dom = Domain{Min: value.Int(0), Max: value.Int(100)}

func iv(lo int64, loOpen bool, hi int64, hiOpen bool) Interval {
	return Interval{Lo: Endpoint{V: value.Int(lo), Open: loOpen}, Hi: Endpoint{V: value.Int(hi), Open: hiOpen}}
}

func TestEmptyAndWhole(t *testing.T) {
	if !Empty().IsEmpty() {
		t.Fatal("Empty() not empty")
	}
	w := Whole(dom)
	if w.IsEmpty() || len(w.Intervals()) != 1 {
		t.Fatalf("Whole = %v", w)
	}
}

func TestNewAreaDropsEmptyIntervals(t *testing.T) {
	a := NewArea(iv(5, false, 3, false), iv(4, true, 4, false), iv(2, false, 2, false))
	if got := a.String(); got != "{2}" {
		t.Fatalf("area = %s", got)
	}
}

func TestNormalizeMerges(t *testing.T) {
	cases := []struct {
		in   []Interval
		want string
	}{
		{[]Interval{iv(1, false, 5, false), iv(3, false, 8, false)}, "[1,8]"},
		{[]Interval{iv(1, false, 5, false), iv(5, false, 8, false)}, "[1,8]"},
		{[]Interval{iv(1, false, 5, true), iv(5, false, 8, false)}, "[1,8]"},
		{[]Interval{iv(1, false, 5, true), iv(5, true, 8, false)}, "[1,5) ∪ (5,8]"},
		{[]Interval{iv(6, false, 8, false), iv(1, false, 2, false)}, "[1,2] ∪ [6,8]"},
	}
	for _, c := range cases {
		if got := NewArea(c.in...).String(); got != c.want {
			t.Errorf("NewArea(%v) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestEqualSensitivity(t *testing.T) {
	a := NewArea(iv(1, false, 5, false))
	b := NewArea(iv(1, false, 5, true))
	if a.Equal(b) {
		t.Fatal("[1,5] must differ from [1,5)")
	}
	if !a.Equal(NewArea(iv(1, false, 3, false), iv(3, false, 5, false))) {
		t.Fatal("merged equal areas must compare equal")
	}
}

func TestIntersect(t *testing.T) {
	a := NewArea(iv(1, false, 5, false))
	b := NewArea(iv(3, false, 8, false))
	if got := a.Intersect(b).String(); got != "[3,5]" {
		t.Fatalf("intersect = %s", got)
	}
	c := NewArea(iv(6, false, 7, false))
	if !a.Intersect(c).IsEmpty() {
		t.Fatal("disjoint intersect must be empty")
	}
	// Open boundary meeting closed boundary at the same point.
	d := NewArea(iv(5, true, 9, false))
	if !a.Intersect(d).IsEmpty() {
		t.Fatalf("[1,5] ∩ (5,9] = %s, want empty", a.Intersect(d))
	}
	e := NewArea(iv(5, false, 9, false))
	if got := a.Intersect(e).String(); got != "{5}" {
		t.Fatalf("[1,5] ∩ [5,9] = %s, want {5}", got)
	}
}

func TestComplement(t *testing.T) {
	a := Point(value.Int(50))
	c := a.Complement(dom)
	if got := c.String(); got != "[0,50) ∪ (50,100]" {
		t.Fatalf("complement = %s", got)
	}
	// Complement of whole is empty and vice versa.
	if !Whole(dom).Complement(dom).IsEmpty() {
		t.Fatal("complement of whole must be empty")
	}
	if !Empty().Complement(dom).Equal(Whole(dom)) {
		t.Fatal("complement of empty must be whole")
	}
	// Double complement is identity.
	if !c.Complement(dom).Equal(a) {
		t.Fatal("double complement must be identity")
	}
}

func TestOverlaps(t *testing.T) {
	a := NewArea(iv(1, false, 5, false))
	if !a.Overlaps(NewArea(iv(5, false, 9, false))) {
		t.Fatal("[1,5] overlaps [5,9]")
	}
	if a.Overlaps(NewArea(iv(5, true, 9, false))) {
		t.Fatal("[1,5] must not overlap (5,9]")
	}
}

func extract(t *testing.T, q, attr string) (Area, bool) {
	t.Helper()
	a, accessed, err := Extract(sqlparse.MustParse(q), attr, dom)
	if err != nil {
		t.Fatalf("Extract(%q, %s): %v", q, attr, err)
	}
	return a, accessed
}

func TestExtractComparisons(t *testing.T) {
	cases := []struct {
		q    string
		want string
	}{
		{"SELECT a FROM r WHERE x = 5", "{5}"},
		{"SELECT a FROM r WHERE x < 5", "[0,5)"},
		{"SELECT a FROM r WHERE x <= 5", "[0,5]"},
		{"SELECT a FROM r WHERE x > 5", "(5,100]"},
		{"SELECT a FROM r WHERE x >= 5", "[5,100]"},
		{"SELECT a FROM r WHERE x <> 5", "[0,5) ∪ (5,100]"},
		{"SELECT a FROM r WHERE 5 < x", "(5,100]"},
		{"SELECT a FROM r WHERE x BETWEEN 3 AND 7", "[3,7]"},
		{"SELECT a FROM r WHERE x NOT BETWEEN 3 AND 7", "[0,3) ∪ (7,100]"},
		{"SELECT a FROM r WHERE x IN (1, 5, 9)", "{1} ∪ {5} ∪ {9}"},
		{"SELECT a FROM r WHERE x > 2 AND x < 8", "(2,8)"},
		{"SELECT a FROM r WHERE x < 2 OR x > 8", "[0,2) ∪ (8,100]"},
		{"SELECT a FROM r WHERE NOT x = 5", "[0,5) ∪ (5,100]"},
		{"SELECT a FROM r WHERE NOT (x > 2 AND x < 8)", "[0,2] ∪ [8,100]"},
		{"SELECT a FROM r WHERE x = 3 AND y > 100", "{3}"},
		{"SELECT a FROM r WHERE x = 3 OR y > 100", "[0,100]"},
		{"SELECT a FROM r WHERE x > 10 AND x < 5", "∅"},
	}
	for _, c := range cases {
		a, accessed := extract(t, c.q, "x")
		if !accessed {
			t.Errorf("%s: x should be accessed", c.q)
		}
		if got := a.String(); got != c.want {
			t.Errorf("%s: area = %s, want %s", c.q, got, c.want)
		}
	}
}

func TestExtractNotAccessed(t *testing.T) {
	// x only in SELECT: not accessed (Section IV-C: SELECT clause has no
	// influence on the access area).
	_, accessed := extract(t, "SELECT x FROM r WHERE y = 1", "x")
	if accessed {
		t.Fatal("x must not count as accessed from the SELECT clause")
	}
	_, accessed = extract(t, "SELECT SUM(x) FROM r WHERE y = 1", "x")
	if accessed {
		t.Fatal("aggregated SELECT attribute must not count as accessed")
	}
}

func TestExtractJoinPredicate(t *testing.T) {
	a, accessed := extract(t, "SELECT a FROM r JOIN s ON r.x = s.y WHERE s.y > 3", "x")
	if !accessed {
		t.Fatal("x in ON must count as accessed")
	}
	// Column-column predicate leaves x unconstrained.
	if !a.Equal(Whole(dom)) {
		t.Fatalf("area = %s, want whole domain", a)
	}
}

func TestExtractAttributeAbsent(t *testing.T) {
	_, accessed := extract(t, "SELECT a FROM r WHERE y = 1", "z")
	if accessed {
		t.Fatal("z is not in the query")
	}
}

func TestOrderPreservingMapInvariance(t *testing.T) {
	// Core DPE property of the algebra: applying a strictly increasing
	// map to all endpoints preserves equality/overlap/emptiness verdicts.
	queries := []string{
		"SELECT a FROM r WHERE x > 2 AND x < 8",
		"SELECT a FROM r WHERE x BETWEEN 3 AND 7",
		"SELECT a FROM r WHERE x = 5",
		"SELECT a FROM r WHERE x <> 5",
		"SELECT a FROM r WHERE x IN (1, 5, 9)",
		"SELECT a FROM r WHERE x <= 2 OR x >= 9",
	}
	f := func(v int64) value.Value { return value.Int(3*v + 17) } // strictly increasing
	mapArea := func(a Area) Area {
		var ivs []Interval
		for _, i := range a.Intervals() {
			ivs = append(ivs, Interval{
				Lo: Endpoint{V: f(i.Lo.V.AsInt()), Open: i.Lo.Open},
				Hi: Endpoint{V: f(i.Hi.V.AsInt()), Open: i.Hi.Open},
			})
		}
		return NewArea(ivs...)
	}
	var areas []Area
	for _, q := range queries {
		a, _ := extract(t, q, "x")
		areas = append(areas, a)
	}
	for i := range areas {
		for j := range areas {
			plainEq := areas[i].Equal(areas[j])
			plainOv := areas[i].Overlaps(areas[j])
			encEq := mapArea(areas[i]).Equal(mapArea(areas[j]))
			encOv := mapArea(areas[i]).Overlaps(mapArea(areas[j]))
			if plainEq != encEq || plainOv != encOv {
				t.Fatalf("invariance broken between %q and %q: eq %v->%v ov %v->%v",
					queries[i], queries[j], plainEq, encEq, plainOv, encOv)
			}
		}
	}
}

func TestQuickUnionCommutes(t *testing.T) {
	gen := func(lo, span int8, loOpen, hiOpen bool) Area {
		l := int64(lo)
		h := l + int64(span&0x1f)
		return NewArea(Interval{Lo: Endpoint{V: value.Int(l), Open: loOpen}, Hi: Endpoint{V: value.Int(h), Open: hiOpen}})
	}
	f := func(a1, s1 int8, o1, o2 bool, a2, s2 int8, o3, o4 bool) bool {
		x := gen(a1, s1, o1, o2)
		y := gen(a2, s2, o3, o4)
		return x.Union(y).Equal(y.Union(x)) && x.Intersect(y).Equal(y.Intersect(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	d := Domain{Min: value.Int(-50), Max: value.Int(50)}
	gen := func(lo, span int8) Area {
		l := int64(lo) % 40
		h := l + int64(span&0xf)
		return NewArea(Interval{Lo: Endpoint{V: value.Int(l)}, Hi: Endpoint{V: value.Int(h)}})
	}
	f := func(a1, s1, a2, s2 int8) bool {
		x, y := gen(a1, s1), gen(a2, s2)
		lhs := x.Union(y).Complement(d)
		rhs := x.Complement(d).Intersect(y.Complement(d))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
