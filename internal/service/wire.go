// Package service turns the in-process provider session (dpe.Provider)
// into a networked, multi-tenant provider service — the paper's
// deployment model made literal. A data owner encrypts the Table I
// shared artifacts (query log, database contents, attribute domains),
// ships them over the wire to an untrusted dpeserver, and mines on
// ciphertext remotely.
//
// The package has three layers:
//
//   - wire codecs (this file): JSON encodings for the shared artifacts —
//     values, catalogs, domains, the aggregate-evaluation public key,
//     mining specs/results, and a streamed distance-matrix format. The
//     codecs are exact: a value round-trips bit-identically, so distance
//     preservation (Definition 1) survives the network hop.
//   - a session registry (registry.go): concurrency-safe multi-tenant
//     state. A session is created once from a measure plus artifacts;
//     logs are uploaded once and addressed by content hash; the metric's
//     expensive per-log Prepared state is reused across matrix, row, and
//     mine calls through an LRU cache with byte and entry budgets.
//   - HTTP (handler.go, client.go): a stdlib net/http handler exposing
//     the registry under /v1, and a Client whose Session implements
//     dpe.ProviderAPI, so owner-side code runs against a local Provider
//     or a remote dpeserver interchangeably.
package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"net/http"

	dpe "repro"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/value"
)

// WireValue is the JSON form of one SQL value. Exactly one payload field
// is set, matching Kind; bytes (ciphertexts) travel base64-encoded.
// Integers decode through strconv, not float64, so 64-bit ciphertext
// payloads round-trip exactly.
type WireValue struct {
	Kind  string   `json:"kind"`
	Int   *int64   `json:"int,omitempty"`
	Float *float64 `json:"float,omitempty"`
	Str   *string  `json:"str,omitempty"`
	Bytes []byte   `json:"bytes,omitempty"`
}

// EncodeValue converts a value to its wire form.
func EncodeValue(v value.Value) (WireValue, error) {
	switch v.Kind() {
	case value.KindNull:
		return WireValue{Kind: "null"}, nil
	case value.KindInt:
		i := v.AsInt()
		return WireValue{Kind: "int", Int: &i}, nil
	case value.KindFloat:
		f := v.AsFloat()
		return WireValue{Kind: "float", Float: &f}, nil
	case value.KindString:
		s := v.AsString()
		return WireValue{Kind: "str", Str: &s}, nil
	case value.KindBytes:
		return WireValue{Kind: "bytes", Bytes: v.AsBytes()}, nil
	default:
		return WireValue{}, fmt.Errorf("service: unknown value kind %v", v.Kind())
	}
}

// Decode converts the wire form back to a value.
func (w WireValue) Decode() (value.Value, error) {
	switch w.Kind {
	case "null":
		return value.Null(), nil
	case "int":
		if w.Int == nil {
			return value.Value{}, fmt.Errorf("service: int value without payload")
		}
		return value.Int(*w.Int), nil
	case "float":
		if w.Float == nil {
			return value.Value{}, fmt.Errorf("service: float value without payload")
		}
		return value.Float(*w.Float), nil
	case "str":
		if w.Str == nil {
			return value.Value{}, fmt.Errorf("service: str value without payload")
		}
		return value.Str(*w.Str), nil
	case "bytes":
		return value.Bytes(w.Bytes), nil
	default:
		return value.Value{}, fmt.Errorf("service: unknown wire value kind %q", w.Kind)
	}
}

// WireColumn is the JSON form of one table column.
type WireColumn struct {
	Name string `json:"name"`
	Type string `json:"type"` // INT|FLOAT|STRING|BYTES
}

// WireTable is the JSON form of one relation.
type WireTable struct {
	Name    string        `json:"name"`
	Columns []WireColumn  `json:"columns"`
	Rows    [][]WireValue `json:"rows"`
}

// WireCatalog is the JSON form of the DB-Content shared artifact: the
// (encrypted) database the result-distance measure executes over.
type WireCatalog struct {
	Tables []WireTable `json:"tables"`
}

func parseColumnType(s string) (db.ColumnType, error) {
	for _, t := range []db.ColumnType{db.TypeInt, db.TypeFloat, db.TypeString, db.TypeBytes} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("service: unknown column type %q", s)
}

// EncodeCatalog converts a catalog (tables in name order) to wire form.
func EncodeCatalog(c *dpe.Catalog) (*WireCatalog, error) {
	out := &WireCatalog{}
	for _, name := range c.TableNames() {
		t, err := c.Table(name)
		if err != nil {
			return nil, err
		}
		wt := WireTable{Name: name, Columns: make([]WireColumn, len(t.Columns))}
		for i, col := range t.Columns {
			wt.Columns[i] = WireColumn{Name: col.Name, Type: col.Type.String()}
		}
		wt.Rows = make([][]WireValue, len(t.Rows))
		for i, row := range t.Rows {
			wr := make([]WireValue, len(row))
			for j, v := range row {
				wv, err := EncodeValue(v)
				if err != nil {
					return nil, fmt.Errorf("service: table %q row %d: %w", name, i, err)
				}
				wr[j] = wv
			}
			wt.Rows[i] = wr
		}
		out.Tables = append(out.Tables, wt)
	}
	return out, nil
}

// Decode rebuilds the catalog, re-validating every row against its
// table's declared column types.
func (w *WireCatalog) Decode() (*dpe.Catalog, error) {
	cat := db.NewCatalog()
	for _, wt := range w.Tables {
		cols := make([]db.Column, len(wt.Columns))
		for i, wc := range wt.Columns {
			t, err := parseColumnType(wc.Type)
			if err != nil {
				return nil, fmt.Errorf("service: table %q column %q: %w", wt.Name, wc.Name, err)
			}
			cols[i] = db.Column{Name: wc.Name, Type: t}
		}
		table, err := cat.Create(wt.Name, cols)
		if err != nil {
			return nil, err
		}
		for i, wr := range wt.Rows {
			row := make(db.Row, len(wr))
			for j, wv := range wr {
				v, err := wv.Decode()
				if err != nil {
					return nil, fmt.Errorf("service: table %q row %d: %w", wt.Name, i, err)
				}
				row[j] = v
			}
			if err := table.Insert(row); err != nil {
				return nil, fmt.Errorf("service: table %q row %d: %w", wt.Name, i, err)
			}
		}
	}
	return cat, nil
}

// WireDomain is the JSON form of one attribute domain (the Domains
// shared artifact of the access-area measure).
type WireDomain struct {
	Min WireValue `json:"min"`
	Max WireValue `json:"max"`
}

// EncodeDomains converts a domain map to wire form.
func EncodeDomains(domains map[string]dpe.Domain) (map[string]WireDomain, error) {
	out := make(map[string]WireDomain, len(domains))
	for attr, d := range domains {
		min, err := EncodeValue(d.Min)
		if err != nil {
			return nil, fmt.Errorf("service: domain %q: %w", attr, err)
		}
		max, err := EncodeValue(d.Max)
		if err != nil {
			return nil, fmt.Errorf("service: domain %q: %w", attr, err)
		}
		out[attr] = WireDomain{Min: min, Max: max}
	}
	return out, nil
}

// DecodeDomains is the inverse of EncodeDomains.
func DecodeDomains(domains map[string]WireDomain) (map[string]dpe.Domain, error) {
	out := make(map[string]dpe.Domain, len(domains))
	for attr, wd := range domains {
		min, err := wd.Min.Decode()
		if err != nil {
			return nil, fmt.Errorf("service: domain %q: %w", attr, err)
		}
		max, err := wd.Max.Decode()
		if err != nil {
			return nil, fmt.Errorf("service: domain %q: %w", attr, err)
		}
		out[attr] = dpe.Domain{Min: min, Max: max}
	}
	return out, nil
}

// WireAggregatorKey is the JSON form of the owner's aggregate-evaluation
// public key (Paillier modulus). It carries no secret.
type WireAggregatorKey struct {
	N []byte `json:"n"`
}

// EncodeAggregatorKey converts the public key to wire form.
func EncodeAggregatorKey(pk *dpe.AggregatorKey) *WireAggregatorKey {
	return &WireAggregatorKey{N: pk.N.Bytes()}
}

// Decode rebuilds the public key (recomputing n²).
func (w *WireAggregatorKey) Decode() (*dpe.AggregatorKey, error) {
	n := new(big.Int).SetBytes(w.N)
	if n.Sign() <= 0 {
		return nil, fmt.Errorf("service: aggregator key modulus must be positive")
	}
	return &dpe.AggregatorKey{N: n, N2: new(big.Int).Mul(n, n)}, nil
}

// WireMineSpec is the JSON form of a mining request's parameters. The
// algorithm travels as its canonical name ("k-medoids", "dbscan", ...)
// and is required: a pointer so an absent (or misspelled) field is an
// error instead of silently defaulting to k-medoids.
type WireMineSpec struct {
	Algorithm   *dpe.MiningAlgorithm `json:"algorithm"`
	K           int                  `json:"k,omitempty"`
	Eps         float64              `json:"eps,omitempty"`
	MinPts      int                  `json:"min_pts,omitempty"`
	P           float64              `json:"p,omitempty"`
	D           float64              `json:"d,omitempty"`
	Query       int                  `json:"query,omitempty"`
	MinSupport  int                  `json:"min_support,omitempty"`
	MaxLen      int                  `json:"max_len,omitempty"`
	Approximate bool                 `json:"approximate,omitempty"`
}

// EncodeMineSpec converts a spec to wire form.
func EncodeMineSpec(s dpe.MineSpec) WireMineSpec {
	return WireMineSpec{Algorithm: &s.Algorithm, K: s.K, Eps: s.Eps,
		MinPts: s.MinPts, P: s.P, D: s.D, Query: s.Query,
		MinSupport: s.MinSupport, MaxLen: s.MaxLen, Approximate: s.Approximate}
}

// Decode converts the wire form back to a spec, rejecting a spec with
// no algorithm.
func (w WireMineSpec) Decode() (dpe.MineSpec, error) {
	if w.Algorithm == nil {
		return dpe.MineSpec{}, fmt.Errorf("service: mine spec is missing the algorithm (want k-medoids|dbscan|complete-link|outliers|knn|apriori)")
	}
	return dpe.MineSpec{Algorithm: *w.Algorithm, K: w.K, Eps: w.Eps,
		MinPts: w.MinPts, P: w.P, D: w.D, Query: w.Query,
		MinSupport: w.MinSupport, MaxLen: w.MaxLen, Approximate: w.Approximate}, nil
}

// WireClusters is the JSON form of a k-medoids result.
type WireClusters struct {
	Medoids    []int   `json:"medoids"`
	Assign     []int   `json:"assign"`
	Cost       float64 `json:"cost"`
	Iterations int     `json:"iterations"`
}

// WireItemset is the JSON form of one frequent itemset.
type WireItemset struct {
	Items   []string `json:"items"`
	Support int      `json:"support"`
}

// WireIncrementalStats is the JSON form of an incremental-mining
// call's work counters and label delta.
type WireIncrementalStats struct {
	Warm          bool  `json:"warm"`
	ColdFallback  bool  `json:"cold_fallback,omitempty"`
	OldN          int   `json:"old_n"`
	PairsComputed int64 `json:"pairs_computed"`
	Examined      int64 `json:"examined"`
	ChangedLabels []int `json:"changed_labels,omitempty"`
}

// WireMineResult is the JSON form of a mining response: the distance
// matrix (absent for approximate and apriori runs, which never build
// it) plus exactly one algorithm-specific field. CandidatePairs
// reports an approximate run's pair budget; Incremental appears only
// on append_mine responses.
type WireMineResult struct {
	Matrix         [][]float64           `json:"matrix"`
	Clusters       *WireClusters         `json:"clusters,omitempty"`
	Labels         []int                 `json:"labels,omitempty"`
	Outliers       []bool                `json:"outliers,omitempty"`
	Neighbors      []int                 `json:"neighbors,omitempty"`
	Itemsets       []WireItemset         `json:"itemsets,omitempty"`
	CandidatePairs int                   `json:"candidate_pairs,omitempty"`
	Incremental    *WireIncrementalStats `json:"incremental,omitempty"`
}

// EncodeMineResult converts a mining result to wire form.
func EncodeMineResult(r *dpe.MineResult) *WireMineResult {
	out := &WireMineResult{
		Matrix:         r.Matrix,
		Labels:         r.Labels,
		Outliers:       r.Outliers,
		Neighbors:      r.Neighbors,
		CandidatePairs: r.CandidatePairs,
	}
	if r.Clusters != nil {
		out.Clusters = &WireClusters{
			Medoids:    r.Clusters.Medoids,
			Assign:     r.Clusters.Assign,
			Cost:       r.Clusters.Cost,
			Iterations: r.Clusters.Iterations,
		}
	}
	for _, fs := range r.Itemsets {
		out.Itemsets = append(out.Itemsets, WireItemset{Items: fs.Items, Support: fs.Support})
	}
	if r.Incremental != nil {
		out.Incremental = &WireIncrementalStats{
			Warm:          r.Incremental.Warm,
			ColdFallback:  r.Incremental.ColdFallback,
			OldN:          r.Incremental.OldN,
			PairsComputed: r.Incremental.PairsComputed,
			Examined:      r.Incremental.Examined,
			ChangedLabels: r.Incremental.ChangedLabels,
		}
	}
	return out
}

// Decode converts the wire form back to a mining result.
func (w *WireMineResult) Decode() *dpe.MineResult {
	out := &dpe.MineResult{
		Matrix:         w.Matrix,
		Labels:         w.Labels,
		Outliers:       w.Outliers,
		Neighbors:      w.Neighbors,
		CandidatePairs: w.CandidatePairs,
	}
	if w.Clusters != nil {
		out.Clusters = &dpe.KMedoidsResult{
			Medoids:    w.Clusters.Medoids,
			Assign:     w.Clusters.Assign,
			Cost:       w.Clusters.Cost,
			Iterations: w.Clusters.Iterations,
		}
	}
	for _, fs := range w.Itemsets {
		out.Itemsets = append(out.Itemsets, dpe.FrequentItemset{Items: fs.Items, Support: fs.Support})
	}
	if w.Incremental != nil {
		out.Incremental = &dpe.IncrementalStats{
			Warm:          w.Incremental.Warm,
			ColdFallback:  w.Incremental.ColdFallback,
			OldN:          w.Incremental.OldN,
			PairsComputed: w.Incremental.PairsComputed,
			Examined:      w.Incremental.Examined,
			ChangedLabels: w.Incremental.ChangedLabels,
		}
	}
	return out
}

// WireCounterExample is the JSON form of one Definition 1 violation.
type WireCounterExample struct {
	I     int     `json:"i"`
	J     int     `json:"j"`
	Plain float64 `json:"plain"`
	Enc   float64 `json:"enc"`
}

// WirePreservationReport is the JSON form of a Definition 1 check.
type WirePreservationReport struct {
	Pairs           int                  `json:"pairs"`
	MaxAbsError     float64              `json:"max_abs_error"`
	Preserved       bool                 `json:"preserved"`
	CounterExamples []WireCounterExample `json:"counter_examples,omitempty"`
	Error           string               `json:"error,omitempty"`
}

// EncodePreservationReport converts a report to wire form.
func EncodePreservationReport(r *dpe.PreservationReport) *WirePreservationReport {
	out := &WirePreservationReport{
		Pairs:       r.Pairs,
		MaxAbsError: r.MaxAbsError,
		Preserved:   r.Preserved,
		Error:       r.Error,
	}
	for _, ce := range r.CounterExamples {
		out.CounterExamples = append(out.CounterExamples,
			WireCounterExample{I: ce.I, J: ce.J, Plain: ce.Plain, Enc: ce.Enc})
	}
	return out
}

// Decode converts the wire form back to a report.
func (w *WirePreservationReport) Decode() *dpe.PreservationReport {
	out := &dpe.PreservationReport{
		Pairs:       w.Pairs,
		MaxAbsError: w.MaxAbsError,
		Preserved:   w.Preserved,
		Error:       w.Error,
	}
	for _, ce := range w.CounterExamples {
		out.CounterExamples = append(out.CounterExamples,
			core.CounterExample{I: ce.I, J: ce.J, Plain: ce.Plain, Enc: ce.Enc})
	}
	return out
}

// matrixFlushEvery is how many streamed matrix rows are written between
// flushes to the client.
const matrixFlushEvery = 64

// WriteMatrix streams a distance matrix as JSON — {"n":N,"rows":[...]}
// — row by row, flushing every matrixFlushEvery rows when the writer
// supports it (http.Flusher). Large matrices reach the client
// incrementally instead of being buffered whole.
func WriteMatrix(w io.Writer, m dpe.Matrix) error {
	flusher, _ := w.(http.Flusher)
	if _, err := fmt.Fprintf(w, `{"n":%d,"rows":[`, len(m)); err != nil {
		return err
	}
	for i, row := range m {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		b, err := json.Marshal(row)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
		if flusher != nil && (i+1)%matrixFlushEvery == 0 {
			flusher.Flush()
		}
	}
	_, err := io.WriteString(w, "]}")
	return err
}

// wireMatrix mirrors the WriteMatrix stream for decoding.
type wireMatrix struct {
	N    int         `json:"n"`
	Rows [][]float64 `json:"rows"`
}

// AppendedRows is the logs:append response: only the k new full-width
// rows of the extended matrix travel over the wire (rows Offset..N-1),
// never the unchanged old block — for a large session log the append
// payload is O(n·k), not O(n²). Log is the combined log's
// content-addressed id, for follow-up calls on the grown log.
type AppendedRows struct {
	Log    string      `json:"log"`
	N      int         `json:"n"`
	Offset int         `json:"offset"`
	Rows   [][]float64 `json:"rows"`
}

// WriteAppendedRows streams an append response row by row, flushing
// like WriteMatrix so large appends reach the client incrementally.
func WriteAppendedRows(w io.Writer, logID string, total, offset int, rows [][]float64) error {
	flusher, _ := w.(http.Flusher)
	if _, err := fmt.Fprintf(w, `{"log":%q,"n":%d,"offset":%d,"rows":[`, logID, total, offset); err != nil {
		return err
	}
	for i, row := range rows {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		b, err := json.Marshal(row)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
		if flusher != nil && (i+1)%matrixFlushEvery == 0 {
			flusher.Flush()
		}
	}
	_, err := io.WriteString(w, "]}")
	return err
}

// ReadAppendedRows decodes a WriteAppendedRows stream, validating that
// the row count and widths match the header.
func ReadAppendedRows(r io.Reader) (*AppendedRows, error) {
	var a AppendedRows
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("service: decoding appended rows: %w", err)
	}
	if a.Offset < 0 || a.N < a.Offset {
		return nil, fmt.Errorf("service: appended rows span %d..%d", a.Offset, a.N)
	}
	if len(a.Rows) != a.N-a.Offset {
		return nil, fmt.Errorf("service: %d appended rows, header says %d", len(a.Rows), a.N-a.Offset)
	}
	for i, row := range a.Rows {
		if len(row) != a.N {
			return nil, fmt.Errorf("service: appended row %d has %d entries, want %d", i, len(row), a.N)
		}
	}
	return &a, nil
}

// ReadMatrix decodes a WriteMatrix stream, validating the dimensions.
func ReadMatrix(r io.Reader) (dpe.Matrix, error) {
	var w wireMatrix
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("service: decoding matrix: %w", err)
	}
	if len(w.Rows) != w.N {
		return nil, fmt.Errorf("service: matrix has %d rows, header says %d", len(w.Rows), w.N)
	}
	for i, row := range w.Rows {
		if len(row) != w.N {
			return nil, fmt.Errorf("service: matrix row %d has %d entries, want %d", i, len(row), w.N)
		}
	}
	return dpe.Matrix(w.Rows), nil
}
