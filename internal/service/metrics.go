package service

import (
	"context"
	"strconv"
	"time"

	"repro/internal/obs"
)

// stageNames is the closed set of provider pipeline stages the registry
// observes. Histograms are pre-registered for all of them at wire-up
// time, so a typo'd stage name at an observation site drops the sample
// (nil histogram) instead of minting an unreviewed series.
var stageNames = []string{
	"prepare",       // per-query work: tokenize, parse, execute
	"matrix",        // pairwise fan-out over the triangle
	"append_extend", // incremental prepared-state extension
	"append_rows",   // the n·k + k·(k−1)/2 new-entry block
	"approx_index",  // MinHash signing + LSH banding
	"rerank",        // exact re-ranking of LSH candidates
	"mine",          // mining pass (includes its matrix build)
	"mine_delta",    // incremental mining: appended pairs + warm start
}

// registryMetrics is the registry's slice of the obs wiring. Every
// field is nil on an uninstrumented registry — obs instruments no-op on
// nil receivers, so call sites never branch on whether metrics are on.
type registryMetrics struct {
	sessionsCreated *obs.Counter
	sessionsDeleted *obs.Counter
	sessionsReaped  *obs.Counter
	flightDedups    *obs.Counter
	inflightBuilds  *obs.Gauge
	evictDelete     *obs.Counter
	evictReap       *obs.Counter
	// stages maps a stage name to its latency histogram; read-only
	// after wireMetrics, so lookups need no lock.
	stages map[string]*obs.Histogram
}

// cacheTotals sums the shard caches' monotonic counters — the single
// source both GET /v1/stats and the /metrics cache series read, which
// is what makes the two views reconcile exactly (the regression test
// TestStatsAndMetricsAgree holds this).
func (r *Registry) cacheTotals() CacheStats {
	var out CacheStats
	for _, sh := range r.shards {
		cs := sh.cache.stats()
		out.Entries += cs.Entries
		out.Bytes += cs.Bytes
		out.Hits += cs.Hits
		out.Misses += cs.Misses
		out.Evictions += cs.Evictions
	}
	return out
}

// wireMetrics registers the registry's instruments on o. It runs inside
// OpenRegistry after journal replay (recovery work never pollutes the
// serving counters) and before the janitors start (which read the
// reap/eviction counters). Registering the same names twice on one obs
// registry panics — the duplicate-metric lint CI runs.
func (r *Registry) wireMetrics(o *obs.Registry) {
	m := &r.metrics
	m.sessionsCreated = o.Counter("dpe_sessions_created_total", "Sessions created via the API.")
	m.sessionsDeleted = o.Counter("dpe_sessions_deleted_total", "Sessions deleted via the API.")
	m.sessionsReaped = o.Counter("dpe_sessions_reaped_total", "Idle sessions reaped by the TTL janitor or capacity pressure.")
	m.flightDedups = o.Counter("dpe_singleflight_dedups_total", "Cold builds coalesced onto another caller's in-flight build.")
	m.inflightBuilds = o.Gauge("dpe_inflight_builds", "Leader prepare/index builds currently running.")
	m.evictDelete = o.Counter("dpe_cache_evictions_total", "Cache entries evicted, by cause.", "cause", "session_delete")
	m.evictReap = o.Counter("dpe_cache_evictions_total", "Cache entries evicted, by cause.", "cause", "ttl_reap")
	o.CounterFunc("dpe_cache_evictions_total", "Cache entries evicted, by cause.",
		func() float64 { return float64(r.cacheTotals().Evictions) }, "cause", "budget")

	o.GaugeFunc("dpe_sessions", "Live sessions across all shards.",
		func() float64 { return float64(r.live.Load()) })
	o.GaugeFunc("dpe_sessions_limit", "Configured MaxSessions capacity.",
		func() float64 { return float64(r.cfg.MaxSessions) })
	o.GaugeFunc("dpe_cache_entries", "Prepared-state cache entries across all shards.",
		func() float64 { return float64(r.cacheTotals().Entries) })
	o.GaugeFunc("dpe_cache_bytes", "Estimated prepared-state cache bytes across all shards.",
		func() float64 { return float64(r.cacheTotals().Bytes) })
	o.CounterFunc("dpe_cache_hits_total", "Prepared-state cache hits across all shards.",
		func() float64 { return float64(r.cacheTotals().Hits) })
	o.CounterFunc("dpe_cache_misses_total", "Prepared-state cache misses across all shards.",
		func() float64 { return float64(r.cacheTotals().Misses) })
	o.CounterFunc("dpe_mine_state_hits_total", "Mining-state cache hits on the append_mine path.",
		func() float64 { return float64(r.mineStateHits.Load()) })
	o.CounterFunc("dpe_mine_state_misses_total", "Mining-state cache misses on the append_mine path.",
		func() float64 { return float64(r.mineStateMisses.Load()) })
	for i, sh := range r.shards {
		o.GaugeFunc("dpe_shard_sessions", "Live sessions on one shard.",
			func() float64 { return float64(sh.sessionCount()) }, "shard", strconv.Itoa(i))
	}

	m.stages = make(map[string]*obs.Histogram, len(stageNames))
	for _, name := range stageNames {
		m.stages[name] = o.Histogram("dpe_stage_duration_seconds",
			"Latency of one provider pipeline stage.", nil, "stage", name)
	}
}

// observeStage is the registry's dpe.StageObserver (threaded into every
// provider it builds): it feeds the per-stage histogram and, when the
// request carries a trace, records the span for slow-request logging.
// Safe on an uninstrumented registry — the histogram lookup on a nil
// map yields a nil histogram, and a nil trace absorbs Add.
func (r *Registry) observeStage(ctx context.Context, stage string, d time.Duration) {
	r.metrics.stages[stage].Observe(d.Seconds())
	obs.TraceFromContext(ctx).Add(stage, d)
}
