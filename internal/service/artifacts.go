package service

import (
	dpe "repro"
)

// EncryptedArtifactOptions encrypts the Table I shared artifacts a
// measure needs (DB content for the result measure, attribute domains
// for the access-area measure) and returns matching option slices for
// both provider shapes — in-process (dpe.NewProvider) and remote
// (Client.NewSession) — built from the same ciphertext, so the two are
// interchangeable. Log-only measures need no artifacts and get empty
// slices.
func EncryptedArtifactOptions(owner *dpe.Owner, w *dpe.Workload, m dpe.Measure) ([]dpe.ProviderOption, []SessionOption, error) {
	switch m {
	case dpe.MeasureResult:
		encCat, err := owner.EncryptCatalog(w.Catalog)
		if err != nil {
			return nil, nil, err
		}
		return []dpe.ProviderOption{dpe.WithCatalog(encCat, owner.ResultAggregator())},
			[]SessionOption{WithCatalog(encCat, owner.ResultAggregatorKey())}, nil
	case dpe.MeasureAccessArea:
		encDomains, err := owner.EncryptDomains(w.Domains)
		if err != nil {
			return nil, nil, err
		}
		return []dpe.ProviderOption{dpe.WithDomains(encDomains)},
			[]SessionOption{WithDomains(encDomains)}, nil
	}
	return nil, nil, nil
}
