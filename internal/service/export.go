package service

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/store/journal"
)

// Tenant export/import: one session's complete server-side state — the
// create request, its uploaded logs, and the cached prepared-state /
// approx-index / mining-state blobs — rendered as a portable,
// CRC-checked bundle file (see journal's bundle format). Export reuses
// collectSession, the same serializer journal compaction uses, so a
// bundle holds exactly what a compacted journal would; import replays
// it through the same typed codecs, so a restored session answers its
// first requests warm (cache hits, warm mining deltas) just like a
// restarted server.

// ImportResult reports what an import restored — the wire body of POST
// /v1/sessions:import.
type ImportResult struct {
	// Session is the restored session's id: bundles preserve ids, so
	// client-side references (and mining-state cache keys) stay valid.
	Session string `json:"session"`
	// Logs counts restored query logs; Snapshots, ApproxIndexes, and
	// MineStates count the cache entries restored warm.
	Logs          int `json:"logs"`
	Snapshots     int `json:"snapshots"`
	ApproxIndexes int `json:"approx_indexes"`
	MineStates    int `json:"mine_states"`
	// Skipped counts records that decoded but could not be applied —
	// e.g. a blob whose codec this binary no longer understands. The
	// session still imports; the skipped entries rebuild on demand.
	Skipped int `json:"skipped"`
}

// ExportSession streams one live session's state as a bundle to w. The
// snapshot is taken under the session's own locks (briefly), not the
// journal's — exporting never blocks other tenants' writes — and works
// on in-memory registries too: the bundle, not the journal, is the
// persistence being produced.
func (r *Registry) ExportSession(id string, w io.Writer) error {
	sh := r.shardFor(id)
	s := sh.session(id)
	if s == nil {
		return notFoundError{fmt.Errorf("service: unknown session %q", id)}
	}
	bw, err := journal.NewBundleWriter(w)
	if err != nil {
		return err
	}
	recs := collectSession(sh, s)
	if len(recs) == 0 {
		return fmt.Errorf("service: session %q has no exportable state", id)
	}
	for _, rec := range recs {
		if err := bw.Append(rec); err != nil {
			return err
		}
	}
	return bw.Close()
}

// bundleContents collects a bundle's typed records so ImportSession can
// validate the whole file before touching registry state. The journal
// dispatcher has already decoded (and version-checked) every record;
// the collector just sorts them by kind.
type bundleContents struct {
	sessions  []journal.Session
	logs      []journal.Log
	snapshots []journal.Snapshot
	approxes  []journal.Approx
	minings   []journal.Mining
	deletes   int
}

func (c *bundleContents) Session(s journal.Session) journal.Outcome {
	c.sessions = append(c.sessions, s)
	return journal.Applied
}

func (c *bundleContents) Delete(journal.Delete) journal.Outcome {
	c.deletes++
	return journal.Applied
}

func (c *bundleContents) Log(l journal.Log) journal.Outcome {
	c.logs = append(c.logs, l)
	return journal.Applied
}

func (c *bundleContents) Snapshot(s journal.Snapshot) journal.Outcome {
	c.snapshots = append(c.snapshots, s)
	return journal.Applied
}

func (c *bundleContents) Approx(a journal.Approx) journal.Outcome {
	c.approxes = append(c.approxes, a)
	return journal.Applied
}

func (c *bundleContents) Mining(m journal.Mining) journal.Outcome {
	c.minings = append(c.minings, m)
	return journal.Applied
}

// ImportSession restores one exported session from rd. The bundle must
// carry exactly one session, its id must not be live here, and the
// registry's capacity and per-session budgets apply as if the tenant
// had re-created and re-uploaded everything — violating any of them
// fails the import with no state change. Cached blobs restore
// best-effort (a stale codec skips the entry, never the import). On a
// persistent registry the restored state is journaled durably before
// ImportSession returns.
func (r *Registry) ImportSession(rd io.Reader) (*ImportResult, error) {
	var c bundleContents
	st, err := journal.ReadBundle(rd, &c)
	if err != nil {
		return nil, err
	}
	if len(c.sessions) == 0 {
		return nil, fmt.Errorf("service: bundle has no session record")
	}
	if len(c.sessions) > 1 {
		return nil, fmt.Errorf("service: bundle has %d session records, want exactly 1", len(c.sessions))
	}
	if c.deletes > 0 {
		return nil, fmt.Errorf("service: bundle contains tombstones (not a tenant export)")
	}
	js := c.sessions[0]
	var req CreateSessionRequest
	if err := json.Unmarshal(js.Request, &req); err != nil || req.Measure == nil {
		return nil, fmt.Errorf("service: bundle session record has an invalid create request")
	}
	for _, l := range c.logs {
		if l.SessionID != js.ID {
			return nil, fmt.Errorf("service: bundle log %q belongs to session %q, not %q", l.LogID, l.SessionID, js.ID)
		}
	}
	cfg := r.cfg
	if len(c.logs) > cfg.MaxLogsPerSession {
		return nil, fmt.Errorf("service: bundle has %d logs, over the per-session limit of %d", len(c.logs), cfg.MaxLogsPerSession)
	}
	var logBytes int64
	seen := make(map[string]bool, len(c.logs))
	for _, l := range c.logs {
		if seen[l.LogID] {
			return nil, fmt.Errorf("service: bundle repeats log %q", l.LogID)
		}
		seen[l.LogID] = true
		for _, q := range l.Queries {
			logBytes += int64(len(q))
		}
	}
	if logBytes > cfg.MaxLogBytesPerSession {
		return nil, fmt.Errorf("service: bundle logs total %d bytes, over the per-session budget of %d", logBytes, cfg.MaxLogBytesPerSession)
	}

	sh := r.shardFor(js.ID)
	if sh.session(js.ID) != nil {
		return nil, fmt.Errorf("service: session %q is already live here (delete it before importing)", js.ID)
	}
	provider, err := buildProvider(&req, cfg.Parallelism, r.observeStage)
	if err != nil {
		return nil, fmt.Errorf("service: rebuilding bundle session provider: %w", err)
	}

	now := time.Now()
	if int(r.live.Load()) >= cfg.MaxSessions {
		r.reapIdle(now)
	}
	for {
		n := r.live.Load()
		if int(n) >= cfg.MaxSessions {
			return nil, fmt.Errorf("%w (%d live)", errTooManySessions, n)
		}
		if r.live.CompareAndSwap(n, n+1) {
			break
		}
	}
	s := &session{
		id:         js.ID,
		measure:    *req.Measure,
		provider:   provider,
		reg:        r,
		sh:         sh,
		logs:       make(map[string][]string, len(c.logs)),
		created:    js.Created,
		lastUsed:   now,
		persistReq: js.Request,
	}
	for _, l := range c.logs {
		s.logs[l.LogID] = l.Queries
	}
	s.logBytes = logBytes
	sh.put(s)

	res := &ImportResult{Session: js.ID, Logs: len(c.logs), Skipped: st.Skipped}
	// Warm the caches from the blob records, reusing the replay
	// handler's apply rules (same decode checks, same keys, same byte
	// accounting).
	apply := replayApplier{r}
	for _, sn := range c.snapshots {
		switch apply.Snapshot(sn) {
		case journal.Applied:
			res.Snapshots++
		case journal.Skipped:
			res.Skipped++
		}
	}
	for _, ap := range c.approxes {
		switch apply.Approx(ap) {
		case journal.Applied:
			res.ApproxIndexes++
		case journal.Skipped:
			res.Skipped++
		}
	}
	for _, m := range c.minings {
		switch apply.Mining(m) {
		case journal.Applied:
			res.MineStates++
		case journal.Skipped:
			res.Skipped++
		}
	}

	if r.persistent {
		if err := sh.journal.Append(journal.Session{ID: js.ID, Created: js.Created, Request: js.Request}); err != nil {
			sh.remove(js.ID)
			sh.cache.removePrefix(js.ID + "\x00")
			r.live.Add(-1)
			return nil, fmt.Errorf("service: journaling imported session: %w", err)
		}
		for _, l := range c.logs {
			if err := sh.journal.Append(l); err != nil {
				sh.remove(js.ID)
				sh.cache.removePrefix(js.ID + "\x00")
				r.live.Add(-1)
				return nil, fmt.Errorf("service: journaling imported log: %w", err)
			}
		}
		// The warm cache entries are a recoverable optimization: journal
		// them best-effort, like the write-through hooks.
		for _, sn := range c.snapshots {
			sh.journal.Append(sn)
		}
		for _, ap := range c.approxes {
			sh.journal.Append(ap)
		}
		for _, m := range c.minings {
			sh.journal.Append(m)
		}
		// If this id ever lived (and was tombstoned) on this server, the
		// old tombstone now precedes the fresh create in the journal and
		// replayDeleted would block the restore at the next boot.
		// Compacting the shard rewrites it down to live state, dropping
		// any such tombstone. Best-effort — the janitor compacts later
		// anyway, and until then a re-imported previously-deleted id is
		// the only state at risk.
		r.compactShard(sh)
	}
	r.metrics.sessionsCreated.Inc()
	return res, nil
}
