package service

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	dpe "repro"
	"repro/internal/mining"
)

// TestMineStateSurvivesRestart is the tentpole's persistence check: an
// append_mine populates a mining state, the registry is killed and
// reopened from its journals, and the first post-restart append_mine
// must run warm from the replayed state — no cold bootstrap — while
// agreeing with a cold mine over the same log.
func TestMineStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(persistentConfig(t, dir, 4))
	ctx := context.Background()
	token := dpe.MeasureToken
	log := clusteredLog()
	spec := dpe.MineSpec{Algorithm: dpe.MineDBSCAN, Eps: 0.4, MinPts: 2}

	s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatal(err)
	}
	baseID, err := s.AddLog(log[:8])
	if err != nil {
		t.Fatal(err)
	}
	combinedID, _, _, res, err := s.AppendMine(ctx, baseID, log[8:10], spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental == nil || res.Incremental.Warm {
		t.Fatalf("first append_mine must bootstrap cold, got %+v", res.Incremental)
	}
	id := s.ID()
	reg.Close()

	reg2, err := OpenRegistry(persistentConfig(t, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rec := reg2.Recovery(); rec.MineStates < 1 {
		t.Fatalf("recovery replayed %d mining states, want >= 1 (%+v)", rec.MineStates, rec)
	}
	s2, err := reg2.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	combined2, _, _, res2, err := s2.AppendMine(ctx, combinedID, log[10:12], spec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Incremental == nil || !res2.Incremental.Warm || res2.Incremental.ColdFallback {
		t.Fatalf("first post-restart append_mine must run warm from the replayed state, got %+v",
			res2.Incremental)
	}
	if res2.Incremental.OldN != 10 {
		t.Errorf("warm run extended %d rows, want the pre-restart 10", res2.Incremental.OldN)
	}

	// The warm continuation must agree with a cold mine of the full log.
	cold, err := s2.Mine(ctx, combined2, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mining.CanonicalLabels(res2.Labels), mining.CanonicalLabels(cold.Labels)) {
		t.Errorf("post-restart warm labels %v differ from cold labels %v", res2.Labels, cold.Labels)
	}

	// Replaying the identical append_mine hits the combined state
	// outright: a zero-delta warm run, no pairs computed.
	_, _, _, res3, err := s2.AppendMine(ctx, combinedID, log[10:12], spec)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Incremental == nil || !res3.Incremental.Warm || res3.Incremental.PairsComputed != 0 {
		t.Errorf("replayed append_mine should be a zero-delta warm hit, got %+v", res3.Incremental)
	}
	if stats := s2.Stats(); stats.MineStateHits != 1 {
		t.Errorf("post-restart mine-state hits = %d, want 1 (the zero-delta replay)", stats.MineStateHits)
	}
}

// TestAppendMineChurn races batched append_mine traffic against stats
// polling and janitor ticks across a sharded registry — the CI -race
// check for the incremental-mining path's locking: the mining-state
// singleflight, the shard LRU, and the registry counters.
func TestAppendMineChurn(t *testing.T) {
	reg := NewRegistry(Config{
		Shards:          4,
		MaxSessions:     64,
		CacheEntries:    16,
		JanitorInterval: time.Millisecond,
		SessionTTL:      time.Hour,
	})
	defer reg.Close()
	ctx := context.Background()
	token := dpe.MeasureToken
	log := clusteredLog()
	spec := dpe.MineSpec{Algorithm: dpe.MineDBSCAN, Eps: 0.4, MinPts: 2}

	// Shared sessions: identical append_mine calls race the mining
	// singleflight and the hit counters.
	const sharedSessions = 3
	shared := make([]*session, sharedSessions)
	for i := range shared {
		s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddLog(log[:8]); err != nil {
			t.Fatal(err)
		}
		shared[i] = s
	}
	baseID := LogID(log[:8])

	const (
		workers = 8
		iters   = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	fail := func(format string, args ...any) { errs <- fmt.Errorf(format, args...) }

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := shared[(w+i)%sharedSessions]
				if _, _, _, _, err := s.AppendMine(ctx, baseID, log[8:10], spec); err != nil {
					fail("shared append_mine: %v", err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Private lifecycle: create, append_mine, chained
				// append_mine on the grown log, delete — racing the
				// janitor ticks.
				s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
				if err != nil {
					fail("create: %v", err)
					return
				}
				baseID, err := s.AddLog(log[:6])
				if err != nil {
					fail("add log: %v", err)
					return
				}
				tail := []string{fmt.Sprintf("SELECT w%d, i%d FROM churn", w, i)}
				combinedID, _, _, res, err := s.AppendMine(ctx, baseID, tail, spec)
				if err != nil {
					fail("append_mine: %v", err)
					return
				}
				if res.Incremental == nil {
					fail("append_mine result carries no incremental stats")
					return
				}
				// The chained call usually warm-starts from the cached
				// state, but the deliberately tiny LRU may have evicted
				// it under churn — a cold bootstrap is then correct, so
				// only the stats' presence is asserted here (the
				// deterministic warm guarantees live in
				// TestMineStateSurvivesRestart and the facade property
				// test).
				if _, _, _, res, err = s.AppendMine(ctx, combinedID, tail, spec); err != nil {
					fail("chained append_mine: %v", err)
					return
				}
				if res.Incremental == nil {
					fail("chained append_mine result carries no incremental stats")
					return
				}
				if err := reg.DeleteSession(s.ID()); err != nil {
					fail("delete: %v", err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Stats()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The shared traffic quiesced: every worker call either bootstrapped
	// (miss) or reused state (hit); totals must match the call count.
	stats := reg.Stats()
	if got := stats.MineStateHits + stats.MineStateMisses; got < workers*iters {
		t.Errorf("mine-state hits+misses = %d, want at least the %d shared calls", got, workers*iters)
	}
}
