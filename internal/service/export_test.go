package service

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"strings"
	"testing"

	dpe "repro"
	"repro/internal/store"
	"repro/internal/store/memdriver"
)

// populateTenant builds one warm tenant on reg: a base log, an
// append_mine that leaves a combined log plus an incremental mining
// state, a prepared snapshot, and an approx index — every artifact
// class a bundle carries. It returns the session id, the combined log
// id, the mining spec, and the reference matrix and neighbors.
func populateTenant(t *testing.T, reg *Registry) (id, combinedID string, spec dpe.MineSpec, matrix dpe.Matrix, nb *dpe.NeighborsResult) {
	t.Helper()
	ctx := context.Background()
	token := dpe.MeasureToken
	log := clusteredLog()
	spec = dpe.MineSpec{Algorithm: dpe.MineDBSCAN, Eps: 0.4, MinPts: 2}
	s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatal(err)
	}
	baseID, err := s.AddLog(log[:8])
	if err != nil {
		t.Fatal(err)
	}
	combinedID, _, _, res, err := s.AppendMine(ctx, baseID, log[8:10], spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental == nil {
		t.Fatal("append_mine did not run incrementally")
	}
	matrix, err = s.Matrix(ctx, combinedID)
	if err != nil {
		t.Fatal(err)
	}
	nb, err = s.Neighbors(ctx, combinedID, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s.ID(), combinedID, spec, matrix, nb
}

// TestExportImportRoundTrip is the tenant-bundle acceptance check: a
// warm session exported from an in-memory registry and imported into a
// persistent one (each backend) must answer entry-wise identically —
// and answer *warm*: the first matrix call is a prepared-cache hit, the
// first neighbors call an approx hit, and the first append_mine a warm
// incremental continuation. The imported state must also be journaled
// durably: a kill-and-restart of the target recovers it.
func TestExportImportRoundTrip(t *testing.T) {
	t.Run("segments", func(t *testing.T) {
		dir := t.TempDir()
		testExportImportRoundTrip(t, func() store.Store {
			st, err := store.OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			return st
		})
	})
	t.Run("sql", func(t *testing.T) {
		const ds = "service-export-import"
		memdriver.Reset(ds)
		testExportImportRoundTrip(t, func() store.Store {
			st, err := store.OpenSQL(memdriver.Name, ds)
			if err != nil {
				t.Fatal(err)
			}
			return st
		})
	})
}

func testExportImportRoundTrip(t *testing.T, open func() store.Store) {
	ctx := context.Background()
	log := clusteredLog()

	// Source: a plain in-memory registry — the bundle, not a journal, is
	// the persistence being produced.
	src := NewRegistry(Config{Shards: 2})
	defer src.Close()
	id, combinedID, spec, wantMatrix, wantNb := populateTenant(t, src)
	var buf bytes.Buffer
	if err := src.ExportSession(id, &buf); err != nil {
		t.Fatal(err)
	}
	if err := src.ExportSession("s-no-such-session", io.Discard); err == nil {
		t.Error("export of an unknown session succeeded")
	}

	dst := NewRegistry(Config{Shards: 4, Store: open(), JanitorInterval: -1})
	res, err := dst.ImportSession(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Session != id {
		t.Errorf("imported session id = %q, want the exported %q", res.Session, id)
	}
	if res.Logs != 2 || res.Snapshots < 1 || res.ApproxIndexes < 1 || res.MineStates < 1 || res.Skipped != 0 {
		t.Errorf("import result = %+v, want 2 logs and warm snapshot/approx/mining state", res)
	}

	s, err := dst.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Matrix(ctx, combinedID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantMatrix) {
		t.Error("imported matrix differs from the exported one")
	}
	if stats := s.Stats(); stats.PreparedHits != 1 || stats.PreparedMisses != 0 {
		t.Errorf("first post-import matrix: hits %d misses %d, want a pure cache hit", stats.PreparedHits, stats.PreparedMisses)
	}
	gotNb, err := s.Neighbors(ctx, combinedID, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotNb, wantNb) {
		t.Error("imported neighbors differ from the exported ones")
	}
	if stats := s.Stats(); stats.ApproxMisses != 0 || stats.PreparedMisses != 0 {
		t.Errorf("first post-import neighbors missed imported state: %+v", stats)
	}
	// The imported mining state continues warm.
	_, _, _, mres, err := s.AppendMine(ctx, combinedID, log[10:12], spec)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Incremental == nil || !mres.Incremental.Warm || mres.Incremental.ColdFallback {
		t.Errorf("first post-import append_mine = %+v, want a warm continuation", mres.Incremental)
	}

	// A second import of the same id is rejected while it is live.
	if _, err := dst.ImportSession(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "already live") {
		t.Errorf("re-import of a live session = %v, want an already-live error", err)
	}

	// The import journaled durably: a kill-and-restart recovers the
	// tenant with the same answers.
	dst.Close()
	dst2, err := OpenRegistry(Config{Shards: 4, Store: open(), JanitorInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst2.Close()
	rec := dst2.Recovery()
	if rec.Sessions != 1 || rec.Logs < 2 {
		t.Errorf("post-import recovery = %+v, want the imported tenant", rec)
	}
	s2, err := dst2.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := s2.Matrix(ctx, combinedID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, wantMatrix) {
		t.Error("matrix differs after restarting the import target")
	}
}

// TestImportRejectsBadBundles: a damaged or non-bundle body, and a
// bundle violating the registry's budgets, must fail with no state
// change.
func TestImportRejectsBadBundles(t *testing.T) {
	reg := NewRegistry(Config{Shards: 2})
	defer reg.Close()
	if _, err := reg.ImportSession(strings.NewReader("not a bundle")); err == nil {
		t.Error("importing garbage succeeded")
	}

	src := NewRegistry(Config{Shards: 2})
	defer src.Close()
	id, _, _, _, _ := populateTenant(t, src)
	var buf bytes.Buffer
	if err := src.ExportSession(id, &buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// A truncated download fails the bundle's integrity checks.
	if _, err := reg.ImportSession(bytes.NewReader(good[:len(good)-5])); err == nil {
		t.Error("importing a truncated bundle succeeded")
	}
	// Per-session budgets apply as if the tenant had re-uploaded: a
	// registry whose log budget is too small refuses the bundle.
	tiny := NewRegistry(Config{Shards: 2, MaxLogsPerSession: 1})
	defer tiny.Close()
	if _, err := tiny.ImportSession(bytes.NewReader(good)); err == nil || !strings.Contains(err.Error(), "per-session limit") {
		t.Errorf("import over the log limit = %v, want a budget error", err)
	}
	tinyBytes := NewRegistry(Config{Shards: 2, MaxLogBytesPerSession: 8})
	defer tinyBytes.Close()
	if _, err := tinyBytes.ImportSession(bytes.NewReader(good)); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("import over the byte budget = %v, want a budget error", err)
	}

	// Nothing leaked into the target registry.
	if n := reg.live.Load(); n != 0 {
		t.Errorf("failed imports left %d live sessions", n)
	}
}

// TestImportAfterDeleteDropsTombstone is the resurrect-hazard check: on
// a persistent registry, deleting a tenant journals a tombstone; a
// later re-import of the same id must survive a restart — the import
// path compacts the shard so the stale tombstone cannot outvote the
// fresh create at replay.
func TestImportAfterDeleteDropsTombstone(t *testing.T) {
	dir := t.TempDir()
	open := func() store.Store {
		st, err := store.OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	reg := NewRegistry(Config{Shards: 2, Store: open(), JanitorInterval: -1})
	id, combinedID, _, wantMatrix, _ := populateTenant(t, reg)
	var buf bytes.Buffer
	if err := reg.ExportSession(id, &buf); err != nil {
		t.Fatal(err)
	}
	if err := reg.DeleteSession(id); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ImportSession(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	reg.Close()

	reg2, err := OpenRegistry(Config{Shards: 2, Store: open(), JanitorInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	s, err := reg2.Session(id)
	if err != nil {
		t.Fatalf("re-imported session lost after restart (tombstone won): %v", err)
	}
	got, err := s.Matrix(context.Background(), combinedID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantMatrix) {
		t.Error("re-imported matrix differs after restart")
	}
}

// TestExportImportHTTP drives the wire path end to end: dpectl-style
// export from one server, import into another, and parity through an
// attached client handle on the restored id.
func TestExportImportHTTP(t *testing.T) {
	ctx := context.Background()
	log := clusteredLog()

	srcClient := NewClient(startServer(t, Config{Shards: 2}).URL)
	sess, err := srcClient.NewSession(ctx, dpe.MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.DistanceMatrix(ctx, log)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := srcClient.ExportSession(ctx, sess.ID(), &buf); err != nil {
		t.Fatal(err)
	}
	if err := srcClient.ExportSession(ctx, "s-no-such", io.Discard); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("export of an unknown session = %v, want a 404", err)
	}

	dstClient := NewClient(startServer(t, Config{Shards: 2}).URL)
	res, err := dstClient.ImportSession(ctx, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Session != sess.ID() || res.Logs != 1 {
		t.Errorf("import result = %+v, want the exported session with 1 log", res)
	}
	attached, err := dstClient.AttachSession(ctx, res.Session)
	if err != nil {
		t.Fatal(err)
	}
	if attached.Measure() != dpe.MeasureToken {
		t.Errorf("attached measure = %v, want token", attached.Measure())
	}
	got, err := attached.DistanceMatrix(ctx, log)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("imported matrix differs over the wire")
	}
	// A corrupt upload is rejected with no session created.
	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := dstClient.ImportSession(ctx, bytes.NewReader(corrupt)); err == nil {
		t.Error("importing a corrupted bundle succeeded")
	}
}
