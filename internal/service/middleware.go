package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// RequestIDHeader carries the per-request correlation id. The server
// honors a well-formed incoming value (so a proxy's id threads through
// access logs, error bodies, and client error strings unchanged) and
// mints one otherwise; the response always echoes it.
const RequestIDHeader = "X-Request-Id"

// HandlerOptions configures the instrumentation wrapped around the /v1
// API. The zero value — no metrics, no logging, no slow-request
// tracing — behaves like the historical uninstrumented handler except
// that request ids are still assigned and echoed (they cost one header
// and make error bodies correlatable even on bare test servers).
type HandlerOptions struct {
	// Obs, when set, registers and feeds the dpe_http_* request
	// metrics (per-route latency histograms, route/code counters, an
	// inflight gauge).
	Obs *obs.Registry
	// Logger, when set, receives one structured access-log line per
	// request and a warning line for requests slower than SlowRequest.
	Logger *slog.Logger
	// SlowRequest is the latency above which a request is logged at
	// warning level with its per-stage span breakdown. Zero disables
	// slow-request tracing (and the per-request trace allocation).
	SlowRequest time.Duration
}

type requestIDKey struct{}

// RequestIDFromContext returns the request's correlation id, or "".
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// validRequestID bounds what an incoming X-Request-Id may look like
// before the server adopts it into logs and metrics exposition: at most
// 64 bytes of [A-Za-z0-9._-]. Anything else is replaced, not rejected —
// a malformed header must not fail the request it labels.
func validRequestID(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// newRequestID mints a 16-hex-character id (64 random bits — plenty for
// correlating logs, not a security token).
func newRequestID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// routeLabels maps every registered mux pattern to the short route name
// used as a metric label, so label cardinality is closed over the API
// surface no matter what paths clients probe.
var routeLabels = map[string]string{
	"GET /v1/healthz":                         "healthz",
	"GET /v1/stats":                           "stats",
	"POST /v1/sessions":                       "create_session",
	"POST /v1/sessions:import":                "import_session",
	"GET /v1/sessions/{id}":                   "session_stats",
	"GET /v1/sessions/{id}/export":            "export_session",
	"DELETE /v1/sessions/{id}":                "delete_session",
	"POST /v1/sessions/{id}/logs":             "upload_log",
	"POST /v1/sessions/{id}/logs:append":      "append_log",
	"POST /v1/sessions/{id}/logs:append_mine": "append_mine",
	"POST /v1/sessions/{id}/matrix":           "matrix",
	"POST /v1/sessions/{id}/distances":        "distances",
	"POST /v1/sessions/{id}/mine":             "mine",
	"GET /v1/sessions/{id}/neighbors":         "neighbors",
	"POST /v1/sessions/{id}/verify":           "verify",
}

// routeLabel resolves the matched mux pattern; requests that matched no
// pattern (404s, bad methods) share one "unmatched" series.
func routeLabel(pattern string) string {
	if label, ok := routeLabels[pattern]; ok {
		return label
	}
	return "unmatched"
}

// httpMetrics is the middleware's slice of the obs wiring. Histograms
// are pre-registered per route at construction (the label set is closed,
// so nothing is minted per request); the route×code counters are
// get-or-create at response time because enumerating every status a
// handler can produce would be a maintenance trap.
type httpMetrics struct {
	o         *obs.Registry
	inflight  *obs.Gauge
	durations map[string]*obs.Histogram
}

func newHTTPMetrics(o *obs.Registry) *httpMetrics {
	if o == nil {
		return nil
	}
	m := &httpMetrics{
		o:         o,
		inflight:  o.Gauge("dpe_http_inflight_requests", "API requests currently being served."),
		durations: make(map[string]*obs.Histogram, len(routeLabels)+1),
	}
	for _, label := range routeLabels {
		m.durations[label] = o.Histogram("dpe_http_request_duration_seconds",
			"API request latency by route.", nil, "route", label)
	}
	m.durations["unmatched"] = o.Histogram("dpe_http_request_duration_seconds",
		"API request latency by route.", nil, "route", "unmatched")
	return m
}

// inflightAdd moves the inflight gauge; nil-safe like observe.
func (m *httpMetrics) inflightAdd(v float64) {
	if m == nil {
		return
	}
	m.inflight.Add(v)
}

// observe records one finished request; nil-safe so the uninstrumented
// handler pays a single branch.
func (m *httpMetrics) observe(route string, status int, d time.Duration) {
	if m == nil {
		return
	}
	m.durations[route].Observe(d.Seconds())
	m.o.Counter("dpe_http_requests_total", "API requests served, by route and status code.",
		"route", route, "code", strconv.Itoa(status)).Inc()
}

// statusRecorder captures the response status and size for the access
// log and the route×code counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusRecorder) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrumented wraps the /v1 mux with the request-id, metrics, and
// logging middleware. The wrapper always runs (request ids are part of
// the wire contract); metrics and logging engage only when configured.
type instrumented struct {
	mux     *http.ServeMux
	metrics *httpMetrics
	logger  *slog.Logger
	slow    time.Duration
}

func (h *instrumented) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.Header.Get(RequestIDHeader)
	if !validRequestID(id) {
		id = newRequestID()
	}
	w.Header().Set(RequestIDHeader, id)

	ctx := context.WithValue(r.Context(), requestIDKey{}, id)
	var trace *obs.Trace
	if h.slow > 0 && h.logger != nil {
		trace = &obs.Trace{}
		ctx = obs.ContextWithTrace(ctx, trace)
	}
	r = r.WithContext(ctx)

	rec := &statusRecorder{ResponseWriter: w}
	h.metrics.inflightAdd(1)
	// The mux writes the matched pattern back onto r before dispatch,
	// so r.Pattern is readable here once ServeHTTP returns.
	h.mux.ServeHTTP(rec, r)
	h.metrics.inflightAdd(-1)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}

	d := time.Since(start)
	route := routeLabel(r.Pattern)
	h.metrics.observe(route, rec.status, d)

	if h.logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("route", route),
		slog.Int("status", rec.status),
		slog.Int64("bytes", rec.bytes),
		slog.Duration("dur", d),
		slog.String("request_id", id),
	}
	h.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	if h.slow > 0 && d >= h.slow {
		if spans := trace.String(); spans != "" {
			attrs = append(attrs, slog.String("stages", spans))
		}
		h.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow request", attrs...)
	}
}
