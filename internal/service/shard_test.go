package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	dpe "repro"
	"repro/internal/service/ring"
)

// TestDefaultShards pins the derived shard count's shape: a power of
// two in [1, 256].
func TestDefaultShards(t *testing.T) {
	n := DefaultShards()
	if n < 1 || n > 256 {
		t.Fatalf("DefaultShards() = %d, want within [1, 256]", n)
	}
	if n&(n-1) != 0 {
		t.Errorf("DefaultShards() = %d, want a power of two", n)
	}
}

// TestBudgetSplitting pins how the registry-wide cache budgets divide
// across shards: rounded up, never below one per shard, and exactly the
// configured totals when shards = 1.
func TestBudgetSplitting(t *testing.T) {
	entryCases := []struct {
		total, shards, want int
	}{
		{128, 1, 128},
		{128, 16, 8},
		{10, 4, 3},
		{1, 8, 1},
		{7, 2, 4},
		{256, 256, 1},
		// Fewer entries than shards: every shard still gets one slot
		// (the aggregate grows above the configured total — cacheable
		// beats configured-exactly here).
		{3, 8, 1},
		{1, 256, 1},
		// Exact division: no rounding slack in either direction.
		{64, 8, 8},
		{12, 4, 3},
	}
	for _, c := range entryCases {
		if got := splitEntries(c.total, c.shards); got != c.want {
			t.Errorf("splitEntries(%d, %d) = %d, want %d", c.total, c.shards, got, c.want)
		}
	}
	byteCases := []struct {
		total int64
		n     int
		want  int64
	}{
		{64 << 20, 1, 64 << 20},
		{64 << 20, 16, 4 << 20},
		{10, 4, 3},
		{1, 8, 1},
		// Fewer bytes than shards and exact division, as above.
		{3, 8, 1},
		{1 << 20, 16, 1 << 16},
	}
	for _, c := range byteCases {
		if got := splitBytes(c.total, c.n); got != c.want {
			t.Errorf("splitBytes(%d, %d) = %d, want %d", c.total, c.n, got, c.want)
		}
	}

	// The split budgets land on the actual shard caches.
	reg := NewRegistry(Config{CacheEntries: 10, CacheBytes: 100, Shards: 4, JanitorInterval: -1})
	defer reg.Close()
	if len(reg.shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(reg.shards))
	}
	for i, sh := range reg.shards {
		if sh.cache.maxEntries != 3 || sh.cache.maxBytes != 25 {
			t.Errorf("shard %d cache budgets = %d entries / %d bytes, want 3 / 25",
				i, sh.cache.maxEntries, sh.cache.maxBytes)
		}
	}
}

// TestSingleShardMatchesUnsharded pins the shards=1 contract: one shard
// holding the exact global budgets, with every id routed to it — the
// historical unsharded registry.
func TestSingleShardMatchesUnsharded(t *testing.T) {
	reg := NewRegistry(Config{CacheEntries: 128, CacheBytes: 64 << 20, Shards: 1, JanitorInterval: -1})
	defer reg.Close()
	if len(reg.shards) != 1 {
		t.Fatalf("shards = %d, want 1", len(reg.shards))
	}
	if reg.shards[0].cache.maxEntries != 128 || reg.shards[0].cache.maxBytes != 64<<20 {
		t.Errorf("single-shard cache budgets = %d / %d, want the unsplit 128 / %d",
			reg.shards[0].cache.maxEntries, reg.shards[0].cache.maxBytes, int64(64<<20))
	}
	for _, id := range []string{"s-00", "s-deadbeef", "anything"} {
		if sh := reg.shardFor(id); sh != reg.shards[0] {
			t.Errorf("shardFor(%q) missed the only shard", id)
		}
	}
}

// TestShardRoutingMatchesRing pins that the registry routes ids exactly
// like a standalone ring of the same size — the property that lets a
// multi-node deployment reuse the ring to route tenants.
func TestShardRoutingMatchesRing(t *testing.T) {
	reg := NewRegistry(Config{Shards: 8, JanitorInterval: -1})
	defer reg.Close()
	r := ring.New(8)
	for _, id := range []string{"s-00000000000000000000000000000000", "s-deadbeefdeadbeefdeadbeefdeadbeef", "s-42", "x"} {
		if reg.shardFor(id) != reg.shards[r.Shard(id)] {
			t.Errorf("registry routes %q differently from ring.New(8)", id)
		}
	}
}

// TestJanitorReapsIdleSessions is the reaping bugfix's check: a session
// idle past the TTL is reclaimed by the background janitor under pure
// read-only traffic — no CreateSession pressure required.
func TestJanitorReapsIdleSessions(t *testing.T) {
	reg := NewRegistry(Config{
		MaxSessions: 8, Shards: 4,
		SessionTTL: 5 * time.Millisecond, JanitorInterval: time.Millisecond,
	})
	defer reg.Close()
	token := dpe.MeasureToken
	s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatal(err)
	}
	// Cache something so the reap has prepared state to release.
	logID, err := s.AddLog([]string{"SELECT a FROM t", "SELECT b FROM t"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Matrix(t.Context(), logID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := reg.Session(s.ID()); err != nil {
			break // reaped
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never reaped the idle session")
		}
		time.Sleep(time.Millisecond)
	}
	stats := reg.Stats()
	if stats.Sessions != 0 {
		t.Errorf("sessions after reap = %d, want 0", stats.Sessions)
	}
	if stats.PreparedCache.Entries != 0 {
		t.Errorf("cache entries after reap = %d, want 0 (prepared state released)", stats.PreparedCache.Entries)
	}
}

// TestJanitorDisabled pins the opt-out: with a negative interval, idle
// sessions survive read-only traffic (only capacity pressure reaps).
func TestJanitorDisabled(t *testing.T) {
	reg := NewRegistry(Config{SessionTTL: time.Nanosecond, JanitorInterval: -1, Shards: 2})
	defer reg.Close()
	token := dpe.MeasureToken
	s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := reg.Session(s.ID()); err != nil {
		t.Errorf("session reaped with the janitor disabled: %v", err)
	}
}

// TestCloseStopsJanitor checks Close actually retires the background
// goroutines: after Close, an expired session stays (nothing sweeps it).
func TestCloseStopsJanitor(t *testing.T) {
	reg := NewRegistry(Config{SessionTTL: 5 * time.Millisecond, JanitorInterval: time.Millisecond, Shards: 2})
	reg.Close() // immediately — janitors must exit
	token := dpe.MeasureToken
	s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := reg.Session(s.ID()); err != nil {
		t.Errorf("session reaped after Close: %v", err)
	}
	reg.Close() // idempotent
}

// TestCloseThenContinuedTraffic pins Registry.Close's contract: the
// janitor goroutines retire (no leak — this test runs under -race in
// CI), but the in-memory registry keeps serving — existing sessions
// answer matrix calls from the warm cache, new logs and sessions and
// deletes all still work. Concurrent traffic across the Close makes
// the handoff itself race-checked.
func TestCloseThenContinuedTraffic(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := NewRegistry(Config{Shards: 4, JanitorInterval: time.Millisecond, SessionTTL: time.Hour})
	ctx := context.Background()
	token := dpe.MeasureToken
	s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatal(err)
	}
	log := []string{"SELECT a FROM t", "SELECT b FROM t"}
	logID, err := s.AddLog(log)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Matrix(ctx, logID)
	if err != nil {
		t.Fatal(err)
	}

	// Traffic racing the Close: the janitor shutdown must not disturb
	// in-flight tenant calls.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := s.Matrix(ctx, logID); err != nil {
					t.Errorf("matrix during close: %v", err)
					return
				}
			}
		}()
	}
	reg.Close()
	wg.Wait()

	// After Close: warm reads, new writes, and lifecycle calls all work.
	got, err := s.Matrix(ctx, logID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("matrix changed across Close")
	}
	if stats := s.Stats(); stats.PreparedMisses != 1 {
		t.Errorf("post-Close matrix misses = %d, want 1 (cache still warm)", stats.PreparedMisses)
	}
	if _, err := s.AddLog([]string{"SELECT c FROM t"}); err != nil {
		t.Errorf("AddLog after Close: %v", err)
	}
	s2, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatalf("CreateSession after Close: %v", err)
	}
	if err := reg.DeleteSession(s2.ID()); err != nil {
		t.Errorf("DeleteSession after Close: %v", err)
	}
	reg.Close() // idempotent

	// The janitors are gone: the goroutine count settles back to (at
	// most) where it started.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after Close = %d, started with %d (janitor leak)", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStatsPerShard checks the wire behavior of GET /v1/stats: the
// aggregate shape is unchanged by default, and ?per_shard=1 adds a
// breakdown whose slices sum to the aggregate.
func TestStatsPerShard(t *testing.T) {
	reg := NewRegistry(Config{Shards: 4, JanitorInterval: -1})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	token := dpe.MeasureToken
	for i := 0; i < 6; i++ {
		if _, err := reg.CreateSession(&CreateSessionRequest{Measure: &token}); err != nil {
			t.Fatal(err)
		}
	}

	var plain map[string]json.RawMessage
	getJSON(t, srv.URL+"/v1/stats", &plain)
	if _, ok := plain["per_shard"]; ok {
		t.Error("per_shard present without the query parameter")
	}
	if _, ok := plain["shards"]; !ok {
		t.Error("aggregate stats missing the shard count")
	}

	var stats RegistryStats
	getJSON(t, srv.URL+"/v1/stats?per_shard=1", &stats)
	if stats.Shards != 4 || len(stats.PerShard) != 4 {
		t.Fatalf("per-shard stats: shards=%d breakdown=%d, want 4/4", stats.Shards, len(stats.PerShard))
	}
	total := 0
	for i, s := range stats.PerShard {
		if s.Shard != i {
			t.Errorf("PerShard[%d].Shard = %d, want %d", i, s.Shard, i)
		}
		total += s.Sessions
	}
	if total != stats.Sessions || stats.Sessions != 6 {
		t.Errorf("per-shard sessions sum to %d, aggregate says %d (want 6)", total, stats.Sessions)
	}
}

// getJSON fetches a URL and decodes its JSON body.
func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// TestShardCountParity is the acceptance check in miniature: the same
// traffic against a 1-shard and a 16-shard server produces entry-wise
// identical matrices and identical per-session cache behavior — shard
// count is invisible on the wire.
func TestShardCountParity(t *testing.T) {
	log := []string{
		"SELECT a FROM t WHERE x = 1",
		"SELECT b FROM t WHERE x = 2",
		"SELECT a, b FROM t",
		"SELECT COUNT(*) FROM t",
	}
	tail := []string{"SELECT b FROM t WHERE y = 9"}
	ctx := t.Context()

	type outcome struct {
		matrix dpe.Matrix
		grown  dpe.Matrix
		stats  SessionStats
	}
	runAt := func(shards int) outcome {
		srv := startServer(t, Config{Shards: shards})
		sess, err := NewClient(srv.URL).NewSession(ctx, dpe.MeasureToken)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sess.DistanceMatrix(ctx, log)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.DistanceMatrix(ctx, log); err != nil { // warm
			t.Fatal(err)
		}
		grown, err := sess.Append(ctx, m, log, tail)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := sess.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{matrix: m, grown: grown, stats: *stats}
	}

	one, sixteen := runAt(1), runAt(16)
	if !reflect.DeepEqual(one.matrix, sixteen.matrix) || !reflect.DeepEqual(one.grown, sixteen.grown) {
		t.Error("matrices differ between 1-shard and 16-shard servers")
	}
	if one.stats.PreparedHits != sixteen.stats.PreparedHits ||
		one.stats.PreparedMisses != sixteen.stats.PreparedMisses {
		t.Errorf("cache behavior differs across shard counts: 1 shard %d/%d, 16 shards %d/%d (hits/misses)",
			one.stats.PreparedHits, one.stats.PreparedMisses,
			sixteen.stats.PreparedHits, sixteen.stats.PreparedMisses)
	}
}
