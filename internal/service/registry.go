package service

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	dpe "repro"
)

// notFoundError marks lookup failures (unknown session or log) so the
// HTTP layer maps them to 404 instead of 400.
type notFoundError struct{ err error }

func (e notFoundError) Error() string  { return e.err.Error() }
func (e notFoundError) Unwrap() error  { return e.err }
func (e notFoundError) NotFound() bool { return true }

// Config tunes a Registry.
type Config struct {
	// MaxSessions bounds concurrently live sessions; 0 means 64.
	MaxSessions int
	// Parallelism sizes each session provider's distance-engine worker
	// pool; <= 1 means sequential.
	Parallelism int
	// CacheEntries bounds the prepared-state cache's entry count; 0
	// means 128.
	CacheEntries int
	// CacheBytes bounds the prepared-state cache's estimated total
	// size; 0 means 64 MiB.
	CacheBytes int64
	// MaxLogsPerSession bounds distinct uploaded logs per session; 0
	// means 64.
	MaxLogsPerSession int
	// MaxLogBytesPerSession bounds the total raw bytes of a session's
	// uploaded logs; 0 means 64 MiB.
	MaxLogBytesPerSession int64
	// SessionTTL is how long an idle session survives once the registry
	// is full: at capacity, sessions untouched for longer are reaped to
	// make room. 0 means 2 hours.
	SessionTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxLogsPerSession <= 0 {
		c.MaxLogsPerSession = 64
	}
	if c.MaxLogBytesPerSession <= 0 {
		c.MaxLogBytesPerSession = 64 << 20
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 2 * time.Hour
	}
	return c
}

// CreateSessionRequest is the wire body of POST /v1/sessions: the
// measure plus whatever Table I shared artifacts it needs. Catalog (with
// an optional aggregator key for encrypted content) belongs to the
// result measure, Domains to the access-area measure.
type CreateSessionRequest struct {
	// Measure is required: a pointer so an absent (or misspelled) field
	// is an error instead of silently defaulting to the token measure.
	Measure       *dpe.Measure          `json:"measure"`
	Catalog       *WireCatalog          `json:"catalog,omitempty"`
	AggregatorKey *WireAggregatorKey    `json:"aggregator_key,omitempty"`
	Domains       map[string]WireDomain `json:"domains,omitempty"`
	AccessAreaX   float64               `json:"access_area_x,omitempty"`
	Tolerance     float64               `json:"tolerance,omitempty"`
}

// SessionStats is the wire body of GET /v1/sessions/{id}: what a tenant
// can observe about its session, including whether its calls are being
// served from the prepared-state cache.
type SessionStats struct {
	Session        string      `json:"session"`
	Measure        dpe.Measure `json:"measure"`
	Logs           int         `json:"logs"`
	PreparedHits   int64       `json:"prepared_hits"`
	PreparedMisses int64       `json:"prepared_misses"`
	CreatedAt      time.Time   `json:"created_at"`
}

// RegistryStats is the wire body of GET /v1/stats.
type RegistryStats struct {
	Sessions      int        `json:"sessions"`
	MaxSessions   int        `json:"max_sessions"`
	PreparedCache CacheStats `json:"prepared_cache"`
}

// Registry is the service's multi-tenant state: live sessions plus one
// shared LRU cache of prepared logs. All methods are safe for concurrent
// use.
type Registry struct {
	cfg    Config
	cache  *lruCache
	flight *flightGroup

	mu       sync.Mutex
	sessions map[string]*session
}

// NewRegistry creates an empty registry.
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	return &Registry{
		cfg:      cfg,
		cache:    newLRU(cfg.CacheEntries, cfg.CacheBytes),
		flight:   newFlightGroup(),
		sessions: make(map[string]*session),
	}
}

// newSessionID draws an unguessable session id: in a multi-tenant
// service the id is the only thing protecting one tenant's session from
// another, so it must not be enumerable.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: generating session id: %w", err)
	}
	return "s-" + hex.EncodeToString(b[:]), nil
}

// errTooManySessions distinguishes capacity exhaustion (429) from bad
// requests (400).
var errTooManySessions = fmt.Errorf("service: session limit reached")

// CreateSession decodes the request's artifacts, builds the provider
// once, and registers a session serving it.
func (r *Registry) CreateSession(req *CreateSessionRequest) (*session, error) {
	if req.Measure == nil {
		return nil, fmt.Errorf("service: request is missing the measure (want token|structure|result|access-area)")
	}
	opts := []dpe.ProviderOption{dpe.WithParallelism(r.cfg.Parallelism)}
	if req.Catalog != nil {
		cat, err := req.Catalog.Decode()
		if err != nil {
			return nil, err
		}
		var agg dpe.Aggregator
		if req.AggregatorKey != nil {
			pk, err := req.AggregatorKey.Decode()
			if err != nil {
				return nil, err
			}
			agg = dpe.AggregatorFromKey(pk)
		}
		opts = append(opts, dpe.WithCatalog(cat, agg))
	}
	if req.Domains != nil {
		domains, err := DecodeDomains(req.Domains)
		if err != nil {
			return nil, err
		}
		opts = append(opts, dpe.WithDomains(domains))
	}
	if req.AccessAreaX != 0 {
		opts = append(opts, dpe.WithAccessAreaX(req.AccessAreaX))
	}
	if req.Tolerance != 0 {
		opts = append(opts, dpe.WithTolerance(req.Tolerance))
	}
	provider, err := dpe.NewProvider(*req.Measure, opts...)
	if err != nil {
		return nil, err
	}

	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.sessions) >= r.cfg.MaxSessions {
		r.reapIdleLocked(now)
	}
	if len(r.sessions) >= r.cfg.MaxSessions {
		return nil, fmt.Errorf("%w (%d live)", errTooManySessions, len(r.sessions))
	}
	s := &session{
		id:       id,
		measure:  *req.Measure,
		provider: provider,
		reg:      r,
		logs:     make(map[string][]string),
		created:  now,
		lastUsed: now,
	}
	r.sessions[s.id] = s
	return s, nil
}

// reapIdleLocked drops sessions idle longer than the TTL (and their
// cached prepared state). Called with r.mu held, only when the registry
// is at capacity — abandoned sessions must not squat on it forever.
func (r *Registry) reapIdleLocked(now time.Time) {
	for id, s := range r.sessions {
		s.mu.Lock()
		idle := now.Sub(s.lastUsed)
		s.mu.Unlock()
		if idle > r.cfg.SessionTTL {
			delete(r.sessions, id)
			r.cache.removePrefix(id + "\x00")
		}
	}
}

// Session returns a live session by id.
func (r *Registry) Session(id string) (*session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		return nil, notFoundError{fmt.Errorf("service: unknown session %q", id)}
	}
	return s, nil
}

// DeleteSession removes a session and its cached prepared state.
func (r *Registry) DeleteSession(id string) error {
	r.mu.Lock()
	_, ok := r.sessions[id]
	delete(r.sessions, id)
	r.mu.Unlock()
	if !ok {
		return notFoundError{fmt.Errorf("service: unknown session %q", id)}
	}
	r.cache.removePrefix(id + "\x00")
	return nil
}

// Stats snapshots the registry.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	n := len(r.sessions)
	r.mu.Unlock()
	return RegistryStats{
		Sessions:      n,
		MaxSessions:   r.cfg.MaxSessions,
		PreparedCache: r.cache.stats(),
	}
}

// session is one tenant's provider state on the server: the immutable
// provider built from the uploaded artifacts, plus the logs uploaded so
// far. Logs are content-addressed, so re-uploading an identical log is
// idempotent and lands on the same cached prepared state.
type session struct {
	id       string
	measure  dpe.Measure
	provider *dpe.Provider
	reg      *Registry
	created  time.Time

	mu       sync.Mutex
	logs     map[string][]string
	logBytes int64
	lastUsed time.Time
	hits     int64
	misses   int64
}

// ID returns the session id.
func (s *session) ID() string { return s.id }

// touchLocked marks the session used; callers hold s.mu.
func (s *session) touchLocked() { s.lastUsed = time.Now() }

// LogID content-addresses a query log: equal logs get equal ids.
func LogID(queries []string) string {
	h := sha256.New()
	for _, q := range queries {
		fmt.Fprintf(h, "%d\n", len(q))
		h.Write([]byte(q))
	}
	return "l-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// AddLog registers an uploaded log and returns its content-derived id.
// The session's raw-log store is budgeted (entries and bytes) so one
// tenant cannot grow server memory without bound.
func (s *session) AddLog(queries []string) (string, error) {
	size := int64(0)
	for _, q := range queries {
		size += int64(len(q))
	}
	return s.addLogSized(queries, size)
}

// addLogSized is AddLog with the byte-budget charge made explicit: a
// log derived from an already-stored base (the append path) shares the
// base's string data — Go strings are immutable, so the combined slice
// duplicates only headers — and is charged only for its new tail.
func (s *session) addLogSized(queries []string, size int64) (string, error) {
	if len(queries) == 0 {
		return "", fmt.Errorf("service: empty query log")
	}
	id := LogID(queries)
	cfg := s.reg.cfg
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchLocked()
	if _, ok := s.logs[id]; ok {
		return id, nil
	}
	if len(s.logs) >= cfg.MaxLogsPerSession {
		return "", fmt.Errorf("service: session log limit reached (%d logs); delete the session or reuse uploaded logs", len(s.logs))
	}
	if s.logBytes+size > cfg.MaxLogBytesPerSession {
		return "", fmt.Errorf("service: session log byte budget exceeded (%d + %d > %d bytes)", s.logBytes, size, cfg.MaxLogBytesPerSession)
	}
	s.logs[id] = append([]string(nil), queries...)
	s.logBytes += size
	return id, nil
}

// log returns an uploaded log by id.
func (s *session) log(id string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchLocked()
	queries, ok := s.logs[id]
	if !ok {
		return nil, notFoundError{fmt.Errorf("service: unknown log %q (upload it first)", id)}
	}
	return queries, nil
}

// preparedCost is the cache's byte accounting for one prepared log: the
// metric's own footprint estimate when it has one (the result measure's
// tuple sets scale with catalog rows, not with log text), the log size
// plus a per-query overhead otherwise.
func preparedCost(pl *dpe.PreparedLog, queries []string) int64 {
	if size := pl.SizeBytes(); size > 0 {
		return size
	}
	cost := int64(0)
	for _, q := range queries {
		cost += int64(2*len(q)) + 256
	}
	return cost
}

// flightGroup coalesces concurrent preparations of the same cache key:
// one caller becomes the leader and runs Prepare, the rest wait for its
// result instead of repeating the most expensive operation the service
// has.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	pl   *dpe.PreparedLog
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// begin joins the in-flight call for key, or starts one; leader reports
// which happened.
func (g *flightGroup) begin(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// finish publishes the leader's result and retires the call.
func (g *flightGroup) finish(key string, c *flightCall, pl *dpe.PreparedLog, err error) {
	c.pl, c.err = pl, err
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}

// prepared returns the log's prepared state, serving repeat calls from
// the registry-wide LRU cache (the expensive half of every distance
// computation — tokenizing, parsing, executing — runs at most once per
// uploaded log while the entry stays cached). Concurrent cold calls for
// the same log collapse into a single preparation.
func (s *session) prepared(ctx context.Context, logID string) (*dpe.PreparedLog, error) {
	queries, err := s.log(logID)
	if err != nil {
		return nil, err
	}
	return s.preparedKeyed(ctx, logID, queries, func(ctx context.Context) (*dpe.PreparedLog, error) {
		return s.provider.Prepare(ctx, queries)
	})
}

// preparedKeyed serves the prepared state for one cached log id,
// running build at most once per cold key however many callers race
// (singleflight). Both the full-prepare path (prepared) and the
// incremental extension path (Append) go through here, so they share
// the cache, the coalescing, and the deleted-session rule.
func (s *session) preparedKeyed(ctx context.Context, logID string, queries []string, build func(context.Context) (*dpe.PreparedLog, error)) (*dpe.PreparedLog, error) {
	key := s.id + "\x00" + logID
	for {
		if v, ok := s.reg.cache.get(key); ok {
			s.mu.Lock()
			s.hits++
			s.mu.Unlock()
			return v.(*dpe.PreparedLog), nil
		}
		c, leader := s.reg.flight.begin(key)
		if leader {
			// Re-check under leadership: a previous leader may have added
			// the entry between our cache miss and our begin (its add runs
			// before its finish, so the entry is visible by now).
			if v, ok := s.reg.cache.get(key); ok {
				pl := v.(*dpe.PreparedLog)
				s.reg.flight.finish(key, c, pl, nil)
				s.mu.Lock()
				s.hits++
				s.mu.Unlock()
				return pl, nil
			}
			pl, err := build(ctx)
			if err == nil {
				// Only cache for a still-live session: if the session was
				// deleted (or reaped) mid-prepare, its removePrefix already
				// ran and an add now would strand an unreachable entry on
				// the shared byte budget.
				if _, live := s.reg.Session(s.id); live == nil {
					s.reg.cache.add(key, pl, preparedCost(pl, queries))
				}
				s.mu.Lock()
				s.misses++
				s.mu.Unlock()
			}
			s.reg.flight.finish(key, c, pl, err)
			return pl, err
		}
		select {
		case <-c.done:
			if c.err == nil {
				s.mu.Lock()
				s.hits++
				s.mu.Unlock()
				return c.pl, nil
			}
			// The leader failed — possibly only because *its* context was
			// cancelled. If ours is still live, retry (and likely become
			// the new leader) rather than inherit a stranger's error.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Append is the incremental ingest path: it registers base ∘ newQueries
// as a new content-addressed log, extends the base log's cached prepared
// state with only the new queries, and computes only the new matrix rows
// (n·k + k·(k−1)/2 pair computations instead of a full rebuild). It
// returns the combined log's id, the offset n where the new rows start,
// and the k full-width rows — what a client splices onto its old matrix.
// The extended prepared state is cached under the combined log, so
// follow-up matrix/row/mine calls on it are warm; concurrent identical
// appends coalesce into one extension (the same singleflight as cold
// prepares).
//
// Each append registers one more log entry (charged only for the new
// tail's bytes — the base's string data is shared), so a long
// one-query-at-a-time append chain runs into MaxLogsPerSession; batch
// appends, or delete the session, when the budget error surfaces.
//
// An empty append is a no-op, not an error — the combined log *is* the
// base log (content addressing collapses them) and zero rows come back
// — matching dpe.Provider.Append, so dpe.ProviderAPI callers behave
// identically in-process and remote.
func (s *session) Append(ctx context.Context, baseLogID string, newQueries []string) (combinedID string, offset int, rows [][]float64, err error) {
	base, err := s.log(baseLogID)
	if err != nil {
		return "", 0, nil, err
	}
	combined := make([]string, 0, len(base)+len(newQueries))
	combined = append(combined, base...)
	combined = append(combined, newQueries...)
	tailSize := int64(0)
	for _, q := range newQueries {
		tailSize += int64(len(q))
	}
	combinedID, err = s.addLogSized(combined, tailSize)
	if err != nil {
		return "", 0, nil, err
	}
	pl, err := s.preparedKeyed(ctx, combinedID, combined, func(ctx context.Context) (*dpe.PreparedLog, error) {
		basePL, err := s.prepared(ctx, baseLogID)
		if err != nil {
			return nil, err
		}
		return s.provider.ExtendPrepared(ctx, basePL, newQueries)
	})
	if err != nil {
		return "", 0, nil, err
	}
	rows, err = s.provider.AppendRowsPrepared(ctx, len(base), pl)
	if err != nil {
		return "", 0, nil, err
	}
	return combinedID, len(base), rows, nil
}

// Matrix computes the full pairwise distance matrix of an uploaded log.
func (s *session) Matrix(ctx context.Context, logID string) (dpe.Matrix, error) {
	pl, err := s.prepared(ctx, logID)
	if err != nil {
		return nil, err
	}
	return s.provider.DistanceMatrixPrepared(ctx, pl)
}

// Distances computes one matrix row of an uploaded log.
func (s *session) Distances(ctx context.Context, logID string, q int) ([]float64, error) {
	pl, err := s.prepared(ctx, logID)
	if err != nil {
		return nil, err
	}
	return s.provider.DistancesPrepared(ctx, pl, q)
}

// Mine builds the matrix of an uploaded log and runs one mining
// algorithm over it. The spec is validated before any expensive work.
func (s *session) Mine(ctx context.Context, logID string, spec dpe.MineSpec) (*dpe.MineResult, error) {
	queries, err := s.log(logID)
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(len(queries)); err != nil {
		return nil, err
	}
	pl, err := s.prepared(ctx, logID)
	if err != nil {
		return nil, err
	}
	return s.provider.MinePrepared(ctx, pl, spec)
}

// Verify runs the Definition 1 check with the session's tolerance.
func (s *session) Verify(plain, enc dpe.Matrix) (*dpe.PreservationReport, error) {
	s.mu.Lock()
	s.touchLocked()
	s.mu.Unlock()
	return s.provider.VerifyPreservation(plain, enc)
}

// Stats snapshots the session.
func (s *session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchLocked()
	return SessionStats{
		Session:        s.id,
		Measure:        s.measure,
		Logs:           len(s.logs),
		PreparedHits:   s.hits,
		PreparedMisses: s.misses,
		CreatedAt:      s.created,
	}
}
