package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	dpe "repro"
	"repro/internal/service/ring"
)

// notFoundError marks lookup failures (unknown session or log) so the
// HTTP layer maps them to 404 instead of 400.
type notFoundError struct{ err error }

func (e notFoundError) Error() string  { return e.err.Error() }
func (e notFoundError) Unwrap() error  { return e.err }
func (e notFoundError) NotFound() bool { return true }

// Config tunes a Registry.
type Config struct {
	// MaxSessions bounds concurrently live sessions across all shards;
	// 0 means 64.
	MaxSessions int
	// Parallelism sizes each session provider's distance-engine worker
	// pool; <= 1 means sequential.
	Parallelism int
	// CacheEntries bounds the prepared-state cache's total entry count;
	// 0 means 128. The budget is split evenly across shards (rounded
	// up, minimum one entry per shard).
	CacheEntries int
	// CacheBytes bounds the prepared-state cache's estimated total
	// size; 0 means 64 MiB. Split across shards like CacheEntries.
	CacheBytes int64
	// MaxLogsPerSession bounds distinct uploaded logs per session; 0
	// means 64.
	MaxLogsPerSession int
	// MaxLogBytesPerSession bounds the total raw bytes of a session's
	// uploaded logs; 0 means 64 MiB.
	MaxLogBytesPerSession int64
	// SessionTTL is how long an idle session survives: the background
	// janitor reaps sessions untouched for longer, and CreateSession
	// reaps synchronously when the registry is full. 0 means 2 hours.
	SessionTTL time.Duration
	// Shards is the number of session shards — independent lock domains
	// each owning a slice of the session map, a singleflight group, and
	// a prepared-state LRU. 0 means DefaultShards(). 1 reproduces the
	// historical unsharded registry exactly.
	Shards int
	// JanitorInterval is how often each shard's janitor scans for
	// TTL-expired sessions. 0 means SessionTTL/4 clamped to [1s, 5m];
	// < 0 disables the background janitor entirely (idle sessions are
	// then reaped only when CreateSession hits capacity).
	JanitorInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxLogsPerSession <= 0 {
		c.MaxLogsPerSession = 64
	}
	if c.MaxLogBytesPerSession <= 0 {
		c.MaxLogBytesPerSession = 64 << 20
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 2 * time.Hour
	}
	if c.Shards <= 0 {
		c.Shards = DefaultShards()
	}
	if c.JanitorInterval == 0 {
		c.JanitorInterval = c.SessionTTL / 4
		if c.JanitorInterval < time.Second {
			c.JanitorInterval = time.Second
		}
		if c.JanitorInterval > 5*time.Minute {
			c.JanitorInterval = 5 * time.Minute
		}
	}
	return c
}

// DefaultShards derives a shard count from GOMAXPROCS, rounded up to
// the next power of two and clamped to [1, 256]: enough lock domains
// that cores rarely collide, few enough that split cache budgets stay
// meaningful.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 256 {
		s <<= 1
	}
	return s
}

// CreateSessionRequest is the wire body of POST /v1/sessions: the
// measure plus whatever Table I shared artifacts it needs. Catalog (with
// an optional aggregator key for encrypted content) belongs to the
// result measure, Domains to the access-area measure.
type CreateSessionRequest struct {
	// Measure is required: a pointer so an absent (or misspelled) field
	// is an error instead of silently defaulting to the token measure.
	Measure       *dpe.Measure          `json:"measure"`
	Catalog       *WireCatalog          `json:"catalog,omitempty"`
	AggregatorKey *WireAggregatorKey    `json:"aggregator_key,omitempty"`
	Domains       map[string]WireDomain `json:"domains,omitempty"`
	AccessAreaX   float64               `json:"access_area_x,omitempty"`
	Tolerance     float64               `json:"tolerance,omitempty"`
}

// SessionStats is the wire body of GET /v1/sessions/{id}: what a tenant
// can observe about its session, including whether its calls are being
// served from the prepared-state cache.
type SessionStats struct {
	Session        string      `json:"session"`
	Measure        dpe.Measure `json:"measure"`
	Logs           int         `json:"logs"`
	PreparedHits   int64       `json:"prepared_hits"`
	PreparedMisses int64       `json:"prepared_misses"`
	CreatedAt      time.Time   `json:"created_at"`
}

// ShardStats is one shard's slice of GET /v1/stats?per_shard=1.
type ShardStats struct {
	Shard         int        `json:"shard"`
	Sessions      int        `json:"sessions"`
	PreparedCache CacheStats `json:"prepared_cache"`
}

// RegistryStats is the wire body of GET /v1/stats. The top-level fields
// aggregate across shards (wire-compatible with the unsharded format);
// PerShard carries the optional breakdown.
type RegistryStats struct {
	Sessions      int          `json:"sessions"`
	MaxSessions   int          `json:"max_sessions"`
	Shards        int          `json:"shards"`
	PreparedCache CacheStats   `json:"prepared_cache"`
	PerShard      []ShardStats `json:"per_shard,omitempty"`
}

// Registry is the service's multi-tenant state, sharded by session id:
// a consistent-hash ring routes every id to one of N shards, each with
// its own mutex, session map, singleflight group, and prepared-state
// LRU — so tenant traffic on different shards never shares a lock. All
// methods are safe for concurrent use.
type Registry struct {
	cfg    Config
	router *ring.Ring
	shards []*shard

	// live is the registry-wide session count: capacity is a global
	// budget enforced lock-free, so MaxSessions means the same thing at
	// every shard count.
	live atomic.Int64

	stop      chan struct{}
	janitors  sync.WaitGroup
	closeOnce sync.Once
}

// NewRegistry creates an empty registry and, unless the janitor is
// disabled, starts one background reaper goroutine per shard. Callers
// that care about goroutine hygiene should Close it when done.
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	r := &Registry{
		cfg:    cfg,
		router: ring.New(cfg.Shards),
		shards: make([]*shard, cfg.Shards),
		stop:   make(chan struct{}),
	}
	entries := splitEntries(cfg.CacheEntries, cfg.Shards)
	bytes := splitBytes(cfg.CacheBytes, cfg.Shards)
	for i := range r.shards {
		r.shards[i] = newShard(entries, bytes)
	}
	if cfg.JanitorInterval > 0 {
		for _, sh := range r.shards {
			r.janitors.Add(1)
			go r.janitor(sh)
		}
	}
	return r
}

// Close stops the background janitors. The registry itself remains
// usable (sessions, lookups, caches all keep working); only the
// periodic TTL reaping stops. Safe to call more than once.
func (r *Registry) Close() {
	r.closeOnce.Do(func() { close(r.stop) })
	r.janitors.Wait()
}

// janitor periodically reaps one shard's TTL-expired sessions, so
// abandoned tenants are reclaimed even when no CreateSession pressure
// ever hits capacity. Each shard gets its own ticker: a slow scan of
// one shard never delays the others.
func (r *Registry) janitor(sh *shard) {
	defer r.janitors.Done()
	t := time.NewTicker(r.cfg.JanitorInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-t.C:
			r.reapShard(sh, now)
		}
	}
}

// reapShard removes one shard's idle sessions and releases everything
// they held: the capacity slot and the cached prepared state.
func (r *Registry) reapShard(sh *shard, now time.Time) {
	for _, id := range sh.reapIdle(now, r.cfg.SessionTTL) {
		r.live.Add(-1)
		sh.cache.removePrefix(id + "\x00")
	}
}

// reapIdle sweeps every shard; called when CreateSession is at capacity.
func (r *Registry) reapIdle(now time.Time) {
	for _, sh := range r.shards {
		r.reapShard(sh, now)
	}
}

// shardFor routes a session id to its shard. The ring makes the mapping
// stable across processes, so a future multi-node deployment can route
// tenants with the identical function.
func (r *Registry) shardFor(id string) *shard {
	return r.shards[r.router.Shard(id)]
}

// newSessionID draws an unguessable session id: in a multi-tenant
// service the id is the only thing protecting one tenant's session from
// another, so it must not be enumerable.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: generating session id: %w", err)
	}
	return "s-" + hex.EncodeToString(b[:]), nil
}

// errTooManySessions distinguishes capacity exhaustion (429) from bad
// requests (400).
var errTooManySessions = fmt.Errorf("service: session limit reached")

// CreateSession decodes the request's artifacts, builds the provider
// once, and registers a session serving it on the shard its id hashes
// to. Capacity is a registry-wide budget: when full, idle sessions are
// reaped across all shards before the request is refused.
func (r *Registry) CreateSession(req *CreateSessionRequest) (*session, error) {
	if req.Measure == nil {
		return nil, fmt.Errorf("service: request is missing the measure (want token|structure|result|access-area)")
	}
	opts := []dpe.ProviderOption{dpe.WithParallelism(r.cfg.Parallelism)}
	if req.Catalog != nil {
		cat, err := req.Catalog.Decode()
		if err != nil {
			return nil, err
		}
		var agg dpe.Aggregator
		if req.AggregatorKey != nil {
			pk, err := req.AggregatorKey.Decode()
			if err != nil {
				return nil, err
			}
			agg = dpe.AggregatorFromKey(pk)
		}
		opts = append(opts, dpe.WithCatalog(cat, agg))
	}
	if req.Domains != nil {
		domains, err := DecodeDomains(req.Domains)
		if err != nil {
			return nil, err
		}
		opts = append(opts, dpe.WithDomains(domains))
	}
	if req.AccessAreaX != 0 {
		opts = append(opts, dpe.WithAccessAreaX(req.AccessAreaX))
	}
	if req.Tolerance != 0 {
		opts = append(opts, dpe.WithTolerance(req.Tolerance))
	}
	provider, err := dpe.NewProvider(*req.Measure, opts...)
	if err != nil {
		return nil, err
	}

	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	now := time.Now()
	if int(r.live.Load()) >= r.cfg.MaxSessions {
		r.reapIdle(now)
	}
	// Reserve a capacity slot with a CAS loop: concurrent creates on
	// different shards share no lock, so the global budget must be
	// claimed atomically.
	for {
		n := r.live.Load()
		if int(n) >= r.cfg.MaxSessions {
			return nil, fmt.Errorf("%w (%d live)", errTooManySessions, n)
		}
		if r.live.CompareAndSwap(n, n+1) {
			break
		}
	}
	sh := r.shardFor(id)
	s := &session{
		id:       id,
		measure:  *req.Measure,
		provider: provider,
		reg:      r,
		sh:       sh,
		logs:     make(map[string][]string),
		created:  now,
		lastUsed: now,
	}
	sh.put(s)
	return s, nil
}

// Session returns a live session by id.
func (r *Registry) Session(id string) (*session, error) {
	if s := r.shardFor(id).session(id); s != nil {
		return s, nil
	}
	return nil, notFoundError{fmt.Errorf("service: unknown session %q", id)}
}

// DeleteSession removes a session and its cached prepared state.
func (r *Registry) DeleteSession(id string) error {
	sh := r.shardFor(id)
	if !sh.remove(id) {
		return notFoundError{fmt.Errorf("service: unknown session %q", id)}
	}
	r.live.Add(-1)
	sh.cache.removePrefix(id + "\x00")
	return nil
}

// Stats aggregates a snapshot across shards. Each shard is snapshotted
// independently under its own briefly-held locks and summed outside any
// of them — prepared-state sizes were charged when entries were cached,
// so no lock is ever held while sizing, and a stats call cannot stall
// tenant traffic on any shard.
func (r *Registry) Stats() RegistryStats {
	return r.aggregate(r.ShardStats())
}

// StatsPerShard is Stats with the per-shard breakdown attached. Both
// views derive from the one set of snapshots, so the aggregate fields
// always reconcile exactly against the breakdown they ship with.
func (r *Registry) StatsPerShard() RegistryStats {
	snaps := r.ShardStats()
	stats := r.aggregate(snaps)
	stats.PerShard = snaps
	return stats
}

// aggregate sums one consistent set of shard snapshots.
func (r *Registry) aggregate(snaps []ShardStats) RegistryStats {
	stats := RegistryStats{
		MaxSessions: r.cfg.MaxSessions,
		Shards:      len(r.shards),
	}
	for _, snap := range snaps {
		stats.Sessions += snap.Sessions
		stats.PreparedCache.Entries += snap.PreparedCache.Entries
		stats.PreparedCache.Bytes += snap.PreparedCache.Bytes
		stats.PreparedCache.Hits += snap.PreparedCache.Hits
		stats.PreparedCache.Misses += snap.PreparedCache.Misses
		stats.PreparedCache.Evictions += snap.PreparedCache.Evictions
	}
	return stats
}

// ShardStats snapshots every shard — the per_shard stats breakdown.
func (r *Registry) ShardStats() []ShardStats {
	out := make([]ShardStats, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.snapshot(i)
	}
	return out
}
