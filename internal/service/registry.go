package service

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	dpe "repro"
	"repro/internal/obs"
	"repro/internal/service/ring"
	"repro/internal/store"
	"repro/internal/store/journal"
)

// notFoundError marks lookup failures (unknown session or log) so the
// HTTP layer maps them to 404 instead of 400.
type notFoundError struct{ err error }

func (e notFoundError) Error() string  { return e.err.Error() }
func (e notFoundError) Unwrap() error  { return e.err }
func (e notFoundError) NotFound() bool { return true }

// Config tunes a Registry.
type Config struct {
	// MaxSessions bounds concurrently live sessions across all shards;
	// 0 means 64.
	MaxSessions int
	// Parallelism sizes each session provider's distance-engine worker
	// pool; <= 1 means sequential.
	Parallelism int
	// CacheEntries bounds the prepared-state cache's total entry count;
	// 0 means 128. The budget is split evenly across shards (rounded
	// up, minimum one entry per shard).
	CacheEntries int
	// CacheBytes bounds the prepared-state cache's estimated total
	// size; 0 means 64 MiB. Split across shards like CacheEntries.
	CacheBytes int64
	// MaxLogsPerSession bounds distinct uploaded logs per session; 0
	// means 64.
	MaxLogsPerSession int
	// MaxLogBytesPerSession bounds the total raw bytes of a session's
	// uploaded logs; 0 means 64 MiB.
	MaxLogBytesPerSession int64
	// SessionTTL is how long an idle session survives: the background
	// janitor reaps sessions untouched for longer, and CreateSession
	// reaps synchronously when the registry is full. 0 means 2 hours.
	SessionTTL time.Duration
	// Shards is the number of session shards — independent lock domains
	// each owning a slice of the session map, a singleflight group, and
	// a prepared-state LRU. 0 means DefaultShards(). 1 reproduces the
	// historical unsharded registry exactly.
	Shards int
	// JanitorInterval is how often each shard's janitor scans for
	// TTL-expired sessions. 0 means SessionTTL/4 clamped to [1s, 5m];
	// < 0 disables the background janitor entirely (idle sessions are
	// then reaped only when CreateSession hits capacity).
	JanitorInterval time.Duration
	// Store is the persistence seam: session creations/deletions, log
	// uploads, and prepared-state snapshots are journaled to one
	// store.Log per shard, and OpenRegistry replays them so a restart
	// loses no tenant state. nil means store.Null{} — the historical
	// in-memory registry.
	Store store.Store
	// CompactEvery is how often each shard's janitor additionally
	// rewrites the shard's journal down to its live records (dropping
	// tombstoned sessions and superseded snapshots). 0 means 10
	// minutes; < 0 disables periodic compaction. Ignored without a
	// persistent Store.
	CompactEvery time.Duration
	// Obs, when set, wires the registry's instruments into a metrics
	// registry (session lifecycle counters, cache gauges, singleflight
	// dedups, provider stage histograms — see metrics.go). nil leaves
	// the registry uninstrumented at zero per-request cost.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxLogsPerSession <= 0 {
		c.MaxLogsPerSession = 64
	}
	if c.MaxLogBytesPerSession <= 0 {
		c.MaxLogBytesPerSession = 64 << 20
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 2 * time.Hour
	}
	if c.Shards <= 0 {
		c.Shards = DefaultShards()
	}
	if c.JanitorInterval == 0 {
		c.JanitorInterval = c.SessionTTL / 4
		if c.JanitorInterval < time.Second {
			c.JanitorInterval = time.Second
		}
		if c.JanitorInterval > 5*time.Minute {
			c.JanitorInterval = 5 * time.Minute
		}
	}
	if c.Store == nil {
		c.Store = store.Null{}
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = 10 * time.Minute
	}
	return c
}

// DefaultShards derives a shard count from GOMAXPROCS, rounded up to
// the next power of two and clamped to [1, 256]: enough lock domains
// that cores rarely collide, few enough that split cache budgets stay
// meaningful.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 256 {
		s <<= 1
	}
	return s
}

// CreateSessionRequest is the wire body of POST /v1/sessions: the
// measure plus whatever Table I shared artifacts it needs. Catalog (with
// an optional aggregator key for encrypted content) belongs to the
// result measure, Domains to the access-area measure.
type CreateSessionRequest struct {
	// Measure is required: a pointer so an absent (or misspelled) field
	// is an error instead of silently defaulting to the token measure.
	Measure       *dpe.Measure          `json:"measure"`
	Catalog       *WireCatalog          `json:"catalog,omitempty"`
	AggregatorKey *WireAggregatorKey    `json:"aggregator_key,omitempty"`
	Domains       map[string]WireDomain `json:"domains,omitempty"`
	AccessAreaX   float64               `json:"access_area_x,omitempty"`
	Tolerance     float64               `json:"tolerance,omitempty"`
}

// SessionStats is the wire body of GET /v1/sessions/{id}: what a tenant
// can observe about its session, including whether its calls are being
// served from the prepared-state cache.
type SessionStats struct {
	Session        string      `json:"session"`
	Measure        dpe.Measure `json:"measure"`
	Logs           int         `json:"logs"`
	PreparedHits   int64       `json:"prepared_hits"`
	PreparedMisses int64       `json:"prepared_misses"`
	// ApproxHits/ApproxMisses count approx-index cache outcomes for the
	// neighbors and approximate-mining paths. A restart that recovered
	// the index from the journal shows a hit (and no miss) on the first
	// post-restart call.
	ApproxHits   int64 `json:"approx_hits"`
	ApproxMisses int64 `json:"approx_misses"`
	// MineStateHits/MineStateMisses count mining-state cache outcomes on
	// the logs:append_mine path. A restart that recovered the state from
	// the journal warm-starts the first post-restart mine (a miss whose
	// result reports Warm) instead of bootstrapping cold.
	MineStateHits   int64     `json:"mine_state_hits"`
	MineStateMisses int64     `json:"mine_state_misses"`
	CreatedAt       time.Time `json:"created_at"`
}

// ShardStats is one shard's slice of GET /v1/stats?per_shard=1.
type ShardStats struct {
	Shard         int        `json:"shard"`
	Sessions      int        `json:"sessions"`
	PreparedCache CacheStats `json:"prepared_cache"`
}

// RecoveryStats counts what OpenRegistry replayed from a persistent
// store — the observable proof that a restart recovered tenant state
// instead of starting cold.
type RecoveryStats struct {
	// Sessions, Logs, Snapshots, ApproxIndexes, and MineStates count the
	// live records restored.
	Sessions      int `json:"sessions"`
	Logs          int `json:"logs"`
	Snapshots     int `json:"snapshots"`
	ApproxIndexes int `json:"approx_indexes"`
	MineStates    int `json:"mine_states"`
	// Tombstones counts replayed deletions (sessions journaled and
	// later removed; startup compaction drops them from the journal).
	Tombstones int `json:"tombstones"`
	// Skipped counts records that could not be applied: unknown kinds
	// from newer binaries, orphaned logs/snapshots of tombstoned
	// sessions, or undecodable payloads.
	Skipped int `json:"skipped"`
}

// total is the number of applied-or-seen records — used to decide
// whether a startup compaction is worth doing.
func (rs RecoveryStats) total() int {
	return rs.Sessions + rs.Logs + rs.Snapshots + rs.ApproxIndexes + rs.MineStates + rs.Tombstones + rs.Skipped
}

// absorb folds one journal's typed replay counts into the recovery
// report (the registry replays one journal per shard, plus orphans).
func (rs *RecoveryStats) absorb(st journal.Stats) {
	rs.Sessions += st.Sessions
	rs.Logs += st.Logs
	rs.Snapshots += st.Snapshots
	rs.ApproxIndexes += st.Approx
	rs.MineStates += st.Mining
	rs.Tombstones += st.Deletes
	rs.Skipped += st.Skipped
}

// RegistryStats is the wire body of GET /v1/stats. The top-level fields
// aggregate across shards (wire-compatible with the unsharded format);
// PerShard carries the optional breakdown, and Recovered appears only
// on registries opened from a persistent store.
type RegistryStats struct {
	Sessions      int        `json:"sessions"`
	MaxSessions   int        `json:"max_sessions"`
	Shards        int        `json:"shards"`
	PreparedCache CacheStats `json:"prepared_cache"`
	// MineStateHits/MineStateMisses aggregate the sessions' mining-state
	// cache outcomes registry-wide. They are monotonic (they survive
	// session deletion), so /metrics exports the same counters as
	// dpe_mine_state_{hits,misses}_total and the two views reconcile
	// exactly.
	MineStateHits   int64          `json:"mine_state_hits"`
	MineStateMisses int64          `json:"mine_state_misses"`
	Recovered       *RecoveryStats `json:"recovered,omitempty"`
	PerShard        []ShardStats   `json:"per_shard,omitempty"`
}

// Registry is the service's multi-tenant state, sharded by session id:
// a consistent-hash ring routes every id to one of N shards, each with
// its own mutex, session map, singleflight group, prepared-state LRU,
// and (when persistent) journal — so tenant traffic on different shards
// never shares a lock. All methods are safe for concurrent use.
type Registry struct {
	cfg    Config
	router *ring.Ring
	shards []*shard

	// persistent is true when cfg.Store journals for real (not Null):
	// the write-through hooks and the janitor's compaction activate
	// only then.
	persistent bool
	recovered  RecoveryStats
	// replayDeleted remembers every tombstoned id seen during replay,
	// including deletes whose create record has not been replayed yet
	// (journals replay in file order, and a re-homed session's create
	// can live in a later journal than its tombstone). A create for a
	// remembered id is stale — session ids are random and never reused
	// — and must not resurrect. Only used inside OpenRegistry; nil
	// afterwards.
	replayDeleted map[string]bool

	// live is the registry-wide session count: capacity is a global
	// budget enforced lock-free, so MaxSessions means the same thing at
	// every shard count.
	live atomic.Int64

	// mineStateHits/mineStateMisses are the registry-wide mining-state
	// cache counters: bumped alongside the per-session ones, read by
	// both GET /v1/stats and the /metrics series, so the two views are
	// one source and reconcile exactly. Registry-level (not summed from
	// sessions) so they stay monotonic across session deletion.
	mineStateHits   atomic.Int64
	mineStateMisses atomic.Int64

	// metrics holds the obs instruments (all nil unless cfg.Obs is set
	// — every call site tolerates that; see metrics.go).
	metrics registryMetrics

	stop        chan struct{}
	janitors    sync.WaitGroup
	closeOnce   sync.Once
	journalOnce sync.Once
}

// NewRegistry creates an empty in-memory registry and, unless the
// janitor is disabled, starts one background reaper goroutine per
// shard. Callers that care about goroutine hygiene should Close it when
// done. It panics if a persistent Store is configured and fails to open
// or replay — callers wiring real persistence should use OpenRegistry
// and handle the error.
func NewRegistry(cfg Config) *Registry {
	r, err := OpenRegistry(cfg)
	if err != nil {
		panic(fmt.Sprintf("service: NewRegistry with a failing store: %v", err))
	}
	return r
}

// OpenRegistry creates a registry and, when cfg.Store persists, replays
// every shard's journal so the process resumes exactly where its
// predecessor stopped: sessions route to the same shards (the ring's
// key→shard map is stable), uploaded logs are servable, and replayed
// prepared-state snapshots make the first post-restart request a cache
// hit. After a successful replay the journals are compacted once,
// dropping tombstones and re-homing records if the shard count changed.
func OpenRegistry(cfg Config) (*Registry, error) {
	cfg = cfg.withDefaults()
	r := &Registry{
		cfg:    cfg,
		router: ring.New(cfg.Shards),
		shards: make([]*shard, cfg.Shards),
		stop:   make(chan struct{}),
	}
	_, isNull := cfg.Store.(store.Null)
	r.persistent = !isNull
	entries := splitEntries(cfg.CacheEntries, cfg.Shards)
	bytes := splitBytes(cfg.CacheBytes, cfg.Shards)
	for i := range r.shards {
		lg, err := cfg.Store.Open(i)
		if err != nil {
			r.closeJournals()
			return nil, fmt.Errorf("service: opening shard %d journal: %w", i, err)
		}
		r.shards[i] = newShard(entries, bytes, journal.New(lg))
	}
	if r.persistent {
		r.replayDeleted = make(map[string]bool)
		if err := r.replay(); err != nil {
			r.closeJournals()
			return nil, err
		}
		// A previous run may have used more shards: replay the extra
		// journals too (records route by id, so sessions land on their
		// new owning shard) and retire them once the owning shards'
		// compaction has re-homed every record.
		orphans, err := r.replayOrphans()
		if err != nil {
			for _, orphan := range orphans {
				orphan.Close()
			}
			r.closeJournals()
			return nil, err
		}
		if r.recovered.total() > 0 {
			// Normalize after recovery: tombstones drop, duplicate records
			// collapse, and a session whose id now routes elsewhere (the
			// operator changed -shards) moves to its owning shard's journal.
			for _, sh := range r.shards {
				if err := r.compactShard(sh); err != nil {
					r.closeJournals()
					return nil, fmt.Errorf("service: startup compaction: %w", err)
				}
			}
		}
		for _, orphan := range orphans {
			// Best-effort: a failed retirement means the orphan is
			// re-replayed next boot — harmless, because duplicates are
			// idempotent and replayDeleted blocks stale creates.
			orphan.Compact(nil) // nil collect empties the journal
			orphan.Close()
		}
		r.replayDeleted = nil
	}
	// Wire metrics after replay (recovery never pollutes the serving
	// counters — RecoveryStats reports it separately) and before the
	// janitors start reading the reap counters.
	if cfg.Obs != nil {
		r.wireMetrics(cfg.Obs)
	}
	if cfg.JanitorInterval > 0 {
		for _, sh := range r.shards {
			r.janitors.Add(1)
			go r.janitor(sh)
		}
	}
	return r, nil
}

// replay streams every shard's journal back into memory through the
// typed handler. Records are routed by session id through the ring —
// not by which file they were found in — so a journal written under a
// different shard count still recovers completely.
func (r *Registry) replay() error {
	h := replayApplier{r}
	for i, sh := range r.shards {
		st, err := sh.journal.Replay(h)
		r.recovered.absorb(st)
		if err != nil {
			return fmt.Errorf("service: replaying shard %d journal: %w", i, err)
		}
	}
	return nil
}

// replayOrphans replays journals of shards beyond the configured count
// and returns their handles so the caller can retire them after the
// live shards' compaction has re-homed the records.
func (r *Registry) replayOrphans() ([]*journal.Journal, error) {
	indexes, err := r.cfg.Store.List()
	if err != nil {
		return nil, fmt.Errorf("service: listing journals: %w", err)
	}
	var orphans []*journal.Journal
	for _, idx := range indexes {
		if idx < r.cfg.Shards {
			continue // owned by a live shard, already replayed
		}
		lg, err := r.cfg.Store.Open(idx)
		if err != nil {
			return orphans, fmt.Errorf("service: opening orphan journal %d: %w", idx, err)
		}
		jl := journal.New(lg)
		st, err := jl.Replay(replayApplier{r})
		r.recovered.absorb(st)
		if err != nil {
			jl.Close()
			return orphans, fmt.Errorf("service: replaying orphan journal %d: %w", idx, err)
		}
		orphans = append(orphans, jl)
	}
	return orphans, nil
}

// replayApplier is the journal.Handler that applies replayed records to
// the registry. Replay is idempotent (duplicates report Ignored) and
// tolerant: a record it cannot apply reports Skipped, never fatal — the
// journal is a recovery aid, and partial recovery beats refusing to
// start.
type replayApplier struct{ r *Registry }

func (a replayApplier) Session(js journal.Session) journal.Outcome {
	return a.r.restoreSession(js)
}

func (a replayApplier) Delete(d journal.Delete) journal.Outcome {
	r := a.r
	// Remember the tombstone even when the session is not (yet) live:
	// its create record may still be waiting in a later journal, and
	// replaying it then must not resurrect the tenant.
	r.replayDeleted[d.ID] = true
	sh := r.shardFor(d.ID)
	if sh.remove(d.ID) {
		r.live.Add(-1)
		sh.cache.removePrefix(d.ID + "\x00")
	}
	return journal.Applied
}

func (a replayApplier) Log(l journal.Log) journal.Outcome {
	s := a.r.replaySession(l.SessionID)
	if s == nil {
		return journal.Skipped
	}
	if !s.restoreLog(l.LogID, l.Queries) {
		return journal.Ignored // already present: harmless duplicate
	}
	return journal.Applied
}

func (a replayApplier) Snapshot(sn journal.Snapshot) journal.Outcome {
	s := a.r.replaySession(sn.SessionID)
	if s == nil {
		return journal.Skipped
	}
	s.mu.Lock()
	queries, ok := s.logs[sn.LogID]
	s.mu.Unlock()
	if !ok {
		return journal.Skipped
	}
	pl, err := s.provider.UnmarshalPreparedLog(sn.Blob)
	if err != nil {
		return journal.Skipped
	}
	s.sh.cache.add(s.id+"\x00"+sn.LogID, pl, preparedCost(pl, queries))
	return journal.Applied
}

func (a replayApplier) Approx(ap journal.Approx) journal.Outcome {
	s := a.r.replaySession(ap.SessionID)
	if s == nil {
		return journal.Skipped
	}
	s.mu.Lock()
	queries, ok := s.logs[ap.LogID]
	s.mu.Unlock()
	if !ok {
		return journal.Skipped
	}
	idx, err := dpe.UnmarshalApproxIndex(ap.Blob)
	if err != nil || idx.Len() != len(queries) {
		return journal.Skipped
	}
	s.sh.cache.add(s.approxKey(ap.LogID), idx, idx.SizeBytes())
	return journal.Applied
}

func (a replayApplier) Mining(m journal.Mining) journal.Outcome {
	s := a.r.replaySession(m.SessionID)
	if s == nil {
		return journal.Skipped
	}
	s.mu.Lock()
	queries, ok := s.logs[m.LogID]
	s.mu.Unlock()
	if !ok {
		return journal.Skipped
	}
	state, err := dpe.UnmarshalMineState(m.Blob)
	if err != nil || state.Len() != len(queries) {
		return journal.Skipped
	}
	s.sh.cache.add(s.mineKey(state.Spec(), m.LogID), state, state.SizeBytes())
	return journal.Applied
}

// replaySession resolves a record's session during replay, or nil.
func (r *Registry) replaySession(id string) *session {
	if id == "" {
		return nil
	}
	return r.shardFor(id).session(id)
}

// restoreSession rebuilds one session from its journaled create
// request. The session's idle clock restarts at recovery time: its
// tenant gets a full TTL to come back, rather than being reaped for
// idleness accrued while the server was down.
func (r *Registry) restoreSession(js journal.Session) journal.Outcome {
	var req CreateSessionRequest
	if err := json.Unmarshal(js.Request, &req); err != nil || req.Measure == nil {
		return journal.Skipped
	}
	if r.replayDeleted[js.ID] {
		return journal.Skipped // stale create of an already-tombstoned id
	}
	sh := r.shardFor(js.ID)
	if sh.session(js.ID) != nil {
		return journal.Ignored // duplicate (e.g. compaction raced an append)
	}
	provider, err := buildProvider(&req, r.cfg.Parallelism, r.observeStage)
	if err != nil {
		return journal.Skipped
	}
	s := &session{
		id:         js.ID,
		measure:    *req.Measure,
		provider:   provider,
		reg:        r,
		sh:         sh,
		logs:       make(map[string][]string),
		created:    js.Created,
		lastUsed:   time.Now(),
		persistReq: js.Request,
	}
	sh.put(s)
	r.live.Add(1)
	return journal.Applied
}

// Recovery reports what this registry replayed at open time (all zeros
// for in-memory registries).
func (r *Registry) Recovery() RecoveryStats { return r.recovered }

// closeJournals closes every opened shard journal and the store.
func (r *Registry) closeJournals() {
	r.journalOnce.Do(func() {
		for _, sh := range r.shards {
			if sh != nil && sh.journal != nil {
				sh.journal.Close()
			}
		}
		r.cfg.Store.Close()
	})
}

// Close stops the background janitors and syncs and closes the shard
// journals. The registry's in-memory state remains usable (sessions,
// lookups, caches all keep working); only the periodic TTL reaping and
// — for persistent registries — journaling stop. Safe to call more
// than once.
func (r *Registry) Close() {
	r.closeOnce.Do(func() { close(r.stop) })
	r.janitors.Wait()
	r.closeJournals()
}

// janitor periodically reaps one shard's TTL-expired sessions, so
// abandoned tenants are reclaimed even when no CreateSession pressure
// ever hits capacity, and — on persistent registries — periodically
// compacts the shard's journal. Each shard gets its own ticker: a slow
// scan of one shard never delays the others.
func (r *Registry) janitor(sh *shard) {
	defer r.janitors.Done()
	t := time.NewTicker(r.cfg.JanitorInterval)
	defer t.Stop()
	lastCompact := time.Now()
	for {
		select {
		case <-r.stop:
			return
		case now := <-t.C:
			r.reapShard(sh, now)
			if r.persistent && r.cfg.CompactEvery > 0 && now.Sub(lastCompact) >= r.cfg.CompactEvery {
				lastCompact = now
				// Best-effort: a failed compaction leaves the previous
				// journal intact, and the next tick retries.
				r.compactShard(sh)
			}
		}
	}
}

// reapShard removes one shard's idle sessions and releases everything
// they held: the capacity slot, the cached prepared state, and — via a
// tombstone — the journaled records (dropped for good at the next
// compaction).
func (r *Registry) reapShard(sh *shard, now time.Time) {
	for _, id := range sh.reapIdle(now, r.cfg.SessionTTL) {
		r.live.Add(-1)
		r.metrics.sessionsReaped.Inc()
		r.metrics.evictReap.Add(int64(sh.cache.removePrefix(id + "\x00")))
		if r.persistent {
			sh.journal.Append(journal.Delete{ID: id})
		}
	}
}

// reapIdle sweeps every shard; called when CreateSession is at capacity.
func (r *Registry) reapIdle(now time.Time) {
	for _, sh := range r.shards {
		r.reapShard(sh, now)
	}
}

// compactShard rewrites one shard's journal down to its live state:
// one session record per live session, its logs, and the prepared-state
// snapshots currently cached. The journal's lock is held across the
// collect + rewrite, so no append can slip between what was collected
// and what the rewritten journal holds (appenders never hold session or
// shard locks while journaling, keeping the order acyclic). Holding the
// lock for the whole rewrite is deliberate: collecting outside it would
// let a racing create's record be overwritten away. The cost is that
// tenant writes on this shard queue behind the compaction — acceptable
// while compaction stays rare (-compact-interval) relative to the write
// rate.
func (r *Registry) compactShard(sh *shard) error {
	return sh.journal.Compact(func() []journal.Record {
		sessions := sh.list()
		sort.Slice(sessions, func(i, j int) bool {
			if !sessions[i].created.Equal(sessions[j].created) {
				return sessions[i].created.Before(sessions[j].created)
			}
			return sessions[i].id < sessions[j].id
		})
		var recs []journal.Record
		for _, s := range sessions {
			recs = append(recs, collectSession(sh, s)...)
		}
		return recs
	})
}

// collectSession renders one live session as typed journal records: the
// create record, each uploaded log, and whatever prepared-state,
// approx-index, and mining-state blobs are currently cached. It is the
// one serializer both journal compaction and tenant export share, so an
// exported bundle holds exactly what a compacted journal would.
func collectSession(sh *shard, s *session) []journal.Record {
	if len(s.persistReq) == 0 {
		return nil // no encoded create request (should not happen)
	}
	recs := []journal.Record{journal.Session{ID: s.id, Created: s.created, Request: s.persistReq}}
	s.mu.Lock()
	ids := make([]string, 0, len(s.logs))
	for id := range s.logs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	logs := make(map[string][]string, len(ids))
	for _, id := range ids {
		logs[id] = s.logs[id]
	}
	s.mu.Unlock()
	for _, id := range ids {
		recs = append(recs, journal.Log{SessionID: s.id, LogID: id, Queries: logs[id]})
		if v, ok := sh.cache.peek(s.id + "\x00" + id); ok {
			if blob, err := s.provider.MarshalPreparedLog(v.(*dpe.PreparedLog)); err == nil {
				recs = append(recs, journal.Snapshot{SessionID: s.id, LogID: id, Blob: blob})
			}
		}
		if v, ok := sh.cache.peek(s.approxKey(id)); ok {
			if blob, err := v.(*dpe.ApproxIndex).MarshalBinary(); err == nil {
				recs = append(recs, journal.Approx{SessionID: s.id, LogID: id, Blob: blob})
			}
		}
	}
	// Mining-state keys embed a spec fingerprint the session map does
	// not hold, so they are enumerated from the cache instead of
	// reconstructed per log; the log id after the key's final NUL
	// separator ties each state back to its record. States for logs
	// no longer live (evicted base logs of an append chain) are
	// dropped — replay could not apply them anyway.
	for _, key := range sh.cache.keysWithPrefix(s.id + "\x00mine:") {
		id := key[strings.LastIndexByte(key, '\x00')+1:]
		if _, ok := logs[id]; !ok {
			continue
		}
		if v, ok := sh.cache.peek(key); ok {
			if blob, err := dpe.MarshalMineState(v.(*dpe.MineState)); err == nil {
				recs = append(recs, journal.Mining{SessionID: s.id, LogID: id, Blob: blob})
			}
		}
	}
	return recs
}

// CompactAll synchronously compacts every shard's journal — an
// operational hook (tests, shutdown scripts); the janitor does this
// periodically on its own.
func (r *Registry) CompactAll() error {
	if !r.persistent {
		return nil
	}
	for i, sh := range r.shards {
		if err := r.compactShard(sh); err != nil {
			return fmt.Errorf("service: compacting shard %d: %w", i, err)
		}
	}
	return nil
}

// shardFor routes a session id to its shard. The ring makes the mapping
// stable across processes, so a future multi-node deployment can route
// tenants with the identical function — and a restarted one reloads
// each session into the same shard.
func (r *Registry) shardFor(id string) *shard {
	return r.shards[r.router.Shard(id)]
}

// newSessionID draws an unguessable session id: in a multi-tenant
// service the id is the only thing protecting one tenant's session from
// another, so it must not be enumerable.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: generating session id: %w", err)
	}
	return "s-" + hex.EncodeToString(b[:]), nil
}

// errTooManySessions distinguishes capacity exhaustion (429) from bad
// requests (400).
var errTooManySessions = fmt.Errorf("service: session limit reached")

// buildProvider decodes a create request's artifacts and constructs the
// provider — shared by CreateSession and journal replay, so a rebuilt
// session is byte-for-byte the session that was journaled. observe, when
// non-nil, wires the provider's pipeline-stage timings into the
// registry's histograms and request traces.
func buildProvider(req *CreateSessionRequest, parallelism int, observe dpe.StageObserver) (*dpe.Provider, error) {
	opts := []dpe.ProviderOption{dpe.WithParallelism(parallelism)}
	if observe != nil {
		opts = append(opts, dpe.WithStageObserver(observe))
	}
	if req.Catalog != nil {
		cat, err := req.Catalog.Decode()
		if err != nil {
			return nil, err
		}
		var agg dpe.Aggregator
		if req.AggregatorKey != nil {
			pk, err := req.AggregatorKey.Decode()
			if err != nil {
				return nil, err
			}
			agg = dpe.AggregatorFromKey(pk)
		}
		opts = append(opts, dpe.WithCatalog(cat, agg))
	}
	if req.Domains != nil {
		domains, err := DecodeDomains(req.Domains)
		if err != nil {
			return nil, err
		}
		opts = append(opts, dpe.WithDomains(domains))
	}
	if req.AccessAreaX != 0 {
		opts = append(opts, dpe.WithAccessAreaX(req.AccessAreaX))
	}
	if req.Tolerance != 0 {
		opts = append(opts, dpe.WithTolerance(req.Tolerance))
	}
	return dpe.NewProvider(*req.Measure, opts...)
}

// CreateSession decodes the request's artifacts, builds the provider
// once, registers a session serving it on the shard its id hashes to,
// and — on persistent registries — journals the creation. Capacity is
// a registry-wide budget: when full, idle sessions are reaped across
// all shards before the request is refused.
func (r *Registry) CreateSession(req *CreateSessionRequest) (*session, error) {
	if req.Measure == nil {
		return nil, fmt.Errorf("service: request is missing the measure (want token|structure|result|access-area)")
	}
	provider, err := buildProvider(req, r.cfg.Parallelism, r.observeStage)
	if err != nil {
		return nil, err
	}

	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	now := time.Now()
	// The request is encoded on every registry (not just persistent
	// ones): the bytes are what compaction re-journals and what export
	// bundles carry, and exporting from an in-memory server must work.
	persistReq, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("service: encoding session record: %w", err)
	}
	if int(r.live.Load()) >= r.cfg.MaxSessions {
		r.reapIdle(now)
	}
	// Reserve a capacity slot with a CAS loop: concurrent creates on
	// different shards share no lock, so the global budget must be
	// claimed atomically.
	for {
		n := r.live.Load()
		if int(n) >= r.cfg.MaxSessions {
			return nil, fmt.Errorf("%w (%d live)", errTooManySessions, n)
		}
		if r.live.CompareAndSwap(n, n+1) {
			break
		}
	}
	sh := r.shardFor(id)
	s := &session{
		id:         id,
		measure:    *req.Measure,
		provider:   provider,
		reg:        r,
		sh:         sh,
		logs:       make(map[string][]string),
		created:    now,
		lastUsed:   now,
		persistReq: persistReq,
	}
	sh.put(s)
	if r.persistent {
		if err := sh.journal.Append(journal.Session{ID: id, Created: now, Request: persistReq}); err != nil {
			sh.remove(id)
			r.live.Add(-1)
			return nil, fmt.Errorf("service: journaling session create: %w", err)
		}
	}
	r.metrics.sessionsCreated.Inc()
	return s, nil
}

// Session returns a live session by id.
func (r *Registry) Session(id string) (*session, error) {
	if s := r.shardFor(id).session(id); s != nil {
		return s, nil
	}
	return nil, notFoundError{fmt.Errorf("service: unknown session %q", id)}
}

// DeleteSession removes a session and its cached prepared state, and
// journals a tombstone on persistent registries (the records vanish for
// good at the next compaction).
func (r *Registry) DeleteSession(id string) error {
	sh := r.shardFor(id)
	if !sh.remove(id) {
		return notFoundError{fmt.Errorf("service: unknown session %q", id)}
	}
	r.live.Add(-1)
	r.metrics.sessionsDeleted.Inc()
	r.metrics.evictDelete.Add(int64(sh.cache.removePrefix(id + "\x00")))
	if r.persistent {
		if err := sh.journal.Append(journal.Delete{ID: id}); err != nil {
			// The in-memory delete already happened; surface the journal
			// problem so the operator knows a restart could resurrect it.
			return fmt.Errorf("service: journaling session delete: %w", err)
		}
	}
	return nil
}

// Stats aggregates a snapshot across shards. Each shard is snapshotted
// independently under its own briefly-held locks and summed outside any
// of them — prepared-state sizes were charged when entries were cached,
// so no lock is ever held while sizing, and a stats call cannot stall
// tenant traffic on any shard.
func (r *Registry) Stats() RegistryStats {
	return r.aggregate(r.ShardStats())
}

// StatsPerShard is Stats with the per-shard breakdown attached. Both
// views derive from the one set of snapshots, so the aggregate fields
// always reconcile exactly against the breakdown they ship with.
func (r *Registry) StatsPerShard() RegistryStats {
	snaps := r.ShardStats()
	stats := r.aggregate(snaps)
	stats.PerShard = snaps
	return stats
}

// aggregate sums one consistent set of shard snapshots.
func (r *Registry) aggregate(snaps []ShardStats) RegistryStats {
	stats := RegistryStats{
		MaxSessions:     r.cfg.MaxSessions,
		Shards:          len(r.shards),
		MineStateHits:   r.mineStateHits.Load(),
		MineStateMisses: r.mineStateMisses.Load(),
	}
	if r.persistent {
		recovered := r.recovered
		stats.Recovered = &recovered
	}
	for _, snap := range snaps {
		stats.Sessions += snap.Sessions
		stats.PreparedCache.Entries += snap.PreparedCache.Entries
		stats.PreparedCache.Bytes += snap.PreparedCache.Bytes
		stats.PreparedCache.Hits += snap.PreparedCache.Hits
		stats.PreparedCache.Misses += snap.PreparedCache.Misses
		stats.PreparedCache.Evictions += snap.PreparedCache.Evictions
	}
	return stats
}

// ShardStats snapshots every shard — the per_shard stats breakdown.
func (r *Registry) ShardStats() []ShardStats {
	out := make([]ShardStats, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.snapshot(i)
	}
	return out
}
