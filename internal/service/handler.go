package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	dpe "repro"
)

// maxBodyBytes bounds request bodies (uploaded artifacts can be large —
// an encrypted catalog is the biggest legitimate payload).
const maxBodyBytes = 256 << 20

// API wire bodies not owned by the registry.
type (
	// CreateSessionResponse answers POST /v1/sessions.
	CreateSessionResponse struct {
		Session string      `json:"session"`
		Measure dpe.Measure `json:"measure"`
	}
	// UploadLogRequest is the body of POST /v1/sessions/{id}/logs.
	UploadLogRequest struct {
		Queries []string `json:"queries"`
	}
	// UploadLogResponse answers it with the content-derived log id.
	UploadLogResponse struct {
		Log     string `json:"log"`
		Queries int    `json:"queries"`
	}
	// AppendLogRequest is the body of POST /v1/sessions/{id}/logs:append:
	// the already-uploaded base log plus the queries to append to it.
	AppendLogRequest struct {
		Log     string   `json:"log"`
		Queries []string `json:"queries"`
	}
	// MatrixRequest is the body of POST /v1/sessions/{id}/matrix.
	MatrixRequest struct {
		Log string `json:"log"`
	}
	// DistancesRequest is the body of POST /v1/sessions/{id}/distances.
	DistancesRequest struct {
		Log   string `json:"log"`
		Query int    `json:"query"`
	}
	// DistancesResponse answers it.
	DistancesResponse struct {
		Distances []float64 `json:"distances"`
	}
	// MineRequest is the body of POST /v1/sessions/{id}/mine.
	MineRequest struct {
		Log  string       `json:"log"`
		Spec WireMineSpec `json:"spec"`
	}
	// AppendMineRequest is the body of POST
	// /v1/sessions/{id}/logs:append_mine: one batched request that
	// appends queries to an uploaded base log AND mines the grown log
	// incrementally from the server's cached mining state.
	AppendMineRequest struct {
		Log     string       `json:"log"`
		Queries []string     `json:"queries"`
		Spec    WireMineSpec `json:"spec"`
	}
	// AppendMineResponse answers it: the combined log's id, the new
	// full-width matrix rows (rows Offset..N-1; absent for apriori,
	// which never builds a matrix), and the mining result — whose
	// Incremental field carries the warm/cold disposition, the pair
	// counters, and the label delta over the old rows.
	AppendMineResponse struct {
		Log    string          `json:"log"`
		N      int             `json:"n"`
		Offset int             `json:"offset"`
		Rows   [][]float64     `json:"rows,omitempty"`
		Result *WireMineResult `json:"result"`
	}
	// VerifyRequest is the body of POST /v1/sessions/{id}/verify: two
	// distance matrices to check entry-wise (Definition 1).
	VerifyRequest struct {
		Plain [][]float64 `json:"plain"`
		Enc   [][]float64 `json:"enc"`
	}
	// NeighborsResponse answers GET /v1/sessions/{id}/neighbors: the
	// top-k exact-ranked neighbors of one query, plus the number of LSH
	// candidates the server actually scored (the sublinear pair budget —
	// compare against n-1, the exhaustive row).
	NeighborsResponse struct {
		Neighbors  []dpe.Neighbor `json:"neighbors"`
		Candidates int            `json:"candidates"`
		N          int            `json:"n"`
	}
	// errorResponse is every non-2xx body. RequestID carries the same
	// correlation id the X-Request-Id response header does, so an error
	// a client logs can be matched to the server's access log even when
	// the transport stripped the headers.
	errorResponse struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id,omitempty"`
	}
)

// NewHandler exposes a registry as the dpeserver HTTP API under /v1
// with no metrics or logging — NewHandlerWithOptions with a zero
// options struct. Request ids are still assigned and echoed.
func NewHandler(reg *Registry) http.Handler {
	return NewHandlerWithOptions(reg, HandlerOptions{})
}

// NewHandlerWithOptions exposes a registry as the dpeserver HTTP API
// under /v1, wrapped in the request-id/metrics/logging middleware (see
// HandlerOptions). All endpoints honor request-context cancellation: a
// client that goes away aborts its matrix build mid-flight.
func NewHandlerWithOptions(reg *Registry, opts HandlerOptions) http.Handler {
	h := &handler{reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// GET /v1/stats aggregates across shards; ?per_shard=1 (or =true)
	// adds the per-shard breakdown without changing the aggregate
	// fields, so existing consumers keep parsing the same shape. The
	// breakdown and the aggregate come from one snapshot, so they
	// always reconcile.
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		var stats RegistryStats
		switch r.URL.Query().Get("per_shard") {
		case "1", "true":
			stats = reg.StatsPerShard()
		default:
			stats = reg.Stats()
		}
		writeJSON(w, http.StatusOK, stats)
	})
	mux.HandleFunc("POST /v1/sessions", h.createSession)
	mux.HandleFunc("POST /v1/sessions:import", h.importSession)
	mux.HandleFunc("GET /v1/sessions/{id}", h.sessionStats)
	mux.HandleFunc("GET /v1/sessions/{id}/export", h.exportSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", h.deleteSession)
	mux.HandleFunc("POST /v1/sessions/{id}/logs", h.uploadLog)
	mux.HandleFunc("POST /v1/sessions/{id}/logs:append", h.appendLog)
	mux.HandleFunc("POST /v1/sessions/{id}/logs:append_mine", h.appendMine)
	mux.HandleFunc("POST /v1/sessions/{id}/matrix", h.matrix)
	mux.HandleFunc("POST /v1/sessions/{id}/distances", h.distances)
	mux.HandleFunc("POST /v1/sessions/{id}/mine", h.mine)
	mux.HandleFunc("GET /v1/sessions/{id}/neighbors", h.neighbors)
	mux.HandleFunc("POST /v1/sessions/{id}/verify", h.verify)
	return &instrumented{
		mux:     mux,
		metrics: newHTTPMetrics(opts.Obs),
		logger:  opts.Logger,
		slow:    opts.SlowRequest,
	}
}

type handler struct {
	reg *Registry
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// writeError maps an error to a status: capacity exhaustion is 429,
// unknown sessions/logs are 404, a cancelled request context gets the
// non-standard-but-conventional 499 (the client is gone anyway), and
// everything else — bad artifacts, bad specs, parse failures — is the
// caller's fault (400).
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, errTooManySessions):
		status = http.StatusTooManyRequests
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() != nil {
			status = 499
		}
	default:
		var notFound interface{ NotFound() bool }
		if errors.As(err, &notFound) {
			status = http.StatusNotFound
		}
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), RequestID: RequestIDFromContext(r.Context())})
}

func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("service: decoding request body: %w", err)
	}
	return nil
}

// sessionOf resolves the {id} path segment.
func (h *handler) sessionOf(r *http.Request) (*session, error) {
	return h.reg.Session(r.PathValue("id"))
}

func (h *handler) createSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	s, err := h.reg.CreateSession(&req)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateSessionResponse{Session: s.ID(), Measure: *req.Measure})
}

// exportSession streams one session's portable bundle — the tenant's
// complete server-side state, CRC-checked, importable into any
// dpeserver regardless of its storage backend.
func (h *handler) exportSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Resolve before writing any bytes: a 404 must stay a 404, not a
	// half-written bundle with an error code stuck at 200.
	if _, err := h.reg.Session(id); err != nil {
		writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".dpe"))
	if err := h.reg.ExportSession(id, w); err != nil {
		// Headers are gone; the truncated body fails the client's CRC
		// check, which is the integrity story working as designed.
		return
	}
}

// importSession restores an exported bundle (raw bytes, not JSON) as a
// live session, preserving its id and warm cached state.
func (h *handler) importSession(w http.ResponseWriter, r *http.Request) {
	res, err := h.reg.ImportSession(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, res)
}

func (h *handler) sessionStats(w http.ResponseWriter, r *http.Request) {
	s, err := h.sessionOf(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (h *handler) deleteSession(w http.ResponseWriter, r *http.Request) {
	if err := h.reg.DeleteSession(r.PathValue("id")); err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (h *handler) uploadLog(w http.ResponseWriter, r *http.Request) {
	s, err := h.sessionOf(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	var req UploadLogRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	id, err := s.AddLog(req.Queries)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, UploadLogResponse{Log: id, Queries: len(req.Queries)})
}

// appendLog is the incremental ingest endpoint: it grows an uploaded
// log in place (content-addressed, so the combined log gets its own id)
// and streams back only the new matrix rows — the expensive O(n²) block
// the client already holds never crosses the wire again.
func (h *handler) appendLog(w http.ResponseWriter, r *http.Request) {
	s, err := h.sessionOf(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	var req AppendLogRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	combinedID, offset, rows, err := s.Append(r.Context(), req.Log, req.Queries)
	if err != nil {
		writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	WriteAppendedRows(w, combinedID, offset+len(rows), offset, rows)
}

// appendMine is the batched append-and-mine endpoint: one round trip
// extends the log, the prepared state, the cached matrix, the approx
// index, and the mining state, and returns the new rows plus the
// warm-started mining result with its label delta. The mining result's
// full matrix never crosses the wire — the client holds the old block
// and splices the returned rows, exactly like logs:append.
func (h *handler) appendMine(w http.ResponseWriter, r *http.Request) {
	s, err := h.sessionOf(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	var req AppendMineRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	spec, err := req.Spec.Decode()
	if err != nil {
		writeError(w, r, err)
		return
	}
	combinedID, offset, rows, res, err := s.AppendMine(r.Context(), req.Log, req.Queries, spec)
	if err != nil {
		writeError(w, r, err)
		return
	}
	wireRes := EncodeMineResult(res)
	wireRes.Matrix = nil // the client splices Rows; never reship the block
	writeJSON(w, http.StatusOK, AppendMineResponse{
		Log:    combinedID,
		N:      offset + len(req.Queries),
		Offset: offset,
		Rows:   rows,
		Result: wireRes,
	})
}

func (h *handler) matrix(w http.ResponseWriter, r *http.Request) {
	s, err := h.sessionOf(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	var req MatrixRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	m, err := s.Matrix(r.Context(), req.Log)
	if err != nil {
		writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	WriteMatrix(w, m)
}

func (h *handler) distances(w http.ResponseWriter, r *http.Request) {
	s, err := h.sessionOf(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	var req DistancesRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	out, err := s.Distances(r.Context(), req.Log, req.Query)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, DistancesResponse{Distances: out})
}

func (h *handler) mine(w http.ResponseWriter, r *http.Request) {
	s, err := h.sessionOf(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	var req MineRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	spec, err := req.Spec.Decode()
	if err != nil {
		writeError(w, r, err)
		return
	}
	res, err := s.Mine(r.Context(), req.Log, spec)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, EncodeMineResult(res))
}

// neighbors serves the sparse top-K API: GET with query parameters
// log (required, server-side log id), query (required, row index) and
// k (optional, default 10). The response never includes the matrix —
// only the k exact-ranked neighbors and the candidate count.
func (h *handler) neighbors(w http.ResponseWriter, r *http.Request) {
	s, err := h.sessionOf(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	qp := r.URL.Query()
	logID := qp.Get("log")
	if logID == "" {
		writeError(w, r, fmt.Errorf("service: neighbors needs a log query parameter"))
		return
	}
	q, err := strconv.Atoi(qp.Get("query"))
	if err != nil {
		writeError(w, r, fmt.Errorf("service: neighbors needs an integer query parameter: %w", err))
		return
	}
	k := 10
	if raw := qp.Get("k"); raw != "" {
		if k, err = strconv.Atoi(raw); err != nil {
			writeError(w, r, fmt.Errorf("service: neighbors k parameter: %w", err))
			return
		}
	}
	res, err := s.Neighbors(r.Context(), logID, q, k)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, NeighborsResponse{Neighbors: res.Neighbors, Candidates: res.Candidates, N: res.N})
}

func (h *handler) verify(w http.ResponseWriter, r *http.Request) {
	s, err := h.sessionOf(r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	var req VerifyRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	rep, err := s.Verify(dpe.Matrix(req.Plain), dpe.Matrix(req.Enc))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, EncodePreservationReport(rep))
}
