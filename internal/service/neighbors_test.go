package service

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	dpe "repro"
)

// clusteredLog mirrors the facade tests' shape: three interleaved
// groups of near-duplicate queries, so LSH reliably recovers the
// within-group pairs.
func clusteredLog() []string {
	groups := [][]string{
		{
			"SELECT name, age, city FROM users WHERE age > 30",
			"SELECT name, age, city FROM users WHERE age > 40",
			"SELECT name, age, city FROM users WHERE age > 50",
			"SELECT name, age, city FROM users WHERE age > 60",
		},
		{
			"SELECT product, price FROM items WHERE price < 10 ORDER BY price",
			"SELECT product, price FROM items WHERE price < 20 ORDER BY price",
			"SELECT product, price FROM items WHERE price < 30 ORDER BY price",
			"SELECT product, price FROM items WHERE price < 40 ORDER BY price",
		},
		{
			"SELECT count(id) FROM orders GROUP BY region",
			"SELECT count(id) FROM orders GROUP BY status",
			"SELECT count(id) FROM orders GROUP BY vendor",
			"SELECT count(id) FROM orders GROUP BY channel",
		},
	}
	var log []string
	for i := 0; i < len(groups[0]); i++ {
		for _, g := range groups {
			log = append(log, g[i])
		}
	}
	return log
}

// TestNeighborsRemoteLocalParity is the acceptance check for the top-K
// API: at 1 and 16 shards, the neighbors served over HTTP are
// entry-wise identical to the in-process provider on the same encrypted
// log, and the second call for the same log hits the index cache.
func TestNeighborsRemoteLocalParity(t *testing.T) {
	f := newFixture(t)
	clients := map[string]*Client{
		"shards=1":  NewClient(startServer(t, Config{Shards: 1}).URL),
		"shards=16": NewClient(startServer(t, Config{Shards: 16}).URL),
	}
	ctx := context.Background()
	for _, m := range []dpe.Measure{dpe.MeasureToken, dpe.MeasureStructure} {
		encLog, local, remoteOpts := f.measureSetup(t, m)
		for name, client := range clients {
			t.Run(m.String()+"/"+name, func(t *testing.T) {
				sess, err := client.NewSession(ctx, m, remoteOpts...)
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range []int{0, len(encLog) / 2, len(encLog) - 1} {
					want, err := local.Neighbors(ctx, encLog, q, 5)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sess.Neighbors(ctx, encLog, q, 5)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("q=%d: remote neighbors %+v != local %+v", q, got, want)
					}
					// Sublinearity of the candidate budget is a bench
					// property (internal/bench's approx experiment gates
					// it at n=48); on a 12-query fixture whose queries
					// share a schema, buckets legitimately cover most
					// pairs.
				}
				stats, err := sess.Stats(ctx)
				if err != nil {
					t.Fatal(err)
				}
				// Three queries on one log: one cold index build, then hits.
				if stats.ApproxMisses != 1 || stats.ApproxHits != 2 {
					t.Errorf("approx hits/misses = %d/%d, want 2/1", stats.ApproxHits, stats.ApproxMisses)
				}
			})
		}
	}
}

// TestApproximateMineRemote checks the Approximate flag crosses the
// wire intact: an approximate DBSCAN served remotely matches the
// in-process result (labels, no matrix, same pair budget), and a
// whole-matrix algorithm with Approximate set is a clean 400, not a
// silent exact fallback.
func TestApproximateMineRemote(t *testing.T) {
	srv := startServer(t, Config{Shards: 4})
	ctx := context.Background()
	sess, err := NewClient(srv.URL).NewSession(ctx, dpe.MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	local, err := dpe.NewProvider(dpe.MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	log := clusteredLog()
	spec := dpe.MineSpec{Algorithm: dpe.MineDBSCAN, Eps: 0.5, MinPts: 3, Approximate: true}
	want, err := local.Mine(ctx, log, spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Mine(ctx, log, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Matrix != nil {
		t.Error("approximate mining must not ship a matrix")
	}
	if !reflect.DeepEqual(got.Labels, want.Labels) || got.CandidatePairs != want.CandidatePairs {
		t.Errorf("remote approximate DBSCAN = %v (%d pairs), local = %v (%d pairs)",
			got.Labels, got.CandidatePairs, want.Labels, want.CandidatePairs)
	}

	bad := dpe.MineSpec{Algorithm: dpe.MineKMedoids, K: 2, Approximate: true}
	_, err = sess.Mine(ctx, log, bad)
	if err == nil || !strings.Contains(err.Error(), "cannot run approximately") ||
		!strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("approximate k-medoids = %v, want HTTP 400 rejection", err)
	}
}

// TestApproxIndexEvictedWithSession is the satellite-6 regression: both
// the delete path and the janitor's TTL reap must evict a session's
// cached approx index along with its prepared state, leaving the
// shard's byte accounting at zero — no orphaned index bytes.
func TestApproxIndexEvictedWithSession(t *testing.T) {
	for _, path := range []string{"delete", "reap"} {
		t.Run(path, func(t *testing.T) {
			reg := NewRegistry(Config{SessionTTL: time.Nanosecond, JanitorInterval: -1})
			defer reg.Close()
			token := dpe.MeasureToken
			s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
			if err != nil {
				t.Fatal(err)
			}
			logID, err := s.AddLog(clusteredLog())
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			if _, err := s.Neighbors(ctx, logID, 0, 3); err != nil {
				t.Fatal(err)
			}
			sh := reg.shardFor(s.ID())
			if st := sh.cache.stats(); st.Entries < 2 || st.Bytes <= 0 {
				t.Fatalf("after neighbors: cache %d entries / %d bytes, want prepared state AND index", st.Entries, st.Bytes)
			}
			switch path {
			case "delete":
				if err := reg.DeleteSession(s.ID()); err != nil {
					t.Fatal(err)
				}
			case "reap":
				time.Sleep(time.Millisecond) // idle past the 1ns TTL
				reg.reapIdle(time.Now())
				if _, err := reg.Session(s.ID()); err == nil {
					t.Fatal("session should have been reaped")
				}
			}
			if st := sh.cache.stats(); st.Entries != 0 || st.Bytes != 0 {
				t.Errorf("after %s: cache %d entries / %d bytes, want 0/0", path, st.Entries, st.Bytes)
			}
		})
	}
}

// TestNeighborsSurviveRestart is the persistence acceptance check: a
// journaled index is recovered on restart, so the first neighbors call
// of the new process is an index-cache hit with identical results.
func TestNeighborsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(persistentConfig(t, dir, 4))
	ctx := context.Background()
	token := dpe.MeasureToken
	s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatal(err)
	}
	logID, err := s.AddLog(clusteredLog())
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Neighbors(ctx, logID, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	id := s.ID()
	reg.Close()

	reg2, err := OpenRegistry(persistentConfig(t, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rec := reg2.Recovery(); rec.ApproxIndexes != 1 {
		t.Fatalf("recovery replayed %d approx indexes, want 1 (%+v)", rec.ApproxIndexes, rec)
	}
	s2, err := reg2.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Neighbors(ctx, logID, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-restart neighbors %+v != pre-restart %+v", got, want)
	}
	stats := s2.Stats()
	if stats.ApproxHits != 1 || stats.ApproxMisses != 0 {
		t.Errorf("post-restart approx hits/misses = %d/%d, want 1/0 (index recovered from journal)",
			stats.ApproxHits, stats.ApproxMisses)
	}
}

// TestAppendExtendsApproxIndex checks the incremental path: after an
// append, the combined log's index is already warm (extended from the
// base's, not rebuilt), and its answers match a from-scratch provider
// on the combined log.
func TestAppendExtendsApproxIndex(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	ctx := context.Background()
	token := dpe.MeasureToken
	s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatal(err)
	}
	log := clusteredLog()
	base, tail := log[:8], log[8:]
	baseID, err := s.AddLog(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Neighbors(ctx, baseID, 0, 3); err != nil {
		t.Fatal(err)
	}
	combinedID, _, _, err := s.Append(ctx, baseID, tail)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Neighbors(ctx, combinedID, len(log)-1, 3)
	if err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.ApproxMisses != 1 {
		t.Errorf("approx misses = %d, want 1 (append should extend the cached index, not rebuild)", stats.ApproxMisses)
	}
	local, err := dpe.NewProvider(dpe.MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Neighbors(ctx, log, len(log)-1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("extended-index neighbors %+v != from-scratch %+v", got, want)
	}
}

// TestApproxChurn races neighbors traffic, appends, and session
// deletes across a sharded registry — the -race check for the index
// cache, its singleflight builds, and the eviction sweeps.
func TestApproxChurn(t *testing.T) {
	reg := NewRegistry(Config{
		Shards:          4,
		MaxSessions:     64,
		CacheEntries:    16,
		JanitorInterval: time.Millisecond,
		SessionTTL:      time.Hour,
	})
	defer reg.Close()
	ctx := context.Background()
	token := dpe.MeasureToken
	log := clusteredLog()

	// Shared sessions: concurrent neighbors on the same log race the
	// index singleflight and the hit counters.
	const sharedSessions = 3
	shared := make([]*session, sharedSessions)
	for i := range shared {
		s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddLog(log); err != nil {
			t.Fatal(err)
		}
		shared[i] = s
	}
	logID := LogID(log)

	const (
		workers = 8
		iters   = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	fail := func(format string, args ...any) { errs <- fmt.Errorf(format, args...) }

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := shared[(w+i)%sharedSessions]
				if _, err := s.Neighbors(ctx, logID, (w+i)%len(log), 3); err != nil {
					fail("shared neighbors: %v", err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Private lifecycle: create, neighbors, append, neighbors
				// on the grown log, delete — racing the janitor ticks.
				s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
				if err != nil {
					fail("create: %v", err)
					return
				}
				baseID, err := s.AddLog(log[:6])
				if err != nil {
					fail("add log: %v", err)
					return
				}
				if _, err := s.Neighbors(ctx, baseID, 0, 2); err != nil {
					fail("neighbors: %v", err)
					return
				}
				combinedID, _, _, err := s.Append(ctx, baseID, []string{fmt.Sprintf("SELECT w%d, i%d FROM churn", w, i)})
				if err != nil {
					fail("append: %v", err)
					return
				}
				if _, err := s.Neighbors(ctx, combinedID, 6, 2); err != nil {
					fail("neighbors after append: %v", err)
					return
				}
				if err := reg.DeleteSession(s.ID()); err != nil {
					fail("delete: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
