package service

import (
	"container/list"
	"sync"
)

// CacheStats is a snapshot of the prepared-state cache's counters.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// lruCache is a concurrency-safe LRU keyed by string with two budgets:
// a maximum entry count and a maximum total cost in (estimated) bytes.
// Adding past either budget evicts least-recently-used entries first. A
// single over-budget entry is admitted alone — refusing it would make
// one huge log uncacheable forever and thrash the service.
type lruCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	bytes      int64
	hits       int64
	misses     int64
	evictions  int64
}

type lruEntry struct {
	key  string
	val  any
	cost int64
}

// newLRU creates a cache with the given budgets; both must be positive.
func newLRU(maxEntries int, maxBytes int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// get returns the cached value and marks it most recently used. The
// hit/miss counters track every lookup.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// peek returns the cached value without counting a hit or miss and
// without disturbing the recency order — the observation compaction
// uses to serialize what is cached without changing what is cached.
func (c *lruCache) peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) a value with the given cost, evicting from
// the LRU end until both budgets hold again.
func (c *lruCache) add(key string, val any, cost int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += cost - e.cost
		e.val, e.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val, cost: cost})
		c.bytes += cost
	}
	for (c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.ll.Len() > 1 {
		c.evictOldest()
	}
}

// evictOldest removes the LRU entry; callers hold the mutex.
func (c *lruCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.cost
	c.evictions++
}

// removePrefix drops every entry whose key starts with prefix — used
// when a session is deleted or reaped to release its prepared state —
// and reports how many entries went. Deliberately not counted as
// evictions: that counter means "budget pressure pushed out someone
// else's entry", and keeping the two causes apart is what lets the
// per-cause metric series reconcile with CacheStats.Evictions.
func (c *lruCache) removePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*lruEntry)
		if len(e.key) >= len(prefix) && e.key[:len(prefix)] == prefix {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.bytes -= e.cost
			removed++
		}
	}
	return removed
}

// keysWithPrefix lists the keys starting with prefix, in no particular
// order, without counting hits or disturbing recency — how compaction
// enumerates entries whose full keys it cannot reconstruct (mining
// state embeds a spec fingerprint the session map does not hold).
func (c *lruCache) keysWithPrefix(prefix string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry)
		if len(e.key) >= len(prefix) && e.key[:len(prefix)] == prefix {
			out = append(out, e.key)
		}
	}
	return out
}

// stats snapshots the counters.
func (c *lruCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
