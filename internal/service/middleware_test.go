package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	dpe "repro"
	"repro/internal/obs"
)

// scrape renders an obs registry and parses every sample line into a
// map from "name{labels}" (or bare "name") to value — a deliberately
// tiny exposition parser so these tests exercise the same text a real
// Prometheus scrape would read.
func scrape(t *testing.T, o *obs.Registry) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if _, err := o.WriteTo(&sb); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("scrape: unparseable line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("scrape: bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// startInstrumentedServer is startServer with an obs registry attached
// to both the service registry and the HTTP middleware.
func startInstrumentedServer(t *testing.T, cfg Config) (*httptest.Server, *obs.Registry) {
	t.Helper()
	o := obs.NewRegistry()
	cfg.Obs = o
	reg := NewRegistry(cfg)
	t.Cleanup(reg.Close)
	srv := httptest.NewServer(NewHandlerWithOptions(reg, HandlerOptions{Obs: o}))
	t.Cleanup(srv.Close)
	return srv, o
}

func TestRequestIDAssignAndPassthrough(t *testing.T) {
	srv := startServer(t, Config{})
	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)

	get := func(t *testing.T, sendID string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if sendID != "" {
			req.Header.Set(RequestIDHeader, sendID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	t.Run("generated", func(t *testing.T) {
		id := get(t, "").Header.Get(RequestIDHeader)
		if !hexID.MatchString(id) {
			t.Errorf("generated request id %q, want 16 hex chars", id)
		}
	})
	t.Run("passthrough", func(t *testing.T) {
		want := "proxy-abc.123_XYZ"
		if id := get(t, want).Header.Get(RequestIDHeader); id != want {
			t.Errorf("request id %q, want the incoming %q echoed", id, want)
		}
	})
	t.Run("invalid replaced", func(t *testing.T) {
		for _, bad := range []string{"has space", "quote\"", strings.Repeat("x", 65), "semi;colon"} {
			id := get(t, bad).Header.Get(RequestIDHeader)
			if id == bad || !hexID.MatchString(id) {
				t.Errorf("malformed incoming id %q became %q, want a fresh hex id", bad, id)
			}
		}
	})
}

func TestErrorBodyCarriesRequestID(t *testing.T) {
	srv := startServer(t, Config{})
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/sessions/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "err-corr-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error == "" {
		t.Error("error body has no error message")
	}
	if e.RequestID != "err-corr-1" {
		t.Errorf("error body request_id = %q, want %q", e.RequestID, "err-corr-1")
	}
}

func TestClientErrorIncludesRequestID(t *testing.T) {
	srv := startServer(t, Config{})
	c := NewClient(srv.URL)
	err := c.do(context.Background(), http.MethodGet, "/v1/sessions/nope", nil, nil)
	if err == nil {
		t.Fatal("expected an error for an unknown session")
	}
	msg := err.Error()
	if !strings.Contains(msg, "HTTP 404") {
		t.Errorf("error %q does not name the status", msg)
	}
	if !regexp.MustCompile(`request [0-9a-f]{16}\)$`).MatchString(msg) {
		t.Errorf("error %q does not carry the request id", msg)
	}
}

func TestRouteHistogramCounts(t *testing.T) {
	srv, o := startInstrumentedServer(t, Config{})

	// A scripted mix: 3 health checks, 2 stats reads, 1 miss.
	for i := 0; i < 3; i++ {
		mustGet(t, srv.URL+"/v1/healthz", http.StatusOK)
	}
	for i := 0; i < 2; i++ {
		mustGet(t, srv.URL+"/v1/stats", http.StatusOK)
	}
	mustGet(t, srv.URL+"/v1/nosuch", http.StatusNotFound)

	m := scrape(t, o)
	for key, want := range map[string]float64{
		`dpe_http_request_duration_seconds_count{route="healthz"}`:   3,
		`dpe_http_request_duration_seconds_count{route="stats"}`:     2,
		`dpe_http_request_duration_seconds_count{route="unmatched"}`: 1,
		`dpe_http_requests_total{code="200",route="healthz"}`:        3,
		`dpe_http_requests_total{code="200",route="stats"}`:          2,
		`dpe_http_requests_total{code="404",route="unmatched"}`:      1,
		`dpe_http_inflight_requests`:                                 0,
	} {
		if got := m[key]; got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
	// Cumulative buckets: the +Inf-implied total must equal the count.
	if sum, count := m[`dpe_http_request_duration_seconds_sum{route="healthz"}`], m[`dpe_http_request_duration_seconds_count{route="healthz"}`]; sum < 0 || count != 3 {
		t.Errorf("healthz histogram sum=%v count=%v", sum, count)
	}
}

func mustGet(t *testing.T, url string, wantStatus int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
}

// churn drives one tenant through a create → upload → cold matrix →
// warm matrix → delete cycle over the wire; the plaintext token measure
// keeps it cheap enough to hammer concurrently.
func churn(ctx context.Context, c *Client, queries []string) error {
	sess, err := c.NewSession(ctx, dpe.MeasureToken)
	if err != nil {
		return err
	}
	m, err := sess.DistanceMatrix(ctx, queries)
	if err != nil {
		return err
	}
	if _, err := sess.DistanceMatrix(ctx, queries); err != nil {
		return err
	}
	// One cold append_mine (mining-state miss) and one identical warm
	// repeat (hit), so the mine-state counters see traffic from every
	// worker.
	spec := dpe.MineSpec{Algorithm: dpe.MineDBSCAN, Eps: 0.4, MinPts: 2}
	tail := []string{"SELECT mined FROM churn"}
	if _, _, err := sess.AppendMine(ctx, m, queries, tail, spec); err != nil {
		return err
	}
	if _, _, err := sess.AppendMine(ctx, m, queries, tail, spec); err != nil {
		return err
	}
	return sess.Close(ctx)
}

func churnLog(i int) []string {
	return []string{
		fmt.Sprintf("SELECT a FROM t%d WHERE x = %d", i%7, i),
		fmt.Sprintf("SELECT b FROM t%d WHERE y > %d", i%5, i),
		"SELECT c FROM shared WHERE z < 3",
	}
}

// TestStatsAndMetricsAgree is the satellite-1 regression: after
// concurrent traffic quiesces, the cache counters on GET /v1/stats and
// the dpe_cache_* series on the metrics scrape must be the same
// numbers — both read the one set of shard-cache counters, and this
// test is what keeps a second bookkeeping path from creeping in.
func TestStatsAndMetricsAgree(t *testing.T) {
	srv, o := startInstrumentedServer(t, Config{})
	c := NewClient(srv.URL)
	ctx := context.Background()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if err := churn(ctx, c, churnLog(w*100+i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats RegistryStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	m := scrape(t, o)
	for key, want := range map[string]float64{
		`dpe_cache_hits_total`:                      float64(stats.PreparedCache.Hits),
		`dpe_cache_misses_total`:                    float64(stats.PreparedCache.Misses),
		`dpe_cache_entries`:                         float64(stats.PreparedCache.Entries),
		`dpe_cache_bytes`:                           float64(stats.PreparedCache.Bytes),
		`dpe_cache_evictions_total{cause="budget"}`: float64(stats.PreparedCache.Evictions),
		`dpe_sessions`:                              float64(stats.Sessions),
		`dpe_mine_state_hits_total`:                 float64(stats.MineStateHits),
		`dpe_mine_state_misses_total`:               float64(stats.MineStateMisses),
	} {
		if got := m[key]; got != want {
			t.Errorf("%s = %v, want %v (the /v1/stats value)", key, got, want)
		}
	}
	// The traffic itself must have registered: every worker's cold
	// matrix is a miss, every warm one a hit.
	if m[`dpe_cache_misses_total`] == 0 || m[`dpe_cache_hits_total`] == 0 {
		t.Errorf("traffic left no cache counters: hits=%v misses=%v",
			m[`dpe_cache_hits_total`], m[`dpe_cache_misses_total`])
	}
	// Likewise every worker's cold append_mine is a mining-state miss
	// and its warm repeat a hit — the counters survive the sessions
	// that minted them because the registry totals are the one source
	// both surfaces read.
	if m[`dpe_mine_state_misses_total`] != workers*4 || m[`dpe_mine_state_hits_total`] != workers*4 {
		t.Errorf("mine-state counters: hits=%v misses=%v, want %v each",
			m[`dpe_mine_state_hits_total`], m[`dpe_mine_state_misses_total`], workers*4)
	}
	if got := m[`dpe_sessions_created_total`]; got != workers*4 {
		t.Errorf("dpe_sessions_created_total = %v, want %v", got, workers*4)
	}
	if got := m[`dpe_sessions_deleted_total`]; got != workers*4 {
		t.Errorf("dpe_sessions_deleted_total = %v, want %v", got, workers*4)
	}
}

// TestMetricsScrapeUnderChurn polls the exposition endpoint while
// tenants churn — run under -race in CI, it is the check that scraping
// never tears or locks against serving traffic.
func TestMetricsScrapeUnderChurn(t *testing.T) {
	srv, o := startInstrumentedServer(t, Config{})
	metricsSrv := httptest.NewServer(o.Handler())
	t.Cleanup(metricsSrv.Close)
	c := NewClient(srv.URL)
	ctx := context.Background()

	done := make(chan struct{})
	var scrapeErr error
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			resp, err := http.Get(metricsSrv.URL + "/metrics")
			if err != nil {
				scrapeErr = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				scrapeErr = fmt.Errorf("scrape status %d", resp.StatusCode)
				resp.Body.Close()
				return
			}
			resp.Body.Close()
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if err := churn(ctx, c, churnLog(w*10+i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	<-done
	if scrapeErr != nil {
		t.Fatal(scrapeErr)
	}
}

// TestMetricRegistryNoDuplicates is the duplicate-registration lint:
// wiring two service registries onto one obs registry must panic on the
// first name collision instead of silently double-counting. (The obs
// package panics on any name registered twice with a conflicting or
// func-backed cell — this asserts the service wiring actually trips it.)
func TestMetricRegistryNoDuplicates(t *testing.T) {
	o := obs.NewRegistry()
	reg := NewRegistry(Config{Obs: o})
	t.Cleanup(reg.Close)

	defer func() {
		if recover() == nil {
			t.Fatal("wiring a second registry onto the same obs registry did not panic")
		}
	}()
	reg2 := NewRegistry(Config{Obs: o})
	reg2.Close()
}
