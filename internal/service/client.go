package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	dpe "repro"
)

// Client speaks the dpeserver wire protocol. It is safe for concurrent
// use; one Client can hold any number of sessions.
type Client struct {
	base string
	hc   *http.Client
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// doubles). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// NewClient creates a client for a dpeserver base URL, e.g.
// "http://localhost:8433".
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// SessionOption attaches shared artifacts to session creation — the
// wire-format mirror of dpe's ProviderOption. Artifacts are encoded
// eagerly so encoding errors surface at option-build time.
type SessionOption struct {
	apply func(*CreateSessionRequest)
	err   error
}

// WithCatalog ships the (encrypted) database contents, the DB-Content
// shared information of the result measure. For encrypted content pass
// the owner's ResultAggregatorKey; for plaintext pass nil.
func WithCatalog(cat *dpe.Catalog, key *dpe.AggregatorKey) SessionOption {
	wc, err := EncodeCatalog(cat)
	if err != nil {
		return SessionOption{err: err}
	}
	var wk *WireAggregatorKey
	if key != nil {
		wk = EncodeAggregatorKey(key)
	}
	return SessionOption{apply: func(req *CreateSessionRequest) {
		req.Catalog, req.AggregatorKey = wc, wk
	}}
}

// WithDomains ships the (encrypted) attribute domains, the Domains
// shared information of the access-area measure.
func WithDomains(domains map[string]dpe.Domain) SessionOption {
	wd, err := EncodeDomains(domains)
	if err != nil {
		return SessionOption{err: err}
	}
	return SessionOption{apply: func(req *CreateSessionRequest) { req.Domains = wd }}
}

// WithAccessAreaX sets Definition 5's partial-overlap value x ∈ (0,1).
func WithAccessAreaX(x float64) SessionOption {
	return SessionOption{apply: func(req *CreateSessionRequest) { req.AccessAreaX = x }}
}

// WithTolerance sets the tolerance of the session's Definition 1 check.
func WithTolerance(t float64) SessionOption {
	return SessionOption{apply: func(req *CreateSessionRequest) { req.Tolerance = t }}
}

// BuildCreateSessionRequest assembles the wire body of POST
// /v1/sessions from a measure and session options — the same request
// Client.NewSession sends, exposed so in-process callers (tests, the
// benchmark harness) can drive Registry.CreateSession through the
// identical encode path.
func BuildCreateSessionRequest(m dpe.Measure, opts ...SessionOption) (*CreateSessionRequest, error) {
	req := &CreateSessionRequest{Measure: &m}
	for _, opt := range opts {
		if opt.err != nil {
			return nil, opt.err
		}
		opt.apply(req)
	}
	return req, nil
}

// NewSession creates a provider session on the server from a measure
// plus shared artifacts and returns the handle for it. The returned
// Session implements dpe.ProviderAPI: code written against that
// interface cannot tell it from an in-process *dpe.Provider (the
// results are entry-wise identical — that is the wire format's
// preservation property).
func (c *Client) NewSession(ctx context.Context, m dpe.Measure, opts ...SessionOption) (*Session, error) {
	req, err := BuildCreateSessionRequest(m, opts...)
	if err != nil {
		return nil, err
	}
	var resp CreateSessionResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &resp); err != nil {
		return nil, err
	}
	return &Session{c: c, id: resp.Session, measure: m, logIDs: make(map[string]string)}, nil
}

// do sends one JSON request and decodes the JSON response into out
// (nil means discard).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	body, err := c.doStream(ctx, method, path, in)
	if err != nil {
		return err
	}
	defer body.Close()
	if out == nil {
		io.Copy(io.Discard, body)
		return nil
	}
	if err := json.NewDecoder(body).Decode(out); err != nil {
		return fmt.Errorf("service: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// doStream sends one JSON request and hands back the raw response body
// for streaming decoders (the matrix endpoint). The caller closes it.
func (c *Client) doStream(ctx context.Context, method, path string, in any) (io.ReadCloser, error) {
	var body io.Reader
	contentType := ""
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(b)
		contentType = "application/json"
	}
	return c.doRaw(ctx, method, path, body, contentType)
}

// doRaw sends one request with an arbitrary body (nil for none) and
// hands back the raw response body on 2xx, mapping error responses the
// same way for every call. The caller closes the returned body.
func (c *Client) doRaw(ctx context.Context, method, path string, body io.Reader, contentType string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	// Mint a correlation id client-side so a failed call can be chased
	// through the server's access log; the server honors it verbatim.
	req.Header.Set(RequestIDHeader, newRequestID())
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		var e errorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e) == nil && e.Error != "" {
			if id := errorRequestID(&e, resp); id != "" {
				return nil, fmt.Errorf("service: %s %s: %s (HTTP %d, request %s)", method, path, e.Error, resp.StatusCode, id)
			}
			return nil, fmt.Errorf("service: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		if id := resp.Header.Get(RequestIDHeader); id != "" {
			return nil, fmt.Errorf("service: %s %s: HTTP %d (request %s)", method, path, resp.StatusCode, id)
		}
		return nil, fmt.Errorf("service: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	return resp.Body, nil
}

// ExportSession downloads session id's portable bundle into w — the
// tenant's complete server-side state, restorable with ImportSession on
// any dpeserver regardless of storage backend. The bundle's trailing
// checksum is verified at import time, so a connection torn mid-export
// produces a file the importer rejects, never a half-restored tenant.
func (c *Client) ExportSession(ctx context.Context, id string, w io.Writer) error {
	body, err := c.doRaw(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id)+"/export", nil, "")
	if err != nil {
		return err
	}
	defer body.Close()
	if _, err := io.Copy(w, body); err != nil {
		return fmt.Errorf("service: downloading bundle: %w", err)
	}
	return nil
}

// ImportSession uploads a bundle and restores it as a live session
// (preserving the exported session id), returning what was restored.
func (c *Client) ImportSession(ctx context.Context, bundle io.Reader) (*ImportResult, error) {
	body, err := c.doRaw(ctx, http.MethodPost, "/v1/sessions:import", bundle, "application/octet-stream")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	var res ImportResult
	if err := json.NewDecoder(body).Decode(&res); err != nil {
		return nil, fmt.Errorf("service: decoding import response: %w", err)
	}
	return &res, nil
}

// AttachSession binds a handle to a session that already lives on the
// server — typically one just restored with ImportSession, whose id the
// bundle preserved — fetching its measure from the stats endpoint.
func (c *Client) AttachSession(ctx context.Context, id string) (*Session, error) {
	var st SessionStats
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &Session{c: c, id: id, measure: st.Measure, logIDs: make(map[string]string)}, nil
}

// errorRequestID picks the correlation id out of a failed response —
// the error body's field when present, the echoed header otherwise
// (a proxy-generated error body has no request_id, but the header may
// survive).
func errorRequestID(e *errorResponse, resp *http.Response) string {
	if e.RequestID != "" {
		return e.RequestID
	}
	return resp.Header.Get(RequestIDHeader)
}

// Session is a remote provider session: the client-side half of one
// dpeserver tenant. It uploads every distinct log once (content
// addressing makes repeats free) and then runs matrix, row, mining, and
// verification calls against the server's cached prepared state.
//
// Session implements dpe.ProviderAPI and is safe for concurrent use.
type Session struct {
	c       *Client
	id      string
	measure dpe.Measure

	mu     sync.Mutex
	logIDs map[string]string // LogID(log) -> server-confirmed log id
}

var _ dpe.ProviderAPI = (*Session)(nil)

// ID returns the server-assigned session id.
func (s *Session) ID() string { return s.id }

// Measure returns the session's distance measure.
func (s *Session) Measure() dpe.Measure { return s.measure }

func (s *Session) path(suffix string) string {
	return "/v1/sessions/" + s.id + suffix
}

// UploadLog sends a query log to the server (once per distinct content)
// and returns its server-side id.
func (s *Session) UploadLog(ctx context.Context, log []string) (string, error) {
	key := LogID(log)
	s.mu.Lock()
	id, ok := s.logIDs[key]
	s.mu.Unlock()
	if ok {
		return id, nil
	}
	var resp UploadLogResponse
	err := s.c.do(ctx, http.MethodPost, s.path("/logs"), &UploadLogRequest{Queries: log}, &resp)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.logIDs[key] = resp.Log
	s.mu.Unlock()
	return resp.Log, nil
}

// DistanceMatrix computes the pairwise distance matrix of a log on the
// server, streaming the result back.
func (s *Session) DistanceMatrix(ctx context.Context, log []string) (dpe.Matrix, error) {
	id, err := s.UploadLog(ctx, log)
	if err != nil {
		return nil, err
	}
	body, err := s.c.doStream(ctx, http.MethodPost, s.path("/matrix"), &MatrixRequest{Log: id})
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return ReadMatrix(body)
}

// Append extends the matrix already built for log with newQueries,
// implementing dpe.ProviderAPI's incremental path over the wire: the
// server reuses the session's cached prepared state, computes only the
// new entries, and streams back only the new rows; the old block never
// crosses the network again. The result is entry-wise identical to
// DistanceMatrix over the concatenated log. len(old) must equal
// len(log), and log must describe the matrix old was built from.
func (s *Session) Append(ctx context.Context, old dpe.Matrix, log []string, newQueries []string) (dpe.Matrix, error) {
	if len(old) != len(log) {
		return nil, fmt.Errorf("service: old matrix has %d rows for a log of %d queries", len(old), len(log))
	}
	id, err := s.UploadLog(ctx, log)
	if err != nil {
		return nil, err
	}
	body, err := s.c.doStream(ctx, http.MethodPost, s.path("/logs:append"),
		&AppendLogRequest{Log: id, Queries: newQueries})
	if err != nil {
		return nil, err
	}
	defer body.Close()
	resp, err := ReadAppendedRows(body)
	if err != nil {
		return nil, err
	}
	if resp.Offset != len(old) || resp.N != len(old)+len(newQueries) {
		return nil, fmt.Errorf("service: appended rows span %d..%d, want %d..%d",
			resp.Offset, resp.N, len(old), len(old)+len(newQueries))
	}
	// Remember the combined log's server id: follow-up calls on the
	// grown log skip the re-upload and land on the warm prepared state.
	combined := make([]string, 0, resp.N)
	combined = append(combined, log...)
	combined = append(combined, newQueries...)
	s.mu.Lock()
	s.logIDs[LogID(combined)] = resp.Log
	s.mu.Unlock()
	return dpe.SpliceMatrixRows(old, resp.Rows)
}

// AppendMine is the batched append-and-mine call: one round trip
// appends newQueries to log on the server and mines the grown log
// incrementally from the server's cached mining state. It returns the
// extended matrix (old spliced with the streamed new rows; nil for
// apriori, which never builds one) and the mining result, whose
// Incremental field reports the warm/cold disposition and the label
// delta. old must be the matrix built for log (nil for apriori); an
// empty newQueries mines log itself, bootstrapping the server's state.
func (s *Session) AppendMine(ctx context.Context, old dpe.Matrix, log []string, newQueries []string, spec dpe.MineSpec) (dpe.Matrix, *dpe.MineResult, error) {
	wantRows := spec.Algorithm != dpe.MineApriori
	if wantRows && len(old) != len(log) {
		return nil, nil, fmt.Errorf("service: old matrix has %d rows for a log of %d queries", len(old), len(log))
	}
	id, err := s.UploadLog(ctx, log)
	if err != nil {
		return nil, nil, err
	}
	var resp AppendMineResponse
	err = s.c.do(ctx, http.MethodPost, s.path("/logs:append_mine"),
		&AppendMineRequest{Log: id, Queries: newQueries, Spec: EncodeMineSpec(spec)}, &resp)
	if err != nil {
		return nil, nil, err
	}
	if resp.Offset != len(log) || resp.N != len(log)+len(newQueries) {
		return nil, nil, fmt.Errorf("service: appended rows span %d..%d, want %d..%d",
			resp.Offset, resp.N, len(log), len(log)+len(newQueries))
	}
	if resp.Result == nil {
		return nil, nil, fmt.Errorf("service: append_mine response carries no mining result")
	}
	combined := make([]string, 0, resp.N)
	combined = append(combined, log...)
	combined = append(combined, newQueries...)
	s.mu.Lock()
	s.logIDs[LogID(combined)] = resp.Log
	s.mu.Unlock()
	res := resp.Result.Decode()
	if !wantRows {
		return nil, res, nil
	}
	if len(resp.Rows) != resp.N-resp.Offset {
		return nil, nil, fmt.Errorf("service: %d appended rows, header says %d", len(resp.Rows), resp.N-resp.Offset)
	}
	m, err := dpe.SpliceMatrixRows(old, resp.Rows)
	if err != nil {
		return nil, nil, err
	}
	res.Matrix = m
	return m, res, nil
}

// Distances computes one matrix row on the server.
func (s *Session) Distances(ctx context.Context, log []string, q int) ([]float64, error) {
	id, err := s.UploadLog(ctx, log)
	if err != nil {
		return nil, err
	}
	var resp DistancesResponse
	err = s.c.do(ctx, http.MethodPost, s.path("/distances"), &DistancesRequest{Log: id, Query: q}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Distances, nil
}

// Neighbors asks the server for q's k nearest neighbors in log, ranked
// by the exact metric over the session's LSH candidate set. Only the
// top-k entries cross the wire — never a matrix row, let alone the
// triangle.
func (s *Session) Neighbors(ctx context.Context, log []string, q, k int) (*dpe.NeighborsResult, error) {
	id, err := s.UploadLog(ctx, log)
	if err != nil {
		return nil, err
	}
	path := s.path(fmt.Sprintf("/neighbors?log=%s&query=%d&k=%d", url.QueryEscape(id), q, k))
	var resp NeighborsResponse
	if err := s.c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &dpe.NeighborsResult{Neighbors: resp.Neighbors, Candidates: resp.Candidates, N: resp.N}, nil
}

// Mine builds the matrix on the server and runs one mining algorithm
// over it.
func (s *Session) Mine(ctx context.Context, log []string, spec dpe.MineSpec) (*dpe.MineResult, error) {
	id, err := s.UploadLog(ctx, log)
	if err != nil {
		return nil, err
	}
	var resp WireMineResult
	err = s.c.do(ctx, http.MethodPost, s.path("/mine"), &MineRequest{Log: id, Spec: EncodeMineSpec(spec)}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Decode(), nil
}

// VerifyPreservation runs the Definition 1 check on the server with the
// session's tolerance. dpe.ProviderAPI keeps the in-process (ctx-less)
// signature, so this delegates with the background context; callers that
// need cancellation use VerifyPreservationContext.
func (s *Session) VerifyPreservation(plain, enc dpe.Matrix) (*dpe.PreservationReport, error) {
	return s.VerifyPreservationContext(context.Background(), plain, enc)
}

// VerifyPreservationContext is VerifyPreservation with a cancellable
// request context (the call uploads two full n×n matrices).
func (s *Session) VerifyPreservationContext(ctx context.Context, plain, enc dpe.Matrix) (*dpe.PreservationReport, error) {
	var resp WirePreservationReport
	req := VerifyRequest{Plain: plain, Enc: enc}
	err := s.c.do(ctx, http.MethodPost, s.path("/verify"), &req, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Decode(), nil
}

// Stats fetches the session's server-side counters — in particular
// whether repeat calls hit the prepared-state cache.
func (s *Session) Stats(ctx context.Context) (*SessionStats, error) {
	var resp SessionStats
	if err := s.c.do(ctx, http.MethodGet, s.path(""), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Close deletes the session (and its cached prepared state) on the
// server.
func (s *Session) Close(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, s.path(""), nil, nil)
}
