package service

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	dpe "repro"
	"repro/internal/db"
	"repro/internal/value"
)

// TestValueRoundTrip checks every value kind survives the wire exactly,
// including through JSON bytes — full-range int64s and floats must not
// pass through float64 truncation.
func TestValueRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Null(),
		value.Int(0),
		value.Int(math.MaxInt64),
		value.Int(math.MinInt64),
		value.Float(0.1),
		value.Float(1e-300),
		value.Float(-123456.789),
		value.Str(""),
		value.Str("O'Hara \x00 ünicode"),
		value.Bytes(nil),
		value.Bytes([]byte{0, 1, 2, 0xff}),
	}
	for _, v := range vals {
		wv, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		b, err := json.Marshal(wv)
		if err != nil {
			t.Fatal(err)
		}
		var decoded WireValue
		if err := json.Unmarshal(b, &decoded); err != nil {
			t.Fatal(err)
		}
		back, err := decoded.Decode()
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if back.Kind() != v.Kind() || back.Key() != v.Key() {
			t.Errorf("%v round-trips to %v (keys %q vs %q)", v, back, v.Key(), back.Key())
		}
	}
	if _, err := (WireValue{Kind: "int"}).Decode(); err == nil {
		t.Error("int without payload should fail to decode")
	}
	if _, err := (WireValue{Kind: "imaginary"}).Decode(); err == nil {
		t.Error("unknown kind should fail to decode")
	}
}

// TestCatalogRoundTrip checks a multi-table catalog (including a BYTES
// ciphertext column and NULLs) is rebuilt identically.
func TestCatalogRoundTrip(t *testing.T) {
	cat := db.NewCatalog()
	tbl := cat.MustCreate("t1", []db.Column{
		{Name: "a", Type: db.TypeInt},
		{Name: "b", Type: db.TypeString},
		{Name: "c", Type: db.TypeBytes},
	})
	tbl.MustInsert(db.Row{value.Int(1), value.Str("x"), value.Bytes([]byte{9, 8})})
	tbl.MustInsert(db.Row{value.Null(), value.Null(), value.Null()})
	cat.MustCreate("t2", []db.Column{{Name: "f", Type: db.TypeFloat}}).
		MustInsert(db.Row{value.Float(2.5)})

	wc, err := EncodeCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(wc)
	if err != nil {
		t.Fatal(err)
	}
	var decoded WireCatalog
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := decoded.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.TableNames(), cat.TableNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("tables %v, want %v", got, want)
	}
	for _, name := range cat.TableNames() {
		orig, _ := cat.Table(name)
		got, _ := back.Table(name)
		if !reflect.DeepEqual(got.Columns, orig.Columns) {
			t.Errorf("table %q columns %v, want %v", name, got.Columns, orig.Columns)
		}
		if len(got.Rows) != len(orig.Rows) {
			t.Fatalf("table %q has %d rows, want %d", name, len(got.Rows), len(orig.Rows))
		}
		for i := range orig.Rows {
			for j := range orig.Rows[i] {
				if got.Rows[i][j].Key() != orig.Rows[i][j].Key() {
					t.Errorf("table %q cell (%d,%d): %v, want %v", name, i, j, got.Rows[i][j], orig.Rows[i][j])
				}
			}
		}
	}
}

// TestDomainsRoundTrip checks the Domains artifact survives the wire.
func TestDomainsRoundTrip(t *testing.T) {
	domains := map[string]dpe.Domain{
		"ra":    {Min: value.Float(0), Max: value.Float(360)},
		"class": {Min: value.Str("GALAXY"), Max: value.Str("STAR")},
		"nvote": {Min: value.Int(-5), Max: value.Int(1 << 60)},
	}
	wd, err := EncodeDomains(domains)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(wd)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]WireDomain
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDomains(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(domains) {
		t.Fatalf("got %d domains, want %d", len(back), len(domains))
	}
	for attr, d := range domains {
		g := back[attr]
		if g.Min.Key() != d.Min.Key() || g.Max.Key() != d.Max.Key() {
			t.Errorf("domain %q: %v..%v, want %v..%v", attr, g.Min, g.Max, d.Min, d.Max)
		}
	}
}

// TestAggregatorKeyRoundTrip checks the Paillier public key rebuilds
// with a working evaluator: the wire-reconstructed aggregator must
// produce a ciphertext the owner decrypts to the true sum.
func TestAggregatorKeyRoundTrip(t *testing.T) {
	w, err := dpe.GenerateWorkload(dpe.WorkloadConfig{Seed: "aggkey", Queries: 4, Rows: 10})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := dpe.NewOwner([]byte("aggkey-test"), w.Schema, dpe.Config{PaillierBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	key := owner.ResultAggregatorKey()
	b, err := json.Marshal(EncodeAggregatorKey(key))
	if err != nil {
		t.Fatal(err)
	}
	var decoded WireAggregatorKey
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := decoded.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if back.N.Cmp(key.N) != 0 || back.N2.Cmp(key.N2) != 0 {
		t.Error("aggregator key does not round-trip")
	}
	if _, err := (&WireAggregatorKey{}).Decode(); err == nil {
		t.Error("empty modulus should fail to decode")
	}
}

// TestMatrixStreamRoundTrip checks WriteMatrix/ReadMatrix, including
// dimension validation on the read side.
func TestMatrixStreamRoundTrip(t *testing.T) {
	m := dpe.Matrix{
		{0, 0.5, 1},
		{0.5, 0, 0.25},
		{1, 0.25, 0},
	}
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrix(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Errorf("matrix round-trips to %v, want %v", back, m)
	}
	var empty bytes.Buffer
	if err := WriteMatrix(&empty, dpe.Matrix{}); err != nil {
		t.Fatal(err)
	}
	if back, err := ReadMatrix(bytes.NewReader(empty.Bytes())); err != nil || len(back) != 0 {
		t.Errorf("empty matrix round-trips to %v, %v", back, err)
	}
	if _, err := ReadMatrix(bytes.NewReader([]byte(`{"n":2,"rows":[[0,1]]}`))); err == nil {
		t.Error("row-count mismatch should fail")
	}
	if _, err := ReadMatrix(bytes.NewReader([]byte(`{"n":2,"rows":[[0],[1]]}`))); err == nil {
		t.Error("row-width mismatch should fail")
	}
}

// TestMineSpecWireRoundTrip checks spec fields and the algorithm's text
// form survive the wire.
func TestMineSpecWireRoundTrip(t *testing.T) {
	spec := dpe.MineSpec{Algorithm: dpe.MineDBSCAN, K: 3, Eps: 0.4, MinPts: 2, P: 0.9, D: 0.8, Query: 5}
	b, err := json.Marshal(EncodeMineSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"dbscan"`)) {
		t.Errorf("wire spec %s should name the algorithm", b)
	}
	var decoded WireMineSpec
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	got, err := decoded.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Errorf("spec round-trips to %+v, want %+v", got, spec)
	}
	// A spec whose algorithm field is absent (or misspelled, which JSON
	// decoding silently drops) must error, not silently run k-medoids.
	var noAlgo WireMineSpec
	if err := json.Unmarshal([]byte(`{"algoritm":"knn","k":5}`), &noAlgo); err != nil {
		t.Fatal(err)
	}
	if _, err := noAlgo.Decode(); err == nil {
		t.Error("spec without an algorithm should fail to decode")
	}
}
