package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	dpe "repro"
	"repro/internal/store"
	"repro/internal/store/journal"
	"repro/internal/store/memdriver"
)

// persistentConfig is the kill-and-restart tests' shared shape: a
// multi-shard registry journaling to dir.
func persistentConfig(t *testing.T, dir string, shards int) Config {
	t.Helper()
	st, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Shards: shards, Store: st, JanitorInterval: -1}
}

// TestKillAndRestartRecovery is the tentpole's acceptance check: a
// multi-shard persistent registry is populated with sessions, logs, and
// warm prepared state for all four measures (encrypted artifacts),
// closed, and reopened from the same backend. Every session must
// route to the same shard, every log must be servable, the first matrix
// request after restart must be a prepared-cache hit, and the matrices
// must be entry-wise identical to their pre-restart values. It runs
// against every persistent backend — the segment files and the SQL
// store (on the in-memory test driver) must recover identically.
func TestKillAndRestartRecovery(t *testing.T) {
	t.Run("segments", func(t *testing.T) {
		dir := t.TempDir()
		testKillAndRestart(t, func() store.Store {
			st, err := store.OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			return st
		})
	})
	t.Run("sql", func(t *testing.T) {
		const ds = "service-kill-and-restart"
		memdriver.Reset(ds)
		testKillAndRestart(t, func() store.Store {
			st, err := store.OpenSQL(memdriver.Name, ds)
			if err != nil {
				t.Fatal(err)
			}
			return st
		})
	})
}

// testKillAndRestart drives the kill-and-restart check against one
// backend; open reopens the same underlying data each call, the way a
// restarted process would.
func testKillAndRestart(t *testing.T, open func() store.Store) {
	f := newFixture(t)
	const shards = 4
	reg := NewRegistry(Config{Shards: shards, Store: open(), JanitorInterval: -1})
	ctx := context.Background()

	measures := []dpe.Measure{dpe.MeasureToken, dpe.MeasureStructure, dpe.MeasureResult, dpe.MeasureAccessArea}
	if testing.Short() {
		measures = measures[:2] // skip the Paillier-heavy artifact encryptions
	}

	type tenant struct {
		id     string
		shard  int
		logID  string
		matrix dpe.Matrix
	}
	var tenants []tenant
	byID := map[string]dpe.Measure{}
	for _, m := range measures {
		encLog, _, remoteOpts := f.measureSetup(t, m)
		req, err := BuildCreateSessionRequest(m, remoteOpts...)
		if err != nil {
			t.Fatal(err)
		}
		s, err := reg.CreateSession(req)
		if err != nil {
			t.Fatal(err)
		}
		logID, err := s.AddLog(encLog)
		if err != nil {
			t.Fatal(err)
		}
		matrix, err := s.Matrix(ctx, logID) // warms the prepared cache → snapshot journaled
		if err != nil {
			t.Fatal(err)
		}
		tenants = append(tenants, tenant{
			id: s.ID(), shard: reg.router.Shard(s.ID()), logID: logID, matrix: matrix,
		})
		byID[s.ID()] = m
	}
	// Session ids are random; add cheap token tenants until the
	// population provably spans at least two shards.
	occupied := map[int]bool{}
	for _, tn := range tenants {
		occupied[tn.shard] = true
	}
	for i := 0; len(occupied) < 2; i++ {
		if i >= 64 {
			t.Fatal("could not spread sessions over 2 shards in 64 tries")
		}
		encLog, _, _ := f.measureSetup(t, dpe.MeasureToken)
		req, _ := BuildCreateSessionRequest(dpe.MeasureToken)
		s, err := reg.CreateSession(req)
		if err != nil {
			t.Fatal(err)
		}
		logID, err := s.AddLog(encLog)
		if err != nil {
			t.Fatal(err)
		}
		matrix, err := s.Matrix(ctx, logID)
		if err != nil {
			t.Fatal(err)
		}
		tenants = append(tenants, tenant{id: s.ID(), shard: reg.router.Shard(s.ID()), logID: logID, matrix: matrix})
		byID[s.ID()] = dpe.MeasureToken
		occupied[reg.router.Shard(s.ID())] = true
	}

	reg.Close() // the "kill": flush journals and stop

	reg2, err := OpenRegistry(Config{Shards: shards, Store: open(), JanitorInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()

	rec := reg2.Recovery()
	if rec.Sessions != len(tenants) || rec.Logs != len(tenants) || rec.Snapshots != len(tenants) {
		t.Errorf("recovery = %+v, want %d sessions, logs, and snapshots", rec, len(tenants))
	}
	if stats := reg2.Stats(); stats.Recovered == nil || stats.Recovered.Sessions != len(tenants) {
		t.Errorf("stats.Recovered = %+v, want the recovery counters surfaced", stats.Recovered)
	}

	for _, tn := range tenants {
		if got := reg2.router.Shard(tn.id); got != tn.shard {
			t.Errorf("session %s routes to shard %d after restart, was %d", tn.id, got, tn.shard)
		}
		s, err := reg2.Session(tn.id)
		if err != nil {
			t.Fatalf("session %s (measure %v) not recovered: %v", tn.id, byID[tn.id], err)
		}
		if s.measure != byID[tn.id] {
			t.Errorf("session %s recovered with measure %v, want %v", tn.id, s.measure, byID[tn.id])
		}
		matrix, err := s.Matrix(ctx, tn.logID)
		if err != nil {
			t.Fatalf("log %s not servable after restart: %v", tn.logID, err)
		}
		if !reflect.DeepEqual(matrix, tn.matrix) {
			t.Errorf("measure %v matrix differs after restart", byID[tn.id])
		}
		stats := s.Stats()
		if stats.PreparedMisses != 0 || stats.PreparedHits != 1 {
			t.Errorf("measure %v first post-restart matrix: hits %d misses %d, want a pure cache hit (1/0)",
				byID[tn.id], stats.PreparedHits, stats.PreparedMisses)
		}
	}
}

// TestRecoveryAfterCrash reopens a data directory that was never
// cleanly closed — the journals are whatever the crashed process had
// written, including a torn tail — and must recover everything intact
// up to the damage.
func TestRecoveryAfterCrash(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(Config{Shards: 2, Store: st, JanitorInterval: -1})
	// No reg.Close(): the process "crashes".
	ctx := context.Background()
	req, _ := BuildCreateSessionRequest(dpe.MeasureToken)
	s, err := reg.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	log := []string{"SELECT a FROM t", "SELECT b FROM t", "SELECT a, b FROM t"}
	logID, err := s.AddLog(log)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Matrix(ctx, logID)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the owning shard's journal tail: chop a few bytes off the
	// last record (the snapshot). Recovery must keep the session and
	// log, drop the damaged snapshot, and re-prepare on demand.
	shardIdx := reg.router.Shard(s.ID())
	path := filepath.Join(dir, fmt.Sprintf("segment-%04d.log", shardIdx))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	// A real crash takes the process's data-dir lock with it; release
	// the crashed handle's lock the same way (the journal bytes on disk
	// are untouched — recovery sees exactly the torn tail).
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, err := OpenRegistry(persistentConfig(t, dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	rec := reg2.Recovery()
	if rec.Sessions != 1 || rec.Logs != 1 || rec.Snapshots != 0 {
		t.Errorf("recovery after torn tail = %+v, want 1 session, 1 log, 0 snapshots", rec)
	}
	s2, err := reg2.Session(s.ID())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Matrix(ctx, logID) // cold re-prepare from the recovered log
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("matrix differs after crash recovery")
	}
	if stats := s2.Stats(); stats.PreparedMisses != 1 {
		t.Errorf("post-crash matrix misses = %d, want 1 (snapshot was torn off)", stats.PreparedMisses)
	}
}

// TestRecoveryAcrossShardCounts reopens a journal under a different
// -shards value: replay routes records by id through the new ring, so
// every session lands on (and is journaled into) its new owning shard.
func TestRecoveryAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(persistentConfig(t, dir, 4))
	ctx := context.Background()
	log := []string{"SELECT a FROM t", "SELECT b FROM t"}
	var ids []string
	for i := 0; i < 6; i++ {
		req, _ := BuildCreateSessionRequest(dpe.MeasureToken)
		s, err := reg.CreateSession(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddLog(log); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID())
	}
	reg.Close()

	for _, shards := range []int{1, 2, 8} {
		reg2, err := OpenRegistry(persistentConfig(t, dir, shards))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if rec := reg2.Recovery(); rec.Sessions != len(ids) || rec.Logs != len(ids) {
			t.Errorf("shards=%d: recovery = %+v, want %d sessions and logs", shards, rec, len(ids))
		}
		for _, id := range ids {
			s, err := reg2.Session(id)
			if err != nil {
				t.Fatalf("shards=%d: session %s lost: %v", shards, id, err)
			}
			if _, err := s.Matrix(ctx, LogID(log)); err != nil {
				t.Fatalf("shards=%d: log not servable: %v", shards, err)
			}
		}
		reg2.Close()
	}
}

// TestDeleteSurvivesRestart pins the tombstone path: a deleted (or
// TTL-reaped) session must not resurrect when the journal replays.
func TestDeleteSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(persistentConfig(t, dir, 2))
	req, _ := BuildCreateSessionRequest(dpe.MeasureToken)
	keep, err := reg.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	req2, _ := BuildCreateSessionRequest(dpe.MeasureToken)
	doomed, err := reg.CreateSession(req2)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.DeleteSession(doomed.ID()); err != nil {
		t.Fatal(err)
	}
	reg.Close()

	reg2, err := OpenRegistry(persistentConfig(t, dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if _, err := reg2.Session(doomed.ID()); err == nil {
		t.Error("deleted session resurrected after restart")
	}
	if _, err := reg2.Session(keep.ID()); err != nil {
		t.Errorf("surviving session lost after restart: %v", err)
	}
	if live := reg2.live.Load(); live != 1 {
		t.Errorf("live after restart = %d, want 1", live)
	}

	// The startup compaction dropped the tombstone and the doomed
	// session's records: a third open replays only the survivor and no
	// tombstones.
	reg2.Close()
	reg3, err := OpenRegistry(persistentConfig(t, dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer reg3.Close()
	if rec := reg3.Recovery(); rec.Sessions != 1 || rec.Tombstones != 0 || rec.Skipped != 0 {
		t.Errorf("post-compaction recovery = %+v, want exactly the surviving session", rec)
	}
}

// TestCompactionBoundsJournal checks the janitor-driven rewrite: churn
// that journals many dead records compacts down to the live state, and
// the compacted journal still recovers it.
func TestCompactionBoundsJournal(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(persistentConfig(t, dir, 1))
	ctx := context.Background()
	// Churn: 8 tenant lifecycles that each journal a create, a log, a
	// snapshot, and a tombstone.
	for i := 0; i < 8; i++ {
		req, _ := BuildCreateSessionRequest(dpe.MeasureToken)
		s, err := reg.CreateSession(req)
		if err != nil {
			t.Fatal(err)
		}
		logID, err := s.AddLog([]string{fmt.Sprintf("SELECT c%d FROM t", i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Matrix(ctx, logID); err != nil {
			t.Fatal(err)
		}
		if err := reg.DeleteSession(s.ID()); err != nil {
			t.Fatal(err)
		}
	}
	req, _ := BuildCreateSessionRequest(dpe.MeasureToken)
	survivor, err := reg.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	logID, err := survivor.AddLog([]string{"SELECT a FROM t", "SELECT b FROM t"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := survivor.Matrix(ctx, logID); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "segment-0000.log")
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.CompactAll(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction grew the journal: %d -> %d bytes", before.Size(), after.Size())
	}
	reg.Close()

	reg2, err := OpenRegistry(persistentConfig(t, dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if rec := reg2.Recovery(); rec.Sessions != 1 || rec.Logs != 1 || rec.Snapshots != 1 || rec.Tombstones != 0 {
		t.Errorf("recovery from compacted journal = %+v, want exactly the survivor's records", rec)
	}
	s, err := reg2.Session(survivor.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Matrix(ctx, logID); err != nil {
		t.Fatal(err)
	}
	if stats := s.Stats(); stats.PreparedMisses != 0 {
		t.Errorf("post-compaction matrix missed the recovered snapshot (%d misses)", stats.PreparedMisses)
	}
}

// TestJanitorDrivesCompaction checks the periodic path end to end: with
// a tiny CompactEvery, dead records disappear from the journal without
// any explicit CompactAll call.
func TestJanitorDrivesCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(Config{
		Shards: 1, Store: st,
		SessionTTL: time.Hour, JanitorInterval: time.Millisecond, CompactEvery: 2 * time.Millisecond,
	})
	defer reg.Close()
	for i := 0; i < 4; i++ {
		req, _ := BuildCreateSessionRequest(dpe.MeasureToken)
		s, err := reg.CreateSession(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.DeleteSession(s.ID()); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "segment-0000.log")
	deadline := time.Now().Add(5 * time.Second)
	for {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			break // everything was dead; the janitor compacted it away
		}
		if time.Now().After(deadline) {
			t.Fatalf("janitor never compacted the journal (still %d bytes)", fi.Size())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTombstoneBeforeCreateAcrossJournals pins replay-order
// independence: when a session's create record lives in a journal that
// replays *after* the journal holding its tombstone (a re-homed
// session whose orphan retirement failed), the tombstone must still
// win — a deleted tenant never resurrects.
func TestTombstoneBeforeCreateAcrossJournals(t *testing.T) {
	dir := t.TempDir()
	// Hand-write the journals: shard 0 (replayed first) holds the
	// tombstone, shard 5 (an orphan under shards=2, replayed last)
	// holds the create and a log.
	st, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := "s-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	token := dpe.MeasureToken
	reqData, err := json.Marshal(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"SELECT a FROM t"}
	earlyLog, err := st.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	early := journal.New(earlyLog)
	if err := early.Append(journal.Delete{ID: id}); err != nil {
		t.Fatal(err)
	}
	early.Close()
	lateLog, err := st.Open(5)
	if err != nil {
		t.Fatal(err)
	}
	late := journal.New(lateLog)
	if err := late.Append(journal.Session{ID: id, Created: time.Now(), Request: reqData}); err != nil {
		t.Fatal(err)
	}
	if err := late.Append(journal.Log{SessionID: id, LogID: LogID(queries), Queries: queries}); err != nil {
		t.Fatal(err)
	}
	late.Close()
	// Release the hand-writer's dir lock before the registry opens it.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg, err := OpenRegistry(persistentConfig(t, dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.Session(id); err == nil {
		t.Error("tombstoned session resurrected from a later journal")
	}
	if live := reg.live.Load(); live != 0 {
		t.Errorf("live = %d after replaying a fully-tombstoned journal set, want 0", live)
	}
	rec := reg.Recovery()
	if rec.Tombstones != 1 || rec.Sessions != 0 {
		t.Errorf("recovery = %+v, want the tombstone honored and no session restored", rec)
	}
}

// --- session-lifecycle bugfix regressions ---

// TestStatsPollingDoesNotImmortalizeSession is the stats bugfix check:
// a monitoring poller hitting GET /v1/sessions/{id} more often than the
// TTL must not keep an otherwise-idle session alive — observing is not
// using, and the janitor must still reap it.
func TestStatsPollingDoesNotImmortalizeSession(t *testing.T) {
	reg := NewRegistry(Config{
		Shards: 2, SessionTTL: 10 * time.Millisecond, JanitorInterval: time.Millisecond,
	})
	defer reg.Close()
	req, _ := BuildCreateSessionRequest(dpe.MeasureToken)
	s, err := reg.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := reg.Session(s.ID()); err != nil {
			break // reaped while being polled — the fix
		}
		s.Stats() // the poller: far more frequent than the 10ms TTL
		if time.Now().After(deadline) {
			t.Fatal("stats polling kept the idle session alive past its TTL")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLogIDUsesFullDigest is the content-address bugfix check: the log
// id must carry the full SHA-256 (64 hex chars), not a truncated
// 64-bit prefix a collision could silently cross logs with.
func TestLogIDUsesFullDigest(t *testing.T) {
	id := LogID([]string{"SELECT a FROM t"})
	if !strings.HasPrefix(id, "l-") {
		t.Fatalf("LogID = %q, want the l- prefix", id)
	}
	if hexLen := len(id) - len("l-"); hexLen != 64 {
		t.Errorf("LogID carries %d hex chars, want the full 64 (256-bit digest)", hexLen)
	}
	if again := LogID([]string{"SELECT a FROM t"}); again != id {
		t.Error("LogID is not deterministic")
	}
	if other := LogID([]string{"SELECT b FROM t"}); other == id {
		t.Error("distinct logs share a LogID")
	}
	// The framing is length-prefixed: a boundary shift must not collide.
	if LogID([]string{"ab", "c"}) == LogID([]string{"a", "bc"}) {
		t.Error("LogID ignores query boundaries")
	}
}

// TestInflightPrepareSurvivesJanitor is the reap-during-build bugfix
// check: a cold Prepare that outlasts the idle TTL must neither get its
// session reaped out from under it (the build is pinned) nor have its
// result discarded — the follow-up call is a cache hit, and the idle
// clock restarts at build completion.
func TestInflightPrepareSurvivesJanitor(t *testing.T) {
	reg := NewRegistry(Config{
		Shards: 2, SessionTTL: 5 * time.Millisecond, JanitorInterval: time.Millisecond,
	})
	defer reg.Close()
	req, _ := BuildCreateSessionRequest(dpe.MeasureToken)
	s, err := reg.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	log := []string{"SELECT a FROM t", "SELECT b FROM t"}
	logID, err := s.AddLog(log)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// A slow metric stand-in: the real Prepare plus a sleep spanning
	// many TTLs and janitor ticks.
	slowBuild := func(ctx context.Context) (*dpe.PreparedLog, error) {
		time.Sleep(60 * time.Millisecond)
		return s.provider.Prepare(ctx, log)
	}
	if _, err := s.preparedKeyed(ctx, logID, log, slowBuild); err != nil {
		t.Fatal(err)
	}
	// The session survived the build (the janitor ticked ~60 times).
	if _, err := reg.Session(s.ID()); err != nil {
		t.Fatalf("session reaped while its Prepare was in flight: %v", err)
	}
	// The result was cached, not discarded: the next call hits.
	if _, err := s.Matrix(ctx, logID); err != nil {
		t.Fatal(err)
	}
	if stats := s.Stats(); stats.PreparedMisses != 1 || stats.PreparedHits != 1 {
		t.Errorf("after slow build + one matrix call: hits %d misses %d, want 1/1 (result kept)",
			stats.PreparedHits, stats.PreparedMisses)
	}
	// With no further traffic the session still ages out normally.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := reg.Session(s.ID()); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never reaped after its build completed and traffic stopped")
		}
		time.Sleep(time.Millisecond)
	}
}
