package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	dpe "repro"
)

// TestConcurrentChurnAcrossShards races create/upload/matrix/append/
// mine/delete traffic from many goroutines against one sharded
// registry, with the background janitor ticking the whole time. It is
// the refactor's -race check: shard maps, the global capacity counter,
// per-shard caches, and singleflight groups are all exercised under
// overlapping access — private sessions churn through their whole
// lifecycle while shared sessions absorb concurrent warm traffic on
// the same logs.
func TestConcurrentChurnAcrossShards(t *testing.T) {
	reg := NewRegistry(Config{
		Shards:          4,
		MaxSessions:     128,
		CacheEntries:    32,
		JanitorInterval: time.Millisecond, // ticking, but the 1h TTL reaps nothing
		SessionTTL:      time.Hour,
	})
	defer reg.Close()
	ctx := context.Background()
	token := dpe.MeasureToken

	// Shared sessions: several goroutines hammer the same session (and
	// the same logs), so cache gets, singleflight coalescing, and the
	// session's own counters race.
	const sharedSessions = 4
	shared := make([]*session, sharedSessions)
	sharedLog := []string{"SELECT a FROM t", "SELECT b FROM t", "SELECT a, b FROM t"}
	for i := range shared {
		s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddLog(sharedLog); err != nil {
			t.Fatal(err)
		}
		shared[i] = s
	}
	sharedLogID := LogID(sharedLog)

	const (
		workers = 8
		iters   = 6
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	fail := func(format string, args ...any) { errs <- fmt.Errorf(format, args...) }

	// Private-lifecycle workers: each iteration runs a whole tenant
	// life — create, upload, matrix, append, mine, delete — on its own
	// session, racing other workers' lifecycles on the shard maps and
	// the capacity counter.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
				if err != nil {
					fail("worker %d: create: %v", w, err)
					return
				}
				log := []string{
					fmt.Sprintf("SELECT c%d FROM t%d WHERE x = %d", w, w, i),
					fmt.Sprintf("SELECT d%d FROM t%d WHERE y = %d", w, w, i),
					fmt.Sprintf("SELECT c%d, d%d FROM t%d", w, w, w),
				}
				logID, err := s.AddLog(log)
				if err != nil {
					fail("worker %d: upload: %v", w, err)
					return
				}
				if _, err := s.Matrix(ctx, logID); err != nil {
					fail("worker %d: matrix: %v", w, err)
					return
				}
				if _, _, _, err := s.Append(ctx, logID, []string{fmt.Sprintf("SELECT e%d FROM t%d", i, w)}); err != nil {
					fail("worker %d: append: %v", w, err)
					return
				}
				if _, err := s.Mine(ctx, logID, dpe.MineSpec{Algorithm: dpe.MineKMedoids, K: 2}); err != nil {
					fail("worker %d: mine: %v", w, err)
					return
				}
				if err := reg.DeleteSession(s.ID()); err != nil {
					fail("worker %d: delete: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Shared-traffic workers: overlapping reads on the same sessions.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := shared[w%sharedSessions]
			for i := 0; i < iters; i++ {
				if _, err := s.Matrix(ctx, sharedLogID); err != nil {
					fail("shared %d: matrix: %v", w, err)
					return
				}
				if _, err := s.Distances(ctx, sharedLogID, i%len(sharedLog)); err != nil {
					fail("shared %d: distances: %v", w, err)
					return
				}
				s.Stats()
			}
		}(w)
	}

	// A stats poller: aggregation must never block or race tenant work.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < workers*iters; i++ {
			if got := reg.Stats(); got.Shards != 4 {
				fail("stats: shards = %d, want 4", got.Shards)
				return
			}
			reg.ShardStats()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the churn, exactly the shared sessions remain and the
	// capacity counter agrees with the maps.
	stats := reg.Stats()
	if stats.Sessions != sharedSessions {
		t.Errorf("sessions after churn = %d, want %d (private ones all deleted)", stats.Sessions, sharedSessions)
	}
	if live := int(reg.live.Load()); live != sharedSessions {
		t.Errorf("capacity counter = %d, want %d", live, sharedSessions)
	}
	for _, s := range shared {
		if _, err := reg.Session(s.ID()); err != nil {
			t.Errorf("shared session %s vanished: %v", s.ID(), err)
		}
	}
}

// TestCreateDeleteCapacityRace pins the lock-free capacity budget: with
// MaxSessions=4 and many goroutines churning create/delete, the live
// count never exceeds the budget and ends exactly balanced.
func TestCreateDeleteCapacityRace(t *testing.T) {
	reg := NewRegistry(Config{MaxSessions: 4, Shards: 4, JanitorInterval: -1})
	defer reg.Close()
	token := dpe.MeasureToken

	var wg sync.WaitGroup
	var over sync.Once
	var overErr error
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
				if err != nil {
					if !errors.Is(err, errTooManySessions) {
						over.Do(func() { overErr = err })
						return
					}
					continue // budget full right now — expected under contention
				}
				if live := reg.live.Load(); live > 4 {
					over.Do(func() { overErr = fmt.Errorf("live sessions reached %d, budget is 4", live) })
				}
				if err := reg.DeleteSession(s.ID()); err != nil {
					over.Do(func() { overErr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	if overErr != nil {
		t.Fatal(overErr)
	}
	if live := reg.live.Load(); live != 0 {
		t.Errorf("live = %d after balanced create/delete churn, want 0", live)
	}
}
