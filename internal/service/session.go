package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	dpe "repro"
	"repro/internal/store/journal"
)

// session is one tenant's provider state on the server: the immutable
// provider built from the uploaded artifacts, plus the logs uploaded so
// far. Logs are content-addressed, so re-uploading an identical log is
// idempotent and lands on the same cached prepared state. A session is
// pinned to one registry shard for its whole life — its cache entries,
// in-flight preparations, journal records, and map entry all live
// there.
type session struct {
	id       string
	measure  dpe.Measure
	provider *dpe.Provider
	reg      *Registry
	sh       *shard
	created  time.Time

	// persistReq is the encoded CreateSessionRequest, kept so journal
	// compaction and tenant export can rewrite the create record without
	// re-encoding artifacts. Deliberate trade-off: the encoded request
	// stays resident alongside the decoded provider for the session's
	// lifetime — roughly doubling artifact memory for catalog-heavy
	// tenants — until compaction learns to source create records from
	// the journal itself.
	persistReq json.RawMessage

	mu       sync.Mutex
	logs     map[string][]string
	logBytes int64
	lastUsed time.Time
	// inflight counts leader Prepare builds currently running for this
	// session. The janitor never reaps a session with inflight > 0: a
	// reap mid-build would discard the most expensive work the service
	// does and churn the cache byte budget.
	inflight int
	hits     int64
	misses   int64
	// approxHits/approxMisses count approx-index cache outcomes the way
	// hits/misses count prepared-state ones — the observable signal that
	// a restart recovered the index from the journal (first neighbors
	// call after replay is a hit, not a miss).
	approxHits   int64
	approxMisses int64
	// mineHits/mineMisses count mining-state cache outcomes on the
	// append_mine path: a hit means the combined log's state was already
	// cached (or another caller's in-flight mine was joined), a miss
	// means this call ran the incremental (or bootstrap) mine. A restart
	// that recovered the state from the journal warm-starts without a
	// cold bootstrap, which shows up as a miss whose IncrementalStats
	// report Warm.
	mineHits   int64
	mineMisses int64
}

// ID returns the session id.
func (s *session) ID() string { return s.id }

// touchLocked marks the session used; callers hold s.mu.
func (s *session) touchLocked() { s.lastUsed = time.Now() }

// LogID content-addresses a query log: equal logs get equal ids. The
// id carries the full SHA-256 digest — a truncated content address
// would let two different logs inside one session silently share
// prepared state and matrices on a 64-bit collision; at 256 bits a
// collision is cryptographically out of reach.
func LogID(queries []string) string {
	h := sha256.New()
	for _, q := range queries {
		fmt.Fprintf(h, "%d\n", len(q))
		h.Write([]byte(q))
	}
	return "l-" + hex.EncodeToString(h.Sum(nil))
}

// AddLog registers an uploaded log and returns its content-derived id.
// The session's raw-log store is budgeted (entries and bytes) so one
// tenant cannot grow server memory without bound.
func (s *session) AddLog(queries []string) (string, error) {
	size := int64(0)
	for _, q := range queries {
		size += int64(len(q))
	}
	return s.addLogSized(queries, size)
}

// addLogSized is AddLog with the byte-budget charge made explicit: a
// log derived from an already-stored base (the append path) shares the
// base's string data — Go strings are immutable, so the combined slice
// duplicates only headers — and is charged only for its new tail.
func (s *session) addLogSized(queries []string, size int64) (string, error) {
	if len(queries) == 0 {
		return "", fmt.Errorf("service: empty query log")
	}
	id := LogID(queries)
	cfg := s.reg.cfg
	s.mu.Lock()
	s.touchLocked()
	if _, ok := s.logs[id]; ok {
		s.mu.Unlock()
		return id, nil
	}
	if len(s.logs) >= cfg.MaxLogsPerSession {
		n := len(s.logs)
		s.mu.Unlock()
		return "", fmt.Errorf("service: session log limit reached (%d logs); delete the session or reuse uploaded logs", n)
	}
	if s.logBytes+size > cfg.MaxLogBytesPerSession {
		have := s.logBytes
		s.mu.Unlock()
		return "", fmt.Errorf("service: session log byte budget exceeded (%d + %d > %d bytes)", have, size, cfg.MaxLogBytesPerSession)
	}
	stored := append([]string(nil), queries...)
	s.logs[id] = stored
	s.logBytes += size
	s.mu.Unlock()

	// Journal outside s.mu (the journal's lock is never taken while
	// holding session or shard locks — see shard.journal's rule). A
	// concurrent compaction between the map update and this append
	// either already snapshotted the new log (fine: the append is a
	// harmless duplicate for replay) or will be followed by it.
	if err := s.journalLog(id, stored); err != nil {
		s.mu.Lock()
		delete(s.logs, id)
		s.logBytes -= size
		s.mu.Unlock()
		return "", err
	}
	return id, nil
}

// journalLog writes a log-upload record for a persistent registry.
func (s *session) journalLog(id string, queries []string) error {
	if !s.reg.persistent {
		return nil
	}
	if err := s.sh.journal.Append(journal.Log{SessionID: s.id, LogID: id, Queries: queries}); err != nil {
		return fmt.Errorf("service: journaling log upload: %w", err)
	}
	return nil
}

// restoreLog is the replay-side inverse of journalLog: it trusts the
// recorded id (pre-restart references must stay valid even across LogID
// algorithm changes) and is idempotent.
func (s *session) restoreLog(id string, queries []string) bool {
	size := int64(0)
	for _, q := range queries {
		size += int64(len(q))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.logs[id]; ok {
		return false
	}
	s.logs[id] = queries
	s.logBytes += size
	return true
}

// log returns an uploaded log by id.
func (s *session) log(id string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchLocked()
	queries, ok := s.logs[id]
	if !ok {
		return nil, notFoundError{fmt.Errorf("service: unknown log %q (upload it first)", id)}
	}
	return queries, nil
}

// preparedCost is the cache's byte accounting for one prepared log: the
// metric's own footprint estimate when it has one (the result measure's
// tuple sets scale with catalog rows, not with log text), the log size
// plus a per-query overhead otherwise.
func preparedCost(pl *dpe.PreparedLog, queries []string) int64 {
	if size := pl.SizeBytes(); size > 0 {
		return size
	}
	cost := int64(0)
	for _, q := range queries {
		cost += int64(2*len(q)) + 256
	}
	return cost
}

// prepared returns the log's prepared state, serving repeat calls from
// the session's shard-local LRU cache (the expensive half of every
// distance computation — tokenizing, parsing, executing — runs at most
// once per uploaded log while the entry stays cached). Concurrent cold
// calls for the same log collapse into a single preparation.
func (s *session) prepared(ctx context.Context, logID string) (*dpe.PreparedLog, error) {
	queries, err := s.log(logID)
	if err != nil {
		return nil, err
	}
	return s.preparedKeyed(ctx, logID, queries, func(ctx context.Context) (*dpe.PreparedLog, error) {
		return s.provider.Prepare(ctx, queries)
	})
}

// preparedKeyed serves the prepared state for one cached log id,
// running build at most once per cold key however many callers race
// (singleflight). Both the full-prepare path (prepared) and the
// incremental extension path (Append) go through here, so they share
// the shard's cache, its coalescing, and the deleted-session rule.
func (s *session) preparedKeyed(ctx context.Context, logID string, queries []string, build func(context.Context) (*dpe.PreparedLog, error)) (*dpe.PreparedLog, error) {
	key := s.id + "\x00" + logID
	for {
		if v, ok := s.sh.cache.get(key); ok {
			s.mu.Lock()
			s.hits++
			s.mu.Unlock()
			return v.(*dpe.PreparedLog), nil
		}
		c, leader := s.sh.flight.begin(key)
		if leader {
			// Re-check under leadership: a previous leader may have added
			// the entry between our cache miss and our begin (its add runs
			// before its finish, so the entry is visible by now).
			if v, ok := s.sh.cache.get(key); ok {
				pl := v.(*dpe.PreparedLog)
				s.sh.flight.finish(key, c, pl, nil)
				s.mu.Lock()
				s.hits++
				s.mu.Unlock()
				return pl, nil
			}
			// Pin the session for the build's duration: a cold Prepare can
			// outlast the idle TTL, and reaping mid-build would discard the
			// result (see shard.reapIdle).
			s.mu.Lock()
			s.inflight++
			s.mu.Unlock()
			s.reg.metrics.inflightBuilds.Add(1)
			pl, err := build(ctx)
			s.reg.metrics.inflightBuilds.Add(-1)
			cached := false
			if err == nil {
				// Only cache for a still-live session: if the session was
				// deleted mid-prepare, its removePrefix already ran and an
				// add now would strand an unreachable entry on the shard's
				// byte budget. The session is pinned to s.sh, so its own
				// shard map is the liveness authority — no need to re-route
				// the id through the ring.
				if s.sh.session(s.id) != nil {
					s.sh.cache.add(key, pl, preparedCost(pl, queries))
					cached = true
				}
			}
			// Completing the build is a use: the idle clock restarts now,
			// so a tenant whose cold Prepare took most of a TTL is not
			// reaped out from under its follow-up requests.
			s.mu.Lock()
			s.inflight--
			s.touchLocked()
			if err == nil {
				s.misses++
			}
			s.mu.Unlock()
			if cached {
				s.persistSnapshot(logID, pl)
			}
			s.sh.flight.finish(key, c, pl, err)
			return pl, err
		}
		// Not the leader: this call coalesced onto an in-flight build.
		s.reg.metrics.flightDedups.Inc()
		select {
		case <-c.done:
			if c.err == nil {
				s.mu.Lock()
				s.hits++
				s.mu.Unlock()
				return c.val.(*dpe.PreparedLog), nil
			}
			// The leader failed — possibly only because *its* context was
			// cancelled. If ours is still live, retry (and likely become
			// the new leader) rather than inherit a stranger's error.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// approxKey namespaces a session's cached approx index for one log.
// The key keeps the s.id + "\x00" prefix every session-owned cache
// entry carries, so the one removePrefix sweep on delete and TTL reap
// evicts prepared state and approx indexes together — the split-budget
// byte accounting stays truthful with no second bookkeeping path. The
// "approx:" namespace cannot collide with prepared keys: log ids
// always start with "l-".
func (s *session) approxKey(logID string) string {
	return s.id + "\x00approx:" + logID
}

// approxIndex returns the log's MinHash/LSH index, serving repeat
// calls from the shard LRU (size-accounted via the index's own
// estimate, alongside prepared state) and coalescing concurrent cold
// builds through the same singleflight group prepares use. A freshly
// built index is journaled so a restarted server recovers it instead
// of re-signing the log.
func (s *session) approxIndex(ctx context.Context, logID string, pl *dpe.PreparedLog) (*dpe.ApproxIndex, error) {
	key := s.approxKey(logID)
	for {
		if v, ok := s.sh.cache.get(key); ok {
			s.mu.Lock()
			s.approxHits++
			s.mu.Unlock()
			return v.(*dpe.ApproxIndex), nil
		}
		c, leader := s.sh.flight.begin(key)
		if leader {
			if v, ok := s.sh.cache.get(key); ok {
				idx := v.(*dpe.ApproxIndex)
				s.sh.flight.finish(key, c, idx, nil)
				s.mu.Lock()
				s.approxHits++
				s.mu.Unlock()
				return idx, nil
			}
			// BuildApproxIndex takes no context, so its stage is timed
			// here rather than inside the provider like the other stages.
			s.reg.metrics.inflightBuilds.Add(1)
			buildStart := time.Now()
			idx, err := s.provider.BuildApproxIndex(pl)
			s.reg.observeStage(ctx, "approx_index", time.Since(buildStart))
			s.reg.metrics.inflightBuilds.Add(-1)
			cached := false
			if err == nil {
				// Same deleted-session rule as preparedKeyed: never add
				// for a session whose removePrefix already ran.
				if s.sh.session(s.id) != nil {
					s.sh.cache.add(key, idx, idx.SizeBytes())
					cached = true
				}
			}
			s.mu.Lock()
			s.touchLocked()
			if err == nil {
				s.approxMisses++
			}
			s.mu.Unlock()
			if cached {
				s.persistApprox(logID, idx)
			}
			s.sh.flight.finish(key, c, idx, err)
			return idx, err
		}
		// Not the leader: this call coalesced onto an in-flight build.
		s.reg.metrics.flightDedups.Inc()
		select {
		case <-c.done:
			if c.err == nil {
				s.mu.Lock()
				s.approxHits++
				s.mu.Unlock()
				return c.val.(*dpe.ApproxIndex), nil
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// persistApprox journals the serialized index, best-effort like
// persistSnapshot: the index is a cache (the server can always rebuild
// it from the prepared state), so a failure must not fail the request.
func (s *session) persistApprox(logID string, idx *dpe.ApproxIndex) {
	if !s.reg.persistent {
		return
	}
	blob, err := idx.MarshalBinary()
	if err != nil {
		return
	}
	s.sh.journal.Append(journal.Approx{SessionID: s.id, LogID: logID, Blob: blob})
}

// persistSnapshot journals the serialized prepared state under the
// content-addressed log id, best-effort: the snapshot is a cache (the
// registry can always re-prepare from the journaled log), so a codec or
// IO failure here must not fail the tenant's request.
func (s *session) persistSnapshot(logID string, pl *dpe.PreparedLog) {
	if !s.reg.persistent {
		return
	}
	blob, err := s.provider.MarshalPreparedLog(pl)
	if err != nil {
		return
	}
	s.sh.journal.Append(journal.Snapshot{SessionID: s.id, LogID: logID, Blob: blob})
}

// Append is the incremental ingest path: it registers base ∘ newQueries
// as a new content-addressed log, extends the base log's cached prepared
// state with only the new queries, and computes only the new matrix rows
// (n·k + k·(k−1)/2 pair computations instead of a full rebuild). It
// returns the combined log's id, the offset n where the new rows start,
// and the k full-width rows — what a client splices onto its old matrix.
// The extended prepared state is cached under the combined log, so
// follow-up matrix/row/mine calls on it are warm; concurrent identical
// appends coalesce into one extension (the same singleflight as cold
// prepares).
//
// Each append registers one more log entry (charged only for the new
// tail's bytes — the base's string data is shared), so a long
// one-query-at-a-time append chain runs into MaxLogsPerSession; batch
// appends, or delete the session, when the budget error surfaces.
//
// An empty append is a no-op, not an error — the combined log *is* the
// base log (content addressing collapses them) and zero rows come back
// — matching dpe.Provider.Append, so dpe.ProviderAPI callers behave
// identically in-process and remote.
func (s *session) Append(ctx context.Context, baseLogID string, newQueries []string) (combinedID string, offset int, rows [][]float64, err error) {
	base, err := s.log(baseLogID)
	if err != nil {
		return "", 0, nil, err
	}
	combined := make([]string, 0, len(base)+len(newQueries))
	combined = append(combined, base...)
	combined = append(combined, newQueries...)
	tailSize := int64(0)
	for _, q := range newQueries {
		tailSize += int64(len(q))
	}
	combinedID, err = s.addLogSized(combined, tailSize)
	if err != nil {
		return "", 0, nil, err
	}
	pl, err := s.preparedKeyed(ctx, combinedID, combined, func(ctx context.Context) (*dpe.PreparedLog, error) {
		basePL, err := s.prepared(ctx, baseLogID)
		if err != nil {
			return nil, err
		}
		return s.provider.ExtendPrepared(ctx, basePL, newQueries)
	})
	if err != nil {
		return "", 0, nil, err
	}
	rows, err = s.provider.AppendRowsPrepared(ctx, len(base), pl)
	if err != nil {
		return "", 0, nil, err
	}
	// Ride the base log's approx index forward: if neighbors traffic
	// warmed it, sign only the new queries so the combined log starts
	// warm too. Best-effort — the index is a cache and rebuilds on
	// demand.
	s.extendApprox(baseLogID, combinedID, pl)
	return combinedID, len(base), rows, nil
}

// extendApprox extends a cached base-log approx index to the combined
// log after an append. peek (not get) keeps this opportunistic path
// out of the hit/miss counters and the recency order.
func (s *session) extendApprox(baseLogID, combinedID string, pl *dpe.PreparedLog) {
	if baseLogID == combinedID {
		return // empty append: the combined log is the base log
	}
	if _, ok := s.sh.cache.peek(s.approxKey(combinedID)); ok {
		return
	}
	v, ok := s.sh.cache.peek(s.approxKey(baseLogID))
	if !ok {
		return
	}
	idx, err := s.provider.ExtendApproxIndex(v.(*dpe.ApproxIndex), pl)
	if err != nil {
		return
	}
	if s.sh.session(s.id) == nil {
		return // deleted mid-append; see preparedKeyed's cache rule
	}
	s.sh.cache.add(s.approxKey(combinedID), idx, idx.SizeBytes())
	s.persistApprox(combinedID, idx)
}

// Neighbors is the sublinear top-K path: the log's LSH index yields
// candidates, the exact metric re-ranks them — no matrix row is ever
// materialized. The index is built (or recovered from the journal)
// once per log and cached alongside prepared state.
func (s *session) Neighbors(ctx context.Context, logID string, q, k int) (*dpe.NeighborsResult, error) {
	pl, err := s.prepared(ctx, logID)
	if err != nil {
		return nil, err
	}
	idx, err := s.approxIndex(ctx, logID, pl)
	if err != nil {
		return nil, err
	}
	return s.provider.NeighborsPrepared(ctx, pl, idx, q, k)
}

// Matrix computes the full pairwise distance matrix of an uploaded log.
func (s *session) Matrix(ctx context.Context, logID string) (dpe.Matrix, error) {
	pl, err := s.prepared(ctx, logID)
	if err != nil {
		return nil, err
	}
	return s.provider.DistanceMatrixPrepared(ctx, pl)
}

// Distances computes one matrix row of an uploaded log.
func (s *session) Distances(ctx context.Context, logID string, q int) ([]float64, error) {
	pl, err := s.prepared(ctx, logID)
	if err != nil {
		return nil, err
	}
	return s.provider.DistancesPrepared(ctx, pl, q)
}

// Mine builds the matrix of an uploaded log and runs one mining
// algorithm over it. The spec is validated before any expensive work.
func (s *session) Mine(ctx context.Context, logID string, spec dpe.MineSpec) (*dpe.MineResult, error) {
	queries, err := s.log(logID)
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(len(queries)); err != nil {
		return nil, err
	}
	pl, err := s.prepared(ctx, logID)
	if err != nil {
		return nil, err
	}
	if spec.Approximate {
		idx, err := s.approxIndex(ctx, logID, pl)
		if err != nil {
			return nil, err
		}
		return s.provider.MinePreparedIndexed(ctx, pl, idx, spec)
	}
	return s.provider.MinePrepared(ctx, pl, spec)
}

// mineSpecFingerprint renders a spec as a canonical string for cache
// keys: equal specs — the warm-start eligibility test MineIncremental
// itself applies — get equal fingerprints. Approximate is omitted; the
// incremental path rejects approximate specs before any key is formed.
// The fingerprint never contains a NUL byte, so the log id after the
// key's final NUL separator parses back out unambiguously (compaction
// relies on that).
func mineSpecFingerprint(spec dpe.MineSpec) string {
	return fmt.Sprintf("%s,k=%d,eps=%g,minpts=%d,p=%g,d=%g,q=%d,ms=%d,ml=%d",
		spec.Algorithm, spec.K, spec.Eps, spec.MinPts, spec.P, spec.D,
		spec.Query, spec.MinSupport, spec.MaxLen)
}

// mineKey namespaces a session's cached mining state for one (spec,
// log) pair. Like approxKey it keeps the s.id + "\x00" prefix, so the
// one removePrefix sweep on delete and TTL reap releases mining-state
// bytes from the shard budget together with prepared state and approx
// indexes — no second eviction path to forget. "mine:" cannot collide
// with the other namespaces: log ids start with "l-" and the approx
// namespace spells differently.
func (s *session) mineKey(spec dpe.MineSpec, logID string) string {
	return s.id + "\x00mine:" + mineSpecFingerprint(spec) + "\x00" + logID
}

// mineFlightResult is what a mining singleflight leader publishes:
// followers of a coalesced call want the result, the cache wants the
// state.
type mineFlightResult struct {
	res   *dpe.MineResult
	state *dpe.MineState
}

// mineIncremental serves one (spec, combined log) mine, maintaining the
// session's cached MineState: a cached state for the combined log is
// replayed as a zero-delta warm run (no distance pairs), a cached state
// for the base log warm-starts the delta, and no state at all runs the
// cold bootstrap. Concurrent identical calls coalesce through the
// shard's singleflight group, and a freshly computed state is cached
// (byte-accounted) and journaled so a restarted server stays warm.
func (s *session) mineIncremental(ctx context.Context, baseLogID, combinedID string, pl *dpe.PreparedLog, spec dpe.MineSpec) (*dpe.MineResult, error) {
	key := s.mineKey(spec, combinedID)
	for {
		if v, ok := s.sh.cache.get(key); ok {
			res, _, err := s.provider.MineIncremental(ctx, pl, v.(*dpe.MineState), spec)
			if err == nil {
				s.mu.Lock()
				s.mineHits++
				s.touchLocked()
				s.mu.Unlock()
				s.reg.mineStateHits.Add(1)
			}
			return res, err
		}
		c, leader := s.sh.flight.begin(key)
		if leader {
			// Re-check under leadership, then fall back to the base log's
			// state (peek: opportunistic warm source, like extendApprox) —
			// hit when this exact mine was already paid for, warm delta
			// when only the base was.
			var prev *dpe.MineState
			selfWarm := false
			if v, ok := s.sh.cache.get(key); ok {
				prev, selfWarm = v.(*dpe.MineState), true
			} else if v, ok := s.sh.cache.peek(s.mineKey(spec, baseLogID)); ok {
				prev = v.(*dpe.MineState)
			}
			s.mu.Lock()
			s.inflight++
			s.mu.Unlock()
			s.reg.metrics.inflightBuilds.Add(1)
			res, state, err := s.provider.MineIncremental(ctx, pl, prev, spec)
			s.reg.metrics.inflightBuilds.Add(-1)
			cached := false
			if err == nil && !selfWarm {
				// Same deleted-session rule as preparedKeyed: never add for
				// a session whose removePrefix already ran.
				if s.sh.session(s.id) != nil {
					s.sh.cache.add(key, state, state.SizeBytes())
					cached = true
				}
			}
			s.mu.Lock()
			s.inflight--
			s.touchLocked()
			if err == nil {
				if selfWarm {
					s.mineHits++
				} else {
					s.mineMisses++
				}
			}
			s.mu.Unlock()
			if err == nil {
				if selfWarm {
					s.reg.mineStateHits.Add(1)
				} else {
					s.reg.mineStateMisses.Add(1)
				}
			}
			if cached {
				s.persistMineState(combinedID, state)
			}
			s.sh.flight.finish(key, c, mineFlightResult{res: res, state: state}, err)
			return res, err
		}
		// Not the leader: this call coalesced onto an in-flight mine.
		s.reg.metrics.flightDedups.Inc()
		select {
		case <-c.done:
			if c.err == nil {
				s.mu.Lock()
				s.mineHits++
				s.mu.Unlock()
				s.reg.mineStateHits.Add(1)
				return c.val.(mineFlightResult).res, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// persistMineState journals the serialized mining state, best-effort
// like persistApprox: the state is a cache (the server can always
// re-mine cold), so a codec or IO failure must not fail the request.
func (s *session) persistMineState(logID string, state *dpe.MineState) {
	if !s.reg.persistent {
		return
	}
	blob, err := dpe.MarshalMineState(state)
	if err != nil {
		return
	}
	s.sh.journal.Append(journal.Mining{SessionID: s.id, LogID: logID, Blob: blob})
}

// AppendMine is the batched append-and-mine endpoint: one request
// appends newQueries to an uploaded base log, extends the prepared
// state (through the same singleflight key Append uses, so a racing
// logs:append and logs:append_mine coalesce into one extension instead
// of building twice), rides the approx index forward, and runs the
// mining spec incrementally from the base log's cached MineState. It
// returns the combined log id, the offset where the new rows start, the
// new full-width matrix rows (nil for apriori, which never builds a
// matrix), and the mining result with its IncrementalStats label delta.
//
// An empty append mines the base log itself — the content-addressed
// combined log *is* the base log — bootstrapping (and caching) its
// mining state.
func (s *session) AppendMine(ctx context.Context, baseLogID string, newQueries []string, spec dpe.MineSpec) (combinedID string, offset int, rows [][]float64, res *dpe.MineResult, err error) {
	base, err := s.log(baseLogID)
	if err != nil {
		return "", 0, nil, nil, err
	}
	if err := spec.Validate(len(base) + len(newQueries)); err != nil {
		return "", 0, nil, nil, err
	}
	combined := make([]string, 0, len(base)+len(newQueries))
	combined = append(combined, base...)
	combined = append(combined, newQueries...)
	tailSize := int64(0)
	for _, q := range newQueries {
		tailSize += int64(len(q))
	}
	combinedID, err = s.addLogSized(combined, tailSize)
	if err != nil {
		return "", 0, nil, nil, err
	}
	pl, err := s.preparedKeyed(ctx, combinedID, combined, func(ctx context.Context) (*dpe.PreparedLog, error) {
		basePL, err := s.prepared(ctx, baseLogID)
		if err != nil {
			return nil, err
		}
		return s.provider.ExtendPrepared(ctx, basePL, newQueries)
	})
	if err != nil {
		return "", 0, nil, nil, err
	}
	s.extendApprox(baseLogID, combinedID, pl)
	res, err = s.mineIncremental(ctx, baseLogID, combinedID, pl, spec)
	if err != nil {
		return "", 0, nil, nil, err
	}
	if res.Matrix != nil {
		rows = res.Matrix[len(base):]
	}
	return combinedID, len(base), rows, res, nil
}

// Verify runs the Definition 1 check with the session's tolerance.
func (s *session) Verify(plain, enc dpe.Matrix) (*dpe.PreservationReport, error) {
	s.mu.Lock()
	s.touchLocked()
	s.mu.Unlock()
	return s.provider.VerifyPreservation(plain, enc)
}

// Stats snapshots the session. Observing a session is deliberately not
// a use: a monitoring poller hitting GET /v1/sessions/{id} must not
// reset the idle clock, or the TTL janitor could never reap a session
// that is merely being watched.
func (s *session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{
		Session:         s.id,
		Measure:         s.measure,
		Logs:            len(s.logs),
		PreparedHits:    s.hits,
		PreparedMisses:  s.misses,
		ApproxHits:      s.approxHits,
		ApproxMisses:    s.approxMisses,
		MineStateHits:   s.mineHits,
		MineStateMisses: s.mineMisses,
		CreatedAt:       s.created,
	}
}
