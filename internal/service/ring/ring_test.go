package ring

import (
	"fmt"
	"testing"
)

// TestShardStability pins the key→shard mapping to golden values: the
// mapping is part of the deployment contract (a different build routing
// the same session id to a different shard would strand its state), so
// any change here is a breaking change and must be deliberate.
func TestShardStability(t *testing.T) {
	r8 := New(8)
	cases := []struct {
		key  string
		want int
	}{
		{"s-00000000000000000000000000000000", 2},
		{"s-deadbeefdeadbeefdeadbeefdeadbeef", 3},
		{"s-0123456789abcdef0123456789abcdef", 6},
		{"alpha", 5},
		{"beta", 7},
		{"gamma", 7},
		{"delta", 3},
		{"epsilon", 3},
	}
	for _, c := range cases {
		if got := r8.Shard(c.key); got != c.want {
			t.Errorf("New(8).Shard(%q) = %d, want %d (the mapping must never drift)", c.key, got, c.want)
		}
	}
	r16 := New(16)
	for _, c := range []struct {
		key  string
		want int
	}{{"alpha", 11}, {"beta", 7}, {"gamma", 11}} {
		if got := r16.Shard(c.key); got != c.want {
			t.Errorf("New(16).Shard(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

// TestTwoRingsAgree checks determinism across independently-built rings
// with the same shape: no hidden seed, no construction-order dependence.
func TestTwoRingsAgree(t *testing.T) {
	a, b := New(8), New(8)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("s-%032x", i*0x9e3779b9)
		if a.Shard(k) != b.Shard(k) {
			t.Fatalf("two New(8) rings disagree on %q: %d vs %d", k, a.Shard(k), b.Shard(k))
		}
	}
}

// TestSingleShard pins the degenerate ring: everything routes to 0.
func TestSingleShard(t *testing.T) {
	r := New(1)
	for _, k := range []string{"", "a", "s-deadbeef", "anything at all"} {
		if got := r.Shard(k); got != 0 {
			t.Errorf("New(1).Shard(%q) = %d, want 0", k, got)
		}
	}
	if r.Shards() != 1 {
		t.Errorf("Shards() = %d, want 1", r.Shards())
	}
}

// TestRangeAndBalance checks every shard index is in range and the load
// spread over many keys is within a loose factor of uniform — the
// virtual nodes must actually interleave.
func TestRangeAndBalance(t *testing.T) {
	const shards, keys = 8, 10000
	r := New(shards)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		s := r.Shard(fmt.Sprintf("key-%d", i))
		if s < 0 || s >= shards {
			t.Fatalf("Shard returned %d, outside [0,%d)", s, shards)
		}
		counts[s]++
	}
	mean := keys / shards
	for s, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("shard %d holds %d of %d keys (mean %d): distribution too skewed", s, c, keys, mean)
		}
	}
}

// TestConsistency is the property that earns the name: growing N shards
// to N+1 may move keys only TO the new shard — no key hops between two
// old shards, so a scale-out invalidates the minimum amount of routed
// state.
func TestConsistency(t *testing.T) {
	const keys = 10000
	for _, n := range []int{2, 4, 8} {
		old, grown := New(n), New(n+1)
		moved := 0
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("key-%d", i)
			a, b := old.Shard(k), grown.Shard(k)
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("N=%d→%d: key %q moved shard %d → %d, but only moves to the new shard %d are allowed", n, n+1, k, a, b, n)
			}
		}
		// Ideally keys/(n+1) keys move; allow generous slack for the
		// virtual-node approximation, but a rebuild-everything hash
		// (moved ≈ keys·n/(n+1)) must fail loudly.
		if ideal := keys / (n + 1); moved > 2*ideal {
			t.Errorf("N=%d→%d moved %d keys, want ≈%d (consistent hashing, not rehash-everything)", n, n+1, moved, ideal)
		}
		if moved == 0 {
			t.Errorf("N=%d→%d moved no keys: the new shard owns nothing", n, n+1)
		}
	}
}

// TestBadArguments pins the constructor contract.
func TestBadArguments(t *testing.T) {
	for _, c := range []struct{ shards, replicas int }{{0, 64}, {-1, 64}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWithReplicas(%d, %d) did not panic", c.shards, c.replicas)
				}
			}()
			NewWithReplicas(c.shards, c.replicas)
		}()
	}
}
