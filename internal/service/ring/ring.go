// Package ring is a consistent-hash router from string keys to numbered
// shards. It exists as its own package because the same abstraction has
// two lives: today it routes session ids onto the in-process shard array
// of internal/service's registry, and a multi-node deployment can reuse
// it unchanged to route tenants across dpeserver instances (the shard
// number becomes a node index).
//
// The mapping is *stable*: it depends only on (key, shards, replicas) —
// FNV-1a over fixed labels, no process seed, no map iteration — so two
// processes built at different times agree on every key. It is also
// *consistent* in the classic sense: growing an N-shard ring to N+1
// moves only the keys that land on the new shard; no key moves between
// two old shards.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per shard. 64 points per
// shard keeps the worst shard within a few percent of the mean for the
// shard counts a single process uses (≤ 256).
const DefaultReplicas = 64

// Ring routes keys to one of a fixed number of shards. It is immutable
// after construction and therefore safe for concurrent use.
type Ring struct {
	shards int
	points []point // sorted by (hash, shard)
}

// point is one virtual node: a position on the 64-bit hash circle owned
// by a shard.
type point struct {
	hash  uint64
	shard int
}

// New creates a router over `shards` shards with DefaultReplicas virtual
// nodes each. shards must be >= 1.
func New(shards int) *Ring { return NewWithReplicas(shards, DefaultReplicas) }

// NewWithReplicas is New with an explicit virtual-node count (>= 1).
func NewWithReplicas(shards, replicas int) *Ring {
	if shards < 1 {
		panic(fmt.Sprintf("ring: shards must be >= 1, got %d", shards))
	}
	if replicas < 1 {
		panic(fmt.Sprintf("ring: replicas must be >= 1, got %d", replicas))
	}
	r := &Ring{shards: shards, points: make([]point, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			// The label fixes the mapping forever: changing it would
			// silently reshuffle every deployment's key placement.
			r.points = append(r.points, point{hash: hashString(fmt.Sprintf("shard-%d#%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count the ring routes over.
func (r *Ring) Shards() int { return r.shards }

// Shard returns the shard owning key: the first virtual node at or
// clockwise after the key's hash on the circle.
func (r *Ring) Shard(key string) int {
	if r.shards == 1 {
		return 0
	}
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the circle
	}
	return r.points[i].shard
}

// hashString is FNV-1a(64) pushed through a splitmix64-style finalizer.
// FNV alone is stable but serial: keys differing only in their last
// byte land within a narrow arc of each other (the final xor-multiply
// shifts the hash by at most ~1.5% of the circle), which clumps
// sequential ids. The finalizer's avalanche breaks that correlation
// while staying a pure function — stable across processes and Go
// versions, unlike maphash or any seeded hash.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.): full avalanche,
// bijective, no state.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
