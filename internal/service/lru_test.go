package service

import "testing"

// TestLRUEntryBudget checks eviction by entry count in LRU order, with
// get refreshing recency.
func TestLRUEntryBudget(t *testing.T) {
	c := newLRU(2, 1<<30)
	c.add("a", 1, 1)
	c.add("b", 2, 1)
	if _, ok := c.get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a should be cached")
	}
	c.add("c", 3, 1)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be cached")
	}
	s := c.stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries and 1 eviction", s)
	}
}

// TestLRUByteBudget checks eviction by total cost, and that one
// over-budget entry is still admitted alone.
func TestLRUByteBudget(t *testing.T) {
	c := newLRU(100, 10)
	c.add("a", 1, 4)
	c.add("b", 2, 4)
	c.add("c", 3, 4) // 12 > 10: evict a
	if _, ok := c.get("a"); ok {
		t.Error("a should have been evicted over the byte budget")
	}
	if s := c.stats(); s.Bytes != 8 {
		t.Errorf("bytes = %d, want 8", s.Bytes)
	}
	c.add("huge", 4, 1000) // over budget alone: evicts the rest, stays
	if _, ok := c.get("huge"); !ok {
		t.Error("a single over-budget entry must still be admitted")
	}
	if s := c.stats(); s.Entries != 1 {
		t.Errorf("entries = %d, want only the huge one", s.Entries)
	}
}

// TestLRUUpdateAndRemovePrefix checks in-place cost updates and
// session-scoped removal.
func TestLRUUpdateAndRemovePrefix(t *testing.T) {
	c := newLRU(10, 100)
	c.add("s1\x00l1", 1, 10)
	c.add("s1\x00l2", 2, 10)
	c.add("s2\x00l1", 3, 10)
	c.add("s1\x00l1", 4, 20) // update cost in place
	if s := c.stats(); s.Bytes != 40 {
		t.Errorf("bytes = %d, want 40 after update", s.Bytes)
	}
	c.removePrefix("s1\x00")
	if _, ok := c.get("s1\x00l1"); ok {
		t.Error("s1 entries should be gone")
	}
	if _, ok := c.get("s2\x00l1"); !ok {
		t.Error("s2 entry should survive")
	}
	if s := c.stats(); s.Entries != 1 || s.Bytes != 10 {
		t.Errorf("stats = %+v, want 1 entry / 10 bytes", s)
	}
}
