package service

import (
	"sync"
	"time"

	"repro/internal/store/journal"
)

// shard is one slice of the registry's multi-tenant state: a session
// map under its own mutex, its own singleflight group, its own
// size-aware prepared-state LRU, and — when the registry is persistent
// — its own append-only journal. A session's id routes it to exactly
// one shard (see Registry.shardFor), so everything the session owns —
// map entry, in-flight preparations, cached prepared state, journal
// records — lives together and never contends with other shards' locks.
type shard struct {
	cache  *lruCache
	flight *flightGroup

	// journal is the shard's typed journal. It serializes appends
	// against compaction internally; its lock is never taken while
	// holding sh.mu or a session's mu (the compactor's collect runs
	// under the journal lock and takes those locks), so the
	// shard/session lock order stays acyclic — callers journal only
	// outside those locks.
	journal *journal.Journal

	mu       sync.Mutex
	sessions map[string]*session
}

func newShard(cacheEntries int, cacheBytes int64, jl *journal.Journal) *shard {
	return &shard{
		cache:    newLRU(cacheEntries, cacheBytes),
		flight:   newFlightGroup(),
		journal:  jl,
		sessions: make(map[string]*session),
	}
}

// session returns a live session by id, or nil.
func (sh *shard) session(id string) *session {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sessions[id]
}

// put registers a session; the caller has already reserved capacity.
func (sh *shard) put(s *session) {
	sh.mu.Lock()
	sh.sessions[s.id] = s
	sh.mu.Unlock()
}

// remove drops a session from the map, reporting whether it was live.
// The caller releases capacity and purges the cache.
func (sh *shard) remove(id string) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.sessions[id]; !ok {
		return false
	}
	delete(sh.sessions, id)
	return true
}

// list snapshots the shard's live sessions (for compaction).
func (sh *shard) list() []*session {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]*session, 0, len(sh.sessions))
	for _, s := range sh.sessions {
		out = append(out, s)
	}
	return out
}

// reapIdle removes sessions idle longer than ttl and returns their ids.
// The session clocks are read under each session's own mutex while the
// shard lock is held — the same lock order CreateSession-era code used
// (shard before session), so the two cannot deadlock. A session whose
// leader is mid-Prepare (inflight > 0) is never reaped: discarding a
// build that is still being paid for would churn the byte budget and
// throw the result away.
func (sh *shard) reapIdle(now time.Time, ttl time.Duration) []string {
	var reaped []string
	sh.mu.Lock()
	for id, s := range sh.sessions {
		s.mu.Lock()
		idle := now.Sub(s.lastUsed)
		busy := s.inflight > 0
		s.mu.Unlock()
		if idle > ttl && !busy {
			delete(sh.sessions, id)
			reaped = append(reaped, id)
		}
	}
	sh.mu.Unlock()
	return reaped
}

// sessionCount reads the shard's live-session count (the per-shard
// gauge).
func (sh *shard) sessionCount() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.sessions)
}

// snapshot reads the shard's counters for stats. The shard lock guards
// only the map length; the cache snapshots under its own brief mutex —
// no lock is ever held while sizing prepared state (costs were charged
// at insert time), so a stats call cannot stall tenant traffic.
func (sh *shard) snapshot(index int) ShardStats {
	sh.mu.Lock()
	n := len(sh.sessions)
	sh.mu.Unlock()
	return ShardStats{Shard: index, Sessions: n, PreparedCache: sh.cache.stats()}
}

// splitEntries divides a registry-wide entry budget across n shards,
// rounding up so the aggregate never shrinks below the configured total
// and every shard keeps at least one slot. With n = 1 the budget is
// exactly the configured value — a single-shard registry behaves like
// the historical unsharded one.
func splitEntries(total, n int) int {
	per := (total + n - 1) / n
	if per < 1 {
		per = 1
	}
	return per
}

// splitBytes is splitEntries for byte budgets.
func splitBytes(total int64, n int) int64 {
	per := (total + int64(n) - 1) / int64(n)
	if per < 1 {
		per = 1
	}
	return per
}

// flightGroup coalesces concurrent builds of the same cache key: one
// caller becomes the leader and runs the build, the rest wait for its
// result instead of repeating it. Prepared state and approx indexes
// share one group (their keys never collide — the approx namespace is
// embedded in the key), which is why the published value is untyped.
// Each shard owns one group — keys embed the session id, and a session
// never changes shards.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// begin joins the in-flight call for key, or starts one; leader reports
// which happened.
func (g *flightGroup) begin(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// finish publishes the leader's result and retires the call.
func (g *flightGroup) finish(key string, c *flightCall, val any, err error) {
	c.val, c.err = val, err
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}
