package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	dpe "repro"
)

// fixture is one owner-side deployment: a deterministic workload plus
// the master secret holder.
type fixture struct {
	w     *dpe.Workload
	owner *dpe.Owner
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w, err := dpe.GenerateWorkload(dpe.WorkloadConfig{
		Seed: "service-test", Queries: 12, Rows: 30,
		IncludeAggregates: true, IncludeJoins: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := dpe.NewOwner([]byte("service-test-master"), w.Schema, dpe.Config{PaillierBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.DeclareJoins(w.Queries); err != nil {
		t.Fatal(err)
	}
	return &fixture{w: w, owner: owner}
}

// measureSetup encrypts the log for a measure and builds both sides of
// the parity check from the same encrypted artifacts: an in-process
// provider, and the wire options for a remote session.
func (f *fixture) measureSetup(t *testing.T, m dpe.Measure) (encLog []string, local *dpe.Provider, remoteOpts []SessionOption) {
	t.Helper()
	encLog, err := f.owner.EncryptLog(f.w.Queries, m)
	if err != nil {
		t.Fatal(err)
	}
	localOpts, remoteOpts, err := EncryptedArtifactOptions(f.owner, f.w, m)
	if err != nil {
		t.Fatal(err)
	}
	local, err = dpe.NewProvider(m, localOpts...)
	if err != nil {
		t.Fatal(err)
	}
	return encLog, local, remoteOpts
}

func startServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	reg := NewRegistry(cfg)
	t.Cleanup(reg.Close)
	srv := httptest.NewServer(NewHandler(reg))
	t.Cleanup(srv.Close)
	return srv
}

// TestRemoteLocalParity is the tentpole's acceptance check: for every
// measure, the matrix, row, and mining results served over HTTP are
// entry-wise identical to the in-process Provider on the same encrypted
// log — and the second matrix call is served from the prepared-state
// cache (observable via the session stats endpoint). The whole check
// runs against a 1-shard and a 16-shard server: shard count must be
// invisible in every result.
func TestRemoteLocalParity(t *testing.T) {
	f := newFixture(t)
	clients := map[string]*Client{
		"shards=1":  NewClient(startServer(t, Config{Shards: 1}).URL),
		"shards=16": NewClient(startServer(t, Config{Shards: 16}).URL),
	}
	ctx := context.Background()

	measures := []dpe.Measure{dpe.MeasureToken, dpe.MeasureStructure, dpe.MeasureResult, dpe.MeasureAccessArea}
	if testing.Short() {
		measures = measures[:2] // skip the Paillier-heavy artifact encryptions
	}
	for _, m := range measures {
		encLog, local, remoteOpts := f.measureSetup(t, m)
		for name, client := range clients {
			t.Run(m.String()+"/"+name, func(t *testing.T) {
				sess, err := client.NewSession(ctx, m, remoteOpts...)
				if err != nil {
					t.Fatal(err)
				}
				if sess.Measure() != m {
					t.Errorf("session measure = %v, want %v", sess.Measure(), m)
				}

				want, err := local.DistanceMatrix(ctx, encLog)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sess.DistanceMatrix(ctx, encLog)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatal("remote matrix differs from in-process matrix")
				}

				// Row access parity (first and last query).
				for _, q := range []int{0, len(encLog) - 1} {
					wantRow, err := local.Distances(ctx, encLog, q)
					if err != nil {
						t.Fatal(err)
					}
					gotRow, err := sess.Distances(ctx, encLog, q)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotRow, wantRow) {
						t.Errorf("remote row %d differs from in-process row", q)
					}
				}

				// Mining parity.
				spec := dpe.MineSpec{Algorithm: dpe.MineKMedoids, K: 3}
				wantMine, err := local.Mine(ctx, encLog, spec)
				if err != nil {
					t.Fatal(err)
				}
				gotMine, err := sess.Mine(ctx, encLog, spec)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotMine, wantMine) {
					t.Error("remote mining result differs from in-process result")
				}

				// Remote Definition 1 check against the owner's plaintext matrix.
				plainProvider := plainSide(t, f, m)
				plain, err := plainProvider.DistanceMatrix(ctx, f.w.Queries)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := sess.VerifyPreservation(plain, got)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Preserved {
					t.Errorf("measure %v not preserved over the wire: max |Δd| = %g", m, rep.MaxAbsError)
				}

				// The repeat calls above must have hit the prepared cache: only
				// the very first call on the uploaded log may miss.
				stats, err := sess.Stats(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if stats.Logs != 1 {
					t.Errorf("stats.Logs = %d, want 1 (content-addressed upload)", stats.Logs)
				}
				// One miss (the first matrix call) and a hit for each of the two
				// row calls and the mine call.
				if stats.PreparedMisses != 1 || stats.PreparedHits != 3 {
					t.Errorf("prepared cache: hits %d misses %d, want exactly 1 miss and 3 hits",
						stats.PreparedHits, stats.PreparedMisses)
				}
			})
		}
	}
}

// plainSide builds the owner's in-process plaintext session for a
// measure (the other half of the Definition 1 check).
func plainSide(t *testing.T, f *fixture, m dpe.Measure) *dpe.Provider {
	t.Helper()
	var opts []dpe.ProviderOption
	switch m {
	case dpe.MeasureResult:
		opts = append(opts, dpe.WithCatalog(f.w.Catalog, nil))
	case dpe.MeasureAccessArea:
		opts = append(opts, dpe.WithDomains(f.w.Domains))
	}
	p, err := dpe.NewProvider(m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestHandlerCancellation drives a request whose context is already
// cancelled through the full handler: the matrix build must abort with
// the context's error instead of running to completion.
func TestHandlerCancellation(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	h := NewHandler(reg)

	token := dpe.MeasureToken
	s, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatal(err)
	}
	logID, err := s.AddLog([]string{"SELECT a FROM t", "SELECT b FROM t"})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := strings.NewReader(fmt.Sprintf(`{"log":%q}`, logID))
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+s.ID()+"/matrix", body).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Errorf("cancelled request got HTTP %d (%s), want 499", rec.Code, rec.Body.String())
	}

	// The same cancellation surfaces directly from the session layer.
	if _, err := s.Matrix(ctx, logID); !errors.Is(err, context.Canceled) {
		t.Errorf("session.Matrix with cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestClientCancellationMidRequest cancels a client context while the
// server is grinding through a large matrix build; the call must return
// promptly with the context error.
func TestClientCancellationMidRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a deliberately large matrix to race the cancellation")
	}
	srv := startServer(t, Config{})
	bg := context.Background()
	sess, err := NewClient(srv.URL).NewSession(bg, dpe.MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	// A log big enough that the n(n-1)/2 pairwise build dominates: the
	// 5ms budget below expires long before ~700k Jaccard computations.
	log := make([]string, 1200)
	for i := range log {
		log[i] = fmt.Sprintf("SELECT objid, ra, dec FROM photoobj WHERE ra > %d AND nvote = %d", i, i%7)
	}
	if _, err := sess.UploadLog(bg, log); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sess.DistanceMatrix(ctx, log)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DistanceMatrix under cancellation = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %s to surface, want prompt abort", elapsed)
	}
}

// TestErrorPaths exercises the API's failure modes: bad sessions, bad
// logs, bad specs, bad artifacts, and the session capacity limit.
func TestErrorPaths(t *testing.T) {
	srv := startServer(t, Config{MaxSessions: 1})
	client := NewClient(srv.URL)
	ctx := context.Background()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	// Unknown session -> 404.
	if code, body := post("/v1/sessions/s-ffffffff/logs", `{"queries":["SELECT a FROM t"]}`); code != http.StatusNotFound {
		t.Errorf("unknown session: HTTP %d (%s), want 404", code, body)
	}
	// Unknown measure -> 400.
	if code, body := post("/v1/sessions", `{"measure":"bogus"}`); code != http.StatusBadRequest {
		t.Errorf("bad measure: HTTP %d (%s), want 400", code, body)
	}
	// Missing measure must not silently default to token -> 400.
	if code, body := post("/v1/sessions", `{}`); code != http.StatusBadRequest || !strings.Contains(body, "missing the measure") {
		t.Errorf("missing measure: HTTP %d (%s), want 400 naming the field", code, body)
	}
	// Result measure without its shared artifact -> 400.
	if code, body := post("/v1/sessions", `{"measure":"result"}`); code != http.StatusBadRequest || !strings.Contains(body, "catalog") {
		t.Errorf("result without catalog: HTTP %d (%s), want 400 naming the catalog", code, body)
	}

	sess, err := client.NewSession(ctx, dpe.MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity: the registry holds one live session.
	if _, err := client.NewSession(ctx, dpe.MeasureToken); err == nil || !strings.Contains(err.Error(), "429") {
		t.Errorf("second session = %v, want 429 session-limit error", err)
	}

	// Empty log -> 400.
	if code, body := post("/v1/sessions/"+sess.ID()+"/logs", `{"queries":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty log: HTTP %d (%s), want 400", code, body)
	}
	// Matrix over a log that was never uploaded -> 404.
	if code, body := post("/v1/sessions/"+sess.ID()+"/matrix", `{"log":"l-deadbeef"}`); code != http.StatusNotFound {
		t.Errorf("unknown log: HTTP %d (%s), want 404", code, body)
	}

	log := []string{"SELECT a FROM t", "SELECT b FROM t", "SELECT a, b FROM t"}
	// Bad spec fails fast with the validation message, not a mining crash.
	_, err = sess.Mine(ctx, log, dpe.MineSpec{Algorithm: dpe.MineDBSCAN, MinPts: 2})
	if err == nil || !strings.Contains(err.Error(), "Eps > 0") {
		t.Errorf("bad spec = %v, want Eps validation error", err)
	}
	// Mismatched verify matrices -> 400.
	if rep, err := sess.VerifyPreservation(dpe.Matrix{{0}}, dpe.Matrix{{0, 1}, {1, 0}}); err == nil {
		t.Errorf("mismatched verify = %+v, want error", rep)
	}

	// Deleting the session frees capacity and invalidates the handle.
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Stats(ctx); err == nil {
		t.Error("stats on a deleted session should fail")
	}
	if _, err := client.NewSession(ctx, dpe.MeasureToken); err != nil {
		t.Errorf("capacity not released after delete: %v", err)
	}
}

// TestAppendParity checks the incremental ingest path end to end: for
// every measure, Append over the wire returns a matrix entry-wise
// identical to a from-scratch DistanceMatrix over the concatenated log,
// the server reuses the cached prepared state (observable via stats),
// and the follow-up call on the grown log is warm.
func TestAppendParity(t *testing.T) {
	f := newFixture(t)
	srv := startServer(t, Config{})
	client := NewClient(srv.URL)
	ctx := context.Background()

	measures := []dpe.Measure{dpe.MeasureToken, dpe.MeasureStructure, dpe.MeasureResult, dpe.MeasureAccessArea}
	if testing.Short() {
		measures = measures[:2] // skip the Paillier-heavy artifact encryptions
	}
	for _, m := range measures {
		t.Run(m.String(), func(t *testing.T) {
			encLog, local, remoteOpts := f.measureSetup(t, m)
			base, tail := encLog[:len(encLog)-3], encLog[len(encLog)-3:]

			sess, err := client.NewSession(ctx, m, remoteOpts...)
			if err != nil {
				t.Fatal(err)
			}
			old, err := sess.DistanceMatrix(ctx, base)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sess.Append(ctx, old, base, tail)
			if err != nil {
				t.Fatal(err)
			}
			want, err := local.DistanceMatrix(ctx, encLog)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("appended matrix differs from from-scratch matrix")
			}

			// The grown log's prepared state is cached: a full matrix call
			// on the concatenated log must be a hit, not a new preparation.
			statsBefore, err := sess.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			full, err := sess.DistanceMatrix(ctx, encLog)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(full, want) {
				t.Fatal("matrix on the grown log differs")
			}
			statsAfter, err := sess.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if statsAfter.PreparedMisses != statsBefore.PreparedMisses {
				t.Errorf("matrix on the grown log re-prepared it: misses %d -> %d",
					statsBefore.PreparedMisses, statsAfter.PreparedMisses)
			}
			if statsAfter.Logs != 2 {
				t.Errorf("stats.Logs = %d, want 2 (base + combined)", statsAfter.Logs)
			}
		})
	}
}

// TestAppendWirePayload checks the append response carries only the new
// rows — the O(n²) old block must not cross the wire again.
func TestAppendWirePayload(t *testing.T) {
	srv := startServer(t, Config{})
	ctx := context.Background()
	sess, err := NewClient(srv.URL).NewSession(ctx, dpe.MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	base := []string{"SELECT a FROM t", "SELECT b FROM t", "SELECT a, b FROM t"}
	baseID, err := sess.UploadLog(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(AppendLogRequest{Log: baseID, Queries: []string{"SELECT c FROM t"}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/sessions/"+sess.ID()+"/logs:append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rows, err := ReadAppendedRows(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Offset != 3 || rows.N != 4 || len(rows.Rows) != 1 || len(rows.Rows[0]) != 4 {
		t.Errorf("appended rows = offset %d n %d (%d rows), want one full-width row 3..4", rows.Offset, rows.N, len(rows.Rows))
	}
}

// TestAppendErrors exercises the append endpoint's failure modes.
func TestAppendErrors(t *testing.T) {
	srv := startServer(t, Config{})
	ctx := context.Background()
	sess, err := NewClient(srv.URL).NewSession(ctx, dpe.MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	base := []string{"SELECT a FROM t", "SELECT b FROM t"}
	old, err := sess.DistanceMatrix(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	// Appending to a log that was never uploaded -> 404.
	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/sessions/"+sess.ID()+"/logs:append", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := post(`{"log":"l-deadbeef","queries":["SELECT c FROM t"]}`); code != http.StatusNotFound {
		t.Errorf("append to unknown log: HTTP %d (%s), want 404", code, body)
	}
	// Appending nothing is a no-op, mirroring dpe.Provider.Append: the
	// combined log is the base itself and zero rows come back.
	baseID, err := sess.UploadLog(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if code, body := post(fmt.Sprintf(`{"log":%q,"queries":[]}`, baseID)); code != http.StatusOK ||
		!strings.Contains(body, fmt.Sprintf(`"log":%q`, baseID)) || !strings.Contains(body, `"rows":[]`) {
		t.Errorf("empty append: HTTP %d (%s), want 200 echoing the base log with no rows", code, body)
	}
	if got, err := sess.Append(ctx, old, base, nil); err != nil || !reflect.DeepEqual(got, old) {
		t.Errorf("client empty append = %v, %v, want the old matrix back", got, err)
	}
	// An unparseable appended query surfaces as 400, not a crash.
	if code, body := post(fmt.Sprintf(`{"log":%q,"queries":["bad @"]}`, baseID)); code != http.StatusBadRequest {
		t.Errorf("bad appended query: HTTP %d (%s), want 400", code, body)
	}
	// Client-side validation: a stale old matrix is rejected locally.
	if _, err := sess.Append(ctx, old[:1], base, []string{"SELECT c FROM t"}); err == nil {
		t.Error("mismatched old matrix should error")
	}
}

// TestPrepareSingleflight checks concurrent cold requests for the same
// log collapse into one preparation: however many clients race, the
// expensive Prepare runs once.
func TestPrepareSingleflight(t *testing.T) {
	srv := startServer(t, Config{})
	ctx := context.Background()
	sess, err := NewClient(srv.URL).NewSession(ctx, dpe.MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	log := []string{"SELECT a FROM t", "SELECT b FROM t", "SELECT a, b FROM t"}
	if _, err := sess.UploadLog(ctx, log); err != nil {
		t.Fatal(err)
	}
	const racers = 8
	errs := make(chan error, racers)
	for i := 0; i < racers; i++ {
		go func() {
			_, err := sess.DistanceMatrix(ctx, log)
			errs <- err
		}()
	}
	for i := 0; i < racers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	stats, err := sess.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PreparedMisses != 1 {
		t.Errorf("%d concurrent cold calls ran Prepare %d times, want 1 (singleflight)",
			racers, stats.PreparedMisses)
	}
	if stats.PreparedHits != racers-1 {
		t.Errorf("hits = %d, want %d coalesced/cached calls", stats.PreparedHits, racers-1)
	}
}

// TestSessionLogBudgets checks a tenant cannot grow server memory
// without bound: distinct uploads stop at the per-session entry budget
// (re-uploads of known logs stay free), and oversized logs hit the byte
// budget.
func TestSessionLogBudgets(t *testing.T) {
	srv := startServer(t, Config{MaxLogsPerSession: 2, MaxLogBytesPerSession: 1 << 20})
	ctx := context.Background()
	sess, err := NewClient(srv.URL).NewSession(ctx, dpe.MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	logs := [][]string{
		{"SELECT a FROM t"},
		{"SELECT b FROM t"},
		{"SELECT c FROM t"},
	}
	for i, log := range logs[:2] {
		if _, err := sess.UploadLog(ctx, log); err != nil {
			t.Fatalf("log %d: %v", i, err)
		}
	}
	if _, err := sess.UploadLog(ctx, logs[2]); err == nil || !strings.Contains(err.Error(), "log limit") {
		t.Errorf("third distinct log = %v, want entry-budget error", err)
	}
	// Re-uploading a known log is idempotent, not a new entry.
	if _, err := sess.UploadLog(ctx, logs[0]); err != nil {
		t.Errorf("re-upload of a known log = %v, want success", err)
	}

	tight := startServer(t, Config{MaxLogBytesPerSession: 16})
	sess2, err := NewClient(tight.URL).NewSession(ctx, dpe.MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.UploadLog(ctx, []string{"SELECT a, b, c FROM a_rather_long_table_name"}); err == nil || !strings.Contains(err.Error(), "byte budget") {
		t.Errorf("oversized log = %v, want byte-budget error", err)
	}
}

// TestIdleSessionReaping checks that, at capacity, sessions idle past
// the TTL are reaped so new tenants are not locked out forever by
// abandoned ones.
func TestIdleSessionReaping(t *testing.T) {
	reg := NewRegistry(Config{MaxSessions: 1, SessionTTL: time.Nanosecond, JanitorInterval: -1})
	defer reg.Close()
	token := dpe.MeasureToken
	old, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond) // let the idle clock pass the 1ns TTL
	fresh, err := reg.CreateSession(&CreateSessionRequest{Measure: &token})
	if err != nil {
		t.Fatalf("create at capacity with a stale session = %v, want reap + success", err)
	}
	if _, err := reg.Session(old.ID()); err == nil {
		t.Error("the idle session should have been reaped")
	}
	if _, err := reg.Session(fresh.ID()); err != nil {
		t.Errorf("the fresh session should be live: %v", err)
	}
}

// TestCacheEviction checks the registry-wide LRU actually bounds
// prepared state: with room for one entry, alternating logs keep
// missing, while a stable log keeps hitting.
func TestCacheEviction(t *testing.T) {
	srv := startServer(t, Config{CacheEntries: 1})
	ctx := context.Background()
	sess, err := NewClient(srv.URL).NewSession(ctx, dpe.MeasureToken)
	if err != nil {
		t.Fatal(err)
	}
	logA := []string{"SELECT a FROM t", "SELECT b FROM t"}
	logB := []string{"SELECT c FROM t", "SELECT d FROM t"}
	for i := 0; i < 2; i++ {
		if _, err := sess.DistanceMatrix(ctx, logA); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.DistanceMatrix(ctx, logB); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := sess.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PreparedMisses != 4 {
		t.Errorf("alternating logs with a 1-entry cache: %d misses, want 4 (every call evicted the other)", stats.PreparedMisses)
	}
}
