package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestTaxonomyInvariants(t *testing.T) {
	if err := ValidateTaxonomy(); err != nil {
		t.Fatal(err)
	}
}

func TestSecurityLevels(t *testing.T) {
	// Fig. 1 vertical order plus the Section IV-C remark (PROB > HOM).
	if !MoreSecure(PROB, HOM) {
		t.Fatal("PROB must be strictly more secure than HOM (Section IV-C)")
	}
	if !MoreSecure(HOM, DET) || !MoreSecure(DET, OPE) {
		t.Fatal("row order violated")
	}
	// Same row: incomparable.
	if MoreSecure(DET, JOIN) || MoreSecure(JOIN, DET) {
		t.Fatal("DET and JOIN share a row")
	}
	if MoreSecure(OPE, JOINOPE) || MoreSecure(JOINOPE, OPE) {
		t.Fatal("OPE and JOIN-OPE share a row")
	}
	if SecurityLevel("NOPE") != 0 {
		t.Fatal("unknown class must level 0")
	}
}

func TestSubclassEdges(t *testing.T) {
	want := map[Class]Class{HOM: PROB, OPE: DET, JOIN: DET, JOINOPE: OPE, PROB: "", DET: ""}
	for c, p := range want {
		if Subclass(c) != p {
			t.Errorf("Subclass(%s) = %s, want %s", c, Subclass(c), p)
		}
	}
}

func TestLeakageCoversAllClasses(t *testing.T) {
	for _, c := range AllClasses() {
		if l := Leakage(c); l == "" || l == "unknown class" {
			t.Errorf("Leakage(%s) = %q", c, l)
		}
	}
}

func TestSortBySecurity(t *testing.T) {
	sorted := SortBySecurity([]Class{OPE, DET, PROB, HOM})
	if sorted[0] != PROB || sorted[1] != HOM || sorted[3] != OPE {
		t.Fatalf("sorted = %v", sorted)
	}
}

func TestVerifyDPEPreserved(t *testing.T) {
	d := func(i, j int) (float64, error) { return float64(i + j), nil }
	rep, err := VerifyDPE(5, d, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Preserved || rep.Pairs != 10 || rep.MaxAbsError != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestVerifyDPEViolation(t *testing.T) {
	plain := func(i, j int) (float64, error) { return 0.5, nil }
	enc := func(i, j int) (float64, error) {
		if i == 1 && j == 2 {
			return 0.9, nil
		}
		return 0.5, nil
	}
	rep, err := VerifyDPE(4, plain, enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preserved {
		t.Fatal("violation not detected")
	}
	if len(rep.CounterExamples) != 1 || rep.CounterExamples[0].I != 1 || rep.CounterExamples[0].J != 2 {
		t.Fatalf("counterexamples = %+v", rep.CounterExamples)
	}
	if rep.MaxAbsError != 0.4 {
		t.Fatalf("max error = %v", rep.MaxAbsError)
	}
}

func TestVerifyDPETolerance(t *testing.T) {
	plain := func(i, j int) (float64, error) { return 0.5, nil }
	enc := func(i, j int) (float64, error) { return 0.5 + 1e-14, nil }
	rep, _ := VerifyDPE(3, plain, enc, 1e-12)
	if !rep.Preserved {
		t.Fatal("tiny float noise must be tolerated")
	}
}

func TestVerifyDPEErrorPropagation(t *testing.T) {
	bad := func(i, j int) (float64, error) { return 0, errors.New("boom") }
	ok := func(i, j int) (float64, error) { return 0, nil }
	if _, err := VerifyDPE(3, bad, ok, 0); err == nil {
		t.Fatal("plain error must propagate")
	}
	if _, err := VerifyDPE(3, ok, bad, 0); err == nil {
		t.Fatal("enc error must propagate")
	}
}

func TestVerifyEquivalence(t *testing.T) {
	sets := []map[string]bool{{"a": true}, {"b": true, "c": true}}
	same := func(i int) (map[string]bool, error) { return sets[i], nil }
	rep, err := VerifyEquivalence(2, same, same)
	if err != nil || !rep.Holds {
		t.Fatalf("equal sides must hold: %+v, %v", rep, err)
	}
	other := func(i int) (map[string]bool, error) {
		if i == 1 {
			return map[string]bool{"b": true}, nil
		}
		return sets[i], nil
	}
	rep, _ = VerifyEquivalence(2, same, other)
	if rep.Holds || rep.FirstFail != 1 {
		t.Fatalf("failure not detected: %+v", rep)
	}
}

func TestSelectAppropriatePicksHighestPreserving(t *testing.T) {
	mk := func(label string, class Class, preserved bool) Candidate {
		return Candidate{Label: label, Class: class, Verify: func() (*PreservationReport, error) {
			return &PreservationReport{Pairs: 1, Preserved: preserved}, nil
		}}
	}
	sel, err := SelectAppropriate([]Candidate{
		mk("prob", PROB, false), // most secure but breaks the notion
		mk("det", DET, true),
		mk("ope", OPE, true),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Chosen == nil || sel.Chosen.Label != "det" {
		t.Fatalf("chosen = %+v, want det (highest preserving)", sel.Chosen)
	}
	if len(sel.Reports) != 3 {
		t.Fatalf("reports = %d", len(sel.Reports))
	}
}

func TestSelectAppropriateNonePreserve(t *testing.T) {
	sel, err := SelectAppropriate([]Candidate{
		{Label: "x", Class: PROB, Verify: func() (*PreservationReport, error) {
			return &PreservationReport{Preserved: false}, nil
		}},
	})
	if err != nil || sel.Chosen != nil {
		t.Fatalf("no candidate should be chosen: %+v, %v", sel, err)
	}
}

func TestSelectAppropriateErrorPropagates(t *testing.T) {
	_, err := SelectAppropriate([]Candidate{
		{Label: "x", Class: PROB, Verify: func() (*PreservationReport, error) {
			return nil, fmt.Errorf("verifier broke")
		}},
	})
	if err == nil {
		t.Fatal("verifier error must propagate")
	}
}

func TestSQLMeasuresMatchTableI(t *testing.T) {
	ms := SQLMeasures()
	if len(ms) != 4 {
		t.Fatalf("measures = %d", len(ms))
	}
	// Shared-information columns of Table I.
	if !ms[0].Shared.Log || ms[0].Shared.DBContent || ms[0].Shared.Domains {
		t.Fatalf("token row shared info wrong: %v", ms[0].Shared)
	}
	if !ms[2].Shared.DBContent {
		t.Fatal("result distance must require DB content")
	}
	if !ms[3].Shared.Domains {
		t.Fatal("access-area distance must require domains")
	}
	if ms[1].C != "features" || ms[3].Equivalence != "Access-Area Equivalence" {
		t.Fatalf("row metadata wrong: %+v", ms)
	}
}

func TestProcedureRunAndRender(t *testing.T) {
	candidates := []Candidate{
		{Label: "PROB constants", Class: PROB, Verify: func() (*PreservationReport, error) {
			return &PreservationReport{Pairs: 10, Preserved: false, MaxAbsError: 0.4}, nil
		}},
		{Label: "DET constants", Class: DET, Verify: func() (*PreservationReport, error) {
			return &PreservationReport{Pairs: 10, Preserved: true}, nil
		}},
	}
	p, err := Run(SQLMeasures()[0], candidates)
	if err != nil {
		t.Fatal(err)
	}
	if p.Selection.Chosen.Label != "DET constants" {
		t.Fatalf("chosen = %v", p.Selection.Chosen)
	}
	row := p.TableRow()
	if !strings.Contains(row, "Token") || !strings.Contains(row, "DET constants") {
		t.Fatalf("row = %s", row)
	}
	sum := p.Summary()
	for _, want := range []string{"step 1", "step 2", "step 3", "step 4", "VIOLATES", "preserves"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestProcedureNoCandidate(t *testing.T) {
	p, err := Run(SQLMeasures()[0], []Candidate{
		{Label: "x", Class: PROB, Verify: func() (*PreservationReport, error) {
			return &PreservationReport{Preserved: false}, nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Assessment, "failed") {
		t.Fatalf("assessment = %s", p.Assessment)
	}
	if !strings.Contains(p.TableRow(), "—") {
		t.Fatalf("row = %s", p.TableRow())
	}
}

func TestDefaultThreatModel(t *testing.T) {
	tm := DefaultThreatModel()
	if len(tm.Attacks) != 3 {
		t.Fatalf("attacks = %d, want 3 (the passive attacks of [9])", len(tm.Attacks))
	}
}

func TestSharedInformationString(t *testing.T) {
	s := SharedInformation{Log: true, Domains: true}.String()
	if !strings.Contains(s, "log=yes") || !strings.Contains(s, "db-content=no") || !strings.Contains(s, "domains=yes") {
		t.Fatalf("rendered = %s", s)
	}
}
