package core

import (
	"fmt"
	"math"
)

// PairwiseDistance computes the distance between log items i and j;
// implementations exist for plaintext and for encrypted logs.
type PairwiseDistance func(i, j int) (float64, error)

// CounterExample records one pair whose distance changed under
// encryption.
type CounterExample struct {
	I, J       int
	Plain, Enc float64
}

// PreservationReport is the outcome of an empirical Definition 1 check.
type PreservationReport struct {
	Pairs           int
	MaxAbsError     float64
	Preserved       bool
	CounterExamples []CounterExample
	// Error records a scheme-construction or execution failure that made
	// the candidate unusable — itself a form of non-preservation.
	Error string
}

// maxCounterExamples bounds the report size.
const maxCounterExamples = 5

// VerifyDPE empirically checks Definition 1 over all pairs of an n-item
// log: d(Enc(x), Enc(y)) must equal d(x, y) within tol (floating-point
// slack; 0 means 1e-12).
func VerifyDPE(n int, plain, enc PairwiseDistance, tol float64) (*PreservationReport, error) {
	if tol == 0 {
		tol = 1e-12
	}
	rep := &PreservationReport{Preserved: true}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dp, err := plain(i, j)
			if err != nil {
				return nil, fmt.Errorf("core: plain distance (%d,%d): %w", i, j, err)
			}
			de, err := enc(i, j)
			if err != nil {
				return nil, fmt.Errorf("core: encrypted distance (%d,%d): %w", i, j, err)
			}
			rep.Pairs++
			diff := math.Abs(dp - de)
			if diff > rep.MaxAbsError {
				rep.MaxAbsError = diff
			}
			if diff > tol {
				rep.Preserved = false
				if len(rep.CounterExamples) < maxCounterExamples {
					rep.CounterExamples = append(rep.CounterExamples, CounterExample{I: i, J: j, Plain: dp, Enc: de})
				}
			}
		}
	}
	return rep, nil
}

// Characteristic is the function c of Definition 2, rendered as a
// comparable set (e.g. token sets, feature sets, result tuple sets).
type Characteristic func(i int) (map[string]bool, error)

// EquivalenceReport is the outcome of a c-equivalence check.
type EquivalenceReport struct {
	Items     int
	Holds     bool
	FirstFail int // index of the first failing item, -1 if none
}

// VerifyEquivalence checks the observable consequence of Definition 2
// for a set-valued characteristic: the characteristic commutes with
// encryption, i.e. applying the item-wise encryption to c(x) yields
// c(Enc(x)). encOfPlain must map the plain characteristic of item i into
// ciphertext space (the "Enc(c(x))" side); encSide extracts the
// characteristic from the encrypted item ("c(Enc(x))").
func VerifyEquivalence(n int, encOfPlain, encSide Characteristic) (*EquivalenceReport, error) {
	rep := &EquivalenceReport{Items: n, Holds: true, FirstFail: -1}
	for i := 0; i < n; i++ {
		want, err := encOfPlain(i)
		if err != nil {
			return nil, fmt.Errorf("core: Enc(c(x)) for item %d: %w", i, err)
		}
		got, err := encSide(i)
		if err != nil {
			return nil, fmt.Errorf("core: c(Enc(x)) for item %d: %w", i, err)
		}
		if !setsEqual(want, got) {
			rep.Holds = false
			if rep.FirstFail == -1 {
				rep.FirstFail = i
			}
		}
	}
	return rep, nil
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Candidate is one encryption-class choice to be tested for an
// equivalence notion: a label (how constants are encrypted), the class
// whose security it provides, and a verifier that runs the empirical
// Definition 1 check for a workload.
type Candidate struct {
	Label  string
	Class  Class
	Verify func() (*PreservationReport, error)
}

// Selection is the outcome of appropriate-class selection.
type Selection struct {
	// Chosen is the appropriate candidate per Definition 6, nil if no
	// candidate preserves the notion.
	Chosen *Candidate
	// Reports maps candidate labels to their verification outcomes, for
	// the full Table I-style evidence.
	Reports map[string]*PreservationReport
}

// SelectAppropriate implements Definition 6 empirically: among the
// candidates, pick the most secure one whose verifier reports
// preservation. Candidates tie-break by input order within a security
// level.
func SelectAppropriate(candidates []Candidate) (*Selection, error) {
	sel := &Selection{Reports: make(map[string]*PreservationReport)}
	bestLevel := -1
	for i := range candidates {
		c := &candidates[i]
		rep, err := c.Verify()
		if err != nil {
			return nil, fmt.Errorf("core: candidate %q: %w", c.Label, err)
		}
		sel.Reports[c.Label] = rep
		if rep.Preserved && SecurityLevel(c.Class) > bestLevel {
			bestLevel = SecurityLevel(c.Class)
			sel.Chosen = c
		}
	}
	return sel, nil
}
