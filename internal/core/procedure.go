package core

import (
	"fmt"
	"sort"
	"strings"
)

// SharedInformation flags what must be shared with the service provider
// to compute a measure (the "Shared Information" columns of Table I).
type SharedInformation struct {
	Log       bool
	DBContent bool
	Domains   bool
}

func (s SharedInformation) String() string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	return fmt.Sprintf("log=%s db-content=%s domains=%s", mark(s.Log), mark(s.DBContent), mark(s.Domains))
}

// MeasureSpec describes one distance measure's row in Table I.
type MeasureSpec struct {
	Name        string
	Shared      SharedInformation
	Equivalence string // the equivalence notion (Definition 2 instance)
	C           string // the characteristic function c
}

// SQLMeasures returns the paper's four SQL query-distance measures
// (Table I rows, minus the class columns which are *derived* by
// SelectAppropriate rather than asserted).
func SQLMeasures() []MeasureSpec {
	return []MeasureSpec{
		{
			Name:        "Token-Based Query-String Distance",
			Shared:      SharedInformation{Log: true},
			Equivalence: "Token Equivalence",
			C:           "tokens",
		},
		{
			Name:        "Query-Structure Distance",
			Shared:      SharedInformation{Log: true},
			Equivalence: "Structural Equivalence",
			C:           "features",
		},
		{
			Name:        "Query-Result Distance",
			Shared:      SharedInformation{Log: true, DBContent: true},
			Equivalence: "Result Equivalence",
			C:           "result tuples",
		},
		{
			Name:        "Query-Access-Area Distance",
			Shared:      SharedInformation{Log: true, Domains: true},
			Equivalence: "Access-Area Equivalence",
			C:           "access_A",
		},
	}
}

// ThreatModel names the passive attacks a deployment shields against
// (Section IV-A instantiates these for query logs after [9]).
type ThreatModel struct {
	// Attacks lists the instantiated passive attacks.
	Attacks []string
}

// DefaultThreatModel returns the query-log threat model of Section IV-A.
func DefaultThreatModel() ThreatModel {
	return ThreatModel{Attacks: []string{
		"query-only attack (ciphertext-only): infer constants, relation and attribute names from the encrypted log",
		"known-query attack (known-plaintext): extend known (plain, encrypted) query pairs",
		"chosen-query attack (chosen-plaintext): obtain encryptions of chosen queries",
	}}
}

// SchemeAssignment is the concrete (EncRel, EncAttr, EncConst) choice —
// the paper's high-level encryption scheme instantiated with classes.
// EncConst is free-form because Table I's last column is composite
// ("via CryptDB", "via CryptDB, except HOM").
type SchemeAssignment struct {
	EncRel   Class
	EncAttr  Class
	EncConst string
}

// Procedure is one run of KIT-DPE (Section III-B): the four steps, with
// the empirical artifacts produced along the way.
type Procedure struct {
	// Step 1: security model.
	Threat ThreatModel
	// Step 1: the high-level encryption scheme, fixed for SQL logs:
	// (EncRel, EncAttr, {EncA.Const}).
	HighLevelScheme string
	// Step 2: the measure and its equivalence notion.
	Measure MeasureSpec
	// Step 3: candidate implementations and the empirical selection.
	Selection *Selection
	// Step 4: security assessment, derived from the chosen classes.
	Assessment string
}

// Run executes steps 2–4 of KIT-DPE for a measure given candidate
// scheme implementations (step 1 is fixed by DefaultThreatModel and the
// SQL high-level scheme).
func Run(measure MeasureSpec, candidates []Candidate) (*Procedure, error) {
	sel, err := SelectAppropriate(candidates)
	if err != nil {
		return nil, err
	}
	p := &Procedure{
		Threat:          DefaultThreatModel(),
		HighLevelScheme: "(EncRel, EncAttr, {EncA.Const : Attribute A})",
		Measure:         measure,
		Selection:       sel,
	}
	if sel.Chosen == nil {
		p.Assessment = "NO candidate preserves the equivalence notion — scheme design failed"
		return p, nil
	}
	p.Assessment = fmt.Sprintf(
		"constants: %s (class %s, level %d; leaks %s); names: DET (leaks %s); security reduces to the cited PPE schemes [9]",
		sel.Chosen.Label, sel.Chosen.Class, SecurityLevel(sel.Chosen.Class), Leakage(sel.Chosen.Class), Leakage(DET))
	return p, nil
}

func sortedLabels(m map[string]*PreservationReport) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TableRow renders the procedure outcome as one row of the paper's
// Table I.
func (p *Procedure) TableRow() string {
	chosen := "—"
	if p.Selection != nil && p.Selection.Chosen != nil {
		chosen = p.Selection.Chosen.Label
	}
	return fmt.Sprintf("%-36s | %-28s | %-13s | DET | DET | %s",
		p.Measure.Name, p.Measure.Equivalence, p.Measure.C, chosen)
}

// Summary renders a multi-line report of the run.
func (p *Procedure) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "KIT-DPE run for %s\n", p.Measure.Name)
	fmt.Fprintf(&sb, "  step 1  threat model: %d passive attacks; scheme %s\n", len(p.Threat.Attacks), p.HighLevelScheme)
	fmt.Fprintf(&sb, "  step 2  equivalence notion: %s (c = %s)\n", p.Measure.Equivalence, p.Measure.C)
	fmt.Fprintf(&sb, "  step 3  candidates tested: %d\n", len(p.Selection.Reports))
	for _, label := range sortedLabels(p.Selection.Reports) {
		rep := p.Selection.Reports[label]
		status := "preserves"
		switch {
		case rep.Error != "":
			status = "UNUSABLE (" + rep.Error + ")"
		case !rep.Preserved:
			status = fmt.Sprintf("VIOLATES (max err %.3f)", rep.MaxAbsError)
		}
		fmt.Fprintf(&sb, "          - %-24s %s over %d pairs\n", label, status, rep.Pairs)
	}
	fmt.Fprintf(&sb, "  step 4  %s\n", p.Assessment)
	return sb.String()
}
