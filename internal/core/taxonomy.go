// Package core implements the paper's primary contribution as a library:
//
//   - the property-preserving encryption-class taxonomy of Fig. 1, with
//     subclass edges and the partial security order;
//   - distance-preserving encryption (Definition 1) and c-equivalence
//     (Definition 2) as verifiable properties;
//   - appropriate-class selection (Definition 6): the highest-security
//     class that empirically preserves an equivalence notion;
//   - the four-step KIT-DPE procedure (Section III-B) as an executable
//     object whose output is a DPE-scheme description plus its security
//     assessment.
package core

import (
	"fmt"
	"sort"
)

// Class is a property-preserving encryption class (or usage mode) from
// Fig. 1 of the paper.
type Class string

// The classes of Fig. 1. JOIN and JOINOPE are usage modes of DET and OPE
// respectively (shared keys across join groups).
const (
	PROB    Class = "PROB"
	HOM     Class = "HOM"
	DET     Class = "DET"
	JOIN    Class = "JOIN"
	OPE     Class = "OPE"
	JOINOPE Class = "JOIN-OPE"
)

// AllClasses lists the taxonomy's classes from most to least secure
// (ties broken by subclass depth).
func AllClasses() []Class {
	return []Class{PROB, HOM, DET, JOIN, OPE, JOINOPE}
}

// SecurityLevel encodes Fig. 1's vertical axis: higher is more secure.
// Classes on the same level are incomparable ("for classes in the same
// row, a security ranking is not possible").
//
// The mapping follows the figure's rows and the Section IV-C remark that
// PROB yields strictly higher security than HOM:
//
//	level 4: PROB
//	level 3: HOM
//	level 2: DET, JOIN
//	level 1: OPE, JOIN-OPE
func SecurityLevel(c Class) int {
	switch c {
	case PROB:
		return 4
	case HOM:
		return 3
	case DET, JOIN:
		return 2
	case OPE, JOINOPE:
		return 1
	default:
		return 0
	}
}

// Subclass returns the parent class in Fig. 1's subclass arrows
// (HOM → PROB, OPE → DET, JOIN → DET, JOIN-OPE → OPE), or "" for roots.
func Subclass(c Class) Class {
	switch c {
	case HOM:
		return PROB
	case OPE:
		return DET
	case JOIN:
		return DET
	case JOINOPE:
		return OPE
	default:
		return ""
	}
}

// MoreSecure reports whether a is strictly more secure than b in the
// partial order; false when incomparable or equal.
func MoreSecure(a, b Class) bool {
	return SecurityLevel(a) > SecurityLevel(b)
}

// Leakage describes what each class reveals about the plaintexts — the
// qualitative content of Fig. 1 used in security assessments.
func Leakage(c Class) string {
	switch c {
	case PROB:
		return "nothing beyond length"
	case HOM:
		return "nothing beyond length (supports additive aggregation)"
	case DET:
		return "equality of plaintexts"
	case JOIN:
		return "equality of plaintexts, across joined columns"
	case OPE:
		return "equality and order of plaintexts"
	case JOINOPE:
		return "equality and order of plaintexts, across joined columns"
	default:
		return "unknown class"
	}
}

// SortBySecurity orders classes from most to least secure (stable within
// a level).
func SortBySecurity(cs []Class) []Class {
	out := append([]Class(nil), cs...)
	sort.SliceStable(out, func(i, j int) bool {
		return SecurityLevel(out[i]) > SecurityLevel(out[j])
	})
	return out
}

// ValidateTaxonomy checks the structural invariants of Fig. 1: subclass
// edges never increase security, and every class has a level. It exists
// so the taxonomy itself is covered by the test suite rather than
// asserted by prose.
func ValidateTaxonomy() error {
	for _, c := range AllClasses() {
		if SecurityLevel(c) == 0 {
			return fmt.Errorf("core: class %s has no security level", c)
		}
		if p := Subclass(c); p != "" {
			if SecurityLevel(c) > SecurityLevel(p) {
				return fmt.Errorf("core: subclass %s more secure than its parent %s", c, p)
			}
		}
	}
	return nil
}
