package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	dpe "repro"
	"repro/internal/service"
)

// Contention experiment constants. The worker count is fixed — not
// derived from the machine — so every tracked counter is a closed-form
// function of the config and the gate compares like with like across
// runners; goroutines beyond the core count still collide on the same
// locks, which is the point.
const (
	contentionWorkers = 8
	contentionShards  = 8
)

// runContention hammers one sharded registry from P goroutines, each
// churning whole tenant lifecycles: create session → upload log → cold
// matrix → warm matrix → append → matrix on the grown log → delete.
// Every worker's logs are distinct, the cache budget is ample, and the
// janitor is off, so the cache hit/miss totals and operation counts are
// exactly deterministic however the goroutines interleave — those are
// the tracked counters. Wall-clock throughput is recorded untracked:
// that is where the sharding win shows up on multi-core hardware.
func runContention(ctx context.Context, r *Report, f *fixtures) error {
	rounds := f.cfg.WarmCalls // gated configs compare WarmCalls, so counters stay comparable
	reg := service.NewRegistry(service.Config{
		Shards:          contentionShards,
		Parallelism:     f.cfg.Parallelism,
		MaxSessions:     4 * contentionWorkers,
		CacheEntries:    256, // ample: evictions would make miss counts racy
		JanitorInterval: -1,  // reaping mid-run would too
	})
	defer reg.Close()

	var (
		wg                      sync.WaitGroup
		ops, hits, misses, errs atomic.Int64
	)
	start := time.Now()
	for w := 0; w < contentionWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if err := contentionLifecycle(ctx, reg, w, round, rounds, &ops, &hits, &misses); err != nil {
					errs.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats := reg.Stats()
	perShard := reg.ShardStats()
	maxSessions, minSessions := 0, int(^uint(0)>>1)
	for _, s := range perShard {
		if s.Sessions > maxSessions {
			maxSessions = s.Sessions
		}
		if s.Sessions < minSessions {
			minSessions = s.Sessions
		}
	}

	pfx := "contention"
	// Deterministic counters: the gate's subject matter.
	r.add(pfx+"/ops", "count", float64(ops.Load()), true)
	r.add(pfx+"/prepared_misses", "count", float64(misses.Load()), true)
	r.add(pfx+"/errors", "count", float64(errs.Load()), true)
	r.add(pfx+"/shards", "count", float64(stats.Shards), true)
	r.add(pfx+"/sessions_live", "count", float64(stats.Sessions), true)
	// Hits are deterministic too but higher-is-better, so they stay
	// untracked — the lower-is-better gate must not flag an extra hit.
	r.add(pfx+"/prepared_hits", "count", float64(hits.Load()), false)
	// Wall clock: recorded for humans, never gated.
	r.add(pfx+"/elapsed", "ns", float64(elapsed.Nanoseconds()), false)
	r.add(pfx+"/throughput", "ops/s", float64(ops.Load())/elapsed.Seconds(), false)
	// Placement spread across shards (random session ids, so recorded
	// only): how evenly the ring scattered the surviving sessions.
	r.add(pfx+"/shard_sessions_max", "count", float64(maxSessions), false)
	r.add(pfx+"/shard_sessions_min", "count", float64(minSessions), false)
	return nil
}

// contentionLifecycle is one worker-round: a complete tenant life. Per
// round it contributes exactly 7 operations (6 on the final round, which
// keeps its session live so the end-of-run shard occupancy is visible),
// 2 prepared misses (cold prepare + append extension) and 3 hits (warm
// matrix, the append's base-state reuse, matrix on the grown log).
func contentionLifecycle(ctx context.Context, reg *service.Registry, w, round, rounds int, ops, hits, misses *atomic.Int64) error {
	token := dpe.MeasureToken
	s, err := reg.CreateSession(&service.CreateSessionRequest{Measure: &token})
	if err != nil {
		return err
	}
	ops.Add(1)
	log := []string{
		fmt.Sprintf("SELECT c%d FROM t%d WHERE x = %d", w, w, round),
		fmt.Sprintf("SELECT d%d FROM t%d WHERE y = %d", w, w, round),
		fmt.Sprintf("SELECT c%d, d%d FROM t%d", w, w, w),
	}
	logID, err := s.AddLog(log)
	if err != nil {
		return err
	}
	ops.Add(1)
	if _, err := s.Matrix(ctx, logID); err != nil { // cold: miss
		return err
	}
	ops.Add(1)
	if _, err := s.Matrix(ctx, logID); err != nil { // warm: hit
		return err
	}
	ops.Add(1)
	_, _, _, err = s.Append(ctx, logID, []string{fmt.Sprintf("SELECT e%d FROM t%d", round, w)})
	if err != nil { // extension: miss; base-state reuse inside it: hit
		return err
	}
	ops.Add(1)
	combined := append(append([]string(nil), log...), fmt.Sprintf("SELECT e%d FROM t%d", round, w))
	if _, err := s.Matrix(ctx, service.LogID(combined)); err != nil { // grown log: hit
		return err
	}
	ops.Add(1)

	st := s.Stats()
	hits.Add(st.PreparedHits)
	misses.Add(st.PreparedMisses)

	if round < rounds-1 {
		if err := reg.DeleteSession(s.ID()); err != nil {
			return err
		}
		ops.Add(1)
	}
	return nil
}
