package bench

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"time"

	dpe "repro"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/store/memdriver"
)

// recoveryShards is the recovery experiment's fixed shard count —
// fixed, like the contention experiment's, so the tracked counters are
// closed-form functions of the config alone.
const recoveryShards = 4

// runRecovery measures what the persistent artifact store buys across a
// restart, once per durable backend: the segments backend journaling to
// a temp directory and the sql backend journaling to the in-memory
// stdlib driver (whose state, like a real database server's, survives
// the client handles being closed). For each backend a multi-shard
// registry is populated with one tenant per configured measure (session
// + uploaded encrypted log + warm prepared state), and the cold
// first-request latency is recorded. The registry is then closed and
// reopened over the same backend state — the kill-and-restart — and the
// first request of every recovered tenant is timed again: it must be a
// prepared-cache hit, entry-wise identical to its pre-restart matrix.
//
// Tracked counters are exactly deterministic and gated per backend: the
// replayed record counts equal the tenant count, and the post-restart
// misses and matrix mismatches are zero — a regression here means
// recovery on that backend silently lost state or went cold.
func runRecovery(ctx context.Context, r *Report, f *fixtures) error {
	dir, err := os.MkdirTemp("", "dpebench-recovery-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	const sqlDSN = "dpebench-recovery"
	memdriver.Reset(sqlDSN)

	backends := []struct {
		name string
		open func() (store.Store, error)
	}{
		{"segments", func() (store.Store, error) { return store.OpenDir(dir) }},
		{"sql", func() (store.Store, error) { return store.OpenSQL(memdriver.Name, sqlDSN) }},
	}
	for _, b := range backends {
		if err := runRecoveryBackend(ctx, r, f, b.name, b.open); err != nil {
			return fmt.Errorf("backend %s: %w", b.name, err)
		}
	}
	return nil
}

// runRecoveryBackend runs one populate → kill → reopen → verify cycle
// over the given backend and records its counters under
// recovery/<backend>/.
func runRecoveryBackend(ctx context.Context, r *Report, f *fixtures, backend string, openStore func() (store.Store, error)) error {
	open := func() (*service.Registry, error) {
		st, err := openStore()
		if err != nil {
			return nil, err
		}
		return service.OpenRegistry(service.Config{
			Shards:          recoveryShards,
			Parallelism:     f.cfg.Parallelism,
			JanitorInterval: -1, // reaping mid-experiment would skew the counters
			Store:           st,
		})
	}

	reg, err := open()
	if err != nil {
		return err
	}
	n := f.cfg.Queries
	type tenant struct {
		m      dpe.Measure
		id     string
		logID  string
		matrix dpe.Matrix
	}
	var (
		tenants []tenant
		coldNs  float64
	)
	for _, m := range f.cfg.Measures {
		fx, err := f.measure(m)
		if err != nil {
			return err
		}
		req, err := service.BuildCreateSessionRequest(m, fx.remoteOpts...)
		if err != nil {
			return err
		}
		s, err := reg.CreateSession(req)
		if err != nil {
			return err
		}
		logID, err := s.AddLog(fx.encLog[:n])
		if err != nil {
			return err
		}
		start := time.Now()
		matrix, err := s.Matrix(ctx, logID) // the cold first request: prepare + build
		if err != nil {
			return err
		}
		coldNs += float64(time.Since(start).Nanoseconds())
		tenants = append(tenants, tenant{m: m, id: s.ID(), logID: logID, matrix: matrix})
	}
	reg.Close() // the planned "kill": journals are synced and released

	start := time.Now()
	reg2, err := open()
	if err != nil {
		return err
	}
	defer reg2.Close()
	replayNs := float64(time.Since(start).Nanoseconds())

	rec := reg2.Recovery()
	var (
		warmNs     float64
		misses     int64
		mismatches int
	)
	for _, tn := range tenants {
		s, err := reg2.Session(tn.id)
		if err != nil {
			return fmt.Errorf("tenant %s (%s) lost across restart: %w", tn.id, tn.m, err)
		}
		start := time.Now()
		matrix, err := s.Matrix(ctx, tn.logID) // warm-recovered first request
		if err != nil {
			return err
		}
		warmNs += float64(time.Since(start).Nanoseconds())
		if !reflect.DeepEqual(matrix, tn.matrix) {
			mismatches++
		}
		misses += s.Stats().PreparedMisses
	}

	pfx := "recovery/" + backend
	// Deterministic counters: the gate's subject matter. All replayed
	// record counts equal the tenant count; post-restart misses and
	// mismatches must be zero (the restart recovered warm state).
	r.add(pfx+"/replayed_sessions", "count", float64(rec.Sessions), true)
	r.add(pfx+"/replayed_logs", "count", float64(rec.Logs), true)
	r.add(pfx+"/replayed_snapshots", "count", float64(rec.Snapshots), true)
	r.add(pfx+"/replayed_tombstones", "count", float64(rec.Tombstones), true)
	r.add(pfx+"/skipped_records", "count", float64(rec.Skipped), true)
	r.add(pfx+"/post_restart_misses", "count", float64(misses), true)
	r.add(pfx+"/matrix_mismatches", "count", float64(mismatches), true)
	// Wall-clock: what the warm recovery buys over a cold start.
	r.add(pfx+"/cold_first_request", "ns", coldNs, false)
	r.add(pfx+"/warm_first_request", "ns", warmNs, false)
	r.add(pfx+"/cold_vs_warm", "ratio", coldNs/warmNs, false)
	r.add(pfx+"/replay", "ns", replayNs, false)
	return nil
}
