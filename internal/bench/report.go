package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// SchemaVersion is the report format version. Bump it when metric names
// or semantics change incompatibly; Compare refuses to gate across
// schema versions rather than produce nonsense.
const SchemaVersion = 1

// Metric is one measured number. Tracked metrics are deterministic
// machine-independent counters (pair computations, cache hits, exact
// equality checks) — the CI regression gate compares only those, because
// wall-clock numbers regress arbitrarily across runners. Untracked
// metrics (ns/op, allocs/op, ratios) are recorded for humans and for
// trend dashboards.
type Metric struct {
	Name    string  `json:"name"`
	Unit    string  `json:"unit"`
	Value   float64 `json:"value"`
	Tracked bool    `json:"tracked,omitempty"`
}

// Report is the machine-readable outcome of one harness run — what
// dpebench -json writes to BENCH_PR7.json and the CI bench job uploads
// as an artifact.
type Report struct {
	Schema    int      `json:"schema"`
	GitSHA    string   `json:"git_sha,omitempty"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Config    Config   `json:"config"`
	Metrics   []Metric `json:"metrics"`
}

// add appends one metric.
func (r *Report) add(name, unit string, value float64, tracked bool) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Unit: unit, Value: value, Tracked: tracked})
}

// Metric returns the named metric, or false.
func (r *Report) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// WriteJSON writes the report, indented, with a stable metric order.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport decodes a report written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: decoding report: %w", err)
	}
	return &r, nil
}

// Regression is one tracked metric that got worse than the baseline
// allows. All tracked metrics are lower-is-better counters.
type Regression struct {
	Name     string  `json:"name"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Limit is the largest value the baseline admitted.
	Limit float64 `json:"limit"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.6g exceeds baseline %.6g (limit %.6g)", r.Name, r.Current, r.Baseline, r.Limit)
}

// Compare gates a report against a committed baseline: every tracked
// baseline metric must still exist and must not exceed the baseline by
// more than maxRegress (0.30 = +30%). A zero baseline admits only zero.
// Untracked metrics never gate. It returns the violations, empty when
// the report passes.
//
// The tracked counters are closed-form functions of the workload shape,
// so a baseline produced at different sizes would make the gate
// vacuous (e.g. full-size pair counts dwarf the smoke suite's forever).
// Compare therefore refuses to gate across mismatched shapes instead
// of silently passing.
func Compare(current, baseline *Report, maxRegress float64) ([]Regression, error) {
	if baseline.Schema != current.Schema {
		return nil, fmt.Errorf("bench: baseline schema v%d, report schema v%d — regenerate the baseline", baseline.Schema, current.Schema)
	}
	if err := comparableConfigs(current.Config, baseline.Config); err != nil {
		return nil, err
	}
	var out []Regression
	for _, base := range baseline.Metrics {
		if !base.Tracked {
			continue
		}
		cur, ok := current.Metric(base.Name)
		if !ok {
			out = append(out, Regression{Name: base.Name + " (missing from report)", Baseline: base.Value, Current: 0, Limit: base.Value})
			continue
		}
		limit := base.Value * (1 + maxRegress)
		if cur.Value > limit {
			out = append(out, Regression{Name: base.Name, Baseline: base.Value, Current: cur.Value, Limit: limit})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// comparableConfigs errors when two runs' counter-determining sizes
// differ — pair counts derive from Queries/Append, the service hit/miss
// counters from WarmCalls, and the metric set from Measures.
func comparableConfigs(cur, base Config) error {
	if cur.Queries != base.Queries || cur.Append != base.Append || cur.WarmCalls != base.WarmCalls {
		return fmt.Errorf("bench: baseline sized n=%d k=%d warm=%d but report n=%d k=%d warm=%d — regenerate the baseline with matching sizes",
			base.Queries, base.Append, base.WarmCalls, cur.Queries, cur.Append, cur.WarmCalls)
	}
	if fmt.Sprint(cur.Measures) != fmt.Sprint(base.Measures) {
		return fmt.Errorf("bench: baseline measures %v but report measures %v — regenerate the baseline with matching measures",
			base.Measures, cur.Measures)
	}
	return nil
}

// RenderDelta formats a human-readable per-metric comparison of two
// reports: the baseline value, the current value, and the percentage
// delta, grouped by experiment. It is a reading aid, not a gate — it
// compares every shared metric (wall-clock included) and never errors
// on shape mismatches; metrics present in only one report are listed
// at the end. Positive deltas mean the current value is larger; for
// the ns/op and ratio metrics, smaller is better.
func RenderDelta(cur, base *Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "BENCH DELTA (current vs baseline, schema v%d vs v%d)\n", cur.Schema, base.Schema)
	fmt.Fprintf(&sb, "current:  go %s, %d CPU, sha %s\n", cur.GoVersion, cur.NumCPU, orNone(cur.GitSHA))
	fmt.Fprintf(&sb, "baseline: go %s, %d CPU, sha %s\n", base.GoVersion, base.NumCPU, orNone(base.GitSHA))
	prev := ""
	var only []string
	for _, m := range cur.Metrics {
		b, ok := base.Metric(m.Name)
		if !ok {
			only = append(only, "+ "+m.Name+" (only in current)")
			continue
		}
		group, _, _ := strings.Cut(m.Name, "/")
		if group != prev {
			fmt.Fprintf(&sb, "\n-- %s --\n", group)
			prev = group
		}
		mark := " "
		if m.Tracked {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s %-44s %14.4g -> %14.4g  %s %s\n",
			mark, m.Name, b.Value, m.Value, deltaPct(b.Value, m.Value), m.Unit)
	}
	for _, m := range base.Metrics {
		if _, ok := cur.Metric(m.Name); !ok {
			only = append(only, "- "+m.Name+" (only in baseline)")
		}
	}
	if len(only) > 0 {
		sb.WriteString("\n")
		for _, line := range only {
			sb.WriteString(line + "\n")
		}
	}
	sb.WriteString("\n(* = tracked; positive % = current larger than baseline)\n")
	return sb.String()
}

// deltaPct renders the baseline→current change as a signed percentage,
// dodging the division when the baseline is zero.
func deltaPct(base, cur float64) string {
	if base == cur {
		return "    ±0.0%"
	}
	if base == 0 {
		return "     new≠0"
	}
	return fmt.Sprintf("%+8.1f%%", (cur-base)/base*100)
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

// Render formats the report as a human-readable table, grouped by the
// experiment prefix of each metric name.
func Render(r *Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "BENCH REPORT (schema v%d, go %s, %d CPU", r.Schema, r.GoVersion, r.NumCPU)
	if r.GitSHA != "" {
		fmt.Fprintf(&sb, ", %s", r.GitSHA)
	}
	fmt.Fprintf(&sb, ")\nworkload: seed %q, %d+%d queries, %d rows, parallelism %d\n",
		r.Config.Seed, r.Config.Queries, r.Config.Append, r.Config.Rows, r.Config.Parallelism)
	prev := ""
	for _, m := range r.Metrics {
		group, _, _ := strings.Cut(m.Name, "/")
		if group != prev {
			fmt.Fprintf(&sb, "\n-- %s --\n", group)
			prev = group
		}
		mark := " "
		if m.Tracked {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s %-44s %14.4g %s\n", mark, m.Name, m.Value, m.Unit)
	}
	sb.WriteString("\n(* = tracked: deterministic counter gated by CI against bench_baseline.json)\n")
	return sb.String()
}
