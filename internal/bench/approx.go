package bench

import (
	"context"
	"sort"
	"time"

	dpe "repro"
)

// runApprox measures the MinHash/LSH neighbor engine against the exact
// matrix per set-based measure (access-area has no element sets and is
// skipped). The tracked counters are the subsystem's acceptance check,
// all lower-is-better so the gate's regression direction is uniform:
//
//   - recall_loss_at_k: 1 − mean recall@K of the sparse top-K search
//     against the exact matrix's top-K, over every query. The truth
//     set keeps only genuine neighbors — distance exactly 1 means the
//     element sets are disjoint, and which disjoint queries tie into
//     the exact top-K is an index-order artifact no candidate engine
//     can (or should) reproduce.
//   - candidate_pairs: distinct pairs the LSH buckets admit — the
//     budget approximate mining pays, gated against the ceiling the
//     baseline pins (exact_pairs = n·(n−1)/2 is recorded alongside for
//     the comparison).
//   - dbscan_label_mismatches: queries whose approximate DBSCAN label
//     (candidate pairs only) differs from the exact matrix's, after
//     canonical relabeling of both sides.
//
// Index build and per-query search latency are recorded untracked.
func runApprox(ctx context.Context, r *Report, f *fixtures) error {
	n := f.cfg.Queries
	k := 10
	if k > n-1 {
		k = n - 1
	}
	for _, m := range f.cfg.Measures {
		if m == dpe.MeasureAccessArea {
			continue
		}
		fx, err := f.measure(m)
		if err != nil {
			return err
		}
		p, err := dpe.NewProvider(m, append([]dpe.ProviderOption{dpe.WithParallelism(f.cfg.Parallelism)}, fx.localOpts...)...)
		if err != nil {
			return err
		}
		pl, err := p.Prepare(ctx, fx.encLog[:n])
		if err != nil {
			return err
		}
		start := time.Now()
		idx, err := p.BuildApproxIndex(pl)
		if err != nil {
			return err
		}
		buildNs := float64(time.Since(start).Nanoseconds())
		mat, err := p.DistanceMatrixPrepared(ctx, pl)
		if err != nil {
			return err
		}

		var recallSum float64
		start = time.Now()
		for q := 0; q < n; q++ {
			res, err := p.NeighborsPrepared(ctx, pl, idx, q, k)
			if err != nil {
				return err
			}
			truth := topK(mat, q, k)
			if len(truth) == 0 {
				recallSum++ // no genuine neighbors to find
				continue
			}
			hit := 0
			for _, nb := range res.Neighbors {
				if truth[nb.Index] {
					hit++
				}
			}
			recallSum += float64(hit) / float64(len(truth))
		}
		searchNs := float64(time.Since(start).Nanoseconds()) / float64(n)

		// DBSCAN agreement at a deterministic, workload-derived eps: the
		// 10th percentile of off-diagonal distances, clamped into
		// [0.05, 0.5]. The floor keeps the spec valid when tiny
		// workloads hold duplicate queries (percentile 0); the cap
		// matters because density connectivity through pairs that share
		// fewer than half their elements is below the LSH curve's
		// reliable zone — mining at such a radius is exactly the
		// full-matrix territory MineSpec.Validate fences off for the
		// global algorithms.
		eps := percentileOffDiagonal(mat, 0.10)
		if eps < 0.05 {
			eps = 0.05
		}
		if eps > 0.5 {
			eps = 0.5
		}
		spec := dpe.MineSpec{Algorithm: dpe.MineDBSCAN, Eps: eps, MinPts: 3}
		exact, err := p.MinePrepared(ctx, pl, spec)
		if err != nil {
			return err
		}
		spec.Approximate = true
		approxRes, err := p.MinePreparedIndexed(ctx, pl, idx, spec)
		if err != nil {
			return err
		}
		mismatches := labelMismatches(exact.Labels, approxRes.Labels)

		pfx := "approx/" + m.String()
		r.add(pfx+"/recall_loss_at_k", "loss", 1-recallSum/float64(n), true)
		r.add(pfx+"/candidate_pairs", "pairs", float64(approxRes.CandidatePairs), true)
		r.add(pfx+"/exact_pairs", "pairs", float64(n*(n-1)/2), true)
		r.add(pfx+"/dbscan_label_mismatches", "count", float64(mismatches), true)
		r.add(pfx+"/index_build", "ns", buildNs, false)
		r.add(pfx+"/neighbors", "ns/op", searchNs, false)
		r.add(pfx+"/pair_budget", "ratio", float64(approxRes.CandidatePairs)/float64(n*(n-1)/2), false)
	}
	return nil
}

// topK returns the exact top-k genuine-neighbor set of query q: the k
// other indexes with the smallest distance (ties broken by index, the
// same order NeighborsPrepared uses), excluding maximally-distant ones
// (distance 1 = disjoint element sets), which are not neighbors at all.
func topK(mat dpe.Matrix, q, k int) map[int]bool {
	order := make([]int, 0, len(mat)-1)
	for i := range mat {
		if i != q && mat[q][i] < 1 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		if mat[q][order[a]] != mat[q][order[b]] {
			return mat[q][order[a]] < mat[q][order[b]]
		}
		return order[a] < order[b]
	})
	if len(order) > k {
		order = order[:k]
	}
	out := make(map[int]bool, len(order))
	for _, i := range order {
		out[i] = true
	}
	return out
}

// percentileOffDiagonal returns the p-quantile of the matrix's upper
// triangle.
func percentileOffDiagonal(mat dpe.Matrix, p float64) float64 {
	var ds []float64
	for i := range mat {
		for j := i + 1; j < len(mat); j++ {
			ds = append(ds, mat[i][j])
		}
	}
	sort.Float64s(ds)
	i := int(p * float64(len(ds)-1))
	return ds[i]
}

// labelMismatches counts positions where two clusterings disagree after
// canonically renumbering each side's clusters by first appearance
// (noise labels, < 0, are kept as-is): cluster ids are BFS-discovery
// artifacts, and a pure renumbering should count as zero disagreement.
func labelMismatches(a, b []int) int {
	ca, cb := canonicalLabels(a), canonicalLabels(b)
	miss := 0
	for i := range ca {
		if ca[i] != cb[i] {
			miss++
		}
	}
	return miss
}

func canonicalLabels(labels []int) []int {
	next := 0
	remap := map[int]int{}
	out := make([]int, len(labels))
	for i, l := range labels {
		if l < 0 {
			out[i] = l
			continue
		}
		if _, ok := remap[l]; !ok {
			remap[l] = next
			next++
		}
		out[i] = remap[l]
	}
	return out
}
