// Package bench is the reproducible benchmark harness: it runs
// paper-style performance experiments against deterministic synthetic
// workloads and emits a versioned machine-readable report
// (BENCH_PR7.json) that CI gates against a committed baseline.
//
// Nine experiments; engine, append, approx, service, recovery, obs,
// and incmine run across the configured measures (all four of Table I
// by default) on encrypted artifacts:
//
//   - engine:  full distance-matrix builds, sequential vs the worker
//     pool, with an entry-computation counter pinning the upper-triangle
//     contract (n·(n−1)/2 pair computations, never more).
//   - append:  the incremental append path vs a from-scratch rebuild.
//     The counter asserts the append computes only n·k + k·(k−1)/2
//     entries; the matrices are checked entry-wise identical.
//   - approx:  the MinHash/LSH neighbor engine vs the exact matrix for
//     the set-based measures: top-K recall loss, the candidate-pair
//     budget vs n·(n−1)/2, and approximate-DBSCAN label agreement —
//     all deterministic tracked counters.
//   - service: request latency against an in-process dpeserver — session
//     create, cold matrix (upload + prepare + build), warm matrix
//     (prepared-cache hit), and the logs:append round trip — with the
//     cache hit/miss counters tracked exactly.
//   - contention: P goroutines churning whole tenant lifecycles
//     (create/upload/matrix/append/delete) against one sharded
//     registry. Operation and cache-hit/miss totals are deterministic
//     and tracked; throughput is recorded untracked — the number that
//     shows the sharding win on multi-core hardware.
//   - recovery: a persistent multi-shard registry is populated (one
//     tenant per measure with warm prepared state), closed, and
//     reopened from its journals — once per durable backend (segments
//     on a temp directory, sql on the in-memory stdlib driver). The
//     per-backend replayed-record counts, the post-restart cache
//     misses (zero), and the matrix mismatches (zero) are tracked; the
//     cold vs warm-recovered first-request latencies are recorded
//     untracked.
//   - obs: a fully instrumented server (journal, registry, HTTP
//     middleware metrics) serves a scripted workload, and the /metrics
//     scrape is reconciled against the script and GET /v1/stats: the
//     request count, prepare-stage samples, and journal appends are
//     closed-form tracked counters, and the stats-vs-metrics mismatch
//     count must be zero.
//   - hotpath: the kernel microbenchmark — every measure's interned
//     bitset kernel vs the legacy map kernel over a fixed n=256
//     plaintext matrix, plus Paillier CRT decryption and fixed-base
//     encryption vs their textbook paths. The pair counters and the
//     entry/plaintext mismatch counts (zero) are tracked exactly; the
//     fast/slow time ratios are tracked through a clamp (the bitset
//     kernel must stay ≥2x faster, the crypto fast paths must not fall
//     behind textbook) so noise below the threshold can never flake
//     the gate — the harness's only gated wall-clock-derived numbers.
//   - incmine: incremental mining maintenance — per measure and
//     algorithm (k-medoids, DBSCAN, and apriori on the set measures), a
//     MineState is bootstrapped over the base log and MineIncremental
//     runs warm over the appended log vs a cold mine of the combined
//     log. The warm work counters (distance pairs, or transaction
//     scans for apriori) must be strictly below cold, and the DBSCAN
//     label mismatches after canonical relabeling (zero), the apriori
//     itemset mismatches (zero), and the k-medoids cold-fallback
//     count (zero) are tracked exactly.
//
// Wall-clock metrics are recorded but never gated (they vary across
// machines); only deterministic counters are marked Tracked and
// compared by Compare.
package bench

import (
	"context"
	"fmt"
	"runtime"

	dpe "repro"
)

// Config sizes the harness workloads. The zero value is usable: every
// field has a default.
type Config struct {
	// Seed makes the synthetic workload deterministic; "" means
	// "bench-42".
	Seed string `json:"seed"`
	// Queries is the base log size n; 0 means 48.
	Queries int `json:"queries"`
	// Append is the appended log size k; 0 means 8.
	Append int `json:"append"`
	// Rows per generated table; 0 means 80.
	Rows int `json:"rows"`
	// PaillierBits sizes the owner's HOM keys; 0 means 512.
	PaillierBits int `json:"paillier_bits"`
	// Parallelism sizes the worker pool of the parallel runs; 0 means
	// all cores.
	Parallelism int `json:"parallelism"`
	// WarmCalls is how many warm repetitions the service experiment
	// averages; 0 means 5.
	WarmCalls int `json:"warm_calls"`
	// Iterations per timed operation; 0 means 3.
	Iterations int `json:"iterations"`
	// Measures to run; empty means all four.
	Measures []dpe.Measure `json:"measures"`
}

func (c Config) withDefaults() Config {
	if c.Seed == "" {
		c.Seed = "bench-42"
	}
	if c.Queries <= 0 {
		c.Queries = 48
	}
	if c.Append <= 0 {
		c.Append = 8
	}
	if c.Rows <= 0 {
		c.Rows = 80
	}
	if c.PaillierBits <= 0 {
		c.PaillierBits = 512
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.WarmCalls <= 0 {
		c.WarmCalls = 5
	}
	if c.Iterations <= 0 {
		c.Iterations = 3
	}
	if len(c.Measures) == 0 {
		c.Measures = []dpe.Measure{dpe.MeasureToken, dpe.MeasureStructure, dpe.MeasureResult, dpe.MeasureAccessArea}
	}
	return c
}

// ShortConfig is the CI smoke shape: small enough that the whole suite
// runs in seconds, large enough that every tracked counter is
// meaningful.
func ShortConfig() Config {
	return Config{Queries: 10, Append: 4, Rows: 24, WarmCalls: 2, Iterations: 1}
}

// Experiments lists the harness experiments in run order.
func Experiments() []string {
	return []string{"engine", "append", "approx", "service", "contention", "recovery", "obs", "hotpath", "incmine"}
}

// Run executes the named experiments ("all" or nil means every one) and
// returns the report. The context cancels mid-experiment work.
func Run(ctx context.Context, names []string, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	selected := map[string]bool{}
	if len(names) == 0 {
		selected["all"] = true
	}
	for _, n := range names {
		selected[n] = true
	}
	known := map[string]func(context.Context, *Report, *fixtures) error{
		"engine":     runEngine,
		"append":     runAppend,
		"approx":     runApprox,
		"service":    runService,
		"contention": runContention,
		"recovery":   runRecovery,
		"obs":        runObs,
		"hotpath":    runHotpath,
		"incmine":    runIncMine,
	}
	for n := range selected {
		if n != "all" {
			if _, ok := known[n]; !ok {
				return nil, fmt.Errorf("bench: unknown experiment %q (want engine|append|approx|service|contention|recovery|obs|hotpath|incmine|all)", n)
			}
		}
	}
	r := &Report{
		Schema:    SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Config:    cfg,
	}
	fx := &fixtures{cfg: cfg}
	for _, name := range Experiments() {
		if !selected["all"] && !selected[name] {
			continue
		}
		if err := known[name](ctx, r, fx); err != nil {
			return nil, fmt.Errorf("bench: experiment %s: %w", name, err)
		}
	}
	return r, nil
}
