package bench

import (
	"context"
	"fmt"
	"time"

	dpe "repro"
	"repro/internal/mining"
)

// runIncMine gates the incremental mining maintenance path: per measure
// and per algorithm it bootstraps a MineState over the base log, runs
// MineIncremental over the appended log warm, runs the same mine cold,
// and compares. The tracked counters are the tentpole's acceptance
// check: the warm run computes exactly n·k + k·(k−1)/2 distance pairs
// (or, for apriori, strictly fewer transaction scans) while the cold
// run pays the full triangle, and the results agree — DBSCAN labels
// identical after canonical relabeling, itemsets identical, matrices
// identical, and the warm k-medoids run never falling back cold (see
// incMineProbe for why k-medoids gates on its fallback guarantee
// rather than label equality). The experiment hard-fails on any
// disagreement; the counters are also tracked so CI catches a
// silently-degraded delta path.
func runIncMine(ctx context.Context, r *Report, f *fixtures) error {
	n, k := f.cfg.Queries, f.cfg.Append
	total := n + k
	for _, m := range f.cfg.Measures {
		fx, err := f.measure(m)
		if err != nil {
			return err
		}
		provider, err := dpe.NewProvider(m, append([]dpe.ProviderOption{dpe.WithParallelism(f.cfg.Parallelism)}, fx.localOpts...)...)
		if err != nil {
			return err
		}
		plBase, err := provider.Prepare(ctx, fx.encLog[:n])
		if err != nil {
			return err
		}
		plAll, err := provider.ExtendPrepared(ctx, plBase, fx.encLog[n:total])
		if err != nil {
			return err
		}
		specs := []dpe.MineSpec{
			{Algorithm: dpe.MineKMedoids, K: 3},
			{Algorithm: dpe.MineDBSCAN, Eps: 0.35, MinPts: 3},
		}
		if m != dpe.MeasureAccessArea {
			// Apriori mines the set-based measures' element sets; the
			// access-area prepared state holds intervals, not items.
			specs = append(specs, dpe.MineSpec{Algorithm: dpe.MineApriori, MinSupport: 3, MaxLen: 3})
		}
		for _, spec := range specs {
			if err := incMineProbe(ctx, r, provider, plBase, plAll, m, spec); err != nil {
				return err
			}
		}
	}
	return nil
}

// incMineProbe runs one (measure, spec) warm-vs-cold comparison.
func incMineProbe(ctx context.Context, r *Report, provider *dpe.Provider, plBase, plAll *dpe.PreparedLog, m dpe.Measure, spec dpe.MineSpec) error {
	pfx := "incmine/" + m.String() + "/" + spec.Algorithm.String()

	// Bootstrap the state over the base log, then mine the appended log
	// twice: warm from the state, cold from nothing.
	_, state, err := provider.MineIncremental(ctx, plBase, nil, spec)
	if err != nil {
		return err
	}
	start := time.Now()
	incRes, _, err := provider.MineIncremental(ctx, plAll, state, spec)
	if err != nil {
		return err
	}
	incNs := float64(time.Since(start).Nanoseconds())
	start = time.Now()
	coldRes, _, err := provider.MineIncremental(ctx, plAll, nil, spec)
	if err != nil {
		return err
	}
	coldNs := float64(time.Since(start).Nanoseconds())

	inc, cold := incRes.Incremental, coldRes.Incremental
	if !inc.Warm {
		return fmt.Errorf("%s: incremental run was not warm", pfx)
	}
	if incRes.Matrix != nil {
		if err := assertIdentical(pfx+" warm vs cold matrix", incRes.Matrix, coldRes.Matrix); err != nil {
			return err
		}
	}

	// The work counters: distance pairs for the matrix algorithms,
	// transaction scans for apriori. Warm must be strictly cheaper.
	workInc, workCold, workUnit := float64(inc.PairsComputed), float64(cold.PairsComputed), "pairs/op"
	if spec.Algorithm == dpe.MineApriori {
		workInc, workCold, workUnit = float64(inc.Examined), float64(cold.Examined), "scans/op"
	}
	if workInc >= workCold {
		return fmt.Errorf("%s: incremental work %g not below cold %g", pfx, workInc, workCold)
	}
	r.add(pfx+"/work_incremental", workUnit, workInc, true)
	r.add(pfx+"/work_cold", workUnit, workCold, true)

	// Result agreement. DBSCAN label repair and apriori support deltas
	// are exact by construction, so their mismatch counts (after
	// canonical relabeling) are tracked and must be zero. Warm
	// k-medoids converges to a valid local optimum that may differ
	// from cold PAM's on arbitrary data — the provider only guarantees
	// it never costs more than extending the prior assignment (else it
	// falls back cold), and the facade property test pins exact label
	// equality on separated workloads — so here the tracked gate is
	// that guarantee (zero cold fallbacks) and the warm-vs-cold cost
	// ratio and label drift are recorded untracked.
	mismatches := -1.0
	switch spec.Algorithm {
	case dpe.MineKMedoids:
		fallback := 0.0
		if inc.ColdFallback {
			fallback = 1
		}
		r.add(pfx+"/cold_fallbacks", "count", fallback, true)
		r.add(pfx+"/warm_vs_cold_cost", "ratio", incRes.Clusters.Cost/coldRes.Clusters.Cost, false)
		r.add(pfx+"/label_mismatches", "count", float64(labelMismatches(incRes.Clusters.Assign, coldRes.Clusters.Assign)), false)
	case dpe.MineDBSCAN:
		mismatches = float64(labelMismatches(incRes.Labels, coldRes.Labels))
	case dpe.MineApriori:
		mismatches = 0
		if !mining.EqualItemsets(incRes.Itemsets, coldRes.Itemsets) {
			mismatches = 1
		}
		r.add(pfx+"/itemsets", "count", float64(len(incRes.Itemsets)), false)
	}
	if mismatches >= 0 {
		r.add(pfx+"/mismatches", "count", mismatches, true)
		if mismatches != 0 {
			return fmt.Errorf("%s: warm result disagrees with cold (%g mismatches)", pfx, mismatches)
		}
	}

	r.add(pfx+"/mine_incremental", "ns", incNs, false)
	r.add(pfx+"/mine_cold", "ns", coldNs, false)
	r.add(pfx+"/cold_vs_incremental", "ratio", coldNs/incNs, false)
	return nil
}
