package bench

import (
	"context"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// obsShards is the obs experiment's fixed shard count — fixed, like the
// recovery experiment's, so the tracked counters are closed-form
// functions of the config alone.
const obsShards = 4

// runObs is the observability smoke experiment: a fully instrumented
// dpeserver stack (store journal metrics, registry/shard metrics, HTTP
// middleware) serves a scripted per-measure workload, and the /metrics
// exposition is scraped and reconciled against the deterministic
// ground truth — the request script itself and GET /v1/stats. Tracked
// counters:
//
//   - obs/http_requests: every request the script sent, counted by the
//     middleware's route×code counters — (5 + WarmCalls) per measure.
//   - obs/stats_mismatches: cache series on /metrics that disagree with
//     the same numbers on /v1/stats; must be zero (the two views read
//     one set of shard-cache counters).
//   - obs/stage_prepare_builds: prepare-stage histogram samples — one
//     cold build per measure, however many warm calls follow.
//   - obs/store_records_written: journal appends — per measure, the
//     session record, the base log, its prepared snapshot, the appended
//     log, and its snapshot (5).
func runObs(ctx context.Context, r *Report, f *fixtures) error {
	dir, err := os.MkdirTemp("", "dpebench-obs-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	o := obs.NewRegistry()
	st, err := store.OpenDir(dir)
	if err != nil {
		return err
	}
	st.Instrument(o)
	reg, err := service.OpenRegistry(service.Config{
		Shards:          obsShards,
		Parallelism:     f.cfg.Parallelism,
		JanitorInterval: -1, // reaping mid-experiment would skew the counters
		Store:           st,
		Obs:             o,
	})
	if err != nil {
		return err
	}
	defer reg.Close()
	srv := httptest.NewServer(service.NewHandlerWithOptions(reg, service.HandlerOptions{Obs: o}))
	defer srv.Close()
	client := service.NewClient(srv.URL)

	n, k := f.cfg.Queries, f.cfg.Append
	requests := 0
	for _, m := range f.cfg.Measures {
		fx, err := f.measure(m)
		if err != nil {
			return err
		}
		sess, err := client.NewSession(ctx, m, fx.remoteOpts...)
		if err != nil {
			return err
		}
		requests++ // POST /v1/sessions
		base, tail := fx.encLog[:n], fx.encLog[n:n+k]
		remote, err := sess.DistanceMatrix(ctx, base)
		if err != nil {
			return err
		}
		requests += 2 // upload + cold matrix
		for i := 0; i < f.cfg.WarmCalls; i++ {
			if _, err := sess.DistanceMatrix(ctx, base); err != nil {
				return err
			}
			requests++ // warm matrix (upload is client-side cached)
		}
		if _, err := sess.Append(ctx, remote, base, tail); err != nil {
			return err
		}
		requests++ // logs:append
		if _, err := sess.Stats(ctx); err != nil {
			return err
		}
		requests++ // GET /v1/sessions/{id}
	}

	stats := reg.Stats()
	scrapeStart := time.Now()
	samples, bytes, err := scrapeRegistry(o)
	if err != nil {
		return err
	}
	scrapeNs := float64(time.Since(scrapeStart).Nanoseconds())

	served := 0.0
	for key, v := range samples {
		if strings.HasPrefix(key, "dpe_http_requests_total{") {
			served += v
		}
	}
	mismatches := 0
	for key, want := range map[string]float64{
		`dpe_cache_hits_total`:                      float64(stats.PreparedCache.Hits),
		`dpe_cache_misses_total`:                    float64(stats.PreparedCache.Misses),
		`dpe_cache_entries`:                         float64(stats.PreparedCache.Entries),
		`dpe_cache_bytes`:                           float64(stats.PreparedCache.Bytes),
		`dpe_cache_evictions_total{cause="budget"}`: float64(stats.PreparedCache.Evictions),
		`dpe_sessions`:                              float64(stats.Sessions),
	} {
		if samples[key] != want {
			mismatches++
		}
	}
	if int(served) != requests {
		// A middleware miscount is itself a mismatch, not a run failure:
		// the tracked counter surfaces it against the baseline.
		mismatches++
	}

	r.add("obs/http_requests", "count", served, true)
	r.add("obs/stats_mismatches", "count", float64(mismatches), true)
	r.add("obs/stage_prepare_builds", "count", samples[`dpe_stage_duration_seconds_count{stage="prepare"}`], true)
	r.add("obs/store_records_written", "count", samples[`dpe_store_records_written_total`], true)
	r.add("obs/scrape", "ns", scrapeNs, false)
	r.add("obs/exposition_bytes", "bytes", float64(bytes), false)
	return nil
}

// scrapeRegistry renders the registry in Prometheus text format and
// parses every sample line into name{labels} → value.
func scrapeRegistry(o *obs.Registry) (map[string]float64, int64, error) {
	var sb strings.Builder
	n, err := o.WriteTo(&sb)
	if err != nil {
		return nil, 0, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, n, nil
}
