package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"time"

	dpe "repro"
	"repro/internal/db"
	"repro/internal/distance"
	"repro/internal/service"
)

// fixtures builds the per-measure experiment substrate lazily and
// caches it, so the engine, append, and service experiments of one run
// share workload generation and artifact encryption.
type fixtures struct {
	cfg Config

	w     *dpe.Workload
	owner *dpe.Owner
	byM   map[dpe.Measure]*measureFixture
}

// measureFixture is everything one measure's experiments need: the
// encrypted log over n+k queries and the encrypted Table I artifacts in
// all three shapes (raw for the engine layer, provider options for the
// facade, session options for the wire) — built from one ciphertext.
type measureFixture struct {
	m          dpe.Measure
	encLog     []string // cfg.Queries + cfg.Append encrypted queries
	arts       distance.Artifacts
	localOpts  []dpe.ProviderOption
	remoteOpts []service.SessionOption
}

func (f *fixtures) measure(m dpe.Measure) (*measureFixture, error) {
	if fx, ok := f.byM[m]; ok {
		return fx, nil
	}
	if f.w == nil {
		w, err := dpe.GenerateWorkload(dpe.WorkloadConfig{
			Seed: f.cfg.Seed, Queries: f.cfg.Queries + f.cfg.Append, Rows: f.cfg.Rows,
			IncludeAggregates: true, IncludeJoins: true,
		})
		if err != nil {
			return nil, err
		}
		owner, err := dpe.NewOwner([]byte("bench:"+f.cfg.Seed), w.Schema, dpe.Config{PaillierBits: f.cfg.PaillierBits})
		if err != nil {
			return nil, err
		}
		if err := owner.DeclareJoins(w.Queries); err != nil {
			return nil, err
		}
		f.w, f.owner = w, owner
	}
	encLog, err := f.owner.EncryptLog(f.w.Queries, m)
	if err != nil {
		return nil, err
	}
	fx := &measureFixture{m: m, encLog: encLog}
	fx.arts = distance.Artifacts{Parallelism: f.cfg.Parallelism}
	switch m {
	case dpe.MeasureResult:
		encCat, err := f.owner.EncryptCatalog(f.w.Catalog)
		if err != nil {
			return nil, err
		}
		agg := f.owner.ResultAggregator()
		fx.arts.Catalog = encCat
		fx.arts.Exec = db.Options{Aggregate: agg}
		fx.localOpts = []dpe.ProviderOption{dpe.WithCatalog(encCat, agg)}
		fx.remoteOpts = []service.SessionOption{service.WithCatalog(encCat, f.owner.ResultAggregatorKey())}
	case dpe.MeasureAccessArea:
		encDomains, err := f.owner.EncryptDomains(f.w.Domains)
		if err != nil {
			return nil, err
		}
		fx.arts.Domains = encDomains
		fx.localOpts = []dpe.ProviderOption{dpe.WithDomains(encDomains)}
		fx.remoteOpts = []service.SessionOption{service.WithDomains(encDomains)}
	}
	if f.byM == nil {
		f.byM = make(map[dpe.Measure]*measureFixture)
	}
	f.byM[m] = fx
	return fx, nil
}

// countingPrepared decorates a prepared log with an atomic
// entry-computation counter — the instrument behind every tracked
// "pairs" metric.
type countingPrepared struct {
	prep  distance.Prepared
	calls atomic.Int64
}

func (c *countingPrepared) Len() int { return c.prep.Len() }

func (c *countingPrepared) Distance(i, j int) (float64, error) {
	c.calls.Add(1)
	return c.prep.Distance(i, j)
}

func (c *countingPrepared) reset() { c.calls.Store(0) }

// timeIt runs fn iters times and reports mean wall-clock ns and heap
// allocations per run. Allocation counts include all goroutines the run
// spawns (the worker pool), which is the number that matters.
func timeIt(iters int, fn func() error) (nsPerOp, allocsPerOp float64, err error) {
	if iters <= 0 {
		iters = 1
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(iters)
	return float64(elapsed.Nanoseconds()) / n, float64(m1.Mallocs-m0.Mallocs) / n, nil
}

// assertIdentical fails the experiment when two matrices differ in any
// entry — the harness refuses to report timings for wrong answers.
func assertIdentical(what string, a, b dpe.Matrix) error {
	d, err := distance.MaxAbsDiff(a, b)
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	if d != 0 {
		return fmt.Errorf("%s: matrices differ, max |Δd| = %g", what, d)
	}
	return nil
}

// runEngine measures full matrix builds per measure, sequential vs the
// worker pool, over one shared prepared state, and pins the
// upper-triangle contract with the entry counter.
func runEngine(ctx context.Context, r *Report, f *fixtures) error {
	n := f.cfg.Queries
	for _, m := range f.cfg.Measures {
		fx, err := f.measure(m)
		if err != nil {
			return err
		}
		metric, err := distance.New(m.String(), fx.arts)
		if err != nil {
			return err
		}
		start := time.Now()
		prep, err := metric.Prepare(ctx, fx.encLog[:n])
		if err != nil {
			return err
		}
		prepareNs := float64(time.Since(start).Nanoseconds())
		counted := &countingPrepared{prep: prep}

		seq, err := distance.BuildMatrix(ctx, n, 1, counted.Distance)
		if err != nil {
			return err
		}
		pairs := float64(counted.calls.Load())

		pfx := "engine/" + m.String()
		r.add(pfx+"/pairs", "pairs/op", pairs, true)
		r.add(pfx+"/prepare", "ns", prepareNs, false)

		seqNs, seqAllocs, err := timeIt(f.cfg.Iterations, func() error {
			_, err := distance.BuildMatrix(ctx, n, 1, prep.Distance)
			return err
		})
		if err != nil {
			return err
		}
		r.add(pfx+"/build_seq", "ns/op", seqNs, false)
		r.add(pfx+"/build_seq_allocs", "allocs/op", seqAllocs, false)

		if f.cfg.Parallelism > 1 {
			par, err := distance.BuildMatrix(ctx, n, f.cfg.Parallelism, prep.Distance)
			if err != nil {
				return err
			}
			if err := assertIdentical(pfx+" parallel vs sequential", seq, par); err != nil {
				return err
			}
			parNs, parAllocs, err := timeIt(f.cfg.Iterations, func() error {
				_, err := distance.BuildMatrix(ctx, n, f.cfg.Parallelism, prep.Distance)
				return err
			})
			if err != nil {
				return err
			}
			r.add(pfx+"/build_par", "ns/op", parNs, false)
			r.add(pfx+"/build_par_allocs", "allocs/op", parAllocs, false)
			r.add(pfx+"/seq_vs_par", "ratio", seqNs/parNs, false)
		}
	}
	return nil
}

// runAppend measures the incremental append path against a from-scratch
// rebuild per measure. The tracked counters are the tentpole's
// acceptance check: the append fan-out computes exactly
// n·k + k·(k−1)/2 entries while the rebuild computes (n+k)·(n+k−1)/2,
// and the two matrices are entry-wise identical.
func runAppend(ctx context.Context, r *Report, f *fixtures) error {
	n, k := f.cfg.Queries, f.cfg.Append
	total := n + k
	for _, m := range f.cfg.Measures {
		fx, err := f.measure(m)
		if err != nil {
			return err
		}
		metric, err := distance.New(m.String(), fx.arts)
		if err != nil {
			return err
		}
		ext, ok := metric.(distance.Extender)
		if !ok {
			return fmt.Errorf("measure %s does not support incremental extension", m)
		}
		base, tail := fx.encLog[:n], fx.encLog[n:total]
		prepBase, err := metric.Prepare(ctx, base)
		if err != nil {
			return err
		}
		prepAll, err := ext.Extend(ctx, prepBase, tail)
		if err != nil {
			return err
		}
		counted := &countingPrepared{prep: prepAll}

		old, err := distance.BuildMatrix(ctx, n, f.cfg.Parallelism, prepAll.Distance)
		if err != nil {
			return err
		}
		counted.reset()
		appended, err := distance.ExtendMatrix(ctx, old, total, f.cfg.Parallelism, counted.Distance)
		if err != nil {
			return err
		}
		appendPairs := float64(counted.calls.Load())
		counted.reset()
		rebuilt, err := distance.BuildMatrix(ctx, total, f.cfg.Parallelism, counted.Distance)
		if err != nil {
			return err
		}
		rebuildPairs := float64(counted.calls.Load())
		if err := assertIdentical("append vs rebuild ("+m.String()+")", appended, rebuilt); err != nil {
			return err
		}

		pfx := "append/" + m.String()
		r.add(pfx+"/pairs_append", "pairs/op", appendPairs, true)
		r.add(pfx+"/pairs_rebuild", "pairs/op", rebuildPairs, true)
		maxDiff, err := distance.MaxAbsDiff(appended, rebuilt)
		if err != nil {
			return err
		}
		r.add(pfx+"/max_abs_diff", "distance", maxDiff, true)

		// End-to-end timings include each path's preparation share: the
		// append prepares only the k new queries, the rebuild all n+k.
		appendNs, appendAllocs, err := timeIt(f.cfg.Iterations, func() error {
			pl, err := ext.Extend(ctx, prepBase, tail)
			if err != nil {
				return err
			}
			_, err = distance.ExtendMatrix(ctx, old, total, f.cfg.Parallelism, pl.Distance)
			return err
		})
		if err != nil {
			return err
		}
		rebuildNs, rebuildAllocs, err := timeIt(f.cfg.Iterations, func() error {
			pl, err := metric.Prepare(ctx, fx.encLog[:total])
			if err != nil {
				return err
			}
			_, err = distance.BuildMatrix(ctx, total, f.cfg.Parallelism, pl.Distance)
			return err
		})
		if err != nil {
			return err
		}
		r.add(pfx+"/append", "ns/op", appendNs, false)
		r.add(pfx+"/append_allocs", "allocs/op", appendAllocs, false)
		r.add(pfx+"/rebuild", "ns/op", rebuildNs, false)
		r.add(pfx+"/rebuild_allocs", "allocs/op", rebuildAllocs, false)
		r.add(pfx+"/rebuild_vs_append", "ratio", rebuildNs/appendNs, false)
	}
	return nil
}

// runService measures the networked provider per measure against an
// in-process dpeserver: session create (artifacts over the wire), cold
// matrix, warm matrix, and the logs:append round trip. The cache
// hit/miss counters are tracked exactly — they are the observable proof
// that the warm path and the append path reuse prepared state.
func runService(ctx context.Context, r *Report, f *fixtures) error {
	n, k := f.cfg.Queries, f.cfg.Append
	for _, m := range f.cfg.Measures {
		if err := serviceProbe(ctx, r, f, m, n, k); err != nil {
			return err
		}
	}
	return nil
}

// serviceProbe is one measure's service experiment; the per-measure
// server lives exactly as long as this call.
func serviceProbe(ctx context.Context, r *Report, f *fixtures, m dpe.Measure, n, k int) error {
	fx, err := f.measure(m)
	if err != nil {
		return err
	}
	reg := service.NewRegistry(service.Config{Parallelism: f.cfg.Parallelism})
	defer reg.Close()
	srv := httptest.NewServer(service.NewHandler(reg))
	defer srv.Close()
	client := service.NewClient(srv.URL)

	start := time.Now()
	sess, err := client.NewSession(ctx, m, fx.remoteOpts...)
	if err != nil {
		return err
	}
	createNs := float64(time.Since(start).Nanoseconds())

	base, tail := fx.encLog[:n], fx.encLog[n:n+k]
	start = time.Now()
	remote, err := sess.DistanceMatrix(ctx, base)
	if err != nil {
		return err
	}
	coldNs := float64(time.Since(start).Nanoseconds())

	warmNs, _, err := timeIt(f.cfg.WarmCalls, func() error {
		_, err := sess.DistanceMatrix(ctx, base)
		return err
	})
	if err != nil {
		return err
	}

	start = time.Now()
	extended, err := sess.Append(ctx, remote, base, tail)
	if err != nil {
		return err
	}
	appendNs := float64(time.Since(start).Nanoseconds())

	stats, err := sess.Stats(ctx)
	if err != nil {
		return err
	}

	// The wire must not bend the numbers: parity with in-process.
	local, err := dpe.NewProvider(m, append([]dpe.ProviderOption{dpe.WithParallelism(f.cfg.Parallelism)}, fx.localOpts...)...)
	if err != nil {
		return err
	}
	want, err := local.DistanceMatrix(ctx, fx.encLog[:n+k])
	if err != nil {
		return err
	}
	if err := assertIdentical("service append vs in-process ("+m.String()+")", extended, want); err != nil {
		return err
	}

	pfx := "service/" + m.String()
	r.add(pfx+"/session_create", "ns", createNs, false)
	r.add(pfx+"/matrix_cold", "ns", coldNs, false)
	r.add(pfx+"/matrix_warm", "ns/op", warmNs, false)
	r.add(pfx+"/cold_vs_warm", "ratio", coldNs/warmNs, false)
	r.add(pfx+"/append_request", "ns", appendNs, false)
	// One miss for the cold prepare, one for the append's extension. The
	// miss counter is the tracked gate: a broken cache shows up as extra
	// misses. Hits are recorded but not gated — they are
	// higher-is-better, so the lower-is-better threshold would flag a
	// beneficial extra hit as a regression.
	r.add(pfx+"/prepared_misses", "count", float64(stats.PreparedMisses), true)
	r.add(pfx+"/prepared_hits", "count", float64(stats.PreparedHits), false)
	return nil
}
