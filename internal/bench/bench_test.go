package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	dpe "repro"
	"repro/internal/distance"
)

// smokeConfig is even smaller than ShortConfig: the suite's own tests
// must stay fast enough for the race job.
func smokeConfig() Config {
	cfg := ShortConfig()
	cfg.Queries, cfg.Append, cfg.Rows = 8, 3, 16
	cfg.Parallelism = 2
	return cfg
}

// TestRunAllTrackedCounters runs the full harness at smoke size and
// pins every tracked counter to its closed-form value — in particular
// the tentpole's acceptance check that the append path computes only
// n·k + k·(k−1)/2 entries while the rebuild computes the full triangle.
func TestRunAllTrackedCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every measure incl. catalog encryption")
	}
	cfg := smokeConfig()
	r, err := Run(context.Background(), []string{"all"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", r.Schema, SchemaVersion)
	}
	n, k := cfg.Queries, cfg.Append
	wantPairsAppend := float64(distance.AppendPairs(n, k))
	wantPairsRebuild := float64((n + k) * (n + k - 1) / 2)
	wantPairsEngine := float64(n * (n - 1) / 2)
	for _, m := range []dpe.Measure{dpe.MeasureToken, dpe.MeasureStructure, dpe.MeasureResult, dpe.MeasureAccessArea} {
		checks := map[string]float64{
			"engine/" + m.String() + "/pairs":            wantPairsEngine,
			"append/" + m.String() + "/pairs_append":     wantPairsAppend,
			"append/" + m.String() + "/pairs_rebuild":    wantPairsRebuild,
			"append/" + m.String() + "/max_abs_diff":     0,
			"service/" + m.String() + "/prepared_misses": 2,
		}
		for name, want := range checks {
			got, ok := r.Metric(name)
			if !ok {
				t.Errorf("metric %s missing", name)
				continue
			}
			if !got.Tracked {
				t.Errorf("metric %s is not tracked", name)
			}
			if got.Value != want {
				t.Errorf("%s = %v, want %v", name, got.Value, want)
			}
		}
		// Hits are deterministic too (every warm call plus the append's
		// base lookup) but higher-is-better, so they are recorded
		// untracked — the gate must not flag a beneficial extra hit.
		hits, ok := r.Metric("service/" + m.String() + "/prepared_hits")
		if !ok || hits.Tracked || hits.Value != float64(cfg.WarmCalls+1) {
			t.Errorf("prepared_hits = %+v (ok=%v), want untracked %d", hits, ok, cfg.WarmCalls+1)
		}
	}
	// The append must do strictly less pairwise work than the rebuild.
	if wantPairsAppend >= wantPairsRebuild {
		t.Fatalf("smoke config degenerate: append %v >= rebuild %v", wantPairsAppend, wantPairsRebuild)
	}

	// Contention counters: closed-form in (workers, rounds). Each
	// worker-round performs 7 operations (6 on the final round, whose
	// session stays live), 2 misses, and 3 hits — however the
	// goroutines interleave.
	rounds := cfg.WarmCalls
	contentionChecks := map[string]float64{
		"contention/ops":             float64(contentionWorkers * (7*rounds - 1)),
		"contention/prepared_misses": float64(2 * contentionWorkers * rounds),
		"contention/errors":          0,
		"contention/shards":          contentionShards,
		"contention/sessions_live":   contentionWorkers,
	}
	for name, want := range contentionChecks {
		got, ok := r.Metric(name)
		if !ok {
			t.Errorf("metric %s missing", name)
			continue
		}
		if !got.Tracked {
			t.Errorf("metric %s is not tracked", name)
		}
		if got.Value != want {
			t.Errorf("%s = %v, want %v", name, got.Value, want)
		}
	}
	if hits, ok := r.Metric("contention/prepared_hits"); !ok || hits.Tracked ||
		hits.Value != float64(3*contentionWorkers*rounds) {
		t.Errorf("contention/prepared_hits = %+v (ok=%v), want untracked %d", hits, ok, 3*contentionWorkers*rounds)
	}

	// Hotpath counters: the kernel comparison runs at its own fixed
	// n=256 regardless of cfg.Queries, and both kernels must agree on
	// every entry. The ratio gates are clamped timing values — assert
	// only that they exist, are tracked, and never report below the
	// clamp floor.
	wantHot := float64(256 * 255 / 2)
	for _, m := range []dpe.Measure{dpe.MeasureToken, dpe.MeasureStructure, dpe.MeasureResult, dpe.MeasureAccessArea} {
		pfx := "hotpath/" + m.String()
		for name, want := range map[string]float64{
			pfx + "/bitset_pairs":  wantHot,
			pfx + "/map_pairs":     wantHot,
			pfx + "/pair_mismatch": 0,
		} {
			got, ok := r.Metric(name)
			if !ok || !got.Tracked || got.Value != want {
				t.Errorf("%s = %+v (ok=%v), want tracked %v", name, got, ok, want)
			}
		}
		if gate, ok := r.Metric(pfx + "/kernel_ratio_gate"); !ok || !gate.Tracked || gate.Value < 0.5/1.3-1e-9 {
			t.Errorf("%s/kernel_ratio_gate = %+v (ok=%v), want tracked >= clamp floor", pfx, gate, ok)
		}
	}
	if mm, ok := r.Metric("hotpath/paillier/decrypt_mismatch"); !ok || !mm.Tracked || mm.Value != 0 {
		t.Errorf("hotpath/paillier/decrypt_mismatch = %+v (ok=%v), want tracked 0", mm, ok)
	}
	for _, name := range []string{"hotpath/paillier/decrypt_ratio_gate", "hotpath/paillier/encrypt_ratio_gate"} {
		if gate, ok := r.Metric(name); !ok || !gate.Tracked || gate.Value < 1/1.3-1e-9 {
			t.Errorf("%s = %+v (ok=%v), want tracked >= clamp floor", name, gate, ok)
		}
	}
}

// TestReportRoundTrip checks WriteJSON/ReadReport and the renderer.
func TestReportRoundTrip(t *testing.T) {
	r := &Report{Schema: SchemaVersion, GoVersion: "go1.24", NumCPU: 1, Config: Config{}.withDefaults()}
	r.add("engine/token/pairs", "pairs/op", 45, true)
	r.add("engine/token/build_seq", "ns/op", 123456, false)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Metrics) != 2 || back.Metrics[0] != r.Metrics[0] {
		t.Errorf("round trip lost metrics: %+v", back.Metrics)
	}
	text := Render(back)
	if !strings.Contains(text, "engine/token/pairs") || !strings.Contains(text, "-- engine --") {
		t.Errorf("render missing content:\n%s", text)
	}
}

// TestCompare covers the regression gate's semantics.
func TestCompare(t *testing.T) {
	base := &Report{Schema: SchemaVersion}
	base.add("a/pairs", "pairs/op", 100, true)
	base.add("a/zero", "distance", 0, true)
	base.add("a/ns", "ns/op", 1000, false)

	cur := &Report{Schema: SchemaVersion}
	cur.add("a/pairs", "pairs/op", 129, true) // within +30%
	cur.add("a/zero", "distance", 0, true)
	cur.add("a/ns", "ns/op", 99999, false) // untracked: never gates

	if regs, err := Compare(cur, base, 0.30); err != nil || len(regs) != 0 {
		t.Fatalf("within-threshold compare = %v, %v", regs, err)
	}

	worse := &Report{Schema: SchemaVersion}
	worse.add("a/pairs", "pairs/op", 131, true) // > +30%
	worse.add("a/zero", "distance", 0.001, true)
	regs, err := Compare(worse, base, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want pairs + zero", regs)
	}
	for _, reg := range regs {
		if reg.String() == "" {
			t.Error("empty regression rendering")
		}
	}

	// A tracked metric that disappears is a regression too.
	missing := &Report{Schema: SchemaVersion}
	missing.add("a/zero", "distance", 0, true)
	if regs, _ := Compare(missing, base, 0.30); len(regs) != 1 {
		t.Errorf("missing tracked metric: regressions = %v, want 1", regs)
	}

	// Schema mismatch refuses to gate.
	if _, err := Compare(&Report{Schema: SchemaVersion + 1}, base, 0.30); err == nil {
		t.Error("schema mismatch should error")
	}

	// Mismatched workload sizes refuse to gate instead of passing
	// vacuously: a full-size baseline would never catch a smoke-size
	// regression.
	resized := &Report{Schema: SchemaVersion, Config: Config{Queries: 48}}
	if _, err := Compare(resized, base, 0.30); err == nil || !strings.Contains(err.Error(), "regenerate the baseline") {
		t.Errorf("size mismatch = %v, want regenerate-the-baseline error", err)
	}

	if _, err := Run(context.Background(), []string{"nosuch"}, smokeConfig()); err == nil {
		t.Error("unknown experiment should error")
	}
}

// TestRunSingleExperiment checks experiment selection: a single cheap
// experiment runs alone, for only the requested measures.
func TestRunSingleExperiment(t *testing.T) {
	cfg := smokeConfig()
	cfg.Measures = []dpe.Measure{dpe.MeasureToken}
	r, err := Run(context.Background(), []string{"append"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Metric("append/token/pairs_append"); !ok {
		t.Error("append experiment missing its metrics")
	}
	for _, m := range r.Metrics {
		if strings.HasPrefix(m.Name, "engine/") || strings.HasPrefix(m.Name, "service/") ||
			strings.HasPrefix(m.Name, "contention/") {
			t.Errorf("unexpected metric %s from unselected experiment", m.Name)
		}
		if strings.Contains(m.Name, "/result/") || strings.Contains(m.Name, "/structure/") {
			t.Errorf("unexpected metric %s from unselected measure", m.Name)
		}
	}
}
