package bench

import (
	"context"
	"fmt"
	"math/big"

	dpe "repro"
	"repro/internal/crypto/hom"
	"repro/internal/crypto/prf"
	"repro/internal/distance"
)

// hotpathN is the fixed matrix size of the hotpath experiment. It is
// deliberately independent of Config.Queries: the kernel comparison
// needs enough pairs (n·(n−1)/2 = 32640) that per-pair costs dominate
// setup, and a fixed size keeps the tracked counters comparable across
// baseline shapes.
const hotpathN = 256

// hotpathDecrypts is how many ciphertexts the Paillier leg decrypts per
// timed pass.
const hotpathDecrypts = 16

// runHotpath is the kernel microbenchmark experiment: for every
// measure it builds the same n=256 matrix twice — once through the
// interned bitset kernel (the production path) and once through the
// legacy map kernel (distance.MapKernel) — and records ns/op,
// allocs/op, and their ratio. The tracked counters pin correctness and
// the speedup itself: both kernels must compute exactly n·(n−1)/2
// pairs, agree on every entry (pair_mismatch = 0), and the clamped
// bitset-vs-map time ratio (see gateRatio) must keep the bitset kernel
// at least 2x faster — the harness's only gated wall-clock-derived
// numbers. (A ratio of two kernels timed back-to-back on the same
// machine is stable where raw ns/op is not, and the clamp makes noise
// below the threshold invisible to the gate.) A second leg times
// Paillier CRT-split decryption and fixed-base encryption against
// their textbook reference paths, with a tracked plaintext-mismatch
// counter and ratio gates at 1x.
func runHotpath(ctx context.Context, r *Report, f *fixtures) error {
	w, err := dpe.GenerateWorkload(dpe.WorkloadConfig{
		Seed: f.cfg.Seed + "-hotpath", Queries: hotpathN, Rows: f.cfg.Rows,
		IncludeAggregates: true, IncludeJoins: true,
	})
	if err != nil {
		return err
	}
	wantPairs := float64(hotpathN * (hotpathN - 1) / 2)
	for _, m := range f.cfg.Measures {
		// Plaintext artifacts: the kernels are representation-level, so
		// ciphertext tokens would only scale the element sizes.
		arts := distance.Artifacts{Parallelism: f.cfg.Parallelism}
		switch m {
		case dpe.MeasureResult:
			arts.Catalog = w.Catalog
		case dpe.MeasureAccessArea:
			arts.Domains = w.Domains
		}
		metric, err := distance.New(m.String(), arts)
		if err != nil {
			return err
		}
		prep, err := metric.Prepare(ctx, w.Queries)
		if err != nil {
			return err
		}
		legacy, ok := distance.MapKernel(prep)
		if !ok {
			return fmt.Errorf("hotpath: MapKernel rejected %s prepared state", m)
		}

		counted := &countingPrepared{prep: prep}
		bitMat, err := distance.BuildMatrix(ctx, hotpathN, 1, counted.Distance)
		if err != nil {
			return err
		}
		bitPairs := float64(counted.calls.Load())
		countedMap := &countingPrepared{prep: legacy}
		mapMat, err := distance.BuildMatrix(ctx, hotpathN, 1, countedMap.Distance)
		if err != nil {
			return err
		}
		mapPairs := float64(countedMap.calls.Load())
		mismatch := 0.0
		for i := range bitMat {
			for j := range bitMat[i] {
				if bitMat[i][j] != mapMat[i][j] {
					mismatch++
				}
			}
		}

		bitNs, bitAllocs, err := timeIt(f.cfg.Iterations, func() error {
			_, err := distance.BuildMatrix(ctx, hotpathN, 1, prep.Distance)
			return err
		})
		if err != nil {
			return err
		}
		mapNs, mapAllocs, err := timeIt(f.cfg.Iterations, func() error {
			_, err := distance.BuildMatrix(ctx, hotpathN, 1, legacy.Distance)
			return err
		})
		if err != nil {
			return err
		}

		pfx := "hotpath/" + m.String()
		r.add(pfx+"/bitset_pairs", "pairs/op", bitPairs, true)
		r.add(pfx+"/map_pairs", "pairs/op", mapPairs, true)
		if bitPairs != wantPairs || mapPairs != wantPairs {
			return fmt.Errorf("hotpath: %s pair counters %v/%v, want %v", m, bitPairs, mapPairs, wantPairs)
		}
		r.add(pfx+"/pair_mismatch", "count", mismatch, true)
		if mismatch != 0 {
			return fmt.Errorf("hotpath: %s kernels disagree on %v entries", m, mismatch)
		}
		r.add(pfx+"/bitset_build", "ns/op", bitNs, false)
		r.add(pfx+"/map_build", "ns/op", mapNs, false)
		r.add(pfx+"/bitset_allocs", "allocs/op", bitAllocs, false)
		r.add(pfx+"/map_allocs", "allocs/op", mapAllocs, false)
		r.add(pfx+"/kernel_ratio", "bitset/map", bitNs/mapNs, false)
		r.add(pfx+"/speedup", "x", mapNs/bitNs, false)
		// The gate: the bitset kernel must stay at least 2x faster than
		// the map kernel (ratio ≤ 0.5) on every measure.
		r.add(pfx+"/kernel_ratio_gate", "bitset/map", gateRatio(bitNs/mapNs, 0.5), true)
	}
	return runHotpathPaillier(r, f.cfg)
}

// runHotpathPaillier times the CRT decryption and fixed-base
// encryption against the textbook paths on one reproducible key.
func runHotpathPaillier(r *Report, cfg Config) error {
	sk, err := hom.GenerateKey(prf.NewDRBG([]byte("bench:"+cfg.Seed), []byte("hotpath-paillier")), cfg.PaillierBits)
	if err != nil {
		return err
	}
	ref := sk.NoCRT()
	enc, err := sk.NewEncryptor(prf.NewDRBG([]byte("bench:"+cfg.Seed), []byte("hotpath-encryptor")))
	if err != nil {
		return err
	}
	cs := make([]*big.Int, hotpathDecrypts)
	for i := range cs {
		if cs[i], err = enc.EncryptInt64(nil, int64(i*i-7)); err != nil {
			return err
		}
	}

	// Correctness: CRT and textbook decryption agree on every value.
	mismatch := 0.0
	fast, err := sk.DecryptBatch(cs)
	if err != nil {
		return err
	}
	for i, c := range cs {
		slow, err := ref.Decrypt(c)
		if err != nil {
			return err
		}
		if fast[i].Cmp(slow) != 0 || fast[i].Int64() != int64(i*i-7) {
			mismatch++
		}
	}
	r.add("hotpath/paillier/decrypt_mismatch", "count", mismatch, true)
	if mismatch != 0 {
		return fmt.Errorf("hotpath: CRT and textbook decryption disagree on %v ciphertexts", mismatch)
	}

	iters := cfg.Iterations
	crtNs, _, err := timeIt(iters, func() error {
		_, err := sk.DecryptBatch(cs)
		return err
	})
	if err != nil {
		return err
	}
	refNs, _, err := timeIt(iters, func() error {
		for _, c := range cs {
			if _, err := ref.Decrypt(c); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fbNs, _, err := timeIt(iters, func() error {
		for i := 0; i < hotpathDecrypts; i++ {
			if _, err := enc.EncryptInt64(nil, int64(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	txNs, _, err := timeIt(iters, func() error {
		for i := 0; i < hotpathDecrypts; i++ {
			if _, err := sk.EncryptInt64(nil, int64(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	per := float64(hotpathDecrypts)
	r.add("hotpath/paillier/decrypt_crt", "ns/op", crtNs/per, false)
	r.add("hotpath/paillier/decrypt_textbook", "ns/op", refNs/per, false)
	r.add("hotpath/paillier/decrypt_ratio", "crt/textbook", crtNs/refNs, false)
	r.add("hotpath/paillier/encrypt_fixedbase", "ns/op", fbNs/per, false)
	r.add("hotpath/paillier/encrypt_textbook", "ns/op", txNs/per, false)
	r.add("hotpath/paillier/encrypt_ratio", "fixedbase/textbook", fbNs/txNs, false)
	// The gates: neither fast path may fall behind its textbook
	// reference (ratio ≤ 1).
	r.add("hotpath/paillier/decrypt_ratio_gate", "crt/textbook", gateRatio(crtNs/refNs, 1), true)
	r.add("hotpath/paillier/encrypt_ratio_gate", "fixedbase/textbook", gateRatio(fbNs/txNs, 1), true)
	return nil
}

// gateRatio turns a fast/slow time ratio into a CI-gateable tracked
// value: the measured ratio clamped up to limit/1.3, so that at
// Compare's default +30% allowance the regression fires exactly when
// the ratio exceeds limit. The clamp is what makes a wall-clock-derived
// number safe to gate — machine noise anywhere below the floor cannot
// move the tracked value at all, while a real regression past the
// limit still fails. The raw ratio is recorded untracked alongside.
func gateRatio(ratio, limit float64) float64 {
	return max(ratio, limit/1.3)
}
