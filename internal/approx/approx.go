// Package approx is the sublinear candidate-generation layer that
// breaks the pipeline's O(n²) wall: per-query MinHash signatures
// computed from the same precomputed sets the exact metrics use (the
// distance.SetSource seam), banded into an LSH index whose buckets
// yield candidate neighbors without ever touching the full matrix
// triangle. Callers re-rank candidates with the exact metric, so
// results stay entry-wise exact over the candidate set — only recall
// is approximate, and the bench suite gates it.
//
// Everything is deterministic: the hash family is derived from a seed,
// signatures depend only on the element hashes (not map iteration
// order — min is order-independent), and the binary codec reproduces
// an identical index across processes, which is what lets the service
// journal indexes and replay them on restart.
package approx

import (
	"fmt"
	"math"
	"sort"
)

// Defaults for Params. 64 hashes at 32 bands of 2 rows puts the LSH
// S-curve threshold near (1/32)^(1/2) ≈ 0.18 similarity — low enough
// that a query's true top-K neighbors collide with high probability
// even on workloads whose logs share a schema (where neighbor
// similarities sit in the 0.2–0.4 range), while genuinely unrelated
// pairs still miss every band. Steeper curves (4-row bands) were
// measured to drop top-10 recall below 0.85 on the benchmark workload;
// 1-row bands admit nearly the full pair triangle.
const (
	DefaultHashes = 64
	DefaultBands  = 32
	DefaultSeed   = 0x1cde2018
)

// Params fixes a MinHash/LSH configuration. Two indexes agree bucket-
// for-bucket iff their Params are equal — the seed derives the entire
// hash family, so persisting Params with the signatures is enough to
// rebuild the index deterministically anywhere.
type Params struct {
	// Hashes is the signature length. 0 means DefaultHashes.
	Hashes int
	// Bands is the LSH band count; it must divide Hashes. 0 means
	// DefaultBands.
	Bands int
	// Seed derives the hash family. 0 means DefaultSeed.
	Seed uint64
}

// withDefaults resolves zero fields.
func (p Params) withDefaults() Params {
	if p.Hashes == 0 {
		p.Hashes = DefaultHashes
	}
	if p.Bands == 0 {
		p.Bands = DefaultBands
	}
	if p.Seed == 0 {
		p.Seed = DefaultSeed
	}
	return p
}

// validate rejects unusable configurations.
func (p Params) validate() error {
	if p.Hashes <= 0 {
		return fmt.Errorf("approx: hashes %d must be positive", p.Hashes)
	}
	if p.Bands <= 0 || p.Hashes%p.Bands != 0 {
		return fmt.Errorf("approx: bands %d must be positive and divide hashes %d", p.Bands, p.Hashes)
	}
	return nil
}

// splitmix64 is the standard 64-bit mix; it turns a counter into a
// high-quality stream, which is all the hash-family derivation needs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// family is the seeded hash family: position k applies
// h_k(x) = a_k·x + b_k over uint64 wraparound, with a_k forced odd so
// the map is a bijection.
type family struct {
	a, b []uint64
}

func newFamily(p Params) family {
	f := family{a: make([]uint64, p.Hashes), b: make([]uint64, p.Hashes)}
	for k := 0; k < p.Hashes; k++ {
		f.a[k] = splitmix64(p.Seed+uint64(2*k)) | 1
		f.b[k] = splitmix64(p.Seed + uint64(2*k+1))
	}
	return f
}

// emptySig is the signature value of positions no element reached: the
// empty set signs as all-max, so two empty sets estimate similarity 1 —
// consistent with the convention Jaccard(∅, ∅) = 0 distance the exact
// metrics use. Re-ranking with the exact metric makes the convention
// moot for results.
const emptySig = math.MaxUint64

// Index is the in-memory LSH structure: one signature per query plus
// band→bucket membership. Add is incremental — the append path extends
// an index without re-signing old queries — and the whole structure is
// deterministic in (Params, element hashes, insertion order).
//
// An Index is not safe for concurrent mutation; the service treats
// cached indexes as immutable and clones before extending.
type Index struct {
	p    Params
	fam  family
	rows int // Hashes / Bands
	// sigs[i] is query i's signature, length p.Hashes.
	sigs [][]uint64
	// buckets[b] maps a band key to the queries whose band b signed
	// that key, in insertion order (ascending query index).
	buckets []map[uint64][]int32
}

// New builds an empty index. Zero Params fields take the defaults.
func New(p Params) (*Index, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	x := &Index{
		p:       p,
		fam:     newFamily(p),
		rows:    p.Hashes / p.Bands,
		buckets: make([]map[uint64][]int32, p.Bands),
	}
	for b := range x.buckets {
		x.buckets[b] = make(map[uint64][]int32)
	}
	return x, nil
}

// Params returns the index's resolved configuration.
func (x *Index) Params() Params { return x.p }

// Len is the number of indexed queries.
func (x *Index) Len() int { return len(x.sigs) }

// AddSet signs one query's element set (as stable element hashes, see
// distance.SetSource) and indexes it as query Len(). Incremental by
// construction: adding queries one at a time yields the same index as
// any other split of the same sequence.
func (x *Index) AddSet(elems []uint64) {
	sig := make([]uint64, x.p.Hashes)
	for k := range sig {
		sig[k] = emptySig
	}
	for _, e := range elems {
		for k := 0; k < x.p.Hashes; k++ {
			if h := x.fam.a[k]*e + x.fam.b[k]; h < sig[k] {
				sig[k] = h
			}
		}
	}
	x.addSignature(sig)
}

// addSignature indexes a precomputed signature (codec replay path).
func (x *Index) addSignature(sig []uint64) {
	i := int32(len(x.sigs))
	x.sigs = append(x.sigs, sig)
	for b := 0; b < x.p.Bands; b++ {
		key := bandKey(sig[b*x.rows : (b+1)*x.rows])
		x.buckets[b][key] = append(x.buckets[b][key], i)
	}
}

// bandKey collapses one band's rows into a bucket key (FNV-1a over the
// row bytes).
func bandKey(rows []uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, v := range rows {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= 0x100000001b3
		}
	}
	return h
}

// Signature returns query i's stored signature. Callers must not
// modify it.
func (x *Index) Signature(i int) []uint64 { return x.sigs[i] }

// EstimateSimilarity is the MinHash resemblance estimate between two
// signatures of equal length: the fraction of agreeing positions. It
// converges to the exact Jaccard similarity as the family grows (the
// property test pins the tolerance).
func EstimateSimilarity(a, b []uint64) float64 {
	eq := 0
	for k := range a {
		if a[k] == b[k] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// Candidates returns the queries sharing at least one band bucket with
// query i, sorted ascending, excluding i itself. This is the sublinear
// candidate set exact re-ranking runs over.
func (x *Index) Candidates(i int) []int {
	seen := make(map[int32]struct{})
	sig := x.sigs[i]
	for b := 0; b < x.p.Bands; b++ {
		key := bandKey(sig[b*x.rows : (b+1)*x.rows])
		for _, j := range x.buckets[b][key] {
			if int(j) != i {
				seen[j] = struct{}{}
			}
		}
	}
	out := make([]int, 0, len(seen))
	for j := range seen {
		out = append(out, int(j))
	}
	sort.Ints(out)
	return out
}

// CandidatePairs enumerates every unordered pair sharing a bucket,
// sorted lexicographically with i < j — the pair budget approximate
// mining pays instead of the full n·(n−1)/2 triangle.
func (x *Index) CandidatePairs() [][2]int {
	seen := make(map[uint64]struct{})
	n := uint64(len(x.sigs))
	var out [][2]int
	for b := range x.buckets {
		for _, members := range x.buckets[b] {
			for ai := 0; ai < len(members); ai++ {
				for bi := ai + 1; bi < len(members); bi++ {
					i, j := uint64(members[ai]), uint64(members[bi])
					if i > j {
						i, j = j, i
					}
					key := i*n + j
					if _, dup := seen[key]; dup {
						continue
					}
					seen[key] = struct{}{}
					out = append(out, [2]int{int(i), int(j)})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// Clone returns an independently mutable copy. Signatures are shared
// (they are immutable once added); bucket maps and member slices are
// deep-copied, so Add on the clone never touches the original — this
// is what lets the service extend a cached index without invalidating
// concurrent readers.
func (x *Index) Clone() *Index {
	c := &Index{
		p:       x.p,
		fam:     x.fam,
		rows:    x.rows,
		sigs:    append([][]uint64(nil), x.sigs...),
		buckets: make([]map[uint64][]int32, len(x.buckets)),
	}
	for b, m := range x.buckets {
		cm := make(map[uint64][]int32, len(m))
		for k, members := range m {
			cm[k] = append([]int32(nil), members...)
		}
		c.buckets[b] = cm
	}
	return c
}

// SizeBytes estimates retained memory for cache byte accounting:
// signatures dominate (8 bytes × Hashes per query), buckets add one
// member int32 plus map overhead per (query, band).
func (x *Index) SizeBytes() int64 {
	n := int64(len(x.sigs))
	sigBytes := n * int64(x.p.Hashes) * 8
	bucketBytes := n * int64(x.p.Bands) * 24
	return 256 + sigBytes + bucketBytes
}
