package approx

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randSetPair builds two element-hash sets with a controlled overlap so
// the exact Jaccard similarity is known by construction.
func randSetPair(rng *rand.Rand, shared, onlyA, onlyB int) (a, b []uint64, jaccard float64) {
	draw := func() uint64 { return rng.Uint64() | 1 }
	for i := 0; i < shared; i++ {
		v := draw()
		a, b = append(a, v), append(b, v)
	}
	for i := 0; i < onlyA; i++ {
		a = append(a, draw())
	}
	for i := 0; i < onlyB; i++ {
		b = append(b, draw())
	}
	union := shared + onlyA + onlyB
	if union == 0 {
		return a, b, 1
	}
	return a, b, float64(shared) / float64(union)
}

// TestMinHashConvergesToJaccard is the property test of satellite 3:
// across random workloads and every seeded family size, the signature
// similarity estimate stays within the MinHash variance envelope of
// the exact Jaccard similarity, and the error shrinks as the family
// grows. Deterministic seeds keep the assertion stable.
func TestMinHashConvergesToJaccard(t *testing.T) {
	for _, hashes := range []int{64, 128, 256, 512} {
		p := Params{Hashes: hashes, Bands: hashes / 4, Seed: 7}
		rng := rand.New(rand.NewSource(int64(hashes)))
		var sumAbs, worst float64
		const pairs = 200
		for i := 0; i < pairs; i++ {
			shared := rng.Intn(30)
			ea, eb, exact := randSetPair(rng, shared, rng.Intn(30), rng.Intn(30))
			x, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			x.AddSet(ea)
			x.AddSet(eb)
			est := EstimateSimilarity(x.Signature(0), x.Signature(1))
			diff := math.Abs(est - exact)
			sumAbs += diff
			if diff > worst {
				worst = diff
			}
		}
		// Per-pair: 6 standard deviations of the H-hash estimator
		// (σ ≤ 0.5/√H). Mean absolute error: well under one σ.
		sigma := 0.5 / math.Sqrt(float64(hashes))
		if worst > 6*sigma {
			t.Errorf("H=%d: worst |est-exact| = %.4f > %.4f", hashes, worst, 6*sigma)
		}
		if mean := sumAbs / pairs; mean > sigma {
			t.Errorf("H=%d: mean |est-exact| = %.4f > %.4f", hashes, mean, sigma)
		}
	}
}

// buildWorkload makes n random element-hash sets with enough shared
// structure that buckets actually collide.
func buildWorkload(rng *rand.Rand, n int) [][]uint64 {
	vocab := make([]uint64, 40)
	for i := range vocab {
		vocab[i] = rng.Uint64()
	}
	sets := make([][]uint64, n)
	for i := range sets {
		m := 3 + rng.Intn(12)
		seen := map[uint64]bool{}
		for len(seen) < m {
			seen[vocab[rng.Intn(len(vocab))]] = true
		}
		for v := range seen {
			sets[i] = append(sets[i], v)
		}
	}
	return sets
}

// TestAddEquivalentToRebuild pins the incremental contract (mirroring
// the Append ≡ DistanceMatrix pinning style): building an index all at
// once, and cloning a prefix index then adding the suffix, produce
// identical signatures, candidates, and candidate pairs — for every
// split point.
func TestAddEquivalentToRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 24
	sets := buildWorkload(rng, n)
	full, err := New(Params{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sets {
		full.AddSet(s)
	}
	for split := 0; split <= n; split += 6 {
		base, err := New(Params{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sets[:split] {
			base.AddSet(s)
		}
		ext := base.Clone()
		for _, s := range sets[split:] {
			ext.AddSet(s)
		}
		if base.Len() != split {
			t.Fatalf("clone mutated base: len %d", base.Len())
		}
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(full.Signature(i), ext.Signature(i)) {
				t.Fatalf("split %d: signature %d differs", split, i)
			}
			if !reflect.DeepEqual(full.Candidates(i), ext.Candidates(i)) {
				t.Fatalf("split %d: candidates of %d differ", split, i)
			}
		}
		if !reflect.DeepEqual(full.CandidatePairs(), ext.CandidatePairs()) {
			t.Fatalf("split %d: candidate pairs differ", split)
		}
	}
}

// TestCodecRoundTrip pins that marshal → unmarshal reproduces the index
// bucket-for-bucket, and that re-marshaling is byte-identical (the
// compaction path rewrites journaled indexes verbatim).
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, err := New(Params{Hashes: 64, Bands: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range buildWorkload(rng, 10) {
		x.AddSet(s)
	}
	x.AddSet(nil) // empty set must survive the codec too
	blob, err := x.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	y, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if y.Params() != x.Params() || y.Len() != x.Len() {
		t.Fatalf("round trip changed shape: %+v/%d vs %+v/%d", y.Params(), y.Len(), x.Params(), x.Len())
	}
	for i := 0; i < x.Len(); i++ {
		if !reflect.DeepEqual(x.Signature(i), y.Signature(i)) {
			t.Fatalf("signature %d differs after round trip", i)
		}
		if !reflect.DeepEqual(x.Candidates(i), y.Candidates(i)) {
			t.Fatalf("candidates of %d differ after round trip", i)
		}
	}
	blob2, err := y.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-marshal is not byte-identical")
	}
}

// TestCodecRejectsGarbage pins the error paths: bad magic, truncation,
// and payload/dimension mismatches all fail loudly instead of building
// a corrupt index.
func TestCodecRejectsGarbage(t *testing.T) {
	x, _ := New(Params{Hashes: 16, Bands: 4, Seed: 5})
	x.AddSet([]uint64{1, 2, 3})
	blob, _ := x.MarshalBinary()
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": []byte("NOPE"),
		"truncated": blob[:len(blob)-5],
		"padded":    append(append([]byte(nil), blob...), 0xff),
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: Unmarshal accepted corrupt input", name)
		}
	}
}

// TestEmptySets pins the empty-set convention: two empty sets sign
// identically (estimated similarity 1, matching the exact metrics'
// Jaccard(∅, ∅) = 0 distance) and become mutual candidates.
func TestEmptySets(t *testing.T) {
	x, err := New(Params{})
	if err != nil {
		t.Fatal(err)
	}
	x.AddSet(nil)
	x.AddSet([]uint64{1, 2, 3})
	x.AddSet(nil)
	if got := EstimateSimilarity(x.Signature(0), x.Signature(2)); got != 1 {
		t.Fatalf("empty-vs-empty similarity = %v, want 1", got)
	}
	found := false
	for _, c := range x.Candidates(0) {
		if c == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("empty sets are not mutual candidates")
	}
}

// TestSeedChangesFamily pins that the seed really derives the family:
// same seed → identical signatures, different seed → different ones.
func TestSeedChangesFamily(t *testing.T) {
	elems := []uint64{10, 20, 30, 40}
	a, _ := New(Params{Seed: 1})
	b, _ := New(Params{Seed: 1})
	c, _ := New(Params{Seed: 2})
	for _, x := range []*Index{a, b, c} {
		x.AddSet(elems)
	}
	if !reflect.DeepEqual(a.Signature(0), b.Signature(0)) {
		t.Fatal("same seed produced different signatures")
	}
	if reflect.DeepEqual(a.Signature(0), c.Signature(0)) {
		t.Fatal("different seeds produced identical signatures")
	}
}

// TestParamsValidation pins the configuration error paths.
func TestParamsValidation(t *testing.T) {
	if _, err := New(Params{Hashes: 100, Bands: 48}); err == nil {
		t.Fatal("bands not dividing hashes must be rejected")
	}
	if _, err := New(Params{Hashes: -4}); err == nil {
		t.Fatal("negative hashes must be rejected")
	}
	x, err := New(Params{})
	if err != nil {
		t.Fatal(err)
	}
	p := x.Params()
	if p.Hashes != DefaultHashes || p.Bands != DefaultBands || p.Seed != DefaultSeed {
		t.Fatalf("defaults not applied: %+v", p)
	}
}
