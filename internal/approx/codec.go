package approx

import (
	"encoding/binary"
	"fmt"
)

// codecMagic heads every serialized index, versioning the layout the
// way the prepared-state snapshots do ("DPS1"): magic, params, count,
// then raw signatures. Buckets are not persisted — they are a pure
// function of the signatures and are rebuilt on decode, which keeps
// the journal small and makes round-trip determinism trivial.
const codecMagic = "DPA1"

// MarshalBinary serializes the index for the journal.
func (x *Index) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+3*binary.MaxVarintLen64+8+len(x.sigs)*x.p.Hashes*8)
	buf = append(buf, codecMagic...)
	buf = binary.AppendUvarint(buf, uint64(x.p.Hashes))
	buf = binary.AppendUvarint(buf, uint64(x.p.Bands))
	buf = binary.LittleEndian.AppendUint64(buf, x.p.Seed)
	buf = binary.AppendUvarint(buf, uint64(len(x.sigs)))
	for _, sig := range x.sigs {
		for _, v := range sig {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	return buf, nil
}

// Unmarshal reconstructs an index serialized by MarshalBinary. The
// result is bucket-for-bucket identical to the original: signatures
// are restored verbatim and re-banded in order.
func Unmarshal(data []byte) (*Index, error) {
	if len(data) < len(codecMagic) || string(data[:len(codecMagic)]) != codecMagic {
		return nil, fmt.Errorf("approx: not an index snapshot (bad magic)")
	}
	data = data[len(codecMagic):]
	hashes, n1 := binary.Uvarint(data)
	if n1 <= 0 {
		return nil, fmt.Errorf("approx: truncated hashes field")
	}
	data = data[n1:]
	bands, n2 := binary.Uvarint(data)
	if n2 <= 0 {
		return nil, fmt.Errorf("approx: truncated bands field")
	}
	data = data[n2:]
	if len(data) < 8 {
		return nil, fmt.Errorf("approx: truncated seed field")
	}
	seed := binary.LittleEndian.Uint64(data)
	data = data[8:]
	count, n3 := binary.Uvarint(data)
	if n3 <= 0 {
		return nil, fmt.Errorf("approx: truncated count field")
	}
	data = data[n3:]
	if hashes > 1<<20 || count > 1<<32 {
		return nil, fmt.Errorf("approx: implausible snapshot dimensions")
	}
	x, err := New(Params{Hashes: int(hashes), Bands: int(bands), Seed: seed})
	if err != nil {
		return nil, err
	}
	want := int(count) * int(hashes) * 8
	if len(data) != want {
		return nil, fmt.Errorf("approx: signature payload %d bytes, want %d", len(data), want)
	}
	for i := 0; i < int(count); i++ {
		sig := make([]uint64, hashes)
		for k := range sig {
			sig[k] = binary.LittleEndian.Uint64(data)
			data = data[8:]
		}
		x.addSignature(sig)
	}
	return x, nil
}
