package sqlfeature

import (
	"reflect"
	"testing"

	"repro/internal/sqlparse"
)

func TestTokensBasic(t *testing.T) {
	set, err := Tokens("SELECT A1 FROM R WHERE A2 > 5")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SELECT", "A1", "FROM", "R", "WHERE", "A2", ">", "5"} {
		if !set[want] {
			t.Errorf("token %q missing from %v", want, set)
		}
	}
	if len(set) != 8 {
		t.Fatalf("token count = %d, want 8", len(set))
	}
}

func TestTokensIsASet(t *testing.T) {
	set, err := Tokens("SELECT a, a, a FROM r WHERE a = a")
	if err != nil {
		t.Fatal(err)
	}
	if !set["a"] {
		t.Fatal("a missing")
	}
	// a appears once despite five occurrences.
	count := 0
	for tok := range set {
		if tok == "a" {
			count++
		}
	}
	if count != 1 {
		t.Fatal("token set must deduplicate")
	}
}

func TestTokensCanonicalStrings(t *testing.T) {
	s1, err := Tokens("SELECT a FROM r WHERE s = 'x''y'")
	if err != nil {
		t.Fatal(err)
	}
	if !s1["'x''y'"] {
		t.Fatalf("canonical string token missing: %v", s1)
	}
}

func TestTokensInvalidQuery(t *testing.T) {
	if _, err := Tokens("SELECT @ FROM r"); err == nil {
		t.Fatal("invalid query must error")
	}
}

func TestTokenListSorted(t *testing.T) {
	l, err := TokenList("SELECT b, a FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if !sortedStrings(l) {
		t.Fatalf("not sorted: %v", l)
	}
}

func sortedStrings(ss []string) bool {
	for i := 1; i < len(ss); i++ {
		if ss[i-1] > ss[i] {
			return false
		}
	}
	return true
}

func TestFeaturesPaperExample5(t *testing.T) {
	// The paper's Example 5: features(SELECT A1 FROM R WHERE A2 > 5) =
	// {(SELECT, A1), (FROM, R), (WHERE, A2 >)}.
	stmt := sqlparse.MustParse("SELECT A1 FROM R WHERE A2 > 5")
	got := Features(stmt)
	want := map[Feature]bool{
		{ClauseSelect, "A1"}:  true,
		{ClauseFrom, "R"}:     true,
		{ClauseWhere, "A2 >"}: true,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("features = %v, want %v", got, want)
	}
}

func TestFeaturesExcludeConstants(t *testing.T) {
	// Two queries differing only in constants must have equal features —
	// the property that lets constants be PROB-encrypted for structural
	// equivalence (Table I).
	f1 := Features(sqlparse.MustParse("SELECT a FROM r WHERE b > 5 AND c = 'x'"))
	f2 := Features(sqlparse.MustParse("SELECT a FROM r WHERE b > 999 AND c = 'zzz'"))
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("features must not depend on constants:\n%v\n%v", f1, f2)
	}
}

func TestFeaturesOperatorSensitive(t *testing.T) {
	f1 := Features(sqlparse.MustParse("SELECT a FROM r WHERE b > 5"))
	f2 := Features(sqlparse.MustParse("SELECT a FROM r WHERE b < 5"))
	if reflect.DeepEqual(f1, f2) {
		t.Fatal("features must distinguish operators")
	}
}

func TestFeaturesFlippedComparison(t *testing.T) {
	// 5 < b is the same structural feature as b > 5.
	f1 := Features(sqlparse.MustParse("SELECT a FROM r WHERE 5 < b"))
	f2 := Features(sqlparse.MustParse("SELECT a FROM r WHERE b > 5"))
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("flipped comparisons must agree:\n%v\n%v", f1, f2)
	}
}

func TestFeaturesAllClauses(t *testing.T) {
	stmt := sqlparse.MustParse(
		"SELECT a, COUNT(*) FROM r JOIN s ON r.id = s.rid WHERE b IN (1,2) AND c BETWEEN 3 AND 4 AND d LIKE 'x%' AND e IS NULL GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC")
	got := Features(stmt)
	for _, f := range []Feature{
		{ClauseSelect, "a"},
		{ClauseSelect, "COUNT(*)"},
		{ClauseFrom, "r"},
		{ClauseFrom, "s"},
		{ClauseWhere, "r.id ="},
		{ClauseWhere, "s.rid ="},
		{ClauseWhere, "b IN"},
		{ClauseWhere, "c BETWEEN"},
		{ClauseWhere, "d LIKE"},
		{ClauseWhere, "e IS NULL"},
		{ClauseGroupBy, "a"},
		{ClauseHaving, "COUNT(*) >"},
		{ClauseOrderBy, "a"},
	} {
		if !got[f] {
			t.Errorf("missing feature %v in %v", f, got)
		}
	}
}

func TestFeaturesStar(t *testing.T) {
	got := Features(sqlparse.MustParse("SELECT * FROM r"))
	if !got[Feature{ClauseSelect, "*"}] {
		t.Fatalf("star feature missing: %v", got)
	}
}

func TestFeaturesColumnColumnComparison(t *testing.T) {
	got := Features(sqlparse.MustParse("SELECT a FROM r WHERE x < y"))
	if !got[Feature{ClauseWhere, "x <"}] || !got[Feature{ClauseWhere, "y >"}] {
		t.Fatalf("column-column features wrong: %v", got)
	}
}

func TestFeatureString(t *testing.T) {
	f := Feature{ClauseWhere, "A2 >"}
	if f.String() != "(WHERE, A2 >)" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestFeatureListSortedAndRendered(t *testing.T) {
	l := FeatureList(sqlparse.MustParse("SELECT b, a FROM r"))
	if len(l) != 3 || !sortedStrings(l) {
		t.Fatalf("list = %v", l)
	}
}
