// Package sqlfeature extracts the per-query characteristics that the
// paper's equivalence notions preserve (Definition 2):
//
//   - Tokens: the token set of the query string, the characteristic
//     c = tokens of token equivalence (Definition 3);
//   - Features: the SnipSuggest-style feature set [15], the
//     characteristic c = features of structural equivalence — tuples like
//     (SELECT, A1), (FROM, R), (WHERE, A2 >) that describe the query's
//     structure *without* its constants.
//
// That features exclude constants is load-bearing: it is why Table I can
// assign the PROB class to constants under query-structure distance.
package sqlfeature

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqlparse"
)

// Tokens returns the query string's token multiset collapsed to a set of
// normalized token spellings: keywords upper-case, identifiers verbatim,
// literals in canonical form, operators as symbols.
func Tokens(query string) (map[string]bool, error) {
	toks, err := sqlparse.Tokenize(query)
	if err != nil {
		return nil, err
	}
	toks = foldNegativeNumbers(toks)
	set := make(map[string]bool, len(toks))
	for _, t := range toks {
		switch t.Kind {
		case sqlparse.TokString:
			// Canonical literal spelling, so tokenizing a printed query
			// matches tokenizing its original.
			set["'"+strings.ReplaceAll(t.Text, "'", "''")+"'"] = true
		case sqlparse.TokBlob:
			set[fmt.Sprintf("X'%x'", t.Text)] = true
		default:
			set[t.Text] = true
		}
	}
	return set, nil
}

// foldNegativeNumbers merges a unary minus with the following numeric
// literal into one token ("-45"), matching the parser's constant folding.
// Without this, a plaintext log tokenizes "-45" as two tokens while the
// encrypted log carries one ciphertext blob for the whole constant,
// breaking token-distance preservation. A minus is unary when it is the
// first token or follows an operator other than ")" or a keyword.
func foldNegativeNumbers(toks []sqlparse.Token) []sqlparse.Token {
	var out []sqlparse.Token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == sqlparse.TokOp && t.Text == "-" && i+1 < len(toks) &&
			(toks[i+1].Kind == sqlparse.TokInt || toks[i+1].Kind == sqlparse.TokFloat) {
			unary := len(out) == 0
			if !unary {
				prev := out[len(out)-1]
				switch prev.Kind {
				case sqlparse.TokOp:
					unary = prev.Text != ")"
				case sqlparse.TokKeyword:
					unary = true
				}
			}
			if unary {
				next := toks[i+1]
				out = append(out, sqlparse.Token{Kind: next.Kind, Text: "-" + next.Text, Pos: t.Pos})
				i++
				continue
			}
		}
		out = append(out, t)
	}
	return out
}

// TokenList returns the sorted token set, for display and debugging.
func TokenList(query string) ([]string, error) {
	set, err := Tokens(query)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out, nil
}

// Clause names the query clause a feature belongs to.
type Clause string

// Feature clauses.
const (
	ClauseSelect  Clause = "SELECT"
	ClauseFrom    Clause = "FROM"
	ClauseWhere   Clause = "WHERE"
	ClauseGroupBy Clause = "GROUPBY"
	ClauseHaving  Clause = "HAVING"
	ClauseOrderBy Clause = "ORDERBY"
)

// Feature is one structural feature of a query: a (clause, item) tuple in
// the style of SnipSuggest [15]. Example 5 of the paper:
// features(SELECT A1 FROM R WHERE A2 > 5) =
// {(SELECT, A1), (FROM, R), (WHERE, A2 >)}.
type Feature struct {
	Clause Clause
	Item   string
}

// String renders the feature as "(CLAUSE, item)".
func (f Feature) String() string { return fmt.Sprintf("(%s, %s)", f.Clause, f.Item) }

// Features extracts the feature set of a parsed query.
func Features(stmt *sqlparse.SelectStmt) map[Feature]bool {
	set := make(map[Feature]bool)

	for _, item := range stmt.Select {
		if item.Star {
			set[Feature{ClauseSelect, "*"}] = true
			continue
		}
		set[Feature{ClauseSelect, exprItem(item.Expr)}] = true
	}
	for _, tr := range stmt.Tables() {
		set[Feature{ClauseFrom, tr.Name}] = true
	}
	for _, j := range stmt.Joins {
		// Join conditions are structural predicates; SnipSuggest files
		// them with the WHERE features.
		predicateFeatures(j.On, ClauseWhere, set)
	}
	if stmt.Where != nil {
		predicateFeatures(stmt.Where, ClauseWhere, set)
	}
	for _, g := range stmt.GroupBy {
		set[Feature{ClauseGroupBy, colItem(g)}] = true
	}
	if stmt.Having != nil {
		predicateFeatures(stmt.Having, ClauseHaving, set)
	}
	for _, o := range stmt.OrderBy {
		set[Feature{ClauseOrderBy, colItem(o.Column)}] = true
	}
	return set
}

// FeatureList returns the sorted rendered feature set.
func FeatureList(stmt *sqlparse.SelectStmt) []string {
	set := Features(stmt)
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f.String())
	}
	sort.Strings(out)
	return out
}

// predicateFeatures walks a boolean expression and emits one feature per
// atomic predicate, keyed by the column and the operator shape — never by
// the constant.
func predicateFeatures(e sqlparse.Expr, clause Clause, set map[Feature]bool) {
	switch n := e.(type) {
	case nil:
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND", "OR":
			predicateFeatures(n.Left, clause, set)
			predicateFeatures(n.Right, clause, set)
		case "=", "<>", "<", "<=", ">", ">=":
			// Emit a feature for each column operand. A column-constant
			// comparison yields one feature; a column-column comparison
			// (join predicate) yields one per side.
			lc, lok := columnOperand(n.Left)
			rc, rok := columnOperand(n.Right)
			if lok {
				set[Feature{clause, lc + " " + n.Op}] = true
			}
			if rok {
				set[Feature{clause, rc + " " + flipOp(n.Op)}] = true
			}
			if !lok && !rok {
				set[Feature{clause, "expr " + n.Op}] = true
			}
		default:
			predicateFeatures(n.Left, clause, set)
			predicateFeatures(n.Right, clause, set)
		}
	case *sqlparse.UnaryExpr:
		predicateFeatures(n.Expr, clause, set)
	case *sqlparse.InExpr:
		if c, ok := columnOperand(n.Expr); ok {
			set[Feature{clause, c + " IN"}] = true
		}
	case *sqlparse.BetweenExpr:
		if c, ok := columnOperand(n.Expr); ok {
			set[Feature{clause, c + " BETWEEN"}] = true
		}
	case *sqlparse.LikeExpr:
		if c, ok := columnOperand(n.Expr); ok {
			set[Feature{clause, c + " LIKE"}] = true
		}
	case *sqlparse.IsNullExpr:
		if c, ok := columnOperand(n.Expr); ok {
			set[Feature{clause, c + " IS NULL"}] = true
		}
	case *sqlparse.FuncCall:
		set[Feature{clause, exprItem(n)}] = true
	}
}

// columnOperand extracts the column name from an operand that is a bare
// column or an aggregate over a column.
func columnOperand(e sqlparse.Expr) (string, bool) {
	switch n := e.(type) {
	case *sqlparse.ColumnRef:
		return colItem(n), true
	case *sqlparse.FuncCall:
		return exprItem(n), true
	default:
		return "", false
	}
}

// flipOp mirrors a comparison operator for the right-hand operand:
// c < A is the feature (A >).
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op // = and <> are symmetric
	}
}

func colItem(c *sqlparse.ColumnRef) string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

func exprItem(e sqlparse.Expr) string {
	switch n := e.(type) {
	case *sqlparse.ColumnRef:
		return colItem(n)
	case *sqlparse.FuncCall:
		if n.Star {
			return n.Name + "(*)"
		}
		return n.Name + "(" + exprItem(n.Arg) + ")"
	case *sqlparse.BinaryExpr:
		return exprItem(n.Left) + " " + n.Op + " " + exprItem(n.Right)
	case *sqlparse.Literal:
		// Constants are deliberately erased from structural features.
		return "?"
	default:
		return "expr"
	}
}
