package distance

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/accessarea"
	"repro/internal/sqlfeature"
	"repro/internal/value"
)

// Snapshotter is optionally implemented by metrics whose prepared state
// can be serialized and restored — the codec behind the service's
// persistent prepared-state snapshots. The contract is exactness:
// UnmarshalPrepared(MarshalPrepared(p)) must return a state whose
// Distance is entry-wise identical to p's, so a recovered cache serves
// the same matrices the pre-restart one did. All four built-in metrics
// implement it.
type Snapshotter interface {
	// MarshalPrepared serializes a prepared state produced by this
	// metric's Prepare or Extend. The encoding is deterministic: equal
	// states marshal to equal bytes.
	MarshalPrepared(p Prepared) ([]byte, error)
	// UnmarshalPrepared is the inverse of MarshalPrepared.
	UnmarshalPrepared(data []byte) (Prepared, error)
}

// Snapshot framing: a 4-byte magic ("DPS" + version) and a payload tag,
// then the tag-specific body. All integers are varints; floats are
// 8-byte little-endian IEEE 754 bit patterns (exact round trip).
var snapshotMagic = [4]byte{'D', 'P', 'S', '1'}

const (
	snapStringSets  byte = 1 // setPrepared[string]: token and result metrics
	snapFeatureSets byte = 2 // setPrepared[sqlfeature.Feature]: structure metric
	snapAccessArea  byte = 3 // aaPrepared: access-area metric
)

// snapWriter builds a snapshot buffer.
type snapWriter struct{ buf []byte }

func newSnapWriter(tag byte) *snapWriter {
	w := &snapWriter{buf: make([]byte, 0, 256)}
	w.buf = append(w.buf, snapshotMagic[:]...)
	w.buf = append(w.buf, tag)
	return w
}

func (w *snapWriter) uvarint(n uint64) { w.buf = binary.AppendUvarint(w.buf, n) }
func (w *snapWriter) varint(n int64)   { w.buf = binary.AppendVarint(w.buf, n) }
func (w *snapWriter) byteVal(b byte)   { w.buf = append(w.buf, b) }
func (w *snapWriter) float(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}
func (w *snapWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *snapWriter) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// snapReader consumes a snapshot buffer, validating the frame.
type snapReader struct {
	buf []byte
	off int
}

func newSnapReader(data []byte, wantTag byte) (*snapReader, error) {
	if len(data) < len(snapshotMagic)+1 {
		return nil, fmt.Errorf("distance: snapshot of %d bytes is shorter than its header", len(data))
	}
	for i, b := range snapshotMagic {
		if data[i] != b {
			return nil, fmt.Errorf("distance: snapshot has bad magic %q", data[:len(snapshotMagic)])
		}
	}
	if tag := data[len(snapshotMagic)]; tag != wantTag {
		return nil, fmt.Errorf("distance: snapshot payload tag %d, want %d (snapshot from a different measure?)", tag, wantTag)
	}
	return &snapReader{buf: data, off: len(snapshotMagic) + 1}, nil
}

func (r *snapReader) uvarint() (uint64, error) {
	n, sz := binary.Uvarint(r.buf[r.off:])
	if sz <= 0 {
		return 0, fmt.Errorf("distance: truncated snapshot varint at offset %d", r.off)
	}
	r.off += sz
	return n, nil
}

func (r *snapReader) varint() (int64, error) {
	n, sz := binary.Varint(r.buf[r.off:])
	if sz <= 0 {
		return 0, fmt.Errorf("distance: truncated snapshot varint at offset %d", r.off)
	}
	r.off += sz
	return n, nil
}

func (r *snapReader) byteVal() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("distance: truncated snapshot at offset %d", r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *snapReader) float() (float64, error) {
	if r.off+8 > len(r.buf) {
		return 0, fmt.Errorf("distance: truncated snapshot float at offset %d", r.off)
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return f, nil
}

func (r *snapReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.buf)-r.off) < n {
		return "", fmt.Errorf("distance: truncated snapshot string at offset %d", r.off)
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *snapReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.buf)-r.off) < n {
		return nil, fmt.Errorf("distance: truncated snapshot bytes at offset %d", r.off)
	}
	b := append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	r.off += int(n)
	return b, nil
}

func (r *snapReader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("distance: %d trailing snapshot bytes", len(r.buf)-r.off)
	}
	return nil
}

// --- string sets (token, result) ---

func marshalStringSets(p Prepared) ([]byte, error) {
	sets, ok := p.(setPrepared[string])
	if !ok {
		return nil, fmt.Errorf("distance: cannot snapshot prepared state %T as string sets", p)
	}
	w := newSnapWriter(snapStringSets)
	w.uvarint(uint64(len(sets)))
	for _, set := range sets {
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.uvarint(uint64(len(keys)))
		for _, k := range keys {
			w.str(k)
		}
	}
	return w.buf, nil
}

func unmarshalStringSets(data []byte) (Prepared, error) {
	r, err := newSnapReader(data, snapStringSets)
	if err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	sets := make(setPrepared[string], n)
	for i := range sets {
		k, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool, k)
		for j := uint64(0); j < k; j++ {
			s, err := r.str()
			if err != nil {
				return nil, err
			}
			set[s] = true
		}
		sets[i] = set
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return sets, nil
}

// MarshalPrepared implements Snapshotter over token sets.
func (tokenMetric) MarshalPrepared(p Prepared) ([]byte, error) { return marshalStringSets(p) }

// UnmarshalPrepared implements Snapshotter over token sets.
func (tokenMetric) UnmarshalPrepared(data []byte) (Prepared, error) {
	return unmarshalStringSets(data)
}

// MarshalPrepared implements Snapshotter over result tuple sets. The
// snapshot carries the materialized tuple-set keys, so restoring it
// re-executes no queries — the whole point of persisting the result
// measure's expensive prepared state.
func (*resultMetric) MarshalPrepared(p Prepared) ([]byte, error) { return marshalStringSets(p) }

// UnmarshalPrepared implements Snapshotter over result tuple sets.
func (*resultMetric) UnmarshalPrepared(data []byte) (Prepared, error) {
	return unmarshalStringSets(data)
}

// --- feature sets (structure) ---

// MarshalPrepared implements Snapshotter over SnipSuggest feature sets.
func (structureMetric) MarshalPrepared(p Prepared) ([]byte, error) {
	sets, ok := p.(setPrepared[sqlfeature.Feature])
	if !ok {
		return nil, fmt.Errorf("distance: cannot snapshot prepared state %T as feature sets", p)
	}
	w := newSnapWriter(snapFeatureSets)
	w.uvarint(uint64(len(sets)))
	for _, set := range sets {
		feats := make([]sqlfeature.Feature, 0, len(set))
		for f := range set {
			feats = append(feats, f)
		}
		sort.Slice(feats, func(i, j int) bool {
			if feats[i].Clause != feats[j].Clause {
				return feats[i].Clause < feats[j].Clause
			}
			return feats[i].Item < feats[j].Item
		})
		w.uvarint(uint64(len(feats)))
		for _, f := range feats {
			w.str(string(f.Clause))
			w.str(f.Item)
		}
	}
	return w.buf, nil
}

// UnmarshalPrepared implements Snapshotter over feature sets.
func (structureMetric) UnmarshalPrepared(data []byte) (Prepared, error) {
	r, err := newSnapReader(data, snapFeatureSets)
	if err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	sets := make(setPrepared[sqlfeature.Feature], n)
	for i := range sets {
		k, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		set := make(map[sqlfeature.Feature]bool, k)
		for j := uint64(0); j < k; j++ {
			clause, err := r.str()
			if err != nil {
				return nil, err
			}
			item, err := r.str()
			if err != nil {
				return nil, err
			}
			set[sqlfeature.Feature{Clause: sqlfeature.Clause(clause), Item: item}] = true
		}
		sets[i] = set
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return sets, nil
}

// --- access areas ---

// Value kind bytes in access-area snapshots.
const (
	snapValNull   byte = 0
	snapValInt    byte = 1
	snapValFloat  byte = 2
	snapValString byte = 3
	snapValBytes  byte = 4
)

func writeValue(w *snapWriter, v value.Value) error {
	switch v.Kind() {
	case value.KindNull:
		w.byteVal(snapValNull)
	case value.KindInt:
		w.byteVal(snapValInt)
		w.varint(v.AsInt())
	case value.KindFloat:
		w.byteVal(snapValFloat)
		w.float(v.AsFloat())
	case value.KindString:
		w.byteVal(snapValString)
		w.str(v.AsString())
	case value.KindBytes:
		w.byteVal(snapValBytes)
		w.bytes(v.AsBytes())
	default:
		return fmt.Errorf("distance: cannot snapshot value kind %v", v.Kind())
	}
	return nil
}

func readValue(r *snapReader) (value.Value, error) {
	kind, err := r.byteVal()
	if err != nil {
		return value.Value{}, err
	}
	switch kind {
	case snapValNull:
		return value.Null(), nil
	case snapValInt:
		i, err := r.varint()
		if err != nil {
			return value.Value{}, err
		}
		return value.Int(i), nil
	case snapValFloat:
		f, err := r.float()
		if err != nil {
			return value.Value{}, err
		}
		return value.Float(f), nil
	case snapValString:
		s, err := r.str()
		if err != nil {
			return value.Value{}, err
		}
		return value.Str(s), nil
	case snapValBytes:
		b, err := r.bytes()
		if err != nil {
			return value.Value{}, err
		}
		return value.Bytes(b), nil
	default:
		return value.Value{}, fmt.Errorf("distance: unknown snapshot value kind %d", kind)
	}
}

func writeArea(w *snapWriter, a accessarea.Area) error {
	ivs := a.Intervals()
	w.uvarint(uint64(len(ivs)))
	for _, iv := range ivs {
		if err := writeValue(w, iv.Lo.V); err != nil {
			return err
		}
		w.byteVal(boolByte(iv.Lo.Open))
		if err := writeValue(w, iv.Hi.V); err != nil {
			return err
		}
		w.byteVal(boolByte(iv.Hi.Open))
	}
	return nil
}

func readArea(r *snapReader) (accessarea.Area, error) {
	n, err := r.uvarint()
	if err != nil {
		return accessarea.Area{}, err
	}
	ivs := make([]accessarea.Interval, n)
	for i := range ivs {
		lo, err := readValue(r)
		if err != nil {
			return accessarea.Area{}, err
		}
		loOpen, err := r.byteVal()
		if err != nil {
			return accessarea.Area{}, err
		}
		hi, err := readValue(r)
		if err != nil {
			return accessarea.Area{}, err
		}
		hiOpen, err := r.byteVal()
		if err != nil {
			return accessarea.Area{}, err
		}
		ivs[i] = accessarea.Interval{
			Lo: accessarea.Endpoint{V: lo, Open: loOpen != 0},
			Hi: accessarea.Endpoint{V: hi, Open: hiOpen != 0},
		}
	}
	// NewArea re-normalizes; the input was already normalized, so this
	// is the identity and Equal/Overlaps behave exactly as before.
	return accessarea.NewArea(ivs...), nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// MarshalPrepared implements Snapshotter over precomputed access areas.
func (*accessAreaMetric) MarshalPrepared(p Prepared) ([]byte, error) {
	aa, ok := p.(*aaPrepared)
	if !ok {
		return nil, fmt.Errorf("distance: cannot snapshot prepared state %T as access areas", p)
	}
	w := newSnapWriter(snapAccessArea)
	w.float(aa.x)
	w.uvarint(uint64(len(aa.queries)))
	for _, q := range aa.queries {
		attrs := make([]string, 0, len(q.attrs))
		for a := range q.attrs {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		w.uvarint(uint64(len(attrs)))
		for _, a := range attrs {
			w.str(a)
		}
		areas := make([]string, 0, len(q.areas))
		for a := range q.areas {
			areas = append(areas, a)
		}
		sort.Strings(areas)
		w.uvarint(uint64(len(areas)))
		for _, a := range areas {
			w.str(a)
			if err := writeArea(w, q.areas[a]); err != nil {
				return nil, err
			}
		}
	}
	return w.buf, nil
}

// UnmarshalPrepared implements Snapshotter over precomputed access
// areas.
func (*accessAreaMetric) UnmarshalPrepared(data []byte) (Prepared, error) {
	r, err := newSnapReader(data, snapAccessArea)
	if err != nil {
		return nil, err
	}
	x, err := r.float()
	if err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	out := &aaPrepared{x: x, queries: make([]aaQuery, n)}
	for i := range out.queries {
		nAttrs, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		attrs := make(map[string]bool, nAttrs)
		for j := uint64(0); j < nAttrs; j++ {
			a, err := r.str()
			if err != nil {
				return nil, err
			}
			attrs[a] = true
		}
		nAreas, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		areas := make(map[string]accessarea.Area, nAreas)
		for j := uint64(0); j < nAreas; j++ {
			a, err := r.str()
			if err != nil {
				return nil, err
			}
			area, err := readArea(r)
			if err != nil {
				return nil, err
			}
			areas[a] = area
		}
		out.queries[i] = aaQuery{attrs: attrs, areas: areas}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// Interface checks: all four built-in metrics snapshot.
var (
	_ Snapshotter = tokenMetric{}
	_ Snapshotter = structureMetric{}
	_ Snapshotter = (*resultMetric)(nil)
	_ Snapshotter = (*accessAreaMetric)(nil)
)
