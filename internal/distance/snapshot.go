package distance

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/accessarea"
	"repro/internal/sqlfeature"
	"repro/internal/value"
)

// Snapshotter is optionally implemented by metrics whose prepared state
// can be serialized and restored — the codec behind the service's
// persistent prepared-state snapshots. The contract is exactness:
// UnmarshalPrepared(MarshalPrepared(p)) must return a state whose
// Distance is entry-wise identical to p's, so a recovered cache serves
// the same matrices the pre-restart one did. All four built-in metrics
// implement it.
type Snapshotter interface {
	// MarshalPrepared serializes a prepared state produced by this
	// metric's Prepare or Extend. The encoding is deterministic: equal
	// states marshal to equal bytes.
	MarshalPrepared(p Prepared) ([]byte, error)
	// UnmarshalPrepared is the inverse of MarshalPrepared. It also
	// accepts this metric's legacy (pre-interning) payloads, so
	// journals written by older binaries replay into the current
	// representation.
	UnmarshalPrepared(data []byte) (Prepared, error)
}

// Snapshot framing: a 4-byte magic ("DPS" + version) and a payload tag,
// then the tag-specific body. All integers are varints; floats are
// 8-byte little-endian IEEE 754 bit patterns (exact round trip).
var snapshotMagic = [4]byte{'D', 'P', 'S', '1'}

// Payload tags version the body format. Tags 1 and 2 are the legacy
// map-era set encodings: no binary writes them anymore, but decoders
// keep accepting them so prepared-state journals recorded before the
// interned kernel replay unchanged. Tag 3 is unchanged across the
// interning refactor — its on-disk bytes are identical before and
// after. Tags 4 and 5 are the interned encodings (dictionary once,
// then delta-encoded id lists per query) that current binaries write.
const (
	snapStringSets       byte = 1 // legacy setPrepared[string]: token and result metrics
	snapFeatureSets      byte = 2 // legacy setPrepared[sqlfeature.Feature]: structure metric
	snapAccessArea       byte = 3 // aaPrepared: access-area metric
	snapInternedStrings  byte = 4 // internedPrepared[string]: token and result metrics
	snapInternedFeatures byte = 5 // internedPrepared[sqlfeature.Feature]: structure metric
)

// snapMaxTag is the highest payload tag this binary understands; a
// larger tag means the snapshot was written by a newer version.
const snapMaxTag = snapInternedFeatures

// snapWriter builds a snapshot buffer.
type snapWriter struct{ buf []byte }

func newSnapWriter(tag byte) *snapWriter {
	w := &snapWriter{buf: make([]byte, 0, 256)}
	w.buf = append(w.buf, snapshotMagic[:]...)
	w.buf = append(w.buf, tag)
	return w
}

func (w *snapWriter) uvarint(n uint64) { w.buf = binary.AppendUvarint(w.buf, n) }
func (w *snapWriter) varint(n int64)   { w.buf = binary.AppendVarint(w.buf, n) }
func (w *snapWriter) byteVal(b byte)   { w.buf = append(w.buf, b) }
func (w *snapWriter) float(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}
func (w *snapWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *snapWriter) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// snapReader consumes a snapshot buffer, validating the frame.
type snapReader struct {
	buf []byte
	off int
}

// newSnapReader validates the magic and payload tag, returning the tag
// that matched so callers accepting several formats (current + legacy)
// can dispatch on it.
func newSnapReader(data []byte, wantTags ...byte) (*snapReader, byte, error) {
	if len(data) < len(snapshotMagic)+1 {
		return nil, 0, fmt.Errorf("distance: snapshot of %d bytes is shorter than its header", len(data))
	}
	for i, b := range snapshotMagic {
		if data[i] != b {
			return nil, 0, fmt.Errorf("distance: snapshot has bad magic %q", data[:len(snapshotMagic)])
		}
	}
	tag := data[len(snapshotMagic)]
	for _, want := range wantTags {
		if tag == want {
			return &snapReader{buf: data, off: len(snapshotMagic) + 1}, tag, nil
		}
	}
	if tag > snapMaxTag {
		return nil, 0, fmt.Errorf("distance: snapshot payload tag %d is newer than this binary supports (max %d); upgrade the binary or re-prepare the session", tag, snapMaxTag)
	}
	return nil, 0, fmt.Errorf("distance: snapshot payload tag %d, want one of %v (snapshot from a different measure?)", tag, wantTags)
}

func (r *snapReader) uvarint() (uint64, error) {
	n, sz := binary.Uvarint(r.buf[r.off:])
	if sz <= 0 {
		return 0, fmt.Errorf("distance: truncated snapshot varint at offset %d", r.off)
	}
	r.off += sz
	return n, nil
}

func (r *snapReader) varint() (int64, error) {
	n, sz := binary.Varint(r.buf[r.off:])
	if sz <= 0 {
		return 0, fmt.Errorf("distance: truncated snapshot varint at offset %d", r.off)
	}
	r.off += sz
	return n, nil
}

func (r *snapReader) byteVal() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("distance: truncated snapshot at offset %d", r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *snapReader) float() (float64, error) {
	if r.off+8 > len(r.buf) {
		return 0, fmt.Errorf("distance: truncated snapshot float at offset %d", r.off)
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return f, nil
}

func (r *snapReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.buf)-r.off) < n {
		return "", fmt.Errorf("distance: truncated snapshot string at offset %d", r.off)
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *snapReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.buf)-r.off) < n {
		return nil, fmt.Errorf("distance: truncated snapshot bytes at offset %d", r.off)
	}
	b := append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	r.off += int(n)
	return b, nil
}

func (r *snapReader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("distance: %d trailing snapshot bytes", len(r.buf)-r.off)
	}
	return nil
}

// --- interned set states (token, result, structure) ---

// writeInterned encodes an interned state: the dictionary once (in id
// order, so restore re-interns into identical ids), then each query as
// its cardinality followed by delta-encoded ascending element ids.
// writeElem serializes one dictionary element.
func writeInterned[K comparable](w *snapWriter, p *internedPrepared[K], writeElem func(*snapWriter, K)) {
	w.uvarint(uint64(len(p.dict.elems)))
	for _, k := range p.dict.elems {
		writeElem(w, k)
	}
	w.uvarint(uint64(len(p.sets)))
	var ids []uint32
	for _, words := range p.sets {
		ids = appendBitsetIDs(ids[:0], words)
		w.uvarint(uint64(len(ids)))
		prev := uint32(0)
		for _, id := range ids {
			w.uvarint(uint64(id - prev))
			prev = id
		}
	}
}

// readInterned decodes what writeInterned produced. Elements re-intern
// in stored (id) order, so the restored dictionary is identical to the
// marshaled one and a re-marshal yields the same bytes.
func readInterned[K comparable](r *snapReader, readElem func(*snapReader) (K, error)) (*internedPrepared[K], error) {
	nElems, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	out := newInternedPrepared[K](0)
	for i := uint64(0); i < nElems; i++ {
		k, err := readElem(r)
		if err != nil {
			return nil, err
		}
		if id := out.dict.intern(k); uint64(id) != i {
			return nil, fmt.Errorf("distance: snapshot dictionary has duplicate element at id %d", i)
		}
	}
	nSets, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nSets; i++ {
		card, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		var words []uint64
		id := uint32(0)
		for j := uint64(0); j < card; j++ {
			d, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if j > 0 && d == 0 {
				return nil, fmt.Errorf("distance: snapshot set %d has a duplicate element id", i)
			}
			id += uint32(d)
			if uint64(id) >= nElems {
				return nil, fmt.Errorf("distance: snapshot set %d references element id %d beyond dictionary size %d", i, id, nElems)
			}
			words = bitsetSet(words, id)
		}
		out.sets = append(out.sets, words)
		out.cards = append(out.cards, int(card))
	}
	return out, nil
}

// readLegacySets decodes the map-era set encoding (tags 1 and 2): per
// query, a sorted element list. Elements intern in stored order, which
// is the same sorted order Prepare uses, so the rebuilt dictionary —
// and therefore any re-marshal and any MinHash signature — matches a
// fresh Prepare of the same log exactly.
func readLegacySets[K comparable](r *snapReader, readElem func(*snapReader) (K, error)) (*internedPrepared[K], error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	out := newInternedPrepared[K](int(n))
	elems := []K(nil)
	for i := uint64(0); i < n; i++ {
		k, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		elems = elems[:0]
		for j := uint64(0); j < k; j++ {
			e, err := readElem(r)
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		out.addSet(elems)
	}
	return out, nil
}

func writeStringElem(w *snapWriter, s string) { w.str(s) }

func readStringElem(r *snapReader) (string, error) { return r.str() }

func writeFeatureElem(w *snapWriter, f sqlfeature.Feature) {
	w.str(string(f.Clause))
	w.str(f.Item)
}

func readFeatureElem(r *snapReader) (sqlfeature.Feature, error) {
	clause, err := r.str()
	if err != nil {
		return sqlfeature.Feature{}, err
	}
	item, err := r.str()
	if err != nil {
		return sqlfeature.Feature{}, err
	}
	return sqlfeature.Feature{Clause: sqlfeature.Clause(clause), Item: item}, nil
}

func marshalStringSets(p Prepared) ([]byte, error) {
	sets, ok := p.(*internedPrepared[string])
	if !ok {
		return nil, fmt.Errorf("distance: cannot snapshot prepared state %T as string sets", p)
	}
	w := newSnapWriter(snapInternedStrings)
	writeInterned(w, sets, writeStringElem)
	return w.buf, nil
}

func unmarshalStringSets(data []byte) (Prepared, error) {
	r, tag, err := newSnapReader(data, snapInternedStrings, snapStringSets)
	if err != nil {
		return nil, err
	}
	var out *internedPrepared[string]
	if tag == snapInternedStrings {
		out, err = readInterned(r, readStringElem)
	} else {
		out, err = readLegacySets(r, readStringElem)
	}
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// MarshalPrepared implements Snapshotter over token sets.
func (tokenMetric) MarshalPrepared(p Prepared) ([]byte, error) { return marshalStringSets(p) }

// UnmarshalPrepared implements Snapshotter over token sets.
func (tokenMetric) UnmarshalPrepared(data []byte) (Prepared, error) {
	return unmarshalStringSets(data)
}

// MarshalPrepared implements Snapshotter over result tuple sets. The
// snapshot carries the materialized tuple-set keys, so restoring it
// re-executes no queries — the whole point of persisting the result
// measure's expensive prepared state.
func (*resultMetric) MarshalPrepared(p Prepared) ([]byte, error) { return marshalStringSets(p) }

// UnmarshalPrepared implements Snapshotter over result tuple sets.
func (*resultMetric) UnmarshalPrepared(data []byte) (Prepared, error) {
	return unmarshalStringSets(data)
}

// MarshalPrepared implements Snapshotter over SnipSuggest feature sets.
func (structureMetric) MarshalPrepared(p Prepared) ([]byte, error) {
	sets, ok := p.(*internedPrepared[sqlfeature.Feature])
	if !ok {
		return nil, fmt.Errorf("distance: cannot snapshot prepared state %T as feature sets", p)
	}
	w := newSnapWriter(snapInternedFeatures)
	writeInterned(w, sets, writeFeatureElem)
	return w.buf, nil
}

// UnmarshalPrepared implements Snapshotter over feature sets.
func (structureMetric) UnmarshalPrepared(data []byte) (Prepared, error) {
	r, tag, err := newSnapReader(data, snapInternedFeatures, snapFeatureSets)
	if err != nil {
		return nil, err
	}
	var out *internedPrepared[sqlfeature.Feature]
	if tag == snapInternedFeatures {
		out, err = readInterned(r, readFeatureElem)
	} else {
		out, err = readLegacySets(r, readFeatureElem)
	}
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// --- access areas ---

// Value kind bytes in access-area snapshots.
const (
	snapValNull   byte = 0
	snapValInt    byte = 1
	snapValFloat  byte = 2
	snapValString byte = 3
	snapValBytes  byte = 4
)

func writeValue(w *snapWriter, v value.Value) error {
	switch v.Kind() {
	case value.KindNull:
		w.byteVal(snapValNull)
	case value.KindInt:
		w.byteVal(snapValInt)
		w.varint(v.AsInt())
	case value.KindFloat:
		w.byteVal(snapValFloat)
		w.float(v.AsFloat())
	case value.KindString:
		w.byteVal(snapValString)
		w.str(v.AsString())
	case value.KindBytes:
		w.byteVal(snapValBytes)
		w.bytes(v.AsBytes())
	default:
		return fmt.Errorf("distance: cannot snapshot value kind %v", v.Kind())
	}
	return nil
}

func readValue(r *snapReader) (value.Value, error) {
	kind, err := r.byteVal()
	if err != nil {
		return value.Value{}, err
	}
	switch kind {
	case snapValNull:
		return value.Null(), nil
	case snapValInt:
		i, err := r.varint()
		if err != nil {
			return value.Value{}, err
		}
		return value.Int(i), nil
	case snapValFloat:
		f, err := r.float()
		if err != nil {
			return value.Value{}, err
		}
		return value.Float(f), nil
	case snapValString:
		s, err := r.str()
		if err != nil {
			return value.Value{}, err
		}
		return value.Str(s), nil
	case snapValBytes:
		b, err := r.bytes()
		if err != nil {
			return value.Value{}, err
		}
		return value.Bytes(b), nil
	default:
		return value.Value{}, fmt.Errorf("distance: unknown snapshot value kind %d", kind)
	}
}

func writeArea(w *snapWriter, a accessarea.Area) error {
	ivs := a.Intervals()
	w.uvarint(uint64(len(ivs)))
	for _, iv := range ivs {
		if err := writeValue(w, iv.Lo.V); err != nil {
			return err
		}
		w.byteVal(boolByte(iv.Lo.Open))
		if err := writeValue(w, iv.Hi.V); err != nil {
			return err
		}
		w.byteVal(boolByte(iv.Hi.Open))
	}
	return nil
}

func readArea(r *snapReader) (accessarea.Area, error) {
	n, err := r.uvarint()
	if err != nil {
		return accessarea.Area{}, err
	}
	ivs := make([]accessarea.Interval, n)
	for i := range ivs {
		lo, err := readValue(r)
		if err != nil {
			return accessarea.Area{}, err
		}
		loOpen, err := r.byteVal()
		if err != nil {
			return accessarea.Area{}, err
		}
		hi, err := readValue(r)
		if err != nil {
			return accessarea.Area{}, err
		}
		hiOpen, err := r.byteVal()
		if err != nil {
			return accessarea.Area{}, err
		}
		ivs[i] = accessarea.Interval{
			Lo: accessarea.Endpoint{V: lo, Open: loOpen != 0},
			Hi: accessarea.Endpoint{V: hi, Open: hiOpen != 0},
		}
	}
	// NewArea re-normalizes; the input was already normalized, so this
	// is the identity and Equal/Overlaps behave exactly as before.
	return accessarea.NewArea(ivs...), nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// MarshalPrepared implements Snapshotter over precomputed access areas.
// The wire format predates the interning refactor and is written
// byte-for-byte unchanged — attribute names are materialized back from
// their interned ids and listed in sorted order per query, exactly as
// the map-era encoder sorted them.
func (*accessAreaMetric) MarshalPrepared(p Prepared) ([]byte, error) {
	aa, ok := p.(*aaPrepared)
	if !ok {
		return nil, fmt.Errorf("distance: cannot snapshot prepared state %T as access areas", p)
	}
	w := newSnapWriter(snapAccessArea)
	w.float(aa.x)
	w.uvarint(uint64(len(aa.queries)))
	for _, q := range aa.queries {
		type namedArea struct {
			name string
			area accessarea.Area
		}
		named := make([]namedArea, len(q.ids))
		for k, id := range q.ids {
			named[k] = namedArea{name: aa.attrs.elems[id], area: q.areas[k]}
		}
		sort.Slice(named, func(i, j int) bool { return named[i].name < named[j].name })
		w.uvarint(uint64(len(named)))
		for _, na := range named {
			w.str(na.name)
		}
		w.uvarint(uint64(len(named)))
		for _, na := range named {
			w.str(na.name)
			if err := writeArea(w, na.area); err != nil {
				return nil, err
			}
		}
	}
	return w.buf, nil
}

// UnmarshalPrepared implements Snapshotter over precomputed access
// areas.
func (*accessAreaMetric) UnmarshalPrepared(data []byte) (Prepared, error) {
	r, _, err := newSnapReader(data, snapAccessArea)
	if err != nil {
		return nil, err
	}
	x, err := r.float()
	if err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	out := &aaPrepared{x: x, attrs: newDict[string](), queries: make([]aaQuery, 0, n)}
	for i := uint64(0); i < n; i++ {
		nAttrs, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		attrs := make([]string, nAttrs)
		for j := range attrs {
			if attrs[j], err = r.str(); err != nil {
				return nil, err
			}
		}
		nAreas, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		areaByName := make(map[string]accessarea.Area, nAreas)
		for j := uint64(0); j < nAreas; j++ {
			a, err := r.str()
			if err != nil {
				return nil, err
			}
			area, err := readArea(r)
			if err != nil {
				return nil, err
			}
			areaByName[a] = area
		}
		// The attribute list is stored sorted, so interning in stored
		// order matches Prepare's sorted interning. An attribute with no
		// stored area (not produced by any real encoder) degrades to the
		// empty area, matching the old representation's lookup default.
		q := aaQuery{
			ids:   make([]uint32, 0, len(attrs)),
			areas: make([]accessarea.Area, 0, len(attrs)),
		}
		for _, a := range attrs {
			area, ok := areaByName[a]
			if !ok {
				area = accessarea.Empty()
			}
			q.ids = append(q.ids, out.attrs.intern(a))
			q.areas = append(q.areas, area)
		}
		sort.Sort(&aaByID{q})
		out.queries = append(out.queries, q)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// Interface checks: all four built-in metrics snapshot.
var (
	_ Snapshotter = tokenMetric{}
	_ Snapshotter = structureMetric{}
	_ Snapshotter = (*resultMetric)(nil)
	_ Snapshotter = (*accessAreaMetric)(nil)
)
