package distance

import (
	"repro/internal/accessarea"
	"repro/internal/sqlfeature"
)

// The legacy map-based set kernel, kept as the reference
// implementation the interned bitset kernel (intern.go) is measured
// and verified against: parity tests assert both kernels return
// bit-identical distances, and the hotpath bench experiment times them
// side by side. Nothing on the Prepare/Extend path constructs these
// states anymore; MapKernel derives one from an interned state.

// setPrepared is the legacy prepared form of the set-based metrics:
// one map-backed element set per query, Jaccard distance by per-pair
// map intersection. It remains a full Prepared/Sizer/SetSource so
// benches and tests can drive it through the same BuildMatrix path as
// the interned kernel.
type setPrepared[K comparable] []map[K]bool

func (p setPrepared[K]) Len() int { return len(p) }

func (p setPrepared[K]) Distance(i, j int) (float64, error) {
	return Jaccard(p[i], p[j]), nil
}

// SizeBytes implements Sizer over the per-query sets. Unlike the
// interned form, every occurrence of an element pays its full key size
// — the difference is the memory the interning dictionary saves.
func (p setPrepared[K]) SizeBytes() int64 {
	total := int64(48 * len(p))
	for _, set := range p {
		total += 48
		for k := range set {
			total += keySize(k) + 8
		}
	}
	return total
}

// AppendElementHashes implements SetSource for the legacy states.
func (p setPrepared[K]) AppendElementHashes(dst []uint64, i int) []uint64 {
	for k := range p[i] {
		dst = append(dst, elementHash(k))
	}
	return dst
}

// MapKernel converts an interned prepared state of any built-in metric
// to the equivalent legacy (pre-interning) map-based state: map-backed
// element sets for the Jaccard measures, per-query attribute/area maps
// for access-area. It returns ok=false for prepared states it does not
// recognize. The conversion exists for apples-to-apples kernel
// comparisons: the returned state visits the same elements, so any
// distance it disagrees on is a kernel bug.
func MapKernel(p Prepared) (Prepared, bool) {
	switch v := p.(type) {
	case *internedPrepared[string]:
		return mapKernelOf(v), true
	case *internedPrepared[sqlfeature.Feature]:
		return mapKernelOf(v), true
	case *aaPrepared:
		out := &aaLegacyPrepared{x: v.x, queries: make([]aaLegacyQuery, len(v.queries))}
		for i, q := range v.queries {
			lq := aaLegacyQuery{
				attrs: make(map[string]bool, len(q.ids)),
				areas: make(map[string]accessarea.Area, len(q.ids)),
			}
			for k, id := range q.ids {
				name := v.attrs.elems[id]
				lq.attrs[name] = true
				lq.areas[name] = q.areas[k]
			}
			out.queries[i] = lq
		}
		return out, true
	}
	return nil, false
}

// aaLegacyQuery and aaLegacyPrepared are the pre-interning access-area
// representation: per-query attribute and area maps, with Distance
// probing maps per attribute.
type aaLegacyQuery struct {
	attrs map[string]bool
	areas map[string]accessarea.Area
}

type aaLegacyPrepared struct {
	queries []aaLegacyQuery
	x       float64
}

func (p *aaLegacyPrepared) Len() int { return len(p.queries) }

func (q aaLegacyQuery) area(a string) accessarea.Area {
	if q.attrs[a] {
		return q.areas[a]
	}
	return accessarea.Empty()
}

func (p *aaLegacyPrepared) Distance(i, j int) (float64, error) {
	q1, q2 := p.queries[i], p.queries[j]
	n := 0
	var sum float64
	delta := func(a string) {
		n++
		a1, a2 := q1.area(a), q2.area(a)
		switch {
		case a1.Equal(a2):
			// δ = 0
		case a1.Overlaps(a2):
			sum += p.x
		default:
			sum += 1
		}
	}
	for a := range q1.attrs {
		delta(a)
	}
	for a := range q2.attrs {
		if !q1.attrs[a] {
			delta(a)
		}
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

func mapKernelOf[K comparable](p *internedPrepared[K]) setPrepared[K] {
	out := make(setPrepared[K], len(p.sets))
	var ids []uint32
	for i, words := range p.sets {
		ids = appendBitsetIDs(ids[:0], words)
		set := make(map[K]bool, len(ids))
		for _, id := range ids {
			set[p.dict.elems[id]] = true
		}
		out[i] = set
	}
	return out
}
