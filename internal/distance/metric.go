package distance

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/accessarea"
	"repro/internal/db"
	"repro/internal/sqlfeature"
	"repro/internal/sqlparse"
)

// Artifacts bundles the provider-side shared information of Table I: the
// encrypted log is passed to Prepare, everything else a measure may need
// is here. Log-only measures ignore all fields.
type Artifacts struct {
	// Catalog is the (encrypted) database content required by the
	// result-distance measure.
	Catalog *db.Catalog
	// Exec carries execution options for the catalog — for encrypted
	// catalogs the owner's aggregate evaluator.
	Exec db.Options
	// Domains are the (encrypted) attribute domains required by the
	// access-area measure.
	Domains map[string]accessarea.Domain
	// AccessAreaX is Definition 5's partial-overlap value; 0 means
	// DefaultOverlapX.
	AccessAreaX float64
	// Parallelism bounds concurrent per-query preparation work (query
	// execution for the result measure). <= 1 means sequential.
	Parallelism int
}

// Prepared is a query log after a metric's per-query work (tokenizing,
// parsing, feature extraction, execution) has run once. Distance is pure
// over that state: symmetric, and safe for concurrent use, so matrix
// builds can fan out freely.
type Prepared interface {
	// Len is the number of queries in the prepared log.
	Len() int
	// Distance returns the distance of queries i and j.
	Distance(i, j int) (float64, error)
}

// Sizer is optionally implemented by Prepared states that can estimate
// the memory they retain. Caches use it to budget prepared state by
// bytes; the estimate must scale with the real footprint (for the
// result measure that is the materialized tuple sets, which dwarf the
// log text).
type Sizer interface {
	// SizeBytes estimates the retained memory of the prepared state.
	SizeBytes() int64
}

// Metric is one pluggable query-distance measure (a row of Table I).
// Implementations work identically on plaintext and ciphertext logs —
// that is the DPE property the registry's built-ins preserve.
type Metric interface {
	// Name is the registry key, e.g. "token".
	Name() string
	// Prepare runs the per-query work for a log. It honors ctx
	// cancellation between queries.
	Prepare(ctx context.Context, queries []string) (Prepared, error)
}

// Extender is optionally implemented by metrics whose prepared state
// can grow incrementally: Extend runs the per-query work for only the
// new queries and returns a prepared state over old ∘ new, identical to
// Prepare over the concatenated log. All four built-in metrics
// implement it — it is what makes matrix appends O(n·k) instead of
// O((n+k)²). prev must come from the same metric's Prepare or Extend;
// it is not modified (the result may share its per-query state).
type Extender interface {
	Extend(ctx context.Context, prev Prepared, newQueries []string) (Prepared, error)
}

// extendSets is the shared Extend implementation of the set-based
// metrics: prepare the new queries alone, then concatenate.
func extendSets[K comparable](m Metric, ctx context.Context, prev Prepared, newQueries []string) (Prepared, error) {
	old, ok := prev.(setPrepared[K])
	if !ok {
		return nil, fmt.Errorf("distance: %s: prepared state %T is not this metric's", m.Name(), prev)
	}
	fresh, err := m.Prepare(ctx, newQueries)
	if err != nil {
		return nil, err
	}
	out := make(setPrepared[K], 0, len(old)+len(newQueries))
	out = append(out, old...)
	out = append(out, fresh.(setPrepared[K])...)
	return out, nil
}

// Factory builds a metric from the shared artifacts, validating that the
// measure's required shared information is present.
type Factory func(Artifacts) (Metric, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a metric factory under a name. It panics on a duplicate
// name — registration is an init-time wiring error, not a runtime
// condition.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("distance: metric %q registered twice", name))
	}
	registry[name] = f
}

// New instantiates the named metric with the given artifacts.
func New(name string, a Artifacts) (Metric, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("distance: unknown metric %q (have %v)", name, Names())
	}
	return f(a)
}

// Names lists the registered metric names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("token", func(Artifacts) (Metric, error) { return tokenMetric{}, nil })
	Register("structure", func(Artifacts) (Metric, error) { return structureMetric{}, nil })
	Register("result", func(a Artifacts) (Metric, error) {
		if a.Catalog == nil {
			return nil, fmt.Errorf("distance: result metric requires the (encrypted) catalog")
		}
		return &resultMetric{catalog: a.Catalog, opts: a.Exec, parallelism: a.Parallelism}, nil
	})
	Register("access-area", func(a Artifacts) (Metric, error) {
		x := a.AccessAreaX
		if x == 0 {
			x = DefaultOverlapX
		}
		if x <= 0 || x >= 1 {
			return nil, fmt.Errorf("distance: overlap value x=%v outside (0,1)", x)
		}
		if a.Domains == nil {
			return nil, fmt.Errorf("distance: access-area metric requires the (encrypted) domains")
		}
		return &accessAreaMetric{domains: a.Domains, x: x}, nil
	})
}

// setPrepared is a prepared log whose characteristic is one set per
// query; the distance is their Jaccard distance.
type setPrepared[K comparable] []map[K]bool

func (p setPrepared[K]) Len() int { return len(p) }

func (p setPrepared[K]) Distance(i, j int) (float64, error) {
	return Jaccard(p[i], p[j]), nil
}

// keySize estimates one set element's footprint: strings carry their
// text (tuple keys grow with catalog rows), fixed-size struct keys a
// constant plus any string payload.
func keySize(k any) int64 {
	switch v := k.(type) {
	case string:
		return int64(len(v)) + 16
	case sqlfeature.Feature:
		return int64(len(v.Item)) + 24
	default:
		return 32
	}
}

// SizeBytes implements Sizer over the per-query sets.
func (p setPrepared[K]) SizeBytes() int64 {
	total := int64(48 * len(p))
	for _, set := range p {
		total += 48
		for k := range set {
			total += keySize(k) + 8
		}
	}
	return total
}

// --- token (Definition 3) ---

type tokenMetric struct{}

func (tokenMetric) Name() string { return "token" }

func (tokenMetric) Prepare(ctx context.Context, queries []string) (Prepared, error) {
	sets := make(setPrepared[string], len(queries))
	for i, q := range queries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		set, err := sqlfeature.Tokens(q)
		if err != nil {
			return nil, fmt.Errorf("distance: query %d: %w", i, err)
		}
		sets[i] = set
	}
	return sets, nil
}

func (m tokenMetric) Extend(ctx context.Context, prev Prepared, newQueries []string) (Prepared, error) {
	return extendSets[string](m, ctx, prev, newQueries)
}

// --- structure (SnipSuggest features) ---

type structureMetric struct{}

func (structureMetric) Name() string { return "structure" }

func (structureMetric) Prepare(ctx context.Context, queries []string) (Prepared, error) {
	stmts, err := parseLog(ctx, queries)
	if err != nil {
		return nil, err
	}
	sets := make(setPrepared[sqlfeature.Feature], len(stmts))
	for i, s := range stmts {
		sets[i] = sqlfeature.Features(s)
	}
	return sets, nil
}

func (m structureMetric) Extend(ctx context.Context, prev Prepared, newQueries []string) (Prepared, error) {
	return extendSets[sqlfeature.Feature](m, ctx, prev, newQueries)
}

// --- result (Definition 4) ---

type resultMetric struct {
	catalog     *db.Catalog
	opts        db.Options
	parallelism int
}

func (*resultMetric) Name() string { return "result" }

func (m *resultMetric) Prepare(ctx context.Context, queries []string) (Prepared, error) {
	stmts, err := parseLog(ctx, queries)
	if err != nil {
		return nil, err
	}
	rc := &ResultComputer{Catalog: m.catalog, Options: m.opts}
	if err := rc.Precompute(ctx, stmts, m.parallelism); err != nil {
		return nil, err
	}
	sets := make(setPrepared[string], len(stmts))
	for i, s := range stmts {
		set, err := rc.TupleSet(s)
		if err != nil {
			return nil, fmt.Errorf("distance: result of query %d: %w", i, err)
		}
		sets[i] = set
	}
	return sets, nil
}

// Extend executes only the new queries (a fresh ResultComputer — query
// execution is deterministic, so the tuple sets match what a combined
// Prepare would produce) and concatenates.
func (m *resultMetric) Extend(ctx context.Context, prev Prepared, newQueries []string) (Prepared, error) {
	return extendSets[string](m, ctx, prev, newQueries)
}

// --- access-area (Definition 5) ---

type accessAreaMetric struct {
	domains map[string]accessarea.Domain
	x       float64
}

func (*accessAreaMetric) Name() string { return "access-area" }

// aaQuery is one query's precomputed access areas: the accessed
// attributes and, per attribute, the extracted area.
type aaQuery struct {
	attrs map[string]bool
	areas map[string]accessarea.Area
}

type aaPrepared struct {
	queries []aaQuery
	x       float64
}

func (m *accessAreaMetric) Prepare(ctx context.Context, queries []string) (Prepared, error) {
	stmts, err := parseLog(ctx, queries)
	if err != nil {
		return nil, err
	}
	out := &aaPrepared{x: m.x, queries: make([]aaQuery, len(stmts))}
	for i, s := range stmts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		attrs := accessarea.AccessedAttributes(s)
		areas := make(map[string]accessarea.Area, len(attrs))
		for a := range attrs {
			dom, ok := m.domains[a]
			if !ok {
				return nil, fmt.Errorf("distance: no domain for accessed attribute %q", a)
			}
			area, _, err := accessarea.Extract(s, a, dom)
			if err != nil {
				return nil, err
			}
			areas[a] = area
		}
		out.queries[i] = aaQuery{attrs: attrs, areas: areas}
	}
	return out, nil
}

func (m *accessAreaMetric) Extend(ctx context.Context, prev Prepared, newQueries []string) (Prepared, error) {
	old, ok := prev.(*aaPrepared)
	if !ok {
		return nil, fmt.Errorf("distance: access-area: prepared state %T is not this metric's", prev)
	}
	fresh, err := m.Prepare(ctx, newQueries)
	if err != nil {
		return nil, err
	}
	out := &aaPrepared{x: old.x, queries: make([]aaQuery, 0, len(old.queries)+len(newQueries))}
	out.queries = append(out.queries, old.queries...)
	out.queries = append(out.queries, fresh.(*aaPrepared).queries...)
	return out, nil
}

func (p *aaPrepared) Len() int { return len(p.queries) }

// SizeBytes implements Sizer over the precomputed areas.
func (p *aaPrepared) SizeBytes() int64 {
	total := int64(48 * len(p.queries))
	for _, q := range p.queries {
		for a := range q.attrs {
			total += int64(len(a)) + 32
		}
		for a, area := range q.areas {
			total += int64(len(a)) + 48 + int64(len(area.Intervals()))*96
		}
	}
	return total
}

// area returns the query's access area for attribute a: the extracted
// area when it accesses a, the empty area otherwise.
func (q aaQuery) area(a string) accessarea.Area {
	if q.attrs[a] {
		return q.areas[a]
	}
	return accessarea.Empty()
}

// Distance mirrors AccessArea over the precomputed areas: the mean δ
// over all attributes accessed by either query.
func (p *aaPrepared) Distance(i, j int) (float64, error) {
	q1, q2 := p.queries[i], p.queries[j]
	n := 0
	var sum float64
	delta := func(a string) {
		n++
		a1, a2 := q1.area(a), q2.area(a)
		switch {
		case a1.Equal(a2):
			// δ = 0
		case a1.Overlaps(a2):
			sum += p.x
		default:
			sum += 1
		}
	}
	for a := range q1.attrs {
		delta(a)
	}
	for a := range q2.attrs {
		if !q1.attrs[a] {
			delta(a)
		}
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// parseLog parses every query of a log, honoring ctx between queries.
func parseLog(ctx context.Context, queries []string) ([]*sqlparse.SelectStmt, error) {
	stmts := make([]*sqlparse.SelectStmt, len(queries))
	for i, q := range queries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := sqlparse.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("distance: query %d: %w", i, err)
		}
		stmts[i] = s
	}
	return stmts, nil
}
