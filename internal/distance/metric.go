package distance

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/accessarea"
	"repro/internal/db"
	"repro/internal/sqlfeature"
	"repro/internal/sqlparse"
)

// Artifacts bundles the provider-side shared information of Table I: the
// encrypted log is passed to Prepare, everything else a measure may need
// is here. Log-only measures ignore all fields.
type Artifacts struct {
	// Catalog is the (encrypted) database content required by the
	// result-distance measure.
	Catalog *db.Catalog
	// Exec carries execution options for the catalog — for encrypted
	// catalogs the owner's aggregate evaluator.
	Exec db.Options
	// Domains are the (encrypted) attribute domains required by the
	// access-area measure.
	Domains map[string]accessarea.Domain
	// AccessAreaX is Definition 5's partial-overlap value; 0 means
	// DefaultOverlapX.
	AccessAreaX float64
	// Parallelism bounds concurrent per-query preparation work (query
	// execution for the result measure). <= 1 means sequential.
	Parallelism int
}

// Prepared is a query log after a metric's per-query work (tokenizing,
// parsing, feature extraction, execution) has run once. Distance is pure
// over that state: symmetric, and safe for concurrent use, so matrix
// builds can fan out freely.
type Prepared interface {
	// Len is the number of queries in the prepared log.
	Len() int
	// Distance returns the distance of queries i and j.
	Distance(i, j int) (float64, error)
}

// Sizer is optionally implemented by Prepared states that can estimate
// the memory they retain. Caches use it to budget prepared state by
// bytes; the estimate must scale with the real footprint (for the
// result measure that is the materialized tuple sets, which dwarf the
// log text).
type Sizer interface {
	// SizeBytes estimates the retained memory of the prepared state.
	SizeBytes() int64
}

// Metric is one pluggable query-distance measure (a row of Table I).
// Implementations work identically on plaintext and ciphertext logs —
// that is the DPE property the registry's built-ins preserve.
type Metric interface {
	// Name is the registry key, e.g. "token".
	Name() string
	// Prepare runs the per-query work for a log. It honors ctx
	// cancellation between queries.
	Prepare(ctx context.Context, queries []string) (Prepared, error)
}

// Extender is optionally implemented by metrics whose prepared state
// can grow incrementally: Extend runs the per-query work for only the
// new queries and returns a prepared state over old ∘ new, identical to
// Prepare over the concatenated log. All four built-in metrics
// implement it — it is what makes matrix appends O(n·k) instead of
// O((n+k)²). prev must come from the same metric's Prepare or Extend;
// it is not modified (the result may share its per-query state).
type Extender interface {
	Extend(ctx context.Context, prev Prepared, newQueries []string) (Prepared, error)
}

// extendInterned is the shared Extend entry of the set-based metrics:
// it type-checks prev and returns a growable copy sharing prev's
// bitsets with a cloned dictionary, so appending interns only the new
// queries' elements.
func extendInterned[K comparable](m Metric, prev Prepared, extra int) (*internedPrepared[K], error) {
	old, ok := prev.(*internedPrepared[K])
	if !ok {
		return nil, fmt.Errorf("distance: %s: prepared state %T is not this metric's", m.Name(), prev)
	}
	out := &internedPrepared[K]{}
	out.extendFrom(old, extra)
	return out, nil
}

// Factory builds a metric from the shared artifacts, validating that the
// measure's required shared information is present.
type Factory func(Artifacts) (Metric, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a metric factory under a name. It panics on a duplicate
// name — registration is an init-time wiring error, not a runtime
// condition.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("distance: metric %q registered twice", name))
	}
	registry[name] = f
}

// New instantiates the named metric with the given artifacts.
func New(name string, a Artifacts) (Metric, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("distance: unknown metric %q (have %v)", name, Names())
	}
	return f(a)
}

// Names lists the registered metric names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("token", func(Artifacts) (Metric, error) { return tokenMetric{}, nil })
	Register("structure", func(Artifacts) (Metric, error) { return structureMetric{}, nil })
	Register("result", func(a Artifacts) (Metric, error) {
		if a.Catalog == nil {
			return nil, fmt.Errorf("distance: result metric requires the (encrypted) catalog")
		}
		return &resultMetric{catalog: a.Catalog, opts: a.Exec, parallelism: a.Parallelism}, nil
	})
	Register("access-area", func(a Artifacts) (Metric, error) {
		x := a.AccessAreaX
		if x == 0 {
			x = DefaultOverlapX
		}
		if x <= 0 || x >= 1 {
			return nil, fmt.Errorf("distance: overlap value x=%v outside (0,1)", x)
		}
		if a.Domains == nil {
			return nil, fmt.Errorf("distance: access-area metric requires the (encrypted) domains")
		}
		return &accessAreaMetric{domains: a.Domains, x: x}, nil
	})
}

// keySize estimates one set element's footprint: strings carry their
// text (tuple keys grow with catalog rows), fixed-size struct keys a
// constant plus any string payload.
func keySize(k any) int64 {
	switch v := k.(type) {
	case string:
		return int64(len(v)) + 16
	case sqlfeature.Feature:
		return int64(len(v.Item)) + 24
	default:
		return 32
	}
}

// --- token (Definition 3) ---

type tokenMetric struct{}

func (tokenMetric) Name() string { return "token" }

// addTokenQueries tokenizes each query and interns its token set into
// p, in sorted token order for deterministic dictionary growth.
func addTokenQueries(ctx context.Context, p *internedPrepared[string], queries []string) error {
	for i, q := range queries {
		if err := ctx.Err(); err != nil {
			return err
		}
		set, err := sqlfeature.Tokens(q)
		if err != nil {
			return fmt.Errorf("distance: query %d: %w", i, err)
		}
		p.addSet(sortedStrings(set))
	}
	return nil
}

func (tokenMetric) Prepare(ctx context.Context, queries []string) (Prepared, error) {
	out := newInternedPrepared[string](len(queries))
	if err := addTokenQueries(ctx, out, queries); err != nil {
		return nil, err
	}
	return out, nil
}

func (m tokenMetric) Extend(ctx context.Context, prev Prepared, newQueries []string) (Prepared, error) {
	out, err := extendInterned[string](m, prev, len(newQueries))
	if err != nil {
		return nil, err
	}
	if err := addTokenQueries(ctx, out, newQueries); err != nil {
		return nil, err
	}
	return out, nil
}

// --- structure (SnipSuggest features) ---

type structureMetric struct{}

func (structureMetric) Name() string { return "structure" }

func addStructureQueries(ctx context.Context, p *internedPrepared[sqlfeature.Feature], queries []string) error {
	stmts, err := parseLog(ctx, queries)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		p.addSet(sortedFeatures(sqlfeature.Features(s)))
	}
	return nil
}

func (structureMetric) Prepare(ctx context.Context, queries []string) (Prepared, error) {
	out := newInternedPrepared[sqlfeature.Feature](len(queries))
	if err := addStructureQueries(ctx, out, queries); err != nil {
		return nil, err
	}
	return out, nil
}

func (m structureMetric) Extend(ctx context.Context, prev Prepared, newQueries []string) (Prepared, error) {
	out, err := extendInterned[sqlfeature.Feature](m, prev, len(newQueries))
	if err != nil {
		return nil, err
	}
	if err := addStructureQueries(ctx, out, newQueries); err != nil {
		return nil, err
	}
	return out, nil
}

// --- result (Definition 4) ---

type resultMetric struct {
	catalog     *db.Catalog
	opts        db.Options
	parallelism int
}

func (*resultMetric) Name() string { return "result" }

// addResultQueries executes each query (a fresh ResultComputer — query
// execution is deterministic, so tuple sets match what a combined
// Prepare would produce) and interns the tuple keys in sorted order.
func (m *resultMetric) addResultQueries(ctx context.Context, p *internedPrepared[string], queries []string) error {
	stmts, err := parseLog(ctx, queries)
	if err != nil {
		return err
	}
	rc := &ResultComputer{Catalog: m.catalog, Options: m.opts}
	if err := rc.Precompute(ctx, stmts, m.parallelism); err != nil {
		return err
	}
	for i, s := range stmts {
		set, err := rc.TupleSet(s)
		if err != nil {
			return fmt.Errorf("distance: result of query %d: %w", i, err)
		}
		p.addSet(sortedStrings(set))
	}
	return nil
}

func (m *resultMetric) Prepare(ctx context.Context, queries []string) (Prepared, error) {
	out := newInternedPrepared[string](len(queries))
	if err := m.addResultQueries(ctx, out, queries); err != nil {
		return nil, err
	}
	return out, nil
}

func (m *resultMetric) Extend(ctx context.Context, prev Prepared, newQueries []string) (Prepared, error) {
	out, err := extendInterned[string](m, prev, len(newQueries))
	if err != nil {
		return nil, err
	}
	if err := m.addResultQueries(ctx, out, newQueries); err != nil {
		return nil, err
	}
	return out, nil
}

// --- access-area (Definition 5) ---

type accessAreaMetric struct {
	domains map[string]accessarea.Domain
	x       float64
}

func (*accessAreaMetric) Name() string { return "access-area" }

// aaQuery is one query's precomputed access areas: the interned ids of
// its accessed attributes in ascending order, with the extracted areas
// in a parallel slice. Sorted ids let Distance merge two queries'
// attribute lists linearly instead of probing maps.
type aaQuery struct {
	ids   []uint32
	areas []accessarea.Area
}

type aaPrepared struct {
	attrs   *dict[string]
	queries []aaQuery
	x       float64
}

// addQuery extracts one statement's access areas, interning attribute
// names in sorted order (deterministic dictionary growth), and appends
// the id-sorted query.
func (p *aaPrepared) addQuery(s *sqlparse.SelectStmt, domains map[string]accessarea.Domain) error {
	names := sortedStrings(accessarea.AccessedAttributes(s))
	q := aaQuery{
		ids:   make([]uint32, 0, len(names)),
		areas: make([]accessarea.Area, 0, len(names)),
	}
	for _, a := range names {
		dom, ok := domains[a]
		if !ok {
			return fmt.Errorf("distance: no domain for accessed attribute %q", a)
		}
		area, _, err := accessarea.Extract(s, a, dom)
		if err != nil {
			return err
		}
		q.ids = append(q.ids, p.attrs.intern(a))
		q.areas = append(q.areas, area)
	}
	// Interning happened in name order; re-sort by id (ids assigned by
	// earlier queries may interleave) keeping the areas parallel.
	sort.Sort(&aaByID{q})
	p.queries = append(p.queries, q)
	return nil
}

// aaByID sorts an aaQuery's (id, area) pairs by id.
type aaByID struct{ q aaQuery }

func (s *aaByID) Len() int           { return len(s.q.ids) }
func (s *aaByID) Less(i, j int) bool { return s.q.ids[i] < s.q.ids[j] }
func (s *aaByID) Swap(i, j int) {
	s.q.ids[i], s.q.ids[j] = s.q.ids[j], s.q.ids[i]
	s.q.areas[i], s.q.areas[j] = s.q.areas[j], s.q.areas[i]
}

func (m *accessAreaMetric) Prepare(ctx context.Context, queries []string) (Prepared, error) {
	stmts, err := parseLog(ctx, queries)
	if err != nil {
		return nil, err
	}
	out := &aaPrepared{x: m.x, attrs: newDict[string](), queries: make([]aaQuery, 0, len(stmts))}
	for _, s := range stmts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := out.addQuery(s, m.domains); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (m *accessAreaMetric) Extend(ctx context.Context, prev Prepared, newQueries []string) (Prepared, error) {
	old, ok := prev.(*aaPrepared)
	if !ok {
		return nil, fmt.Errorf("distance: access-area: prepared state %T is not this metric's", prev)
	}
	stmts, err := parseLog(ctx, newQueries)
	if err != nil {
		return nil, err
	}
	out := &aaPrepared{x: old.x, attrs: old.attrs.clone()}
	out.queries = make([]aaQuery, len(old.queries), len(old.queries)+len(stmts))
	copy(out.queries, old.queries)
	for _, s := range stmts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := out.addQuery(s, m.domains); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (p *aaPrepared) Len() int { return len(p.queries) }

// SizeBytes implements Sizer: attribute names are held once in the
// dictionary; per query only ids and the extracted areas remain.
func (p *aaPrepared) SizeBytes() int64 {
	total := int64(64)
	for _, a := range p.attrs.elems {
		total += int64(len(a)) + 48
	}
	for _, q := range p.queries {
		total += 48 + int64(len(q.ids))*4
		for _, area := range q.areas {
			total += 48 + int64(len(area.Intervals()))*96
		}
	}
	return total
}

// Distance mirrors AccessArea over the precomputed areas: the mean δ
// over all attributes accessed by either query, computed by merging
// the two id-sorted attribute lists. An attribute accessed by only one
// query compares its area against the empty area, exactly as before.
func (p *aaPrepared) Distance(i, j int) (float64, error) {
	q1, q2 := &p.queries[i], &p.queries[j]
	n := 0
	var sum float64
	delta := func(a1, a2 accessarea.Area) {
		n++
		switch {
		case a1.Equal(a2):
			// δ = 0
		case a1.Overlaps(a2):
			sum += p.x
		default:
			sum += 1
		}
	}
	empty := accessarea.Empty()
	ii, jj := 0, 0
	for ii < len(q1.ids) && jj < len(q2.ids) {
		switch {
		case q1.ids[ii] == q2.ids[jj]:
			delta(q1.areas[ii], q2.areas[jj])
			ii++
			jj++
		case q1.ids[ii] < q2.ids[jj]:
			delta(q1.areas[ii], empty)
			ii++
		default:
			delta(empty, q2.areas[jj])
			jj++
		}
	}
	for ; ii < len(q1.ids); ii++ {
		delta(q1.areas[ii], empty)
	}
	for ; jj < len(q2.ids); jj++ {
		delta(empty, q2.areas[jj])
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// parseLog parses every query of a log, honoring ctx between queries.
func parseLog(ctx context.Context, queries []string) ([]*sqlparse.SelectStmt, error) {
	stmts := make([]*sqlparse.SelectStmt, len(queries))
	for i, q := range queries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := sqlparse.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("distance: query %d: %w", i, err)
		}
		stmts[i] = s
	}
	return stmts, nil
}
