package distance

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateSnapshotFixtures regenerates the golden snapshot fixtures
// under testdata/ when RUN_GEN_FIXTURES is set. It exists so the
// fixture bytes provably come from a real encoder run, not hand
// assembly; normal test runs skip it.
func TestGenerateSnapshotFixtures(t *testing.T) {
	if os.Getenv("RUN_GEN_FIXTURES") == "" {
		t.Skip("set RUN_GEN_FIXTURES=1 to regenerate testdata fixtures")
	}
	ctx := context.Background()
	arts := snapshotArtifacts(t)
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		metric, err := New(name, arts)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := metric.Prepare(ctx, snapshotLog)
		if err != nil {
			t.Fatal(err)
		}
		data, err := metric.(Snapshotter).MarshalPrepared(prep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", "snapshot_"+fixtureEra+"_"+name+".bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(data))
	}
}
