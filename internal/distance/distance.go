// Package distance implements the four SQL query-distance measures of
// the paper's Table I, plus the generic machinery (Jaccard, distance
// matrices) that distance-based mining consumes.
//
// Every measure works unchanged on plaintext and on encrypted artifacts:
// token distance tokenizes strings (plain or ciphertext), structure
// distance reads feature sets, result distance executes queries over a
// catalog (plain engine or encrypted engine via db.Options), and
// access-area distance runs the interval algebra over literals (plain
// values or OPE ciphertexts). Distance preservation (Definition 1) is
// then a checkable property: the same function applied to encrypted
// inputs must return the same numbers.
package distance

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/accessarea"
	"repro/internal/db"
	"repro/internal/sqlfeature"
	"repro/internal/sqlparse"
)

// Jaccard returns the Jaccard distance 1 − |a∩b| / |a∪b| of two string
// sets. Two empty sets have distance 0 (identical).
func Jaccard[K comparable](a, b map[K]bool) float64 {
	inter, union := 0, 0
	for k := range a {
		union++
		if b[k] {
			inter++
		}
	}
	for k := range b {
		if !a[k] {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// Token computes the token-based query-string distance (Definition 3):
// the Jaccard distance of the two queries' token sets.
func Token(q1, q2 string) (float64, error) {
	t1, err := sqlfeature.Tokens(q1)
	if err != nil {
		return 0, fmt.Errorf("distance: query 1: %w", err)
	}
	t2, err := sqlfeature.Tokens(q2)
	if err != nil {
		return 0, fmt.Errorf("distance: query 2: %w", err)
	}
	return Jaccard(t1, t2), nil
}

// Structure computes the query-structure distance: the Jaccard distance
// of the SnipSuggest feature sets [15].
func Structure(s1, s2 *sqlparse.SelectStmt) float64 {
	return Jaccard(sqlfeature.Features(s1), sqlfeature.Features(s2))
}

// ResultComputer computes query-result distances over one database
// state. It caches result tuple sets per query so an n×n matrix executes
// each query once. It is safe for concurrent use; for parallel matrix
// builds call Precompute first so the fan-out only reads the cache.
//
// For encrypted logs, Catalog is the encrypted catalog and Options
// carries the encrypted aggregate evaluator (Deployment.Aggregator); the
// Jaccard then runs over ciphertext tuples.
type ResultComputer struct {
	Catalog *db.Catalog
	Options db.Options

	mu    sync.Mutex
	cache map[*sqlparse.SelectStmt]map[string]bool
}

// TupleSet executes the query and returns its result tuple set: each
// tuple rendered to a canonical key. Per Definition 4, the *set* of
// result tuples is the characteristic (duplicates collapse).
func (rc *ResultComputer) TupleSet(stmt *sqlparse.SelectStmt) (map[string]bool, error) {
	rc.mu.Lock()
	if set, ok := rc.cache[stmt]; ok {
		rc.mu.Unlock()
		return set, nil
	}
	rc.mu.Unlock()
	res, err := db.ExecuteOpts(rc.Catalog, stmt, rc.Options)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool, len(res.Rows))
	for _, row := range res.Rows {
		var sb strings.Builder
		for _, v := range row {
			sb.WriteString(v.Key())
			sb.WriteByte(0)
		}
		set[sb.String()] = true
	}
	rc.mu.Lock()
	if rc.cache == nil {
		rc.cache = make(map[*sqlparse.SelectStmt]map[string]bool)
	}
	// Execution is deterministic, so a concurrent duplicate computes the
	// same set; keep the first stored one for pointer stability.
	if prev, ok := rc.cache[stmt]; ok {
		set = prev
	} else {
		rc.cache[stmt] = set
	}
	rc.mu.Unlock()
	return set, nil
}

// Precompute executes every statement once, filling the tuple-set cache
// with up to parallelism concurrent executions. After it returns, any
// number of goroutines may call Distance/TupleSet on the same statements
// without executing queries again.
func (rc *ResultComputer) Precompute(ctx context.Context, stmts []*sqlparse.SelectStmt, parallelism int) error {
	return parallelFor(ctx, len(stmts), parallelism, func(ctx context.Context, i int) error {
		if _, err := rc.TupleSet(stmts[i]); err != nil {
			return fmt.Errorf("distance: result of query %d: %w", i, err)
		}
		return nil
	})
}

// Distance returns the query-result distance: the Jaccard distance of
// the result tuple sets.
func (rc *ResultComputer) Distance(s1, s2 *sqlparse.SelectStmt) (float64, error) {
	t1, err := rc.TupleSet(s1)
	if err != nil {
		return 0, fmt.Errorf("distance: result of query 1: %w", err)
	}
	t2, err := rc.TupleSet(s2)
	if err != nil {
		return 0, fmt.Errorf("distance: result of query 2: %w", err)
	}
	return Jaccard(t1, t2), nil
}

// DefaultOverlapX is the paper's default for the partial-overlap value x
// in Definition 5.
const DefaultOverlapX = 0.5

// AccessAreaParams configures the access-area distance.
type AccessAreaParams struct {
	// Domains maps attribute name to its domain ("Domains" shared
	// information in Table I).
	Domains map[string]accessarea.Domain
	// X is δ's value for partially overlapping areas; 0 means
	// DefaultOverlapX. Must lie in (0, 1).
	X float64
}

// AccessArea computes the query-access-area distance d_AE (Definition 5):
// the mean over all attributes accessed by either query of
//
//	δ_A = 0   if access_A(Q1) = access_A(Q2)
//	    = x   if the areas overlap
//	    = 1   otherwise.
//
// Two queries accessing no attributes at all have distance 0.
func AccessArea(s1, s2 *sqlparse.SelectStmt, p AccessAreaParams) (float64, error) {
	x := p.X
	if x == 0 {
		x = DefaultOverlapX
	}
	if x <= 0 || x >= 1 {
		return 0, fmt.Errorf("distance: overlap value x=%v outside (0,1)", x)
	}
	attrs := make(map[string]bool)
	for a := range accessarea.AccessedAttributes(s1) {
		attrs[a] = true
	}
	for a := range accessarea.AccessedAttributes(s2) {
		attrs[a] = true
	}
	if len(attrs) == 0 {
		return 0, nil
	}
	var sum float64
	for a := range attrs {
		dom, ok := p.Domains[a]
		if !ok {
			return 0, fmt.Errorf("distance: no domain for accessed attribute %q", a)
		}
		a1, _, err := accessarea.Extract(s1, a, dom)
		if err != nil {
			return 0, err
		}
		a2, _, err := accessarea.Extract(s2, a, dom)
		if err != nil {
			return 0, err
		}
		switch {
		case a1.Equal(a2):
			// δ = 0
		case a1.Overlaps(a2):
			sum += x
		default:
			sum += 1
		}
	}
	return sum / float64(len(attrs)), nil
}

// Matrix is a symmetric pairwise distance matrix.
type Matrix [][]float64

// NewMatrix allocates a zeroed n×n matrix over one contiguous backing
// array: two allocations total instead of n+1, and rows adjacent in
// memory so triangle sweeps stay in cache.
func NewMatrix(n int) Matrix {
	backing := make([]float64, n*n)
	m := make(Matrix, n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	return m
}

// PairFunc returns the distance of items i and j. BuildMatrix only calls
// it with i < j; with parallelism > 1 it must be safe for concurrent use.
type PairFunc func(i, j int) (float64, error)

// Tiling parameters for the matrix triangle. A work unit is a band of
// matrixBand rows; within a band pairs are visited in column tiles of
// matrixTile so the band's bitsets and the destination cells stay
// cache-resident. Cancellation is checked once per band-row per tile —
// bounded staleness of matrixTile pairs — instead of per pair, keeping
// the per-pair loop free of synchronized loads.
const (
	matrixBand = 16
	matrixTile = 256
)

// BuildMatrix fills an n×n matrix from a pairwise distance function,
// computing each unordered pair of the upper triangle once. With
// parallelism > 1, bands of rows are distributed over a worker pool;
// the result is entry-wise identical to the sequential build. The
// build is cancellable: when ctx is done, BuildMatrix stops within at
// most one column tile of pairs and returns the context's error. The
// matrix is one contiguous allocation; the build itself allocates
// nothing per pair.
func BuildMatrix(ctx context.Context, n, parallelism int, f PairFunc) (Matrix, error) {
	m := NewMatrix(n)
	bands := (n + matrixBand - 1) / matrixBand
	// Workers pull bands dynamically, so the shrinking upper-triangle
	// bands still balance. Each pair (i,j) is computed by exactly one
	// band's worker, which owns both cell writes — cells of distinct
	// pairs never alias, so no locking is needed.
	band := func(ctx context.Context, b int) error {
		r0 := b * matrixBand
		r1 := min(r0+matrixBand, n)
		for c0 := r0 + 1; c0 < n; c0 += matrixTile {
			c1 := min(c0+matrixTile, n)
			for i := r0; i < r1; i++ {
				lo := max(i+1, c0)
				if lo >= c1 {
					continue
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				row := m[i]
				for j := lo; j < c1; j++ {
					d, err := f(i, j)
					if err != nil {
						return fmt.Errorf("distance: pair (%d,%d): %w", i, j, err)
					}
					row[j] = d
					m[j][i] = d
				}
			}
		}
		return nil
	}
	if err := parallelFor(ctx, bands, parallelism, band); err != nil {
		return nil, err
	}
	return m, nil
}

// BuildRow fills out with the distances from item q to every item of
// [0, n) — one matrix row without materializing the matrix. out[q] is 0;
// len(out) must be n. Like BuildMatrix it distributes over a worker pool
// and is cancellable via ctx.
func BuildRow(ctx context.Context, n, parallelism, q int, f PairFunc, out []float64) error {
	if len(out) != n {
		return fmt.Errorf("distance: row buffer has %d entries, want %d", len(out), n)
	}
	if q < 0 || q >= n {
		return fmt.Errorf("distance: row index %d outside [0,%d)", q, n)
	}
	return parallelFor(ctx, n, parallelism, func(ctx context.Context, j int) error {
		if j == q {
			out[j] = 0
			return nil
		}
		i, k := q, j
		if i > k {
			i, k = k, i
		}
		d, err := f(i, k)
		if err != nil {
			return fmt.Errorf("distance: pair (%d,%d): %w", i, k, err)
		}
		out[j] = d
		return nil
	})
}

// parallelFor runs fn(ctx, i) for every i in [0, n). parallelism <= 1
// runs inline; otherwise a worker pool pulls indices from an atomic
// counter. The first error cancels the remaining work and is returned;
// cancellation of ctx itself surfaces as its error.
func parallelFor(ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int) error) error {
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	if parallelism > n {
		parallelism = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(cctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		// A worker that merely observed the parent cancellation reports
		// cctx's error; prefer the caller-visible ctx error in that case.
		if err := ctx.Err(); err != nil && firstErr == context.Canceled {
			return err
		}
		return firstErr
	}
	return ctx.Err()
}

// MaxAbsDiff returns the largest absolute entry-wise difference between
// two equally-sized matrices — the empirical check of Definition 1.
func MaxAbsDiff(a, b Matrix) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("distance: matrix sizes differ: %d vs %d", len(a), len(b))
	}
	var max float64
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return 0, fmt.Errorf("distance: row %d sizes differ", i)
		}
		for j := range a[i] {
			d := a[i][j] - b[i][j]
			if d < 0 {
				d = -d
			}
			if d > max {
				max = d
			}
		}
	}
	return max, nil
}
