package distance

import (
	"context"
	"fmt"
)

// AppendRows computes the rows the extended matrix gains when k new
// items join an existing n-item matrix: rows n..total-1, each of full
// width total. Only the genuinely new pairs are evaluated — n·k pairs
// between old and new items plus k·(k−1)/2 pairs among the new items;
// entries between two old items never touch f. Pairs between two new
// rows are computed once and mirrored. With parallelism > 1 the new
// rows are distributed over a worker pool; the result is entry-wise
// identical to the sequential path. Cancelling ctx aborts between pairs
// with the context's error.
func AppendRows(ctx context.Context, n, total, parallelism int, f PairFunc) ([][]float64, error) {
	if n < 0 || total < n {
		return nil, fmt.Errorf("distance: append from %d to %d items", n, total)
	}
	k := total - n
	// One contiguous backing for the k new rows — two allocations, and
	// zero more anywhere in the build loop.
	backing := make([]float64, k*total)
	rows := make([][]float64, k)
	for r := range rows {
		rows[r] = backing[r*total : (r+1)*total : (r+1)*total]
	}
	// One work unit per new row i = n+r. Each row computes its pairs
	// against all old items and against the *later* new rows (j > i);
	// the earlier new rows' pairs were produced by those rows' workers
	// and mirrored here, so cells of distinct pairs never alias.
	// Cancellation is checked once per appendTile pairs, like the
	// BuildMatrix tiles.
	row := func(ctx context.Context, r int) error {
		const appendTile = matrixTile
		i := n + r
		out := rows[r]
		for j := 0; j < n; j++ {
			if j%appendTile == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			d, err := f(j, i)
			if err != nil {
				return fmt.Errorf("distance: pair (%d,%d): %w", j, i, err)
			}
			out[j] = d
		}
		for j := i + 1; j < total; j++ {
			if (j-i-1)%appendTile == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			d, err := f(i, j)
			if err != nil {
				return fmt.Errorf("distance: pair (%d,%d): %w", i, j, err)
			}
			out[j] = d
			rows[j-n][i] = d
		}
		return nil
	}
	if err := parallelFor(ctx, k, parallelism, row); err != nil {
		return nil, err
	}
	return rows, nil
}

// ExtendMatrix grows an existing n×n matrix to total×total by computing
// only the new entries (see AppendRows); the old n×n block is copied,
// never recomputed. The result is entry-wise identical to a from-scratch
// BuildMatrix over all total items. The input matrix is not modified.
func ExtendMatrix(ctx context.Context, old Matrix, total, parallelism int, f PairFunc) (Matrix, error) {
	n := len(old)
	rows, err := AppendRows(ctx, n, total, parallelism, f)
	if err != nil {
		return nil, err
	}
	return SpliceRows(old, rows)
}

// SpliceRows assembles the extended total×total matrix from the old n×n
// block and the k = total−n new full-width rows (AppendRows' output, or
// the same rows received over a wire). Symmetry fills the old rows' new
// columns from the new rows.
func SpliceRows(old Matrix, rows [][]float64) (Matrix, error) {
	n := len(old)
	total := n + len(rows)
	for i := 0; i < n; i++ {
		if len(old[i]) != n {
			return nil, fmt.Errorf("distance: old matrix row %d has %d entries, want %d", i, len(old[i]), n)
		}
	}
	for r, row := range rows {
		if len(row) != total {
			return nil, fmt.Errorf("distance: appended row %d has %d entries, want %d", r, len(row), total)
		}
	}
	m := NewMatrix(total)
	for i := 0; i < n; i++ {
		copy(m[i], old[i])
	}
	for r, row := range rows {
		copy(m[n+r], row)
		for j := 0; j < n; j++ {
			m[j][n+r] = row[j]
		}
	}
	return m, nil
}

// AppendPairs is the number of pair computations an append of k items
// onto n existing items performs: n·k pairs across the generations plus
// k·(k−1)/2 among the newcomers. A from-scratch rebuild performs
// (n+k)·(n+k−1)/2 — the difference is the incremental path's entire
// point, and benchmarks assert it with an entry-computation counter.
func AppendPairs(n, k int) int {
	return n*k + k*(k-1)/2
}
