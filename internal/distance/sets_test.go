package distance

import (
	"context"
	"sort"
	"testing"
)

// setSourceLog is a small log every set-based metric can prepare.
var setSourceLog = []string{
	"SELECT a FROM t WHERE a > 1",
	"SELECT a, b FROM t WHERE b < 5",
	"SELECT c FROM u",
	"SELECT a FROM t WHERE a > 1 ORDER BY a",
}

func hashesOf(t *testing.T, p Prepared, i int) []uint64 {
	t.Helper()
	src, ok := p.(SetSource)
	if !ok {
		t.Fatalf("prepared state %T does not implement SetSource", p)
	}
	out := src.AppendElementHashes(nil, i)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// TestSetSourceImplementations pins which prepared states expose element
// hashes: the three Jaccard measures do, access-area does not.
func TestSetSourceImplementations(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"token", "structure"} {
		m, err := New(name, Artifacts{})
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		p, err := m.Prepare(ctx, setSourceLog)
		if err != nil {
			t.Fatalf("%s Prepare: %v", name, err)
		}
		src, ok := p.(SetSource)
		if !ok {
			t.Fatalf("%s prepared state %T is not a SetSource", name, p)
		}
		for i := 0; i < p.Len(); i++ {
			if got := src.AppendElementHashes(nil, i); len(got) == 0 {
				t.Errorf("%s query %d: no element hashes", name, i)
			}
		}
	}
	if _, ok := any(&aaPrepared{}).(SetSource); ok {
		t.Fatal("access-area prepared state must not implement SetSource (not a set resemblance)")
	}
}

// TestSetSourceStableAcrossExtend pins the cross-process determinism the
// journal codec depends on: hashes of the old queries are unchanged by
// Extend, and a fresh Prepare of the combined log agrees element-wise.
func TestSetSourceStableAcrossExtend(t *testing.T) {
	ctx := context.Background()
	m, err := New("token", Artifacts{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.Prepare(ctx, setSourceLog[:2])
	if err != nil {
		t.Fatal(err)
	}
	ext, err := m.(Extender).Extend(ctx, base, setSourceLog[2:])
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.Prepare(ctx, setSourceLog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(setSourceLog); i++ {
		a, b := hashesOf(t, ext, i), hashesOf(t, full, i)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d hashes", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d hash %d: extend %#x != prepare %#x", i, j, a[j], b[j])
			}
		}
	}
	for i := 0; i < 2; i++ {
		a, b := hashesOf(t, base, i), hashesOf(t, ext, i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("old query %d changed hash after Extend", i)
			}
		}
	}
}
