package distance

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/accessarea"
	"repro/internal/db"
	"repro/internal/sqlparse"
	"repro/internal/value"
)

func set(items ...string) map[string]bool {
	m := make(map[string]bool)
	for _, s := range items {
		m[s] = true
	}
	return m
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b map[string]bool
		want float64
	}{
		{set("a", "b"), set("a", "b"), 0},
		{set("a"), set("b"), 1},
		{set("a", "b", "c"), set("b", "c", "d"), 0.5},
		{set(), set(), 0},
		{set("a"), set(), 1},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardMetricProperties(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa, sb := make(map[uint8]bool), make(map[uint8]bool)
		for _, x := range a {
			sa[x%16] = true
		}
		for _, x := range b {
			sb[x%16] = true
		}
		d1 := Jaccard(sa, sb)
		d2 := Jaccard(sb, sa)
		// Symmetry, range, identity.
		if d1 != d2 || d1 < 0 || d1 > 1 {
			return false
		}
		return Jaccard(sa, sa) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenDistance(t *testing.T) {
	// Identical queries: distance 0.
	d, err := Token("SELECT a FROM r", "SELECT a FROM r")
	if err != nil || d != 0 {
		t.Fatalf("identical: %v, %v", d, err)
	}
	// Paper-style example: one token differs.
	d1, _ := Token("SELECT a FROM r WHERE b > 5", "SELECT a FROM r WHERE b > 7")
	if d1 <= 0 || d1 >= 1 {
		t.Fatalf("near-identical distance = %v", d1)
	}
	d2, _ := Token("SELECT a FROM r WHERE b > 5", "SELECT zz FROM qq WHERE yy < 3")
	if d2 <= d1 {
		t.Fatalf("more different queries must be farther: %v <= %v", d2, d1)
	}
	if _, err := Token("bad @", "SELECT a FROM r"); err == nil {
		t.Fatal("invalid query must error")
	}
}

func TestStructureDistance(t *testing.T) {
	s1 := sqlparse.MustParse("SELECT a FROM r WHERE b > 5")
	s2 := sqlparse.MustParse("SELECT a FROM r WHERE b > 999999")
	if d := Structure(s1, s2); d != 0 {
		t.Fatalf("constants must not affect structure distance: %v", d)
	}
	s3 := sqlparse.MustParse("SELECT a FROM r WHERE c < 5")
	if d := Structure(s1, s3); d <= 0 {
		t.Fatalf("different predicates must differ: %v", d)
	}
}

func resultFixture(t *testing.T) *db.Catalog {
	t.Helper()
	cat := db.NewCatalog()
	tbl := cat.MustCreate("r", []db.Column{{Name: "a", Type: db.TypeInt}, {Name: "b", Type: db.TypeInt}})
	for i := int64(0); i < 10; i++ {
		tbl.MustInsert(db.Row{value.Int(i), value.Int(i * 10)})
	}
	return cat
}

func TestResultDistance(t *testing.T) {
	rc := &ResultComputer{Catalog: resultFixture(t)}
	q := func(s string) *sqlparse.SelectStmt { return sqlparse.MustParse(s) }

	// Same result set: distance 0 even for different query text.
	d, err := rc.Distance(q("SELECT a FROM r WHERE a < 5"), q("SELECT a FROM r WHERE a <= 4"))
	if err != nil || d != 0 {
		t.Fatalf("equal results: %v, %v", d, err)
	}
	// Disjoint results: distance 1.
	d, _ = rc.Distance(q("SELECT a FROM r WHERE a < 3"), q("SELECT a FROM r WHERE a > 7"))
	if d != 1 {
		t.Fatalf("disjoint results: %v", d)
	}
	// Overlap: 0..5 vs 3..9 → |∩|=3 (3,4,5), |∪|=10.
	d, _ = rc.Distance(q("SELECT a FROM r WHERE a <= 5"), q("SELECT a FROM r WHERE a >= 3"))
	if math.Abs(d-0.7) > 1e-12 {
		t.Fatalf("overlap distance = %v, want 0.7", d)
	}
}

func TestResultDistanceCaches(t *testing.T) {
	rc := &ResultComputer{Catalog: resultFixture(t)}
	s := sqlparse.MustParse("SELECT a FROM r")
	if _, err := rc.TupleSet(s); err != nil {
		t.Fatal(err)
	}
	// Mutating the catalog after caching must not change the cached set.
	tbl, _ := rc.Catalog.Table("r")
	tbl.MustInsert(db.Row{value.Int(99), value.Int(990)})
	set2, _ := rc.TupleSet(s)
	if len(set2) != 10 {
		t.Fatalf("cache miss: %d", len(set2))
	}
}

func TestResultDistanceError(t *testing.T) {
	rc := &ResultComputer{Catalog: resultFixture(t)}
	_, err := rc.Distance(sqlparse.MustParse("SELECT nosuch FROM r"), sqlparse.MustParse("SELECT a FROM r"))
	if err == nil {
		t.Fatal("bad query must error")
	}
}

var testDomains = map[string]accessarea.Domain{
	"x": {Min: value.Int(0), Max: value.Int(100)},
	"y": {Min: value.Int(0), Max: value.Int(100)},
}

func aaDist(t *testing.T, q1, q2 string) float64 {
	t.Helper()
	d, err := AccessArea(sqlparse.MustParse(q1), sqlparse.MustParse(q2), AccessAreaParams{Domains: testDomains})
	if err != nil {
		t.Fatalf("AccessArea(%q,%q): %v", q1, q2, err)
	}
	return d
}

func TestAccessAreaDistanceDefinition5(t *testing.T) {
	// Equal areas → 0.
	if d := aaDist(t, "SELECT a FROM r WHERE x BETWEEN 1 AND 5", "SELECT b FROM r WHERE x >= 1 AND x <= 5"); d != 0 {
		t.Fatalf("equal areas: %v", d)
	}
	// Overlapping areas → x (0.5 default).
	if d := aaDist(t, "SELECT a FROM r WHERE x < 50", "SELECT a FROM r WHERE x > 20"); d != 0.5 {
		t.Fatalf("overlap: %v", d)
	}
	// Disjoint areas → 1.
	if d := aaDist(t, "SELECT a FROM r WHERE x < 20", "SELECT a FROM r WHERE x > 50"); d != 1 {
		t.Fatalf("disjoint: %v", d)
	}
	// Two attributes: x equal (0), y disjoint (1) → mean 0.5.
	if d := aaDist(t, "SELECT a FROM r WHERE x = 5 AND y < 10", "SELECT a FROM r WHERE x = 5 AND y > 90"); d != 0.5 {
		t.Fatalf("two attrs: %v", d)
	}
	// Attribute accessed by one query only → its δ = 1.
	if d := aaDist(t, "SELECT a FROM r WHERE x = 5", "SELECT a FROM r WHERE x = 5 AND y = 2"); d != 0.5 {
		t.Fatalf("one-sided attr: %v", d)
	}
	// No accessed attributes at all → 0.
	if d := aaDist(t, "SELECT a FROM r", "SELECT b FROM r"); d != 0 {
		t.Fatalf("no predicates: %v", d)
	}
}

func TestAccessAreaCustomX(t *testing.T) {
	d, err := AccessArea(
		sqlparse.MustParse("SELECT a FROM r WHERE x < 50"),
		sqlparse.MustParse("SELECT a FROM r WHERE x > 20"),
		AccessAreaParams{Domains: testDomains, X: 0.25})
	if err != nil || d != 0.25 {
		t.Fatalf("custom x: %v, %v", d, err)
	}
	if _, err := AccessArea(sqlparse.MustParse("SELECT a FROM r WHERE x = 1"), sqlparse.MustParse("SELECT a FROM r WHERE x = 1"),
		AccessAreaParams{Domains: testDomains, X: 1.5}); err == nil {
		t.Fatal("x outside (0,1) must error")
	}
}

func TestAccessAreaMissingDomain(t *testing.T) {
	_, err := AccessArea(
		sqlparse.MustParse("SELECT a FROM r WHERE unknown_attr = 1"),
		sqlparse.MustParse("SELECT a FROM r"),
		AccessAreaParams{Domains: testDomains})
	if err == nil {
		t.Fatal("missing domain must error")
	}
}

func TestBuildMatrix(t *testing.T) {
	m, err := BuildMatrix(context.Background(), 4, 1, func(i, j int) (float64, error) {
		return float64(j - i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m[0][3] != 3 || m[3][0] != 3 || m[1][1] != 0 {
		t.Fatalf("matrix = %v", m)
	}
}

func TestBuildMatrixParallelMatchesSequential(t *testing.T) {
	f := func(i, j int) (float64, error) {
		return float64(i*31+j) / 7, nil
	}
	const n = 37
	seq, err := BuildMatrix(context.Background(), n, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 64} {
		par, err := BuildMatrix(context.Background(), n, workers, f)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		d, err := MaxAbsDiff(seq, par)
		if err != nil || d != 0 {
			t.Fatalf("parallelism %d: max diff %v, %v", workers, d, err)
		}
	}
}

func TestBuildMatrixErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := BuildMatrix(context.Background(), 20, workers, func(i, j int) (float64, error) {
			if i == 7 && j == 11 {
				return 0, boom
			}
			return 0, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("parallelism %d: err = %v, want %v", workers, err, boom)
		}
	}
}

func TestBuildMatrixCancelMidBuild(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{}, 1)
		f := func(i, j int) (float64, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			time.Sleep(time.Millisecond)
			return 0, nil
		}
		go func() {
			<-started
			cancel()
		}()
		start := time.Now()
		_, err := BuildMatrix(ctx, 100, workers, f) // 4950 pairs ≈ 5s if run to completion
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("parallelism %d: cancellation took %v", workers, elapsed)
		}
	}
}

func TestBuildMatrixPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildMatrix(ctx, 4, 4, func(i, j int) (float64, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestResultComputerConcurrent(t *testing.T) {
	rc := &ResultComputer{Catalog: resultFixture(t)}
	stmts := []*sqlparse.SelectStmt{
		sqlparse.MustParse("SELECT a FROM r WHERE a < 5"),
		sqlparse.MustParse("SELECT a FROM r WHERE a >= 5"),
		sqlparse.MustParse("SELECT b FROM r"),
		sqlparse.MustParse("SELECT a, b FROM r WHERE a = 3"),
	}
	if err := rc.Precompute(context.Background(), stmts, 4); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range stmts {
				for j := range stmts {
					if _, err := rc.Distance(stmts[i], stmts[j]); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMetricRegistry(t *testing.T) {
	names := Names()
	want := []string{"access-area", "result", "structure", "token"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if _, err := New("nosuch", Artifacts{}); err == nil {
		t.Fatal("unknown metric must error")
	}
	if _, err := New("result", Artifacts{}); err == nil {
		t.Fatal("result without catalog must error")
	}
	if _, err := New("access-area", Artifacts{}); err == nil {
		t.Fatal("access-area without domains must error")
	}
	if _, err := New("access-area", Artifacts{Domains: testDomains, AccessAreaX: 1.5}); err == nil {
		t.Fatal("x outside (0,1) must error")
	}
}

// TestMetricsMatchDirectFunctions pins the prepared-path distances to the
// original per-pair functions, for every registered measure.
func TestMetricsMatchDirectFunctions(t *testing.T) {
	queries := []string{
		"SELECT a FROM r WHERE a < 5",
		"SELECT a FROM r WHERE a <= 4",
		"SELECT b FROM r WHERE a > 7 AND b < 50",
		"SELECT a, b FROM r WHERE a = 3 OR b = 90",
		"SELECT a FROM r",
	}
	domains := map[string]accessarea.Domain{
		"a": {Min: value.Int(0), Max: value.Int(100)},
		"b": {Min: value.Int(0), Max: value.Int(1000)},
	}
	cat := resultFixture(t)
	stmts := make([]*sqlparse.SelectStmt, len(queries))
	for i, q := range queries {
		stmts[i] = sqlparse.MustParse(q)
	}
	rc := &ResultComputer{Catalog: cat}
	direct := map[string]PairFunc{
		"token": func(i, j int) (float64, error) { return Token(queries[i], queries[j]) },
		"structure": func(i, j int) (float64, error) {
			return Structure(stmts[i], stmts[j]), nil
		},
		"result": func(i, j int) (float64, error) { return rc.Distance(stmts[i], stmts[j]) },
		"access-area": func(i, j int) (float64, error) {
			return AccessArea(stmts[i], stmts[j], AccessAreaParams{Domains: domains})
		},
	}
	arts := Artifacts{Catalog: cat, Domains: domains, Parallelism: 4}
	for _, name := range Names() {
		m, err := New(name, arts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("Name() = %q, want %q", m.Name(), name)
		}
		prep, err := m.Prepare(context.Background(), queries)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prep.Len() != len(queries) {
			t.Fatalf("%s: Len() = %d", name, prep.Len())
		}
		got, err := BuildMatrix(context.Background(), prep.Len(), 4, prep.Distance)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := BuildMatrix(context.Background(), len(queries), 1, direct[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, err := MaxAbsDiff(got, want)
		if err != nil || d > 1e-12 {
			t.Fatalf("%s: prepared path differs from direct path by %v (%v)", name, d, err)
		}
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := Matrix{{0, 1}, {1, 0}}
	b := Matrix{{0, 1.25}, {1.25, 0}}
	d, err := MaxAbsDiff(a, b)
	if err != nil || math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("diff = %v, %v", d, err)
	}
	if _, err := MaxAbsDiff(a, Matrix{{0}}); err == nil {
		t.Fatal("size mismatch must error")
	}
}
