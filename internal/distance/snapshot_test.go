package distance

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/accessarea"
	"repro/internal/db"
	"repro/internal/value"
)

// snapshotLog is a small log exercising every clause the metrics care
// about: shared and distinct tokens, joins, aggregates, and predicates
// with points, ranges, and disjunctions for the access-area algebra.
var snapshotLog = []string{
	"SELECT a FROM t WHERE x = 1",
	"SELECT a, b FROM t WHERE x > 3 AND y < 10",
	"SELECT COUNT(*) FROM t WHERE x BETWEEN 2 AND 8",
	"SELECT b FROM t WHERE x = 1 OR y >= 7",
	"SELECT a FROM t",
}

func snapshotArtifacts(t *testing.T) Artifacts {
	t.Helper()
	cat := db.NewCatalog()
	table, err := cat.Create("t", []db.Column{
		{Name: "a", Type: db.TypeString},
		{Name: "b", Type: db.TypeInt},
		{Name: "x", Type: db.TypeInt},
		{Name: "y", Type: db.TypeInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := table.Insert(db.Row{
			value.Str([]string{"p", "q", "r"}[i%3]),
			value.Int(int64(i)),
			value.Int(int64(i % 5)),
			value.Int(int64(i % 9)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return Artifacts{
		Catalog: cat,
		Domains: map[string]accessarea.Domain{
			"x": {Min: value.Int(0), Max: value.Int(100)},
			"y": {Min: value.Int(0), Max: value.Int(100)},
		},
	}
}

// TestSnapshotRoundTrip is the codec's exactness contract for all four
// metrics: marshal → unmarshal must produce entry-wise identical
// distances, and marshaling twice must produce identical bytes
// (determinism — the property compaction relies on).
func TestSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	arts := snapshotArtifacts(t)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			metric, err := New(name, arts)
			if err != nil {
				t.Fatal(err)
			}
			snap, ok := metric.(Snapshotter)
			if !ok {
				t.Fatalf("metric %s does not implement Snapshotter", name)
			}
			prep, err := metric.Prepare(ctx, snapshotLog)
			if err != nil {
				t.Fatal(err)
			}
			data, err := snap.MarshalPrepared(prep)
			if err != nil {
				t.Fatal(err)
			}
			again, err := snap.MarshalPrepared(prep)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Error("marshaling the same state twice produced different bytes")
			}
			restored, err := snap.UnmarshalPrepared(data)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Len() != prep.Len() {
				t.Fatalf("restored Len() = %d, want %d", restored.Len(), prep.Len())
			}
			for i := 0; i < prep.Len(); i++ {
				for j := i + 1; j < prep.Len(); j++ {
					want, err := prep.Distance(i, j)
					if err != nil {
						t.Fatal(err)
					}
					got, err := restored.Distance(i, j)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("restored distance(%d,%d) = %v, want %v", i, j, got, want)
					}
				}
			}
			// A restored state keeps extending incrementally.
			if ext, ok := metric.(Extender); ok {
				grown, err := ext.Extend(ctx, restored, []string{"SELECT b FROM t WHERE y = 2"})
				if err != nil {
					t.Fatalf("Extend over a restored state: %v", err)
				}
				if grown.Len() != prep.Len()+1 {
					t.Errorf("extended restored state Len() = %d, want %d", grown.Len(), prep.Len()+1)
				}
			}
		})
	}
}

// TestSnapshotRejectsGarbage pins the decoder's failure modes: bad
// magic, cross-metric tags, and truncation all error instead of
// producing a silently wrong prepared state.
func TestSnapshotRejectsGarbage(t *testing.T) {
	ctx := context.Background()
	arts := snapshotArtifacts(t)
	token, _ := New("token", arts)
	aa, _ := New("access-area", arts)
	prep, err := token.Prepare(ctx, snapshotLog)
	if err != nil {
		t.Fatal(err)
	}
	data, err := token.(Snapshotter).MarshalPrepared(prep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := token.(Snapshotter).UnmarshalPrepared([]byte("not a snapshot")); err == nil {
		t.Error("bad magic decoded without error")
	}
	if _, err := aa.(Snapshotter).UnmarshalPrepared(data); err == nil {
		t.Error("token snapshot decoded as access-area state")
	}
	if _, err := token.(Snapshotter).UnmarshalPrepared(data[:len(data)-1]); err == nil {
		t.Error("truncated snapshot decoded without error")
	}
	if _, err := token.(Snapshotter).UnmarshalPrepared(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("snapshot with trailing bytes decoded without error")
	}
	if _, err := token.(Snapshotter).MarshalPrepared(&aaPrepared{}); err == nil {
		t.Error("marshaling a foreign prepared state succeeded")
	}
}
