package distance

import (
	"math/bits"
	"sort"

	"repro/internal/sqlfeature"
)

// This file is the interned hot-path representation of the set-based
// prepared states. The per-pair cost of the old representation — one
// map[K]bool probe per element of both sets, hashing strings on every
// probe — dominated every matrix build. Interning replaces it: a
// per-prepared-state dictionary assigns each distinct element a dense
// uint32 id at Prepare/Extend time (paying the hashing once per
// element instead of once per pair), and each query's element set
// becomes a packed []uint64 bitset, so one pair costs a popcount-AND
// sweep over words. The distance math is unchanged — intersection and
// union are the same integers, so Jaccard comes out bit-identical to
// the map kernel (MapKernel pins this in tests and benchmarks).

// dict is the per-prepared-state interning dictionary: element → dense
// id, plus the reverse table and each element's stable 64-bit content
// hash (computed once here, consumed by SetSource). Ids are assigned
// in first-occurrence order, which is deterministic because every
// caller interns each query's elements in sorted order — so a Prepare
// over a whole log and a Prepare-then-Extend over its split grow
// identical dictionaries, and snapshots marshal to identical bytes.
type dict[K comparable] struct {
	index  map[K]uint32
	elems  []K
	hashes []uint64
}

func newDict[K comparable]() *dict[K] {
	return &dict[K]{index: make(map[K]uint32)}
}

// intern returns k's dense id, assigning the next one on first sight.
func (d *dict[K]) intern(k K) uint32 {
	if id, ok := d.index[k]; ok {
		return id
	}
	id := uint32(len(d.elems))
	d.index[k] = id
	d.elems = append(d.elems, k)
	d.hashes = append(d.hashes, elementHash(k))
	return id
}

// clone deep-copies the dictionary. Extend works on a clone so the
// previous prepared state stays immutable (the Extender contract) even
// though the new state keeps interning into the same id space.
func (d *dict[K]) clone() *dict[K] {
	out := &dict[K]{
		index:  make(map[K]uint32, len(d.index)),
		elems:  append([]K(nil), d.elems...),
		hashes: append([]uint64(nil), d.hashes...),
	}
	for k, id := range d.index {
		out.index[k] = id
	}
	return out
}

// --- packed bitsets over dense ids ---

const wordBits = 64

// bitsetSet returns words with bit id set, growing as needed. Bitsets
// are sized to the highest id they contain, not the dictionary — old
// queries' bitsets stay short as the dictionary grows under appends.
func bitsetSet(words []uint64, id uint32) []uint64 {
	w := int(id) / wordBits
	for len(words) <= w {
		words = append(words, 0)
	}
	words[w] |= 1 << (uint(id) % wordBits)
	return words
}

// bitsetAndCount returns |a ∩ b|: popcount of the word-wise AND over
// the shared prefix (bits past either set's last word are absent from
// it, so they cannot intersect).
func bitsetAndCount(a, b []uint64) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// bitsetCount returns the number of set bits.
func bitsetCount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// appendBitsetIDs appends the set ids in ascending order.
func appendBitsetIDs(dst []uint32, words []uint64) []uint32 {
	for w, word := range words {
		base := uint32(w * wordBits)
		for word != 0 {
			dst = append(dst, base+uint32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// internedPrepared is the hot-path prepared state of the set-based
// metrics (token, structure, result): one shared interning dictionary
// and one packed bitset per query. Distance is a popcount-AND sweep —
// no map probes, no string hashing, zero allocations per pair.
type internedPrepared[K comparable] struct {
	dict  *dict[K]
	sets  [][]uint64
	cards []int // popcount of sets[i], precomputed
}

func newInternedPrepared[K comparable](nHint int) *internedPrepared[K] {
	return &internedPrepared[K]{
		dict:  newDict[K](),
		sets:  make([][]uint64, 0, nHint),
		cards: make([]int, 0, nHint),
	}
}

// addSet interns one query's elements (already sorted and de-duplicated
// by the caller — sorted order is what keeps dictionary growth
// deterministic) and appends its bitset.
func (p *internedPrepared[K]) addSet(elems []K) {
	var words []uint64
	for _, k := range elems {
		words = bitsetSet(words, p.dict.intern(k))
	}
	p.sets = append(p.sets, words)
	p.cards = append(p.cards, len(elems))
}

// extendFrom initializes p as a growable copy of prev: the dictionary
// is cloned, the per-query bitsets are shared (they are immutable).
func (p *internedPrepared[K]) extendFrom(prev *internedPrepared[K], extra int) {
	p.dict = prev.dict.clone()
	p.sets = make([][]uint64, len(prev.sets), len(prev.sets)+extra)
	copy(p.sets, prev.sets)
	p.cards = make([]int, len(prev.cards), len(prev.cards)+extra)
	copy(p.cards, prev.cards)
}

func (p *internedPrepared[K]) Len() int { return len(p.sets) }

// Distance is the bitset Jaccard kernel: |a∩b| by popcount-AND,
// |a∪b| = |a| + |b| − |a∩b| from the precomputed cardinalities. The
// floating-point expression is exactly the map kernel's, so the result
// is bit-identical.
func (p *internedPrepared[K]) Distance(i, j int) (float64, error) {
	inter := bitsetAndCount(p.sets[i], p.sets[j])
	union := p.cards[i] + p.cards[j] - inter
	if union == 0 {
		return 0, nil
	}
	return 1 - float64(inter)/float64(union), nil
}

// AppendElementHashes implements SetSource: the hashes were computed
// once at intern time, so signing a query is a bitset sweep plus table
// lookups — identical values to hashing the elements directly, which
// keeps MinHash signatures stable across processes and appends.
func (p *internedPrepared[K]) AppendElementHashes(dst []uint64, i int) []uint64 {
	hashes := p.dict.hashes
	for w, word := range p.sets[i] {
		base := w * wordBits
		for word != 0 {
			dst = append(dst, hashes[base+bits.TrailingZeros64(word)])
			word &= word - 1
		}
	}
	return dst
}

// AppendItems implements ItemSource: the dictionary's reverse table
// holds every element's payload, so rendering a transaction is a
// bitset sweep plus table lookups, the same shape as
// AppendElementHashes.
func (p *internedPrepared[K]) AppendItems(dst []string, i int) []string {
	elems := p.dict.elems
	for w, word := range p.sets[i] {
		base := w * wordBits
		for word != 0 {
			dst = append(dst, itemString(any(elems[base+bits.TrailingZeros64(word)])))
			word &= word - 1
		}
	}
	return dst
}

// itemString renders one set element as its canonical item text —
// the same rendering experiment E6 uses to build transactions.
func itemString(k any) string {
	switch v := k.(type) {
	case string:
		return v
	case sqlfeature.Feature:
		return v.String()
	default:
		// Unreachable for the built-in metrics.
		return ""
	}
}

// SizeBytes implements Sizer. Interning shrinks the real footprint —
// each distinct element's payload is held once in the dictionary
// instead of once per query that contains it — and the estimate
// reflects that: dictionary entries at their keySize plus map/table
// overhead, then one word-packed bitset per query.
func (p *internedPrepared[K]) SizeBytes() int64 {
	total := int64(64)
	for _, k := range p.dict.elems {
		total += keySize(any(k)) + 32 // map entry + reverse-table slot + hash
	}
	for _, words := range p.sets {
		total += 32 + int64(len(words))*8
	}
	return total
}

// sortedStrings returns the keys of a string set in sorted order.
func sortedStrings(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sortedFeatures returns the features of a set sorted by (clause,
// item) — the same canonical order the snapshot codec always used.
func sortedFeatures(set map[sqlfeature.Feature]bool) []sqlfeature.Feature {
	out := make([]sqlfeature.Feature, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Clause != out[j].Clause {
			return out[i].Clause < out[j].Clause
		}
		return out[i].Item < out[j].Item
	})
	return out
}
