package distance

import (
	"hash/fnv"

	"repro/internal/sqlfeature"
)

// SetSource is the seam between the exact metrics and the approximate
// neighbor engine (internal/approx): it is implemented by prepared
// states whose characteristic is one element set per query compared by
// Jaccard distance — today the token, structure, and result measures.
// MinHash signatures are computed from the element hashes it exposes,
// so candidate generation rides the exact same precomputed state the
// matrix build uses; no second per-query pass ever runs.
//
// The access-area measure deliberately does not implement SetSource:
// its distance is an interval-overlap mean, not a set resemblance, so
// MinHash estimates would be meaningless for it.
type SetSource interface {
	Prepared
	// AppendElementHashes appends query i's element hashes to dst and
	// returns the extended slice. Order is unspecified (MinHash is
	// order-independent), but the hash of any given element is stable
	// across processes, restarts, and appends — signatures journaled by
	// one server must agree with ones recomputed by another.
	AppendElementHashes(dst []uint64, i int) []uint64
}

// ItemSource is the seam between the set-based prepared states and
// association-rule mining: it renders query i's element set as the
// canonical item strings of one Apriori transaction (the idiom of
// experiment E6 — features render via Feature.String, tokens and tuple
// keys are their own text). It is implemented by the same interned
// states that implement SetSource, so incremental mining rides the
// prepared state — and its snapshots, which persist the dictionary's
// element payloads — without re-parsing a single query.
//
// The access-area measure does not implement ItemSource: its prepared
// state holds per-attribute intervals, not an element set, so there is
// no transaction to mine.
type ItemSource interface {
	Prepared
	// AppendItems appends query i's items to dst and returns the
	// extended slice. Item strings are stable across processes,
	// restarts, and appends; order is unspecified (a transaction is a
	// set).
	AppendItems(dst []string, i int) []string
}

// elementHash maps one set element to a stable 64-bit hash: FNV-1a over
// a canonical byte encoding. Tokens and tuple keys hash their text;
// features hash clause and item with a separator no SQL token contains,
// so ("WHERE","a") and ("WHER","Ea") cannot collide. The hash is over
// element CONTENT, never the interned id — ids depend on insertion
// order and would break the cross-process stability contract above.
func elementHash(k any) uint64 {
	h := fnv.New64a()
	switch v := k.(type) {
	case string:
		h.Write([]byte(v))
	case sqlfeature.Feature:
		h.Write([]byte(v.Clause))
		h.Write([]byte{0x1f})
		h.Write([]byte(v.Item))
	default:
		// Unreachable for the built-in metrics; a zero hash keeps the
		// estimate degraded rather than wrong.
		return 0
	}
	return h.Sum64()
}
