package distance

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/accessarea"
	"repro/internal/value"
)

// pairDist is a deterministic asymmetric-looking but well-defined
// distance for tests: distinct for distinct pairs.
func pairDist(i, j int) (float64, error) {
	return float64(i*1000 + j), nil
}

func TestAppendRowsMatchesBuildMatrix(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct{ n, k, par int }{
		{0, 3, 1}, {1, 1, 1}, {5, 0, 1}, {5, 3, 1}, {5, 3, 4}, {8, 8, 3}, {12, 1, 2},
	} {
		t.Run(fmt.Sprintf("n=%d,k=%d,par=%d", tc.n, tc.k, tc.par), func(t *testing.T) {
			total := tc.n + tc.k
			want, err := BuildMatrix(ctx, total, 1, pairDist)
			if err != nil {
				t.Fatal(err)
			}
			old, err := BuildMatrix(ctx, tc.n, 1, pairDist)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ExtendMatrix(ctx, old, total, tc.par, pairDist)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("ExtendMatrix differs from BuildMatrix:\ngot  %v\nwant %v", got, want)
			}
		})
	}
}

// TestAppendRowsPairCount is the incremental path's contract: exactly
// n·k + k·(k−1)/2 pair computations, no matter the parallelism — never
// a pair between two old items.
func TestAppendRowsPairCount(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct{ n, k, par int }{
		{10, 4, 1}, {10, 4, 3}, {0, 5, 2}, {7, 1, 1}, {3, 9, 4},
	} {
		var calls atomic.Int64
		counted := func(i, j int) (float64, error) {
			calls.Add(1)
			if i >= j {
				t.Errorf("pair (%d,%d): want i < j", i, j)
			}
			if j < tc.n {
				t.Errorf("pair (%d,%d) is entirely inside the old block", i, j)
			}
			return pairDist(i, j)
		}
		if _, err := AppendRows(ctx, tc.n, tc.n+tc.k, tc.par, counted); err != nil {
			t.Fatal(err)
		}
		if want := int64(AppendPairs(tc.n, tc.k)); calls.Load() != want {
			t.Errorf("n=%d k=%d par=%d: %d pair computations, want %d",
				tc.n, tc.k, tc.par, calls.Load(), want)
		}
	}
}

func TestAppendRowsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AppendRows(ctx, 50, 100, 2, pairDist); !errors.Is(err, context.Canceled) {
		t.Errorf("AppendRows with cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestAppendRowsBadRange(t *testing.T) {
	ctx := context.Background()
	if _, err := AppendRows(ctx, 5, 3, 1, pairDist); err == nil {
		t.Error("total < n should error")
	}
	if _, err := AppendRows(ctx, -1, 3, 1, pairDist); err == nil {
		t.Error("negative n should error")
	}
}

func TestSpliceRowsValidation(t *testing.T) {
	old := Matrix{{0, 1}, {1, 0}}
	if _, err := SpliceRows(old, [][]float64{{1, 2}}); err == nil {
		t.Error("short appended row should error")
	}
	if _, err := SpliceRows(Matrix{{0, 1}}, nil); err == nil {
		t.Error("ragged old matrix should error")
	}
}

// TestMetricExtend pins the Extender contract on every registered
// built-in: Extend(prev, new) equals Prepare(old ∘ new) distance-wise.
func TestMetricExtend(t *testing.T) {
	ctx := context.Background()
	oldLog := []string{
		"SELECT a FROM r WHERE a > 1",
		"SELECT b FROM r WHERE b > 20",
		"SELECT a, b FROM r",
	}
	newLog := []string{
		"SELECT a FROM r WHERE a > 7",
		"SELECT b FROM r",
	}
	arts := Artifacts{
		Catalog: resultFixture(t),
		Domains: map[string]accessarea.Domain{
			"a": {Min: value.Int(0), Max: value.Int(100)},
			"b": {Min: value.Int(0), Max: value.Int(1000)},
		},
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			m, err := New(name, arts)
			if err != nil {
				t.Fatal(err)
			}
			ext, ok := m.(Extender)
			if !ok {
				t.Fatalf("metric %q does not implement Extender", name)
			}
			prev, err := m.Prepare(ctx, oldLog)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ext.Extend(ctx, prev, newLog)
			if err != nil {
				t.Fatal(err)
			}
			want, err := m.Prepare(ctx, append(append([]string(nil), oldLog...), newLog...))
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != want.Len() {
				t.Fatalf("extended Len = %d, want %d", got.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				for j := i + 1; j < want.Len(); j++ {
					dg, err := got.Distance(i, j)
					if err != nil {
						t.Fatal(err)
					}
					dw, err := want.Distance(i, j)
					if err != nil {
						t.Fatal(err)
					}
					if dg != dw {
						t.Errorf("pair (%d,%d): extended %v, combined %v", i, j, dg, dw)
					}
				}
			}
			// A foreign prepared state is rejected, not misread.
			if _, err := ext.Extend(ctx, foreignPrepared{}, newLog); err == nil {
				t.Error("Extend accepted a foreign prepared state")
			}
		})
	}
}

type foreignPrepared struct{}

func (foreignPrepared) Len() int                           { return 0 }
func (foreignPrepared) Distance(i, j int) (float64, error) { return 0, nil }
