// Package obs is the service's dependency-free instrumentation layer:
// atomic counters, gauges, and fixed-bucket histograms in a named
// registry, rendered in the Prometheus text exposition format by an
// http.Handler, plus lightweight span timing for per-request stage
// traces (see span.go).
//
// Design constraints, in order:
//
//   - Zero dependencies. The whole layer is stdlib-only, so the hot
//     path never pays for a client library and the module's dependency
//     graph stays empty.
//   - Cheap when off. Every instrument method is nil-receiver safe:
//     code can hold possibly-nil *Counter/*Gauge/*Histogram fields and
//     call them unconditionally — an uninstrumented deployment costs
//     one nil check per event.
//   - Loud when miswired. Registering the same series name with a
//     conflicting type, help string, bucket layout, or a second
//     func-backed reader panics at wire-up time instead of silently
//     shadowing a metric (the CI metric lint runs exactly this).
//
// Metric names follow the Prometheus conventions: snake_case with a
// unit suffix (_total for counters, _seconds/_bytes where applicable).
// Registered names are part of the service's observable API — renames
// are breaking changes and belong in a changelog entry.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is NOT
// usable — obtain counters from a Registry — but a nil *Counter is: all
// methods no-op, so uninstrumented code paths cost one branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n; negative n is ignored (counters are
// monotonic by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. A nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (use negative deltas to decrease).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets and tracks their sum
// — enough for Prometheus quantile estimation without per-observation
// allocation. A nil *Histogram no-ops.
type Histogram struct {
	bounds []float64      // sorted inclusive upper bounds, no +Inf
	counts []atomic.Int64 // one per bound; +Inf overflow is count-sum(buckets)
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DurationBuckets are the default latency bucket bounds in seconds:
// half a millisecond through 10 s in a 1-2.5-5 progression — wide
// enough for both a cache-hit stats call and a cold Paillier prepare.
var DurationBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// metricKind tags what a series is, for exposition and conflict checks.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// series is one registered (name, labels) instrument.
type series struct {
	name   string // family name
	labels string // canonical rendered label block, "" or `{k="v",...}`
	kind   metricKind
	help   string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// read, when set, makes the series func-backed: its value is read
	// at scrape time instead of from the counter/gauge cell. Used to
	// surface existing monotonic totals (cache hits, live sessions)
	// without double bookkeeping.
	read func() float64

	bucketKey string // bucket-layout fingerprint, histograms only
}

// Registry is a named set of metrics. All methods are safe for
// concurrent use; registration is get-or-create for identical
// (name, labels, type, help) and panics on conflicts.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	funcMu sync.Mutex // serializes read() calls at scrape time
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

// Labels renders alternating key/value pairs into the canonical label
// block series identity uses. Keys are sorted; values are escaped. It
// panics on an odd pair count — label sets are wired at startup, where
// a loud failure beats a silently misnamed series.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel applies the exposition-format label escapes.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register returns the existing identical series or creates one;
// conflicting re-registration panics (the metric lint's teeth).
func (r *Registry) register(s *series) *series {
	key := s.name + s.labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.byKey[key]; ok {
		if have.kind != s.kind {
			panic(fmt.Sprintf("obs: metric %s%s already registered as a %s, re-registered as a %s", s.name, s.labels, have.kind, s.kind))
		}
		if have.help != s.help {
			panic(fmt.Sprintf("obs: metric %s%s already registered with help %q, re-registered with %q", s.name, s.labels, have.help, s.help))
		}
		if have.bucketKey != s.bucketKey {
			panic(fmt.Sprintf("obs: histogram %s%s already registered with different buckets", s.name, s.labels))
		}
		if have.read != nil || s.read != nil {
			// Two func-backed readers for one series cannot be merged,
			// and mixing a cell with a reader silently shadows one of
			// them — both are wiring bugs.
			panic(fmt.Sprintf("obs: func-backed metric %s%s registered twice", s.name, s.labels))
		}
		return have
	}
	r.byKey[key] = s
	return s
}

// Counter registers (or returns) a counter series. labels are
// alternating key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.register(&series{name: name, labels: Labels(labels...), kind: kindCounter, help: help, counter: &Counter{}})
	return s.counter
}

// Gauge registers (or returns) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.register(&series{name: name, labels: Labels(labels...), kind: kindGauge, help: help, gauge: &Gauge{}})
	return s.gauge
}

// CounterFunc registers a counter series whose value is read at scrape
// time — how an existing monotonic total (a cache's hit counter) is
// surfaced without double bookkeeping. The reader must be monotonic and
// safe for concurrent use. Registering the same series twice panics.
func (r *Registry) CounterFunc(name, help string, read func() float64, labels ...string) {
	r.register(&series{name: name, labels: Labels(labels...), kind: kindCounter, help: help, read: read})
}

// GaugeFunc registers a gauge series read at scrape time (live session
// counts, cache byte totals). Registering the same series twice panics.
func (r *Registry) GaugeFunc(name, help string, read func() float64, labels ...string) {
	r.register(&series{name: name, labels: Labels(labels...), kind: kindGauge, help: help, read: read})
}

// Histogram registers (or returns) a histogram series with the given
// inclusive upper bucket bounds (nil means DurationBuckets). Bounds
// must be sorted strictly ascending; +Inf is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly ascending: %v", name, bounds))
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
	s := r.register(&series{
		name: name, labels: Labels(labels...), kind: kindHistogram, help: help,
		hist: h, bucketKey: fmt.Sprint(bounds),
	})
	return s.hist
}

// snapshot returns the registered series sorted by family name then
// label block — the stable exposition order.
func (r *Registry) snapshot() []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(r.byKey))
	for _, s := range r.byKey {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}
