package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// SpanRecord is one timed stage of a request: a name ("prepare",
// "matrix", "rerank") and how long it took.
type SpanRecord struct {
	Name     string
	Duration time.Duration
}

// Trace accumulates the stage spans of one request so a slow-request
// log line can say where the time went. A nil *Trace no-ops, so stage
// hooks can call Add unconditionally.
type Trace struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// Add appends one span.
func (t *Trace) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, SpanRecord{Name: name, Duration: d})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in arrival order.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// String renders the spans as `name=dur name=dur ...` — the shape the
// slow-request log line embeds.
func (t *Trace) String() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, s := range spans {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%s", s.Name, s.Duration.Round(time.Microsecond))
	}
	return sb.String()
}

type traceKey struct{}

// ContextWithTrace attaches a trace to ctx; stage hooks below the
// handler find it with TraceFromContext.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFromContext returns the request's trace, or nil (which is safe
// to Add to).
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
