package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
)

// WriteTo renders every registered series in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one
// HELP/TYPE header per family, histogram buckets cumulative with an
// implicit +Inf. Func-backed readers are called here, serialized, so
// they may take locks of their own.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	prevFamily := ""
	r.funcMu.Lock()
	defer r.funcMu.Unlock()
	for _, s := range r.snapshot() {
		if s.name != prevFamily {
			if err := count(fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", s.name, s.help, s.name, s.kind)); err != nil {
				return n, err
			}
			prevFamily = s.name
		}
		switch {
		case s.kind == kindHistogram:
			if err := writeHistogram(bw, count, s); err != nil {
				return n, err
			}
		case s.read != nil:
			if err := count(fmt.Fprintf(bw, "%s%s %s\n", s.name, s.labels, formatFloat(s.read()))); err != nil {
				return n, err
			}
		case s.kind == kindCounter:
			if err := count(fmt.Fprintf(bw, "%s%s %d\n", s.name, s.labels, s.counter.Value())); err != nil {
				return n, err
			}
		default:
			if err := count(fmt.Fprintf(bw, "%s%s %s\n", s.name, s.labels, formatFloat(s.gauge.Value()))); err != nil {
				return n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// writeHistogram emits the cumulative _bucket lines plus _sum and
// _count. Bucket counts are read before count/sum, so a concurrent
// Observe can at worst make the +Inf bucket (derived from count) larger
// than the bound buckets' total — still a valid cumulative histogram.
func writeHistogram(bw *bufio.Writer, count func(int, error) error, s *series) error {
	h := s.hist
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if err := count(fmt.Fprintf(bw, "%s_bucket%s %d\n", s.name, labelsWithLE(s.labels, formatFloat(b)), cum)); err != nil {
			return err
		}
	}
	total := h.Count()
	if total < cum {
		// A racing Observe bumped a bucket before the total; clamp so
		// the cumulative invariant (every bucket ≤ +Inf) holds.
		total = cum
	}
	if err := count(fmt.Fprintf(bw, "%s_bucket%s %d\n", s.name, labelsWithLE(s.labels, "+Inf"), total)); err != nil {
		return err
	}
	if err := count(fmt.Fprintf(bw, "%s_sum%s %s\n", s.name, s.labels, formatFloat(h.Sum()))); err != nil {
		return err
	}
	return count(fmt.Fprintf(bw, "%s_count%s %d\n", s.name, s.labels, total))
}

// labelsWithLE splices the histogram `le` label into an already
// rendered label block.
func labelsWithLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	// labels is `{...}` — insert before the closing brace.
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the scrape endpoint: GET (or HEAD) renders the
// registry, anything else is 405.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		_, _ = r.WriteTo(w)
	})
}
