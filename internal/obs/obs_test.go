package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestGetOrCreateReturnsSameCell(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", "route", "matrix")
	b := r.Counter("x_total", "help", "route", "matrix")
	if a != b {
		t.Fatal("identical registration returned a different cell")
	}
	other := r.Counter("x_total", "help", "route", "mine")
	if other == a {
		t.Fatal("different label value returned the same cell")
	}
}

func TestNilReceiversNoOp(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tr.Add("stage", time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || tr.Spans() != nil || tr.String() != "" {
		t.Fatal("nil receivers must read as zero")
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP lat_seconds help",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 102.65",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests", "route", "matrix", "code", "200").Add(7)
	r.Gauge("live", "live sessions").Set(3)
	r.CounterFunc("hits_total", "cache hits", func() float64 { return 42 })
	r.GaugeFunc("bytes", "cache bytes", func() float64 { return 1024 })
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{code="200",route="matrix"} 7`, // label keys sorted
		"# TYPE live gauge",
		"live 3",
		"hits_total 42",
		"bytes 1024",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One header per family even with several label sets.
	r.Counter("req_total", "requests", "route", "mine", "code", "200").Inc()
	sb.Reset()
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "# TYPE req_total counter"); got != 1 {
		t.Fatalf("family header emitted %d times, want 1", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Labels("k", "a\"b\\c\nd")
	want := `{k="a\"b\\c\nd"}`
	if got != want {
		t.Fatalf("Labels = %s, want %s", got, want)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help")
	mustPanic(t, "type conflict", func() { r.Gauge("a_total", "help") })
	mustPanic(t, "help conflict", func() { r.Counter("a_total", "other help") })
	r.Histogram("h_seconds", "help", []float64{1, 2})
	mustPanic(t, "bucket conflict", func() { r.Histogram("h_seconds", "help", []float64{1, 2, 3}) })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("bad", "help", []float64{2, 1}) })
	r.CounterFunc("f_total", "help", func() float64 { return 0 })
	mustPanic(t, "double func", func() { r.CounterFunc("f_total", "help", func() float64 { return 0 }) })
	mustPanic(t, "func over cell", func() { r.GaugeFunc("a_total", "help", func() float64 { return 0 }) })
	mustPanic(t, "odd labels", func() { r.Counter("odd_total", "help", "just-a-key") })
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	h := r.Histogram("h_seconds", "help", []float64{0.5})
	g := r.Gauge("g", "help")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.25)
				g.Add(1)
				// Registration races with scrapes too.
				r.Counter("c_total", "help").Add(0)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if _, err := r.WriteTo(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 || h.Count() != 8000 || g.Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d g=%g", c.Value(), h.Count(), g.Value())
	}
	if h.Sum() != 2000 {
		t.Fatalf("histogram sum = %g, want 2000", h.Sum())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x_total 1") {
		t.Fatalf("body missing metric:\n%s", buf[:n])
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status %d, want 405", post.StatusCode)
	}
}

func TestTraceContext(t *testing.T) {
	tr := &Trace{}
	ctx := ContextWithTrace(context.Background(), tr)
	TraceFromContext(ctx).Add("prepare", 1500*time.Millisecond)
	TraceFromContext(ctx).Add("matrix", 2*time.Millisecond)
	if got := TraceFromContext(context.Background()); got != nil {
		t.Fatal("empty context should carry no trace")
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "prepare" || spans[1].Name != "matrix" {
		t.Fatalf("spans = %v", spans)
	}
	if s := tr.String(); s != "prepare=1.5s matrix=2ms" {
		t.Fatalf("trace string = %q", s)
	}
}
