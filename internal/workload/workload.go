// Package workload generates the synthetic substrate the paper's case
// study needs but does not ship: a SkyServer-like astronomical schema
// with database content, attribute domains, and a templated SQL query
// log with Zipf-skewed constants (modelled on the SkyServer logs of
// Nguyen et al. [16], the source of the access-area measure).
//
// Everything is derived deterministically from a seed, so experiments
// are reproducible bit-for-bit.
//
// Schema:
//
//	photoobj(objid INT, ra FLOAT, dec FLOAT, class STRING,
//	         mag_r FLOAT, nvote INT, flags INT, petro INT)
//
// petro deliberately occurs only inside SELECT aggregates, never in a
// predicate — the attribute class the Section IV-C refinement (E4) is
// about.
//
//	specobj(specid INT, objid INT, redshift FLOAT, class STRING)
//
// The query templates cover the operation mix the four distance
// measures exercise: point lookups, range scans, IN lists, LIKE
// filters, aggregations with GROUP BY / HAVING, and joins.
package workload

import (
	"fmt"
	"math"

	"repro/internal/accessarea"
	"repro/internal/crypto/prf"
	"repro/internal/db"
	"repro/internal/encdb"
	"repro/internal/sqlparse"
	"repro/internal/value"
)

// Config controls generation.
type Config struct {
	// Seed makes everything reproducible. Two equal configs generate
	// identical workloads.
	Seed string
	// Rows per table; 0 means 200.
	Rows int
	// Queries in the log; 0 means 60.
	Queries int
	// ZipfS is the skew of constant selection; 0 means 1.2.
	ZipfS float64
	// IncludeLike adds LIKE templates (not executable in result mode).
	IncludeLike bool
	// IncludeJoins adds join templates.
	IncludeJoins bool
	// IncludeAggregates adds aggregate / GROUP BY templates.
	IncludeAggregates bool
}

func (c Config) withDefaults() Config {
	if c.Seed == "" {
		c.Seed = "kit-dpe"
	}
	if c.Rows == 0 {
		c.Rows = 200
	}
	if c.Queries == 0 {
		c.Queries = 60
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	return c
}

// Workload bundles everything an experiment needs.
type Workload struct {
	Catalog *db.Catalog
	Schema  *encdb.Schema
	// Domains holds each predicate attribute's domain ("Domains" shared
	// information of Table I).
	Domains map[string]accessarea.Domain
	// Queries is the plaintext query log.
	Queries []string
	// Stmts are the parsed queries, index-aligned with Queries.
	Stmts []*sqlparse.SelectStmt
}

// Domain bounds used by both the data generator and the access-area
// algebra.
const (
	objidMax    = 100000
	raMax       = 360.0
	decMin      = -90.0
	decMax      = 90.0
	magMin      = 10.0
	magMax      = 25.0
	nvoteMax    = 100
	flagsMax    = 8
	petroMax    = 50
	redshiftMax = 7.0
)

// classes are the object classes of the class attribute.
var classes = []string{"STAR", "GALAXY", "QSO", "UNKNOWN"}

// Generate builds a deterministic workload.
func Generate(cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	w := &Workload{Catalog: db.NewCatalog()}

	if err := w.generateData(cfg); err != nil {
		return nil, err
	}
	schema, err := encdb.SchemaFromCatalog(w.Catalog)
	if err != nil {
		return nil, err
	}
	w.Schema = schema
	w.Domains = map[string]accessarea.Domain{
		"objid":    {Min: value.Int(0), Max: value.Int(objidMax)},
		"ra":       {Min: value.Float(0), Max: value.Float(raMax)},
		"dec":      {Min: value.Float(decMin), Max: value.Float(decMax)},
		"mag_r":    {Min: value.Float(magMin), Max: value.Float(magMax)},
		"nvote":    {Min: value.Int(0), Max: value.Int(nvoteMax)},
		"flags":    {Min: value.Int(0), Max: value.Int(flagsMax)},
		"redshift": {Min: value.Float(0), Max: value.Float(redshiftMax)},
		"specid":   {Min: value.Int(0), Max: value.Int(objidMax)},
		"class":    {Min: value.Str(""), Max: value.Str("~")},
	}
	if err := w.generateQueries(cfg); err != nil {
		return nil, err
	}
	return w, nil
}

// MustGenerate panics on error; generation of a valid Config never fails.
func MustGenerate(cfg Config) *Workload {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

func (w *Workload) generateData(cfg Config) error {
	d := prf.NewDRBG([]byte(cfg.Seed), []byte("data"))
	photo, err := w.Catalog.Create("photoobj", []db.Column{
		{Name: "objid", Type: db.TypeInt},
		{Name: "ra", Type: db.TypeFloat},
		{Name: "dec", Type: db.TypeFloat},
		{Name: "class", Type: db.TypeString},
		{Name: "mag_r", Type: db.TypeFloat},
		{Name: "nvote", Type: db.TypeInt},
		{Name: "flags", Type: db.TypeInt},
		{Name: "petro", Type: db.TypeInt},
	})
	if err != nil {
		return err
	}
	for i := 0; i < cfg.Rows; i++ {
		row := db.Row{
			value.Int(int64(i * (objidMax / cfg.Rows))),
			value.Float(round3(d.Float64() * raMax)),
			value.Float(round3(decMin + d.Float64()*(decMax-decMin))),
			value.Str(classes[d.Uint64n(uint64(len(classes)))]),
			value.Float(round3(magMin + d.Float64()*(magMax-magMin))),
			value.Int(int64(d.Uint64n(nvoteMax + 1))),
			value.Int(int64(d.Uint64n(flagsMax + 1))),
			value.Int(int64(d.Uint64n(petroMax + 1))),
		}
		if err := photo.Insert(row); err != nil {
			return err
		}
	}
	spec, err := w.Catalog.Create("specobj", []db.Column{
		{Name: "specid", Type: db.TypeInt},
		{Name: "objid", Type: db.TypeInt},
		{Name: "redshift", Type: db.TypeFloat},
		{Name: "class", Type: db.TypeString},
	})
	if err != nil {
		return err
	}
	// Roughly half the photo objects have spectra.
	for i := 0; i < cfg.Rows/2; i++ {
		row := db.Row{
			value.Int(int64(i)),
			value.Int(int64(int(d.Uint64n(uint64(cfg.Rows))) * (objidMax / cfg.Rows))),
			value.Float(round3(d.Float64() * redshiftMax)),
			value.Str(classes[d.Uint64n(uint64(len(classes)))]),
		}
		if err := spec.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

func round3(f float64) float64 { return math.Round(f*1000) / 1000 }

// zipfIndex draws an index in [0, n) with Zipf skew s.
func zipfIndex(d *prf.DRBG, n int, s float64) int {
	var norm float64
	for i := 1; i <= n; i++ {
		norm += 1 / math.Pow(float64(i), s)
	}
	u := d.Float64() * norm
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += 1 / math.Pow(float64(i), s)
		if u < acc {
			return i - 1
		}
	}
	return n - 1
}

// generateQueries instantiates templates with skewed constants. The
// constant pools are small and Zipf-ranked so the logs contain repeated
// values — the regime in which frequency attacks (and interesting
// clusterings) exist.
func (w *Workload) generateQueries(cfg Config) error {
	d := prf.NewDRBG([]byte(cfg.Seed), []byte("queries"))

	// Skewed constant pools.
	raCuts := []float64{30, 60, 90, 120, 180, 240, 300}
	magCuts := []float64{14, 16, 18, 20, 22}
	redshiftCuts := []float64{0.1, 0.5, 1, 2, 3}
	nvoteCuts := []int64{10, 25, 50, 75}
	objids := []int64{0, 500, 1500, 3000, 5000, 9500, 25000, 50000}

	pickF := func(pool []float64) float64 { return pool[zipfIndex(d, len(pool), cfg.ZipfS)] }
	pickI := func(pool []int64) int64 { return pool[zipfIndex(d, len(pool), cfg.ZipfS)] }
	pickClass := func() string { return classes[zipfIndex(d, len(classes), cfg.ZipfS)] }

	type template func() string
	templates := []template{
		// Point lookup.
		func() string {
			return fmt.Sprintf("SELECT objid, ra, dec FROM photoobj WHERE objid = %d", pickI(objids))
		},
		// Range scan on ra.
		func() string {
			lo := pickF(raCuts)
			return fmt.Sprintf("SELECT objid FROM photoobj WHERE ra BETWEEN %v AND %v", lo, lo+30)
		},
		// Conjunctive range.
		func() string {
			return fmt.Sprintf("SELECT objid, mag_r FROM photoobj WHERE mag_r < %v AND dec > %v", pickF(magCuts), -45.0)
		},
		// Equality on class + range.
		func() string {
			return fmt.Sprintf("SELECT objid FROM photoobj WHERE class = '%s' AND nvote >= %d", pickClass(), pickI(nvoteCuts))
		},
		// IN list.
		func() string {
			a, b := pickClass(), pickClass()
			return fmt.Sprintf("SELECT objid, class FROM photoobj WHERE class IN ('%s', '%s')", a, b)
		},
		// Disjunctive ranges (interesting access areas).
		func() string {
			return fmt.Sprintf("SELECT objid FROM photoobj WHERE ra < %v OR ra > %v", pickF(raCuts), 300.0)
		},
	}
	if cfg.IncludeAggregates {
		templates = append(templates,
			func() string {
				return fmt.Sprintf("SELECT class, COUNT(*) FROM photoobj WHERE mag_r < %v GROUP BY class", pickF(magCuts))
			},
			func() string {
				return fmt.Sprintf("SELECT SUM(nvote), COUNT(*) FROM photoobj WHERE ra BETWEEN %v AND %v", pickF(raCuts), 330.0)
			},
			func() string {
				return fmt.Sprintf("SELECT class, MIN(mag_r), MAX(mag_r) FROM photoobj WHERE nvote > %d GROUP BY class", pickI(nvoteCuts))
			},
			func() string {
				return fmt.Sprintf("SELECT AVG(nvote) FROM photoobj WHERE flags = %d", int64(d.Uint64n(flagsMax+1)))
			},
			// petro occurs only inside aggregates (never in predicates):
			// the attribute class that motivates the E4 refinement.
			func() string {
				return fmt.Sprintf("SELECT SUM(petro), AVG(petro) FROM photoobj WHERE class = '%s'", pickClass())
			},
		)
	}
	if cfg.IncludeJoins {
		templates = append(templates,
			func() string {
				return fmt.Sprintf("SELECT p.objid, s.redshift FROM photoobj AS p JOIN specobj AS s ON p.objid = s.objid WHERE s.redshift > %v", pickF(redshiftCuts))
			},
			func() string {
				return fmt.Sprintf("SELECT p.objid FROM photoobj AS p JOIN specobj AS s ON p.objid = s.objid WHERE p.class = '%s'", pickClass())
			},
		)
	}
	if cfg.IncludeLike {
		templates = append(templates,
			func() string {
				return fmt.Sprintf("SELECT objid FROM photoobj WHERE class LIKE '%s%%'", pickClass()[:2])
			},
		)
	}

	for i := 0; i < cfg.Queries; i++ {
		q := templates[int(d.Uint64n(uint64(len(templates))))]()
		stmt, err := sqlparse.Parse(q)
		if err != nil {
			return fmt.Errorf("workload: generated invalid query %q: %w", q, err)
		}
		w.Queries = append(w.Queries, stmt.SQL())
		w.Stmts = append(w.Stmts, stmt)
	}
	return nil
}

// ConstantStream extracts every constant of the given attribute from the
// log together with its value, for attack experiments: the attacker
// observes the (encrypted) constants of one column.
func (w *Workload) ConstantStream(attr string) []string {
	var out []string
	for _, stmt := range w.Stmts {
		collect := func(e sqlparse.Expr) bool {
			b, ok := e.(*sqlparse.BinaryExpr)
			if !ok {
				return true
			}
			col, okc := b.Left.(*sqlparse.ColumnRef)
			lit, okl := b.Right.(*sqlparse.Literal)
			if okc && okl && col.Name == attr {
				out = append(out, lit.Value.String())
			}
			return true
		}
		sqlparse.Walk(stmt.Where, collect)
		for _, j := range stmt.Joins {
			sqlparse.Walk(j.On, collect)
		}
	}
	return out
}
