package workload

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/sqlparse"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: "s1", Queries: 20, Rows: 50, IncludeAggregates: true, IncludeJoins: true}
	w1 := MustGenerate(cfg)
	w2 := MustGenerate(cfg)
	if !reflect.DeepEqual(w1.Queries, w2.Queries) {
		t.Fatal("same seed must generate identical logs")
	}
	w3 := MustGenerate(Config{Seed: "s2", Queries: 20, Rows: 50, IncludeAggregates: true, IncludeJoins: true})
	if reflect.DeepEqual(w1.Queries, w3.Queries) {
		t.Fatal("different seeds should diverge")
	}
}

func TestGeneratedQueriesParseAndPrint(t *testing.T) {
	w := MustGenerate(Config{Queries: 40, IncludeAggregates: true, IncludeJoins: true, IncludeLike: true})
	if len(w.Queries) != 40 || len(w.Stmts) != 40 {
		t.Fatalf("sizes: %d, %d", len(w.Queries), len(w.Stmts))
	}
	for i, q := range w.Queries {
		s, err := sqlparse.Parse(q)
		if err != nil {
			t.Fatalf("query %d does not parse: %v\n%s", i, err, q)
		}
		if s.SQL() != q {
			t.Fatalf("query %d is not canonical: %q vs %q", i, s.SQL(), q)
		}
	}
}

func TestGeneratedQueriesExecute(t *testing.T) {
	w := MustGenerate(Config{Queries: 40, Rows: 80, IncludeAggregates: true, IncludeJoins: true, IncludeLike: true})
	for i, stmt := range w.Stmts {
		if _, err := db.Execute(w.Catalog, stmt); err != nil {
			t.Fatalf("query %d fails to execute: %v\n%s", i, err, w.Queries[i])
		}
	}
}

func TestDataRespectDomains(t *testing.T) {
	w := MustGenerate(Config{Rows: 100})
	photo, err := w.Catalog.Table("photoobj")
	if err != nil {
		t.Fatal(err)
	}
	raIdx := photo.ColumnIndex("ra")
	magIdx := photo.ColumnIndex("mag_r")
	for _, row := range photo.Rows {
		if ra := row[raIdx].AsFloat(); ra < 0 || ra > raMax {
			t.Fatalf("ra out of domain: %v", ra)
		}
		if mag := row[magIdx].AsFloat(); mag < magMin || mag > magMax {
			t.Fatalf("mag_r out of domain: %v", mag)
		}
	}
	spec, _ := w.Catalog.Table("specobj")
	if len(spec.Rows) != 50 {
		t.Fatalf("specobj rows = %d, want 50", len(spec.Rows))
	}
}

func TestDomainsCoverPredicateAttributes(t *testing.T) {
	w := MustGenerate(Config{Queries: 60, IncludeAggregates: true, IncludeJoins: true})
	for i, stmt := range w.Stmts {
		var cols []string
		collect := func(e sqlparse.Expr) bool {
			if c, ok := e.(*sqlparse.ColumnRef); ok {
				cols = append(cols, c.Name)
			}
			return true
		}
		sqlparse.Walk(stmt.Where, collect)
		for _, j := range stmt.Joins {
			sqlparse.Walk(j.On, collect)
		}
		for _, c := range cols {
			if _, ok := w.Domains[c]; !ok {
				t.Fatalf("query %d predicate attribute %q has no domain", i, c)
			}
		}
	}
}

func TestLogHasRepeatedConstants(t *testing.T) {
	// The Zipf skew must produce repetitions — the regime where
	// frequency attacks and non-trivial clusterings exist.
	w := MustGenerate(Config{Queries: 80})
	counts := make(map[string]int)
	for _, q := range w.Queries {
		counts[q]++
	}
	repeated := 0
	for _, c := range counts {
		if c > 1 {
			repeated++
		}
	}
	if repeated == 0 {
		t.Fatal("expected some repeated queries in a skewed log")
	}
}

func TestConstantStream(t *testing.T) {
	w := MustGenerate(Config{Queries: 80})
	stream := w.ConstantStream("class")
	if len(stream) == 0 {
		t.Fatal("class constants expected in the log")
	}
	for _, v := range stream {
		if !strings.HasPrefix(v, "'") {
			t.Fatalf("class constants should be strings: %q", v)
		}
	}
	if len(w.ConstantStream("nosuchattr")) != 0 {
		t.Fatal("unknown attribute must yield no constants")
	}
}

func TestResultModeSubsetAvoidsLike(t *testing.T) {
	w := MustGenerate(Config{Queries: 50, IncludeAggregates: true, IncludeJoins: true})
	for i, q := range w.Queries {
		if strings.Contains(q, "LIKE") {
			t.Fatalf("query %d contains LIKE although IncludeLike=false: %s", i, q)
		}
	}
}
