// Package store is the persistence seam of the multi-tenant service: a
// pluggable journal that records what a registry shard holds — session
// creations and deletions, artifact and log uploads, and serialized
// prepared-state snapshots — so a restarted dpeserver warms back up
// without tenants re-uploading or the server re-preparing anything.
//
// The unit of persistence is one shard: the registry's consistent-hash
// ring maps every session id to a stable shard, so each shard can own
// one append-only segment file and replay it independently on startup.
// Two implementations ship:
//
//   - Null, the default: journals nothing, replays nothing — the
//     historical in-memory registry.
//   - Dir, a directory of per-shard segment files with CRC-framed
//     records (segment.go): appends survive crashes up to the last
//     fully-written record, and compaction rewrites a segment to just
//     the live records.
//
// The store knows nothing about the service's types: records carry a
// kind tag plus opaque payloads, and the service layer owns their
// semantics (see internal/service's journaling hooks and replay).
package store

// Kind tags what a record means. The service layer defines the
// vocabulary; replay must skip kinds it does not recognize, so old
// binaries survive journals written by newer ones.
type Kind string

// The record kinds the service journals today.
const (
	// KindSession records a session creation; Data carries the encoded
	// create request plus the assigned id.
	KindSession Kind = "session"
	// KindDelete tombstones a session.
	KindDelete Kind = "delete"
	// KindLog records an uploaded query log; Data carries the queries.
	KindLog Kind = "log"
	// KindSnapshot records a serialized prepared state for one
	// (session, log) pair; Blob carries the metric's codec output.
	KindSnapshot Kind = "snapshot"
	// KindApprox records a serialized MinHash/LSH index for one
	// (session, log) pair; Blob carries internal/approx's codec output.
	KindApprox Kind = "approx"
	// KindMining records a serialized incremental-mining state for one
	// (session, log, spec) triple; Blob carries dpe's MineState codec
	// output. Replayed states make the first post-restart append_mine a
	// warm delta instead of a cold bootstrap.
	KindMining Kind = "mining"
)

// Record is one journaled event. Session and Log are routing keys (the
// session id, and the content-addressed log id when the event concerns
// one log); Data carries JSON payloads and Blob binary ones. A Record
// is self-contained: replay order within one segment is the only
// context it needs.
type Record struct {
	Kind    Kind   `json:"k"`
	Session string `json:"s,omitempty"`
	Log     string `json:"l,omitempty"`
	Data    []byte `json:"d,omitempty"`
	Blob    []byte `json:"b,omitempty"`
}

// Log is one shard's journal. Implementations must be safe for use by
// one goroutine at a time; the service serializes access per shard.
type Log interface {
	// Append durably appends one record in write order.
	Append(rec Record) error
	// Replay streams the journal's records in write order. A decoding
	// problem mid-journal (torn write from a crash) ends the replay of
	// that journal without error: everything up to the damage is
	// recovered, the rest is discarded.
	Replay(fn func(rec Record) error) error
	// Compact atomically replaces the journal's contents with recs —
	// the live-state rewrite that drops tombstoned sessions and
	// superseded snapshots.
	Compact(recs []Record) error
	// Close releases the journal. Append/Replay/Compact after Close
	// error.
	Close() error
}

// Store hands out one Log per shard.
type Store interface {
	// Open returns shard i's journal, creating it when absent. Opening
	// the same shard twice without an intervening Close is undefined.
	Open(shard int) (Log, error)
	// List returns the shard indexes that already have journals — how
	// a restart under a smaller shard count finds (and re-homes) the
	// records of shards that no longer exist.
	List() ([]int, error)
	// Close releases store-wide resources; shard Logs are closed
	// individually by their owners.
	Close() error
}

// Null is the no-op store: nothing is journaled, nothing is replayed.
// It is the registry default, preserving the in-memory-only behavior.
type Null struct{}

// Open returns a no-op journal.
func (Null) Open(int) (Log, error) { return nullLog{}, nil }

// List returns no journals.
func (Null) List() ([]int, error) { return nil, nil }

// Close is a no-op.
func (Null) Close() error { return nil }

type nullLog struct{}

func (nullLog) Append(Record) error             { return nil }
func (nullLog) Replay(func(Record) error) error { return nil }
func (nullLog) Compact([]Record) error          { return nil }
func (nullLog) Close() error                    { return nil }
