package store

import (
	"strings"
	"testing"
)

// TestOpenDirLocksDirectory is the double-open bugfix regression: two
// dpeserver processes pointed at the same -data-dir would silently
// interleave segment writes; the second open must now fail loudly, and
// the lock must release on Close so a clean restart succeeds.
func TestOpenDirLocksDirectory(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := OpenDir(dir)
	if err == nil {
		second.Close()
		t.Fatal("second OpenDir on a held directory succeeded, want a lock error")
	}
	if !strings.Contains(err.Error(), dir) {
		t.Errorf("lock error = %v, want it to name the directory", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Close released the lock: the next owner opens cleanly, and a
	// second Close stays a no-op.
	st2, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir after Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}
