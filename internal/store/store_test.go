package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// collect replays a journal into a slice.
func collect(t *testing.T, l Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// reopen closes a shard and opens it again — the restart.
func reopen(t *testing.T, d *Dir, l Log, shard int) Log {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	nl, err := d.Open(shard)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestSegmentRoundTrip pins the basic contract: appended records come
// back identical, in order, across a close/reopen.
func TestSegmentRoundTrip(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l, err := d.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindSession, Session: "s-1", Data: []byte(`{"measure":"token"}`)},
		{Kind: KindLog, Session: "s-1", Log: "l-abc", Data: []byte(`["SELECT a FROM t"]`)},
		{Kind: KindSnapshot, Session: "s-1", Log: "l-abc", Blob: []byte{0, 1, 2, 255}},
		{Kind: KindDelete, Session: "s-1"},
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	l = reopen(t, d, l, 0)
	defer l.Close()
	if got := collect(t, l); !reflect.DeepEqual(got, recs) {
		t.Errorf("replay = %+v, want %+v", got, recs)
	}
}

// TestSegmentShardIsolation checks shards journal to distinct files.
func TestSegmentShardIsolation(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.Open(0)
	b, _ := d.Open(1)
	defer a.Close()
	defer b.Close()
	if err := a.Append(Record{Kind: KindSession, Session: "s-a"}); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, b); len(got) != 0 {
		t.Errorf("shard 1 sees shard 0's records: %+v", got)
	}
	if got := collect(t, a); len(got) != 1 || got[0].Session != "s-a" {
		t.Errorf("shard 0 replay = %+v, want its own single record", got)
	}
}

// TestSegmentTornTailRecovery is the crash-recovery contract: a journal
// whose tail is cut mid-record (or bit-flipped) replays everything up
// to the damage, truncates the rest, and keeps accepting appends.
func TestSegmentTornTailRecovery(t *testing.T) {
	for _, name := range []string{"torn-header", "torn-payload", "bit-flip"} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			l, err := d.Open(0)
			if err != nil {
				t.Fatal(err)
			}
			good := Record{Kind: KindSession, Session: "s-good"}
			if err := l.Append(good); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(Record{Kind: KindLog, Session: "s-good", Log: "l-doomed"}); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "segment-0000.log")
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			firstLen := frameLen(t, b)
			switch name {
			case "torn-header": // cut into the second record's header
				chopTo(t, path, firstLen+3)
			case "torn-payload": // keep its header, cut its payload
				chopTo(t, path, firstLen+frameHeaderSize+2)
			case "bit-flip": // corrupt the second record's last byte
				b[len(b)-1] ^= 0xff
				if err := os.WriteFile(path, b, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			l, err = d.Open(0)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			if got := collect(t, l); len(got) != 1 || !reflect.DeepEqual(got[0], good) {
				t.Fatalf("replay after %s = %+v, want just the intact first record", name, got)
			}
			// The damaged tail was truncated: a fresh append lands on a
			// clean boundary and the journal replays both records.
			next := Record{Kind: KindDelete, Session: "s-good"}
			if err := l.Append(next); err != nil {
				t.Fatal(err)
			}
			l = reopen(t, d, l, 0)
			defer l.Close()
			if got := collect(t, l); len(got) != 2 || !reflect.DeepEqual(got[1], next) {
				t.Errorf("replay after repair+append = %+v, want [good, next]", got)
			}
		})
	}
}

// frameLen reads the first frame's total length from raw journal bytes.
func frameLen(t *testing.T, b []byte) int64 {
	t.Helper()
	if len(b) < frameHeaderSize {
		t.Fatal("journal shorter than one header")
	}
	n := int64(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	return frameHeaderSize + n
}

func chopTo(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentCompact checks compaction replaces the journal's contents
// atomically and the segment stays usable for appends afterwards.
func TestSegmentCompact(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l, err := d.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if err := l.Append(Record{Kind: KindLog, Session: "s-x", Log: fmt.Sprintf("l-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	live := []Record{
		{Kind: KindSession, Session: "s-x"},
		{Kind: KindLog, Session: "s-x", Log: "l-9"},
	}
	if err := l.Compact(live); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); !reflect.DeepEqual(got, live) {
		t.Errorf("replay after compact = %+v, want the live records only", got)
	}
	extra := Record{Kind: KindSnapshot, Session: "s-x", Log: "l-9", Blob: []byte{7}}
	if err := l.Append(extra); err != nil {
		t.Fatal(err)
	}
	l = reopen(t, d, l, 2)
	defer l.Close()
	if got := collect(t, l); len(got) != 3 || !reflect.DeepEqual(got[2], extra) {
		t.Errorf("replay after compact+append+reopen = %+v, want 3 records ending in the new one", got)
	}
}

// TestSegmentClosedErrors pins the closed-journal contract.
func TestSegmentClosedErrors(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l, err := d.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Errorf("second Close = %v, want nil", err)
	}
	if err := l.Append(Record{Kind: KindDelete}); err == nil {
		t.Error("Append after Close succeeded")
	}
	if err := l.Replay(func(Record) error { return nil }); err == nil {
		t.Error("Replay after Close succeeded")
	}
	if err := l.Compact(nil); err == nil {
		t.Error("Compact after Close succeeded")
	}
}

// TestNullStore pins the default: everything succeeds, nothing persists.
func TestNullStore(t *testing.T) {
	var s Null
	l, err := s.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindSession, Session: "s-1"}); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := l.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("null store replayed %d records, want 0", n)
	}
	if err := l.Compact(nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentPropertyRoundTrip is the store's property test: random
// record batches — arbitrary kinds, ids, payload sizes including empty
// and binary-heavy blobs — written to a tmpdir segment must replay
// identically after a reopen, and again after a compaction to a random
// live subset. This runs in the -race CI job as the write → reopen →
// identical-state guarantee behind registry recovery.
func TestSegmentPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kinds := []Kind{KindSession, KindDelete, KindLog, KindSnapshot}
	for trial := 0; trial < 25; trial++ {
		d, err := OpenDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		shard := rng.Intn(8)
		l, err := d.Open(shard)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(40)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{
				Kind:    kinds[rng.Intn(len(kinds))],
				Session: fmt.Sprintf("s-%x", rng.Int63()),
			}
			if rng.Intn(2) == 0 {
				recs[i].Log = fmt.Sprintf("l-%x", rng.Int63())
			}
			if rng.Intn(2) == 0 {
				recs[i].Data = []byte(fmt.Sprintf(`{"n":%d}`, rng.Intn(1000)))
			}
			if rng.Intn(3) == 0 {
				blob := make([]byte, rng.Intn(512))
				rng.Read(blob)
				recs[i].Blob = blob
			}
			if err := l.Append(recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		l = reopen(t, d, l, shard)
		got := collect(t, l)
		if len(got) != len(recs) {
			t.Fatalf("trial %d: replayed %d records, wrote %d", trial, len(got), len(recs))
		}
		for i := range recs {
			if !recordsEqual(got[i], recs[i]) {
				t.Fatalf("trial %d: record %d = %+v, want %+v", trial, i, got[i], recs[i])
			}
		}
		// Compact to a random subset and check again.
		var live []Record
		for _, rec := range recs {
			if rng.Intn(2) == 0 {
				live = append(live, rec)
			}
		}
		if err := l.Compact(live); err != nil {
			t.Fatal(err)
		}
		l = reopen(t, d, l, shard)
		got = collect(t, l)
		if len(got) != len(live) {
			t.Fatalf("trial %d: post-compact replayed %d records, want %d", trial, len(got), len(live))
		}
		for i := range live {
			if !recordsEqual(got[i], live[i]) {
				t.Fatalf("trial %d: post-compact record %d = %+v, want %+v", trial, i, got[i], live[i])
			}
		}
		l.Close()
	}
}

// recordsEqual compares records treating nil and empty slices alike
// (JSON round-trips empty byte slices to nil).
func recordsEqual(a, b Record) bool {
	norm := func(r Record) Record {
		if len(r.Data) == 0 {
			r.Data = nil
		}
		if len(r.Blob) == 0 {
			r.Blob = nil
		}
		return r
	}
	return reflect.DeepEqual(norm(a), norm(b))
}
