// Package storetest is the cross-backend conformance suite for
// store.Store implementations: any backend — segment files, a SQL
// table, the null store — must pass the same contract before the
// service trusts it with tenant journals. Backend tests hand Run a
// Factory; the suite covers append/replay order, shard isolation,
// replay across a close/reopen (the restart path), compaction
// liveness, List re-homing, and closed-journal errors.
package storetest

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/store"
)

// Factory describes one backend under test.
type Factory struct {
	// Persistent reports whether the backend stores records for real
	// (replay returns what was appended). The null store is the one
	// backend where it is false: every write vanishes by design, and
	// the suite asserts exactly that instead.
	Persistent bool
	// Open provisions fresh storage and opens a store over it. The
	// suite calls it once per subtest, so subtests never share state.
	Open func(t *testing.T) store.Store
	// Reopen opens a new store over the storage of the most recent
	// Open call — the restart path. The suite always closes the
	// previous store (and its logs) first, so backends holding
	// exclusive locks reopen cleanly. nil skips restart coverage.
	Reopen func(t *testing.T) store.Store
}

// Run exercises the full conformance contract against f.
func Run(t *testing.T, f Factory) {
	t.Run("AppendReplayOrder", func(t *testing.T) { testAppendReplayOrder(t, f) })
	t.Run("ReopenReplays", func(t *testing.T) { testReopenReplays(t, f) })
	t.Run("CompactionLiveness", func(t *testing.T) { testCompactionLiveness(t, f) })
	t.Run("ListReHoming", func(t *testing.T) { testListReHoming(t, f) })
	t.Run("ClosedJournalErrors", func(t *testing.T) { testClosedJournalErrors(t, f) })
}

// rec builds a distinguishable record.
func rec(i int) store.Record {
	return store.Record{
		Kind:    store.KindLog,
		Session: fmt.Sprintf("s-%02d", i),
		Log:     fmt.Sprintf("l-%02d", i),
		Data:    []byte(fmt.Sprintf(`["q%d"]`, i)),
		Blob:    []byte{byte(i), 0xFF, byte(i >> 4)},
	}
}

// replayAll collects a journal's records.
func replayAll(t *testing.T, l store.Log) []store.Record {
	t.Helper()
	var out []store.Record
	if err := l.Replay(func(r store.Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

// recordsEqual compares records, treating nil and empty byte slices as
// the same (codecs may round-trip one into the other).
func recordsEqual(a, b store.Record) bool {
	return a.Kind == b.Kind && a.Session == b.Session && a.Log == b.Log &&
		bytes.Equal(a.Data, b.Data) && bytes.Equal(a.Blob, b.Blob)
}

func wantRecords(t *testing.T, got, want []store.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(got[i], want[i]) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func openLog(t *testing.T, st store.Store, shard int) store.Log {
	t.Helper()
	l, err := st.Open(shard)
	if err != nil {
		t.Fatalf("Open(%d): %v", shard, err)
	}
	return l
}

func testAppendReplayOrder(t *testing.T, f Factory) {
	st := f.Open(t)
	defer st.Close()
	l0 := openLog(t, st, 0)
	defer l0.Close()
	l2 := openLog(t, st, 2)
	defer l2.Close()

	var want0, want2 []store.Record
	for i := 0; i < 6; i++ {
		r := rec(i)
		if i%2 == 0 {
			if err := l0.Append(r); err != nil {
				t.Fatalf("Append shard 0: %v", err)
			}
			want0 = append(want0, r)
		} else {
			if err := l2.Append(r); err != nil {
				t.Fatalf("Append shard 2: %v", err)
			}
			want2 = append(want2, r)
		}
	}
	if !f.Persistent {
		want0, want2 = nil, nil
	}
	wantRecords(t, replayAll(t, l0), want0)
	wantRecords(t, replayAll(t, l2), want2)
}

func testReopenReplays(t *testing.T, f Factory) {
	if f.Reopen == nil {
		t.Skip("backend has no reopen path")
	}
	st := f.Open(t)
	l := openLog(t, st, 1)
	var want []store.Record
	for i := 0; i < 4; i++ {
		r := rec(i)
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
		want = append(want, r)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close log: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close store: %v", err)
	}

	st2 := f.Reopen(t)
	defer st2.Close()
	l2 := openLog(t, st2, 1)
	defer l2.Close()
	if !f.Persistent {
		want = nil
	}
	wantRecords(t, replayAll(t, l2), want)
	// The reopened journal must keep appending where the old one
	// stopped, in order.
	extra := rec(9)
	if err := l2.Append(extra); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if f.Persistent {
		want = append(want, extra)
	}
	wantRecords(t, replayAll(t, l2), want)
}

func testCompactionLiveness(t *testing.T, f Factory) {
	st := f.Open(t)
	defer st.Close()
	l := openLog(t, st, 3)
	defer l.Close()
	for i := 0; i < 8; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Compact down to two live records; everything else must vanish
	// and the survivors must replay in the given order.
	live := []store.Record{rec(1), rec(6)}
	if err := l.Compact(live); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	want := live
	if !f.Persistent {
		want = nil
	}
	wantRecords(t, replayAll(t, l), want)

	// Appends after a compaction land after the rewritten records.
	post := rec(7)
	if err := l.Append(post); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	if f.Persistent {
		want = append(want, post)
	}
	wantRecords(t, replayAll(t, l), want)

	if f.Reopen != nil {
		if err := l.Close(); err != nil {
			t.Fatalf("Close log: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("Close store: %v", err)
		}
		st2 := f.Reopen(t)
		defer st2.Close()
		l2 := openLog(t, st2, 3)
		defer l2.Close()
		wantRecords(t, replayAll(t, l2), want)
	}
}

func testListReHoming(t *testing.T, f Factory) {
	st := f.Open(t)
	defer st.Close()
	shards := []int{0, 5, 9}
	for _, idx := range shards {
		l := openLog(t, st, idx)
		if err := l.Append(rec(idx)); err != nil {
			t.Fatalf("Append shard %d: %v", idx, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close shard %d: %v", idx, err)
		}
	}
	got, err := st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	want := shards
	if !f.Persistent {
		want = nil
	}
	if len(got) != len(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v (sorted)", got, want)
		}
	}
	// The orphan-retirement path: a listed shard must be reopenable
	// and emptiable via Compact(nil).
	if f.Persistent {
		l := openLog(t, st, 5)
		defer l.Close()
		if err := l.Compact(nil); err != nil {
			t.Fatalf("Compact(nil): %v", err)
		}
		wantRecords(t, replayAll(t, l), nil)
	}
}

func testClosedJournalErrors(t *testing.T, f Factory) {
	if !f.Persistent {
		t.Skip("the null store's no-op journal never errors")
	}
	st := f.Open(t)
	defer st.Close()
	l := openLog(t, st, 0)
	if err := l.Append(rec(0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Append(rec(1)); err == nil {
		t.Fatal("Append after Close succeeded, want error")
	}
	if err := l.Replay(func(store.Record) error { return nil }); err == nil {
		t.Fatal("Replay after Close succeeded, want error")
	}
	if err := l.Compact(nil); err == nil {
		t.Fatal("Compact after Close succeeded, want error")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
