package store

import (
	"strings"
	"testing"

	"repro/internal/store/memdriver"
)

func TestBindForRewritesPostgresPlaceholders(t *testing.T) {
	q := "INSERT INTO records (a, b) VALUES (?, ?), (?, ?)"
	got := bindFor("pgx")(q)
	want := "INSERT INTO records (a, b) VALUES ($1, $2), ($3, $4)"
	if got != want {
		t.Errorf("bindFor(pgx) = %q, want %q", got, want)
	}
	if got := bindFor("postgres")("? ?"); got != "$1 $2" {
		t.Errorf("bindFor(postgres) = %q, want numbered placeholders", got)
	}
	// Non-postgres drivers pass queries through untouched.
	if got := bindFor(memdriver.Name)(q); got != q {
		t.Errorf("bindFor(%s) rewrote %q into %q", memdriver.Name, q, got)
	}
}

func TestOpenSQLDSNRejectsMalformedDSNs(t *testing.T) {
	for _, dsn := range []string{"", "no-colon", ":datasource-without-driver"} {
		if _, err := OpenSQLDSN(dsn); err == nil || !strings.Contains(err.Error(), "driver:datasource") {
			t.Errorf("OpenSQLDSN(%q) = %v, want a driver:datasource error", dsn, err)
		}
	}
	if _, err := OpenSQLDSN("no-such-driver:x"); err == nil {
		t.Error("OpenSQLDSN with an unregistered driver succeeded")
	}
}

// TestSQLStoreSurvivesHandleRestart is the store-level kill-and-restart
// check: rows written through one handle replay through a fresh handle
// on the same database, and the sequence resumes after the highest row
// so post-restart appends keep the order.
func TestSQLStoreSurvivesHandleRestart(t *testing.T) {
	const ds = "sql-handle-restart"
	memdriver.Reset(ds)
	st, err := OpenSQL(memdriver.Name, ds)
	if err != nil {
		t.Fatal(err)
	}
	l, err := st.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindSession, Session: "s-1", Data: []byte(`{"created":"x"}`)},
		{Kind: KindLog, Session: "s-1", Log: "l-1", Data: []byte(`["q"]`), Blob: []byte{1, 2}},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// The "kill": drop the handles without any graceful flush — a
	// committed row is the durability unit.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenSQL(memdriver.Name, ds)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	shards, err := st2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || shards[0] != 1 {
		t.Fatalf("List after restart = %v, want [1]", shards)
	}
	l2, err := st2.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(Record{Kind: KindDelete, Session: "s-1"}); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := l2.Replay(func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records after restart, want 3", len(got))
	}
	if got[0].Session != "s-1" || got[1].Log != "l-1" || got[2].Kind != KindDelete {
		t.Errorf("replay order broken after restart: %+v", got)
	}
	if _, err := st2.Open(-1); err == nil {
		t.Error("Open(-1) succeeded, want a negative-shard error")
	}
}

// TestSQLStoreClosedHandleErrors pins the closed-store surface: Open on
// a closed SQLStore fails, and both Closes stay idempotent.
func TestSQLStoreClosedHandleErrors(t *testing.T) {
	const ds = "sql-closed-handle"
	memdriver.Reset(ds)
	st, err := OpenSQL(memdriver.Name, ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	if _, err := st.Open(0); err == nil {
		t.Error("Open on a closed SQLStore succeeded")
	}
}
