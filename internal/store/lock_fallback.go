//go:build !unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// lockDataDir is the non-unix fallback: an O_EXCL pid file. Unlike the
// flock path it cannot self-release on a crash — a dead process leaves
// the file behind and the operator removes it by hand — but it still
// makes a concurrent double-open fail loudly, which is the hazard that
// corrupts segments.
func lockDataDir(path string) (*os.File, error) {
	name := filepath.Join(path, "LOCK")
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: data directory %s is already in use by another store (remove %s if its owner is dead): %w", path, name, err)
	}
	fmt.Fprintf(f, "%d\n", os.Getpid())
	return f, nil
}

// unlockDataDir releases the fallback lock by removing the pid file.
func unlockDataDir(f *os.File) error {
	err := f.Close()
	if rmErr := os.Remove(f.Name()); err == nil {
		err = rmErr
	}
	return err
}
