package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Segment-file record framing. Each record is
//
//	u32-le payload length | u32-le CRC-32 (IEEE) of payload | payload
//
// where the payload is the JSON encoding of a Record. The frame makes
// torn tails detectable: a crash mid-append leaves either a short
// header, a short payload, or a CRC mismatch, and replay truncates the
// file back to the last intact record instead of refusing to start.
const frameHeaderSize = 8

// maxRecordSize bounds one record's payload (a corrupt length header
// must not provoke a giant allocation). 1 GiB comfortably exceeds any
// legitimate catalog upload (the HTTP layer caps request bodies at
// 256 MiB).
const maxRecordSize = 1 << 30

// Dir is a Store backed by one directory holding one append-only
// segment file per shard (segment-NNNN.log). The directory is locked
// (path/LOCK) for the Dir's lifetime, so a second process — or a
// second Dir in this process — opening the same directory fails loudly
// instead of interleaving appends into the segments; Close releases
// the lock.
type Dir struct {
	path string
	// metrics is shared by every segment this Dir opens; see
	// Dir.Instrument (metrics.go). Allocated eagerly so segments opened
	// before instrumentation still pick up later-wired instruments.
	metrics *storeMetrics

	mu   sync.Mutex
	lock *os.File // held flock on path/LOCK; nil once closed
}

// OpenDir creates (if needed), locks, and opens a store directory. It
// fails when another live Dir — in this or any process — holds the
// directory; a crashed owner's lock self-releases with its descriptor,
// so no manual cleanup is ever needed after a crash (on unix).
func OpenDir(path string) (*Dir, error) {
	if path == "" {
		return nil, fmt.Errorf("store: empty directory path")
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", path, err)
	}
	lock, err := lockDataDir(path)
	if err != nil {
		return nil, err
	}
	return &Dir{path: path, lock: lock, metrics: &storeMetrics{}}, nil
}

// Path returns the store's directory.
func (d *Dir) Path() string { return d.path }

// Open opens shard i's segment file, creating it when absent.
func (d *Dir) Open(shard int) (Log, error) {
	if shard < 0 {
		return nil, fmt.Errorf("store: negative shard %d", shard)
	}
	name := filepath.Join(d.path, fmt.Sprintf("segment-%04d.log", shard))
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", name, err)
	}
	return &segment{name: name, f: f, m: d.metrics}, nil
}

// List returns the shard indexes with existing segment files, sorted.
func (d *Dir) List() ([]int, error) {
	matches, err := filepath.Glob(filepath.Join(d.path, "segment-*.log"))
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", d.path, err)
	}
	var out []int
	for _, m := range matches {
		var shard int
		if _, err := fmt.Sscanf(filepath.Base(m), "segment-%d.log", &shard); err == nil {
			out = append(out, shard)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Close releases the directory lock, letting another Dir take the
// directory over; shard segments own their own file descriptors and
// are closed individually. Safe to call twice.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lock == nil {
		return nil
	}
	err := unlockDataDir(d.lock)
	d.lock = nil
	return err
}

// segment is one shard's on-disk journal.
type segment struct {
	mu   sync.Mutex
	name string
	f    *os.File
	m    *storeMetrics // nil-safe; shared across the owning Dir's segments
}

var errClosed = errors.New("store: segment is closed")

// Append frames and writes one record at the end of the segment.
func (s *segment) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("store: record of %d bytes exceeds the %d-byte frame limit", len(payload), maxRecordSize)
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("store: seeking %s: %w", s.name, err)
	}
	// One Write for the whole frame: either the kernel gets the full
	// record or the torn tail is caught by Replay's CRC check.
	buf := make([]byte, 0, frameHeaderSize+len(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("store: appending to %s: %w", s.name, err)
	}
	// Sync before acknowledging: an appended record (a tenant's upload,
	// or a delete tombstone) must survive power loss, not just a
	// process crash. Journaled events are low-rate (session lifecycle
	// and first-prepare, never the per-request hot path), so the fsync
	// cost stays off the serving path — the fsync-latency histogram is
	// the number that says when that assumption stops holding.
	syncStart := time.Now()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", s.name, err)
	}
	s.m.recordWritten(time.Since(syncStart))
	return nil
}

// Replay streams the segment's records in write order. On the first
// frame that is short, oversized, or CRC-mismatched — a torn write from
// a crash — the file is truncated back to the last intact record and
// the replay ends without error.
func (s *segment) Replay(fn func(rec Record) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: seeking %s: %w", s.name, err)
	}
	r := bufio.NewReader(s.f)
	var good int64 // offset just past the last intact record
	for {
		var hdr [frameHeaderSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil // clean end
			}
			return s.truncateLocked(good) // short header: torn tail
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecordSize {
			return s.truncateLocked(good) // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return s.truncateLocked(good) // short payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			return s.truncateLocked(good) // bit rot or torn write
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return s.truncateLocked(good) // framed but not decodable
		}
		good += frameHeaderSize + int64(n)
		s.m.recordReplayed()
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// truncateLocked cuts the segment back to off, discarding a damaged
// tail; callers hold s.mu.
func (s *segment) truncateLocked(off int64) error {
	if err := s.f.Truncate(off); err != nil {
		return fmt.Errorf("store: truncating damaged tail of %s: %w", s.name, err)
	}
	return nil
}

// Compact atomically replaces the segment's contents with recs: the
// rewrite lands in a temp file in the same directory, is synced, and
// renamed over the segment, so a crash mid-compaction leaves either the
// old journal or the new one — never a mix.
func (s *segment) Compact(recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	var oldSize int64
	if fi, err := s.f.Stat(); err == nil {
		oldSize = fi.Size()
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.name), filepath.Base(s.name)+".compact-*")
	if err != nil {
		return fmt.Errorf("store: creating compaction temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	var newSize int64
	w := bufio.NewWriter(tmp)
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: encoding record: %w", err)
		}
		var hdr [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := w.Write(hdr[:]); err != nil {
			tmp.Close()
			return fmt.Errorf("store: writing compaction temp: %w", err)
		}
		if _, err := w.Write(payload); err != nil {
			tmp.Close()
			return fmt.Errorf("store: writing compaction temp: %w", err)
		}
		newSize += frameHeaderSize + int64(len(payload))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: flushing compaction temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing compaction temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing compaction temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.name); err != nil {
		return fmt.Errorf("store: swapping compacted segment: %w", err)
	}
	// Sync the directory so the rename itself survives power loss —
	// without it a crash can serve the pre-compaction journal back.
	if dir, err := os.Open(filepath.Dir(s.name)); err == nil {
		dir.Sync()
		dir.Close()
	}
	// The old descriptor now points at an unlinked inode; reopen the
	// new file under the same name.
	old := s.f
	f, err := os.OpenFile(s.name, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening compacted %s: %w", s.name, err)
	}
	old.Close()
	s.f = f
	s.m.recordCompaction(oldSize, newSize)
	return nil
}

// Close syncs and releases the segment file. Safe to call twice.
func (s *segment) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
