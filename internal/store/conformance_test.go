package store_test

import (
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/store/memdriver"
	"repro/internal/store/storetest"
)

// TestStoreConformance runs the shared backend contract against every
// registered backend: the null store (writes vanish by design), the
// segment files, and the SQL store on the in-memory test driver.
func TestStoreConformance(t *testing.T) {
	t.Run("null", func(t *testing.T) {
		storetest.Run(t, storetest.Factory{
			Persistent: false,
			Open:       func(t *testing.T) store.Store { return store.Null{} },
			Reopen:     func(t *testing.T) store.Store { return store.Null{} },
		})
	})
	t.Run("segments", func(t *testing.T) {
		var dir string
		open := func(t *testing.T) store.Store {
			st, err := store.OpenDir(dir)
			if err != nil {
				t.Fatalf("OpenDir(%q): %v", dir, err)
			}
			return st
		}
		storetest.Run(t, storetest.Factory{
			Persistent: true,
			Open: func(t *testing.T) store.Store {
				dir = t.TempDir()
				return open(t)
			},
			Reopen: open,
		})
	})
	t.Run("sql", func(t *testing.T) {
		var ds string
		open := func(t *testing.T) store.Store {
			st, err := store.OpenSQL(memdriver.Name, ds)
			if err != nil {
				t.Fatalf("OpenSQL(%q): %v", ds, err)
			}
			return st
		}
		storetest.Run(t, storetest.Factory{
			Persistent: true,
			Open: func(t *testing.T) store.Store {
				// One database per subtest: t.Name() is unique, and Reset
				// clears any state a previous -count run left behind.
				ds = "conformance-" + strings.ReplaceAll(t.Name(), "/", "-")
				memdriver.Reset(ds)
				return open(t)
			},
			Reopen: open,
		})
	})
}

// TestBackendRegistry pins the registry surface the dpeserver flags
// resolve against: all three backends are registered, OpenBackend wires
// the DSN through, and unknown names fail with the available set.
func TestBackendRegistry(t *testing.T) {
	names := store.Backends()
	for _, want := range []string{"null", "segments", "sql"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Backends() = %v, missing %q", names, want)
		}
	}
	st, err := store.OpenBackend("segments", t.TempDir())
	if err != nil {
		t.Fatalf("OpenBackend(segments): %v", err)
	}
	st.Close()
	if _, err := store.OpenBackend("no-such", ""); err == nil || !strings.Contains(err.Error(), "no-such") {
		t.Errorf("OpenBackend(no-such) = %v, want an error naming the backend", err)
	}
}
