package journal

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/store"
)

// fakeLog is an in-memory store.Log for exercising the Journal wrapper
// without a backend.
type fakeLog struct {
	recs   []store.Record
	closed bool
}

func (f *fakeLog) Append(rec store.Record) error {
	if f.closed {
		return errors.New("fake: closed")
	}
	f.recs = append(f.recs, rec)
	return nil
}

func (f *fakeLog) Replay(fn func(store.Record) error) error {
	for _, r := range f.recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

func (f *fakeLog) Compact(recs []store.Record) error {
	f.recs = append([]store.Record(nil), recs...)
	return nil
}

func (f *fakeLog) Close() error {
	f.closed = true
	return nil
}

// outcomeHandler answers every record with a fixed outcome and remembers
// what it saw.
type outcomeHandler struct {
	out  Outcome
	seen []Record
}

func (h *outcomeHandler) Session(s Session) Outcome   { h.seen = append(h.seen, s); return h.out }
func (h *outcomeHandler) Delete(d Delete) Outcome     { h.seen = append(h.seen, d); return h.out }
func (h *outcomeHandler) Log(l Log) Outcome           { h.seen = append(h.seen, l); return h.out }
func (h *outcomeHandler) Snapshot(s Snapshot) Outcome { h.seen = append(h.seen, s); return h.out }
func (h *outcomeHandler) Approx(a Approx) Outcome     { h.seen = append(h.seen, a); return h.out }
func (h *outcomeHandler) Mining(m Mining) Outcome     { h.seen = append(h.seen, m); return h.out }

// allRecords is one typed record per kind.
func allRecords(t *testing.T) []Record {
	t.Helper()
	created := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	return []Record{
		Session{ID: "s-1", Created: created, Request: json.RawMessage(`{"measure":"token"}`)},
		Delete{ID: "s-2"},
		Log{SessionID: "s-1", LogID: "l-1", Queries: []string{"SELECT a FROM t", "SELECT b FROM t"}},
		Snapshot{SessionID: "s-1", LogID: "l-1", Blob: []byte{1, 2, 3}},
		Approx{SessionID: "s-1", LogID: "l-1", Blob: []byte{4, 5}},
		Mining{SessionID: "s-1", LogID: "l-1\x00mine:abc", Blob: []byte{6}},
	}
}

// TestCodecRoundTrips encodes every kind and decodes it back unchanged.
func TestCodecRoundTrips(t *testing.T) {
	for _, rec := range allRecords(t) {
		raw, err := rec.encode()
		if err != nil {
			t.Fatalf("encode %T: %v", rec, err)
		}
		got, err := Decode(raw)
		if err != nil {
			t.Fatalf("Decode %T: %v", rec, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Errorf("round trip %T: got %+v, want %+v", rec, got, rec)
		}
	}
}

// TestCodecWireStability pins the version-1 payload bytes to the exact
// pre-journal-package formats: a session record is
// {"created":...,"req":...} with no "v" field, and a log record is the
// bare queries array — journals written before this package existed
// replay unchanged, and journals written now replay on those releases.
func TestCodecWireStability(t *testing.T) {
	created := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	raw, err := Session{ID: "s-1", Created: created, Request: json.RawMessage(`{"measure":"token"}`)}.encode()
	if err != nil {
		t.Fatal(err)
	}
	wantSession := `{"created":"2026-08-01T12:00:00Z","req":{"measure":"token"}}`
	if string(raw.Data) != wantSession {
		t.Errorf("session payload = %s, want %s", raw.Data, wantSession)
	}
	if raw.Kind != store.KindSession || raw.Session != "s-1" {
		t.Errorf("session envelope = %+v", raw)
	}

	raw, err = Log{SessionID: "s-1", LogID: "l-1", Queries: []string{"a", "b"}}.encode()
	if err != nil {
		t.Fatal(err)
	}
	if want := `["a","b"]`; string(raw.Data) != want {
		t.Errorf("log payload = %s, want the bare array %s", raw.Data, want)
	}

	// The v2+ envelope form decodes too (forward path for a future bump).
	got, err := Decode(store.Record{Kind: store.KindLog, Session: "s-1", Log: "l-1", Data: []byte(`{"v":1,"q":["a"]}`)})
	if err != nil {
		t.Fatalf("enveloped log payload: %v", err)
	}
	if lg := got.(Log); len(lg.Queries) != 1 || lg.Queries[0] != "a" {
		t.Errorf("enveloped log decoded to %+v", lg)
	}
}

// TestDecodeRejectsNewerVersions: payloads stamped by a future release
// must decode to an error (replay counts them skipped, import surfaces
// them) rather than misread.
func TestDecodeRejectsNewerVersions(t *testing.T) {
	cases := []store.Record{
		{Kind: store.KindSession, Session: "s-1", Data: []byte(`{"v":99,"created":"2026-08-01T12:00:00Z","req":{"measure":"token"}}`)},
		{Kind: store.KindLog, Session: "s-1", Log: "l-1", Data: []byte(`{"v":99,"q":["a"]}`)},
	}
	for _, rec := range cases {
		if _, err := Decode(rec); err == nil {
			t.Errorf("Decode(%s v99) succeeded, want a version error", rec.Kind)
		}
	}
}

// TestDecodeRejectsDamage covers the malformed-record surface.
func TestDecodeRejectsDamage(t *testing.T) {
	cases := []store.Record{
		{Kind: "no-such-kind", Session: "s-1"},
		{Kind: store.KindSession, Session: "", Data: []byte(`{"req":{}}`)},
		{Kind: store.KindSession, Session: "s-1", Data: []byte(`not json`)},
		{Kind: store.KindSession, Session: "s-1", Data: []byte(`{"created":"2026-08-01T12:00:00Z","req":null}`)},
		{Kind: store.KindDelete, Session: ""},
		{Kind: store.KindLog, Session: "s-1", Log: "l-1", Data: []byte(`[]`)},
		{Kind: store.KindLog, Session: "s-1", Log: "", Data: []byte(`["a"]`)},
		{Kind: store.KindSnapshot, Session: "s-1", Log: "l-1"},
		{Kind: store.KindApprox, Session: "", Log: "l-1", Blob: []byte{1}},
		{Kind: store.KindMining, Session: "s-1", Log: "", Blob: []byte{1}},
	}
	for _, rec := range cases {
		if _, err := Decode(rec); err == nil {
			t.Errorf("Decode(%+v) succeeded, want an error", rec)
		}
	}
}

// TestEncodeValidation: incomplete typed records refuse to encode, so a
// service bug cannot journal an unreplayable record.
func TestEncodeValidation(t *testing.T) {
	cases := []Record{
		Session{ID: "", Request: json.RawMessage(`{}`)},
		Session{ID: "s-1"},
		Delete{},
		Log{SessionID: "s-1", LogID: ""},
		Log{SessionID: "s-1", LogID: "l-1"},
		Snapshot{SessionID: "s-1", LogID: "l-1"},
		Approx{SessionID: "", LogID: "l-1", Blob: []byte{1}},
		Mining{SessionID: "s-1", LogID: "", Blob: []byte{1}},
	}
	for _, rec := range cases {
		if _, err := rec.encode(); err == nil {
			t.Errorf("encode(%+v) succeeded, want an error", rec)
		}
	}
}

// TestDispatchCounting pins the tri-state outcome accounting: Applied
// counts under the record's kind, Skipped under Skipped, and Ignored
// (idempotent duplicates) nowhere — the exact counting the recovery
// report had before the refactor.
func TestDispatchCounting(t *testing.T) {
	raws := make([]store.Record, 0, 6)
	for _, rec := range allRecords(t) {
		raw, err := rec.encode()
		if err != nil {
			t.Fatal(err)
		}
		raws = append(raws, raw)
	}

	var st Stats
	for _, raw := range raws {
		dispatch(raw, &outcomeHandler{out: Applied}, &st)
	}
	want := Stats{Sessions: 1, Deletes: 1, Logs: 1, Snapshots: 1, Approx: 1, Mining: 1}
	if st != want {
		t.Errorf("all-applied stats = %+v, want %+v", st, want)
	}
	if st.Total() != 6 {
		t.Errorf("Total() = %d, want 6", st.Total())
	}

	st = Stats{}
	for _, raw := range raws {
		dispatch(raw, &outcomeHandler{out: Skipped}, &st)
	}
	if (st != Stats{Skipped: 6}) {
		t.Errorf("all-skipped stats = %+v, want only Skipped=6", st)
	}

	st = Stats{}
	for _, raw := range raws {
		dispatch(raw, &outcomeHandler{out: Ignored}, &st)
	}
	if (st != Stats{}) {
		t.Errorf("all-ignored stats = %+v, want zero", st)
	}

	// An undecodable raw record skips without reaching the handler.
	st = Stats{}
	h := &outcomeHandler{out: Applied}
	dispatch(store.Record{Kind: "bogus"}, h, &st)
	if (st != Stats{Skipped: 1}) || len(h.seen) != 0 {
		t.Errorf("undecodable record: stats %+v, handler saw %d", st, len(h.seen))
	}

	var sum Stats
	sum.Add(want)
	sum.Add(Stats{Skipped: 2})
	if sum.Total() != 8 {
		t.Errorf("Add/Total = %d, want 8", sum.Total())
	}
}

// TestJournalAppendReplayCompact drives the Journal wrapper over an
// in-memory log: typed appends frame through the codecs, replay hands
// the handler equal typed values, and compaction rewrites to exactly
// what collect returns — dropping records that fail to encode rather
// than failing the rewrite.
func TestJournalAppendReplayCompact(t *testing.T) {
	fl := &fakeLog{}
	j := New(fl)
	recs := allRecords(t)
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append(%T): %v", rec, err)
		}
	}
	if err := j.Append(Session{}); err == nil {
		t.Error("Append of an invalid record succeeded")
	}

	h := &outcomeHandler{out: Applied}
	st, err := j.Replay(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total() != len(recs) || st.Skipped != 0 {
		t.Errorf("replay stats = %+v", st)
	}
	if !reflect.DeepEqual(h.seen, recs) {
		t.Errorf("replay saw %+v, want %+v", h.seen, recs)
	}

	// Compact down to one live session; the unencodable record drops.
	if err := j.Compact(func() []Record {
		return []Record{recs[0], Session{}}
	}); err != nil {
		t.Fatal(err)
	}
	h2 := &outcomeHandler{out: Applied}
	st, err = j.Replay(h2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 1 || st.Total() != 1 {
		t.Errorf("post-compaction stats = %+v, want one session", st)
	}

	// A nil collect empties the journal (orphan retirement).
	if err := j.Compact(nil); err != nil {
		t.Fatal(err)
	}
	if len(fl.recs) != 0 {
		t.Errorf("Compact(nil) left %d records", len(fl.recs))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if !fl.closed {
		t.Error("Close did not close the underlying log")
	}
}

// TestJournalSkipsDamagedRecordsDuringReplay: a corrupt raw record in
// the middle of the journal is counted skipped, not fatal, and the
// records around it still apply.
func TestJournalSkipsDamagedRecordsDuringReplay(t *testing.T) {
	fl := &fakeLog{}
	j := New(fl)
	if err := j.Append(Delete{ID: "s-1"}); err != nil {
		t.Fatal(err)
	}
	fl.recs = append(fl.recs, store.Record{Kind: store.KindSession, Session: "s-2", Data: []byte("{torn")})
	if err := j.Append(Delete{ID: "s-3"}); err != nil {
		t.Fatal(err)
	}
	st, err := j.Replay(&outcomeHandler{out: Applied})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deletes != 2 || st.Skipped != 1 {
		t.Errorf("stats = %+v, want 2 deletes and 1 skipped", st)
	}
}
