// Package journal is the typed persistence layer between the service
// and a store backend. The store moves opaque Records (a kind tag plus
// raw payloads); this package owns one codec per kind — session,
// delete, log, snapshot, approx, mining — with versioned encode/decode,
// so the service journals and replays typed values instead of
// hand-rolling byte payloads at every call site.
//
// A Journal wraps one shard's store.Log. It serializes appends against
// compaction internally (the mutex the service previously managed per
// shard), encodes typed records on the way down, and decodes them on
// the way up through a Handler during Replay — counting what was
// applied, skipped, and ignored into a Stats the recovery report is
// built from.
//
// Payload versioning: version 1 is the implicit version of payloads
// with no "v" field — the exact format every earlier release wrote —
// so the encoders in this package emit it unchanged and journals stay
// byte-compatible in both directions. A payload declaring a version
// this package does not know (written by a newer release) decodes to
// an error, which replay counts as skipped instead of failing: the
// journal is a recovery aid, and partial recovery beats refusing to
// start.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/store"
)

// The current payload versions this package writes and the highest it
// can read. Version 1 is implicit (no "v" field) for wire stability
// with pre-journal-package releases.
const (
	sessionVersion = 1
	logVersion     = 1
)

// Record is one typed journal event. The concrete types in this
// package — Session, Delete, Log, Snapshot, Approx, Mining — are the
// complete set; the interface is sealed so every record that reaches a
// store.Log went through a versioned codec.
type Record interface {
	// encode renders the typed record as a raw store record.
	encode() (store.Record, error)
}

// Session records a session creation: the assigned id, the creation
// time, and the encoded create request. The request is opaque to the
// journal — the service owns its schema and re-validates on replay.
type Session struct {
	ID      string
	Created time.Time
	Request json.RawMessage
}

// Delete tombstones a session.
type Delete struct {
	ID string
}

// Log records an uploaded query log under its content-addressed id.
type Log struct {
	SessionID string
	LogID     string
	Queries   []string
}

// Snapshot records a serialized prepared state for one (session, log)
// pair. The blob is the measure codec's output, versioned by that
// codec; the journal adds the typed envelope.
type Snapshot struct {
	SessionID string
	LogID     string
	Blob      []byte
}

// Approx records a serialized MinHash/LSH index for one (session, log)
// pair; the blob is internal/approx's versioned codec output.
type Approx struct {
	SessionID string
	LogID     string
	Blob      []byte
}

// Mining records a serialized incremental-mining state for one
// (session, log, spec) triple; the blob is dpe's versioned MineState
// codec output.
type Mining struct {
	SessionID string
	LogID     string
	Blob      []byte
}

// sessionPayload is the JSON body of a session record. V is omitted at
// version 1, matching the pre-journal-package format exactly.
type sessionPayload struct {
	V       int             `json:"v,omitempty"`
	Created time.Time       `json:"created"`
	Req     json.RawMessage `json:"req"`
}

func (s Session) encode() (store.Record, error) {
	if s.ID == "" {
		return store.Record{}, fmt.Errorf("journal: session record without an id")
	}
	if len(s.Request) == 0 {
		return store.Record{}, fmt.Errorf("journal: session record without a request")
	}
	data, err := json.Marshal(sessionPayload{Created: s.Created, Req: s.Request})
	if err != nil {
		return store.Record{}, fmt.Errorf("journal: encoding session record: %w", err)
	}
	return store.Record{Kind: store.KindSession, Session: s.ID, Data: data}, nil
}

func decodeSession(rec store.Record) (Session, error) {
	if rec.Session == "" {
		return Session{}, fmt.Errorf("journal: session record without an id")
	}
	var p sessionPayload
	if err := json.Unmarshal(rec.Data, &p); err != nil {
		return Session{}, fmt.Errorf("journal: decoding session record: %w", err)
	}
	if p.V > sessionVersion {
		return Session{}, fmt.Errorf("journal: session payload version %d is newer than this binary (max %d)", p.V, sessionVersion)
	}
	if len(p.Req) == 0 || bytes.Equal(bytes.TrimSpace(p.Req), []byte("null")) {
		return Session{}, fmt.Errorf("journal: session record without a request")
	}
	return Session{ID: rec.Session, Created: p.Created, Request: p.Req}, nil
}

func (d Delete) encode() (store.Record, error) {
	if d.ID == "" {
		return store.Record{}, fmt.Errorf("journal: delete record without an id")
	}
	return store.Record{Kind: store.KindDelete, Session: d.ID}, nil
}

func decodeDelete(rec store.Record) (Delete, error) {
	if rec.Session == "" {
		return Delete{}, fmt.Errorf("journal: delete record without an id")
	}
	return Delete{ID: rec.Session}, nil
}

// logPayload is the versioned JSON body of a log record at version 2
// and up. Version 1 — what this package writes — is the bare queries
// array, for wire stability with pre-journal-package journals.
type logPayload struct {
	V       int      `json:"v"`
	Queries []string `json:"q"`
}

func (l Log) encode() (store.Record, error) {
	if l.SessionID == "" || l.LogID == "" {
		return store.Record{}, fmt.Errorf("journal: log record without a session or log id")
	}
	if len(l.Queries) == 0 {
		return store.Record{}, fmt.Errorf("journal: log record without queries")
	}
	data, err := json.Marshal(l.Queries)
	if err != nil {
		return store.Record{}, fmt.Errorf("journal: encoding log record: %w", err)
	}
	return store.Record{Kind: store.KindLog, Session: l.SessionID, Log: l.LogID, Data: data}, nil
}

func decodeLog(rec store.Record) (Log, error) {
	data := bytes.TrimSpace(rec.Data)
	var queries []string
	if len(data) > 0 && data[0] == '[' {
		// Version 1: the bare queries array.
		if err := json.Unmarshal(data, &queries); err != nil {
			return Log{}, fmt.Errorf("journal: decoding log record: %w", err)
		}
	} else {
		var p logPayload
		if err := json.Unmarshal(data, &p); err != nil {
			return Log{}, fmt.Errorf("journal: decoding log record: %w", err)
		}
		if p.V > logVersion {
			return Log{}, fmt.Errorf("journal: log payload version %d is newer than this binary (max %d)", p.V, logVersion)
		}
		queries = p.Queries
	}
	if rec.Session == "" || rec.Log == "" || len(queries) == 0 {
		return Log{}, fmt.Errorf("journal: incomplete log record")
	}
	return Log{SessionID: rec.Session, LogID: rec.Log, Queries: queries}, nil
}

// encodeBlob is the shared envelope of the three blob-carrying kinds.
func encodeBlob(kind store.Kind, sessionID, logID string, blob []byte) (store.Record, error) {
	if sessionID == "" || logID == "" {
		return store.Record{}, fmt.Errorf("journal: %s record without a session or log id", kind)
	}
	if len(blob) == 0 {
		return store.Record{}, fmt.Errorf("journal: %s record without a blob", kind)
	}
	return store.Record{Kind: kind, Session: sessionID, Log: logID, Blob: blob}, nil
}

func decodeBlob(rec store.Record) (sessionID, logID string, blob []byte, err error) {
	if rec.Session == "" || rec.Log == "" || len(rec.Blob) == 0 {
		return "", "", nil, fmt.Errorf("journal: incomplete %s record", rec.Kind)
	}
	return rec.Session, rec.Log, rec.Blob, nil
}

func (s Snapshot) encode() (store.Record, error) {
	return encodeBlob(store.KindSnapshot, s.SessionID, s.LogID, s.Blob)
}

func (a Approx) encode() (store.Record, error) {
	return encodeBlob(store.KindApprox, a.SessionID, a.LogID, a.Blob)
}

func (m Mining) encode() (store.Record, error) {
	return encodeBlob(store.KindMining, m.SessionID, m.LogID, m.Blob)
}

// Decode maps a raw store record back to its typed form, or errors for
// unknown kinds and undecodable or newer-versioned payloads — which
// replay and bundle import count as skipped.
func Decode(rec store.Record) (Record, error) {
	switch rec.Kind {
	case store.KindSession:
		return decodeSession(rec)
	case store.KindDelete:
		return decodeDelete(rec)
	case store.KindLog:
		return decodeLog(rec)
	case store.KindSnapshot:
		s, l, b, err := decodeBlob(rec)
		if err != nil {
			return nil, err
		}
		return Snapshot{SessionID: s, LogID: l, Blob: b}, nil
	case store.KindApprox:
		s, l, b, err := decodeBlob(rec)
		if err != nil {
			return nil, err
		}
		return Approx{SessionID: s, LogID: l, Blob: b}, nil
	case store.KindMining:
		s, l, b, err := decodeBlob(rec)
		if err != nil {
			return nil, err
		}
		return Mining{SessionID: s, LogID: l, Blob: b}, nil
	default:
		return nil, fmt.Errorf("journal: unknown record kind %q", rec.Kind)
	}
}

// marshalRecord renders a raw record as the JSON bytes both segment
// journals and bundles frame.
func marshalRecord(rec store.Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding record: %w", err)
	}
	return payload, nil
}

func unmarshalRecord(payload []byte) (store.Record, error) {
	var rec store.Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return store.Record{}, err
	}
	return rec, nil
}

// Outcome is a Handler's verdict on one decoded record.
type Outcome int

const (
	// Applied: the record restored state; counted under its kind.
	Applied Outcome = iota
	// Skipped: the record could not be applied — an orphaned log or
	// snapshot of a missing session, an undecodable blob, a stale
	// create of a tombstoned id. Counted in Stats.Skipped.
	Skipped
	// Ignored: a harmless duplicate (replay is idempotent); counted
	// nowhere.
	Ignored
)

// Handler consumes typed records during Replay and bundle import. Each
// method reports what became of the record; the dispatcher does the
// counting.
type Handler interface {
	Session(Session) Outcome
	Delete(Delete) Outcome
	Log(Log) Outcome
	Snapshot(Snapshot) Outcome
	Approx(Approx) Outcome
	Mining(Mining) Outcome
}

// Stats counts what a Replay or bundle read applied per kind, plus the
// records that could not be applied.
type Stats struct {
	Sessions  int
	Deletes   int
	Logs      int
	Snapshots int
	Approx    int
	Mining    int
	Skipped   int
}

// Add accumulates another replay's counts (the registry sums its
// shards' journals).
func (s *Stats) Add(o Stats) {
	s.Sessions += o.Sessions
	s.Deletes += o.Deletes
	s.Logs += o.Logs
	s.Snapshots += o.Snapshots
	s.Approx += o.Approx
	s.Mining += o.Mining
	s.Skipped += o.Skipped
}

// Total is the number of applied-or-seen records.
func (s Stats) Total() int {
	return s.Sessions + s.Deletes + s.Logs + s.Snapshots + s.Approx + s.Mining + s.Skipped
}

// dispatch decodes one raw record, routes it to the handler, and
// counts the outcome.
func dispatch(rec store.Record, h Handler, st *Stats) {
	typed, err := Decode(rec)
	if err != nil {
		st.Skipped++
		return
	}
	var out Outcome
	var applied *int
	switch t := typed.(type) {
	case Session:
		out, applied = h.Session(t), &st.Sessions
	case Delete:
		out, applied = h.Delete(t), &st.Deletes
	case Log:
		out, applied = h.Log(t), &st.Logs
	case Snapshot:
		out, applied = h.Snapshot(t), &st.Snapshots
	case Approx:
		out, applied = h.Approx(t), &st.Approx
	case Mining:
		out, applied = h.Mining(t), &st.Mining
	}
	switch out {
	case Applied:
		*applied++
	case Skipped:
		st.Skipped++
	}
}

// Journal wraps one shard's store.Log with the typed codecs. It owns
// the append-vs-compaction serialization the service previously
// managed with a per-shard mutex: Append, Replay, and Compact are
// mutually exclusive, and Compact holds the lock across the caller's
// collect so no concurrent append can slip between what was collected
// and what the rewritten journal holds. Callers must not invoke these
// while holding locks their record collectors also take.
type Journal struct {
	mu  sync.Mutex
	log store.Log
}

// New wraps a shard journal.
func New(log store.Log) *Journal {
	return &Journal{log: log}
}

// Append encodes and durably appends one typed record.
func (j *Journal) Append(rec Record) error {
	raw, err := rec.encode()
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Append(raw)
}

// Replay streams the journal's records in write order through h and
// returns the counts. A raw record that does not decode — unknown
// kind, newer payload version, damaged body — is counted as skipped,
// never fatal.
func (j *Journal) Replay(h Handler) (Stats, error) {
	var st Stats
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.log.Replay(func(rec store.Record) error {
		dispatch(rec, h, &st)
		return nil
	})
	return st, err
}

// Compact atomically replaces the journal's contents with the records
// collect returns — the live-state rewrite. The lock is held across
// collect + rewrite; a record that fails to encode is dropped from the
// rewrite (best-effort, like the write-through hooks) rather than
// failing the whole compaction. A nil collect empties the journal.
func (j *Journal) Compact(collect func() []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var raws []store.Record
	if collect != nil {
		recs := collect()
		raws = make([]store.Record, 0, len(recs))
		for _, rec := range recs {
			raw, err := rec.encode()
			if err != nil {
				continue
			}
			raws = append(raws, raw)
		}
	}
	return j.log.Compact(raws)
}

// Close releases the underlying shard journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Close()
}
