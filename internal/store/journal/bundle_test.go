package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
)

// writeBundle renders recs as a complete bundle.
func writeBundle(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw, err := NewBundleWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := bw.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBundleRoundTrip: every record kind frames into a bundle and reads
// back typed and equal, with the outcome counts matching.
func TestBundleRoundTrip(t *testing.T) {
	recs := allRecords(t)
	data := writeBundle(t, recs)
	h := &outcomeHandler{out: Applied}
	st, err := ReadBundle(bytes.NewReader(data), h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total() != len(recs) || st.Skipped != 0 {
		t.Errorf("stats = %+v, want %d applied", st, len(recs))
	}
	if !reflect.DeepEqual(h.seen, recs) {
		t.Errorf("read back %+v, want %+v", h.seen, recs)
	}
}

// TestBundleEmptyIsReadable: a bundle of zero records is still a valid
// file (header + trailer), and reads back empty.
func TestBundleEmptyIsReadable(t *testing.T) {
	data := writeBundle(t, nil)
	st, err := ReadBundle(bytes.NewReader(data), &outcomeHandler{out: Applied})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total() != 0 {
		t.Errorf("stats = %+v, want empty", st)
	}
}

// TestBundleRejectsDamage: every class of file damage — truncation at
// any point, a flipped payload byte, a bad magic, a future version, a
// count mismatch, trailing garbage — must fail the read outright. A
// restore is all-or-nothing at the file level.
func TestBundleRejectsDamage(t *testing.T) {
	good := writeBundle(t, allRecords(t))
	read := func(data []byte) error {
		_, err := ReadBundle(bytes.NewReader(data), &outcomeHandler{out: Applied})
		return err
	}
	if err := read(good); err != nil {
		t.Fatalf("pristine bundle rejected: %v", err)
	}

	// Truncation anywhere — inside the header, a frame, or the trailer.
	for _, cut := range []int{1, len(bundleMagic) - 1, len(bundleMagic) + 2, len(good) / 2, len(good) - 1} {
		if err := read(good[:cut]); err == nil {
			t.Errorf("bundle truncated to %d bytes read successfully", cut)
		}
	}

	// A flipped byte inside the first frame's payload fails its CRC.
	corrupt := append([]byte(nil), good...)
	corrupt[len(bundleMagic)+4+8+3] ^= 0xFF
	if err := read(corrupt); err == nil || !bytes.Contains([]byte(err.Error()), []byte("CRC")) {
		t.Errorf("payload corruption read = %v, want a CRC error", err)
	}

	// Wrong magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if err := read(bad); err == nil {
		t.Error("bad magic read successfully")
	}

	// A format version from a newer release.
	newer := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(newer[len(bundleMagic):], BundleVersion+1)
	if err := read(newer); err == nil {
		t.Error("newer-version bundle read successfully")
	}

	// Trailer count disagreeing with the frames actually present (the
	// count and its CRC are both rewritten, so only the mismatch trips).
	miscounted := append([]byte(nil), good...)
	n := len(miscounted)
	binary.LittleEndian.PutUint32(miscounted[n-8:n-4], 99)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], 99)
	binary.LittleEndian.PutUint32(miscounted[n-4:], crc32.ChecksumIEEE(cnt[:]))
	if err := read(miscounted); err == nil {
		t.Error("miscounted bundle read successfully")
	}

	// Trailing garbage after a valid trailer.
	if err := read(append(append([]byte(nil), good...), 0x00)); err == nil {
		t.Error("bundle with trailing garbage read successfully")
	}

	// A correctly framed record of an unknown kind (a newer release's
	// addition) counts as skipped — only unparseable frame JSON is a
	// hard error.
	var buf bytes.Buffer
	bw, err := NewBundleWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"k":"no-such-kind","s":"s-1"}`)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	bw.w.Write(hdr[:])
	bw.w.Write(payload)
	bw.count++
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ReadBundle(bytes.NewReader(buf.Bytes()), &outcomeHandler{out: Applied})
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 1 || st.Total() != 1 {
		t.Errorf("unknown-kind record stats = %+v, want 1 skipped", st)
	}
}

// TestBundleWriterValidatesRecords: an incomplete typed record fails
// Append before anything is framed.
func TestBundleWriterValidatesRecords(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBundleWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Append(Session{}); err == nil {
		t.Error("Append of an invalid record succeeded")
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := ReadBundle(bytes.NewReader(buf.Bytes()), &outcomeHandler{out: Applied}); err != nil || st.Total() != 0 {
		t.Errorf("bundle after failed Append: stats %+v, err %v", st, err)
	}
}
