package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Bundle file format — the portable form of one tenant's journal
// records (dpectl export / import):
//
//	8-byte magic "DPEBNDL\x00" | u32-le format version
//	repeated record frames:
//	  u32-le payload length | u32-le CRC-32 (IEEE) of payload | payload
//	trailer:
//	  u32-le 0xFFFFFFFF | u32-le record count | u32-le CRC-32 of count
//
// The payload is the JSON encoding of a store.Record produced by this
// package's typed codecs — the same bytes a segment journal frames —
// so a bundle is readable by any backend and any future release that
// keeps the codecs. The sentinel length 0xFFFFFFFF can never open a
// real frame (it exceeds the record size cap), so the trailer is
// unambiguous; unlike a crash-tolerant journal, a bundle missing its
// trailer (or failing any CRC) is rejected outright — a torn backup
// must be detected at restore time, not half-applied.
const (
	bundleMagic = "DPEBNDL\x00"
	// BundleVersion is the bundle format version this package writes.
	BundleVersion = 1
	// maxBundleRecord caps one frame's payload, like the segment
	// journal's cap: a corrupt length header must not provoke a giant
	// allocation.
	maxBundleRecord = 1 << 30
	trailerSentinel = 0xFFFFFFFF
)

// BundleWriter streams typed records into a bundle. Append frames each
// record; Close writes the integrity trailer — a bundle without a
// successful Close is unreadable by design.
type BundleWriter struct {
	w     *bufio.Writer
	count uint32
}

// NewBundleWriter starts a bundle on w, writing the header.
func NewBundleWriter(w io.Writer) (*BundleWriter, error) {
	bw := &BundleWriter{w: bufio.NewWriter(w)}
	if _, err := bw.w.WriteString(bundleMagic); err != nil {
		return nil, fmt.Errorf("journal: writing bundle magic: %w", err)
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], BundleVersion)
	if _, err := bw.w.Write(v[:]); err != nil {
		return nil, fmt.Errorf("journal: writing bundle version: %w", err)
	}
	return bw, nil
}

// Append encodes one typed record and frames it into the bundle.
func (bw *BundleWriter) Append(rec Record) error {
	raw, err := rec.encode()
	if err != nil {
		return err
	}
	payload, err := marshalRecord(raw)
	if err != nil {
		return err
	}
	if len(payload) > maxBundleRecord {
		return fmt.Errorf("journal: bundle record of %d bytes exceeds the %d-byte frame limit", len(payload), maxBundleRecord)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := bw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("journal: writing bundle frame: %w", err)
	}
	if _, err := bw.w.Write(payload); err != nil {
		return fmt.Errorf("journal: writing bundle frame: %w", err)
	}
	bw.count++
	return nil
}

// Close writes the trailer and flushes. The caller owns the underlying
// writer (Close does not close it).
func (bw *BundleWriter) Close() error {
	var t [12]byte
	binary.LittleEndian.PutUint32(t[0:4], trailerSentinel)
	binary.LittleEndian.PutUint32(t[4:8], bw.count)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], bw.count)
	binary.LittleEndian.PutUint32(t[8:12], crc32.ChecksumIEEE(cnt[:]))
	if _, err := bw.w.Write(t[:]); err != nil {
		return fmt.Errorf("journal: writing bundle trailer: %w", err)
	}
	if err := bw.w.Flush(); err != nil {
		return fmt.Errorf("journal: flushing bundle: %w", err)
	}
	return nil
}

// ReadBundle verifies and streams a bundle through h, returning the
// outcome counts. Integrity problems — bad magic, a version from a
// newer release, a CRC mismatch, a missing or inconsistent trailer,
// trailing garbage — are errors: a restore must be all-or-nothing at
// the file level. Records that decode but cannot be applied are
// counted in Stats.Skipped by the handler dispatch, same as replay.
func ReadBundle(r io.Reader, h Handler) (Stats, error) {
	var st Stats
	br := bufio.NewReader(r)
	magic := make([]byte, len(bundleMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return st, fmt.Errorf("journal: reading bundle magic: %w", err)
	}
	if string(magic) != bundleMagic {
		return st, fmt.Errorf("journal: not a bundle (bad magic)")
	}
	var vbuf [4]byte
	if _, err := io.ReadFull(br, vbuf[:]); err != nil {
		return st, fmt.Errorf("journal: reading bundle version: %w", err)
	}
	if v := binary.LittleEndian.Uint32(vbuf[:]); v > BundleVersion {
		return st, fmt.Errorf("journal: bundle format version %d is newer than this binary (max %d)", v, BundleVersion)
	}
	var read uint32
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return st, fmt.Errorf("journal: truncated bundle (missing trailer): %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n == trailerSentinel {
			// The frame header already consumed the sentinel and the
			// count; only the count's CRC remains.
			count := binary.LittleEndian.Uint32(hdr[4:8])
			var crc [4]byte
			if _, err := io.ReadFull(br, crc[:]); err != nil {
				return st, fmt.Errorf("journal: truncated bundle trailer: %w", err)
			}
			if crc32.ChecksumIEEE(hdr[4:8]) != binary.LittleEndian.Uint32(crc[:]) {
				return st, fmt.Errorf("journal: bundle trailer CRC mismatch")
			}
			if count != read {
				return st, fmt.Errorf("journal: bundle trailer says %d records, read %d", count, read)
			}
			if _, err := br.ReadByte(); err != io.EOF {
				return st, fmt.Errorf("journal: trailing data after bundle trailer")
			}
			return st, nil
		}
		if n > maxBundleRecord {
			return st, fmt.Errorf("journal: bundle frame of %d bytes exceeds the %d-byte limit", n, maxBundleRecord)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return st, fmt.Errorf("journal: truncated bundle record: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return st, fmt.Errorf("journal: bundle record CRC mismatch")
		}
		rec, err := unmarshalRecord(payload)
		if err != nil {
			return st, fmt.Errorf("journal: undecodable bundle record: %w", err)
		}
		read++
		dispatch(rec, h, &st)
	}
}
