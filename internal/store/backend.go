package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The backend registry: Store implementations register by name at init
// time, and dpeserver's -store flag selects one by the same name. The
// DSN's meaning belongs to the backend — a directory path for
// segments, a "driver:datasource" pair for sql, unused for null.
var (
	backendsMu sync.RWMutex
	backends   = map[string]func(dsn string) (Store, error){}
)

// RegisterBackend registers a named store backend. It panics on a
// duplicate name — backends register from init functions, so a
// collision is a wiring bug, not a runtime condition.
func RegisterBackend(name string, open func(dsn string) (Store, error)) {
	backendsMu.Lock()
	defer backendsMu.Unlock()
	if name == "" || open == nil {
		panic("store: RegisterBackend with an empty name or nil opener")
	}
	if _, ok := backends[name]; ok {
		panic(fmt.Sprintf("store: backend %q registered twice", name))
	}
	backends[name] = open
}

// OpenBackend opens the named backend with its DSN.
func OpenBackend(name, dsn string) (Store, error) {
	backendsMu.RLock()
	open := backends[name]
	backendsMu.RUnlock()
	if open == nil {
		return nil, fmt.Errorf("store: unknown backend %q (have %s)", name, strings.Join(Backends(), "|"))
	}
	return open(dsn)
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	backendsMu.RLock()
	defer backendsMu.RUnlock()
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterBackend("null", func(string) (Store, error) { return Null{}, nil })
	RegisterBackend("segments", func(dsn string) (Store, error) { return OpenDir(dsn) })
	RegisterBackend("sql", func(dsn string) (Store, error) { return OpenSQLDSN(dsn) })
}
