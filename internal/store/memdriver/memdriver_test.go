package memdriver

import (
	"database/sql"
	"testing"
)

// open returns a database/sql handle on a fresh DSN.
func open(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	Reset(dsn)
	db, err := sql.Open(Name, dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

const insertOne = `INSERT INTO records (shard, seq, kind, session_id, log_id, data, payload) VALUES (?, ?, ?, ?, ?, ?, ?)`

// TestStatePersistsAcrossHandles: the point of the driver — rows
// committed through one sql.DB survive its Close and appear through a
// new handle on the same DSN, while Reset drops them.
func TestStatePersistsAcrossHandles(t *testing.T) {
	const dsn = "memdriver-persist"
	db := open(t, dsn)
	if _, err := db.Exec(insertOne, 0, 0, "session", "s-1", "", []byte("d"), nil); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := sql.Open(Name, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	var n int64
	if err := db2.QueryRow(`SELECT COALESCE(MAX(seq), -1) FROM records WHERE shard = ?`, 0).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("MAX(seq) after reopen = %d, want 0", n)
	}
	Reset(dsn)
	if err := db2.QueryRow(`SELECT COALESCE(MAX(seq), -1) FROM records WHERE shard = ?`, 0).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		// The old handle still points at the pre-Reset database object;
		// only a fresh open starts empty. Pin that, so tests Reset before
		// opening, not after.
		t.Log("existing handle kept its database after Reset (by design)")
	}
	db3, err := sql.Open(Name, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if err := db3.QueryRow(`SELECT COALESCE(MAX(seq), -1) FROM records WHERE shard = ?`, 0).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != -1 {
		t.Errorf("MAX(seq) after Reset+reopen = %d, want the empty sentinel -1", n)
	}
}

// TestTransactionRollbackRestoresSnapshot: a transaction that deletes
// and re-inserts (the compaction shape) must vanish entirely on
// rollback and land entirely on commit.
func TestTransactionRollbackRestoresSnapshot(t *testing.T) {
	db := open(t, "memdriver-tx")
	for i := 0; i < 3; i++ {
		if _, err := db.Exec(insertOne, 1, i, "log", "s-1", "l-1", []byte("d"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	count := func() int {
		rows, err := db.Query(`SELECT kind, session_id, log_id, data, payload FROM records WHERE shard = ? ORDER BY seq`, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		n := 0
		for rows.Next() {
			n++
		}
		return n
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`DELETE FROM records WHERE shard = ?`, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(insertOne, 1, 0, "log", "s-1", "l-2", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 3 {
		t.Errorf("rows after rollback = %d, want the original 3", n)
	}

	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`DELETE FROM records WHERE shard = ?`, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(insertOne, 1, 0, "log", "s-1", "l-2", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 1 {
		t.Errorf("rows after committed rewrite = %d, want 1", n)
	}
}

// TestInsertRejectsDuplicateKeys: the (shard, seq) primary key holds
// within one statement and across statements, and a failed multi-row
// INSERT lands no rows at all.
func TestInsertRejectsDuplicateKeys(t *testing.T) {
	db := open(t, "memdriver-dupes")
	if _, err := db.Exec(insertOne, 0, 0, "log", "s", "l", nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(insertOne, 0, 0, "log", "s", "l", nil, nil); err == nil {
		t.Error("duplicate (shard, seq) insert succeeded")
	}
	multi := insertOne[:len(insertOne)-len(`(?, ?, ?, ?, ?, ?, ?)`)] + `(?, ?, ?, ?, ?, ?, ?), (?, ?, ?, ?, ?, ?, ?)`
	if _, err := db.Exec(multi,
		0, 1, "log", "s", "l", nil, nil,
		0, 1, "log", "s", "l", nil, nil); err == nil {
		t.Error("multi-row insert with an internal duplicate succeeded")
	}
	var n int64
	if err := db.QueryRow(`SELECT COALESCE(MAX(seq), -1) FROM records WHERE shard = ?`, 0).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("MAX(seq) = %d after failed inserts, want 0 (nothing landed)", n)
	}
}

// TestUnsupportedStatementsError: the driver understands exactly the
// store backend's statements and fails loudly on anything else, so a
// store-side query change cannot silently no-op in CI.
func TestUnsupportedStatementsError(t *testing.T) {
	db := open(t, "memdriver-unsupported")
	if _, err := db.Exec(`UPDATE records SET kind = ?`, "x"); err == nil {
		t.Error("unsupported UPDATE succeeded")
	}
	if _, err := db.Query(`SELECT payload FROM records`); err == nil {
		t.Error("unsupported SELECT succeeded")
	}
}

// TestListShardsSorted: DISTINCT shard returns each populated shard
// once, ascending.
func TestListShardsSorted(t *testing.T) {
	db := open(t, "memdriver-shards")
	for _, shard := range []int{7, 2, 7, 4} {
		var seq int64
		if err := db.QueryRow(`SELECT COALESCE(MAX(seq), -1) FROM records WHERE shard = ?`, shard).Scan(&seq); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(insertOne, shard, seq+1, "log", "s", "l", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := db.Query(`SELECT DISTINCT shard FROM records ORDER BY shard`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []int
	for rows.Next() {
		var s int
		if err := rows.Scan(&s); err != nil {
			t.Fatal(err)
		}
		got = append(got, s)
	}
	want := []int{2, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("shards = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shards = %v, want %v", got, want)
		}
	}
}
